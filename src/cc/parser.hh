/**
 * @file
 * tinyc front end: lexer + recursive-descent parser with precedence
 * climbing. Errors carry line numbers; parsing never throws.
 */

#ifndef RISC1_CC_PARSER_HH
#define RISC1_CC_PARSER_HH

#include <string>
#include <string_view>

#include "cc/ast.hh"

namespace risc1::cc {

/** Result of parsing a tinyc source text. */
struct ParseResult
{
    bool ok = false;
    Unit unit;
    std::string error; //!< first diagnostic, with line number
};

/** Parse tinyc source. */
ParseResult parse(std::string_view source);

} // namespace risc1::cc

#endif // RISC1_CC_PARSER_HH
