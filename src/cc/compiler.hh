/**
 * @file
 * tinyc code generation, one back end per machine.
 *
 * RISC I back end: parameters stay in the window's incoming registers
 * (r26..), locals and expression temporaries live in LOCAL registers
 * (r16..r24), and calls need no save/restore code at all — the window
 * mechanism does it. This is precisely the compiler simplification the
 * paper argues registers+windows buy.
 *
 * vax80 back end: era-typical stack-machine output — locals in the
 * CALLS frame (FP-relative), expression temporaries pushed on the
 * hardware stack, results through r0. Multiply is microcoded; unsigned
 * divide/modulo and variable logical shifts call a small emitted
 * runtime.
 *
 * Shared conventions: a program defines `main()`; the generated image
 * calls it, stores its result at `CcResultAddr`, and halts. `mem[i]`
 * addresses a zero-initialised word array of `CcOptions::memWords`.
 */

#ifndef RISC1_CC_COMPILER_HH
#define RISC1_CC_COMPILER_HH

#include <string>
#include <string_view>

#include "vax/builder.hh"

namespace risc1::cc {

/** Where compiled programs deposit main()'s return value. */
constexpr uint32_t CcResultAddr = 3840;

/** Compiler options. */
struct CcOptions
{
    uint32_t memWords = 4096; //!< size of the mem[] array
};

/** Outcome of compiling to RISC I assembly text. */
struct RiscCompileResult
{
    bool ok = false;
    std::string error;
    std::string assembly; //!< feed to assembler::assemble
};

/** Compile tinyc to RISC I assembly. */
RiscCompileResult compileToRiscAsm(std::string_view source,
                                   const CcOptions &options = {});

/** Outcome of compiling to a vax80 image. */
struct VaxCompileResult
{
    bool ok = false;
    std::string error;
    vax::VaxProgram program;
};

/** Compile tinyc to a loadable vax80 program. */
VaxCompileResult compileToVax(std::string_view source,
                              const CcOptions &options = {});

} // namespace risc1::cc

#endif // RISC1_CC_COMPILER_HH
