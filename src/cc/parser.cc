#include "cc/parser.hh"

#include <cctype>
#include <optional>

#include "support/logging.hh"

namespace risc1::cc {

namespace {

/** Token kinds of the tinyc lexer. */
enum class Tk : uint8_t
{
    End,
    Ident,
    Number,
    Punct, //!< operators and delimiters; text holds the spelling
};

struct Token
{
    Tk kind = Tk::End;
    std::string text;
    uint32_t number = 0;
    unsigned line = 1;
};

/** Longest-match operator table (order matters). */
constexpr const char *punct_table[] = {
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "{",
    "}",  "[",  "]",  ",",  ";",  "=",  "+",  "-",  "*", "/", "%",
    "&",  "|",  "^",  "<",  ">",  "!",  "~",
};

/** Tokenize the whole source; a lex error yields a diagnostic. */
bool
lex(std::string_view src, std::vector<Token> &out, std::string &error)
{
    size_t i = 0;
    unsigned line = 1;
    while (i < src.size()) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n')
                ++i;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            uint64_t value = 0;
            size_t j = i;
            int base = 10;
            if (c == '0' && j + 1 < src.size() &&
                (src[j + 1] == 'x' || src[j + 1] == 'X')) {
                base = 16;
                j += 2;
            }
            size_t digits = 0;
            while (j < src.size()) {
                const char d = src[j];
                int v;
                if (d >= '0' && d <= '9')
                    v = d - '0';
                else if (base == 16 && d >= 'a' && d <= 'f')
                    v = d - 'a' + 10;
                else if (base == 16 && d >= 'A' && d <= 'F')
                    v = d - 'A' + 10;
                else
                    break;
                value = value * static_cast<uint64_t>(base) +
                        static_cast<uint64_t>(v);
                if (value > 0xffffffffull) {
                    error = strprintf("line %u: numeric literal "
                                      "overflows 32 bits",
                                      line);
                    return false;
                }
                ++digits;
                ++j;
            }
            if (digits == 0) {
                error = strprintf("line %u: malformed number", line);
                return false;
            }
            Token tok;
            tok.kind = Tk::Number;
            tok.number = static_cast<uint32_t>(value);
            tok.line = line;
            out.push_back(tok);
            i = j;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t j = i;
            while (j < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[j])) ||
                    src[j] == '_'))
                ++j;
            Token tok;
            tok.kind = Tk::Ident;
            tok.text = std::string(src.substr(i, j - i));
            tok.line = line;
            out.push_back(tok);
            i = j;
            continue;
        }
        bool matched = false;
        for (const char *p : punct_table) {
            const size_t len = std::char_traits<char>::length(p);
            if (src.substr(i, len) == p) {
                Token tok;
                tok.kind = Tk::Punct;
                tok.text = p;
                tok.line = line;
                out.push_back(tok);
                i += len;
                matched = true;
                break;
            }
        }
        if (!matched) {
            error = strprintf("line %u: unexpected character '%c'",
                              line, c);
            return false;
        }
    }
    Token end;
    end.kind = Tk::End;
    end.line = line;
    out.push_back(end);
    return true;
}

/** Binary operator precedence (higher binds tighter). */
int
precedence(const std::string &op)
{
    if (op == "*" || op == "/" || op == "%")
        return 10;
    if (op == "+" || op == "-")
        return 9;
    if (op == "<<" || op == ">>")
        return 8;
    if (op == "<" || op == "<=" || op == ">" || op == ">=")
        return 7;
    if (op == "==" || op == "!=")
        return 6;
    if (op == "&")
        return 5;
    if (op == "^")
        return 4;
    if (op == "|")
        return 3;
    if (op == "&&")
        return 2;
    if (op == "||")
        return 1;
    return -1;
}

/** Recursive-descent parser over the token list. */
class Parser
{
  public:
    Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    ParseResult
    run()
    {
        ParseResult result;
        while (!failed_ && peek().kind != Tk::End)
            parseFunction(result.unit);
        if (failed_) {
            result.error = error_;
            return result;
        }
        result.ok = true;
        return result;
    }

  private:
    const Token &peek(unsigned ahead = 0) const
    {
        const size_t at = std::min(pos_ + ahead, toks_.size() - 1);
        return toks_[at];
    }
    const Token &advance() { return toks_[std::min(pos_++, toks_.size() - 1)]; }

    bool
    isPunct(const char *p, unsigned ahead = 0) const
    {
        return peek(ahead).kind == Tk::Punct && peek(ahead).text == p;
    }

    void
    fail(const std::string &msg)
    {
        if (!failed_) {
            failed_ = true;
            error_ = strprintf("line %u: %s", peek().line, msg.c_str());
        }
    }

    void
    expect(const char *p)
    {
        if (failed_)
            return;
        if (!isPunct(p)) {
            fail(strprintf("expected '%s'", p));
            return;
        }
        advance();
    }

    std::string
    expectIdent(const char *what)
    {
        if (failed_)
            return "";
        if (peek().kind != Tk::Ident) {
            fail(strprintf("expected %s", what));
            return "";
        }
        return advance().text;
    }

    void
    parseFunction(Unit &unit)
    {
        Function fn;
        fn.line = peek().line;
        fn.name = expectIdent("function name");
        expect("(");
        if (!failed_ && !isPunct(")")) {
            while (true) {
                fn.params.push_back(expectIdent("parameter name"));
                if (failed_ || !isPunct(","))
                    break;
                advance();
            }
        }
        expect(")");
        parseBlock(fn.body);
        if (!failed_)
            unit.functions.push_back(std::move(fn));
    }

    void
    parseBlock(std::vector<StmtPtr> &into)
    {
        expect("{");
        while (!failed_ && !isPunct("}")) {
            if (peek().kind == Tk::End) {
                fail("unexpected end of input in block");
                return;
            }
            StmtPtr stmt = parseStmt();
            if (stmt)
                into.push_back(std::move(stmt));
        }
        expect("}");
    }

    StmtPtr
    parseStmt()
    {
        auto stmt = std::make_unique<Stmt>();
        stmt->line = peek().line;

        if (peek().kind == Tk::Ident && peek().text == "var") {
            advance();
            stmt->kind = Stmt::Kind::VarDecl;
            stmt->name = expectIdent("variable name");
            if (isPunct("=")) {
                advance();
                stmt->value = parseExpr();
            }
            expect(";");
            return stmt;
        }
        if (peek().kind == Tk::Ident && peek().text == "if") {
            advance();
            stmt->kind = Stmt::Kind::If;
            expect("(");
            stmt->cond = parseExpr();
            expect(")");
            parseBlock(stmt->body);
            if (peek().kind == Tk::Ident && peek().text == "else") {
                advance();
                parseBlock(stmt->orelse);
            }
            return stmt;
        }
        if (peek().kind == Tk::Ident && peek().text == "while") {
            advance();
            stmt->kind = Stmt::Kind::While;
            expect("(");
            stmt->cond = parseExpr();
            expect(")");
            parseBlock(stmt->body);
            return stmt;
        }
        if (peek().kind == Tk::Ident && peek().text == "return") {
            advance();
            stmt->kind = Stmt::Kind::Return;
            if (!isPunct(";"))
                stmt->value = parseExpr();
            expect(";");
            return stmt;
        }
        if (peek().kind == Tk::Ident && peek().text == "mem" &&
            isPunct("[", 1)) {
            // Could be `mem[i] = e;` or an expression statement that
            // merely starts with a mem read — look, then backtrack.
            const size_t save = pos_;
            advance();
            advance(); // '['
            stmt->index = parseExpr();
            expect("]");
            if (!failed_ && isPunct("=")) {
                advance();
                stmt->kind = Stmt::Kind::MemAssign;
                stmt->value = parseExpr();
                expect(";");
                return stmt;
            }
            pos_ = save;
            stmt->index.reset();
            // fall through to the expression-statement case
        }
        if (peek().kind == Tk::Ident && isPunct("=", 1)) {
            stmt->kind = Stmt::Kind::Assign;
            stmt->name = advance().text;
            advance(); // '='
            stmt->value = parseExpr();
            expect(";");
            return stmt;
        }
        stmt->kind = Stmt::Kind::ExprStmt;
        stmt->value = parseExpr();
        expect(";");
        return stmt;
    }

    ExprPtr
    parseExpr()
    {
        return parseBinary(0);
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        while (!failed_ && peek().kind == Tk::Punct) {
            const int prec = precedence(peek().text);
            if (prec < 0 || prec < min_prec)
                break;
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->line = peek().line;
            node->binop = advance().text;
            node->lhs = std::move(lhs);
            node->rhs = parseBinary(prec + 1);
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr
    parseUnary()
    {
        if (isPunct("-") || isPunct("!") || isPunct("~")) {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Unary;
            node->line = peek().line;
            node->unaryOp = advance().text[0];
            node->lhs = parseUnary();
            return node;
        }
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        auto node = std::make_unique<Expr>();
        node->line = peek().line;

        if (peek().kind == Tk::Number) {
            node->kind = Expr::Kind::Number;
            node->number = advance().number;
            return node;
        }
        if (isPunct("(")) {
            advance();
            node = parseExpr();
            expect(")");
            return node;
        }
        if (peek().kind == Tk::Ident) {
            const std::string name = advance().text;
            if (name == "mem" && isPunct("[")) {
                advance();
                node->kind = Expr::Kind::Mem;
                node->index = parseExpr();
                expect("]");
                return node;
            }
            if (isPunct("(")) {
                advance();
                node->kind = Expr::Kind::Call;
                node->name = name;
                if (!isPunct(")")) {
                    while (true) {
                        node->args.push_back(parseExpr());
                        if (failed_ || !isPunct(","))
                            break;
                        advance();
                    }
                }
                expect(")");
                return node;
            }
            node->kind = Expr::Kind::Var;
            node->name = name;
            return node;
        }
        fail("expected an expression");
        return node;
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

} // namespace

ParseResult
parse(std::string_view source)
{
    std::vector<Token> toks;
    std::string error;
    if (!lex(source, toks, error)) {
        ParseResult result;
        result.error = error;
        return result;
    }
    Parser parser(std::move(toks));
    return parser.run();
}

} // namespace risc1::cc
