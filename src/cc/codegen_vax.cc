/**
 * @file
 * tinyc -> vax80. Stack-machine code generation in the style of early
 * CISC compilers: locals live in the CALLS frame (FP-relative),
 * expression temporaries are pushed on the hardware stack, results
 * flow through r0 (r1 is the binary-op scratch).
 *
 * Calling convention (closed world, both ends generated here): args
 * are pushed left-to-right, so parameter i of n lives at AP+4*(n-1-i).
 * Unsigned divide/modulo call the emitted `__udivmod` runtime (q in
 * r0, remainder in r1); variable logical right shift calls `__lsr`.
 */

#include <map>

#include "cc/compiler.hh"
#include "cc/parser.hh"
#include "support/logging.hh"

namespace risc1::cc {

namespace {

using namespace risc1::vax;

/** Code emitter for one translation unit. */
class VaxGen
{
  public:
    VaxGen(const Unit &unit, const CcOptions &options)
        : unit_(unit), options_(options)
    {}

    VaxCompileResult
    run()
    {
        VaxCompileResult result;
        const Function *main_fn = unit_.find("main");
        if (!main_fn) {
            result.error = "no main() function";
            return result;
        }
        if (!main_fn->params.empty()) {
            result.error = "main() must take no parameters";
            return result;
        }

        asm_.label("__entry");
        asm_.setEntry("__entry");
        asm_.calls(0, "main");
        asm_.inst(VaxOp::Movl, {vreg(0), vabs(CcResultAddr)});
        asm_.halt();

        for (const Function &fn : unit_.functions) {
            if (failed_)
                break;
            genFunction(fn);
        }
        if (failed_) {
            result.error = error_;
            return result;
        }

        if (usesDivMod_)
            emitUdivmod();
        if (usesLsr_)
            emitLsr();

        asm_.align(4);
        asm_.label("__mem");
        asm_.space(options_.memWords * 4);

        result.ok = true;
        result.program = asm_.finish();
        return result;
    }

  private:
    // ---- plumbing ---------------------------------------------------------

    void
    fail(unsigned line, const std::string &msg)
    {
        if (!failed_) {
            failed_ = true;
            error_ = strprintf("line %u: %s", line, msg.c_str());
        }
    }

    std::string
    newLabel()
    {
        return strprintf("__V%u", labelCounter_++);
    }

    /** Always-reachable jump (word displacement). */
    void
    jump(const std::string &label)
    {
        asm_.brw(label);
    }

    /**
     * Conditional jump with unlimited reach: a short branch over a
     * word branch.
     */
    void
    branchIfZero(const std::string &label)
    {
        const std::string near_label = newLabel();
        asm_.inst(VaxOp::Tstl, {vreg(0)});
        asm_.br(VaxOp::Bneq, near_label);
        asm_.brw(label);
        asm_.label(near_label);
    }

    // ---- variables ----------------------------------------------------------

    struct Slot
    {
        bool isParam = false;
        int32_t offset = 0; //!< AP- or FP-relative
    };

    const Slot *
    findVar(const std::string &name, unsigned line)
    {
        auto it = vars_.find(name);
        if (it == vars_.end()) {
            fail(line, "unknown variable '" + name + "'");
            return nullptr;
        }
        return &it->second;
    }

    VOperand
    varOperand(const Slot &slot)
    {
        return vdisp(slot.isParam ? AP : FP, slot.offset);
    }

    /** Count VarDecls in a statement tree (frame-size prepass). */
    static unsigned
    countLocals(const std::vector<StmtPtr> &stmts)
    {
        unsigned count = 0;
        for (const StmtPtr &stmt : stmts) {
            if (stmt->kind == Stmt::Kind::VarDecl)
                ++count;
            count += countLocals(stmt->body);
            count += countLocals(stmt->orelse);
        }
        return count;
    }

    // ---- functions ---------------------------------------------------------------

    void
    genFunction(const Function &fn)
    {
        vars_.clear();
        numLocals_ = 0;
        const auto nparams = static_cast<unsigned>(fn.params.size());
        for (unsigned i = 0; i < nparams; ++i) {
            Slot slot;
            slot.isParam = true;
            slot.offset = static_cast<int32_t>(4 * (nparams - 1 - i));
            vars_[fn.params[i]] = slot;
        }

        asm_.entry(fn.name, 0x0000); // temporaries live on the stack
        const unsigned frame_locals = countLocals(fn.body);
        if (frame_locals > 0)
            asm_.inst(VaxOp::Subl2,
                      {vimm(4 * frame_locals), vreg(SP)});
        genStmts(fn.body);
        // Implicit `return 0`.
        asm_.inst(VaxOp::Clrl, {vreg(0)});
        asm_.ret();
    }

    void
    genStmts(const std::vector<StmtPtr> &stmts)
    {
        for (const StmtPtr &stmt : stmts) {
            if (failed_)
                return;
            genStmt(*stmt);
        }
    }

    void
    genStmt(const Stmt &stmt)
    {
        switch (stmt.kind) {
          case Stmt::Kind::VarDecl: {
            if (vars_.count(stmt.name)) {
                fail(stmt.line,
                     "duplicate variable '" + stmt.name + "'");
                return;
            }
            Slot slot;
            slot.isParam = false;
            slot.offset = -4 * static_cast<int32_t>(numLocals_ + 1);
            vars_[stmt.name] = slot;
            ++numLocals_;
            if (stmt.value) {
                genExpr(*stmt.value);
                asm_.inst(VaxOp::Movl, {vreg(0), varOperand(slot)});
            } else {
                asm_.inst(VaxOp::Clrl, {varOperand(slot)});
            }
            return;
          }
          case Stmt::Kind::Assign: {
            const Slot *slot = findVar(stmt.name, stmt.line);
            if (!slot)
                return;
            genExpr(*stmt.value);
            asm_.inst(VaxOp::Movl, {vreg(0), varOperand(*slot)});
            return;
          }
          case Stmt::Kind::MemAssign:
            genExpr(*stmt.index);
            asm_.inst(VaxOp::Pushl, {vreg(0)});
            genExpr(*stmt.value);
            asm_.inst(VaxOp::Movl, {vinc(SP), vreg(1)}); // pop index
            asm_.inst(VaxOp::Movl,
                      {vreg(0), vidx(1, vabsSym("__mem"))});
            return;
          case Stmt::Kind::If: {
            const std::string else_label = newLabel();
            genExpr(*stmt.cond);
            branchIfZero(else_label);
            genStmts(stmt.body);
            if (stmt.orelse.empty()) {
                asm_.label(else_label);
            } else {
                const std::string end_label = newLabel();
                jump(end_label);
                asm_.label(else_label);
                genStmts(stmt.orelse);
                asm_.label(end_label);
            }
            return;
          }
          case Stmt::Kind::While: {
            const std::string top_label = newLabel();
            const std::string end_label = newLabel();
            asm_.label(top_label);
            genExpr(*stmt.cond);
            branchIfZero(end_label);
            genStmts(stmt.body);
            jump(top_label);
            asm_.label(end_label);
            return;
          }
          case Stmt::Kind::Return:
            if (stmt.value)
                genExpr(*stmt.value);
            else
                asm_.inst(VaxOp::Clrl, {vreg(0)});
            asm_.ret();
            return;
          case Stmt::Kind::ExprStmt:
            genExpr(*stmt.value);
            return;
        }
    }

    // ---- expressions -----------------------------------------------------------------

    /** Evaluate into r0. */
    void
    genExpr(const Expr &e)
    {
        if (failed_)
            return;
        switch (e.kind) {
          case Expr::Kind::Number:
            if (e.number <= 63)
                asm_.inst(VaxOp::Movl, {vlit(e.number), vreg(0)});
            else
                asm_.inst(VaxOp::Movl, {vimm(e.number), vreg(0)});
            return;
          case Expr::Kind::Var: {
            const Slot *slot = findVar(e.name, e.line);
            if (slot)
                asm_.inst(VaxOp::Movl, {varOperand(*slot), vreg(0)});
            return;
          }
          case Expr::Kind::Unary:
            genExpr(*e.lhs);
            switch (e.unaryOp) {
              case '-':
                asm_.inst(VaxOp::Mnegl, {vreg(0), vreg(0)});
                break;
              case '~':
                asm_.inst(VaxOp::Mcoml, {vreg(0), vreg(0)});
                break;
              case '!': {
                const std::string t_label = newLabel();
                const std::string d_label = newLabel();
                asm_.inst(VaxOp::Tstl, {vreg(0)});
                asm_.br(VaxOp::Beql, t_label);
                asm_.inst(VaxOp::Clrl, {vreg(0)});
                asm_.br(VaxOp::Brb, d_label);
                asm_.label(t_label);
                asm_.inst(VaxOp::Movl, {vlit(1), vreg(0)});
                asm_.label(d_label);
                break;
              }
              default:
                panic("genExpr: bad unary op");
            }
            return;
          case Expr::Kind::Binary:
            genBinary(e);
            return;
          case Expr::Kind::Call:
            genCall(e);
            return;
          case Expr::Kind::Mem:
            genExpr(*e.index);
            asm_.inst(VaxOp::Movl,
                      {vidx(0, vabsSym("__mem")), vreg(0)});
            return;
        }
    }

    /** Normalize a register to 0/1. */
    void
    normalizeBool(unsigned r)
    {
        const std::string done = newLabel();
        asm_.inst(VaxOp::Tstl, {vreg(r)});
        asm_.br(VaxOp::Beql, done);
        asm_.inst(VaxOp::Movl, {vlit(1), vreg(r)});
        asm_.label(done);
    }

    void
    genBinary(const Expr &e)
    {
        // lhs -> stack, rhs -> r0, lhs popped to r1.
        genExpr(*e.lhs);
        asm_.inst(VaxOp::Pushl, {vreg(0)});
        genExpr(*e.rhs);
        if (failed_)
            return;
        asm_.inst(VaxOp::Movl, {vinc(SP), vreg(1)});
        const std::string &o = e.binop;

        if (o == "+") {
            asm_.inst(VaxOp::Addl2, {vreg(1), vreg(0)});
            return;
        }
        if (o == "-") {
            // r0 := r1 - r0 (SUBL3 dif = minuend(second) - sub(first)).
            asm_.inst(VaxOp::Subl3, {vreg(0), vreg(1), vreg(0)});
            return;
        }
        if (o == "*") {
            asm_.inst(VaxOp::Mull2, {vreg(1), vreg(0)});
            return;
        }
        if (o == "/" || o == "%") {
            usesDivMod_ = true;
            // Left-to-right: push a (r1) then b (r0).
            asm_.inst(VaxOp::Pushl, {vreg(1)});
            asm_.inst(VaxOp::Pushl, {vreg(0)});
            asm_.calls(2, "__udivmod");
            if (o == "%")
                asm_.inst(VaxOp::Movl, {vreg(1), vreg(0)});
            return;
        }
        if (o == "&") {
            asm_.inst(VaxOp::Mcoml, {vreg(1), vreg(1)});
            asm_.inst(VaxOp::Bicl2, {vreg(1), vreg(0)});
            return;
        }
        if (o == "|") {
            asm_.inst(VaxOp::Bisl2, {vreg(1), vreg(0)});
            return;
        }
        if (o == "^") {
            asm_.inst(VaxOp::Xorl2, {vreg(1), vreg(0)});
            return;
        }
        if (o == "<<") {
            // count = r0 & 31 (matching RISC I's hardware masking).
            asm_.inst(VaxOp::Bicl2, {vimm(0xffffffe0u), vreg(0)});
            asm_.inst(VaxOp::Ashl, {vreg(0), vreg(1), vreg(0)});
            return;
        }
        if (o == ">>") {
            usesLsr_ = true;
            asm_.inst(VaxOp::Pushl, {vreg(1)}); // a
            asm_.inst(VaxOp::Pushl, {vreg(0)}); // n
            asm_.calls(2, "__lsr");
            return;
        }
        if (o == "&&" || o == "||") {
            normalizeBool(0);
            normalizeBool(1);
            if (o == "&&")
                asm_.inst(VaxOp::Mull2, {vreg(1), vreg(0)});
            else
                asm_.inst(VaxOp::Bisl2, {vreg(1), vreg(0)});
            return;
        }

        // Comparisons (unsigned): r1 (lhs) vs r0 (rhs) -> 0/1 in r0.
        VaxOp branch;
        if (o == "==")
            branch = VaxOp::Beql;
        else if (o == "!=")
            branch = VaxOp::Bneq;
        else if (o == "<")
            branch = VaxOp::Blssu;
        else if (o == "<=")
            branch = VaxOp::Blequ;
        else if (o == ">")
            branch = VaxOp::Bgtru;
        else if (o == ">=")
            branch = VaxOp::Bgequ;
        else {
            panic("genBinary: unhandled operator %s", o.c_str());
        }
        const std::string t_label = newLabel();
        const std::string d_label = newLabel();
        asm_.inst(VaxOp::Cmpl, {vreg(1), vreg(0)});
        asm_.br(branch, t_label);
        asm_.inst(VaxOp::Clrl, {vreg(0)});
        asm_.br(VaxOp::Brb, d_label);
        asm_.label(t_label);
        asm_.inst(VaxOp::Movl, {vlit(1), vreg(0)});
        asm_.label(d_label);
    }

    void
    genCall(const Expr &e)
    {
        const Function *callee = unit_.find(e.name);
        if (!callee) {
            fail(e.line, "unknown function '" + e.name + "'");
            return;
        }
        if (callee->params.size() != e.args.size()) {
            fail(e.line,
                 strprintf("%s expects %zu argument(s), got %zu",
                           e.name.c_str(), callee->params.size(),
                           e.args.size()));
            return;
        }
        for (const ExprPtr &arg : e.args) {
            genExpr(*arg);
            asm_.inst(VaxOp::Pushl, {vreg(0)});
        }
        asm_.calls(static_cast<unsigned>(e.args.size()), e.name);
    }

    // ---- runtime -----------------------------------------------------------------------

    /**
     * __udivmod(a, b): unsigned q -> r0, remainder -> r1, using the
     * signed DIVL hardware (see wl_gcd.cc for the case analysis).
     * Faults on b == 0 via the hardware divide.
     */
    void
    emitUdivmod()
    {
        asm_.entry("__udivmod", 0x003c); // saves r2..r5
        asm_.inst(VaxOp::Movl, {vdisp(AP, 4), vreg(2)}); // a
        asm_.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(3)}); // b
        asm_.inst(VaxOp::Tstl, {vreg(3)});
        asm_.br(VaxOp::Blss, "__udm_bbig");
        asm_.inst(VaxOp::Tstl, {vreg(2)});
        asm_.br(VaxOp::Blss, "__udm_abig");
        asm_.inst(VaxOp::Divl3, {vreg(3), vreg(2), vreg(4)});
        asm_.inst(VaxOp::Mull3, {vreg(4), vreg(3), vreg(5)});
        asm_.inst(VaxOp::Subl3, {vreg(5), vreg(2), vreg(5)});
        asm_.br(VaxOp::Brb, "__udm_done");
        asm_.label("__udm_abig");
        asm_.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-1)),
                                vreg(2), vreg(4)});
        asm_.inst(VaxOp::Bicl2, {vimm(0x80000000u), vreg(4)}); // half
        asm_.inst(VaxOp::Divl3, {vreg(3), vreg(4), vreg(5)});  // q1
        asm_.inst(VaxOp::Mull3, {vreg(5), vreg(3), vreg(1)});
        asm_.inst(VaxOp::Subl3, {vreg(1), vreg(4), vreg(4)}); // r1'
        asm_.inst(VaxOp::Addl2, {vreg(4), vreg(4)});
        asm_.inst(VaxOp::Bicl3, {vimm(0xfffffffeu), vreg(2), vreg(1)});
        asm_.inst(VaxOp::Addl2, {vreg(1), vreg(4)}); // t
        asm_.inst(VaxOp::Addl2, {vreg(5), vreg(5)}); // q = 2*q1
        asm_.label("__udm_adj");
        asm_.inst(VaxOp::Cmpl, {vreg(4), vreg(3)});
        asm_.br(VaxOp::Blssu, "__udm_swap");
        asm_.inst(VaxOp::Subl2, {vreg(3), vreg(4)});
        asm_.inst(VaxOp::Incl, {vreg(5)});
        asm_.br(VaxOp::Brb, "__udm_adj");
        asm_.label("__udm_swap");
        // Here q is r5 and remainder is r4; done expects q=r4, r=r5.
        asm_.inst(VaxOp::Movl, {vreg(4), vreg(1)});
        asm_.inst(VaxOp::Movl, {vreg(5), vreg(4)});
        asm_.inst(VaxOp::Movl, {vreg(1), vreg(5)});
        asm_.br(VaxOp::Brb, "__udm_done");
        asm_.label("__udm_bbig");
        asm_.inst(VaxOp::Cmpl, {vreg(2), vreg(3)});
        asm_.br(VaxOp::Blssu, "__udm_rema");
        asm_.inst(VaxOp::Subl3, {vreg(3), vreg(2), vreg(5)});
        asm_.inst(VaxOp::Movl, {vlit(1), vreg(4)});
        asm_.br(VaxOp::Brb, "__udm_done");
        asm_.label("__udm_rema");
        asm_.inst(VaxOp::Movl, {vreg(2), vreg(5)});
        asm_.inst(VaxOp::Clrl, {vreg(4)});
        asm_.label("__udm_done");
        asm_.inst(VaxOp::Movl, {vreg(4), vreg(0)});
        asm_.inst(VaxOp::Movl, {vreg(5), vreg(1)});
        asm_.ret();
    }

    /** __lsr(a, n): logical right shift by n & 31. */
    void
    emitLsr()
    {
        asm_.entry("__lsr", 0x000c); // saves r2, r3
        asm_.inst(VaxOp::Movl, {vdisp(AP, 4), vreg(2)});
        asm_.inst(VaxOp::Bicl3, {vimm(0xffffffe0u), vdisp(AP, 0),
                                 vreg(3)});
        asm_.label("__lsr_loop");
        asm_.inst(VaxOp::Tstl, {vreg(3)});
        asm_.br(VaxOp::Beql, "__lsr_done");
        asm_.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-1)),
                                vreg(2), vreg(2)});
        asm_.inst(VaxOp::Bicl2, {vimm(0x80000000u), vreg(2)});
        asm_.inst(VaxOp::Decl, {vreg(3)});
        asm_.br(VaxOp::Brb, "__lsr_loop");
        asm_.label("__lsr_done");
        asm_.inst(VaxOp::Movl, {vreg(2), vreg(0)});
        asm_.ret();
    }

    const Unit &unit_;
    CcOptions options_;

    VaxAsm asm_;
    bool failed_ = false;
    std::string error_;
    unsigned labelCounter_ = 0;

    std::map<std::string, Slot> vars_;
    unsigned numLocals_ = 0;
    bool usesDivMod_ = false;
    bool usesLsr_ = false;
};

} // namespace

VaxCompileResult
compileToVax(std::string_view source, const CcOptions &options)
{
    ParseResult parsed = parse(source);
    if (!parsed.ok) {
        VaxCompileResult result;
        result.error = parsed.error;
        return result;
    }
    VaxGen gen(parsed.unit, options);
    return gen.run();
}

} // namespace risc1::cc
