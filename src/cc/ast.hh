/**
 * @file
 * AST of tinyc — the reproduction's small high-level language. RISC I's
 * design brief was "support high-level languages with registers and
 * windows instead of microcode"; tinyc makes that testable: the same
 * source compiles to RISC I assembly (register locals, window calls)
 * and to vax80 (stack frames, CALLS), so compiled — not hand-tuned —
 * code drives the comparison.
 *
 * Language: 32-bit unsigned integers only.
 *
 *   program  := funcdef*
 *   funcdef  := name '(' [name (',' name)*] ')' block
 *   block    := '{' stmt* '}'
 *   stmt     := 'var' name ['=' expr] ';'
 *             | name '=' expr ';'
 *             | 'mem' '[' expr ']' '=' expr ';'
 *             | 'if' '(' expr ')' block ['else' block]
 *             | 'while' '(' expr ')' block
 *             | 'return' [expr] ';'
 *             | expr ';'
 *   expr     := precedence-climbing over
 *               || && | ^ & == != < <= > >= << >> + - * / %
 *               with unary - ! ~, calls f(a, b), mem[expr], numbers,
 *               parentheses. Comparisons are unsigned and yield 0/1;
 *               && and || are logical but NOT short-circuiting.
 *
 * `mem[i]` is a word-addressed global array (the program's only global
 * state); its size is a compiler option.
 */

#ifndef RISC1_CC_AST_HH
#define RISC1_CC_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace risc1::cc {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node. */
struct Expr
{
    enum class Kind : uint8_t
    {
        Number, //!< literal
        Var,    //!< local or parameter
        Unary,  //!< op: '-', '!', '~'
        Binary, //!< op in `binop`
        Call,   //!< name(args...)
        Mem,    //!< mem[index]
    };

    Kind kind = Kind::Number;
    unsigned line = 0;

    uint32_t number = 0;       // Number
    std::string name;          // Var / Call
    char unaryOp = 0;          // Unary
    std::string binop;         // Binary
    ExprPtr lhs, rhs;          // Unary (lhs), Binary
    ExprPtr index;             // Mem
    std::vector<ExprPtr> args; // Call
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** Statement node. */
struct Stmt
{
    enum class Kind : uint8_t
    {
        VarDecl,
        Assign,
        MemAssign,
        If,
        While,
        Return,
        ExprStmt,
    };

    Kind kind = Kind::ExprStmt;
    unsigned line = 0;

    std::string name;            // VarDecl / Assign
    ExprPtr value;               // initializer / rhs / return / expr
    ExprPtr cond;                // If / While
    ExprPtr index;               // MemAssign
    std::vector<StmtPtr> body;   // If-then / While
    std::vector<StmtPtr> orelse; // If-else
};

/** One function definition. */
struct Function
{
    std::string name;
    std::vector<std::string> params;
    std::vector<StmtPtr> body;
    unsigned line = 0;
};

/** A parsed translation unit. */
struct Unit
{
    std::vector<Function> functions;

    const Function *
    find(const std::string &name) const
    {
        for (const Function &fn : functions) {
            if (fn.name == name)
                return &fn;
        }
        return nullptr;
    }
};

} // namespace risc1::cc

#endif // RISC1_CC_AST_HH
