/**
 * @file
 * Status-message and error-reporting helpers, in the spirit of gem5's
 * logging.hh. `panic` is for internal invariant violations (simulator bugs);
 * `fatal` is for user errors (bad program, bad configuration); `warn` and
 * `inform` report non-fatal conditions.
 */

#ifndef RISC1_SUPPORT_LOGGING_HH
#define RISC1_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace risc1 {

/** Render a printf-style format string to a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** Render a printf-style format string to a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort with a message. Call when an internal invariant is violated —
 * i.e. a bug in the simulator itself, regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exception carrying a user-level error (bad assembly source, invalid
 * machine configuration, runaway guest program). Thrown by `fatal` so
 * library users and tests can catch it; uncaught it terminates with the
 * message.
 */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string message);

    const char *what() const noexcept override { return message_.c_str(); }
    const std::string &message() const { return message_; }

  private:
    std::string message_;
};

/**
 * Report an unrecoverable user-level error by throwing FatalError.
 * Use for conditions that are the user's fault, not simulator bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but non-fatal conditions to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report informative status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Silence warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);

} // namespace risc1

#endif // RISC1_SUPPORT_LOGGING_HH
