#include "support/strings.hh"

#include <cctype>
#include <cstdlib>

namespace risc1 {

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            return out;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
toUpper(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

namespace {

/** Decode one escape sequence body (after the backslash). */
std::optional<char>
unescape(char c)
{
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case 'b': return '\b';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default: return std::nullopt;
    }
}

} // namespace

std::optional<int64_t>
parseInt(std::string_view s)
{
    s = trim(s);
    if (s.empty())
        return std::nullopt;

    bool negative = false;
    if (s.front() == '-' || s.front() == '+') {
        negative = s.front() == '-';
        s.remove_prefix(1);
        if (s.empty())
            return std::nullopt;
    }

    // Character literal.
    if (s.front() == '\'') {
        char value;
        if (s.size() == 3 && s[2] == '\'') {
            value = s[1];
        } else if (s.size() == 4 && s[1] == '\\' && s[3] == '\'') {
            auto u = unescape(s[2]);
            if (!u)
                return std::nullopt;
            value = *u;
        } else {
            return std::nullopt;
        }
        int64_t v = static_cast<unsigned char>(value);
        return negative ? -v : v;
    }

    int base = 10;
    if (s.size() > 2 && s[0] == '0') {
        if (s[1] == 'x' || s[1] == 'X') {
            base = 16;
            s.remove_prefix(2);
        } else if (s[1] == 'b' || s[1] == 'B') {
            base = 2;
            s.remove_prefix(2);
        } else if (s[1] == 'o' || s[1] == 'O') {
            base = 8;
            s.remove_prefix(2);
        }
    }

    if (s.empty())
        return std::nullopt;

    uint64_t acc = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return std::nullopt;
        if (digit >= base)
            return std::nullopt;
        uint64_t next = acc * static_cast<uint64_t>(base) +
                        static_cast<uint64_t>(digit);
        if (next < acc || next > (uint64_t{1} << 63))
            return std::nullopt; // overflow
        acc = next;
    }

    if (negative)
        return -static_cast<int64_t>(acc);
    if (acc > static_cast<uint64_t>(INT64_MAX))
        return std::nullopt;
    return static_cast<int64_t>(acc);
}

} // namespace risc1
