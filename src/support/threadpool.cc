#include "support/threadpool.hh"

namespace risc1 {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) // stopping_ with a drained queue
            return;
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        lock.unlock();
        task();
        lock.lock();
        --running_;
        if (queue_.empty() && running_ == 0)
            idleCv_.notify_all();
    }
}

} // namespace risc1
