/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*), used by the
 * workload generators and property tests so every run is reproducible
 * without depending on std::random_device.
 */

#ifndef RISC1_SUPPORT_RNG_HH
#define RISC1_SUPPORT_RNG_HH

#include <cstdint>

namespace risc1 {

/** Small, fast, deterministic PRNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

  private:
    uint64_t state_;
};

} // namespace risc1

#endif // RISC1_SUPPORT_RNG_HH
