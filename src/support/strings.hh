/**
 * @file
 * Small string utilities shared by the assembler, disassembler and the
 * table-printing code in core/.
 */

#ifndef RISC1_SUPPORT_STRINGS_HH
#define RISC1_SUPPORT_STRINGS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace risc1 {

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; empty fields are kept. */
std::vector<std::string> split(std::string_view s, char delim);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Upper-case an ASCII string. */
std::string toUpper(std::string_view s);

/** Case-insensitive ASCII string equality. */
bool iequals(std::string_view a, std::string_view b);

/**
 * Parse an integer literal: decimal, 0x/0X hex, 0b binary, 0o octal, or a
 * single-quoted character ('a', '\n', '\0', '\\', '\''). A leading '-'
 * negates. Returns nullopt on malformed input or overflow of int64.
 */
std::optional<int64_t> parseInt(std::string_view s);

} // namespace risc1

#endif // RISC1_SUPPORT_STRINGS_HH
