/**
 * @file
 * A small fixed-size worker pool used by core::ParallelRunner. Tasks
 * are plain std::function jobs; wait() blocks until every submitted
 * task has finished. The pool imposes no ordering of its own —
 * deterministic output is the caller's job (see docs/PERFORMANCE.md).
 */

#ifndef RISC1_SUPPORT_THREADPOOL_HH
#define RISC1_SUPPORT_THREADPOOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace risc1 {

class ThreadPool
{
  public:
    /** Start `threads` workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Never blocks (the queue is unbounded). */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workCv_; //!< workers wait for tasks here
    std::condition_variable idleCv_; //!< wait() sleeps here
    unsigned running_ = 0;           //!< tasks currently executing
    bool stopping_ = false;
};

} // namespace risc1

#endif // RISC1_SUPPORT_THREADPOOL_HH
