/**
 * @file
 * Bit-manipulation helpers used by the ISA encoders/decoders and the
 * simulators. All helpers are constexpr and operate on unsigned 64-bit
 * values internally so they compose safely for any field width <= 32.
 */

#ifndef RISC1_SUPPORT_BITS_HH
#define RISC1_SUPPORT_BITS_HH

#include <cstdint>

namespace risc1 {

/** A mask of `nbits` ones in the low-order positions. */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << nbits) - 1);
}

/** Extract bits [last:first] (inclusive, last >= first) of `val`. */
constexpr uint64_t
bits(uint64_t val, unsigned last, unsigned first)
{
    return (val >> first) & mask(last - first + 1);
}

/** Extract the single bit `pos` of `val`. */
constexpr bool
bit(uint64_t val, unsigned pos)
{
    return (val >> pos) & 1;
}

/**
 * Return `val` with bits [last:first] replaced by the low bits of `field`.
 */
constexpr uint64_t
insertBits(uint64_t val, unsigned last, unsigned first, uint64_t field)
{
    const uint64_t m = mask(last - first + 1) << first;
    return (val & ~m) | ((field << first) & m);
}

/** Sign-extend the low `nbits` of `val` to a signed 64-bit value. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    const uint64_t sign_bit = uint64_t{1} << (nbits - 1);
    const uint64_t v = val & mask(nbits);
    return static_cast<int64_t>((v ^ sign_bit) - sign_bit);
}

/** True iff the signed value fits in a two's-complement field of `nbits`. */
constexpr bool
fitsSigned(int64_t val, unsigned nbits)
{
    const int64_t lo = -(int64_t{1} << (nbits - 1));
    const int64_t hi = (int64_t{1} << (nbits - 1)) - 1;
    return val >= lo && val <= hi;
}

/** True iff the value fits in an unsigned field of `nbits`. */
constexpr bool
fitsUnsigned(uint64_t val, unsigned nbits)
{
    return nbits >= 64 || val <= mask(nbits);
}

/** True iff `val` is a power of two (and nonzero). */
constexpr bool
isPow2(uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Round `val` up to the next multiple of power-of-two `align`. */
constexpr uint64_t
roundUp(uint64_t val, uint64_t align)
{
    return (val + align - 1) & ~(align - 1);
}

} // namespace risc1

#endif // RISC1_SUPPORT_BITS_HH
