#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace risc1 {

namespace {
bool quietMode = false;
} // namespace

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

FatalError::FatalError(std::string message) : message_(std::move(message)) {}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace risc1
