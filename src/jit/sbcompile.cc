#include "jit/sbcompile.hh"

#include <cstddef>
#include <cstring>
#include <utility>

#include "isa/condition.hh"
#include "jit/emitter_x86.hh"

namespace risc1::jit {

#if defined(__x86_64__)

namespace {

using isa::Cond;
using sim::ExecTag;
using sim::SbStep;

// SbJitExit field offsets burned into [r12 + disp8] accesses.
constexpr uint8_t OffMaxIters = 0;
constexpr uint8_t OffIters = 8;
constexpr uint8_t OffTTarget = 16;
constexpr uint8_t OffTTaken = 20;
constexpr uint8_t OffDone = 24;
constexpr uint8_t OffLastPc = 28;
constexpr uint8_t OffInstBudget = 32;
constexpr uint8_t OffCycleBudget = 40;
constexpr uint8_t OffCurSb = 48;
constexpr uint8_t OffChained = 56;
constexpr uint8_t OffDirtyCur = 64;
constexpr uint8_t OffDirtyEnd = 72;
constexpr uint8_t OffEpiRing = 80;
constexpr uint8_t OffEpiPos = 88;
static_assert(offsetof(SbJitExit, maxIters) == OffMaxIters);
static_assert(offsetof(SbJitExit, iters) == OffIters);
static_assert(offsetof(SbJitExit, tTarget) == OffTTarget);
static_assert(offsetof(SbJitExit, tTaken) == OffTTaken);
static_assert(offsetof(SbJitExit, done) == OffDone);
static_assert(offsetof(SbJitExit, lastPc) == OffLastPc);
static_assert(offsetof(SbJitExit, instBudget) == OffInstBudget);
static_assert(offsetof(SbJitExit, cycleBudget) == OffCycleBudget);
static_assert(offsetof(SbJitExit, curSb) == OffCurSb);
static_assert(offsetof(SbJitExit, chained) == OffChained);
static_assert(offsetof(SbJitExit, dirtyCur) == OffDirtyCur);
static_assert(offsetof(SbJitExit, dirtyEnd) == OffDirtyEnd);
static_assert(offsetof(SbJitExit, epiRing) == OffEpiRing);
static_assert(offsetof(SbJitExit, epiPos) == OffEpiPos);

// SbChainScratch field offsets burned into [rdx + disp8] accesses.
// The scratch is SuperblockRecord's first member, so a record pointer
// IS the scratch pointer.
constexpr uint8_t ScrPendingIters = 0;
constexpr uint8_t ScrPendingTaken = 8;
constexpr uint8_t ScrUnchained = 16;
constexpr uint8_t ScrDirty = 20;
static_assert(offsetof(sim::SuperblockRecord, chain) == 0);
static_assert(offsetof(sim::SbChainScratch, pendingIters) ==
              ScrPendingIters);
static_assert(offsetof(sim::SbChainScratch, pendingTaken) ==
              ScrPendingTaken);
static_assert(offsetof(sim::SbChainScratch, unchained) == ScrUnchained);
static_assert(offsetof(sim::SbChainScratch, dirty) == ScrDirty);

// The episode ring is indexed natively: (pos & 15) << 4.
static_assert(sizeof(SbChainEpisode) == 16);
static_assert(offsetof(SbChainEpisode, sb) == 0);
static_assert(offsetof(SbChainEpisode, iters) == 8);

// Flag byte offsets off r13 (isa::Flags layout, asserted by the Cpu
// before it hands out the pointer).
constexpr uint8_t FlagZ = 0;
constexpr uint8_t FlagN = 1;
constexpr uint8_t FlagV = 2;
constexpr uint8_t FlagC = 3;

/** eax := operand a (phys[phys1] & mask1; masks are 0 or ~0). */
void
operandA(Emitter &e, const SbStep &st)
{
    if (st.mask1 != 0)
        e.loadPhys(Gp32::Eax, st.phys1 * 4u);
    else
        e.xorEaxEax();
}

/** ecx := operand b ((phys[phys2] & mask2) | immOr). */
void
operandB(Emitter &e, const SbStep &st)
{
    if (st.mask2 != 0) {
        e.loadPhys(Gp32::Ecx, st.phys2 * 4u);
        if (st.immOr != 0)
            e.orEcxImm32(st.immOr);
    } else if (st.immOr != 0) {
        e.movEcxImm32(st.immOr);
    } else {
        e.xorEcxEcx();
    }
}

/** mov [rbx + physd*4], eax — predicated on maskd like the interpreter. */
void
writeback(Emitter &e, const SbStep &st)
{
    if (st.maskd != 0)
        e.storePhysEax(st.physd * 4u);
}

/** Store Z/N from the live x86 flags, then V/C per setcc condition. */
void
storeFlagsZNVC(Emitter &e, Cc vcc, Cc ccc)
{
    e.setccFlag(Cc::E, FlagZ);
    e.setccFlag(Cc::S, FlagN);
    e.setccFlag(vcc, FlagV);
    e.setccFlag(ccc, FlagC);
}

/** Z/N from `test eax,eax`; V and C cleared (logical / shift scc). */
void
storeFlagsLogical(Emitter &e)
{
    e.testEaxEax();
    e.setccFlag(Cc::E, FlagZ);
    e.setccFlag(Cc::S, FlagN);
    e.clearFlag(FlagV);
    e.clearFlag(FlagC);
}

/** CF := stored carry flag (for adc-based Addc/Subc/Subcr). */
void
loadCarryIntoCf(Emitter &e)
{
    e.loadFlag(Gp32::Edx, FlagC);
    e.btEdx0();
}

/** ebp := condHolds(cond, flags), 0 or 1 (isa/condition.cc tables). */
void
emitCond(Emitter &e, Cond cond)
{
    switch (cond) {
      case Cond::Nev:
        e.xorEbpEbp();
        break;
      case Cond::Alw:
        e.movEbpImm32(1);
        break;
      case Cond::Eq:
        e.loadFlagEbp(FlagZ);
        break;
      case Cond::Ne:
        e.loadFlagEbp(FlagZ);
        e.xorEbpImm1();
        break;
      case Cond::Lt:
      case Cond::Ge:
        e.loadFlagEbp(FlagN);
        e.loadFlag(Gp32::Ecx, FlagV);
        e.xorEbpEcx();
        if (cond == Cond::Ge)
            e.xorEbpImm1();
        break;
      case Cond::Le:
      case Cond::Gt:
        e.loadFlagEbp(FlagN);
        e.loadFlag(Gp32::Ecx, FlagV);
        e.xorEbpEcx();
        e.loadFlag(Gp32::Ecx, FlagZ);
        e.orEbpEcx();
        if (cond == Cond::Gt)
            e.xorEbpImm1();
        break;
      case Cond::Lo:
        e.loadFlagEbp(FlagC);
        e.xorEbpImm1();
        break;
      case Cond::His:
        e.loadFlagEbp(FlagC);
        break;
      case Cond::Los:
        e.loadFlagEbp(FlagC);
        e.xorEbpImm1();
        e.loadFlag(Gp32::Ecx, FlagZ);
        e.orEbpEcx();
        break;
      case Cond::Hi:
        e.loadFlagEbp(FlagC);
        e.loadFlag(Gp32::Ecx, FlagZ);
        e.xorEcxImm1();
        e.andEbpEcx();
        break;
      case Cond::Pl:
        e.loadFlagEbp(FlagN);
        e.xorEbpImm1();
        break;
      case Cond::Mi:
        e.loadFlagEbp(FlagN);
        break;
      case Cond::Nv:
        e.loadFlagEbp(FlagV);
        e.xorEbpImm1();
        break;
      case Cond::Ov:
        e.loadFlagEbp(FlagV);
        break;
    }
}

/** rdi := cpu, rax := helper, call; rsi/rdx are loaded by the caller. */
void
emitHelperCall(Emitter &e, const SbJitEnv &env, const void *helper)
{
    e.movRdiImm64(reinterpret_cast<uint64_t>(env.cpu));
    e.movRaxImm64(reinterpret_cast<uint64_t>(helper));
    e.callRax();
}

struct PendingExit
{
    size_t fixup;  //!< jcc rel32 to patch
    uint32_t step; //!< faulting / bailing step index
};

/** What a block's templates touch — drives the minimal prologue. */
struct BlockNeeds
{
    bool flags = false; //!< r13 (any flag read or write)
    bool calls = false; //!< helper calls (memory steps)
};

/** True when evaluating `cond` reads the stored flags. */
bool
condReadsFlags(Cond cond)
{
    return cond != Cond::Alw && cond != Cond::Nev;
}

BlockNeeds
scanNeeds(const SbStep *steps, uint32_t count)
{
    BlockNeeds n;
    for (uint32_t i = 0; i < count; ++i) {
        const SbStep &st = steps[i];
        switch (st.tag) {
          case ExecTag::Addc:
          case ExecTag::Subc:
          case ExecTag::Subcr:
            n.flags = true; // carry is read even without scc
            break;
          case ExecTag::Getpsw:
            n.flags = true;
            break;
          case ExecTag::Jmp:
          case ExecTag::Jmpr:
            if (condReadsFlags(st.inst.cond()))
                n.flags = true;
            break;
          case ExecTag::Ldl:
          case ExecTag::Ldsu:
          case ExecTag::Ldss:
          case ExecTag::Ldbu:
          case ExecTag::Ldbs:
          case ExecTag::Stl:
          case ExecTag::Sts:
          case ExecTag::Stb:
          case ExecTag::Call:
          case ExecTag::Callr:
          case ExecTag::Ret:
            n.calls = true; // window terminators call the push/pop helper
            break;
          default:
            break;
        }
        if (st.inst.scc)
            n.flags = true;
    }
    return n;
}

} // namespace

const void *
compileSuperblock(CodeArena &arena, const SbJitEnv &env,
                  const SbStep *steps, uint32_t count, bool hasTerm,
                  SbJitCompiled *out)
{
    // Thread-local scratch: every program load recompiles every hot
    // block (the decode cache is dropped), so per-compile heap
    // traffic is on the dispatch fast path's tail.
    static thread_local Emitter e;
    static thread_local std::vector<PendingExit> faults;
    static thread_local std::vector<PendingExit> bails;
    static thread_local std::vector<size_t> exits;
    static thread_local std::vector<size_t> takenExits;
    static thread_local std::vector<size_t> fallExits;
    e.clear();
    faults.clear();
    bails.clear();
    exits.clear();
    takenExits.clear();
    fallExits.clear();

    const bool chain = env.chain;
    const BlockNeeds needs = scanNeeds(steps, count);
    bool pad;
    size_t chainEntryOff = 0;
    if (chain) {
        // Chain mode needs one *uniform* frame: a chain stub jumps
        // into any block's chainEntry, so every block must save the
        // same registers and keep the same rsp displacement. Six
        // pushes leave rsp 8 mod 16; the constant pad restores call
        // alignment.
        pad = true;
        e.pushRbx();
        e.pushRbp();
        e.pushR12();
        e.pushR13();
        e.pushR14();
        e.pushR15();
        e.subRsp8();
        e.movR12Rdi();
        e.movRbxImm64(reinterpret_cast<uint64_t>(env.phys));
        e.movR13Imm64(reinterpret_cast<uint64_t>(env.flags));
        // First-pass budget debit. The wrapper's dispatch gate
        // guarantees admission for the call path; a chain stub debits
        // the target itself and enters past this, at chainEntry.
        e.subCtx64Imm32(OffInstBudget, count);
        if (env.cycleGuard)
            e.subCtx64Imm32(OffCycleBudget, env.passCycles);
        chainEntryOff = e.here();
        e.xorR15R15();   // iters = 0
        e.xorEbpEbp();   // t_taken = false
        e.xorR14dR14d(); // t_target = 0
    } else {
        // Prologue: save only what this block's templates touch —
        // r12/r15 plus rbx are always live, the flag base and
        // terminator latches only when the pre-scan says so. The pad
        // byte count keeps rsp 16-byte aligned at helper call sites,
        // and is only paid when the block actually calls.
        const unsigned npush =
            3u + (hasTerm ? 2u : 0u) + (needs.flags ? 1u : 0u);
        pad = needs.calls && (npush & 1u) == 0;
        e.pushRbx();
        if (hasTerm)
            e.pushRbp();
        e.pushR12();
        if (needs.flags)
            e.pushR13();
        if (hasTerm)
            e.pushR14();
        e.pushR15();
        if (pad)
            e.subRsp8();
        e.movR12Rdi();
        e.movRbxImm64(reinterpret_cast<uint64_t>(env.phys));
        if (needs.flags)
            e.movR13Imm64(reinterpret_cast<uint64_t>(env.flags));
        e.xorR15R15(); // iters = 0
        if (hasTerm) {
            // Zeroed so a fault/bail before the first pass reaches
            // the terminator still stores defined values from `fin`.
            e.xorEbpEbp();   // t_taken = false
            e.xorR14dR14d(); // t_target = 0
        }
    }

    const size_t top = e.here();
    for (uint32_t i = 0; i < count; ++i) {
        // The fattest template (a guarded store) stays well under
        // this; declining compilation beats running off the buffer.
        if (!e.roomFor(512))
            return nullptr;
        const SbStep &st = steps[i];
        const bool scc = st.inst.scc;
        switch (st.tag) {
          case ExecTag::Add:
            operandA(e, st);
            operandB(e, st);
            if (scc) {
                e.addEaxEcx();
                storeFlagsZNVC(e, Cc::O, Cc::C);
            } else {
                e.addEaxEcx();
            }
            writeback(e, st);
            break;
          case ExecTag::Addc:
            operandA(e, st);
            operandB(e, st);
            if (scc) {
                loadCarryIntoCf(e);
                e.adcEaxEcx();
                storeFlagsZNVC(e, Cc::O, Cc::C);
            } else {
                e.loadFlag(Gp32::Edx, FlagC);
                e.addEaxEcx();
                e.addEaxEdx();
            }
            writeback(e, st);
            break;
          case ExecTag::Sub:
            operandA(e, st);
            operandB(e, st);
            e.subEaxEcx();
            // RISC carry is "no borrow": the inverse of x86 CF.
            if (scc)
                storeFlagsZNVC(e, Cc::O, Cc::Nc);
            writeback(e, st);
            break;
          case ExecTag::Subc:
            // a + ~b + c, matching execAlu's add_with_carry(a, ~b, c):
            // the adc carry-out IS the architectural carry, and its
            // signed overflow equals the subtraction formula.
            operandA(e, st);
            operandB(e, st);
            e.notEcx();
            if (scc) {
                loadCarryIntoCf(e);
                e.adcEaxEcx();
                storeFlagsZNVC(e, Cc::O, Cc::C);
            } else {
                e.loadFlag(Gp32::Edx, FlagC);
                e.addEaxEcx();
                e.addEaxEdx();
            }
            writeback(e, st);
            break;
          case ExecTag::Subr:
            operandA(e, st);
            operandB(e, st);
            e.subEcxEax();
            if (scc) {
                e.setccFlag(Cc::E, FlagZ);
                e.setccFlag(Cc::S, FlagN);
                e.setccFlag(Cc::O, FlagV);
                e.setccFlag(Cc::Nc, FlagC);
            }
            e.movEaxEcx();
            writeback(e, st);
            break;
          case ExecTag::Subcr:
            operandA(e, st);
            operandB(e, st);
            e.notEax();
            if (scc) {
                loadCarryIntoCf(e);
                e.adcEaxEcx();
                storeFlagsZNVC(e, Cc::O, Cc::C);
            } else {
                e.loadFlag(Gp32::Edx, FlagC);
                e.addEaxEcx();
                e.addEaxEdx();
            }
            writeback(e, st);
            break;
          case ExecTag::And:
            operandA(e, st);
            operandB(e, st);
            e.andEaxEcx();
            if (scc)
                storeFlagsLogical(e);
            writeback(e, st);
            break;
          case ExecTag::Or:
            operandA(e, st);
            operandB(e, st);
            e.orEaxEcx();
            if (scc)
                storeFlagsLogical(e);
            writeback(e, st);
            break;
          case ExecTag::Xor:
            operandA(e, st);
            operandB(e, st);
            e.xorEaxEcx();
            if (scc)
                storeFlagsLogical(e);
            writeback(e, st);
            break;
          case ExecTag::Sll:
          case ExecTag::Srl:
          case ExecTag::Sra:
            operandA(e, st);
            operandB(e, st);
            // x86 masks cl by 31 for 32-bit shifts, same as `b & 31`;
            // a zero shift leaves the hardware flags stale, so scc
            // flags always come from an explicit test of the result.
            if (st.tag == ExecTag::Sll)
                e.shlEaxCl();
            else if (st.tag == ExecTag::Srl)
                e.shrEaxCl();
            else
                e.sarEaxCl();
            if (scc)
                storeFlagsLogical(e);
            writeback(e, st);
            break;

          case ExecTag::Ldl:
          case ExecTag::Ldsu:
          case ExecTag::Ldss:
          case ExecTag::Ldbu:
          case ExecTag::Ldbs: {
            const JitLoadFn fn = st.tag == ExecTag::Ldl    ? env.load32
                                 : st.tag == ExecTag::Ldsu ? env.load16u
                                 : st.tag == ExecTag::Ldss ? env.load16s
                                 : st.tag == ExecTag::Ldbu ? env.load8u
                                                           : env.load8s;
            operandA(e, st);
            operandB(e, st);
            e.addEaxEcx();
            e.movEsiEax();
            emitHelperCall(e, env, reinterpret_cast<const void *>(fn));
            e.testRaxRax();
            faults.push_back({e.jccFwd(Cc::S), i});
            writeback(e, st);
            break;
          }

          case ExecTag::Stl:
          case ExecTag::Sts:
          case ExecTag::Stb: {
            const JitStoreFn fn = st.tag == ExecTag::Stl   ? env.store32
                                  : st.tag == ExecTag::Sts ? env.store16
                                                           : env.store8;
            operandA(e, st);
            operandB(e, st);
            e.addEaxEcx();
            e.movEsiEax();
            if (st.maskd != 0)
                e.loadPhys(Gp32::Edx, st.physd * 4u);
            else
                e.xorEdxEdx();
            emitHelperCall(e, env, reinterpret_cast<const void *>(fn));
            e.testRaxRax();
            faults.push_back({e.jccFwd(Cc::S), i});
            if (i + 1 < count) {
                // A store into this very block's words demoted it: the
                // unexecuted tail is stale, bail to the slow commit.
                e.movRaxImm64(reinterpret_cast<uint64_t>(env.live));
                e.cmpByteRax0();
                bails.push_back({e.jccFwd(Cc::E), i});
            }
            break;
          }

          case ExecTag::Ldhi:
            if (st.maskd != 0) {
                e.movEaxImm32(st.immOr);
                writeback(e, st);
            }
            break;

          case ExecTag::Gtlpc:
            if (st.maskd != 0) {
                if (i != 0) {
                    e.movEaxImm32(env.head + (i - 1) * 4u);
                } else {
                    // First step: iterations after the first see the
                    // previous pass's delay slot; the very first pass
                    // sees the dispatcher's lastPc_ (passed via ctx).
                    e.testR15R15();
                    const size_t reiter = e.jccFwd(Cc::Ne);
                    e.loadCtxEax(OffLastPc);
                    const size_t join = e.jmpFwd();
                    e.bind(reiter);
                    e.movEaxImm32(env.head + (count - 1) * 4u);
                    e.bind(join);
                }
                writeback(e, st);
            }
            break;

          case ExecTag::Getpsw:
            if (st.maskd != 0) {
                e.movRaxImm64(reinterpret_cast<uint64_t>(env.ie));
                e.movzxEcxByteRax();
                e.shlEcxImm8(4);
                e.loadFlag(Gp32::Eax, FlagC);
                e.orEaxEcx();
                e.loadFlag(Gp32::Ecx, FlagV);
                e.shlEcxImm8(1);
                e.orEaxEcx();
                e.loadFlag(Gp32::Ecx, FlagN);
                e.shlEcxImm8(2);
                e.orEaxEcx();
                e.loadFlag(Gp32::Ecx, FlagZ);
                e.shlEcxImm8(3);
                e.orEaxEcx();
                // The delay slot of a window terminator already runs
                // under the shifted window.
                const uint32_t cwp_at =
                    env.termWindow != 0 && i + 1 == count
                        ? env.delayCwp
                        : env.cwp;
                e.orEaxImm32(cwp_at << 8);
                writeback(e, st);
            }
            break;

          case ExecTag::Jmp:
            // Swallowed terminator: latch target and outcome, applied
            // by the shared epilogue after the delay-slot step.
            operandA(e, st);
            operandB(e, st);
            e.addEaxEcx();
            e.movR14dEax();
            emitCond(e, st.inst.cond());
            break;

          case ExecTag::Jmpr:
            e.movR14dImm32(env.head + i * 4u +
                           static_cast<uint32_t>(st.immOr));
            emitCond(e, st.inst.cond());
            break;

          case ExecTag::Call:
          case ExecTag::Callr:
            // Window-push terminator (always taken). The target is
            // computed in the *caller's* window before the push; the
            // link register lives in the pushed window, at a physical
            // index that is a per-entry-cwp constant. The helper is
            // the interpreter's windowPush itself, so spills, their
            // stats and their faults need no native path — a fault
            // leaves the CALL unretired at step `i`, exactly like a
            // faulting load.
            if (env.termWindow != 1 || i + 2 != count)
                return nullptr;
            if (st.tag == ExecTag::Call) {
                operandA(e, st);
                operandB(e, st);
                e.addEaxEcx();
                e.movR14dEax();
            } else {
                e.movR14dImm32(env.head + i * 4u +
                               static_cast<uint32_t>(st.immOr));
            }
            e.movEbpImm32(1);
            emitHelperCall(
                e, env, reinterpret_cast<const void *>(env.windowPush));
            e.testRaxRax();
            faults.push_back({e.jccFwd(Cc::S), i});
            if (st.maskd != 0) {
                e.movEaxImm32(env.head + i * 4u);
                e.storePhysEax(env.linkPhys * 4u);
            }
            // A spill that stored into this very block's words demoted
            // it: the baked delay step is stale, bail with the CALL
            // retired and the transfer latched.
            e.movRaxImm64(reinterpret_cast<uint64_t>(env.live));
            e.cmpByteRax0();
            bails.push_back({e.jccFwd(Cc::E), i});
            break;

          case ExecTag::Ret:
            // Window-pop terminator: the return target reads the
            // *callee's* window before the pop. Underflow (refill
            // fault or exhausted stack) surfaces as a helper fault
            // with the RET unretired; refills only read memory, so no
            // demotion check is needed.
            if (env.termWindow != 2 || i + 2 != count)
                return nullptr;
            operandA(e, st);
            operandB(e, st);
            e.addEaxEcx();
            e.movR14dEax();
            e.movEbpImm32(1);
            emitHelperCall(
                e, env, reinterpret_cast<const void *>(env.windowPop));
            e.testRaxRax();
            faults.push_back({e.jccFwd(Cc::S), i});
            break;

          default:
            // Interrupt transfers / PUTPSW can never be baked into a
            // step.
            return nullptr;
        }
    }

    // Pass epilogue: ++iters, then the inlined self-loop — retake the
    // block in place while the terminator jumps back to its own head,
    // the block stays live, and the budget (chain mode: admission
    // against the live instruction/cycle budgets; otherwise the
    // precomputed maxIters the wrapper folded in) allows.
    e.incR15();
    if (chain) {
        if (hasTerm && !env.noSelfLoop) {
            e.testEbpEbp();
            fallExits.push_back(e.jccFwd(Cc::E));
            e.cmpR14dImm32(env.head);
            takenExits.push_back(e.jccFwd(Cc::Ne));
            e.movRaxImm64(reinterpret_cast<uint64_t>(env.live));
            e.cmpByteRax0();
            takenExits.push_back(e.jccFwd(Cc::E));
            // Admit the next pass: instruction budget >= count and a
            // non-negative cycle budget, debited only when both hold
            // (a refused pass must leave the budgets untouched). The
            // cycle side is skipped outright for a watchdog-less Cpu.
            e.loadCtxRax64(OffInstBudget);
            e.subRaxImm32(count);
            exits.push_back(e.jccFwd(Cc::C));
            if (env.cycleGuard) {
                e.loadCtxRcx64(OffCycleBudget);
                e.testRcxRcx();
                exits.push_back(e.jccFwd(Cc::S));
            }
            e.storeCtxRax64(OffInstBudget);
            if (env.cycleGuard) {
                e.subRcxImm32(env.passCycles);
                e.storeCtxRcx64(OffCycleBudget);
            }
            e.jmpBack(top);
        } else if (hasTerm) {
            if (env.termWindow != 0) {
                // Window terminators are always taken.
                takenExits.push_back(e.jmpFwd());
            } else {
                e.testEbpEbp();
                fallExits.push_back(e.jccFwd(Cc::E));
                takenExits.push_back(e.jmpFwd());
            }
        } else {
            // No terminator: the block exits to its sequential
            // successor.
            fallExits.push_back(e.jmpFwd());
        }
    } else if (hasTerm && !env.noSelfLoop) {
        e.testEbpEbp();
        exits.push_back(e.jccFwd(Cc::E));
        e.cmpR14dImm32(env.head);
        exits.push_back(e.jccFwd(Cc::Ne));
        e.movRaxImm64(reinterpret_cast<uint64_t>(env.live));
        e.cmpByteRax0();
        exits.push_back(e.jccFwd(Cc::E));
        e.cmpR15Ctx(OffMaxIters);
        e.jccBack(Cc::C, top);
    }
    // Epilogue + exit stubs (+ chain slots) are bounded: guard once
    // for all of them.
    if (!e.roomFor((faults.size() + bails.size()) * 24 + 96 +
                   (chain ? 2 * size_t{SbChainSlotSize} + 32 : 0)))
        return nullptr;
    for (const size_t fix : exits)
        e.bind(fix);
    const size_t commonDone = e.here();
    e.xorEaxEax(); // SbJitDone
    const size_t fin = e.here();
    e.storeCtxR15(OffIters);
    if (hasTerm) {
        e.storeCtxR14d(OffTTarget);
        e.storeCtxEbp(OffTTaken);
    } else {
        e.storeCtxImm32(OffTTarget, 0);
        e.storeCtxImm32(OffTTaken, 0);
    }
    if (chain) {
        e.addRsp8();
        e.popR15();
        e.popR14();
        e.popR13();
        e.popR12();
        e.popRbp();
        e.popRbx();
    } else {
        if (pad)
            e.addRsp8();
        e.popR15();
        if (hasTerm)
            e.popR14();
        if (needs.flags)
            e.popR13();
        e.popR12();
        if (hasTerm)
            e.popRbp();
        e.popRbx();
    }
    e.ret();

    // Out-of-line exits: record the precise step, set the status and
    // rejoin the common context-store tail.
    for (const PendingExit &p : faults) {
        e.bind(p.fixup);
        e.storeCtxImm32(OffDone, p.step);
        e.movEaxImm32(SbJitFault);
        e.jmpBack(fin);
    }
    for (const PendingExit &p : bails) {
        e.bind(p.fixup);
        e.storeCtxImm32(OffDone, p.step);
        e.movEaxImm32(SbJitStoreBail);
        e.jmpBack(fin);
    }

    // Patchable chain slots. Unpatched, a slot is one `jmp commonDone`
    // (a plain exit through the normal epilogue) padded with int3 to
    // the fixed span; linkChainSlot later rewrites it in place into a
    // guarded direct transfer. The exit branches route the taken and
    // fallthrough directions to their slots so a patch takes effect
    // without touching the block body.
    size_t takenSlotBlobOff = 0;
    size_t fallSlotBlobOff = 0;
    if (chain) {
        if (hasTerm) {
            takenSlotBlobOff = e.here();
            for (const size_t fix : takenExits)
                e.bind(fix);
            e.jmpBack(commonDone);
            while (e.size() < takenSlotBlobOff + SbChainSlotSize)
                e.int3();
        }
        if (!hasTerm || env.termWindow == 0) {
            fallSlotBlobOff = e.here();
            for (const size_t fix : fallExits)
                e.bind(fix);
            e.jmpBack(commonDone);
            while (e.size() < fallSlotBlobOff + SbChainSlotSize)
                e.int3();
        }
    }

    const void *entry = arena.install(e.data(), e.size());
    if (entry == nullptr)
        return nullptr;
    if (out != nullptr) {
        const size_t base = arena.offsetOf(entry);
        out->entry = entry;
        out->chainEntry =
            chain ? static_cast<const uint8_t *>(entry) + chainEntryOff
                  : nullptr;
        out->takenSlotOff =
            takenSlotBlobOff != 0
                ? static_cast<uint32_t>(base + takenSlotBlobOff)
                : 0;
        out->fallSlotOff =
            fallSlotBlobOff != 0
                ? static_cast<uint32_t>(base + fallSlotBlobOff)
                : 0;
    }
    return entry;
}

bool
linkChainSlot(CodeArena &arena, const SbChainLinkReq *reqs, size_t n)
{
    if (n == 0 || n > 2)
        return false;
    const SbChainLinkReq &first = reqs[0];
    if (first.slotOff == 0 ||
        first.slotOff + SbChainSlotSize > arena.usedBytes())
        return false;
    // Recover the common-exit address from the unpatched slot's own
    // leading `jmp rel32` — the one instruction a slot holds until it
    // is patched. On a re-link the slot already holds a stub, so the
    // jmp is read from the registry's saved original bytes instead.
    const uint8_t *slot = arena.rxAt(first.slotOff);
    const uint8_t *jmp_src = slot;
    if (slot[0] != 0xe9) {
        const std::vector<uint8_t> *orig = arena.chainOrig(first.slotOff);
        if (orig == nullptr || orig->size() < 5 || (*orig)[0] != 0xe9)
            return false;
        jmp_src = orig->data();
    }
    int32_t common_rel;
    std::memcpy(&common_rel, jmp_src + 1, 4);
    const uint8_t *common_abs = slot + 5 + common_rel;

    static thread_local Emitter e;
    static thread_local std::vector<size_t> aborts;
    e.clear();
    aborts.clear();

    for (size_t i = 0; i < n; ++i) {
        const SbChainLinkReq &req = reqs[i];
        // ---- guards: no state is mutated until every one passes ----
        size_t next_entry = 0;
        if (req.taken) {
            // Inline-cache dispatch: a target mismatch tries the next
            // cached entry; the last entry's mismatch exits through
            // the common epilogue like every other refused guard.
            e.cmpR14dImm32(req.dstHead);
            if (i + 1 < n)
                next_entry = e.jccFwd(Cc::Ne);
            else
                aborts.push_back(e.jccFwd(Cc::Ne));
        }
        e.movRaxImm64(reinterpret_cast<uint64_t>(req.dstLive));
        e.cmpByteRax0();
        aborts.push_back(e.jccFwd(Cc::E));
        e.loadCtxRax64(OffInstBudget);
        e.subRaxImm32(req.dstCount);
        aborts.push_back(e.jccFwd(Cc::C));
        if (req.cycleGuard) {
            e.loadCtxRcx64(OffCycleBudget);
            e.testRcxRcx();
            aborts.push_back(e.jccFwd(Cc::S));
        }
        e.movRdxImm64(reinterpret_cast<uint64_t>(req.src));
        e.cmpByteRdx0(ScrDirty);
        const size_t have_slot = e.jccFwd(Cc::Ne);
        e.loadCtxRsi64(OffDirtyCur);
        e.cmpRsiCtx64(OffDirtyEnd);
        aborts.push_back(e.jccFwd(Cc::Nc)); // dirty list full
        e.bind(have_slot);

        // ---- commit: budgets, source flush, episode, transfer ------
        e.storeCtxRax64(OffInstBudget);
        if (req.cycleGuard) {
            e.subRcxImm32(req.dstCycles);
            e.storeCtxRcx64(OffCycleBudget);
        }
        e.addMemRdxR15(ScrPendingIters);
        if (req.taken) {
            e.addMemRdxR15(ScrPendingTaken);
        } else {
            // A fallthrough exit's final pass was not taken.
            e.leaRcxR15Minus1();
            e.addMemRdxRcx(ScrPendingTaken);
        }
        e.movMemRdxImm32(ScrUnchained, 0);
        e.cmpByteRdx0(ScrDirty);
        const size_t skip_append = e.jccFwd(Cc::Ne);
        e.movByteRdx1(ScrDirty);
        e.loadCtxRsi64(OffDirtyCur);
        e.storeRdxAtRsi();
        e.addRsi8();
        e.storeCtxRsi64(OffDirtyCur);
        e.bind(skip_append);
        // Episode ring: slot (epiPos & 15) <- {src, iters}.
        e.loadCtxRax64(OffEpiPos);
        e.andEaxImm8(15);
        e.shlEaxImm8(4);
        e.addRaxCtx64(OffEpiRing);
        e.storeRdxAtRax();
        e.storeR15AtRax8();
        e.incCtx64(OffEpiPos);
        e.incCtx64(OffChained);
        e.movRaxImm64(reinterpret_cast<uint64_t>(req.dst));
        e.storeCtxRax64(OffCurSb);
        e.storeCtxImm32(OffLastPc, req.srcLastPc);
        {
            const uint8_t *target =
                static_cast<const uint8_t *>(req.dstChainEntry);
            e.jmpRel32(static_cast<int32_t>(
                target - (slot + e.size() + 5)));
        }
        if (next_entry != 0)
            e.bind(next_entry);
    }
    for (const size_t fix : aborts)
        e.bind(fix);
    e.jmpRel32(
        static_cast<int32_t>(common_abs - (slot + e.size() + 5)));

    if (e.size() > SbChainSlotSize)
        return false;
    return arena.patchChain(first.slotOff, e.data(), e.size(),
                            reqs[n - 1].src, reqs[n - 1].dst,
                            reqs[n - 1].patchedFlag);
}

#else // !__x86_64__

// AArch64 (and any other host) templates are not implemented yet:
// every block declines compilation and the engines fall back to the
// interpreted superblock path behind the same interface.
const void *
compileSuperblock(CodeArena &, const SbJitEnv &, const sim::SbStep *,
                  uint32_t, bool, SbJitCompiled *)
{
    return nullptr;
}

bool
linkChainSlot(CodeArena &, const SbChainLinkReq *, size_t)
{
    return false;
}

#endif

} // namespace risc1::jit
