#include "jit/sbcompile.hh"

#include <cstddef>
#include <utility>

#include "isa/condition.hh"
#include "jit/emitter_x86.hh"

namespace risc1::jit {

#if defined(__x86_64__)

namespace {

using isa::Cond;
using sim::ExecTag;
using sim::SbStep;

// SbJitExit field offsets burned into [r12 + disp8] accesses.
constexpr uint8_t OffMaxIters = 0;
constexpr uint8_t OffIters = 8;
constexpr uint8_t OffTTarget = 16;
constexpr uint8_t OffTTaken = 20;
constexpr uint8_t OffDone = 24;
constexpr uint8_t OffLastPc = 28;
static_assert(offsetof(SbJitExit, maxIters) == OffMaxIters);
static_assert(offsetof(SbJitExit, iters) == OffIters);
static_assert(offsetof(SbJitExit, tTarget) == OffTTarget);
static_assert(offsetof(SbJitExit, tTaken) == OffTTaken);
static_assert(offsetof(SbJitExit, done) == OffDone);
static_assert(offsetof(SbJitExit, lastPc) == OffLastPc);

// Flag byte offsets off r13 (isa::Flags layout, asserted by the Cpu
// before it hands out the pointer).
constexpr uint8_t FlagZ = 0;
constexpr uint8_t FlagN = 1;
constexpr uint8_t FlagV = 2;
constexpr uint8_t FlagC = 3;

/** eax := operand a (phys[phys1] & mask1; masks are 0 or ~0). */
void
operandA(Emitter &e, const SbStep &st)
{
    if (st.mask1 != 0)
        e.loadPhys(Gp32::Eax, st.phys1 * 4u);
    else
        e.xorEaxEax();
}

/** ecx := operand b ((phys[phys2] & mask2) | immOr). */
void
operandB(Emitter &e, const SbStep &st)
{
    if (st.mask2 != 0) {
        e.loadPhys(Gp32::Ecx, st.phys2 * 4u);
        if (st.immOr != 0)
            e.orEcxImm32(st.immOr);
    } else if (st.immOr != 0) {
        e.movEcxImm32(st.immOr);
    } else {
        e.xorEcxEcx();
    }
}

/** mov [rbx + physd*4], eax — predicated on maskd like the interpreter. */
void
writeback(Emitter &e, const SbStep &st)
{
    if (st.maskd != 0)
        e.storePhysEax(st.physd * 4u);
}

/** Store Z/N from the live x86 flags, then V/C per setcc condition. */
void
storeFlagsZNVC(Emitter &e, Cc vcc, Cc ccc)
{
    e.setccFlag(Cc::E, FlagZ);
    e.setccFlag(Cc::S, FlagN);
    e.setccFlag(vcc, FlagV);
    e.setccFlag(ccc, FlagC);
}

/** Z/N from `test eax,eax`; V and C cleared (logical / shift scc). */
void
storeFlagsLogical(Emitter &e)
{
    e.testEaxEax();
    e.setccFlag(Cc::E, FlagZ);
    e.setccFlag(Cc::S, FlagN);
    e.clearFlag(FlagV);
    e.clearFlag(FlagC);
}

/** CF := stored carry flag (for adc-based Addc/Subc/Subcr). */
void
loadCarryIntoCf(Emitter &e)
{
    e.loadFlag(Gp32::Edx, FlagC);
    e.btEdx0();
}

/** ebp := condHolds(cond, flags), 0 or 1 (isa/condition.cc tables). */
void
emitCond(Emitter &e, Cond cond)
{
    switch (cond) {
      case Cond::Nev:
        e.xorEbpEbp();
        break;
      case Cond::Alw:
        e.movEbpImm32(1);
        break;
      case Cond::Eq:
        e.loadFlagEbp(FlagZ);
        break;
      case Cond::Ne:
        e.loadFlagEbp(FlagZ);
        e.xorEbpImm1();
        break;
      case Cond::Lt:
      case Cond::Ge:
        e.loadFlagEbp(FlagN);
        e.loadFlag(Gp32::Ecx, FlagV);
        e.xorEbpEcx();
        if (cond == Cond::Ge)
            e.xorEbpImm1();
        break;
      case Cond::Le:
      case Cond::Gt:
        e.loadFlagEbp(FlagN);
        e.loadFlag(Gp32::Ecx, FlagV);
        e.xorEbpEcx();
        e.loadFlag(Gp32::Ecx, FlagZ);
        e.orEbpEcx();
        if (cond == Cond::Gt)
            e.xorEbpImm1();
        break;
      case Cond::Lo:
        e.loadFlagEbp(FlagC);
        e.xorEbpImm1();
        break;
      case Cond::His:
        e.loadFlagEbp(FlagC);
        break;
      case Cond::Los:
        e.loadFlagEbp(FlagC);
        e.xorEbpImm1();
        e.loadFlag(Gp32::Ecx, FlagZ);
        e.orEbpEcx();
        break;
      case Cond::Hi:
        e.loadFlagEbp(FlagC);
        e.loadFlag(Gp32::Ecx, FlagZ);
        e.xorEcxImm1();
        e.andEbpEcx();
        break;
      case Cond::Pl:
        e.loadFlagEbp(FlagN);
        e.xorEbpImm1();
        break;
      case Cond::Mi:
        e.loadFlagEbp(FlagN);
        break;
      case Cond::Nv:
        e.loadFlagEbp(FlagV);
        e.xorEbpImm1();
        break;
      case Cond::Ov:
        e.loadFlagEbp(FlagV);
        break;
    }
}

/** rdi := cpu, rax := helper, call; rsi/rdx are loaded by the caller. */
void
emitHelperCall(Emitter &e, const SbJitEnv &env, const void *helper)
{
    e.movRdiImm64(reinterpret_cast<uint64_t>(env.cpu));
    e.movRaxImm64(reinterpret_cast<uint64_t>(helper));
    e.callRax();
}

struct PendingExit
{
    size_t fixup;  //!< jcc rel32 to patch
    uint32_t step; //!< faulting / bailing step index
};

/** What a block's templates touch — drives the minimal prologue. */
struct BlockNeeds
{
    bool flags = false; //!< r13 (any flag read or write)
    bool calls = false; //!< helper calls (memory steps)
};

/** True when evaluating `cond` reads the stored flags. */
bool
condReadsFlags(Cond cond)
{
    return cond != Cond::Alw && cond != Cond::Nev;
}

BlockNeeds
scanNeeds(const SbStep *steps, uint32_t count)
{
    BlockNeeds n;
    for (uint32_t i = 0; i < count; ++i) {
        const SbStep &st = steps[i];
        switch (st.tag) {
          case ExecTag::Addc:
          case ExecTag::Subc:
          case ExecTag::Subcr:
            n.flags = true; // carry is read even without scc
            break;
          case ExecTag::Getpsw:
            n.flags = true;
            break;
          case ExecTag::Jmp:
          case ExecTag::Jmpr:
            if (condReadsFlags(st.inst.cond()))
                n.flags = true;
            break;
          case ExecTag::Ldl:
          case ExecTag::Ldsu:
          case ExecTag::Ldss:
          case ExecTag::Ldbu:
          case ExecTag::Ldbs:
          case ExecTag::Stl:
          case ExecTag::Sts:
          case ExecTag::Stb:
          case ExecTag::Call:
          case ExecTag::Callr:
          case ExecTag::Ret:
            n.calls = true; // window terminators call the push/pop helper
            break;
          default:
            break;
        }
        if (st.inst.scc)
            n.flags = true;
    }
    return n;
}

} // namespace

const void *
compileSuperblock(CodeArena &arena, const SbJitEnv &env,
                  const SbStep *steps, uint32_t count, bool hasTerm)
{
    // Thread-local scratch: every program load recompiles every hot
    // block (the decode cache is dropped), so per-compile heap
    // traffic is on the dispatch fast path's tail.
    static thread_local Emitter e;
    static thread_local std::vector<PendingExit> faults;
    static thread_local std::vector<PendingExit> bails;
    static thread_local std::vector<size_t> exits;
    e.clear();
    faults.clear();
    bails.clear();
    exits.clear();

    // Prologue: save only what this block's templates touch — r12/r15
    // plus rbx are always live, the flag base and terminator latches
    // only when the pre-scan says so. The pad byte count keeps rsp
    // 16-byte aligned at helper call sites, and is only paid when the
    // block actually calls.
    const BlockNeeds needs = scanNeeds(steps, count);
    const unsigned npush =
        3u + (hasTerm ? 2u : 0u) + (needs.flags ? 1u : 0u);
    const bool pad = needs.calls && (npush & 1u) == 0;
    e.pushRbx();
    if (hasTerm)
        e.pushRbp();
    e.pushR12();
    if (needs.flags)
        e.pushR13();
    if (hasTerm)
        e.pushR14();
    e.pushR15();
    if (pad)
        e.subRsp8();
    e.movR12Rdi();
    e.movRbxImm64(reinterpret_cast<uint64_t>(env.phys));
    if (needs.flags)
        e.movR13Imm64(reinterpret_cast<uint64_t>(env.flags));
    e.xorR15R15(); // iters = 0
    if (hasTerm) {
        // Zeroed so a fault/bail before the first pass reaches the
        // terminator still stores defined values from `fin`.
        e.xorEbpEbp();     // t_taken = false
        e.xorR14dR14d();   // t_target = 0
    }

    const size_t top = e.here();
    for (uint32_t i = 0; i < count; ++i) {
        // The fattest template (a guarded store) stays well under
        // this; declining compilation beats running off the buffer.
        if (!e.roomFor(512))
            return nullptr;
        const SbStep &st = steps[i];
        const bool scc = st.inst.scc;
        switch (st.tag) {
          case ExecTag::Add:
            operandA(e, st);
            operandB(e, st);
            if (scc) {
                e.addEaxEcx();
                storeFlagsZNVC(e, Cc::O, Cc::C);
            } else {
                e.addEaxEcx();
            }
            writeback(e, st);
            break;
          case ExecTag::Addc:
            operandA(e, st);
            operandB(e, st);
            if (scc) {
                loadCarryIntoCf(e);
                e.adcEaxEcx();
                storeFlagsZNVC(e, Cc::O, Cc::C);
            } else {
                e.loadFlag(Gp32::Edx, FlagC);
                e.addEaxEcx();
                e.addEaxEdx();
            }
            writeback(e, st);
            break;
          case ExecTag::Sub:
            operandA(e, st);
            operandB(e, st);
            e.subEaxEcx();
            // RISC carry is "no borrow": the inverse of x86 CF.
            if (scc)
                storeFlagsZNVC(e, Cc::O, Cc::Nc);
            writeback(e, st);
            break;
          case ExecTag::Subc:
            // a + ~b + c, matching execAlu's add_with_carry(a, ~b, c):
            // the adc carry-out IS the architectural carry, and its
            // signed overflow equals the subtraction formula.
            operandA(e, st);
            operandB(e, st);
            e.notEcx();
            if (scc) {
                loadCarryIntoCf(e);
                e.adcEaxEcx();
                storeFlagsZNVC(e, Cc::O, Cc::C);
            } else {
                e.loadFlag(Gp32::Edx, FlagC);
                e.addEaxEcx();
                e.addEaxEdx();
            }
            writeback(e, st);
            break;
          case ExecTag::Subr:
            operandA(e, st);
            operandB(e, st);
            e.subEcxEax();
            if (scc) {
                e.setccFlag(Cc::E, FlagZ);
                e.setccFlag(Cc::S, FlagN);
                e.setccFlag(Cc::O, FlagV);
                e.setccFlag(Cc::Nc, FlagC);
            }
            e.movEaxEcx();
            writeback(e, st);
            break;
          case ExecTag::Subcr:
            operandA(e, st);
            operandB(e, st);
            e.notEax();
            if (scc) {
                loadCarryIntoCf(e);
                e.adcEaxEcx();
                storeFlagsZNVC(e, Cc::O, Cc::C);
            } else {
                e.loadFlag(Gp32::Edx, FlagC);
                e.addEaxEcx();
                e.addEaxEdx();
            }
            writeback(e, st);
            break;
          case ExecTag::And:
            operandA(e, st);
            operandB(e, st);
            e.andEaxEcx();
            if (scc)
                storeFlagsLogical(e);
            writeback(e, st);
            break;
          case ExecTag::Or:
            operandA(e, st);
            operandB(e, st);
            e.orEaxEcx();
            if (scc)
                storeFlagsLogical(e);
            writeback(e, st);
            break;
          case ExecTag::Xor:
            operandA(e, st);
            operandB(e, st);
            e.xorEaxEcx();
            if (scc)
                storeFlagsLogical(e);
            writeback(e, st);
            break;
          case ExecTag::Sll:
          case ExecTag::Srl:
          case ExecTag::Sra:
            operandA(e, st);
            operandB(e, st);
            // x86 masks cl by 31 for 32-bit shifts, same as `b & 31`;
            // a zero shift leaves the hardware flags stale, so scc
            // flags always come from an explicit test of the result.
            if (st.tag == ExecTag::Sll)
                e.shlEaxCl();
            else if (st.tag == ExecTag::Srl)
                e.shrEaxCl();
            else
                e.sarEaxCl();
            if (scc)
                storeFlagsLogical(e);
            writeback(e, st);
            break;

          case ExecTag::Ldl:
          case ExecTag::Ldsu:
          case ExecTag::Ldss:
          case ExecTag::Ldbu:
          case ExecTag::Ldbs: {
            const JitLoadFn fn = st.tag == ExecTag::Ldl    ? env.load32
                                 : st.tag == ExecTag::Ldsu ? env.load16u
                                 : st.tag == ExecTag::Ldss ? env.load16s
                                 : st.tag == ExecTag::Ldbu ? env.load8u
                                                           : env.load8s;
            operandA(e, st);
            operandB(e, st);
            e.addEaxEcx();
            e.movEsiEax();
            emitHelperCall(e, env, reinterpret_cast<const void *>(fn));
            e.testRaxRax();
            faults.push_back({e.jccFwd(Cc::S), i});
            writeback(e, st);
            break;
          }

          case ExecTag::Stl:
          case ExecTag::Sts:
          case ExecTag::Stb: {
            const JitStoreFn fn = st.tag == ExecTag::Stl   ? env.store32
                                  : st.tag == ExecTag::Sts ? env.store16
                                                           : env.store8;
            operandA(e, st);
            operandB(e, st);
            e.addEaxEcx();
            e.movEsiEax();
            if (st.maskd != 0)
                e.loadPhys(Gp32::Edx, st.physd * 4u);
            else
                e.xorEdxEdx();
            emitHelperCall(e, env, reinterpret_cast<const void *>(fn));
            e.testRaxRax();
            faults.push_back({e.jccFwd(Cc::S), i});
            if (i + 1 < count) {
                // A store into this very block's words demoted it: the
                // unexecuted tail is stale, bail to the slow commit.
                e.movRaxImm64(reinterpret_cast<uint64_t>(env.live));
                e.cmpByteRax0();
                bails.push_back({e.jccFwd(Cc::E), i});
            }
            break;
          }

          case ExecTag::Ldhi:
            if (st.maskd != 0) {
                e.movEaxImm32(st.immOr);
                writeback(e, st);
            }
            break;

          case ExecTag::Gtlpc:
            if (st.maskd != 0) {
                if (i != 0) {
                    e.movEaxImm32(env.head + (i - 1) * 4u);
                } else {
                    // First step: iterations after the first see the
                    // previous pass's delay slot; the very first pass
                    // sees the dispatcher's lastPc_ (passed via ctx).
                    e.testR15R15();
                    const size_t reiter = e.jccFwd(Cc::Ne);
                    e.loadCtxEax(OffLastPc);
                    const size_t join = e.jmpFwd();
                    e.bind(reiter);
                    e.movEaxImm32(env.head + (count - 1) * 4u);
                    e.bind(join);
                }
                writeback(e, st);
            }
            break;

          case ExecTag::Getpsw:
            if (st.maskd != 0) {
                e.movRaxImm64(reinterpret_cast<uint64_t>(env.ie));
                e.movzxEcxByteRax();
                e.shlEcxImm8(4);
                e.loadFlag(Gp32::Eax, FlagC);
                e.orEaxEcx();
                e.loadFlag(Gp32::Ecx, FlagV);
                e.shlEcxImm8(1);
                e.orEaxEcx();
                e.loadFlag(Gp32::Ecx, FlagN);
                e.shlEcxImm8(2);
                e.orEaxEcx();
                e.loadFlag(Gp32::Ecx, FlagZ);
                e.shlEcxImm8(3);
                e.orEaxEcx();
                // The delay slot of a window terminator already runs
                // under the shifted window.
                const uint32_t cwp_at =
                    env.termWindow != 0 && i + 1 == count
                        ? env.delayCwp
                        : env.cwp;
                e.orEaxImm32(cwp_at << 8);
                writeback(e, st);
            }
            break;

          case ExecTag::Jmp:
            // Swallowed terminator: latch target and outcome, applied
            // by the shared epilogue after the delay-slot step.
            operandA(e, st);
            operandB(e, st);
            e.addEaxEcx();
            e.movR14dEax();
            emitCond(e, st.inst.cond());
            break;

          case ExecTag::Jmpr:
            e.movR14dImm32(env.head + i * 4u +
                           static_cast<uint32_t>(st.immOr));
            emitCond(e, st.inst.cond());
            break;

          case ExecTag::Call:
          case ExecTag::Callr:
            // Window-push terminator (always taken). The target is
            // computed in the *caller's* window before the push; the
            // link register lives in the pushed window, at a physical
            // index that is a per-entry-cwp constant. The helper is
            // the interpreter's windowPush itself, so spills, their
            // stats and their faults need no native path — a fault
            // leaves the CALL unretired at step `i`, exactly like a
            // faulting load.
            if (env.termWindow != 1 || i + 2 != count)
                return nullptr;
            if (st.tag == ExecTag::Call) {
                operandA(e, st);
                operandB(e, st);
                e.addEaxEcx();
                e.movR14dEax();
            } else {
                e.movR14dImm32(env.head + i * 4u +
                               static_cast<uint32_t>(st.immOr));
            }
            e.movEbpImm32(1);
            emitHelperCall(
                e, env, reinterpret_cast<const void *>(env.windowPush));
            e.testRaxRax();
            faults.push_back({e.jccFwd(Cc::S), i});
            if (st.maskd != 0) {
                e.movEaxImm32(env.head + i * 4u);
                e.storePhysEax(env.linkPhys * 4u);
            }
            // A spill that stored into this very block's words demoted
            // it: the baked delay step is stale, bail with the CALL
            // retired and the transfer latched.
            e.movRaxImm64(reinterpret_cast<uint64_t>(env.live));
            e.cmpByteRax0();
            bails.push_back({e.jccFwd(Cc::E), i});
            break;

          case ExecTag::Ret:
            // Window-pop terminator: the return target reads the
            // *callee's* window before the pop. Underflow (refill
            // fault or exhausted stack) surfaces as a helper fault
            // with the RET unretired; refills only read memory, so no
            // demotion check is needed.
            if (env.termWindow != 2 || i + 2 != count)
                return nullptr;
            operandA(e, st);
            operandB(e, st);
            e.addEaxEcx();
            e.movR14dEax();
            e.movEbpImm32(1);
            emitHelperCall(
                e, env, reinterpret_cast<const void *>(env.windowPop));
            e.testRaxRax();
            faults.push_back({e.jccFwd(Cc::S), i});
            break;

          default:
            // Interrupt transfers / PUTPSW can never be baked into a
            // step.
            return nullptr;
        }
    }

    // Pass epilogue: ++iters, then the inlined self-loop — retake the
    // block in place while the terminator jumps back to its own head,
    // the block stays live, and the precomputed iteration budget
    // (instruction stop + watchdog, folded in by the wrapper) allows.
    e.incR15();
    if (hasTerm && !env.noSelfLoop) {
        e.testEbpEbp();
        exits.push_back(e.jccFwd(Cc::E));
        e.cmpR14dImm32(env.head);
        exits.push_back(e.jccFwd(Cc::Ne));
        e.movRaxImm64(reinterpret_cast<uint64_t>(env.live));
        e.cmpByteRax0();
        exits.push_back(e.jccFwd(Cc::E));
        e.cmpR15Ctx(OffMaxIters);
        e.jccBack(Cc::C, top);
    }
    // Epilogue + exit stubs are bounded: guard once for all of them.
    if (!e.roomFor((faults.size() + bails.size()) * 24 + 96))
        return nullptr;
    for (const size_t fix : exits)
        e.bind(fix);
    e.xorEaxEax(); // SbJitDone
    const size_t fin = e.here();
    e.storeCtxR15(OffIters);
    if (hasTerm) {
        e.storeCtxR14d(OffTTarget);
        e.storeCtxEbp(OffTTaken);
    } else {
        e.storeCtxImm32(OffTTarget, 0);
        e.storeCtxImm32(OffTTaken, 0);
    }
    if (pad)
        e.addRsp8();
    e.popR15();
    if (hasTerm)
        e.popR14();
    if (needs.flags)
        e.popR13();
    e.popR12();
    if (hasTerm)
        e.popRbp();
    e.popRbx();
    e.ret();

    // Out-of-line exits: record the precise step, set the status and
    // rejoin the common context-store tail.
    for (const PendingExit &p : faults) {
        e.bind(p.fixup);
        e.storeCtxImm32(OffDone, p.step);
        e.movEaxImm32(SbJitFault);
        e.jmpBack(fin);
    }
    for (const PendingExit &p : bails) {
        e.bind(p.fixup);
        e.storeCtxImm32(OffDone, p.step);
        e.movEaxImm32(SbJitStoreBail);
        e.jmpBack(fin);
    }

    return arena.install(e.data(), e.size());
}

#else // !__x86_64__

// AArch64 (and any other host) templates are not implemented yet:
// every block declines compilation and the engines fall back to the
// interpreted superblock path behind the same interface.
const void *
compileSuperblock(CodeArena &, const SbJitEnv &, const sim::SbStep *,
                  uint32_t, bool)
{
    return nullptr;
}

#endif

} // namespace risc1::jit
