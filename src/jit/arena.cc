#include "jit/arena.hh"

#include <cassert>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define RISC1_JIT_HAVE_MMAP 1
#endif

#if defined(__linux__) && defined(MFD_CLOEXEC)
#define RISC1_JIT_HAVE_MEMFD 1
#endif

namespace risc1::jit {

bool
hostSupported()
{
#if defined(__x86_64__) && defined(RISC1_JIT_HAVE_MMAP)
    return true;
#else
    // AArch64 templates are stubbed (sbcompile.cc returns nullptr for
    // every block); report unsupported so engines fall back cleanly.
    return false;
#endif
}

const char *
hostArchName()
{
#if defined(__x86_64__)
    return "x86-64";
#elif defined(__aarch64__)
    return "aarch64";
#else
    return "unknown";
#endif
}

CodeArena::~CodeArena()
{
#ifdef RISC1_JIT_HAVE_MMAP
    if (base_ != nullptr)
        ::munmap(base_, capacity_);
    if (writeBase_ != nullptr)
        ::munmap(writeBase_, capacity_);
#endif
}

bool
CodeArena::map()
{
#ifdef RISC1_JIT_HAVE_MMAP
    if (base_ != nullptr)
        return true;
    if (mapFailed_)
        return false;
#ifdef RISC1_JIT_HAVE_MEMFD
    // Preferred scheme: one memfd, two views. Writes go through the
    // RW alias, execution through the RX one; neither page table
    // entry is ever W+X and installs need no mprotect round-trips.
    const int fd = ::memfd_create("risc1-jit-arena", MFD_CLOEXEC);
    if (fd >= 0) {
        if (::ftruncate(fd, static_cast<off_t>(capacity_)) == 0) {
            void *rx = ::mmap(nullptr, capacity_, PROT_READ | PROT_EXEC,
                              MAP_SHARED, fd, 0);
            void *rw = rx != MAP_FAILED
                           ? ::mmap(nullptr, capacity_,
                                    PROT_READ | PROT_WRITE, MAP_SHARED,
                                    fd, 0)
                           : MAP_FAILED;
            ::close(fd); // the mappings keep the memory alive
            if (rw != MAP_FAILED) {
                base_ = static_cast<uint8_t *>(rx);
                writeBase_ = static_cast<uint8_t *>(rw);
                return true;
            }
            if (rx != MAP_FAILED)
                ::munmap(rx, capacity_);
        } else {
            ::close(fd);
        }
    }
#endif
    // Fallback: a single anonymous RX mapping; install() flips the
    // affected pages RW around each copy.
    void *p = ::mmap(nullptr, capacity_, PROT_READ | PROT_EXEC,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) {
        mapFailed_ = true;
        return false;
    }
    base_ = static_cast<uint8_t *>(p);
    return true;
#else
    mapFailed_ = true;
    return false;
#endif
}

const void *
CodeArena::install(const uint8_t *code, size_t size)
{
#ifdef RISC1_JIT_HAVE_MMAP
    if (!hostSupported() || size == 0 || !map())
        return nullptr;
    // Keep entries 16-byte aligned.
    const size_t aligned = (used_ + 15) & ~size_t{15};
    if (aligned + size > capacity_) {
        exhausted_ = true;
        return nullptr;
    }
    if (writeBase_ != nullptr) {
        std::memcpy(writeBase_ + aligned, code, size);
    } else {
        // Single-mapping fallback: the whole tail past the bump
        // pointer flips to RW for the copy, never an installed block.
        const long page = ::sysconf(_SC_PAGESIZE);
        const size_t ps = page > 0 ? static_cast<size_t>(page) : 4096;
        const size_t lo = aligned & ~(ps - 1);
        const size_t hi = (aligned + size + ps - 1) & ~(ps - 1);
        if (::mprotect(base_ + lo, hi - lo,
                       PROT_READ | PROT_WRITE) != 0)
            return nullptr;
        std::memcpy(base_ + aligned, code, size);
        if (::mprotect(base_ + lo, hi - lo,
                       PROT_READ | PROT_EXEC) != 0)
            return nullptr;
    }
    used_ = aligned + size;
    return base_ + aligned;
#else
    (void)code;
    (void)size;
    return nullptr;
#endif
}

bool
CodeArena::writeBytes(size_t off, const uint8_t *code, size_t len)
{
#ifdef RISC1_JIT_HAVE_MMAP
    if (base_ == nullptr || off + len > used_)
        return false;
    if (writeBase_ != nullptr) {
        std::memcpy(writeBase_ + off, code, len);
        return true;
    }
    // Single-mapping fallback: flip just the touched pages, which may
    // hold installed code — safe because patches are only applied
    // from the dispatch thread with no native frame on the stack.
    const long page = ::sysconf(_SC_PAGESIZE);
    const size_t ps = page > 0 ? static_cast<size_t>(page) : 4096;
    const size_t lo = off & ~(ps - 1);
    const size_t hi = (off + len + ps - 1) & ~(ps - 1);
    if (::mprotect(base_ + lo, hi - lo, PROT_READ | PROT_WRITE) != 0)
        return false;
    std::memcpy(base_ + off, code, len);
    return ::mprotect(base_ + lo, hi - lo, PROT_READ | PROT_EXEC) == 0;
#else
    (void)off;
    (void)code;
    (void)len;
    return false;
#endif
}

bool
CodeArena::patchChain(size_t off, const uint8_t *code, size_t len,
                      void *src, void *dst, uint8_t *patchedFlag)
{
    if (base_ == nullptr || len == 0)
        return false;
    for (ChainPatch &p : chains_) {
        if (p.off != off)
            continue;
        // Second inline-cache entry for this slot: the saved original
        // bytes stay authoritative (bytes past the first stub's end
        // are still the untouched pad — capture them before they are
        // overwritten), and the slot gains a second unlink key.
        if (p.dst2 != nullptr)
            return false;
        if (len > p.orig.size())
            p.orig.insert(p.orig.end(), base_ + off + p.orig.size(),
                          base_ + off + len);
        if (!writeBytes(off, code, len))
            return false;
        p.dst2 = dst;
        if (patchedFlag != nullptr)
            *patchedFlag = 2;
        return true;
    }
    ChainPatch patch;
    patch.off = off;
    patch.src = src;
    patch.dst = dst;
    patch.patchedFlag = patchedFlag;
    patch.orig.assign(base_ + off, base_ + off + len);
    if (!writeBytes(off, code, len))
        return false;
    chains_.push_back(std::move(patch));
    if (patchedFlag != nullptr)
        *patchedFlag = 1;
    return true;
}

const std::vector<uint8_t> *
CodeArena::chainOrig(size_t off) const
{
    for (const ChainPatch &p : chains_)
        if (p.off == off)
            return &p.orig;
    return nullptr;
}

void
CodeArena::unlinkChainsFor(const void *rec)
{
    for (size_t i = chains_.size(); i-- > 0;) {
        ChainPatch &p = chains_[i];
        if (p.src != rec && p.dst != rec && p.dst2 != rec)
            continue;
        writeBytes(p.off, p.orig.data(), p.orig.size());
        if (p.patchedFlag != nullptr)
            *p.patchedFlag = 0;
        retiredBytes_ += p.orig.size();
        chains_.erase(chains_.begin() +
                      static_cast<ptrdiff_t>(i));
    }
}

void
CodeArena::unlinkAllChains()
{
    for (ChainPatch &p : chains_) {
        writeBytes(p.off, p.orig.data(), p.orig.size());
        if (p.patchedFlag != nullptr)
            *p.patchedFlag = 0;
        retiredBytes_ += p.orig.size();
    }
    chains_.clear();
}

void
CodeArena::reset()
{
    // Every patch must have been unlinked first: a survivor holds a
    // patched-flag pointer into a record that is being invalidated.
    assert(chains_.empty() && "CodeArena::reset with live chain patches");
    chains_.clear();
    used_ = 0;
    retiredBytes_ = 0;
    exhausted_ = false;
}

} // namespace risc1::jit
