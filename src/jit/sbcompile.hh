/**
 * @file
 * Superblock template compiler: turn one SuperblockRecord's SbStep
 * array (already baked for a specific register window) into host
 * native code. The emitted function executes the whole block —
 * including the hot self-loop when the terminator jumps back to its
 * own head — and returns to the C++ dispatcher at an
 * instruction-precise boundary with everything the shared epilogue /
 * fault-reconstruction code needs, so statistics, runUntil pausing,
 * snapshots and the lockstep sentinel behave byte-identically to the
 * interpreted superblock engine.
 *
 * Per-ExecTag templates burn in the baked physical register byte
 * offsets, operand masks and folded immediates at emission time;
 * loads, stores and faults go through the helper functions in
 * SbJitEnv, which must never throw across the native frame (they
 * report a fault via a negative return and the Cpu stashes the
 * SimFault for the wrapper to rethrow).
 *
 * Only x86-64 emission is implemented; on other hosts (AArch64
 * included) compileSuperblock() returns nullptr for every block and
 * jit::hostSupported() is false, so engines fall back cleanly.
 */

#ifndef RISC1_JIT_SBCOMPILE_HH
#define RISC1_JIT_SBCOMPILE_HH

#include <cstdint>

#include "jit/arena.hh"
#include "sim/decode.hh"

namespace risc1::jit {

/**
 * Memory helpers, all `noexcept`: value (zero-extended into the low
 * 32 bits, non-negative) or -1 after stashing the guest fault.
 * Stores return 0 or -1. First argument is SbJitEnv::cpu.
 */
using JitLoadFn = int64_t (*)(void *, uint32_t) noexcept;
using JitStoreFn = int64_t (*)(void *, uint32_t, uint32_t) noexcept;
/** Window push/pop helper: full Cpu::windowPush()/windowPop()
 *  semantics (spill/refill traffic, statistics), 0 or -1. */
using JitWindowFn = int64_t (*)(void *) noexcept;

/**
 * Everything the templates burn in besides the steps themselves.
 * All pointers must stay valid for the lifetime of the emitted code
 * (i.e. until the owning arena is reset).
 */
struct SbJitEnv
{
    uint32_t *phys = nullptr;      //!< physical register file base
    uint8_t *flags = nullptr;      //!< z,n,v,c as 4 consecutive bytes
    const uint8_t *ie = nullptr;   //!< interrupt-enable (GETPSW bit 4)
    const uint8_t *live = nullptr; //!< &SuperblockRecord::live
    void *cpu = nullptr;           //!< helper context argument
    uint32_t head = 0;             //!< block head PC
    uint32_t cwp = 0;              //!< window the steps are baked for
    /** head == 0 under haltOnZeroTarget, or a window-terminated
     *  block (its delay baking is per-entry): suppress the
     *  self-loop. */
    bool noSelfLoop = false;

    /** Swallowed window terminator: 0 none, 1 CALL/CALLR, 2 RET.
     *  When set, the final step (the delay slot) is baked against
     *  the *shifted* window and the terminator step calls
     *  windowPush/windowPop. */
    uint8_t termWindow = 0;
    uint32_t delayCwp = 0;  //!< cwp the delay slot executes under
    /** CALL/CALLR: the link register's physical index in the pushed
     *  window (the terminator step's maskd gates the write). */
    uint16_t linkPhys = 0;
    JitWindowFn windowPush = nullptr;
    JitWindowFn windowPop = nullptr;

    JitLoadFn load32 = nullptr;
    JitLoadFn load16u = nullptr;
    JitLoadFn load16s = nullptr;
    JitLoadFn load8u = nullptr;
    JitLoadFn load8s = nullptr;
    JitStoreFn store32 = nullptr;
    JitStoreFn store16 = nullptr;
    JitStoreFn store8 = nullptr;
};

/**
 * In/out context of one native block execution. The wrapper fills the
 * inputs, the emitted code fills the outputs before returning.
 */
struct SbJitExit
{
    uint64_t maxIters = 0; //!< in: self-loop iteration budget (>= 1)
    uint64_t iters = 0;    //!< out: completed whole-block passes
    uint32_t tTarget = 0;  //!< out: latched terminator target
    uint32_t tTaken = 0;   //!< out: latched terminator outcome (0/1)
    uint32_t done = 0;     //!< out: faulting/bailing step index
    uint32_t lastPc = 0;   //!< in: lastPc_ (GTLPC in the first pass)
};

/** Native block status codes (the emitted function's return value). */
enum : uint32_t
{
    SbJitDone = 0,      //!< full pass(es) completed; run the epilogue
    SbJitFault = 1,     //!< step `done` faulted; fault is stashed
    SbJitStoreBail = 2, //!< store at step `done` demoted this block
};

using SbJitFn = uint32_t (*)(SbJitExit *);

/**
 * Emit, install and return the native entry for one baked block, or
 * nullptr when the host is unsupported, a step has no template, or
 * the arena is exhausted (check arena.exhausted() to stop retrying).
 */
const void *compileSuperblock(CodeArena &arena, const SbJitEnv &env,
                              const sim::SbStep *steps, uint32_t count,
                              bool hasTerm);

} // namespace risc1::jit

#endif // RISC1_JIT_SBCOMPILE_HH
