/**
 * @file
 * Superblock template compiler: turn one SuperblockRecord's SbStep
 * array (already baked for a specific register window) into host
 * native code. The emitted function executes the whole block —
 * including the hot self-loop when the terminator jumps back to its
 * own head — and returns to the C++ dispatcher at an
 * instruction-precise boundary with everything the shared epilogue /
 * fault-reconstruction code needs, so statistics, runUntil pausing,
 * snapshots and the lockstep sentinel behave byte-identically to the
 * interpreted superblock engine.
 *
 * Per-ExecTag templates burn in the baked physical register byte
 * offsets, operand masks and folded immediates at emission time;
 * loads, stores and faults go through the helper functions in
 * SbJitEnv, which must never throw across the native frame (they
 * report a fault via a negative return and the Cpu stashes the
 * SimFault for the wrapper to rethrow).
 *
 * Only x86-64 emission is implemented; on other hosts (AArch64
 * included) compileSuperblock() returns nullptr for every block and
 * jit::hostSupported() is false, so engines fall back cleanly.
 */

#ifndef RISC1_JIT_SBCOMPILE_HH
#define RISC1_JIT_SBCOMPILE_HH

#include <cstdint>

#include "jit/arena.hh"
#include "sim/decode.hh"

namespace risc1::jit {

/**
 * Memory helpers, all `noexcept`: value (zero-extended into the low
 * 32 bits, non-negative) or -1 after stashing the guest fault.
 * Stores return 0 or -1. First argument is SbJitEnv::cpu.
 */
using JitLoadFn = int64_t (*)(void *, uint32_t) noexcept;
using JitStoreFn = int64_t (*)(void *, uint32_t, uint32_t) noexcept;
/** Window push/pop helper: full Cpu::windowPush()/windowPop()
 *  semantics (spill/refill traffic, statistics), 0 or -1. */
using JitWindowFn = int64_t (*)(void *) noexcept;

/**
 * Everything the templates burn in besides the steps themselves.
 * All pointers must stay valid for the lifetime of the emitted code
 * (i.e. until the owning arena is reset).
 */
struct SbJitEnv
{
    uint32_t *phys = nullptr;      //!< physical register file base
    uint8_t *flags = nullptr;      //!< z,n,v,c as 4 consecutive bytes
    const uint8_t *ie = nullptr;   //!< interrupt-enable (GETPSW bit 4)
    const uint8_t *live = nullptr; //!< &SuperblockRecord::live
    void *cpu = nullptr;           //!< helper context argument
    uint32_t head = 0;             //!< block head PC
    uint32_t cwp = 0;              //!< window the steps are baked for
    /** head == 0 under haltOnZeroTarget, or a window-terminated
     *  block (its delay baking is per-entry): suppress the
     *  self-loop. */
    bool noSelfLoop = false;

    /** Swallowed window terminator: 0 none, 1 CALL/CALLR, 2 RET.
     *  When set, the final step (the delay slot) is baked against
     *  the *shifted* window and the terminator step calls
     *  windowPush/windowPop. */
    uint8_t termWindow = 0;
    uint32_t delayCwp = 0;  //!< cwp the delay slot executes under
    /** CALL/CALLR: the link register's physical index in the pushed
     *  window (the terminator step's maskd gates the write). */
    uint16_t linkPhys = 0;
    JitWindowFn windowPush = nullptr;
    JitWindowFn windowPop = nullptr;

    JitLoadFn load32 = nullptr;
    JitLoadFn load16u = nullptr;
    JitLoadFn load16s = nullptr;
    JitLoadFn load8u = nullptr;
    JitLoadFn load8s = nullptr;
    JitStoreFn store32 = nullptr;
    JitStoreFn store16 = nullptr;
    JitStoreFn store8 = nullptr;

    /** Chain mode: emit budget-admission loops and patchable exit
     *  slots instead of the maxIters self-loop (see SbJitExit). */
    bool chain = false;
    /** Cycle cost of one whole-block pass (chain-mode budget debit),
     *  i.e. SuperblockRecord::cycles. */
    uint32_t passCycles = 0;
    /** Emit the cycle-budget admission (chain mode). The watchdog is
     *  fixed per Cpu; without one the budget is INT64_MAX and the
     *  four-instruction check per pass can never fire — skip it. */
    bool cycleGuard = true;
};

/**
 * In/out context of one native block execution. The wrapper fills the
 * inputs, the emitted code fills the outputs before returning.
 */
struct SbJitExit
{
    uint64_t maxIters = 0; //!< in: self-loop iteration budget (>= 1)
    uint64_t iters = 0;    //!< out: completed whole-block passes
    uint32_t tTarget = 0;  //!< out: latched terminator target
    uint32_t tTaken = 0;   //!< out: latched terminator outcome (0/1)
    uint32_t done = 0;     //!< out: faulting/bailing step index
    /** in: lastPc_ (GTLPC in the first pass). In chain mode every
     *  chain stub rewrites it to the source block's final step PC, so
     *  on exit it is the lastPc the *current* block was entered
     *  under. */
    uint32_t lastPc = 0;

    // ---- chain mode (SbJitEnv::chain) -------------------------------
    // Deferred-commit context: compiled blocks transfer directly to
    // each other, debiting the shared budgets per pass and flushing
    // per-block pass counts into each record's SbChainScratch; the
    // wrapper commits statistics once at the true exit. The fields
    // below stay within disp8 of r12 (static_asserts in sbcompile.cc).

    /** in/out: remaining retired-instruction budget (stop bound minus
     *  committed instructions); every admitted pass debits the pass's
     *  step count, so it is exact at every exit. */
    uint64_t instBudget = 0;
    /** in/out: remaining cycle budget (watchdog minus committed
     *  cycles; INT64_MAX when no watchdog). A pass is admitted while
     *  non-negative and debits its cycle cost after, reproducing the
     *  interpreter's one-block overrun exactly. */
    int64_t cycleBudget = 0;
    /** in/out: the SuperblockRecord the exit state (iters, tTarget,
     *  tTaken, done) describes — the last block entered. */
    void *curSb = nullptr;
    /** out: native chain transfers taken (stats_.sbChained delta). */
    uint64_t chained = 0;
    /** in/out: bump cursor into the wrapper's dirty-record array
     *  (SuperblockRecord**); a stub refuses to chain when full. */
    void *dirtyCur = nullptr;
    void *dirtyEnd = nullptr; //!< in: one past the last dirty slot
    /** in: 16-entry SbChainEpisode ring (PC-ring replay at commit). */
    void *epiRing = nullptr;
    uint64_t epiPos = 0; //!< in/out: episodes appended (ring index mod 16)
};

/** One chained-run episode: `iters` whole passes of `sb` (a
 *  sim::SuperblockRecord*), appended by the chain stub that exited
 *  the block. The last 16 episodes cover at least 32 retired PCs
 *  (block length >= 2), enough to rebuild the 16-entry PC ring. */
struct SbChainEpisode
{
    void *sb = nullptr;
    uint64_t iters = 0;
};

/** Native block status codes (the emitted function's return value). */
enum : uint32_t
{
    SbJitDone = 0,      //!< full pass(es) completed; run the epilogue
    SbJitFault = 1,     //!< step `done` faulted; fault is stashed
    SbJitStoreBail = 2, //!< store at step `done` demoted this block
};

using SbJitFn = uint32_t (*)(SbJitExit *);

/**
 * Where a chain-mode compile left its patchable pieces. Offsets are
 * arena byte offsets (CodeArena::offsetOf); zero means the block has
 * no slot in that direction.
 */
struct SbJitCompiled
{
    const void *entry = nullptr;
    /** Mid-function label a chain stub jumps to: past the prologue
     *  and the first-pass budget debit (the stub debits instead). */
    const void *chainEntry = nullptr;
    uint32_t takenSlotOff = 0; //!< taken-direction exit slot
    uint32_t fallSlotOff = 0;  //!< fallthrough-direction exit slot
};

/** Patchable exit-slot span (jmp-to-common + int3 pad when unlinked;
 *  the full chain stub when patched). Sized for two guarded entries:
 *  a taken slot is a two-way inline cache, so a polymorphic transfer
 *  (a RET block returning to two call sites) chains both targets. */
constexpr uint32_t SbChainSlotSize = 512;

/**
 * Emit, install and return the native entry for one baked block, or
 * nullptr when the host is unsupported, a step has no template, or
 * the arena is exhausted (check arena.exhausted() to stop retrying).
 * With env.chain set, `out` (required then) receives the chain entry
 * and exit-slot offsets.
 */
const void *compileSuperblock(CodeArena &arena, const SbJitEnv &env,
                              const sim::SbStep *steps, uint32_t count,
                              bool hasTerm,
                              SbJitCompiled *out = nullptr);

/**
 * Everything linkChainSlot burns into a chain stub. `src`/`dst` are
 * the SuperblockRecord pointers of the two blocks — their first
 * member is the SbChainScratch the stub writes through — and
 * `patchedFlag` is the jitMeta flag the arena clears on unlink.
 */
struct SbChainLinkReq
{
    uint32_t slotOff = 0;  //!< arena offset of the slot to rewrite
    bool taken = false;    //!< taken-direction (guarded on r14d)
    void *src = nullptr;
    void *dst = nullptr;
    uint32_t srcLastPc = 0; //!< src head + (src count - 1) * 4
    uint32_t dstHead = 0;
    uint32_t dstCount = 0;
    uint32_t dstCycles = 0;
    const uint8_t *dstLive = nullptr;
    const void *dstChainEntry = nullptr;
    uint8_t *patchedFlag = nullptr;
    /** Mirror of SbJitEnv::cycleGuard for the stub's admission. */
    bool cycleGuard = true;
};

/**
 * Rewrite the shared exit slot at reqs[0].slotOff into `n` (1 or 2)
 * guarded native transfers, one per request: guard (taken target
 * match, target liveness, budget admission, dirty-list capacity),
 * flush the source block's pass counts into its scratch line, append
 * the episode, debit the target's first pass and jump. A taken-target
 * mismatch falls through to the next entry's guard; every other
 * refused guard exits through the block's common epilogue. All
 * requests must describe the same slot, and on a re-link (n == 2)
 * reqs[0] must be the already-linked edge. False when emission or
 * the patch write failed; the slot is untouched then.
 */
bool linkChainSlot(CodeArena &arena, const SbChainLinkReq *reqs,
                   size_t n);

} // namespace risc1::jit

#endif // RISC1_JIT_SBCOMPILE_HH
