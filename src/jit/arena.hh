/**
 * @file
 * W^X executable code arena for the superblock template JIT,
 * bump-allocated. No page is ever writable+executable: on Linux the
 * arena is a memfd mapped twice — an RW view install() copies through
 * and a separate RX view whose addresses are handed out as entry
 * points — so installs cost a memcpy and zero syscalls (workloads
 * recompile every block on every program load; per-install mprotect
 * flips dominated the block's own runtime). Elsewhere it falls back
 * to one anonymous mapping flipped RW just for the copy. Retired
 * blocks cannot be reclaimed individually (bump allocation keeps
 * installed entry points address-stable for in-flight dispatches);
 * retire() only accounts them, and reset() reclaims everything at
 * once — callers do that exactly when the decode cache drops every
 * record (program load, snapshot restore), when no compiled entry can
 * be live.
 */

#ifndef RISC1_JIT_ARENA_HH
#define RISC1_JIT_ARENA_HH

#include <cstddef>
#include <cstdint>

namespace risc1::jit {

/** True when this build can emit and run native templates. */
bool hostSupported();

/** Short host architecture name ("x86-64", "aarch64", ...). */
const char *hostArchName();

class CodeArena
{
  public:
    /** Default arena span: plenty for every block a run can form. */
    static constexpr size_t DefaultCapacity = 4u << 20;

    CodeArena() = default;
    ~CodeArena();

    CodeArena(const CodeArena &) = delete;
    CodeArena &operator=(const CodeArena &) = delete;

    /**
     * Copy `size` bytes of emitted code into the arena and return the
     * executable entry point, or nullptr when the arena is exhausted
     * (or the host is unsupported / mmap failed). Lazily maps on
     * first use.
     */
    const void *install(const uint8_t *code, size_t size);

    /**
     * Account `bytes` of installed code whose block was demoted or
     * retired. The space is not reused until reset() — the entry may
     * still be on the native stack — but the counter keeps the
     * dead-code ratio observable.
     */
    void retire(size_t bytes) { retiredBytes_ += bytes; }

    /**
     * Drop every installed block and rewind the bump pointer. Only
     * legal when no compiled entry can be executing (the callers tie
     * this to DecodedCache::invalidateAll).
     */
    void reset();

    size_t usedBytes() const { return used_; }
    size_t retiredBytes() const { return retiredBytes_; }
    size_t capacity() const { return capacity_; }
    /** True once an install() failed for lack of space. */
    bool exhausted() const { return exhausted_; }

  private:
    bool map();

    uint8_t *base_ = nullptr;      //!< RX view: entry-point addresses
    uint8_t *writeBase_ = nullptr; //!< RW alias (dual-mapped memfd)
    size_t capacity_ = DefaultCapacity;
    size_t used_ = 0;
    size_t retiredBytes_ = 0;
    bool exhausted_ = false;
    bool mapFailed_ = false;
};

} // namespace risc1::jit

#endif // RISC1_JIT_ARENA_HH
