/**
 * @file
 * W^X executable code arena for the superblock template JIT,
 * bump-allocated. No page is ever writable+executable: on Linux the
 * arena is a memfd mapped twice — an RW view install() copies through
 * and a separate RX view whose addresses are handed out as entry
 * points — so installs cost a memcpy and zero syscalls (workloads
 * recompile every block on every program load; per-install mprotect
 * flips dominated the block's own runtime). Elsewhere it falls back
 * to one anonymous mapping flipped RW just for the copy. Retired
 * blocks cannot be reclaimed individually (bump allocation keeps
 * installed entry points address-stable for in-flight dispatches);
 * retire() only accounts them, and reset() reclaims everything at
 * once — callers do that exactly when the decode cache drops every
 * record (program load, snapshot restore), when no compiled entry can
 * be live.
 */

#ifndef RISC1_JIT_ARENA_HH
#define RISC1_JIT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace risc1::jit {

/** True when this build can emit and run native templates. */
bool hostSupported();

/** Short host architecture name ("x86-64", "aarch64", ...). */
const char *hostArchName();

class CodeArena
{
  public:
    /** Default arena span: plenty for every block a run can form. */
    static constexpr size_t DefaultCapacity = 4u << 20;

    CodeArena() = default;
    ~CodeArena();

    CodeArena(const CodeArena &) = delete;
    CodeArena &operator=(const CodeArena &) = delete;

    /**
     * Copy `size` bytes of emitted code into the arena and return the
     * executable entry point, or nullptr when the arena is exhausted
     * (or the host is unsupported / mmap failed). Lazily maps on
     * first use.
     */
    const void *install(const uint8_t *code, size_t size);

    /**
     * Account `bytes` of installed code whose block was demoted or
     * retired. The space is not reused until reset() — the entry may
     * still be on the native stack — but the counter keeps the
     * dead-code ratio observable.
     */
    void retire(size_t bytes) { retiredBytes_ += bytes; }

    /**
     * Drop every installed block and rewind the bump pointer. Only
     * legal when no compiled entry can be executing (the callers tie
     * this to DecodedCache::invalidateAll) and after every chain
     * patch has been unlinked — asserts the registry is empty, since
     * a surviving entry means a record kept a dangling patched flag
     * pointer across invalidation.
     */
    void reset();

    size_t usedBytes() const { return used_; }
    size_t retiredBytes() const { return retiredBytes_; }
    size_t capacity() const { return capacity_; }
    /** True once an install() failed for lack of space. */
    bool exhausted() const { return exhausted_; }

    // ---- chain registry (native block-to-block patches) -------------
    // A chain patch rewrites an installed exit slot into a direct
    // transfer to another block's entry. Every patch is registered
    // with the records it connects so invalidation can unlink (restore
    // the original bytes of) every site that mentions a block before
    // its code or record is reused.

    /** Byte offset of an installed entry inside the arena. */
    size_t
    offsetOf(const void *p) const
    {
        return static_cast<size_t>(static_cast<const uint8_t *>(p) -
                                   base_);
    }

    /** Executable address of arena offset `off`. */
    const uint8_t *rxAt(size_t off) const { return base_ + off; }

    /**
     * Overwrite `len` installed bytes at `off` with `code`, saving the
     * original bytes in the chain registry under (src, dst) — the
     * records the patch transfers from and to — and setting
     * *patchedFlag to the slot's transfer count. A second patch of the
     * same offset (the two-way taken-slot inline cache) merges into
     * the existing entry: the original bytes are kept (extended with
     * the still-untouched pad when the new stub is longer) and `dst`
     * is recorded as the slot's second target. False when the arena is
     * unmapped, the write failed (single-mapping fallback mprotect
     * error), or the slot already holds two targets.
     */
    bool patchChain(size_t off, const uint8_t *code, size_t len,
                    void *src, void *dst, uint8_t *patchedFlag);

    /**
     * The saved pre-patch bytes of the registered slot at `off`, or
     * nullptr when the slot is unpatched (linkChainSlot reads the
     * common-exit displacement from them on a re-link).
     */
    const std::vector<uint8_t> *chainOrig(size_t off) const;

    /**
     * Restore every registered patch that transfers from *or* to
     * `rec`, clear its patched flag, and account the dead stub bytes
     * as retired. Must run before a block's native code or record is
     * invalidated, demoted or recycled.
     */
    void unlinkChainsFor(const void *rec);

    /** Restore every registered patch (decode-cache invalidation). */
    void unlinkAllChains();

    /** Live (patched) chain transfers. */
    size_t chainCount() const { return chains_.size(); }

  private:
    struct ChainPatch
    {
        size_t off = 0;
        void *src = nullptr;
        void *dst = nullptr;
        void *dst2 = nullptr; //!< second inline-cache target (or null)
        uint8_t *patchedFlag = nullptr;
        std::vector<uint8_t> orig;
    };

    bool map();
    bool writeBytes(size_t off, const uint8_t *code, size_t len);

    uint8_t *base_ = nullptr;      //!< RX view: entry-point addresses
    uint8_t *writeBase_ = nullptr; //!< RW alias (dual-mapped memfd)
    size_t capacity_ = DefaultCapacity;
    size_t used_ = 0;
    size_t retiredBytes_ = 0;
    bool exhausted_ = false;
    bool mapFailed_ = false;
    std::vector<ChainPatch> chains_;
};

} // namespace risc1::jit

#endif // RISC1_JIT_ARENA_HH
