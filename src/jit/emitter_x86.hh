/**
 * @file
 * A minimal x86-64 byte emitter — exactly the vocabulary the
 * superblock templates need, nothing more. Register roles are fixed
 * by sbcompile.cc's calling plan (rbx = physical register base,
 * r12 = exit-context pointer, r13 = flag bytes, r14d = latched branch
 * target, ebp = latched branch outcome, r15 = iteration count), so
 * most methods hard-code their registers; the few that take one use
 * the Gp32 enum for the classic low four.
 *
 * Forward branches emit a rel32 placeholder and are patched by
 * bind(): `size_t fix = e.jccFwd(Cc::Js); ...; e.bind(fix);`.
 */

#ifndef RISC1_JIT_EMITTER_X86_HH
#define RISC1_JIT_EMITTER_X86_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace risc1::jit {

/** The caller-saved 32-bit registers the templates compute in. */
enum class Gp32 : uint8_t
{
    Eax = 0,
    Ecx = 1,
    Edx = 2,
};

/** Condition codes for setcc/jcc (low nibble of the 0F opcode). */
enum class Cc : uint8_t
{
    O = 0x0,  //!< overflow
    C = 0x2,  //!< carry / below
    Nc = 0x3, //!< no carry
    E = 0x4,  //!< equal / zero
    Ne = 0x5, //!< not equal
    S = 0x8,  //!< sign
    Ns = 0x9, //!< no sign
};

class Emitter
{
  public:
    /**
     * Fixed emission buffer. The worst-case superblock (64 steps of
     * the fattest template plus per-step exit stubs) stays under
     * 10 KB; sbcompile.cc additionally guards each step with
     * roomFor() so an unexpected overrun declines compilation
     * instead of writing past the end.
     */
    static constexpr size_t Capacity = 32768;

    const uint8_t *data() const { return buf_.data(); }
    size_t size() const { return n_; }
    /** Rewind for reuse. */
    void clear() { n_ = 0; }
    /** True while at least `bytes` more can be emitted. */
    bool roomFor(size_t bytes) const { return n_ + bytes <= Capacity; }

    // ---- prologue / epilogue ----------------------------------------
    void pushRbx() { b(0x53); }
    void pushRbp() { b(0x55); }
    void pushR12() { b(0x41); b(0x54); }
    void pushR13() { b(0x41); b(0x55); }
    void pushR14() { b(0x41); b(0x56); }
    void pushR15() { b(0x41); b(0x57); }
    void popRbx() { b(0x5b); }
    void popRbp() { b(0x5d); }
    void popR12() { b(0x41); b(0x5c); }
    void popR13() { b(0x41); b(0x5d); }
    void popR14() { b(0x41); b(0x5e); }
    void popR15() { b(0x41); b(0x5f); }
    void subRsp8() { b(0x48); b(0x83); b(0xec); b(0x08); }
    void addRsp8() { b(0x48); b(0x83); b(0xc4); b(0x08); }
    void ret() { b(0xc3); }

    void movR12Rdi() { b(0x49); b(0x89); b(0xfc); } // mov r12, rdi

    /** mov {rbx,r13,rdi,rax,rcx,rdx}, imm64 */
    void movRbxImm64(uint64_t v) { b(0x48); b(0xbb); q(v); }
    void movR13Imm64(uint64_t v) { b(0x49); b(0xbd); q(v); }
    void movRdiImm64(uint64_t v) { b(0x48); b(0xbf); q(v); }
    void movRaxImm64(uint64_t v) { b(0x48); b(0xb8); q(v); }
    void movRcxImm64(uint64_t v) { b(0x48); b(0xb9); q(v); }
    void movRdxImm64(uint64_t v) { b(0x48); b(0xba); q(v); }

    void xorR15R15() { b(0x4d); b(0x31); b(0xff); } // xor r15, r15
    void xorEbpEbp() { b(0x31); b(0xed); }

    // ---- register-file accesses (rbx base, disp32) ------------------
    /** mov r32, [rbx + disp] */
    void
    loadPhys(Gp32 r, uint32_t disp)
    {
        b(0x8b);
        b(static_cast<uint8_t>(0x83 | (static_cast<uint8_t>(r) << 3)));
        d(disp);
    }

    /** mov [rbx + disp], eax */
    void storePhysEax(uint32_t disp) { b(0x89); b(0x83); d(disp); }

    // ---- moves and ALU on the scratch registers ---------------------
    void movEaxImm32(uint32_t v) { b(0xb8); d(v); }
    void movEcxImm32(uint32_t v) { b(0xb9); d(v); }
    void movEbpImm32(uint32_t v) { b(0xbd); d(v); }
    void xorEaxEax() { b(0x31); b(0xc0); }
    void xorEcxEcx() { b(0x31); b(0xc9); }
    void xorEdxEdx() { b(0x31); b(0xd2); }
    void movEsiEax() { b(0x89); b(0xc6); }
    void movEcxEax() { b(0x89); b(0xc1); }
    void movEaxEcx() { b(0x89); b(0xc8); }

    void orEcxImm32(uint32_t v) { b(0x81); b(0xc9); d(v); }

    void addEaxEcx() { b(0x01); b(0xc8); }
    void adcEaxEcx() { b(0x11); b(0xc8); }
    void subEaxEcx() { b(0x29); b(0xc8); }
    void subEcxEax() { b(0x29); b(0xc1); }
    void andEaxEcx() { b(0x21); b(0xc8); }
    void orEaxEcx() { b(0x09); b(0xc8); }
    void xorEaxEcx() { b(0x31); b(0xc8); }
    void addEaxEdx() { b(0x01); b(0xd0); }
    void notEax() { b(0xf7); b(0xd0); }
    void notEcx() { b(0xf7); b(0xd1); }
    void shlEaxCl() { b(0xd3); b(0xe0); }
    void shrEaxCl() { b(0xd3); b(0xe8); }
    void sarEaxCl() { b(0xd3); b(0xf8); }
    void shlEcxImm8(uint8_t n) { b(0xc1); b(0xe1); b(n); }
    void orEaxImm32(uint32_t v) { b(0x0d); d(v); }
    void testEaxEax() { b(0x85); b(0xc0); }
    void testEbpEbp() { b(0x85); b(0xed); }
    void xorEbpImm1() { b(0x83); b(0xf5); b(0x01); }
    void xorEcxImm1() { b(0x83); b(0xf1); b(0x01); }
    void orEbpEcx() { b(0x09); b(0xcd); }
    void andEbpEcx() { b(0x21); b(0xcd); }
    void xorEbpEcx() { b(0x31); b(0xcd); }

    /** bt edx, 0 — loads CF from edx bit 0 (stored carry flag). */
    void btEdx0() { b(0x0f); b(0xba); b(0xe2); b(0x00); }

    // ---- flag bytes ([r13 + disp8], one byte per flag) --------------
    /** movzx r32, byte [r13 + disp8] */
    void
    loadFlag(Gp32 r, uint8_t disp)
    {
        b(0x41);
        b(0x0f);
        b(0xb6);
        b(static_cast<uint8_t>(0x45 | (static_cast<uint8_t>(r) << 3)));
        b(disp);
    }

    /** movzx ebp, byte [r13 + disp8] */
    void
    loadFlagEbp(uint8_t disp)
    {
        b(0x41); b(0x0f); b(0xb6); b(0x6d); b(disp);
    }

    /** setcc byte [r13 + disp8] */
    void
    setccFlag(Cc cc, uint8_t disp)
    {
        b(0x41);
        b(0x0f);
        b(static_cast<uint8_t>(0x90 | static_cast<uint8_t>(cc)));
        b(0x45);
        b(disp);
    }

    /** mov byte [r13 + disp8], 0 */
    void clearFlag(uint8_t disp) { b(0x41); b(0xc6); b(0x45); b(disp); b(0x00); }

    // ---- latched terminator state (r14d, ebp) -----------------------
    void movR14dEax() { b(0x41); b(0x89); b(0xc6); }
    void movR14dImm32(uint32_t v) { b(0x41); b(0xbe); d(v); }
    void xorR14dR14d() { b(0x45); b(0x31); b(0xf6); }
    void cmpR14dImm32(uint32_t v) { b(0x41); b(0x81); b(0xfe); d(v); }

    // ---- helper calls -----------------------------------------------
    void callRax() { b(0xff); b(0xd0); }
    void testRaxRax() { b(0x48); b(0x85); b(0xc0); }
    /** movzx ecx, byte [rax] */
    void movzxEcxByteRax() { b(0x0f); b(0xb6); b(0x08); }
    /** cmp byte [rax], 0 */
    void cmpByteRax0() { b(0x80); b(0x38); b(0x00); }

    // ---- iteration counter (r15) ------------------------------------
    void incR15() { b(0x49); b(0xff); b(0xc7); }
    void testR15R15() { b(0x4d); b(0x85); b(0xff); }
    /** cmp r15, qword [r12 + disp8] */
    void
    cmpR15Ctx(uint8_t disp)
    {
        b(0x4d); b(0x3b); b(0x7c); b(0x24); b(disp);
    }

    // ---- chain-mode budget / scratch accesses -----------------------
    // The chain stubs and the budget-admission back edge work in the
    // caller-saved 64-bit scratch set (rax, rcx, rdx, rsi) against the
    // exit context (r12) and a SbChainScratch base held in rdx.

    /** mov {rax,rcx,rsi}, qword [r12 + disp8] */
    void loadCtxRax64(uint8_t disp) { b(0x49); b(0x8b); b(0x44); b(0x24); b(disp); }
    void loadCtxRcx64(uint8_t disp) { b(0x49); b(0x8b); b(0x4c); b(0x24); b(disp); }
    void loadCtxRsi64(uint8_t disp) { b(0x49); b(0x8b); b(0x74); b(0x24); b(disp); }
    /** mov qword [r12 + disp8], {rax,rcx,rsi} */
    void storeCtxRax64(uint8_t disp) { b(0x49); b(0x89); b(0x44); b(0x24); b(disp); }
    void storeCtxRcx64(uint8_t disp) { b(0x49); b(0x89); b(0x4c); b(0x24); b(disp); }
    void storeCtxRsi64(uint8_t disp) { b(0x49); b(0x89); b(0x74); b(0x24); b(disp); }
    /** sub qword [r12 + disp8], imm32 (sign-extended) */
    void
    subCtx64Imm32(uint8_t disp, uint32_t v)
    {
        b(0x49); b(0x81); b(0x6c); b(0x24); b(disp); d(v);
    }
    /** inc qword [r12 + disp8] */
    void incCtx64(uint8_t disp) { b(0x49); b(0xff); b(0x44); b(0x24); b(disp); }
    /** cmp rsi, qword [r12 + disp8] */
    void cmpRsiCtx64(uint8_t disp) { b(0x49); b(0x3b); b(0x74); b(0x24); b(disp); }
    /** add rax, qword [r12 + disp8] */
    void addRaxCtx64(uint8_t disp) { b(0x49); b(0x03); b(0x44); b(0x24); b(disp); }

    void subRaxImm32(uint32_t v) { b(0x48); b(0x2d); d(v); }
    void subRcxImm32(uint32_t v) { b(0x48); b(0x81); b(0xe9); d(v); }
    void testRcxRcx() { b(0x48); b(0x85); b(0xc9); }
    void addRsi8() { b(0x48); b(0x83); b(0xc6); b(0x08); }
    void andEaxImm8(uint8_t v) { b(0x83); b(0xe0); b(v); }
    void shlEaxImm8(uint8_t n) { b(0xc1); b(0xe0); b(n); }
    /** lea rcx, [r15 - 1] */
    void leaRcxR15Minus1() { b(0x49); b(0x8d); b(0x4f); b(0xff); }

    /** add qword [rdx + disp8], r15 */
    void addMemRdxR15(uint8_t disp) { b(0x4c); b(0x01); b(0x7a); b(disp); }
    /** add qword [rdx + disp8], rcx */
    void addMemRdxRcx(uint8_t disp) { b(0x48); b(0x01); b(0x4a); b(disp); }
    /** mov dword [rdx + disp8], imm32 */
    void movMemRdxImm32(uint8_t disp, uint32_t v) { b(0xc7); b(0x42); b(disp); d(v); }
    /** cmp byte [rdx + disp8], 0 */
    void cmpByteRdx0(uint8_t disp) { b(0x80); b(0x7a); b(disp); b(0x00); }
    /** mov byte [rdx + disp8], 1 */
    void movByteRdx1(uint8_t disp) { b(0xc6); b(0x42); b(disp); b(0x01); }
    /** mov qword [rsi], rdx */
    void storeRdxAtRsi() { b(0x48); b(0x89); b(0x16); }
    /** mov qword [rax], rdx */
    void storeRdxAtRax() { b(0x48); b(0x89); b(0x10); }
    /** mov qword [rax + 8], r15 */
    void storeR15AtRax8() { b(0x4c); b(0x89); b(0x78); b(0x08); }

    /** jmp rel32 with a caller-computed displacement (external
     *  targets: another block's chain entry, the common exit). */
    void jmpRel32(int32_t rel) { b(0xe9); d(static_cast<uint32_t>(rel)); }
    /** int3 — pads the unpatched tail of a chain slot. */
    void int3() { b(0xcc); }

    // ---- exit-context stores ([r12 + disp8]) ------------------------
    /** mov qword [r12 + disp8], r15 */
    void storeCtxR15(uint8_t disp) { b(0x4d); b(0x89); b(0x7c); b(0x24); b(disp); }
    /** mov dword [r12 + disp8], r14d */
    void storeCtxR14d(uint8_t disp) { b(0x45); b(0x89); b(0x74); b(0x24); b(disp); }
    /** mov dword [r12 + disp8], ebp */
    void storeCtxEbp(uint8_t disp) { b(0x41); b(0x89); b(0x6c); b(0x24); b(disp); }
    /** mov dword [r12 + disp8], imm32 */
    void
    storeCtxImm32(uint8_t disp, uint32_t v)
    {
        b(0x41); b(0xc7); b(0x44); b(0x24); b(disp); d(v);
    }
    /** mov eax, dword [r12 + disp8] */
    void loadCtxEax(uint8_t disp) { b(0x41); b(0x8b); b(0x44); b(0x24); b(disp); }

    // ---- control flow -----------------------------------------------
    /** jcc rel32 forward; returns the fixup cookie for bind(). */
    size_t
    jccFwd(Cc cc)
    {
        b(0x0f);
        b(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(cc)));
        const size_t at = n_;
        d(0);
        return at;
    }

    /** jmp rel32 forward; returns the fixup cookie for bind(). */
    size_t
    jmpFwd()
    {
        b(0xe9);
        const size_t at = n_;
        d(0);
        return at;
    }

    /** Resolve a forward branch to the current position. */
    void
    bind(size_t fixup)
    {
        const int32_t rel = static_cast<int32_t>(n_ - (fixup + 4));
        std::memcpy(&buf_[fixup], &rel, 4);
    }

    /** Current position, a backward-branch anchor. */
    size_t here() const { return n_; }

    /** jcc rel32 backward to a here() anchor. */
    void
    jccBack(Cc cc, size_t target)
    {
        b(0x0f);
        b(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(cc)));
        d(static_cast<uint32_t>(static_cast<int32_t>(target) -
                                static_cast<int32_t>(n_ + 4)));
    }

    /** jmp rel32 backward to a here() anchor. */
    void
    jmpBack(size_t target)
    {
        b(0xe9);
        d(static_cast<uint32_t>(static_cast<int32_t>(target) -
                                static_cast<int32_t>(n_ + 4)));
    }

  private:
    // Unchecked single-byte append: the compile loop reserves
    // headroom per step (roomFor), so the cursor cannot run off the
    // fixed buffer between checks.
    void b(uint8_t v) { buf_[n_++] = v; }

    void
    d(uint32_t v)
    {
        std::memcpy(&buf_[n_], &v, 4);
        n_ += 4;
    }

    void
    q(uint64_t v)
    {
        std::memcpy(&buf_[n_], &v, 8);
        n_ += 8;
    }

    std::array<uint8_t, Capacity> buf_;
    size_t n_ = 0;
};

} // namespace risc1::jit

#endif // RISC1_JIT_EMITTER_X86_HH
