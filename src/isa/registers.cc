#include "isa/registers.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace risc1::isa {

std::string
regName(unsigned reg)
{
    if (reg >= NumVisibleRegs)
        panic("regName: bad register %u", reg);
    return strprintf("r%u", reg);
}

namespace {

/** Parse the decimal tail of an alias like "out3". */
std::optional<unsigned>
parseIndex(std::string_view tail, unsigned limit)
{
    if (tail.empty() || tail.size() > 2)
        return std::nullopt;
    unsigned value = 0;
    for (char c : tail) {
        if (c < '0' || c > '9')
            return std::nullopt;
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value >= limit)
        return std::nullopt;
    return value;
}

} // namespace

std::optional<unsigned>
regFromName(std::string_view name)
{
    const std::string lower = toLower(name);
    std::string_view s = lower;

    if (s == "sp")
        return SpReg;
    if (s == "ra")
        return RaReg;

    if (s.size() >= 2 && s[0] == 'r') {
        if (auto idx = parseIndex(s.substr(1), NumVisibleRegs))
            return *idx;
        return std::nullopt;
    }
    if (s.size() >= 2 && s[0] == 'g') {
        if (auto idx = parseIndex(s.substr(1), NumGlobals))
            return *idx;
        return std::nullopt;
    }
    if (s.size() >= 4 && s.substr(0, 3) == "out") {
        if (auto idx = parseIndex(s.substr(3), OverlapRegs))
            return LowBase + *idx;
        return std::nullopt;
    }
    if (s.size() >= 4 && s.substr(0, 3) == "loc") {
        if (auto idx = parseIndex(s.substr(3), HighBase - LocalBase))
            return LocalBase + *idx;
        return std::nullopt;
    }
    if (s.size() >= 3 && s.substr(0, 2) == "in") {
        if (auto idx = parseIndex(s.substr(2), OverlapRegs))
            return HighBase + *idx;
        return std::nullopt;
    }
    return std::nullopt;
}

} // namespace risc1::isa
