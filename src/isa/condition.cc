#include "isa/condition.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace risc1::isa {

bool
condHolds(Cond cond, const Flags &f)
{
    switch (cond) {
      case Cond::Nev: return false;
      case Cond::Alw: return true;
      case Cond::Eq:  return f.z;
      case Cond::Ne:  return !f.z;
      case Cond::Lt:  return f.n != f.v;
      case Cond::Ge:  return f.n == f.v;
      case Cond::Le:  return f.z || (f.n != f.v);
      case Cond::Gt:  return !(f.z || (f.n != f.v));
      case Cond::Lo:  return !f.c;
      case Cond::His: return f.c;
      case Cond::Los: return !f.c || f.z;
      case Cond::Hi:  return f.c && !f.z;
      case Cond::Pl:  return !f.n;
      case Cond::Mi:  return f.n;
      case Cond::Nv:  return !f.v;
      case Cond::Ov:  return f.v;
    }
    panic("condHolds: bad condition %u", static_cast<unsigned>(cond));
}

namespace {

constexpr std::string_view condNames[NumConds] = {
    "nev", "alw", "eq", "ne", "lt", "ge", "le", "gt",
    "lo", "his", "los", "hi", "pl", "mi", "nv", "ov",
};

} // namespace

std::string_view
condName(Cond cond)
{
    const auto idx = static_cast<unsigned>(cond);
    if (idx >= NumConds)
        panic("condName: bad condition %u", idx);
    return condNames[idx];
}

std::optional<Cond>
condFromName(std::string_view name)
{
    for (unsigned i = 0; i < NumConds; ++i) {
        if (iequals(name, condNames[i]))
            return static_cast<Cond>(i);
    }
    return std::nullopt;
}

Cond
condNegate(Cond cond)
{
    switch (cond) {
      case Cond::Nev: return Cond::Alw;
      case Cond::Alw: return Cond::Nev;
      case Cond::Eq:  return Cond::Ne;
      case Cond::Ne:  return Cond::Eq;
      case Cond::Lt:  return Cond::Ge;
      case Cond::Ge:  return Cond::Lt;
      case Cond::Le:  return Cond::Gt;
      case Cond::Gt:  return Cond::Le;
      case Cond::Lo:  return Cond::His;
      case Cond::His: return Cond::Lo;
      case Cond::Los: return Cond::Hi;
      case Cond::Hi:  return Cond::Los;
      case Cond::Pl:  return Cond::Mi;
      case Cond::Mi:  return Cond::Pl;
      case Cond::Nv:  return Cond::Ov;
      case Cond::Ov:  return Cond::Nv;
    }
    panic("condNegate: bad condition %u", static_cast<unsigned>(cond));
}

} // namespace risc1::isa
