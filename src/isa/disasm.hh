/**
 * @file
 * Disassembler: renders decoded instructions back into the assembler
 * syntax accepted by src/asm (paper operand order: `op rs1, s2, rd`;
 * memory operands `(rx)disp`).
 */

#ifndef RISC1_ISA_DISASM_HH
#define RISC1_ISA_DISASM_HH

#include <cstdint>
#include <string>

#include "isa/instruction.hh"

namespace risc1::isa {

/**
 * Render one instruction. `pc` is the instruction's own address; it is
 * used to print absolute targets next to PC-relative transfers.
 */
std::string disassemble(const Instruction &inst, uint32_t pc = 0);

/** Decode and render a raw word; illegal words render as `.word 0x...`. */
std::string disassembleWord(uint32_t word, uint32_t pc = 0);

} // namespace risc1::isa

#endif // RISC1_ISA_DISASM_HH
