/**
 * @file
 * The 31 RISC I instructions (Table I of the ISCA'81 paper) with static
 * metadata used by the assembler, disassembler, simulator, and the
 * instruction-set table reproduction (experiment E1).
 */

#ifndef RISC1_ISA_OPCODE_HH
#define RISC1_ISA_OPCODE_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace risc1::isa {

/**
 * Opcode values (7-bit field). Grouped by function: arithmetic/logic
 * (0x10..), memory access (0x20..), control transfer (0x30..),
 * miscellaneous (0x40..). Every value not listed here is an illegal
 * instruction.
 */
enum class Opcode : uint8_t
{
    // Arithmetic / logical / shift (register-to-register, optional scc).
    Add   = 0x10, //!< rd := rs1 + s2
    Addc  = 0x11, //!< rd := rs1 + s2 + carry
    Sub   = 0x12, //!< rd := rs1 - s2
    Subc  = 0x13, //!< rd := rs1 - s2 - !carry
    Subr  = 0x14, //!< rd := s2 - rs1 (reverse)
    Subcr = 0x15, //!< rd := s2 - rs1 - !carry
    And   = 0x16, //!< rd := rs1 & s2
    Or    = 0x17, //!< rd := rs1 | s2
    Xor   = 0x18, //!< rd := rs1 ^ s2
    Sll   = 0x19, //!< rd := rs1 << s2
    Srl   = 0x1a, //!< rd := rs1 >> s2 (logical)
    Sra   = 0x1b, //!< rd := rs1 >> s2 (arithmetic)

    // Memory access: the only instructions touching memory.
    Ldl   = 0x20, //!< rd := M32[rs1 + s2]
    Ldsu  = 0x21, //!< rd := zext(M16[rs1 + s2])
    Ldss  = 0x22, //!< rd := sext(M16[rs1 + s2])
    Ldbu  = 0x23, //!< rd := zext(M8[rs1 + s2])
    Ldbs  = 0x24, //!< rd := sext(M8[rs1 + s2])
    Stl   = 0x25, //!< M32[rs1 + s2] := rm (rm travels in the rd field)
    Sts   = 0x26, //!< M16[rs1 + s2] := rm<15:0>
    Stb   = 0x27, //!< M8[rs1 + s2]  := rm<7:0>

    // Control transfer (all delayed by one instruction).
    Jmp     = 0x30, //!< if cond: PC := rs1 + s2 (cond in rd field)
    Jmpr    = 0x31, //!< if cond: PC := PC + Y (long format, cond in rd)
    Call    = 0x32, //!< CWP--; rd(new window) := PC; PC := rs1 + s2
    Callr   = 0x33, //!< CWP--; rd(new window) := PC; PC := PC + Y
    Ret     = 0x34, //!< PC := rs1 + s2; CWP++
    Callint = 0x35, //!< CWP--; rd := lastPC (interrupt entry)
    Retint  = 0x36, //!< PC := rs1 + s2; CWP++ (interrupt exit)

    // Miscellaneous.
    Ldhi   = 0x40, //!< rd<31:13> := Y; rd<12:0> := 0 (long format)
    Gtlpc  = 0x41, //!< rd := last PC (restartable delayed jumps)
    Getpsw = 0x42, //!< rd := PSW
    Putpsw = 0x43, //!< PSW := rs1 + s2
};

/** Number of architected instructions (the paper's famous 31). */
constexpr unsigned NumOpcodes = 31;

/** Encoding layout of an instruction word. */
enum class Format : uint8_t
{
    ShortImm, //!< opcode|scc|rd|rs1|imm|s2(13)
    LongImm,  //!< opcode|scc|rd|Y(19)
};

/** Broad functional class, used for instruction-mix statistics (E8). */
enum class OpClass : uint8_t
{
    Alu,     //!< arithmetic/logical/shift
    Load,    //!< memory read
    Store,   //!< memory write
    Branch,  //!< conditional/unconditional jump
    Call,    //!< window-push transfers (CALL, CALLR, CALLINT)
    Ret,     //!< window-pop transfers (RET, RETINT)
    Misc,    //!< LDHI, GTLPC, GETPSW, PUTPSW
};

/** Static description of one opcode. */
struct OpInfo
{
    Opcode op;
    std::string_view mnemonic; //!< lower-case assembler mnemonic
    Format format;
    OpClass opClass;
    bool readsRs1;    //!< rs1 field is a source register
    bool usesS2;      //!< s2 field (reg or simm13) is a source
    bool writesRd;    //!< rd field is written
    bool rdIsSource;  //!< rd field is read (stores: the datum)
    bool rdIsCond;    //!< rd field carries a condition code
    bool mayScc;      //!< scc bit is honoured
    std::string_view operation; //!< paper-style semantics string
    std::string_view comment;   //!< paper-style one-line description
};

/** Metadata for an opcode. Panics on an opcode not in the table. */
const OpInfo &opInfo(Opcode op);

/** All 31 instructions in Table I order. */
const OpInfo *opTable(unsigned &count);

/** Look up metadata by mnemonic (case-insensitive); nullptr if unknown. */
const OpInfo *opInfoByMnemonic(std::string_view mnemonic);

/** True iff this 7-bit value names an architected opcode. */
bool isValidOpcode(uint8_t raw);

} // namespace risc1::isa

#endif // RISC1_ISA_OPCODE_HH
