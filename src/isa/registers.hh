/**
 * @file
 * Register-window geometry of RISC I. Every procedure sees 32 registers:
 *
 *     r31..r26  HIGH   — incoming parameters (caller's LOW)
 *     r25..r16  LOCAL  — scratch local to the procedure
 *     r15..r10  LOW    — outgoing parameters (callee's HIGH)
 *     r9 ..r0   GLOBAL — shared by all procedures; r0 reads as zero
 *
 * A CALL decrements the current window pointer (CWP); the caller's LOW
 * registers physically *are* the callee's HIGH registers. Each window
 * therefore contributes 16 fresh registers (6 LOW + 10 LOCAL); the
 * architected machine has 8 windows, for 10 + 8*16 = 138 physical
 * registers. The window count is a template of the study in experiment E6
 * and thus a runtime parameter here.
 */

#ifndef RISC1_ISA_REGISTERS_HH
#define RISC1_ISA_REGISTERS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace risc1::isa {

/** Number of registers visible to one procedure. */
constexpr unsigned NumVisibleRegs = 32;

/** Index of the hardwired-zero register. */
constexpr unsigned ZeroReg = 0;

/** Conventional global stack pointer for guest data (shared register). */
constexpr unsigned SpReg = 1;

/** Conventional return-address register (written by CALL in the callee's
 *  window; LOCAL r25). */
constexpr unsigned RaReg = 25;

/** First LOW register (outgoing parameters). */
constexpr unsigned LowBase = 10;
/** First LOCAL register. */
constexpr unsigned LocalBase = 16;
/** First HIGH register (incoming parameters). */
constexpr unsigned HighBase = 26;

/** Number of global registers (r0..r9). */
constexpr unsigned NumGlobals = 10;
/** Registers contributed per window: LOW(6) + LOCAL(10). */
constexpr unsigned RegsPerWindow = 16;
/** LOW/HIGH overlap size. */
constexpr unsigned OverlapRegs = 6;

/**
 * Geometry of a windowed register file. Encapsulates the
 * visible-to-physical mapping so both the simulator and the geometry
 * reproduction (experiment E2) share one definition.
 */
struct WindowSpec
{
    /** Paper default: 8 windows = 138 physical registers. */
    unsigned numWindows = 8;

    /** Total physical registers: globals + 16 per window. */
    unsigned
    physCount() const
    {
        return NumGlobals + numWindows * RegsPerWindow;
    }

    /**
     * Map visible register `reg` of window `cwp` to its physical index.
     * Globals occupy physical 0..9; window w's fresh registers (its LOW
     * and LOCAL) occupy a contiguous 16-slot bank; HIGH registers alias
     * the LOW bank of window (cwp+1) mod numWindows — the caller, since
     * CALL decrements CWP.
     */
    unsigned
    physIndex(unsigned cwp, unsigned reg) const
    {
        if (reg < NumGlobals)
            return reg;
        const unsigned bank_regs = numWindows * RegsPerWindow;
        if (reg < HighBase) {
            // LOW + LOCAL: this window's own bank.
            return NumGlobals +
                   (cwp * RegsPerWindow + (reg - LowBase)) % bank_regs;
        }
        // HIGH: the caller's LOW bank.
        const unsigned caller = (cwp + 1) % numWindows;
        return NumGlobals +
               (caller * RegsPerWindow + (reg - HighBase)) % bank_regs;
    }
};

/** Canonical name of a visible register ("r0".."r31"). */
std::string regName(unsigned reg);

/**
 * Parse a register name. Accepts "rN" plus the SPARC-flavoured aliases
 * used throughout the paper's software convention: "sp" (r1),
 * "ra" (r25), "outN" (r10+N), "locN" (r16+N), "inN" (r26+N),
 * "gN" (rN, N<10). Case-insensitive. Returns nullopt if unknown.
 */
std::optional<unsigned> regFromName(std::string_view name);

} // namespace risc1::isa

#endif // RISC1_ISA_REGISTERS_HH
