/**
 * @file
 * Decoded instruction representation and the 32-bit binary encoding.
 *
 * All RISC I instructions are exactly 32 bits, in one of two formats:
 *
 *   short-immediate:
 *     [31:25] opcode  [24] scc  [23:19] rd  [18:14] rs1
 *     [13] imm  [12:0] s2  (imm=0: s2<4:0> is rs2; imm=1: s2 is simm13)
 *
 *   long-immediate (JMPR, CALLR, LDHI):
 *     [31:25] opcode  [24] scc  [23:19] rd  [18:0] Y (signed 19 bits)
 *
 * For conditional jumps the rd field carries the condition; for stores it
 * carries the source register of the datum.
 */

#ifndef RISC1_ISA_INSTRUCTION_HH
#define RISC1_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <variant>

#include "isa/condition.hh"
#include "isa/opcode.hh"

namespace risc1::isa {

/** Width of every instruction in bytes. */
constexpr unsigned InstBytes = 4;

/** Signed immediate width in the short format. */
constexpr unsigned Simm13Bits = 13;
/** Signed immediate width in the long format. */
constexpr unsigned Imm19Bits = 19;

/** A decoded (or to-be-encoded) instruction. */
struct Instruction
{
    Opcode op = Opcode::Add;
    bool scc = false;    //!< set condition codes (ALU ops only)
    uint8_t rd = 0;      //!< dest / store source / condition selector
    uint8_t rs1 = 0;     //!< first source register
    bool imm = false;    //!< short format: s2 is an immediate
    uint8_t rs2 = 0;     //!< short format, imm=0
    int32_t simm13 = 0;  //!< short format, imm=1 (signed 13 bits)
    int32_t imm19 = 0;   //!< long format Y (signed 19 bits)

    bool operator==(const Instruction &) const = default;

    /** Condition selector of a conditional transfer. */
    Cond cond() const { return static_cast<Cond>(rd & 0xf); }

    /** Metadata of this instruction's opcode. */
    const OpInfo &info() const { return opInfo(op); }
};

/** Result of decoding one instruction word. */
struct DecodeResult
{
    bool ok = false;
    Instruction inst;
    std::string error;
};

/**
 * Encode an instruction to its 32-bit word. Field ranges are checked;
 * out-of-range fields indicate an assembler bug and panic.
 */
uint32_t encode(const Instruction &inst);

/** Decode a 32-bit word. Illegal opcodes yield ok=false with a message. */
DecodeResult decode(uint32_t word);

// ---- Construction helpers (used by the assembler and the workloads). ----

/** Register-register ALU op: `rd := rs1 <op> rs2`. */
Instruction makeRR(Opcode op, unsigned rs1, unsigned rs2, unsigned rd,
                   bool scc = false);

/** Register-immediate ALU op: `rd := rs1 <op> simm13`. */
Instruction makeRI(Opcode op, unsigned rs1, int32_t simm13, unsigned rd,
                   bool scc = false);

/** Load: `rd := M[rs1 + simm13]`. */
Instruction makeLoad(Opcode op, unsigned rs1, int32_t simm13, unsigned rd);

/** Store: `M[rs1 + simm13] := rm`. */
Instruction makeStore(Opcode op, unsigned rm, unsigned rs1, int32_t simm13);

/** Conditional indexed jump: `if cond: PC := rs1 + simm13`. */
Instruction makeJmp(Cond cond, unsigned rs1, int32_t simm13);

/** Conditional relative jump: `if cond: PC := PC + offset` (bytes). */
Instruction makeJmpr(Cond cond, int32_t offset);

/** Indexed call: link into `rd` of the new window. */
Instruction makeCall(unsigned rd, unsigned rs1, int32_t simm13);

/** Relative call: link into `rd` of the new window. */
Instruction makeCallr(unsigned rd, int32_t offset);

/** Return: `PC := rs1 + simm13; CWP++`. */
Instruction makeRet(unsigned rs1, int32_t simm13);

/** Load high immediate: `rd := y19 << 13`. */
Instruction makeLdhi(unsigned rd, int32_t y19);

/** Canonical no-op (`add r0, r0, r0` without scc). */
Instruction makeNop();

/** True iff this instruction is the canonical NOP. */
bool isNop(const Instruction &inst);

} // namespace risc1::isa

#endif // RISC1_ISA_INSTRUCTION_HH
