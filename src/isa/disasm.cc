#include "isa/disasm.hh"

#include "isa/registers.hh"
#include "support/logging.hh"

namespace risc1::isa {

namespace {

/** Render the s2 operand of a short-format instruction. */
std::string
s2Text(const Instruction &inst)
{
    if (inst.imm)
        return strprintf("%d", inst.simm13);
    return regName(inst.rs2);
}

/** Render an `(rx)disp` memory operand. */
std::string
memText(const Instruction &inst)
{
    if (inst.imm)
        return strprintf("(%s)%d", regName(inst.rs1).c_str(), inst.simm13);
    return strprintf("(%s)%s", regName(inst.rs1).c_str(),
                     regName(inst.rs2).c_str());
}

} // namespace

std::string
disassemble(const Instruction &inst, uint32_t pc)
{
    const OpInfo &info = inst.info();
    const std::string mn = std::string(info.mnemonic) +
                           (inst.scc ? "s" : "");

    switch (info.opClass) {
      case OpClass::Alu:
        return strprintf("%-8s %s, %s, %s", mn.c_str(),
                         regName(inst.rs1).c_str(), s2Text(inst).c_str(),
                         regName(inst.rd).c_str());
      case OpClass::Load:
        return strprintf("%-8s %s, %s", mn.c_str(), memText(inst).c_str(),
                         regName(inst.rd).c_str());
      case OpClass::Store:
        return strprintf("%-8s %s, %s", mn.c_str(),
                         regName(inst.rd).c_str(), memText(inst).c_str());
      case OpClass::Branch:
        if (inst.op == Opcode::Jmpr) {
            return strprintf("%-8s %s, .%+d  ; -> 0x%08x", mn.c_str(),
                             std::string(condName(inst.cond())).c_str(),
                             inst.imm19,
                             pc + static_cast<uint32_t>(inst.imm19));
        }
        return strprintf("%-8s %s, %s", mn.c_str(),
                         std::string(condName(inst.cond())).c_str(),
                         memText(inst).c_str());
      case OpClass::Call:
        if (inst.op == Opcode::Callr) {
            return strprintf("%-8s %s, .%+d  ; -> 0x%08x", mn.c_str(),
                             regName(inst.rd).c_str(), inst.imm19,
                             pc + static_cast<uint32_t>(inst.imm19));
        }
        if (inst.op == Opcode::Callint)
            return strprintf("%-8s %s", mn.c_str(),
                             regName(inst.rd).c_str());
        return strprintf("%-8s %s, %s", mn.c_str(),
                         regName(inst.rd).c_str(), memText(inst).c_str());
      case OpClass::Ret:
        return strprintf("%-8s %s", mn.c_str(), memText(inst).c_str());
      case OpClass::Misc:
        switch (inst.op) {
          case Opcode::Ldhi:
            return strprintf("%-8s %s, 0x%x", mn.c_str(),
                             regName(inst.rd).c_str(),
                             static_cast<unsigned>(inst.imm19) & 0x7ffff);
          case Opcode::Gtlpc:
          case Opcode::Getpsw:
            return strprintf("%-8s %s", mn.c_str(),
                             regName(inst.rd).c_str());
          case Opcode::Putpsw:
            return strprintf("%-8s %s, %s", mn.c_str(),
                             regName(inst.rs1).c_str(),
                             s2Text(inst).c_str());
          default:
            break;
        }
        break;
    }
    panic("disassemble: unhandled opcode 0x%02x",
          static_cast<unsigned>(inst.op));
}

std::string
disassembleWord(uint32_t word, uint32_t pc)
{
    DecodeResult dec = decode(word);
    if (!dec.ok)
        return strprintf(".word    0x%08x", word);
    if (isNop(dec.inst))
        return "nop";
    return disassemble(dec.inst, pc);
}

} // namespace risc1::isa
