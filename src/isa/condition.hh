/**
 * @file
 * Condition codes of the RISC I architecture. Conditional instructions
 * (JMP, JMPR) carry a 4-bit condition in the destination-register field;
 * ALU instructions optionally set the four flags Z/N/V/C via the `scc` bit.
 *
 * Carry convention: for subtraction C=1 means "no borrow" (a >= b
 * unsigned), as produced by computing a + ~b + 1 with carry-out.
 */

#ifndef RISC1_ISA_CONDITION_HH
#define RISC1_ISA_CONDITION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace risc1::isa {

/** Processor status flags set by scc-tagged ALU instructions. */
struct Flags
{
    bool z = false; //!< result was zero
    bool n = false; //!< result was negative (bit 31)
    bool v = false; //!< signed overflow
    bool c = false; //!< carry out (no-borrow for subtraction)

    bool operator==(const Flags &) const = default;
};

/** 4-bit condition selector for conditional transfers. */
enum class Cond : uint8_t
{
    Nev = 0,  //!< never (reserved encoding; assembler never emits it)
    Alw = 1,  //!< always
    Eq = 2,   //!< equal              Z
    Ne = 3,   //!< not equal          !Z
    Lt = 4,   //!< signed less        N^V
    Ge = 5,   //!< signed >=          !(N^V)
    Le = 6,   //!< signed <=          Z | (N^V)
    Gt = 7,   //!< signed greater     !(Z | (N^V))
    Lo = 8,   //!< unsigned less      !C
    His = 9,  //!< unsigned >=        C
    Los = 10, //!< unsigned <=        !C | Z
    Hi = 11,  //!< unsigned greater   C & !Z
    Pl = 12,  //!< plus               !N
    Mi = 13,  //!< minus              N
    Nv = 14,  //!< no overflow        !V
    Ov = 15,  //!< overflow           V
};

/** Number of distinct condition encodings. */
constexpr unsigned NumConds = 16;

/** Evaluate a condition against the current flags. */
bool condHolds(Cond cond, const Flags &flags);

/** Lower-case mnemonic of a condition ("alw", "eq", ...). */
std::string_view condName(Cond cond);

/** Parse a condition mnemonic (case-insensitive). */
std::optional<Cond> condFromName(std::string_view name);

/** The condition testing the logically opposite outcome. */
Cond condNegate(Cond cond);

} // namespace risc1::isa

#endif // RISC1_ISA_CONDITION_HH
