#include "isa/trapcause.hh"

#include "support/logging.hh"

namespace risc1::isa {

std::string_view
trapCauseName(TrapCause cause)
{
    switch (cause) {
      case TrapCause::None:              return "none";
      case TrapCause::MisalignedAccess:  return "misaligned access";
      case TrapCause::IllegalOpcode:     return "illegal opcode";
      case TrapCause::OutOfRangeAddress: return "out-of-range address";
      case TrapCause::WindowExhausted:   return "window-stack exhaustion";
      case TrapCause::DivideByZero:      return "divide by zero";
      case TrapCause::IllegalOperand:    return "illegal operand";
      case TrapCause::Watchdog:          return "watchdog";
    }
    panic("trapCauseName: bad cause %u", static_cast<unsigned>(cause));
}

} // namespace risc1::isa
