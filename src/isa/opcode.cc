#include "isa/opcode.hh"

#include <array>

#include "support/logging.hh"
#include "support/strings.hh"

namespace risc1::isa {

namespace {

using enum Format;
using enum OpClass;

// Columns: op, mnemonic, format, class,
//          readsRs1, usesS2, writesRd, rdIsSource, rdIsCond, mayScc,
//          operation, comment.
constexpr std::array<OpInfo, NumOpcodes> table = {{
    {Opcode::Add, "add", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 + S2", "integer add"},
    {Opcode::Addc, "addc", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 + S2 + carry", "add with carry"},
    {Opcode::Sub, "sub", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 - S2", "integer subtract"},
    {Opcode::Subc, "subc", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 - S2 - borrow", "subtract with borrow"},
    {Opcode::Subr, "subr", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := S2 - Rs1", "reverse subtract"},
    {Opcode::Subcr, "subcr", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := S2 - Rs1 - borrow", "reverse subtract with borrow"},
    {Opcode::And, "and", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 & S2", "logical AND"},
    {Opcode::Or, "or", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 | S2", "logical OR"},
    {Opcode::Xor, "xor", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 xor S2", "logical EXCLUSIVE OR"},
    {Opcode::Sll, "sll", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 << S2", "shift left logical"},
    {Opcode::Srl, "srl", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 >> S2 (zero fill)", "shift right logical"},
    {Opcode::Sra, "sra", ShortImm, Alu,
     true, true, true, false, false, true,
     "Rd := Rs1 >> S2 (sign fill)", "shift right arithmetic"},

    {Opcode::Ldl, "ldl", ShortImm, Load,
     true, true, true, false, false, false,
     "Rd := M[Rs1 + S2]<31:0>", "load long (32-bit)"},
    {Opcode::Ldsu, "ldsu", ShortImm, Load,
     true, true, true, false, false, false,
     "Rd := zext(M[Rs1 + S2]<15:0>)", "load short unsigned"},
    {Opcode::Ldss, "ldss", ShortImm, Load,
     true, true, true, false, false, false,
     "Rd := sext(M[Rs1 + S2]<15:0>)", "load short signed"},
    {Opcode::Ldbu, "ldbu", ShortImm, Load,
     true, true, true, false, false, false,
     "Rd := zext(M[Rs1 + S2]<7:0>)", "load byte unsigned"},
    {Opcode::Ldbs, "ldbs", ShortImm, Load,
     true, true, true, false, false, false,
     "Rd := sext(M[Rs1 + S2]<7:0>)", "load byte signed"},
    {Opcode::Stl, "stl", ShortImm, Store,
     true, true, false, true, false, false,
     "M[Rs1 + S2]<31:0> := Rm", "store long (32-bit)"},
    {Opcode::Sts, "sts", ShortImm, Store,
     true, true, false, true, false, false,
     "M[Rs1 + S2]<15:0> := Rm<15:0>", "store short"},
    {Opcode::Stb, "stb", ShortImm, Store,
     true, true, false, true, false, false,
     "M[Rs1 + S2]<7:0> := Rm<7:0>", "store byte"},

    {Opcode::Jmp, "jmp", ShortImm, Branch,
     true, true, false, false, true, false,
     "if COND then PC := Rs1 + S2", "conditional jump, indexed (delayed)"},
    {Opcode::Jmpr, "jmpr", LongImm, Branch,
     false, false, false, false, true, false,
     "if COND then PC := PC + Y", "conditional jump, relative (delayed)"},
    {Opcode::Call, "call", ShortImm, Call,
     true, true, true, false, false, false,
     "CWP--; Rd := PC; PC := Rs1 + S2", "call, indexed; change window"},
    {Opcode::Callr, "callr", LongImm, Call,
     false, false, true, false, false, false,
     "CWP--; Rd := PC; PC := PC + Y", "call, relative; change window"},
    {Opcode::Ret, "ret", ShortImm, Ret,
     true, true, false, false, false, false,
     "PC := Rs1 + S2; CWP++", "return; restore window"},
    {Opcode::Callint, "callint", ShortImm, Call,
     false, false, true, false, false, false,
     "CWP--; Rd := LSTPC", "disable interrupts; save last PC"},
    {Opcode::Retint, "retint", ShortImm, Ret,
     true, true, false, false, false, false,
     "PC := Rs1 + S2; CWP++", "enable interrupts; return"},

    {Opcode::Ldhi, "ldhi", LongImm, Misc,
     false, false, true, false, false, false,
     "Rd<31:13> := Y; Rd<12:0> := 0", "load high immediate"},
    {Opcode::Gtlpc, "gtlpc", ShortImm, Misc,
     false, false, true, false, false, false,
     "Rd := LSTPC", "get last PC (restart delayed jump)"},
    {Opcode::Getpsw, "getpsw", ShortImm, Misc,
     false, false, true, false, false, false,
     "Rd := PSW", "read processor status word"},
    {Opcode::Putpsw, "putpsw", ShortImm, Misc,
     true, true, false, false, false, false,
     "PSW := Rs1 + S2", "write processor status word"},
}};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    for (const OpInfo &info : table) {
        if (info.op == op)
            return info;
    }
    panic("opInfo: unknown opcode 0x%02x", static_cast<unsigned>(op));
}

const OpInfo *
opTable(unsigned &count)
{
    count = NumOpcodes;
    return table.data();
}

const OpInfo *
opInfoByMnemonic(std::string_view mnemonic)
{
    for (const OpInfo &info : table) {
        if (iequals(mnemonic, info.mnemonic))
            return &info;
    }
    return nullptr;
}

bool
isValidOpcode(uint8_t raw)
{
    for (const OpInfo &info : table) {
        if (static_cast<uint8_t>(info.op) == raw)
            return true;
    }
    return false;
}

} // namespace risc1::isa
