#include "isa/instruction.hh"

#include "isa/registers.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace risc1::isa {

uint32_t
encode(const Instruction &inst)
{
    const OpInfo &info = opInfo(inst.op);

    if (inst.rd >= NumVisibleRegs)
        panic("encode: rd %u out of range", inst.rd);
    if (inst.rs1 >= NumVisibleRegs)
        panic("encode: rs1 %u out of range", inst.rs1);
    if (inst.scc && !info.mayScc)
        panic("encode: scc set on %s which does not honour it",
              std::string(info.mnemonic).c_str());

    uint64_t word = 0;
    word = insertBits(word, 31, 25, static_cast<uint8_t>(inst.op));
    word = insertBits(word, 24, 24, inst.scc ? 1 : 0);
    word = insertBits(word, 23, 19, inst.rd);

    if (info.format == Format::LongImm) {
        if (!fitsSigned(inst.imm19, Imm19Bits))
            panic("encode: imm19 %d out of range", inst.imm19);
        word = insertBits(word, 18, 0,
                          static_cast<uint64_t>(inst.imm19) &
                              mask(Imm19Bits));
    } else {
        word = insertBits(word, 18, 14, inst.rs1);
        word = insertBits(word, 13, 13, inst.imm ? 1 : 0);
        if (inst.imm) {
            if (!fitsSigned(inst.simm13, Simm13Bits))
                panic("encode: simm13 %d out of range", inst.simm13);
            word = insertBits(word, 12, 0,
                              static_cast<uint64_t>(inst.simm13) &
                                  mask(Simm13Bits));
        } else {
            if (inst.rs2 >= NumVisibleRegs)
                panic("encode: rs2 %u out of range", inst.rs2);
            word = insertBits(word, 12, 0, inst.rs2);
        }
    }
    return static_cast<uint32_t>(word);
}

DecodeResult
decode(uint32_t word)
{
    DecodeResult result;
    const auto raw_op = static_cast<uint8_t>(bits(word, 31, 25));
    if (!isValidOpcode(raw_op)) {
        result.error = strprintf("illegal opcode 0x%02x in word 0x%08x",
                                 raw_op, word);
        return result;
    }

    Instruction inst;
    inst.op = static_cast<Opcode>(raw_op);
    inst.scc = bit(word, 24);
    inst.rd = static_cast<uint8_t>(bits(word, 23, 19));

    const OpInfo &info = opInfo(inst.op);
    if (inst.scc && !info.mayScc) {
        result.error = strprintf("scc bit set on %s in word 0x%08x",
                                 std::string(info.mnemonic).c_str(), word);
        return result;
    }

    if (info.format == Format::LongImm) {
        inst.imm19 = static_cast<int32_t>(sext(bits(word, 18, 0),
                                               Imm19Bits));
    } else {
        inst.rs1 = static_cast<uint8_t>(bits(word, 18, 14));
        inst.imm = bit(word, 13);
        if (inst.imm) {
            inst.simm13 = static_cast<int32_t>(sext(bits(word, 12, 0),
                                                    Simm13Bits));
        } else {
            const uint64_t s2 = bits(word, 12, 0);
            if (s2 >= NumVisibleRegs) {
                result.error = strprintf(
                    "register s2 field 0x%04x out of range in word 0x%08x",
                    static_cast<unsigned>(s2), word);
                return result;
            }
            inst.rs2 = static_cast<uint8_t>(s2);
        }
    }

    result.ok = true;
    result.inst = inst;
    return result;
}

Instruction
makeRR(Opcode op, unsigned rs1, unsigned rs2, unsigned rd, bool scc)
{
    Instruction inst;
    inst.op = op;
    inst.scc = scc;
    inst.rd = static_cast<uint8_t>(rd);
    inst.rs1 = static_cast<uint8_t>(rs1);
    inst.imm = false;
    inst.rs2 = static_cast<uint8_t>(rs2);
    return inst;
}

Instruction
makeRI(Opcode op, unsigned rs1, int32_t simm13, unsigned rd, bool scc)
{
    Instruction inst;
    inst.op = op;
    inst.scc = scc;
    inst.rd = static_cast<uint8_t>(rd);
    inst.rs1 = static_cast<uint8_t>(rs1);
    inst.imm = true;
    inst.simm13 = simm13;
    return inst;
}

Instruction
makeLoad(Opcode op, unsigned rs1, int32_t simm13, unsigned rd)
{
    return makeRI(op, rs1, simm13, rd);
}

Instruction
makeStore(Opcode op, unsigned rm, unsigned rs1, int32_t simm13)
{
    Instruction inst = makeRI(op, rs1, simm13, rm);
    return inst;
}

Instruction
makeJmp(Cond cond, unsigned rs1, int32_t simm13)
{
    return makeRI(Opcode::Jmp, rs1, simm13, static_cast<unsigned>(cond));
}

Instruction
makeJmpr(Cond cond, int32_t offset)
{
    Instruction inst;
    inst.op = Opcode::Jmpr;
    inst.rd = static_cast<uint8_t>(cond);
    inst.imm19 = offset;
    return inst;
}

Instruction
makeCall(unsigned rd, unsigned rs1, int32_t simm13)
{
    return makeRI(Opcode::Call, rs1, simm13, rd);
}

Instruction
makeCallr(unsigned rd, int32_t offset)
{
    Instruction inst;
    inst.op = Opcode::Callr;
    inst.rd = static_cast<uint8_t>(rd);
    inst.imm19 = offset;
    return inst;
}

Instruction
makeRet(unsigned rs1, int32_t simm13)
{
    return makeRI(Opcode::Ret, rs1, simm13, 0);
}

Instruction
makeLdhi(unsigned rd, int32_t y19)
{
    Instruction inst;
    inst.op = Opcode::Ldhi;
    inst.rd = static_cast<uint8_t>(rd);
    inst.imm19 = y19;
    return inst;
}

Instruction
makeNop()
{
    return makeRR(Opcode::Add, ZeroReg, ZeroReg, ZeroReg);
}

bool
isNop(const Instruction &inst)
{
    return inst == makeNop();
}

} // namespace risc1::isa
