/**
 * @file
 * Architected trap-cause codes. RISC I's only abnormal-event mechanism
 * is the CALLINT/RETINT window push, so every precise fault the machine
 * can raise is named here; the cause value is what a trap handler finds
 * in its window after vectoring (and what ExecResult reports when no
 * vector is configured). Shared with the vax80 side for uniform fault
 * reporting.
 */

#ifndef RISC1_ISA_TRAPCAUSE_HH
#define RISC1_ISA_TRAPCAUSE_HH

#include <cstdint>
#include <string_view>

namespace risc1::isa {

/** Why an instruction trapped (or why a run was stopped). */
enum class TrapCause : uint8_t
{
    None = 0,           //!< no fault
    MisalignedAccess,   //!< multi-byte access not naturally aligned
    IllegalOpcode,      //!< undecodable instruction word
    OutOfRangeAddress,  //!< access beyond the configured address limit
    WindowExhausted,    //!< return with no frame anywhere (call/ret
                        //!< imbalance or empty save stack)
    DivideByZero,       //!< vax80 DIVL with a zero divisor
    IllegalOperand,     //!< vax80 operand-specifier abuse
    Watchdog,           //!< cycle watchdog expired (livelock stop)
};

/** Number of TrapCause values (for tables and campaign bins). */
constexpr unsigned NumTrapCauses = 8;

/** Short lower-case name ("misaligned access", ...). */
std::string_view trapCauseName(TrapCause cause);

} // namespace risc1::isa

#endif // RISC1_ISA_TRAPCAUSE_HH
