/**
 * @file
 * Cycle-cost model of the RISC I machine. The paper's model: every
 * instruction executes in one cycle except memory accesses, which take
 * two (the data access steals the fetch slot of the simple two-stage
 * pipeline). Window overflow/underflow traps cost a fixed overhead plus
 * one store/load per spilled/refilled register. Absolute time comes from
 * the configurable cycle time (the paper assumed 400 ns).
 */

#ifndef RISC1_SIM_TIMING_HH
#define RISC1_SIM_TIMING_HH

#include <cstdint>

#include "isa/opcode.hh"

namespace risc1::sim {

/** Per-class cycle costs. */
struct TimingModel
{
    unsigned aluCycles = 1;
    unsigned loadCycles = 2;   //!< paper: loads/stores take 2 cycles
    unsigned storeCycles = 2;
    unsigned branchCycles = 1; //!< delayed; no taken-branch bubble
    unsigned callCycles = 1;
    unsigned retCycles = 1;
    unsigned miscCycles = 1;
    /** Trap sequence overhead, on top of the 16 register transfers. */
    unsigned windowTrapOverhead = 6;
    /** Cycle time in nanoseconds (paper's RISC I estimate: 400 ns). */
    double cycleTimeNs = 400.0;

    /** Base cost of one instruction of class `cls`. */
    unsigned
    cyclesFor(isa::OpClass cls) const
    {
        switch (cls) {
          case isa::OpClass::Alu:    return aluCycles;
          case isa::OpClass::Load:   return loadCycles;
          case isa::OpClass::Store:  return storeCycles;
          case isa::OpClass::Branch: return branchCycles;
          case isa::OpClass::Call:   return callCycles;
          case isa::OpClass::Ret:    return retCycles;
          case isa::OpClass::Misc:   return miscCycles;
        }
        return 1;
    }

    /** Full cost of a window overflow trap (16 stores + overhead). */
    unsigned
    overflowCycles() const
    {
        return windowTrapOverhead + 16 * storeCycles;
    }

    /** Full cost of a window underflow trap (16 loads + overhead). */
    unsigned
    underflowCycles() const
    {
        return windowTrapOverhead + 16 * loadCycles;
    }
};

} // namespace risc1::sim

#endif // RISC1_SIM_TIMING_HH
