#include "sim/decode.hh"

#include "support/logging.hh"

namespace risc1::sim {

ExecTag
execTagFor(isa::Opcode op)
{
    using isa::Opcode;
    switch (op) {
      case Opcode::Add: return ExecTag::Add;
      case Opcode::Addc: return ExecTag::Addc;
      case Opcode::Sub: return ExecTag::Sub;
      case Opcode::Subc: return ExecTag::Subc;
      case Opcode::Subr: return ExecTag::Subr;
      case Opcode::Subcr: return ExecTag::Subcr;
      case Opcode::And: return ExecTag::And;
      case Opcode::Or: return ExecTag::Or;
      case Opcode::Xor: return ExecTag::Xor;
      case Opcode::Sll: return ExecTag::Sll;
      case Opcode::Srl: return ExecTag::Srl;
      case Opcode::Sra: return ExecTag::Sra;
      case Opcode::Ldl: return ExecTag::Ldl;
      case Opcode::Ldsu: return ExecTag::Ldsu;
      case Opcode::Ldss: return ExecTag::Ldss;
      case Opcode::Ldbu: return ExecTag::Ldbu;
      case Opcode::Ldbs: return ExecTag::Ldbs;
      case Opcode::Stl: return ExecTag::Stl;
      case Opcode::Sts: return ExecTag::Sts;
      case Opcode::Stb: return ExecTag::Stb;
      case Opcode::Jmp: return ExecTag::Jmp;
      case Opcode::Jmpr: return ExecTag::Jmpr;
      case Opcode::Call: return ExecTag::Call;
      case Opcode::Callr: return ExecTag::Callr;
      case Opcode::Ret: return ExecTag::Ret;
      case Opcode::Callint: return ExecTag::Callint;
      case Opcode::Retint: return ExecTag::Retint;
      case Opcode::Ldhi: return ExecTag::Ldhi;
      case Opcode::Gtlpc: return ExecTag::Gtlpc;
      case Opcode::Getpsw: return ExecTag::Getpsw;
      case Opcode::Putpsw: return ExecTag::Putpsw;
    }
    panic("execTagFor: unknown opcode 0x%02x",
          static_cast<unsigned>(op));
}

DecodedOp
makeDecodedOp(const isa::Instruction &inst)
{
    DecodedOp op;
    op.inst = inst;
    op.tag = execTagFor(inst.op);
    op.dcode = static_cast<uint8_t>(op.tag);
    op.opClass = inst.info().opClass;
    op.nop = isa::isNop(inst);
    return op;
}

DecodedOp *
DecodedCache::insert(uint32_t addr, const DecodedOp &op)
{
    const uint32_t page = addr >> Memory::PageBits;
    auto it = lines_.find(page);
    if (it == lines_.end()) {
        it = lines_.emplace(page, std::make_unique<Line>(OpsPerPage))
                 .first;
        if (page < minPage_)
            minPage_ = page;
        if (page > maxPage_)
            maxPage_ = page;
    }
    DecodedOp &slot =
        (*it->second)[(addr & (Memory::PageSize - 1)) / isa::InstBytes];
    slot = op;
    return &slot;
}

void
DecodedCache::defuseAt(uint32_t addr)
{
    auto it = lines_.find(addr >> Memory::PageBits);
    if (it == lines_.end())
        return;
    DecodedOp &slot =
        (*it->second)[(addr & (Memory::PageSize - 1)) / isa::InstBytes];
    if (slot.fuse != FuseKind::None) {
        slot.fuse = FuseKind::None;
        slot.dcode = static_cast<uint8_t>(slot.tag);
    }
}

void
DecodedCache::invalidateSlots(uint32_t addr, unsigned bytes)
{
    // A write is at most 4 bytes, so it overlaps at most two slots
    // (possibly on different pages).
    const uint32_t first = addr & ~uint32_t{isa::InstBytes - 1};
    const uint32_t last = addr + bytes - 1;
    for (uint32_t a = first; a <= last; a += isa::InstBytes) {
        auto it = lines_.find(a >> Memory::PageBits);
        if (it == lines_.end())
            continue;
        (*it->second)[(a & (Memory::PageSize - 1)) / isa::InstBytes] =
            DecodedOp{};
    }
    // A fused record embeds a copy of the *next* word, so the record
    // just before the invalidated range must fall back to its plain
    // dispatch code (slots after the range hold no copies of it).
    if (first >= isa::InstBytes)
        defuseAt(first - isa::InstBytes);
}

void
DecodedCache::invalidateAll()
{
    lines_.clear();
    lastPage_ = UINT32_MAX;
    lastLine_ = nullptr;
    minPage_ = UINT32_MAX;
    maxPage_ = 0;
}

} // namespace risc1::sim
