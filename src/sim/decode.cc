#include "sim/decode.hh"

#include "support/logging.hh"

namespace risc1::sim {

ExecTag
execTagFor(isa::Opcode op)
{
    using isa::Opcode;
    switch (op) {
      case Opcode::Add: return ExecTag::Add;
      case Opcode::Addc: return ExecTag::Addc;
      case Opcode::Sub: return ExecTag::Sub;
      case Opcode::Subc: return ExecTag::Subc;
      case Opcode::Subr: return ExecTag::Subr;
      case Opcode::Subcr: return ExecTag::Subcr;
      case Opcode::And: return ExecTag::And;
      case Opcode::Or: return ExecTag::Or;
      case Opcode::Xor: return ExecTag::Xor;
      case Opcode::Sll: return ExecTag::Sll;
      case Opcode::Srl: return ExecTag::Srl;
      case Opcode::Sra: return ExecTag::Sra;
      case Opcode::Ldl: return ExecTag::Ldl;
      case Opcode::Ldsu: return ExecTag::Ldsu;
      case Opcode::Ldss: return ExecTag::Ldss;
      case Opcode::Ldbu: return ExecTag::Ldbu;
      case Opcode::Ldbs: return ExecTag::Ldbs;
      case Opcode::Stl: return ExecTag::Stl;
      case Opcode::Sts: return ExecTag::Sts;
      case Opcode::Stb: return ExecTag::Stb;
      case Opcode::Jmp: return ExecTag::Jmp;
      case Opcode::Jmpr: return ExecTag::Jmpr;
      case Opcode::Call: return ExecTag::Call;
      case Opcode::Callr: return ExecTag::Callr;
      case Opcode::Ret: return ExecTag::Ret;
      case Opcode::Callint: return ExecTag::Callint;
      case Opcode::Retint: return ExecTag::Retint;
      case Opcode::Ldhi: return ExecTag::Ldhi;
      case Opcode::Gtlpc: return ExecTag::Gtlpc;
      case Opcode::Getpsw: return ExecTag::Getpsw;
      case Opcode::Putpsw: return ExecTag::Putpsw;
    }
    panic("execTagFor: unknown opcode 0x%02x",
          static_cast<unsigned>(op));
}

DecodedOp
makeDecodedOp(const isa::Instruction &inst)
{
    DecodedOp op;
    op.inst = inst;
    op.tag = execTagFor(inst.op);
    op.dcode = static_cast<uint8_t>(op.tag);
    op.opClass = inst.info().opClass;
    op.nop = isa::isNop(inst);
    return op;
}

DecodedOp *
DecodedCache::insert(uint32_t addr, const DecodedOp &op)
{
    const uint32_t page = addr >> Memory::PageBits;
    auto it = lines_.find(page);
    if (it == lines_.end())
        it = lines_.emplace(page, std::make_unique<Line>()).first;
    Line &line = *it->second;
    DecodedOp &slot =
        line.slots[(addr & (Memory::PageSize - 1)) / isa::InstBytes];
    if (!slot.valid() && op.valid() && line.validCount++ == 0) {
        // The line (re)joins the write-filter band.
        if (page < minPage_)
            minPage_ = page;
        if (page > maxPage_)
            maxPage_ = page;
    }
    slot = op;
    return &slot;
}

void
DecodedCache::defuseAt(uint32_t addr)
{
    auto it = lines_.find(addr >> Memory::PageBits);
    if (it == lines_.end())
        return;
    DecodedOp &slot = it->second->slots[(addr & (Memory::PageSize - 1)) /
                                        isa::InstBytes];
    if (slot.fuse != FuseKind::None) {
        slot.fuse = FuseKind::None;
        slot.dcode = static_cast<uint8_t>(slot.tag);
    }
}

void
DecodedCache::rebuildBand()
{
    minPage_ = UINT32_MAX;
    maxPage_ = 0;
    for (const auto &[page, line] : lines_) {
        if (line->validCount == 0)
            continue;
        if (page < minPage_)
            minPage_ = page;
        if (page > maxPage_)
            maxPage_ = page;
    }
}

void
DecodedCache::demoteBlocksOver(uint32_t first, uint32_t last)
{
    if (blockAt_.empty() || last < blockMin_ || first > blockMax_)
        return;
    // Any block containing a word of [first, last] has its head within
    // MaxSuperblockLen - 1 slots before `first`, so a bounded window
    // scan finds every overlapping block — including the overlapping
    // sub-blocks a jump into the middle of a block creates.
    const uint32_t span = (MaxSuperblockLen - 1) * isa::InstBytes;
    uint32_t head = first > span ? first - span : 0;
    head &= ~uint32_t{isa::InstBytes - 1};
    for (; head <= last; head += isa::InstBytes) {
        auto it = blockAt_.find(head);
        if (it == blockAt_.end())
            continue;
        SuperblockRecord *sb = it->second;
        if (head + sb->count * isa::InstBytes <= first)
            continue; // ends before the written range
        // Reset the head slot to formation-pending so the block
        // re-forms lazily on its next execution; a head slot the write
        // itself cleared re-decodes organically instead.
        DecodedOp *head_op = lookupMut(head);
        if (head_op != nullptr && head_op->valid() &&
            head_op->dcode == DispSuperblock) {
            head_op->dcode = DispSbForm;
            head_op->sb = nullptr;
        }
        sb->live = false;
        notifyRetired(*sb);
        freeBlocks_.push_back(sb);
        blockAt_.erase(it);
        ++sbDemoted_;
        if (head + isa::InstBytes <= head)
            break; // address-space wrap
    }
    if (blockAt_.empty()) {
        blockMin_ = UINT32_MAX;
        blockMax_ = 0;
    }
}

void
DecodedCache::invalidateSlots(uint32_t addr, unsigned bytes)
{
    ++writeGen_;
    // A write is at most 4 bytes, so it overlaps at most two slots
    // (possibly on different pages).
    const uint32_t first = addr & ~uint32_t{isa::InstBytes - 1};
    const uint32_t last = addr + bytes - 1;
    for (uint32_t a = first; a <= last; a += isa::InstBytes) {
        auto it = lines_.find(a >> Memory::PageBits);
        if (it == lines_.end())
            continue;
        Line &line = *it->second;
        DecodedOp &slot =
            line.slots[(a & (Memory::PageSize - 1)) / isa::InstBytes];
        const bool was_valid = slot.valid();
        slot = DecodedOp{};
        if (was_valid && --line.validCount == 0)
            rebuildBand();
    }
    // A fused record embeds a copy of the *next* word, so the record
    // just before the invalidated range must fall back to its plain
    // dispatch code (slots after the range hold no copies of it).
    if (first >= isa::InstBytes)
        defuseAt(first - isa::InstBytes);
    // Superblocks embed copies of every covered word: demote the head
    // of each overlapping block (after defuseAt so a head that is both
    // a stale pair and a block ends up formation-pending, not plain).
    demoteBlocksOver(first, last);
}

SuperblockRecord *
DecodedCache::newBlock()
{
    if (!freeBlocks_.empty()) {
        SuperblockRecord *sb = freeBlocks_.back();
        freeBlocks_.pop_back();
        *sb = SuperblockRecord{};
        return sb;
    }
    blocks_.push_back(std::make_unique<SuperblockRecord>());
    return blocks_.back().get();
}

void
DecodedCache::registerBlock(SuperblockRecord *sb)
{
    blockAt_[sb->headPc] = sb;
    if (sb->headPc < blockMin_)
        blockMin_ = sb->headPc;
    const uint32_t end = sb->headPc + sb->count * isa::InstBytes - 1;
    if (end > blockMax_)
        blockMax_ = end;
    ++sbFormed_;
}

void
DecodedCache::invalidateAll()
{
    lines_.clear();
    lastPage_ = UINT32_MAX;
    lastLine_ = nullptr;
    minPage_ = UINT32_MAX;
    maxPage_ = 0;
    blocks_.clear();
    blockAt_.clear();
    freeBlocks_.clear();
    blockMin_ = UINT32_MAX;
    blockMax_ = 0;
    sbFormed_ = 0;
    sbDemoted_ = 0;
}

} // namespace risc1::sim
