/**
 * @file
 * Deterministic single-bit fault injection (the classic soft-error /
 * AVF methodology): flip one bit in a register-file cell, a memory
 * word, or one fetched instruction word at a chosen dynamic
 * instruction index, then let the run classify itself against the
 * workload oracle. All randomness comes from the caller's support/rng
 * so a campaign is bit-for-bit reproducible from its seed.
 */

#ifndef RISC1_SIM_FAULTINJECT_HH
#define RISC1_SIM_FAULTINJECT_HH

#include <cstdint>
#include <string>

#include "sim/cpu.hh"
#include "support/rng.hh"

namespace risc1::sim {

/** Which state element the bit flip lands in. */
enum class InjectTarget : uint8_t
{
    Register, //!< one physical register-file cell
    Memory,   //!< one word of a touched memory page
    Fetch,    //!< one fetched instruction word (transient, istream)
};

/** One planned (and, after the run, executed) bit flip. */
struct Injection
{
    InjectTarget target = InjectTarget::Register;
    uint64_t atInstruction = 0; //!< dynamic index the flip lands before
    unsigned bit = 0;           //!< 0..31, bit within the 32-bit cell

    // Filled in when the flip is applied (the concrete cell is chosen
    // against the machine's live state at the injection point).
    unsigned physReg = 0;   //!< Register target: physical index
    uint32_t memAddr = 0;   //!< Memory target: word address
    uint32_t oldValue = 0;  //!< cell value before the flip
    uint32_t newValue = 0;  //!< cell value after the flip
    bool applied = false;
};

/** Draw target kind, instruction index in [0, horizon) and bit. */
Injection drawInjection(Rng &rng, uint64_t horizon);

/**
 * Apply `inj` to the machine now, choosing the concrete cell with
 * `rng`. Register flips pick a uniform physical register; memory
 * flips a uniform word of a uniform touched page; fetch flips arm
 * Cpu::corruptNextFetch. Records the chosen cell back into `inj`.
 */
void applyInjection(Cpu &cpu, Rng &rng, Injection &inj);

/**
 * Run a freshly loaded `cpu` with `inj`: advance to inj.atInstruction,
 * apply the flip, continue to completion. If the machine halts or
 * faults before the injection point the (uninjected) result is
 * returned and `inj.applied` stays false.
 */
ExecResult runWithInjection(Cpu &cpu, Rng &rng, Injection &inj);

/** One-line human-readable description of an injection. */
std::string describeInjection(const Injection &inj);

} // namespace risc1::sim

#endif // RISC1_SIM_FAULTINJECT_HH
