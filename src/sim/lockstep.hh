/**
 * @file
 * Lockstep divergence sentinel: runs a reference-interpreter Cpu and a
 * fast-engine Cpu over the same program in synchronized strides and
 * compares the full architectural state (registers, flags, PC/nPC,
 * CWP, instruction/cycle counts, and a rolling digest of every memory
 * write) at each stride boundary. Sound because every engine honours
 * runUntil() exactly: fused pairs and superblocks refuse to start past
 * the pause bound, so both machines pause having retired the same
 * number of instructions.
 *
 * On a mismatch the harness rewinds both machines to the last matching
 * checkpoint, replays at stride 1, and pins the *first* divergent
 * instruction, emitting a DivergenceReport with a disassembly window,
 * a field-by-field state diff, and a serialized reproducer snapshot
 * (sim/snapshot.hh) of the last agreed state.
 *
 * randomProgram() generates seeded random-but-well-formed programs
 * (no transfers in delay slots, aligned memory accesses, bounded
 * branch targets) so the sentinel can fuzz the engine ladder beyond
 * the fixed workload suite. See docs/ROBUSTNESS.md.
 */

#ifndef RISC1_SIM_LOCKSTEP_HH
#define RISC1_SIM_LOCKSTEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "sim/cpu.hh"

namespace risc1::sim {

/** Tuning and test hooks for runLockstep(). */
struct LockstepOptions
{
    /** Instructions per stride between state comparisons. */
    uint64_t stride = 1024;

    /** Stop (agreeing) after this many instructions if still running. */
    uint64_t maxInstructions = 2'000'000;

    /** Instructions either side of the divergence in the report. */
    unsigned disasmRadius = 4;

    // Test hook modelling a deterministic engine bug: once the subject
    // Cpu has retired exactly `perturbAt` instructions, XOR
    // `perturbMask` into its visible register `perturbReg`. Re-applied
    // after a rewind, exactly like the reproducible defect it stands
    // in for. A zero mask disables the hook.
    uint64_t perturbAt = 0;
    unsigned perturbReg = 0;
    uint32_t perturbMask = 0;
};

/** Where and how the subject first disagreed with the reference. */
struct DivergenceReport
{
    /** Index (0-based retired-instruction count) of the divergent step. */
    uint64_t instructionIndex = 0;

    /** PC of the first divergent instruction (reference machine). */
    uint32_t pc = 0;

    /** Field-by-field state diff after the divergent step. */
    std::string fieldDiff;

    /** Disassembly window around the divergent PC. */
    std::string disasm;

    /** Serialized snapshot of the last agreed state (sim/snapshot.hh). */
    std::vector<uint8_t> reproducer;

    /** Retired-instruction count the reproducer snapshot resumes at. */
    uint64_t reproducerInstructions = 0;

    /** Human-readable rendering of the whole report. */
    std::string str() const;
};

/** Outcome of a lockstep run. */
struct LockstepResult
{
    bool diverged = false;

    /** Instructions both machines retired (agreed count). */
    uint64_t instructions = 0;

    /** How the agreed run ended (Paused = hit maxInstructions). */
    StopReason reason = StopReason::Halted;

    /** Valid when diverged. */
    DivergenceReport report;
};

/**
 * Run `program` on a reference Cpu built from `ref_opts` and a subject
 * Cpu built from `subject_opts` in lockstep. The two option sets must
 * be architecturally identical (configHash equal — they may differ
 * only in engine selection); mismatched configurations are a fatal
 * error, since their state trajectories are incomparable by design.
 */
LockstepResult runLockstep(const assembler::Program &program,
                           const CpuOptions &ref_opts,
                           const CpuOptions &subject_opts,
                           const LockstepOptions &opts = {});

/**
 * Seeded random program generator for lockstep fuzzing. Programs are
 * well-formed by construction: aligned loads/stores into a private
 * data region, conditional/unconditional branches with in-bounds
 * targets, leaf calls within the window depth, no transfers in delay
 * slots, and a halt (jump to 0) epilogue. Programs may loop forever —
 * run them under LockstepOptions::maxInstructions.
 */
assembler::Program randomProgram(uint64_t seed);

} // namespace risc1::sim

#endif // RISC1_SIM_LOCKSTEP_HH
