/**
 * @file
 * The RISC I processor model: functional execution of all 31
 * instructions with delayed transfers, overlapped register windows with
 * overflow/underflow traps, condition codes, and the paper's cycle-cost
 * model.
 */

#ifndef RISC1_SIM_CPU_HH
#define RISC1_SIM_CPU_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "isa/condition.hh"
#include "jit/arena.hh"
#include "jit/sbcompile.hh"
#include "isa/instruction.hh"
#include "isa/trapcause.hh"
#include "sim/decode.hh"
#include "sim/fault.hh"
#include "sim/image.hh"
#include "sim/memory.hh"
#include "sim/regfile.hh"
#include "sim/stats.hh"
#include "sim/timing.hh"

namespace risc1::sim {

/** Why a run() stopped. */
enum class StopReason : uint8_t
{
    Halted,    //!< transfer to address 0 (the `halt` convention)
    InstLimit, //!< maxInstructions reached
    Fault,     //!< guest error (illegal opcode, misalignment, ...)
    Watchdog,  //!< cycle watchdog expired (livelocked guest)
    Paused,    //!< runUntil() reached its instruction bound
};

/** Outcome of a run(). */
struct ExecResult
{
    StopReason reason = StopReason::Halted;
    std::string message; //!< fault description when reason == Fault
    uint64_t instructions = 0;
    uint64_t cycles = 0;

    // Fault diagnostics, valid when reason is Fault (or Watchdog,
    // which reports cause Watchdog). An architecturally delivered trap
    // never surfaces here: the guest handler consumes it instead.
    isa::TrapCause faultCause = isa::TrapCause::None;
    uint32_t faultAddr = 0;  //!< faulting memory address, if relevant
    uint32_t faultPc = 0;    //!< PC of the faulting instruction
    std::string crashReport; //!< multi-line post-mortem (see README)

    bool halted() const { return reason == StopReason::Halted; }
};

/** Configuration of one Cpu instance. */
struct CpuOptions
{
    isa::WindowSpec windows{};    //!< 8 windows by default
    TimingModel timing{};
    uint64_t maxInstructions = 200'000'000;
    uint32_t stackTop = 0x00e00000;  //!< initial guest sp (r1)
    uint32_t spillBase = 0x00f00000; //!< window save stack top
    bool haltOnZeroTarget = true;    //!< taken transfer to 0 halts
    /**
     * Interrupt handler entry point; 0 disables external interrupts.
     * A raised interrupt performs the CALLINT sequence in hardware:
     * push a window, save the resume PC in the new window's r25,
     * disable interrupts and vector here. The handler exits with
     * `retint (r25)0`.
     */
    uint32_t interruptVector = 0;
    /**
     * Trap handler entry point; 0 degrades every guest fault to a
     * StopReason::Fault stop with a crash report. When set, a precise
     * fault is delivered like CALLINT: push a window, then in the new
     * window r25 := faulting PC (re-execute on `retint (r25)0`),
     * r24 := next PC (skip via `retint (r24)0`), r16 := TrapCause,
     * r17 := faulting address; interrupts are disabled and execution
     * vectors here. A fault whose delay slot held a taken transfer
     * loses the pending target on resume — the same restriction that
     * makes the hardware defer interrupts during transfers.
     */
    uint32_t trapVector = 0;
    /**
     * Cycle budget; a run() that exceeds it stops with
     * StopReason::Watchdog (never delivered to the guest — a livelock
     * guard must not depend on the livelocked program). 0 disables.
     */
    uint64_t watchdogCycles = 0;
    /** Guest address-space limit (Memory::setLimit); 0 = unlimited. */
    uint32_t memLimit = 0;
    /**
     * Decode each instruction word once into a DecodedCache and
     * dispatch on the dense tag thereafter (see docs/PERFORMANCE.md).
     * Self-modifying stores invalidate the affected page, so results
     * (architectural state AND statistics) are identical either way;
     * `false` forces the historical decode-per-step loop, kept for
     * differential testing and the bench_sim_throughput off-series.
     */
    bool predecode = true;
    /**
     * Run the threaded-code engine over the predecoded records: each
     * record chases a direct pointer to its successor slot and
     * dispatches through a computed-goto table, so straight-line
     * execution touches neither the per-step switch nor the cache
     * hash. Requires predecode; tracing falls back to the per-step
     * loop. Results (architectural state AND statistics) are identical
     * either way — pinned by tests/test_threaded.cc — with one
     * documented exception: the cycle watchdog is only consulted
     * between dispatches, so a fused pair may retire one instruction
     * past the budget before the Watchdog stop is reported.
     */
    bool threaded = true;
    /**
     * Let the threaded engine fuse common pairs (ALU + delayed branch,
     * LDHI + immediate op, load + use) into single superinstruction
     * records. Self-modifying stores into either word split the pair.
     * Only consulted when the threaded engine runs.
     */
    bool fuse = true;
    /**
     * Let the threaded engine compile whole basic blocks into
     * superblock records: straight-line runs of predecoded
     * instructions execute as one dispatch with pre-resolved operands
     * and a single bookkeeping epilogue. A store into any covered word
     * demotes the block (it re-forms lazily), a window change re-bakes
     * the physical register indices, and a fault inside a block
     * reconstructs the exact partial state — so results
     * (architectural state AND statistics) are identical either way,
     * pinned by tests/test_superblock.cc. Like pair fusion, the cycle
     * watchdog is only consulted between dispatches, so a block may
     * retire up to MaxSuperblockLen - 1 instructions past the budget
     * before the Watchdog stop is reported. Only consulted when the
     * threaded engine runs.
     */
    bool superblock = true;
    /**
     * Compile cached superblocks to host native code (src/jit): each
     * block's SbStep array is emitted as per-ExecTag machine-code
     * templates with the baked physical register offsets, masks and
     * folded immediates burned in, executed from a W^X arena. The
     * native block returns to the dispatcher at instruction-precise
     * boundaries and the shared epilogue / fault-reconstruction /
     * demotion machinery is reused verbatim, so results (architectural
     * state AND statistics) are identical to the interpreted
     * superblock engine — pinned by tests/test_jit.cc. Requires the
     * superblock engine; on hosts without templates
     * (jit::hostSupported() == false) the option is inert and blocks
     * run interpreted. Drivers that expose `--engine jit` reject
     * unsupported hosts loudly instead (docs/PERFORMANCE.md §4).
     */
    bool jit = false;
    /**
     * Native block-to-block chaining for the template JIT: when a
     * block's taken/fallthrough successor already has a compiled
     * variant for the current window, the exit stub is patched (lazily,
     * on the first C++-observed traversal) into a direct jump to that
     * variant, and per-exit statistics are deferred — accumulated in
     * scratch cache lines across the chained run and committed once at
     * the true exit — so SimStats, cycle accounting and runUntil
     * pausing stay byte-identical to the unchained engines, pinned by
     * tests/test_jitchain.cc. Inert unless `jit` is on; benches and
     * the lockstep sentinel A/B this via `--jit-no-chain`
     * (docs/PERFORMANCE.md §4).
     */
    bool jitChain = true;
    bool trace = false;              //!< per-instruction trace
    std::ostream *traceOut = nullptr; //!< defaults to std::cerr
};

/**
 * A complete machine checkpoint. Snapshots are only meaningful on the
 * Cpu (with identical CpuOptions) that produced them.
 */
struct Snapshot
{
    std::vector<uint32_t> regs;
    std::vector<Memory::PageDump> pages;
    MemStats memStats;
    SimStats stats;
    isa::Flags flags;
    uint32_t pc = 0;
    uint32_t npc = 0;
    uint32_t lastPc = 0;
    uint32_t spillSp = 0;
    unsigned cwp = 0;
    unsigned resident = 1;
    uint64_t spilled = 0;
    bool ie = true;
    bool halted = false;
    bool interruptPending = false;
    std::vector<uint32_t> pcRing; //!< recent-PC ring (crash reports)
    unsigned pcRingPos = 0;
    uint64_t pcRingCount = 0;
};

/** The RISC I ("Gold") processor. */
class Cpu
{
  public:
    explicit Cpu(CpuOptions options = {});

    // memory_ holds a pointer to dcache_ (the write observer), so the
    // object must stay put. Guaranteed copy elision still allows
    // returning a prvalue `Cpu` from a factory function.
    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /** Load a program image; resets registers, PC, windows and stats. */
    void load(const assembler::Program &program);

    /**
     * Attach a shared, immutable ProgramImage copy-on-write instead of
     * copying it in, and prime the decode cache from its predecoded
     * text; resets registers, PC, windows and stats. Architectural
     * results and statistics are identical to load()ing the program
     * the image was built from. The image must outlive this Cpu (or
     * at least the next load()/destruction) — campaign drivers keep it
     * alive for the whole batch.
     */
    void load(const ProgramImage &image);

    /** Capture the complete machine state. */
    Snapshot snapshot() const;

    /** Restore a state captured by snapshot() on this configuration. */
    void restore(const Snapshot &snap);

    /** Run until halt, fault or the instruction limit. */
    ExecResult run();

    /**
     * Like run(), but additionally stop (StopReason::Paused) once the
     * cumulative instruction count reaches `instructions`. The machine
     * can be continued with run()/runUntil(); the fault-injection
     * driver uses this to pause at the injection point.
     */
    ExecResult runUntil(uint64_t instructions);

    /** Execute exactly one instruction (throws SimFault on guest error). */
    void step();

    Memory &memory() { return memory_; }
    const Memory &memory() const { return memory_; }

    const SimStats &stats() const { return stats_; }
    const isa::Flags &flags() const { return flags_; }

    /**
     * Bytes of native code the template JIT holds in its arena
     * (0 when CpuOptions::jit is off or the host is unsupported).
     * Tests use this to assert the engine actually engaged.
     */
    size_t jitCodeBytes() const { return jitArena_.usedBytes(); }

    /**
     * Live native block-to-block chain patches (0 when chaining is
     * off, unsupported, or every patch has been unlinked). Tests use
     * this to assert chaining engaged — and that invalidation and
     * demotion unlinked every patched site.
     */
    size_t jitChainPatches() const { return jitArena_.chainCount(); }

    uint32_t pc() const { return pc_; }
    uint32_t npc() const { return npc_; }
    unsigned cwp() const { return cwp_; }
    unsigned residentWindows() const { return resident_; }
    bool interruptsEnabled() const { return ie_; }
    bool halted() const { return halted_; }

    /** Read a register of the current window (test/bench access). */
    uint32_t reg(unsigned reg) const { return regs_.read(cwp_, reg); }
    /** Write a register of the current window (test/bench access). */
    void setReg(unsigned reg, uint32_t v) { regs_.write(cwp_, reg, v); }

    /** Direct flag access for tests. */
    void setFlags(const isa::Flags &flags) { flags_ = flags; }

    /** Force the PC (tests). */
    void
    setPc(uint32_t pc)
    {
        pc_ = pc;
        npc_ = pc + isa::InstBytes;
    }

    /**
     * Assert the external interrupt line. The interrupt is taken
     * before the next instruction once interrupts are enabled and no
     * delayed transfer is in flight (so the interrupted instruction
     * can simply be re-executed on return).
     */
    void raiseInterrupt() { interruptPending_ = true; }

    bool interruptPending() const { return interruptPending_; }

    /**
     * XOR the next fetched instruction word with `mask` (one fetch
     * only, memory unchanged): a transient istream soft error, used by
     * the fault-injection engine.
     */
    void corruptNextFetch(uint32_t mask) { fetchXor_ = mask; }

    /** Physical register bank (fault injection / test access). */
    RegisterFile &regfile() { return regs_; }
    const RegisterFile &regfile() const { return regs_; }

    /**
     * The crash report run() would produce right now for `fault`:
     * cause, faulting address, disassembly, window state and the
     * recent-PC ring. Exposed for debugger-style tooling.
     */
    std::string crashReport(const SimFault &fault) const;

    const CpuOptions &options() const { return options_; }

  private:
    /** ALU result plus flag outputs. */
    struct AluOut
    {
        uint32_t value;
        bool c;
        bool v;
    };

    uint32_t s2Value(const isa::Instruction &inst) const;
    AluOut execAlu(const isa::Instruction &inst, uint32_t a, uint32_t b);
    void applyScc(const isa::Instruction &inst, const AluOut &out);

    /**
     * Execute one predecoded instruction (everything between decode
     * and the shared bookkeeping), dispatching on the dense ExecTag.
     */
    void executeDecoded(const DecodedOp &dop, uint32_t inst_pc);

    /** Schedule a delayed transfer to `target`. */
    void scheduleJump(uint32_t target);

    /** Push a window for a call; handles overflow spilling. */
    void windowPush();
    /** Pop a window for a return; handles underflow refilling. */
    void windowPop();

    /** Vector a caught fault through options_.trapVector (CALLINT). */
    void deliverTrap(const SimFault &fault);

    /** Shared body of run()/runUntil(). */
    ExecResult runLoop(uint64_t pause_at);

    // --- threaded-code engine (docs/PERFORMANCE.md) ---

    /**
     * Inner loop of the threaded engine: execute instructions back to
     * back, chasing DecodedOp successor pointers, until the machine
     * halts, `stop_at` instructions have retired or the watchdog
     * budget is exceeded. Guest faults throw SimFault out to runLoop,
     * exactly like step()'s.
     */
    void threadedBatch(uint64_t stop_at);

    /** Slow path of the threaded gate: fetch, decode, insert at pc_. */
    DecodedOp *decodeInsert();

    /** Fuse `a` (at `a_pc`) with its bound fall-through, if eligible. */
    static void tryFuse(DecodedOp &a, uint32_t a_pc);

    // --- superblock engine ---

    /**
     * Compile the basic block headed by `head` (a record carrying
     * DispSbForm): walk the straight-line predecoded records from
     * `head_pc` to the first block terminator, decoding unseen words
     * side-effect-free as needed, and install a SuperblockRecord
     * behind DispSuperblock. Too-short blocks restore the head's pair
     * or plain dispatch code instead. Leaves head.dcode != DispSbForm.
     */
    void formSuperblock(DecodedOp &head, uint32_t head_pc);

    /** (Re)bake a block's physical register indices for cwp_. */
    void bakeSbPhys(SuperblockRecord &sb);

    /**
     * Commit stats and the PC ring for the first `n` retired steps of
     * a partially executed block (guest fault or self-modifying store
     * mid-block) — the rare exact-reconstruction path.
     */
    void commitSbPrefix(const SuperblockRecord &sb, uint32_t head,
                        uint32_t n);

    // --- template JIT engine (CpuOptions::jit, src/jit) ---------------

    /**
     * Native entry for `sb` under the current window, compiling (and
     * installing into jitArena_) on first use; nullptr when the block
     * declined compilation or the arena is exhausted.
     */
    const void *jitEntryFor(SuperblockRecord &sb);

    /**
     * Memory helpers the emitted templates call. They must never
     * throw across the native frame: a guest fault is stashed in
     * jitFault_ and reported as a negative return for the native code
     * to bail on (see jit/sbcompile.hh).
     */
    static int64_t jitLoad32(void *cpu, uint32_t ea) noexcept;
    static int64_t jitLoad16u(void *cpu, uint32_t ea) noexcept;
    static int64_t jitLoad16s(void *cpu, uint32_t ea) noexcept;
    static int64_t jitLoad8u(void *cpu, uint32_t ea) noexcept;
    static int64_t jitLoad8s(void *cpu, uint32_t ea) noexcept;
    static int64_t jitStore32(void *cpu, uint32_t ea,
                              uint32_t v) noexcept;
    static int64_t jitStore16(void *cpu, uint32_t ea,
                              uint32_t v) noexcept;
    static int64_t jitStore8(void *cpu, uint32_t ea,
                             uint32_t v) noexcept;
    /**
     * Window helpers for JIT blocks with a CALL/CALLR/RET terminator:
     * one call performs the full windowPush()/windowPop() — including
     * the spill/refill memory traffic and every window statistic — so
     * the native fast path and the slow path are the same code.
     * WindowExhausted (and spill/refill memory faults) are stashed
     * like memory-helper faults and reported as a negative return.
     */
    static int64_t jitWindowPush(void *cpu) noexcept;
    static int64_t jitWindowPop(void *cpu) noexcept;

    /** Shared reset tail of the load() overloads. */
    void resetRun(uint32_t entry);

    /** Point wmap_ at the current window's visible-to-physical row. */
    void
    rebindWindow()
    {
        wmap_ = vmap_.data() + size_t{cwp_} * isa::NumVisibleRegs;
    }

    /** Visible-register read via the bound window row. */
    uint32_t
    rdv(unsigned reg) const
    {
        return reg == isa::ZeroReg ? 0 : regs_.readPhys(wmap_[reg]);
    }

    /** Visible-register write via the bound window row. */
    void
    wrv(unsigned reg, uint32_t value)
    {
        if (reg != isa::ZeroReg)
            regs_.writePhys(wmap_[reg], value);
    }

    /** Second ALU operand via the bound window row. */
    uint32_t
    s2v(const isa::Instruction &inst) const
    {
        return inst.imm ? static_cast<uint32_t>(inst.simm13)
                        : rdv(inst.rs2);
    }

    void traceInst(uint32_t inst_pc, const isa::Instruction &inst);

    CpuOptions options_;
    Memory memory_;
    // Registered as memory_'s write observer; memory_ holds a pointer
    // to it, so Cpu cannot be trivially copied or moved.
    DecodedCache dcache_;
    RegisterFile regs_;
    SimStats stats_;

    // Precomputed visible-to-physical register map: one 32-entry row
    // per window, so the hot path replaces WindowSpec::physIndex's
    // modulo chain with one indexed load. wmap_ tracks cwp_.
    std::vector<uint16_t> vmap_;
    const uint16_t *wmap_ = nullptr;

    uint32_t pc_ = 0;
    uint32_t npc_ = 0;
    uint32_t lastPc_ = 0;
    unsigned cwp_ = 0;
    unsigned resident_ = 1;  //!< windows currently holding frames
    uint64_t spilled_ = 0;   //!< frames on the save stack
    uint32_t spillSp_ = 0;
    isa::Flags flags_;
    bool ie_ = true;
    bool halted_ = false;

    // Delayed-transfer plumbing (see step()).
    bool jumpPending_ = false;
    uint32_t jumpTarget_ = 0;

    bool interruptPending_ = false;

    uint32_t fetchXor_ = 0; //!< one-shot istream corruption mask

    /** Ring of the last PcRingSize executed instruction PCs. */
    static constexpr unsigned PcRingSize = 16;
    std::array<uint32_t, PcRingSize> pcRing_{};
    unsigned pcRingPos_ = 0;
    uint64_t pcRingCount_ = 0;

    // --- template JIT state (src/jit) --------------------------------
    /** options_.jit, gated on the superblock engine + host support. */
    bool jitOn_ = false;
    /** options_.jitChain, gated on jitOn_. */
    bool jitChainOn_ = false;
    jit::CodeArena jitArena_;
    /** Fault stashed by a jit* helper for the wrapper to rethrow. */
    SimFault jitFault_;

    // --- native chaining state (CpuOptions::jitChain) -----------------
    /** Deferred-commit context shared by every chained dispatch. */
    jit::SbJitExit jitCtx_;
    /** Records with uncommitted pass counts (chain-stub bump array). */
    std::vector<SuperblockRecord *> chainDirty_;
    /** Episode ring mirrored into jitCtx_ for PC-ring replay. */
    std::array<jit::SbChainEpisode, PcRingSize> chainEpis_{};

    /**
     * Try to patch the exit slot `src` last left through into a direct
     * native transfer to `dst`'s compiled variant for the current
     * window. `taken` picks the slot; no-op (false) when either side
     * lacks chain metadata or the slot is already patched.
     */
    bool tryChainPatch(SuperblockRecord &src, bool taken,
                       SuperblockRecord &dst);

    /**
     * Replay `iters` whole passes of `sb` into the PC ring — the one
     * copy of the superblock engines' ring arithmetic, shared by the
     * per-dispatch epilogue and the chained-run episode replay.
     */
    void ringReplaySb(const SuperblockRecord &sb, uint64_t iters);

    /** Take a pending interrupt if the machine state allows it. */
    bool maybeTakeInterrupt();
};

} // namespace risc1::sim

#endif // RISC1_SIM_CPU_HH
