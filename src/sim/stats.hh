/**
 * @file
 * Execution statistics gathered by the RISC I simulator; the raw
 * material of experiments E3, E5, E6, E7, E8 and E9.
 */

#ifndef RISC1_SIM_STATS_HH
#define RISC1_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "isa/opcode.hh"
#include "sim/memory.hh"

namespace risc1::sim {

/** Number of OpClass values. */
constexpr unsigned NumOpClasses = 7;

/** Dynamic statistics of one simulation run. */
struct SimStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;

    /** Dynamic count per opcode. */
    std::map<isa::Opcode, uint64_t> perOpcode;
    /** Dynamic count per functional class. */
    std::array<uint64_t, NumOpClasses> perClass{};

    uint64_t branches = 0;
    uint64_t branchesTaken = 0;
    uint64_t nopsExecuted = 0; //!< canonical NOPs (mostly unfilled slots)

    uint64_t calls = 0;
    uint64_t returns = 0;
    uint64_t interruptsTaken = 0;
    uint64_t trapsTaken = 0; //!< faults delivered through the trap vector
    uint64_t windowOverflows = 0;
    uint64_t windowUnderflows = 0;
    uint64_t spillWords = 0;  //!< registers written to the save stack
    uint64_t refillWords = 0; //!< registers read back

    uint64_t callDepth = 0;    //!< current nesting depth
    uint64_t maxCallDepth = 0;

    /** Memory traffic (mirrors Memory::stats at end of run). */
    MemStats memory;

    // Superblock-engine diagnostics (fusion quality, not architecture:
    // every other field above is byte-identical across engines, these
    // four describe how the work was dispatched). blocksFormed/Demoted
    // mirror the DecodedCache counters at end of run.
    uint64_t sbDispatches = 0;   //!< whole-block dispatches
    uint64_t sbInstructions = 0; //!< instructions retired block-wise
    uint64_t sbBlocksFormed = 0;
    uint64_t sbBlocksDemoted = 0;
    uint64_t sbLoopIters = 0; //!< extra in-place self-loop iterations
    uint64_t sbChained = 0;   //!< block->block dispatches sans gate

    /** Mean dynamic superblock length (0 when none dispatched). */
    double
    sbMeanBlockLen() const
    {
        return sbDispatches ? static_cast<double>(sbInstructions) /
                                  static_cast<double>(sbDispatches)
                            : 0.0;
    }

    void
    countClass(isa::OpClass cls)
    {
        ++perClass[static_cast<unsigned>(cls)];
    }

    uint64_t
    classCount(isa::OpClass cls) const
    {
        return perClass[static_cast<unsigned>(cls)];
    }

    /** Fraction of calls that overflowed (experiment E6). */
    double
    overflowRate() const
    {
        return calls ? static_cast<double>(windowOverflows) /
                           static_cast<double>(calls)
                     : 0.0;
    }

    /** Average cycles per instruction. */
    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    /** Execution time in microseconds at the given cycle time. */
    double
    timeUs(double cycle_ns) const
    {
        return static_cast<double>(cycles) * cycle_ns / 1000.0;
    }
};

} // namespace risc1::sim

#endif // RISC1_SIM_STATS_HH
