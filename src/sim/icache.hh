/**
 * @file
 * Instruction-cache model (extension study). RISC I fetched every
 * instruction from memory — affordable at 1981 memory speeds. The
 * paper's successor direction (RISC II and the Berkeley cache studies)
 * asked how small an on-chip instruction cache pays off; this model
 * reproduces that study: a direct-mapped I-cache replayed against the
 * committed instruction stream, reporting miss rates and added stall
 * cycles per configuration.
 */

#ifndef RISC1_SIM_ICACHE_HH
#define RISC1_SIM_ICACHE_HH

#include <cstdint>
#include <vector>

namespace risc1::sim {

/** Direct-mapped instruction-cache geometry. */
struct ICacheConfig
{
    uint32_t sizeBytes = 512;
    uint32_t lineBytes = 16;
    unsigned missPenaltyCycles = 4; //!< refill stall per miss
};

/** Accumulated cache behaviour. */
struct ICacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Direct-mapped I-cache replay model. */
class ICacheModel
{
  public:
    explicit ICacheModel(ICacheConfig config);

    /** Present one fetch; returns stall cycles (0 on hit). */
    unsigned access(uint32_t addr);

    const ICacheStats &stats() const { return stats_; }
    const ICacheConfig &config() const { return config_; }

    /** Invalidate everything. */
    void flush();

  private:
    ICacheConfig config_;
    ICacheStats stats_;
    std::vector<uint64_t> tags_; //!< tag+1 per set; 0 = invalid
    uint32_t numSets_;
};

} // namespace risc1::sim

#endif // RISC1_SIM_ICACHE_HH
