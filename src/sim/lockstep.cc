/**
 * @file
 * Lockstep divergence sentinel implementation. See lockstep.hh for the
 * contract and docs/ROBUSTNESS.md for usage.
 */

#include "sim/lockstep.hh"

#include <algorithm>
#include <sstream>

#include "isa/disasm.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"
#include "sim/snapshot.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace risc1::sim {

namespace {

/**
 * Rolling digest over the guest's memory-write stream. Installed in
 * the Memory's auxiliary observer slot (the primary belongs to the
 * decode cache) and fed (addr, width, new bytes) per write — pokes
 * included, restorePages excluded, matching the checkpoint contract:
 * a restore resets the digest to the checkpointed value instead.
 */
class WriteDigest : public Memory::WriteObserver
{
  public:
    explicit WriteDigest(const Memory *mem) : mem_(mem) {}

    void
    onMemoryWrite(uint32_t addr, unsigned bytes) override
    {
        uint64_t h = value_;
        h = mix(h, addr);
        h = mix(h, bytes);
        for (unsigned i = 0; i < bytes; ++i)
            h = mix(h, mem_->peek8(addr + i));
        value_ = h;
    }

    uint64_t value() const { return value_; }
    void set(uint64_t v) { value_ = v; }

  private:
    static uint64_t
    mix(uint64_t h, uint64_t v)
    {
        // FNV-1a over the value's 8 bytes.
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
        return h;
    }

    const Memory *mem_;
    uint64_t value_ = 0xcbf29ce484222325ull;
};

/** Architectural state captured at a stride boundary for comparison. */
struct MachineState
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint32_t pc = 0;
    uint32_t npc = 0;
    unsigned cwp = 0;
    isa::Flags flags;
    bool halted = false;
    uint64_t writeDigest = 0;
    std::vector<uint32_t> regs;

    bool operator==(const MachineState &) const = default;
};

MachineState
capture(const Cpu &cpu, const WriteDigest &digest)
{
    MachineState s;
    s.instructions = cpu.stats().instructions;
    s.cycles = cpu.stats().cycles;
    s.pc = cpu.pc();
    s.npc = cpu.npc();
    s.cwp = cpu.cwp();
    s.flags = cpu.flags();
    s.halted = cpu.halted();
    s.writeDigest = digest.value();
    s.regs = cpu.regfile().dump();
    return s;
}

std::string
flagsStr(const isa::Flags &f)
{
    return strprintf("z=%d n=%d v=%d c=%d", f.z ? 1 : 0, f.n ? 1 : 0,
                     f.v ? 1 : 0, f.c ? 1 : 0);
}

/** Field-by-field diff, one line per differing field. */
std::string
diffStates(const MachineState &ref, const MachineState &subj)
{
    std::ostringstream out;
    auto line = [&](const char *name, const std::string &a,
                    const std::string &b) {
        out << strprintf("  %-12s ref=%s subject=%s\n", name, a.c_str(),
                         b.c_str());
    };
    if (ref.instructions != subj.instructions)
        line("instructions", strprintf("%llu", (unsigned long long)
                                       ref.instructions),
             strprintf("%llu", (unsigned long long)subj.instructions));
    if (ref.cycles != subj.cycles)
        line("cycles", strprintf("%llu", (unsigned long long)ref.cycles),
             strprintf("%llu", (unsigned long long)subj.cycles));
    if (ref.pc != subj.pc)
        line("pc", strprintf("0x%08x", ref.pc),
             strprintf("0x%08x", subj.pc));
    if (ref.npc != subj.npc)
        line("npc", strprintf("0x%08x", ref.npc),
             strprintf("0x%08x", subj.npc));
    if (ref.cwp != subj.cwp)
        line("cwp", strprintf("%u", ref.cwp), strprintf("%u", subj.cwp));
    if (!(ref.flags == subj.flags))
        line("flags", flagsStr(ref.flags), flagsStr(subj.flags));
    if (ref.halted != subj.halted)
        line("halted", ref.halted ? "true" : "false",
             subj.halted ? "true" : "false");
    if (ref.writeDigest != subj.writeDigest)
        line("write-digest", strprintf("%016llx", (unsigned long long)
                                       ref.writeDigest),
             strprintf("%016llx", (unsigned long long)subj.writeDigest));
    if (ref.regs != subj.regs) {
        unsigned shown = 0;
        for (size_t i = 0; i < ref.regs.size() &&
                           i < subj.regs.size(); ++i) {
            if (ref.regs[i] == subj.regs[i])
                continue;
            out << strprintf("  phys r%-3zu   ref=0x%08x subject=0x%08x\n",
                             i, ref.regs[i], subj.regs[i]);
            if (++shown == 8) {
                out << "  ... (more register differences elided)\n";
                break;
            }
        }
        if (ref.regs.size() != subj.regs.size())
            line("regfile-size", strprintf("%zu", ref.regs.size()),
                 strprintf("%zu", subj.regs.size()));
    }
    return out.str();
}

/** Disassembly window around `pc`, the divergent line marked. */
std::string
disasmWindow(const Memory &mem, uint32_t pc, unsigned radius)
{
    std::ostringstream out;
    const uint32_t lo =
        pc >= radius * isa::InstBytes ? pc - radius * isa::InstBytes : 0;
    for (uint32_t a = lo; a <= pc + radius * isa::InstBytes;
         a += isa::InstBytes) {
        const uint32_t word = mem.peek32(a);
        out << strprintf("  %s 0x%08x: %08x  %s\n",
                         a == pc ? "=>" : "  ", a, word,
                         isa::disassembleWord(word, a).c_str());
    }
    return out.str();
}

} // namespace

std::string
DivergenceReport::str() const
{
    std::ostringstream out;
    out << strprintf("divergence at instruction %llu, pc 0x%08x\n",
                     (unsigned long long)instructionIndex, pc);
    out << "state diff after the divergent step:\n" << fieldDiff;
    out << "disassembly:\n" << disasm;
    out << strprintf("reproducer: %zu-byte snapshot at instruction %llu "
                     "(restore and step %llu instructions)\n",
                     reproducer.size(),
                     (unsigned long long)reproducerInstructions,
                     (unsigned long long)
                     (instructionIndex - reproducerInstructions));
    return out.str();
}

LockstepResult
runLockstep(const assembler::Program &program, const CpuOptions &ref_opts,
            const CpuOptions &subject_opts, const LockstepOptions &opts)
{
    if (configHash(ref_opts) != configHash(subject_opts))
        fatal("runLockstep: reference and subject CpuOptions are "
              "architecturally incompatible (configHash mismatch); "
              "they may differ only in engine selection");
    if (opts.stride == 0)
        fatal("runLockstep: stride must be nonzero");

    Cpu ref(ref_opts);
    Cpu subj(subject_opts);
    ref.load(program);
    subj.load(program);

    // The aux observer slot survives only until the next load();
    // install after load. The decode caches keep the primary slot.
    WriteDigest refDigest(&ref.memory());
    WriteDigest subjDigest(&subj.memory());
    ref.memory().setAuxWriteObserver(&refDigest);
    subj.memory().setAuxWriteObserver(&subjDigest);

    // Apply the perturbation test hook when the subject crosses
    // opts.perturbAt. Idempotent per pass: applies only while the
    // subject sits at or before the perturbation point, and every
    // application is immediately followed by an advance past it (or a
    // terminal stop).
    auto advanceSubject = [&](uint64_t target) -> ExecResult {
        if (opts.perturbMask != 0 &&
            subj.stats().instructions <= opts.perturbAt &&
            opts.perturbAt < target) {
            ExecResult r = subj.runUntil(opts.perturbAt);
            if (r.reason != StopReason::Paused)
                return r;
            subj.setReg(opts.perturbReg,
                        subj.reg(opts.perturbReg) ^ opts.perturbMask);
        }
        return subj.runUntil(target);
    };

    // Last agreed state: both machines restore from the *same*
    // snapshot on rewind (legal: equal configHash).
    Snapshot ckpt = ref.snapshot();
    uint64_t ckptDigest = refDigest.value();
    uint64_t ckptInsts = 0;

    LockstepResult res;
    MachineState a, b;
    ExecResult rr, rs;
    while (true) {
        const uint64_t cur = ref.stats().instructions;
        const uint64_t target =
            std::min(cur + opts.stride, opts.maxInstructions);
        rr = ref.runUntil(target);
        rs = advanceSubject(target);
        a = capture(ref, refDigest);
        b = capture(subj, subjDigest);
        if (a == b && rr.reason == rs.reason) {
            if (rr.reason != StopReason::Paused ||
                a.instructions >= opts.maxInstructions) {
                res.instructions = a.instructions;
                res.reason = rr.reason;
                return res; // agreed completion
            }
            ckpt = ref.snapshot();
            ckptDigest = refDigest.value();
            ckptInsts = a.instructions;
            continue;
        }
        break; // divergence inside this stride
    }

    // Rewind both machines to the last agreed checkpoint and replay
    // one instruction at a time to pin the first divergent step.
    const uint64_t mismatchBound = std::max(a.instructions,
                                            b.instructions) + 1;
    ref.restore(ckpt);
    subj.restore(ckpt);
    refDigest.set(ckptDigest);
    subjDigest.set(ckptDigest);

    while (true) {
        const uint64_t c = ref.stats().instructions;
        if (c > mismatchBound)
            panic("runLockstep: stride mismatch did not reproduce under "
                  "replay (nondeterministic engine?)");
        const uint32_t pcBefore = ref.pc();
        rr = ref.runUntil(c + 1);
        rs = advanceSubject(c + 1);
        a = capture(ref, refDigest);
        b = capture(subj, subjDigest);
        if (a == b && rr.reason == rs.reason) {
            if (rr.reason != StopReason::Paused)
                panic("runLockstep: machines agreed on a terminal state "
                      "under replay after a stride mismatch");
            continue;
        }

        res.diverged = true;
        res.instructions = c;
        DivergenceReport &rep = res.report;
        rep.instructionIndex = c;
        rep.pc = pcBefore;
        rep.fieldDiff = diffStates(a, b);
        if (rr.reason != rs.reason)
            rep.fieldDiff += strprintf("  %-12s ref=%u subject=%u\n",
                                       "stop-reason",
                                       (unsigned)rr.reason,
                                       (unsigned)rs.reason);
        rep.disasm = disasmWindow(ref.memory(), pcBefore,
                                  opts.disasmRadius);
        rep.reproducer = serializeSnapshot(ckpt, ref_opts);
        rep.reproducerInstructions = ckptInsts;
        return res;
    }
}

// ---------------------------------------------------------------------
// Seeded random program generator.
// ---------------------------------------------------------------------

namespace {

using isa::Cond;
using isa::Instruction;
using isa::Opcode;

constexpr uint32_t FuzzEntry = 0x100;
constexpr uint32_t FuzzDataBase = 0x800;
constexpr unsigned FuzzDataWords = 64;

/** True for opcodes whose successor executes in a delay slot. */
bool
isTransfer(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Jmp:
      case Opcode::Jmpr:
      case Opcode::Call:
      case Opcode::Callr:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

} // namespace

assembler::Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);

    // Register pool: caller-window locals. r8/r9 (globals) are left
    // for the perturbation hook so fuzz workloads never overwrite a
    // perturbed register by accident.
    auto reg = [&] { return 16u + (unsigned)rng.below(8); };

    const Opcode aluOps[] = {Opcode::Add,  Opcode::Addc, Opcode::Sub,
                             Opcode::Subc, Opcode::Subr, Opcode::Subcr,
                             Opcode::And,  Opcode::Or,   Opcode::Xor,
                             Opcode::Sll,  Opcode::Srl,  Opcode::Sra};
    auto alu = [&] { return aluOps[rng.below(std::size(aluOps))]; };

    // Main body, generated as instructions first so branch targets can
    // be resolved to relative offsets. The epilogue (halt) sits at
    // index `body`, the leaf function right after it.
    const unsigned body = 48 + (unsigned)rng.below(80);
    const unsigned epilogue = body;     // jmp 0; nop
    const unsigned leaf = epilogue + 2; // 2×alu; ret; nop

    std::vector<Instruction> insts(body);
    bool prevTransfer = false;
    for (unsigned i = 0; i < body; ++i) {
        // No transfer in a delay slot, and the instruction before the
        // epilogue's halt jump must fall through to it cleanly.
        const bool allowTransfer = !prevTransfer && i + 1 < body;
        unsigned roll = (unsigned)rng.below(100);
        if (!allowTransfer && roll >= 72)
            roll = (unsigned)rng.below(72);

        Instruction inst;
        if (roll < 34) {
            inst = isa::makeRR(alu(), reg(), reg(), reg(),
                               rng.chance(1, 3));
        } else if (roll < 50) {
            inst = isa::makeRI(alu(), reg(),
                               (int32_t)rng.range(-4096, 4095), reg(),
                               rng.chance(1, 3));
        } else if (roll < 56) {
            inst = isa::makeLdhi(reg(), (int32_t)rng.range(
                                     -(1 << 18), (1 << 18) - 1));
        } else if (roll < 64) {
            const Opcode loads[] = {Opcode::Ldl, Opcode::Ldsu,
                                    Opcode::Ldss, Opcode::Ldbu,
                                    Opcode::Ldbs};
            const Opcode op = loads[rng.below(std::size(loads))];
            const unsigned align =
                op == Opcode::Ldl ? 4 : (op == Opcode::Ldbu ||
                                         op == Opcode::Ldbs ? 1 : 2);
            const int32_t disp = (int32_t)(FuzzDataBase +
                align * (uint32_t)rng.below(FuzzDataWords * 4 / align));
            inst = isa::makeLoad(op, 0, disp, reg());
        } else if (roll < 72) {
            const Opcode stores[] = {Opcode::Stl, Opcode::Sts,
                                     Opcode::Stb};
            const Opcode op = stores[rng.below(std::size(stores))];
            const unsigned align =
                op == Opcode::Stl ? 4 : (op == Opcode::Stb ? 1 : 2);
            const int32_t disp = (int32_t)(FuzzDataBase +
                align * (uint32_t)rng.below(FuzzDataWords * 4 / align));
            inst = isa::makeStore(op, reg(), 0, disp);
        } else if (roll < 92) {
            // Branch: mostly forward (guaranteed progress), sometimes
            // a short backward hop (loops; bounded by maxInstructions).
            const Cond cond = (Cond)(1 + rng.below(15));
            unsigned j;
            if (rng.chance(3, 4) || i < 2)
                j = i + 2 + (unsigned)rng.below(body - i);
            else
                j = i - (unsigned)rng.below(std::min(i, 12u));
            j = std::min(j, epilogue);
            inst = isa::makeJmpr(cond, (int32_t)(j - i) * 4);
        } else {
            // Leaf call; the callee returns to call+8 (skips the slot).
            inst = isa::makeCallr(isa::RaReg,
                                  (int32_t)(leaf - i) * 4);
        }
        insts[i] = inst;
        prevTransfer = isTransfer(inst);
    }

    // Epilogue: halt via the jump-to-zero convention.
    insts.push_back(isa::makeJmpr(Cond::Alw, -(int32_t)epilogue * 4 -
                                  (int32_t)FuzzEntry));
    insts.push_back(isa::makeNop());
    // Leaf: two window-local ALU ops, then return past the delay slot.
    insts.push_back(isa::makeRI(alu(), reg(), (int32_t)rng.range(0, 255),
                                reg(), rng.chance(1, 2)));
    insts.push_back(isa::makeRR(alu(), reg(), reg(), reg(), false));
    insts.push_back(isa::makeRet(isa::RaReg, 8));
    insts.push_back(isa::makeNop());

    assembler::Program prog;
    prog.entry = FuzzEntry;
    uint32_t addr = FuzzEntry;
    for (const Instruction &inst : insts) {
        const uint32_t word = isa::encode(inst);
        for (unsigned b = 0; b < 4; ++b)
            prog.addByte(addr + b, (uint8_t)((word >> (8 * b)) & 0xff));
        addr += 4;
        ++prog.instructionCount;
    }

    // Seed the data region with reproducible values.
    for (unsigned w = 0; w < FuzzDataWords; ++w) {
        const uint32_t value = (uint32_t)rng.next();
        for (unsigned b = 0; b < 4; ++b)
            prog.addByte(FuzzDataBase + 4 * w + b,
                         (uint8_t)((value >> (8 * b)) & 0xff));
    }
    return prog;
}

} // namespace risc1::sim
