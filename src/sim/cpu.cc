#include "sim/cpu.hh"

#include <algorithm>
#include <cstddef>
#include <iostream>

#include "isa/disasm.hh"
#include "jit/sbcompile.hh"
#include "sim/fault.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace risc1::sim {

using isa::Cond;
using isa::Instruction;
using isa::OpClass;
using isa::Opcode;

// The JIT templates address the four flags as consecutive bytes off
// one base pointer; pin the layout they burn in.
static_assert(sizeof(bool) == 1 && sizeof(isa::Flags) == 4);
static_assert(offsetof(isa::Flags, z) == 0 &&
              offsetof(isa::Flags, n) == 1 &&
              offsetof(isa::Flags, v) == 2 &&
              offsetof(isa::Flags, c) == 3);

Cpu::Cpu(CpuOptions options)
    : options_(std::move(options)), regs_(options_.windows)
{
    if (options_.windows.numWindows < 2)
        fatal("Cpu: at least 2 register windows are required, got %u",
              options_.windows.numWindows);
    spillSp_ = options_.spillBase;
    memory_.setLimit(options_.memLimit);
    if (options_.predecode)
        memory_.setWriteObserver(&dcache_);
    const unsigned nwin = options_.windows.numWindows;
    vmap_.resize(size_t{nwin} * isa::NumVisibleRegs);
    for (unsigned w = 0; w < nwin; ++w)
        for (unsigned r = 0; r < isa::NumVisibleRegs; ++r)
            vmap_[size_t{w} * isa::NumVisibleRegs + r] =
                static_cast<uint16_t>(options_.windows.physIndex(w, r));
    rebindWindow();
    // The template JIT rides on the superblock engine; without host
    // templates the option is inert (drivers exposing --engine jit
    // reject unsupported hosts explicitly instead).
    jitOn_ = options_.jit && options_.predecode && options_.threaded &&
             options_.superblock && jit::hostSupported();
    jitChainOn_ = jitOn_ && options_.jitChain;
    if (jitChainOn_)
        // Chain-stub bump array: a stub refuses to chain when full, so
        // the size only bounds how much commit work one run can defer.
        chainDirty_.resize(1024);
    if (jitOn_)
        dcache_.setRetireHook([this](SuperblockRecord &sb) {
            // Unlink every patched transfer that mentions this block
            // *before* its accounting is dropped: a demoted or retired
            // block must never be entered natively again, and the
            // restored slot bytes count as retired arena space.
            jitArena_.unlinkChainsFor(&sb);
            jitArena_.retire(sb.jitBytes);
            sb.jitBytes = 0;
            sb.jitCode.clear();
            sb.jitMeta.clear();
        });
}

void
Cpu::load(const assembler::Program &program)
{
    memory_ = Memory{}; // move-assign drops the observer registration
    memory_.setLimit(options_.memLimit);
    memory_.loadProgram(program);
    // Unlink before the records (and their patched-flag storage) are
    // dropped; reset() asserts the chain registry drained.
    jitArena_.unlinkAllChains();
    dcache_.invalidateAll();
    jitArena_.reset(); // every compiled entry died with its record
    if (options_.predecode)
        memory_.setWriteObserver(&dcache_);
    resetRun(program.entry);
}

void
Cpu::load(const ProgramImage &image)
{
    memory_ = Memory{}; // move-assign drops the observer registration
    memory_.setLimit(options_.memLimit);
    for (const auto &[index, page] : image.pages())
        memory_.attachPage(index, page);
    jitArena_.unlinkAllChains(); // before the patched flags are dropped
    dcache_.invalidateAll();
    jitArena_.reset(); // every compiled entry died with its record
    if (options_.predecode) {
        memory_.setWriteObserver(&dcache_);
        // Prime the decode cache from the image's predecoded text.
        // Every primed record is exactly what the miss path would
        // insert after first executing that address, and a cache hit
        // accounts the same statistics as the fetch it replaces, so
        // priming does not perturb results. Addresses past the memory
        // limit stay unprimed: an organic fetch there must fault.
        for (const auto &[addr, op] : image.decoded()) {
            if (options_.memLimit != 0 &&
                (options_.memLimit < isa::InstBytes ||
                 addr > options_.memLimit - isa::InstBytes))
                continue;
            DecodedOp stamped = op;
            stamped.cycles = options_.timing.cyclesFor(stamped.opClass);
            dcache_.insert(addr, stamped);
        }
    }
    resetRun(image.entry());
}

void
Cpu::resetRun(uint32_t entry)
{
    regs_.clear();
    stats_ = SimStats{};
    flags_ = isa::Flags{};
    pc_ = entry;
    npc_ = pc_ + isa::InstBytes;
    lastPc_ = pc_;
    cwp_ = 0;
    resident_ = 1;
    spilled_ = 0;
    spillSp_ = options_.spillBase;
    ie_ = true;
    halted_ = false;
    jumpPending_ = false;
    interruptPending_ = false;
    fetchXor_ = 0;
    pcRing_.fill(0);
    pcRingPos_ = 0;
    pcRingCount_ = 0;
    rebindWindow();
    regs_.write(cwp_, isa::SpReg, options_.stackTop);
}

Snapshot
Cpu::snapshot() const
{
    Snapshot snap;
    snap.regs = regs_.dump();
    snap.pages = memory_.dumpPages();
    snap.memStats = memory_.stats();
    snap.stats = stats_;
    snap.flags = flags_;
    snap.pc = pc_;
    snap.npc = npc_;
    snap.lastPc = lastPc_;
    snap.spillSp = spillSp_;
    snap.cwp = cwp_;
    snap.resident = resident_;
    snap.spilled = spilled_;
    snap.ie = ie_;
    snap.halted = halted_;
    snap.interruptPending = interruptPending_;
    snap.pcRing.assign(pcRing_.begin(), pcRing_.end());
    snap.pcRingPos = pcRingPos_;
    snap.pcRingCount = pcRingCount_;
    return snap;
}

void
Cpu::restore(const Snapshot &snap)
{
    regs_.restore(snap.regs);
    memory_.restorePages(snap.pages); // no observer callback: ...
    jitArena_.unlinkAllChains(); // before the patched flags are dropped
    dcache_.invalidateAll();          // ... invalidate wholesale
    jitArena_.reset(); // every compiled entry died with its record
    memory_.setStats(snap.memStats);
    stats_ = snap.stats;
    flags_ = snap.flags;
    pc_ = snap.pc;
    npc_ = snap.npc;
    lastPc_ = snap.lastPc;
    spillSp_ = snap.spillSp;
    cwp_ = snap.cwp;
    resident_ = snap.resident;
    spilled_ = snap.spilled;
    ie_ = snap.ie;
    halted_ = snap.halted;
    interruptPending_ = snap.interruptPending;
    jumpPending_ = false;
    fetchXor_ = 0;
    pcRing_.fill(0);
    std::copy_n(snap.pcRing.begin(),
                std::min<size_t>(snap.pcRing.size(), pcRing_.size()),
                pcRing_.begin());
    pcRingPos_ = snap.pcRingPos % PcRingSize;
    pcRingCount_ = snap.pcRingCount;
    rebindWindow();
}

ExecResult
Cpu::run()
{
    return runLoop(UINT64_MAX);
}

ExecResult
Cpu::runUntil(uint64_t instructions)
{
    return runLoop(instructions);
}

ExecResult
Cpu::runLoop(uint64_t pause_at)
{
    auto finish = [&](ExecResult &result) -> ExecResult & {
        stats_.memory = memory_.stats();
        stats_.sbBlocksFormed = dcache_.blocksFormed();
        stats_.sbBlocksDemoted = dcache_.blocksDemoted();
        result.instructions = stats_.instructions;
        result.cycles = stats_.cycles;
        return result;
    };

    ExecResult result;
    // Instruction count at the last trap delivery: a second fault with
    // no instruction retired in between is a trap storm (bad vector,
    // faulting handler entry) and stops hard instead of spinning.
    uint64_t last_trap_inst = UINT64_MAX;
    const bool threaded =
        options_.predecode && options_.threaded && !options_.trace;
    const uint64_t stop_at = std::min(pause_at, options_.maxInstructions);
    while (!halted_ && stats_.instructions < options_.maxInstructions) {
        if (stats_.instructions >= pause_at) {
            result.reason = StopReason::Paused;
            return finish(result);
        }
        if (options_.watchdogCycles != 0 &&
            stats_.cycles > options_.watchdogCycles) {
            result.reason = StopReason::Watchdog;
            result.faultCause = isa::TrapCause::Watchdog;
            result.faultPc = pc_;
            result.message = strprintf(
                "watchdog: no halt within %llu cycles (pc 0x%08x)",
                static_cast<unsigned long long>(options_.watchdogCycles),
                pc_);
            result.crashReport = crashReport(SimFault{
                result.message, pc_, isa::TrapCause::Watchdog});
            return finish(result);
        }
        try {
            if (threaded)
                threadedBatch(stop_at);
            else
                step();
        } catch (const SimFault &fault) {
            // A configured trap vector makes guest faults architectural:
            // vector and keep running. The watchdog cause never comes
            // through here (it is not a thrown fault).
            SimFault stop = fault;
            if (options_.trapVector != 0 &&
                stats_.instructions != last_trap_inst) {
                last_trap_inst = stats_.instructions;
                try {
                    deliverTrap(fault);
                    continue;
                } catch (const SimFault &dbl) {
                    // The delivery itself faulted (e.g. the window
                    // spill hit the address limit): unrecoverable.
                    stop.message = strprintf(
                        "double fault (%s) delivering trap: %s",
                        dbl.message.c_str(), fault.message.c_str());
                }
            }
            result.reason = StopReason::Fault;
            result.message = stop.message;
            result.faultCause = stop.cause;
            result.faultAddr = stop.addr;
            result.faultPc = pc_;
            result.crashReport = crashReport(stop);
            return finish(result);
        }
    }
    result.reason = halted_ ? StopReason::Halted : StopReason::InstLimit;
    return finish(result);
}

/**
 * Deliver a precise fault to the guest through the CALLINT sequence.
 * The faulting instruction had no architectural side effect (every
 * fault is detected before state is written), so pc_ still names it:
 * the handler may repair and re-execute (`retint (r25)0`) or skip
 * (`retint (r24)0`).
 */
void
Cpu::deliverTrap(const SimFault &fault)
{
    windowPush();
    regs_.write(cwp_, isa::RaReg, pc_);          // r25: re-execute
    regs_.write(cwp_, isa::RaReg - 1, npc_);     // r24: skip / slot-aware
    regs_.write(cwp_, isa::LocalBase,
                static_cast<uint32_t>(fault.cause)); // r16: cause
    regs_.write(cwp_, isa::LocalBase + 1, fault.addr); // r17: address
    ie_ = false;
    jumpPending_ = false;
    pc_ = options_.trapVector;
    npc_ = pc_ + isa::InstBytes;
    ++stats_.trapsTaken;
    stats_.cycles += options_.timing.callCycles;
}

std::string
Cpu::crashReport(const SimFault &fault) const
{
    std::string report;
    report += "=== RISC I crash report ===\n";
    report += strprintf("cause:       %s\n",
                        std::string(isa::trapCauseName(fault.cause))
                            .c_str());
    report += strprintf("message:     %s\n", fault.message.c_str());
    report += strprintf("fault pc:    0x%08x\n", pc_);
    report += strprintf("fault addr:  0x%08x\n", fault.addr);
    const isa::DecodeResult dec = isa::decode(memory_.peek32(pc_));
    report += strprintf("instruction: %s\n",
                        dec.ok
                            ? isa::disassemble(dec.inst, pc_).c_str()
                            : "<undecodable>");
    report += strprintf(
        "windows:     cwp %u, %u resident, %llu spilled, depth %llu\n",
        cwp_, resident_, static_cast<unsigned long long>(spilled_),
        static_cast<unsigned long long>(stats_.callDepth));
    report += strprintf("flags:       n=%d z=%d v=%d c=%d ie=%d\n",
                        flags_.n, flags_.z, flags_.v, flags_.c, ie_);
    report += "recent pcs: "; // oldest to newest
    const uint64_t depth = std::min<uint64_t>(pcRingCount_, PcRingSize);
    for (uint64_t i = 0; i < depth; ++i) {
        const unsigned slot =
            (pcRingPos_ + PcRingSize - depth + i) % PcRingSize;
        report += strprintf(" 0x%08x", pcRing_[slot]);
    }
    report += "\n";
    return report;
}

uint32_t
Cpu::s2Value(const Instruction &inst) const
{
    if (inst.imm)
        return static_cast<uint32_t>(inst.simm13);
    return regs_.read(cwp_, inst.rs2);
}

Cpu::AluOut
Cpu::execAlu(const Instruction &inst, uint32_t a, uint32_t b)
{
    auto add_with_carry = [](uint32_t x, uint32_t y, bool cin) {
        const uint64_t wide = static_cast<uint64_t>(x) + y + (cin ? 1 : 0);
        const auto r = static_cast<uint32_t>(wide);
        AluOut out;
        out.value = r;
        out.c = (wide >> 32) != 0;
        out.v = (((x ^ r) & (y ^ r)) >> 31) != 0;
        return out;
    };
    // a - b == a + ~b + 1; carry-out of 1 means "no borrow".
    auto sub_with_borrow = [&](uint32_t x, uint32_t y, bool cin) {
        AluOut out = add_with_carry(x, ~y, cin);
        // Overflow for subtraction: operands of differing sign and the
        // result's sign differs from the minuend's.
        out.v = (((x ^ y) & (x ^ out.value)) >> 31) != 0;
        return out;
    };

    switch (inst.op) {
      case Opcode::Add:   return add_with_carry(a, b, false);
      case Opcode::Addc:  return add_with_carry(a, b, flags_.c);
      case Opcode::Sub:   return sub_with_borrow(a, b, true);
      case Opcode::Subc:  return sub_with_borrow(a, b, flags_.c);
      case Opcode::Subr:  return sub_with_borrow(b, a, true);
      case Opcode::Subcr: return sub_with_borrow(b, a, flags_.c);
      // Logical and shift operations clear C and V when scc is set.
      case Opcode::And:   return AluOut{a & b, false, false};
      case Opcode::Or:    return AluOut{a | b, false, false};
      case Opcode::Xor:   return AluOut{a ^ b, false, false};
      case Opcode::Sll:   return AluOut{a << (b & 31), false, false};
      case Opcode::Srl:   return AluOut{a >> (b & 31), false, false};
      case Opcode::Sra:
        return AluOut{static_cast<uint32_t>(
                          static_cast<int32_t>(a) >> (b & 31)),
                      false, false};
      default:
        panic("execAlu: opcode 0x%02x is not an ALU op",
              static_cast<unsigned>(inst.op));
    }
}

void
Cpu::applyScc(const Instruction &inst, const AluOut &out)
{
    if (!inst.scc)
        return;
    flags_.z = out.value == 0;
    flags_.n = (out.value >> 31) != 0;
    flags_.v = out.v;
    flags_.c = out.c;
}

void
Cpu::scheduleJump(uint32_t target)
{
    jumpPending_ = true;
    jumpTarget_ = target;
}

void
Cpu::windowPush()
{
    const unsigned nwin = regs_.spec().numWindows;
    // One window stays reserved so a resident chain never wraps onto
    // itself; overflow traps when all nwin-1 usable windows are full.
    if (resident_ == nwin - 1) {
        const unsigned oldest = (cwp_ + resident_ - 1) % nwin;
        for (unsigned slot = 0; slot < isa::RegsPerWindow; ++slot) {
            spillSp_ -= 4;
            memory_.write32(
                spillSp_,
                regs_.readPhys(regs_.frameSlotPhys(oldest, slot)));
        }
        ++spilled_;
        --resident_;
        ++stats_.windowOverflows;
        stats_.spillWords += isa::RegsPerWindow;
        stats_.cycles += options_.timing.overflowCycles();
    }
    cwp_ = (cwp_ + nwin - 1) % nwin;
    rebindWindow();
    ++resident_;
    ++stats_.calls;
    ++stats_.callDepth;
    if (stats_.callDepth > stats_.maxCallDepth)
        stats_.maxCallDepth = stats_.callDepth;
}

void
Cpu::windowPop()
{
    const unsigned nwin = regs_.spec().numWindows;
    if (stats_.callDepth == 0)
        throw SimFault{"return without a matching call", pc_,
                       isa::TrapCause::WindowExhausted};
    if (resident_ == 1) {
        if (spilled_ == 0)
            throw SimFault{"window underflow with empty save stack", pc_,
                           isa::TrapCause::WindowExhausted};
        const unsigned target = (cwp_ + 1) % nwin;
        for (unsigned slot = isa::RegsPerWindow; slot-- > 0;) {
            regs_.writePhys(regs_.frameSlotPhys(target, slot),
                            memory_.read32(spillSp_));
            spillSp_ += 4;
        }
        --spilled_;
        ++stats_.windowUnderflows;
        stats_.refillWords += isa::RegsPerWindow;
        stats_.cycles += options_.timing.underflowCycles();
        cwp_ = target;
        // resident_ stays 1: the refilled frame is now the only one.
    } else {
        cwp_ = (cwp_ + 1) % nwin;
        --resident_;
    }
    rebindWindow();
    ++stats_.returns;
    --stats_.callDepth;
}

void
Cpu::traceInst(uint32_t inst_pc, const Instruction &inst)
{
    std::ostream &out = options_.traceOut ? *options_.traceOut
                                          : std::cerr;
    out << strprintf("[%10llu] %08x w%-2u d%-3llu %s\n",
                     static_cast<unsigned long long>(stats_.instructions),
                     inst_pc, cwp_,
                     static_cast<unsigned long long>(stats_.callDepth),
                     isa::disassemble(inst, inst_pc).c_str());
}

bool
Cpu::maybeTakeInterrupt()
{
    if (!interruptPending_ || !ie_ || options_.interruptVector == 0)
        return false;
    // Only between sequential instructions: with a transfer in flight
    // (npc_ != pc_+4 means the delay slot is about to run) the resume
    // point would not be a simple PC, so hardware defers one cycle.
    if (npc_ != pc_ + isa::InstBytes)
        return false;

    interruptPending_ = false;
    windowPush();
    regs_.write(cwp_, isa::RaReg, pc_); // resume PC, handler window
    ie_ = false;
    pc_ = options_.interruptVector;
    npc_ = pc_ + isa::InstBytes;
    ++stats_.interruptsTaken;
    stats_.cycles += options_.timing.callCycles;
    return true;
}

/**
 * Execute one predecoded instruction: everything between decode and the
 * shared bookkeeping. A single switch on the dense ExecTag replaces the
 * nested class/opcode switches, so the compiler emits one jump table.
 */
void
Cpu::executeDecoded(const DecodedOp &dop, uint32_t inst_pc)
{
    const Instruction &inst = dop.inst;
    switch (dop.tag) {
      case ExecTag::Add:
      case ExecTag::Addc:
      case ExecTag::Sub:
      case ExecTag::Subc:
      case ExecTag::Subr:
      case ExecTag::Subcr:
      case ExecTag::And:
      case ExecTag::Or:
      case ExecTag::Xor:
      case ExecTag::Sll:
      case ExecTag::Srl:
      case ExecTag::Sra: {
        const uint32_t a = regs_.read(cwp_, inst.rs1);
        const uint32_t b = s2Value(inst);
        const AluOut out = execAlu(inst, a, b);
        applyScc(inst, out);
        regs_.write(cwp_, inst.rd, out.value);
        break;
      }
      case ExecTag::Ldl: {
        const uint32_t ea = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        regs_.write(cwp_, inst.rd, memory_.read32(ea));
        break;
      }
      case ExecTag::Ldsu: {
        const uint32_t ea = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        regs_.write(cwp_, inst.rd, memory_.read16(ea));
        break;
      }
      case ExecTag::Ldss: {
        const uint32_t ea = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        regs_.write(cwp_, inst.rd,
                    static_cast<uint32_t>(static_cast<int32_t>(
                        static_cast<int16_t>(memory_.read16(ea)))));
        break;
      }
      case ExecTag::Ldbu: {
        const uint32_t ea = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        regs_.write(cwp_, inst.rd, memory_.read8(ea));
        break;
      }
      case ExecTag::Ldbs: {
        const uint32_t ea = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        regs_.write(cwp_, inst.rd,
                    static_cast<uint32_t>(static_cast<int32_t>(
                        static_cast<int8_t>(memory_.read8(ea)))));
        break;
      }
      case ExecTag::Stl: {
        const uint32_t ea = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        memory_.write32(ea, regs_.read(cwp_, inst.rd));
        break;
      }
      case ExecTag::Sts: {
        const uint32_t ea = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        memory_.write16(ea,
                        static_cast<uint16_t>(regs_.read(cwp_, inst.rd)));
        break;
      }
      case ExecTag::Stb: {
        const uint32_t ea = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        memory_.write8(ea,
                       static_cast<uint8_t>(regs_.read(cwp_, inst.rd)));
        break;
      }
      case ExecTag::Jmp:
      case ExecTag::Jmpr: {
        ++stats_.branches;
        uint32_t target;
        if (dop.tag == ExecTag::Jmpr)
            target = inst_pc + static_cast<uint32_t>(inst.imm19);
        else
            target = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        if (isa::condHolds(inst.cond(), flags_)) {
            ++stats_.branchesTaken;
            scheduleJump(target);
        }
        break;
      }
      case ExecTag::Call: {
        // Target is computed in the caller's window, before the push.
        const uint32_t target = regs_.read(cwp_, inst.rs1) +
                                s2Value(inst);
        windowPush();
        // The link register lives in the *new* window.
        regs_.write(cwp_, inst.rd, inst_pc);
        scheduleJump(target);
        break;
      }
      case ExecTag::Callr: {
        const uint32_t target = inst_pc +
                                static_cast<uint32_t>(inst.imm19);
        windowPush();
        regs_.write(cwp_, inst.rd, inst_pc);
        scheduleJump(target);
        break;
      }
      case ExecTag::Callint: {
        ie_ = false;
        windowPush();
        regs_.write(cwp_, inst.rd, lastPc_);
        break;
      }
      case ExecTag::Ret:
      case ExecTag::Retint: {
        // Target is computed in the callee's window, before the pop.
        const uint32_t target = regs_.read(cwp_, inst.rs1) +
                                s2Value(inst);
        windowPop();
        if (dop.tag == ExecTag::Retint)
            ie_ = true;
        scheduleJump(target);
        break;
      }
      case ExecTag::Ldhi:
        regs_.write(cwp_, inst.rd,
                    static_cast<uint32_t>(inst.imm19) << 13);
        break;
      case ExecTag::Gtlpc:
        regs_.write(cwp_, inst.rd, lastPc_);
        break;
      case ExecTag::Getpsw: {
        uint32_t psw = 0;
        psw |= flags_.c ? 1u : 0;
        psw |= flags_.v ? 2u : 0;
        psw |= flags_.n ? 4u : 0;
        psw |= flags_.z ? 8u : 0;
        psw |= ie_ ? 16u : 0;
        psw |= static_cast<uint32_t>(cwp_) << 8;
        regs_.write(cwp_, inst.rd, psw);
        break;
      }
      case ExecTag::Putpsw: {
        const uint32_t psw = regs_.read(cwp_, inst.rs1) + s2Value(inst);
        flags_.c = (psw & 1) != 0;
        flags_.v = (psw & 2) != 0;
        flags_.n = (psw & 4) != 0;
        flags_.z = (psw & 8) != 0;
        ie_ = (psw & 16) != 0;
        // CWP is not writable through PUTPSW in this model; the
        // window-tracking state would desynchronise.
        break;
      }
      case ExecTag::Invalid:
        panic("executeDecoded: invalid cache entry at pc 0x%08x",
              inst_pc);
    }
}

void
Cpu::step()
{
    maybeTakeInterrupt();

    const uint32_t inst_pc = pc_;
    DecodedOp dop;
    const DecodedOp *cached = nullptr;
    // The one-shot fetch corruption must see the real istream, so it
    // forces the decoding path (and is never allowed into the cache).
    if (options_.predecode && fetchXor_ == 0)
        cached = dcache_.lookup(inst_pc);
    if (cached != nullptr) {
        // Account the fetch the slow path would perform. Its alignment
        // and limit checks passed when this entry was first decoded,
        // and both are fixed for the lifetime of a load (the limit is
        // set from CpuOptions only), so they need not be repeated.
        memory_.countInstFetches(1);
        // By value: a self-modifying store below may drop the line.
        dop = *cached;
    } else {
        uint32_t word = memory_.fetch32(inst_pc);
        bool corrupted = false;
        if (fetchXor_ != 0) {
            word ^= fetchXor_; // transient istream corruption (injection)
            fetchXor_ = 0;
            corrupted = true;
        }
        const isa::DecodeResult dec = isa::decode(word);
        if (!dec.ok)
            throw SimFault{strprintf("at pc 0x%08x: %s", inst_pc,
                                     dec.error.c_str()),
                           inst_pc, isa::TrapCause::IllegalOpcode};
        dop = makeDecodedOp(dec.inst);
        dop.cycles = options_.timing.cyclesFor(dop.opClass);
        if (options_.predecode && !corrupted)
            dcache_.insert(inst_pc, dop);
    }
    const Instruction &inst = dop.inst;

    if (options_.trace)
        traceInst(inst_pc, inst);

    jumpPending_ = false;
    executeDecoded(dop, inst_pc);

    // Bookkeeping.
    pcRing_[pcRingPos_] = inst_pc;
    pcRingPos_ = (pcRingPos_ + 1) % PcRingSize;
    ++pcRingCount_;
    ++stats_.instructions;
    ++stats_.perOpcode[inst.op];
    stats_.countClass(dop.opClass);
    stats_.cycles += dop.cycles;
    if (dop.nop)
        ++stats_.nopsExecuted;

    // Delayed-transfer PC discipline: the instruction at npc always
    // executes next; a taken transfer only replaces the one after it.
    lastPc_ = inst_pc;
    pc_ = npc_;
    npc_ = jumpPending_ ? jumpTarget_ : npc_ + isa::InstBytes;

    // The halt convention (transfer to address 0) takes effect when the
    // PC actually reaches 0 — after the transfer's delay slot executed.
    if (options_.haltOnZeroTarget && pc_ == 0)
        halted_ = true;
}

// ---------------------------------------------------------------------
// Threaded-code engine.
// ---------------------------------------------------------------------

namespace {

/**
 * Scope guard accumulating per-opcode counts in a dense array and
 * flushing them into the map-backed SimStats on any batch exit (return
 * or throw), replacing a std::map walk per instruction with an array
 * increment. Everything else (instructions, cycles, perClass, the PC
 * ring) is updated directly per instruction: cycles feed the watchdog
 * and the ring feeds crash reports, so neither may lag.
 */
struct OpTally
{
    explicit OpTally(SimStats &stats) : stats_(stats) {}
    OpTally(const OpTally &) = delete;
    OpTally &operator=(const OpTally &) = delete;
    ~OpTally()
    {
        for (unsigned op = 0; op < counts_.size(); ++op)
            if (counts_[op] != 0)
                stats_.perOpcode[static_cast<isa::Opcode>(op)] +=
                    counts_[op];
    }

    void bump(isa::Opcode op)
    {
        ++counts_[static_cast<unsigned>(op) & 127u]; // 7-bit encodings
    }

    void add(isa::Opcode op, uint64_t n)
    {
        counts_[static_cast<unsigned>(op) & 127u] += n;
    }

  private:
    SimStats &stats_;
    std::array<uint64_t, 128> counts_{};
};

} // namespace

DecodedOp *
Cpu::decodeInsert()
{
    const uint32_t inst_pc = pc_;
    const uint32_t word = memory_.fetch32(inst_pc);
    const isa::DecodeResult dec = isa::decode(word);
    if (!dec.ok)
        throw SimFault{strprintf("at pc 0x%08x: %s", inst_pc,
                                 dec.error.c_str()),
                       inst_pc, isa::TrapCause::IllegalOpcode};
    DecodedOp dop = makeDecodedOp(dec.inst);
    dop.cycles = options_.timing.cyclesFor(dop.opClass);
    return dcache_.insert(inst_pc, dop);
}

/**
 * Upgrade `a` to a superinstruction if the pair (a, a->fall) matches a
 * fusible RISC I idiom. Called whenever the dispatch loop binds a
 * sequential successor, so a pair split by a self-modifying store
 * re-fuses automatically once the rewritten second word is decoded.
 *
 * Eligible pairs contain no store (a fused handler may then read its
 * own record throughout) and only the first component can fault (LDL's
 * data read / a window spill), before any state is written — so a
 * fault inside a fused pair is exactly as precise as in the per-step
 * engine.
 */
void
Cpu::tryFuse(DecodedOp &a, uint32_t a_pc)
{
    const DecodedOp *b = a.fall;
    if (b == nullptr || !a.valid() || !b->valid())
        return;
    if (a.dcode >= DispSuperblock)
        return; // compiled or formation-pending block head wins
    const bool a_alu = a.tag <= ExecTag::Sra;
    const bool b_alu = b->tag <= ExecTag::Sra;
    FuseKind kind;
    uint8_t dcode;
    uint32_t fuse_val = 0;
    if (a_alu && b->tag == ExecTag::Jmpr) {
        // Compare/decrement + delayed PC-relative branch: the loop
        // back edge of every compiled workload.
        kind = FuseKind::AluBranch;
        dcode = DispAluBranch;
        fuse_val = (a_pc + isa::InstBytes) +
                   static_cast<uint32_t>(b->inst.imm19);
    } else if (a.tag == ExecTag::Ldhi && a.inst.rd != isa::ZeroReg &&
               b_alu && b->inst.imm && !b->inst.scc &&
               b->inst.rs1 == a.inst.rd &&
               (b->tag == ExecTag::Add || b->tag == ExecTag::Or)) {
        // LDHI + immediate or/add building a 32-bit constant: fold it.
        kind = FuseKind::LdhiImm;
        dcode = DispLdhiImm;
        const uint32_t hi = static_cast<uint32_t>(a.inst.imm19) << 13;
        fuse_val = b->tag == ExecTag::Add
                       ? hi + static_cast<uint32_t>(b->inst.simm13)
                       : (hi | static_cast<uint32_t>(b->inst.simm13));
    } else if (a.tag == ExecTag::Ldl && b_alu) {
        kind = FuseKind::LoadUse;
        dcode = DispLoadUse;
    } else {
        return;
    }
    a.fuse = kind;
    a.inst2 = b->inst;
    a.opClass2 = b->opClass;
    a.nop2 = b->nop;
    a.cycles2 = b->cycles;
    a.fuseVal = fuse_val;
    a.dcode = dcode;
}

// ---------------------------------------------------------------------
// Superblock engine.
// ---------------------------------------------------------------------

namespace {

/** The dispatch code a failed block head falls back to. */
uint8_t
plainOrPairDcode(const DecodedOp &op)
{
    switch (op.fuse) {
      case FuseKind::AluBranch: return DispAluBranch;
      case FuseKind::LdhiImm:   return DispLdhiImm;
      case FuseKind::LoadUse:   return DispLoadUse;
      case FuseKind::None:      break;
    }
    return static_cast<uint8_t>(op.tag);
}

} // namespace

namespace {

/** The pre-resolved micro-step for a cached record. The physical
 *  indices are left to bakeSbPhys — the masks and the folded immediate
 *  depend only on the instruction and never change. */
SbStep
makeSbStep(const DecodedOp &slot)
{
    SbStep st;
    st.inst = slot.inst;
    st.tag = slot.tag;
    st.cls = slot.opClass;
    st.nop = slot.nop;
    st.cycles = slot.cycles;
    st.mask1 = st.inst.rs1 != isa::ZeroReg ? ~uint32_t{0} : 0;
    if (st.tag == ExecTag::Ldhi) {
        st.immOr = static_cast<uint32_t>(st.inst.imm19) << 13;
    } else if (st.tag == ExecTag::Jmpr || st.tag == ExecTag::Callr) {
        st.immOr = static_cast<uint32_t>(st.inst.imm19);
    } else if (st.inst.imm) {
        st.immOr = static_cast<uint32_t>(st.inst.simm13);
    } else {
        st.mask2 = st.inst.rs2 != isa::ZeroReg ? ~uint32_t{0} : 0;
    }
    // rd is an operand for every value-producing tag and the stored
    // value for stores; for jumps the field encodes the condition and
    // RET ignores it (CALL/CALLR keep it: the link register, written
    // in the pushed window).
    if (st.tag != ExecTag::Jmp && st.tag != ExecTag::Jmpr &&
        st.tag != ExecTag::Ret)
        st.maskd = st.inst.rd != isa::ZeroReg ? ~uint32_t{0} : 0;
    st.code = st.tag <= ExecTag::Sra && st.inst.scc
                  ? SbSccAluCode
                  : static_cast<uint8_t>(st.tag);
    return st;
}

} // namespace

/**
 * (Re)resolve every step's physical register indices for the current
 * window. Formation bakes once; a later dispatch under a different
 * window re-bakes in place — three masked stores per step, so the cost
 * stays proportional to block length even when recursion alternates
 * windows every visit.
 */
void
Cpu::bakeSbPhys(SuperblockRecord &sb)
{
    const uint16_t *const wm = wmap_;
    for (SbStep &st : sb.steps) {
        if (st.mask1 != 0)
            st.phys1 = wm[st.inst.rs1];
        if (st.mask2 != 0)
            st.phys2 = wm[st.inst.rs2];
        if (st.maskd != 0)
            st.physd = wm[st.inst.rd];
    }
    sb.bakedCwp = cwp_;
}

/**
 * Compile the superblock headed by `head`. The walk decodes forward
 * from the head through the predecode cache; unseen words are decoded
 * ephemerally from memory via peek32 — NOT inserted into the cache.
 * Speculative inserts would widen the write-filter band to whatever
 * data happens to follow the code (decoding garbage past a function's
 * end as "instructions"), making every data store pay the slot
 * invalidation path; the block embeds its own copies of the words, and
 * onMemoryWrite covers the block's byte range independently of the
 * page band. Interior steps run to the first block terminator, an
 * undecodable word, the address limit, an address-space wrap or
 * MaxSuperblockLen; a plain-jump terminator is swallowed along with
 * its delay slot when that slot is itself interior-eligible.
 */
void
Cpu::formSuperblock(DecodedOp &head, uint32_t head_pc)
{
    // A block must beat what it replaces: two plain dispatches, or a
    // pair dispatch plus one when the fuser is running.
    const uint32_t min_len = options_.fuse ? 3 : 2;

    // Cached-or-decoded record at addr into `out`; false where an
    // organic fetch would fault (the walk must stop so execution
    // faults at the exact per-instruction point).
    auto fetch_slot = [this](uint32_t addr, DecodedOp &out) -> bool {
        const DecodedOp *slot = dcache_.lookup(addr);
        if (slot != nullptr) {
            out = *slot;
            return true;
        }
        if (options_.memLimit != 0 &&
            (options_.memLimit < isa::InstBytes ||
             addr > options_.memLimit - isa::InstBytes))
            return false;
        const isa::DecodeResult dec = isa::decode(memory_.peek32(addr));
        if (!dec.ok)
            return false;
        out = makeDecodedOp(dec.inst);
        out.cycles = options_.timing.cyclesFor(out.opClass);
        return true;
    };

    std::vector<SbStep> steps;
    steps.reserve(MaxSuperblockLen);
    bool has_term = false;
    uint8_t window_term = 0;
    uint32_t addr = head_pc;
    DecodedOp cur;
    while (steps.size() + 2 <= MaxSuperblockLen) {
        if (!fetch_slot(addr, cur))
            break;
        const uint32_t next = addr + isa::InstBytes;
        if (sbInteriorEligible(cur.tag)) {
            steps.push_back(makeSbStep(cur));
            if (next <= addr)
                break; // wrapped around the address space
            addr = next;
            continue;
        }
        // The JIT additionally swallows CALL/CALLR/RET: its per-window
        // code bakes the delay slot against the shifted window, which
        // the interpreted step loop cannot do (such blocks dispatch
        // plain whenever native code is unavailable).
        const bool wterm = jitOn_ && sbWindowTermEligible(cur.tag);
        if ((sbTermEligible(cur.tag) || wterm) && next > addr) {
            DecodedOp delay;
            if (fetch_slot(next, delay) &&
                sbInteriorEligible(delay.tag)) {
                steps.push_back(makeSbStep(cur));
                steps.push_back(makeSbStep(delay));
                has_term = true;
                if (wterm)
                    window_term =
                        cur.tag == ExecTag::Ret ? uint8_t{2}
                                                : uint8_t{1};
            }
        }
        break;
    }

    // A bare CALL/RET plus its delay slot is always worth a block:
    // one native entry replaces two dispatches *and* de-virtualizes
    // the window push/pop, even when the fuser would demand three.
    if (steps.size() < min_len && window_term == 0) {
        head.dcode = plainOrPairDcode(head);
        head.sbReject = true;
        return;
    }

    SuperblockRecord *sb = dcache_.newBlock();
    sb->headPc = head_pc;
    sb->count = static_cast<uint32_t>(steps.size());
    sb->hasTerm = has_term;
    sb->termWindow = window_term;
    for (const SbStep &st : steps) {
        sb->cycles += st.cycles;
        if (st.nop)
            ++sb->nops;
        const uint8_t cls = static_cast<uint8_t>(st.cls);
        unsigned i = 0;
        for (; i < sb->nClasses; ++i) {
            if (sb->classDelta[i].first == cls) {
                ++sb->classDelta[i].second;
                break;
            }
        }
        if (i == sb->nClasses)
            sb->classDelta[sb->nClasses++] = {cls, 1};
        const uint8_t op = static_cast<uint8_t>(st.inst.op);
        for (i = 0; i < sb->nOps; ++i) {
            if (sb->opCounts[i].first == op) {
                ++sb->opCounts[i].second;
                break;
            }
        }
        if (i == sb->nOps)
            sb->opCounts[sb->nOps++] = {op, 1};
    }
    sb->steps = std::move(steps);
    bakeSbPhys(*sb);
    dcache_.registerBlock(sb);
    head.sb = sb;
    head.dcode = DispSuperblock;
}

void
Cpu::commitSbPrefix(const SuperblockRecord &sb, uint32_t head,
                    uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i) {
        const SbStep &st = sb.steps[i];
        const uint32_t st_pc = head + i * isa::InstBytes;
        pcRing_[pcRingPos_] = st_pc;
        pcRingPos_ = (pcRingPos_ + 1) % PcRingSize;
        ++pcRingCount_;
        ++stats_.instructions;
        ++stats_.perOpcode[st.inst.op];
        stats_.countClass(st.cls);
        stats_.cycles += st.cycles;
        if (st.nop)
            ++stats_.nopsExecuted;
    }
}

// --- template JIT engine (CpuOptions::jit, src/jit) -------------------

/**
 * Native entry for `sb` baked at the current window, compiling (and
 * installing into jitArena_) on first use. Superblock records are
 * address-stable until invalidateAll (newBlock recycles in place), so
 * burning &sb.live into the code is safe; the code itself is per-cwp
 * because the baked physical indices are.
 */
const void *
Cpu::jitEntryFor(SuperblockRecord &sb)
{
    if (sb.jitReject)
        return nullptr;
    if (sb.jitCode.empty())
        sb.jitCode.assign(regs_.spec().numWindows, nullptr);
    const void *entry = sb.jitCode[cwp_];
    if (entry != nullptr)
        return entry;
    if (jitArena_.exhausted())
        return nullptr; // no room; keep interpreting, stop retrying
    if (sb.bakedCwp != cwp_)
        bakeSbPhys(sb); // the templates burn in the baked operands
    jit::SbJitEnv env;
    env.phys = regs_.physData();
    env.flags = reinterpret_cast<uint8_t *>(&flags_);
    env.ie = reinterpret_cast<const uint8_t *>(&ie_);
    env.live = reinterpret_cast<const uint8_t *>(&sb.live);
    env.cpu = this;
    env.head = sb.headPc;
    env.cwp = cwp_;
    env.noSelfLoop = options_.haltOnZeroTarget && sb.headPc == 0;
    if (sb.termWindow != 0) {
        // The delay slot runs in the window the terminator switches
        // to: re-bake that one step against the shifted window's
        // register map, and burn the same row's link register for
        // CALL/CALLR. The window can never wrap back onto itself
        // (numWindows >= 2), so a window-terminated block must not
        // self-loop natively — each entry needs its own baking.
        const uint32_t nwin = regs_.spec().numWindows;
        const uint32_t dcwp = sb.termWindow == 1
                                  ? (cwp_ + nwin - 1) % nwin
                                  : (cwp_ + 1) % nwin;
        const uint16_t *const dw =
            vmap_.data() + size_t{dcwp} * isa::NumVisibleRegs;
        SbStep &ds = sb.steps.back();
        if (ds.mask1 != 0)
            ds.phys1 = dw[ds.inst.rs1];
        if (ds.mask2 != 0)
            ds.phys2 = dw[ds.inst.rs2];
        if (ds.maskd != 0)
            ds.physd = dw[ds.inst.rd];
        env.termWindow = sb.termWindow;
        env.delayCwp = dcwp;
        env.linkPhys = dw[sb.steps[sb.count - 2].inst.rd];
        env.windowPush = &Cpu::jitWindowPush;
        env.windowPop = &Cpu::jitWindowPop;
        env.noSelfLoop = true;
    }
    env.load32 = &Cpu::jitLoad32;
    env.load16u = &Cpu::jitLoad16u;
    env.load16s = &Cpu::jitLoad16s;
    env.load8u = &Cpu::jitLoad8u;
    env.load8s = &Cpu::jitLoad8s;
    env.store32 = &Cpu::jitStore32;
    env.store16 = &Cpu::jitStore16;
    env.store8 = &Cpu::jitStore8;
    env.chain = jitChainOn_;
    env.passCycles = static_cast<uint32_t>(sb.cycles);
    env.cycleGuard = options_.watchdogCycles != 0;
    const size_t before = jitArena_.usedBytes();
    jit::SbJitCompiled compiled;
    entry = jit::compileSuperblock(jitArena_, env, sb.steps.data(),
                                   sb.count, sb.hasTerm, &compiled);
    if (entry == nullptr) {
        sb.jitReject = true; // untranslatable step (or arena full)
        return nullptr;
    }
    sb.jitBytes += static_cast<uint32_t>(jitArena_.usedBytes() - before);
    sb.jitSelfLoop = sb.hasTerm && !env.noSelfLoop;
    sb.jitCode[cwp_] = entry;
    if (jitChainOn_) {
        if (sb.jitMeta.empty())
            sb.jitMeta.resize(regs_.spec().numWindows);
        SuperblockRecord::SbJitVariant &v = sb.jitMeta[cwp_];
        v.chainEntry = compiled.chainEntry;
        v.takenSlot = compiled.takenSlotOff;
        v.fallSlot = compiled.fallSlotOff;
        v.takenPatched = 0;
        v.fallPatched = 0;
        v.takenDst[0] = nullptr;
        v.takenDst[1] = nullptr;
    }
    return entry;
}

/**
 * Lazily patch the exit slot `src` just left through into a direct
 * native transfer to `dst`'s variant for the current window — the
 * classic trace-linking backpatch, done on the first C++-observed
 * traversal of the edge. For a window-terminated source the slot lives
 * in the variant of the window the block was *entered* under (the
 * terminator shifted cwp_ before the exit); the shift is deterministic
 * per variant, so the patched target window is always right.
 */
bool
Cpu::tryChainPatch(SuperblockRecord &src, bool taken,
                   SuperblockRecord &dst)
{
    const unsigned nwin = regs_.spec().numWindows;
    unsigned ecwp = cwp_;
    if (src.termWindow == 1)
        ecwp = (cwp_ + 1) % nwin; // CALL pushed: entry window was +1
    else if (src.termWindow == 2)
        ecwp = (cwp_ + nwin - 1) % nwin; // RET popped: entry was -1
    if (src.jitMeta.size() <= ecwp || dst.jitMeta.size() <= cwp_)
        return false;
    SuperblockRecord::SbJitVariant &sv = src.jitMeta[ecwp];
    // Every traversal of a given slot transfers under the same cwp_
    // (the shift from the entry window is fixed per variant), so a
    // target's variant looked up here is the one the stub needs — for
    // the re-link below as much as for the new edge.
    const auto fill = [&](SuperblockRecord &d,
                          jit::SbChainLinkReq &r) -> bool {
        const SuperblockRecord::SbJitVariant &dv = d.jitMeta[cwp_];
        if (dv.chainEntry == nullptr)
            return false;
        r.taken = taken;
        r.src = &src;
        r.dst = &d;
        r.srcLastPc = src.headPc + (src.count - 1) * isa::InstBytes;
        r.dstHead = d.headPc;
        r.dstCount = d.count;
        r.dstCycles = static_cast<uint32_t>(d.cycles);
        r.dstLive = reinterpret_cast<const uint8_t *>(&d.live);
        r.dstChainEntry = dv.chainEntry;
        r.cycleGuard = options_.watchdogCycles != 0;
        return true;
    };
    jit::SbChainLinkReq reqs[2];
    size_t n = 0;
    if (taken) {
        // Two-way inline cache: a taken slot holds up to two guarded
        // targets (a RET block returns to several call sites). The
        // second link re-emits the whole slot, already-linked edge
        // first; a linked target going dead unlinks the whole slot
        // (takenPatched drops to 0) and surviving edges re-link
        // lazily on their next C++-observed traversal.
        if (sv.takenSlot == 0 || sv.takenPatched >= 2)
            return false;
        if (sv.takenPatched == 1) {
            if (sv.takenDst[0] == &dst)
                return false; // same edge: an earlier guard refused it
            auto *d0 =
                static_cast<SuperblockRecord *>(sv.takenDst[0]);
            if (d0 == nullptr || d0->jitMeta.size() <= cwp_ ||
                !fill(*d0, reqs[n]))
                return false;
            ++n;
        }
        if (dst.jitMeta.size() <= cwp_ || !fill(dst, reqs[n]))
            return false;
        reqs[n].slotOff = sv.takenSlot;
        reqs[n].patchedFlag = &sv.takenPatched;
        if (n == 1) {
            reqs[0].slotOff = sv.takenSlot;
            reqs[0].patchedFlag = &sv.takenPatched;
        }
        ++n;
        if (!jit::linkChainSlot(jitArena_, reqs, n))
            return false;
        sv.takenDst[n - 1] = &dst;
        return true;
    }
    if (sv.fallSlot == 0 || sv.fallPatched != 0)
        return false;
    // The fall slot's target is structurally the sequential
    // successor, so the stub needs no runtime target guard —
    // verify the invariant here instead, once, at patch time.
    if (dst.headPc != src.headPc + src.count * isa::InstBytes)
        return false;
    if (dst.jitMeta.size() <= cwp_ || !fill(dst, reqs[0]))
        return false;
    reqs[0].slotOff = sv.fallSlot;
    reqs[0].patchedFlag = &sv.fallPatched;
    return jit::linkChainSlot(jitArena_, reqs, 1);
}

void
Cpu::ringReplaySb(const SuperblockRecord &sb, uint64_t its)
{
    const uint64_t n = its * sb.count;
    const uint32_t bhead = sb.headPc;
    if (n <= PcRingSize) {
        // Common case (a handful of straight-through passes): every
        // entry lands in the ring, no wrap prefix — and no `% count`,
        // a hardware divide by a runtime value.
        unsigned pos = pcRingPos_;
        uint32_t pc = bhead;
        const uint32_t bend = bhead + sb.count * isa::InstBytes;
        for (uint64_t k = 0; k < n; ++k) {
            pcRing_[pos] = pc;
            pos = (pos + 1) % PcRingSize;
            pc += isa::InstBytes;
            if (pc == bend)
                pc = bhead;
        }
        pcRingPos_ = pos;
    } else {
        const uint64_t m = PcRingSize;
        unsigned pos = static_cast<unsigned>((pcRingPos_ + (n - m)) %
                                             PcRingSize);
        uint32_t idx = static_cast<uint32_t>((n - m) % sb.count);
        for (uint64_t k = 0; k < m; ++k) {
            pcRing_[pos] = bhead + idx * isa::InstBytes;
            pos = (pos + 1) % PcRingSize;
            if (++idx == sb.count)
                idx = 0;
        }
        pcRingPos_ = pos;
    }
    pcRingCount_ += n;
}

// Memory helpers callable from emitted code. A guest fault must not
// unwind through the native frame, so each helper catches the
// SimFault, stashes it for the wrapper to rethrow, and reports it as
// a negative return (loads zero-extend, so success is non-negative).

int64_t
Cpu::jitLoad32(void *cpu, uint32_t ea) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        return self.memory_.read32(ea);
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

int64_t
Cpu::jitLoad16u(void *cpu, uint32_t ea) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        return self.memory_.read16(ea);
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

int64_t
Cpu::jitLoad16s(void *cpu, uint32_t ea) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        return static_cast<uint32_t>(static_cast<int32_t>(
            static_cast<int16_t>(self.memory_.read16(ea))));
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

int64_t
Cpu::jitLoad8u(void *cpu, uint32_t ea) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        return self.memory_.read8(ea);
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

int64_t
Cpu::jitLoad8s(void *cpu, uint32_t ea) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        return static_cast<uint32_t>(static_cast<int32_t>(
            static_cast<int8_t>(self.memory_.read8(ea))));
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

int64_t
Cpu::jitStore32(void *cpu, uint32_t ea, uint32_t value) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        self.memory_.write32(ea, value);
        return 0;
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

int64_t
Cpu::jitStore16(void *cpu, uint32_t ea, uint32_t value) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        self.memory_.write16(ea, static_cast<uint16_t>(value));
        return 0;
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

int64_t
Cpu::jitStore8(void *cpu, uint32_t ea, uint32_t value) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        self.memory_.write8(ea, static_cast<uint8_t>(value));
        return 0;
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

int64_t
Cpu::jitWindowPush(void *cpu) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        self.windowPush();
        return 0;
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

int64_t
Cpu::jitWindowPop(void *cpu) noexcept
{
    Cpu &self = *static_cast<Cpu *>(cpu);
    try {
        self.windowPop();
        return 0;
    } catch (const SimFault &fault) {
        self.jitFault_ = fault;
        return -1;
    }
}

#if defined(__GNUC__) || defined(__clang__)
#define RISC1_COMPUTED_GOTO 1
#endif

#ifdef RISC1_COMPUTED_GOTO
#define RISC1_DISPATCH(code) goto *kDispatch[code]
#else
#define RISC1_DISPATCH(code)                                            \
    do {                                                                \
        dcode = (code);                                                 \
        goto dispatch_switch;                                           \
    } while (0)
#endif

// Shared per-instruction bookkeeping (mirrors the tail of step()).
#define RISC1_BOOKKEEP(ipc, op, cls, cyc, nopf)                         \
    do {                                                                \
        pcRing_[pcRingPos_] = (ipc);                                    \
        pcRingPos_ = (pcRingPos_ + 1) % PcRingSize;                     \
        ++pcRingCount_;                                                 \
        ++stats_.instructions;                                          \
        tally.bump(op);                                                 \
        stats_.countClass(cls);                                         \
        stats_.cycles += (cyc);                                         \
        if (nopf)                                                       \
            ++stats_.nopsExecuted;                                      \
    } while (0)

// Delayed-transfer PC discipline for a non-transfer instruction.
#define RISC1_ADVANCE_SEQ(ipc)                                          \
    do {                                                                \
        lastPc_ = (ipc);                                                \
        pc0 = npc_;                                                     \
        pc_ = pc0;                                                      \
        npc_ = pc0 + isa::InstBytes;                                    \
        if (halt_on_zero && pc0 == 0) {                                 \
            halted_ = true;                                             \
            return;                                                     \
        }                                                               \
    } while (0)

// ... and for a transfer: a taken target replaces the instruction
// after the delay slot (which `pc0` already names).
#define RISC1_ADVANCE_JUMP(ipc, taken, target)                          \
    do {                                                                \
        lastPc_ = (ipc);                                                \
        pc0 = npc_;                                                     \
        pc_ = pc0;                                                      \
        npc_ = (taken) ? (target) : pc0 + isa::InstBytes;               \
        if (halt_on_zero && pc0 == 0) {                                 \
            halted_ = true;                                             \
            return;                                                     \
        }                                                               \
    } while (0)

// Chase the successor pointer instead of hashing the next PC: the
// fall-through slot for sequential flow, the one-entry taken-target
// cache for transfers, the gate's full lookup otherwise.
#define RISC1_CHASE()                                                   \
    do {                                                                \
        if (pc_ == inst_pc + isa::InstBytes)                            \
            rec = rec->fall;                                            \
        else if (rec->jtPc == pc_)                                      \
            rec = rec->jt;                                              \
        else                                                            \
            rec = nullptr;                                              \
        goto gate;                                                      \
    } while (0)

void
Cpu::threadedBatch(uint64_t stop_at)
{
#ifdef RISC1_COMPUTED_GOTO
    // Indexed by DecodedOp::dcode; must mirror ExecTag order exactly,
    // followed by the three superinstruction codes.
    static const void *const kDispatch[NumDispatchCodes] = {
        &&do_alu, &&do_alu, &&do_alu, &&do_alu, &&do_alu, &&do_alu,
        &&do_alu, &&do_alu, &&do_alu, &&do_alu, &&do_alu, &&do_alu,
        &&do_ldl, &&do_ldsu, &&do_ldss, &&do_ldbu, &&do_ldbs,
        &&do_stl, &&do_sts, &&do_stb,
        &&do_jmp, &&do_jmpr, &&do_call, &&do_callr, &&do_ret,
        &&do_callint, &&do_retint,
        &&do_ldhi, &&do_gtlpc, &&do_getpsw, &&do_putpsw,
        &&do_invalid,
        &&do_alubranch, &&do_ldhiimm, &&do_loaduse,
        &&do_superblock, &&do_sbform,
    };
#else
    uint8_t dcode = 0;
#endif

    OpTally tally(stats_);
    const uint64_t watchdog = options_.watchdogCycles;
    const bool halt_on_zero = options_.haltOnZeroTarget;
    const bool fuse = options_.fuse;
    const bool sb_on = options_.superblock;
    DecodedOp *rec = nullptr;  //!< record about to dispatch
    DecodedOp *prev = nullptr; //!< last dispatched record (successor binding)
    uint32_t prev_pc = 0;
    uint32_t inst_pc = 0;
    uint32_t pc0 = 0;

    // Mark a block-head candidate: a record entered by non-sequential
    // control flow (batch entry, a taken transfer's target, the
    // fall-through past a transfer). The candidate compiles lazily on
    // its next dispatch; ineligible heads and already-compiled blocks
    // are left alone.
    auto mark_sb_candidate = [sb_on, jit_on = jitOn_](DecodedOp &r) {
        if (sb_on && r.dcode != DispSuperblock && !r.sbReject &&
            (sbHeadEligible(r.tag) ||
             (jit_on && sbWindowTermEligible(r.tag))))
            r.dcode = DispSbForm;
    };

    // Commit `its` completed executions of a block (the hot self-loop
    // dispatches a backward-jumping block many times before a single
    // commit): every per-instruction stat scaled by the iteration
    // count, and the PC ring advanced exactly as the per-step engine
    // would have — only the last PcRingSize entries of the repeating
    // [bhead, bhead + count·4) stream are materialized.
    auto commit_sb_iters = [&](const SuperblockRecord &sb, uint32_t bhead,
                               uint64_t its, uint64_t taken_its) {
        const uint64_t n = its * sb.count;
        stats_.instructions += n;
        stats_.cycles += its * sb.cycles;
        for (unsigned c = 0; c < sb.nClasses; ++c)
            stats_.perClass[sb.classDelta[c].first] +=
                its * sb.classDelta[c].second;
        for (unsigned c = 0; c < sb.nOps; ++c)
            tally.add(static_cast<isa::Opcode>(sb.opCounts[c].first),
                      its * sb.opCounts[c].second);
        stats_.nopsExecuted += its * sb.nops;
        stats_.sbDispatches += its;
        stats_.sbInstructions += n;
        // Window terminators count through windowPush/Pop (calls /
        // returns), not as branches — exactly like the plain handlers.
        if (sb.hasTerm && sb.termWindow == 0) {
            stats_.branches += its;
            stats_.branchesTaken += taken_its;
        }
        (void)bhead; // == sb.headPc (records are keyed by head)
        ringReplaySb(sb, its);
    };

    // Drain everything a chained native run deferred: each dirty
    // record's pending pass counts commit exactly as commit_sb_iters
    // would have per episode (all the scaled deltas are commutative),
    // the per-episode instruction fetches (entry fetch + epilogue
    // formula telescope to iters*count per middle episode), and the
    // PC ring replayed from the episode ring in chronological order —
    // episodes older than the kept PcRingSize only advance the cursor,
    // and the kept ones (>= 1 PC each) overwrite the whole ring.
    auto commit_chain_run = [&]() {
        jit::SbJitExit &c = jitCtx_;
        uint64_t middles = 0;
        auto **dirty_end = static_cast<SuperblockRecord **>(c.dirtyCur);
        for (SuperblockRecord **p = chainDirty_.data(); p != dirty_end;
             ++p) {
            SuperblockRecord &sb = **p;
            const uint64_t its = sb.chain.pendingIters;
            const uint64_t n = its * sb.count;
            stats_.instructions += n;
            stats_.cycles += its * sb.cycles;
            for (unsigned k = 0; k < sb.nClasses; ++k)
                stats_.perClass[sb.classDelta[k].first] +=
                    its * sb.classDelta[k].second;
            for (unsigned k = 0; k < sb.nOps; ++k)
                tally.add(
                    static_cast<isa::Opcode>(sb.opCounts[k].first),
                    its * sb.opCounts[k].second);
            stats_.nopsExecuted += its * sb.nops;
            stats_.sbDispatches += its;
            stats_.sbInstructions += n;
            if (sb.hasTerm && sb.termWindow == 0) {
                stats_.branches += its;
                stats_.branchesTaken += sb.chain.pendingTaken;
            }
            memory_.countInstFetches(n);
            middles += n;
            sb.chain.pendingIters = 0;
            sb.chain.pendingTaken = 0;
            sb.chain.dirty = 0;
        }
        stats_.sbChained += c.chained;
        const uint64_t nepi = c.epiPos;
        const uint64_t shown = nepi < PcRingSize ? nepi : PcRingSize;
        uint64_t replayed = 0;
        for (uint64_t k = nepi - shown; k < nepi; ++k) {
            const jit::SbChainEpisode &ep = chainEpis_[k % PcRingSize];
            replayed +=
                ep.iters *
                static_cast<SuperblockRecord *>(ep.sb)->count;
        }
        const uint64_t skipped = middles - replayed;
        pcRingPos_ =
            static_cast<unsigned>((pcRingPos_ + skipped) % PcRingSize);
        pcRingCount_ += skipped;
        for (uint64_t k = nepi - shown; k < nepi; ++k) {
            const jit::SbChainEpisode &ep = chainEpis_[k % PcRingSize];
            ringReplaySb(*static_cast<SuperblockRecord *>(ep.sb),
                         ep.iters);
        }
    };
    // Chain-patch request carried across one C++ block-to-block chain:
    // the source block and the direction it exited through, consumed
    // (and the slot patched) once the successor's native entry is
    // known. Set only when jitChainOn_.
    SuperblockRecord *chainSrc = nullptr;
    bool chainSrcTaken = false;

gate:
    // The batch boundary conditions the per-step outer loop checks
    // between instructions; runLoop() re-checks them on return and
    // reports the stop.
    if (halted_ || stats_.instructions >= stop_at)
        return;
    if (watchdog != 0 && stats_.cycles > watchdog)
        return;
    if (interruptPending_ && maybeTakeInterrupt()) {
        rec = nullptr;  // pc_ moved to the handler
        prev = nullptr; // don't bind the vector as a successor
    }
    if (fetchXor_ != 0) {
        // One-shot istream corruption must see the real fetch path and
        // never enter the cache: take the per-step engine for it.
        step();
        rec = nullptr;
        prev = nullptr;
        goto gate;
    }
    if (rec == nullptr || !rec->valid()) {
        DecodedOp *found = dcache_.lookupMut(pc_);
        if (found != nullptr && found->valid()) {
            // Account the fetch the decode path would perform (its
            // alignment/limit checks passed at first decode and both
            // are fixed for the lifetime of a load).
            memory_.countInstFetches(1);
            rec = found;
        } else {
            rec = decodeInsert(); // counts its own fetch; may throw
        }
        if (prev != nullptr) {
            if (pc_ == prev_pc + isa::InstBytes) {
                prev->fall = rec;
                if (fuse)
                    tryFuse(*prev, prev_pc);
                if (isTransferTag(prev->tag))
                    mark_sb_candidate(*rec); // untaken-transfer fall-through
            } else {
                prev->jt = rec;
                prev->jtPc = pc_;
                mark_sb_candidate(*rec); // taken-transfer target
            }
        } else {
            mark_sb_candidate(*rec); // batch entry
        }
    } else {
        memory_.countInstFetches(1);
    }
    inst_pc = pc_;
    prev = rec;
    prev_pc = inst_pc;
    RISC1_DISPATCH(rec->dcode);

#ifndef RISC1_COMPUTED_GOTO
dispatch_switch:
    switch (dcode) {
      case 0: case 1: case 2: case 3: case 4: case 5:
      case 6: case 7: case 8: case 9: case 10: case 11:
        goto do_alu;
      case 12: goto do_ldl;
      case 13: goto do_ldsu;
      case 14: goto do_ldss;
      case 15: goto do_ldbu;
      case 16: goto do_ldbs;
      case 17: goto do_stl;
      case 18: goto do_sts;
      case 19: goto do_stb;
      case 20: goto do_jmp;
      case 21: goto do_jmpr;
      case 22: goto do_call;
      case 23: goto do_callr;
      case 24: goto do_ret;
      case 25: goto do_callint;
      case 26: goto do_retint;
      case 27: goto do_ldhi;
      case 28: goto do_gtlpc;
      case 29: goto do_getpsw;
      case 30: goto do_putpsw;
      case 32: goto do_alubranch;
      case 33: goto do_ldhiimm;
      case 34: goto do_loaduse;
      case 35: goto do_superblock;
      case 36: goto do_sbform;
      default: goto do_invalid;
    }
#endif

do_alu: {
    const Instruction &inst = rec->inst;
    const AluOut out = execAlu(inst, rdv(inst.rs1), s2v(inst));
    applyScc(inst, out);
    wrv(inst.rd, out.value);
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_ldl: {
    const Instruction &inst = rec->inst;
    const uint32_t ea = rdv(inst.rs1) + s2v(inst);
    wrv(inst.rd, memory_.read32(ea));
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_ldsu: {
    const Instruction &inst = rec->inst;
    const uint32_t ea = rdv(inst.rs1) + s2v(inst);
    wrv(inst.rd, memory_.read16(ea));
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_ldss: {
    const Instruction &inst = rec->inst;
    const uint32_t ea = rdv(inst.rs1) + s2v(inst);
    wrv(inst.rd, static_cast<uint32_t>(static_cast<int32_t>(
                     static_cast<int16_t>(memory_.read16(ea)))));
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_ldbu: {
    const Instruction &inst = rec->inst;
    const uint32_t ea = rdv(inst.rs1) + s2v(inst);
    wrv(inst.rd, memory_.read8(ea));
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_ldbs: {
    const Instruction &inst = rec->inst;
    const uint32_t ea = rdv(inst.rs1) + s2v(inst);
    wrv(inst.rd, static_cast<uint32_t>(static_cast<int32_t>(
                     static_cast<int8_t>(memory_.read8(ea)))));
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

    // Stores copy their record first: a self-modifying store may clear
    // its own slot (making rec's fields and successors all zero, which
    // the chase then treats as a miss).
do_stl: {
    const Instruction inst = rec->inst;
    const isa::OpClass cls = rec->opClass;
    const uint32_t cyc = rec->cycles;
    const uint32_t ea = rdv(inst.rs1) + s2v(inst);
    memory_.write32(ea, rdv(inst.rd));
    RISC1_BOOKKEEP(inst_pc, inst.op, cls, cyc, false);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_sts: {
    const Instruction inst = rec->inst;
    const isa::OpClass cls = rec->opClass;
    const uint32_t cyc = rec->cycles;
    const uint32_t ea = rdv(inst.rs1) + s2v(inst);
    memory_.write16(ea, static_cast<uint16_t>(rdv(inst.rd)));
    RISC1_BOOKKEEP(inst_pc, inst.op, cls, cyc, false);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_stb: {
    const Instruction inst = rec->inst;
    const isa::OpClass cls = rec->opClass;
    const uint32_t cyc = rec->cycles;
    const uint32_t ea = rdv(inst.rs1) + s2v(inst);
    memory_.write8(ea, static_cast<uint8_t>(rdv(inst.rd)));
    RISC1_BOOKKEEP(inst_pc, inst.op, cls, cyc, false);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_jmp: {
    const Instruction &inst = rec->inst;
    ++stats_.branches;
    const uint32_t target = rdv(inst.rs1) + s2v(inst);
    const bool taken = isa::condHolds(inst.cond(), flags_);
    if (taken)
        ++stats_.branchesTaken;
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_JUMP(inst_pc, taken, target);
    RISC1_CHASE();
}

do_jmpr: {
    const Instruction &inst = rec->inst;
    ++stats_.branches;
    const uint32_t target = inst_pc + static_cast<uint32_t>(inst.imm19);
    const bool taken = isa::condHolds(inst.cond(), flags_);
    if (taken)
        ++stats_.branchesTaken;
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_JUMP(inst_pc, taken, target);
    RISC1_CHASE();
}

do_call: {
    const Instruction &inst = rec->inst;
    // Target is computed in the caller's window, before the push.
    const uint32_t target = rdv(inst.rs1) + s2v(inst);
    windowPush();
    wrv(inst.rd, inst_pc); // link register lives in the *new* window
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_JUMP(inst_pc, true, target);
    RISC1_CHASE();
}

do_callr: {
    const Instruction &inst = rec->inst;
    const uint32_t target = inst_pc + static_cast<uint32_t>(inst.imm19);
    windowPush();
    wrv(inst.rd, inst_pc);
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_JUMP(inst_pc, true, target);
    RISC1_CHASE();
}

do_callint: {
    const Instruction &inst = rec->inst;
    ie_ = false;
    windowPush();
    wrv(inst.rd, lastPc_);
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_ret: {
    const Instruction &inst = rec->inst;
    // Target is computed in the callee's window, before the pop.
    const uint32_t target = rdv(inst.rs1) + s2v(inst);
    windowPop();
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_JUMP(inst_pc, true, target);
    RISC1_CHASE();
}

do_retint: {
    const Instruction &inst = rec->inst;
    const uint32_t target = rdv(inst.rs1) + s2v(inst);
    windowPop();
    ie_ = true;
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_JUMP(inst_pc, true, target);
    RISC1_CHASE();
}

do_ldhi: {
    const Instruction &inst = rec->inst;
    wrv(inst.rd, static_cast<uint32_t>(inst.imm19) << 13);
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_gtlpc: {
    const Instruction &inst = rec->inst;
    wrv(inst.rd, lastPc_);
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_getpsw: {
    const Instruction &inst = rec->inst;
    uint32_t psw = 0;
    psw |= flags_.c ? 1u : 0;
    psw |= flags_.v ? 2u : 0;
    psw |= flags_.n ? 4u : 0;
    psw |= flags_.z ? 8u : 0;
    psw |= ie_ ? 16u : 0;
    psw |= static_cast<uint32_t>(cwp_) << 8;
    wrv(inst.rd, psw);
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

do_putpsw: {
    const Instruction &inst = rec->inst;
    const uint32_t psw = rdv(inst.rs1) + s2v(inst);
    flags_.c = (psw & 1) != 0;
    flags_.v = (psw & 2) != 0;
    flags_.n = (psw & 4) != 0;
    flags_.z = (psw & 8) != 0;
    ie_ = (psw & 16) != 0;
    // CWP is not writable through PUTPSW in this model (see step()).
    RISC1_BOOKKEEP(inst_pc, inst.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    RISC1_CHASE();
}

    // Superinstructions execute both components in one dispatch. The
    // prologue demotes this visit to the plain first-component handler
    // when the pair would cross a delay slot (the first component IS
    // someone's delay slot: npc_ != pc_+4) or a pause boundary; the
    // cycle watchdog stays batch-checked, so a fused pair may overrun
    // it by one instruction (documented in CpuOptions::threaded).

do_alubranch: {
    if (npc_ != pc_ + isa::InstBytes ||
        stats_.instructions + 2 > stop_at)
        RISC1_DISPATCH(static_cast<uint8_t>(rec->tag));
    const Instruction &ia = rec->inst;
    const AluOut out = execAlu(ia, rdv(ia.rs1), s2v(ia));
    applyScc(ia, out);
    wrv(ia.rd, out.value);
    RISC1_BOOKKEEP(inst_pc, ia.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    // Second component: the JMPR in the next slot.
    memory_.countInstFetches(1);
    const Instruction &ib = rec->inst2;
    ++stats_.branches;
    const bool taken = isa::condHolds(ib.cond(), flags_);
    if (taken)
        ++stats_.branchesTaken;
    RISC1_BOOKKEEP(inst_pc + isa::InstBytes, ib.op, rec->opClass2,
                   rec->cycles2, rec->nop2);
    RISC1_ADVANCE_JUMP(inst_pc + isa::InstBytes, taken, rec->fuseVal);
    prev = rec->fall;
    prev_pc = inst_pc + isa::InstBytes;
    rec = prev;
    inst_pc = prev_pc;
    RISC1_CHASE();
}

do_ldhiimm: {
    if (npc_ != pc_ + isa::InstBytes ||
        stats_.instructions + 2 > stop_at)
        RISC1_DISPATCH(static_cast<uint8_t>(rec->tag));
    const Instruction &ia = rec->inst;
    wrv(ia.rd, static_cast<uint32_t>(ia.imm19) << 13);
    RISC1_BOOKKEEP(inst_pc, ia.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    // Second component: the folded immediate op.
    memory_.countInstFetches(1);
    const Instruction &ib = rec->inst2;
    wrv(ib.rd, rec->fuseVal);
    RISC1_BOOKKEEP(inst_pc + isa::InstBytes, ib.op, rec->opClass2,
                   rec->cycles2, rec->nop2);
    RISC1_ADVANCE_SEQ(inst_pc + isa::InstBytes);
    prev = rec->fall;
    prev_pc = inst_pc + isa::InstBytes;
    rec = prev;
    inst_pc = prev_pc;
    RISC1_CHASE();
}

do_loaduse: {
    if (npc_ != pc_ + isa::InstBytes ||
        stats_.instructions + 2 > stop_at)
        RISC1_DISPATCH(static_cast<uint8_t>(rec->tag));
    const Instruction &ia = rec->inst;
    const uint32_t ea = rdv(ia.rs1) + s2v(ia);
    wrv(ia.rd, memory_.read32(ea)); // may fault: first component only
    RISC1_BOOKKEEP(inst_pc, ia.op, rec->opClass, rec->cycles, rec->nop);
    RISC1_ADVANCE_SEQ(inst_pc);
    // Second component: the consuming ALU op.
    memory_.countInstFetches(1);
    const Instruction &ib = rec->inst2;
    const AluOut out = execAlu(ib, rdv(ib.rs1), s2v(ib));
    applyScc(ib, out);
    wrv(ib.rd, out.value);
    RISC1_BOOKKEEP(inst_pc + isa::InstBytes, ib.op, rec->opClass2,
                   rec->cycles2, rec->nop2);
    RISC1_ADVANCE_SEQ(inst_pc + isa::InstBytes);
    prev = rec->fall;
    prev_pc = inst_pc + isa::InstBytes;
    rec = prev;
    inst_pc = prev_pc;
    RISC1_CHASE();
}

    // Superblocks: one dispatch executes a whole straight-line block
    // of pre-resolved micro-steps, then commits the per-block stat
    // deltas in a single epilogue. The prologue demotes this visit to
    // the plain head instruction when the head is a delay slot or the
    // whole block would cross a pause boundary (mirroring the pair
    // handlers). A block whose swallowed terminator jumps back to its
    // own head re-executes in place (the hot self-loop) and commits
    // all iterations at once; a block whose exit lands on another
    // compiled block chains straight into it, skipping the gate —
    // sound because interrupts and istream corruption are only armed
    // between run() slices, never mid-batch. A guest fault or a
    // self-modifying store inside the block reconstructs the exact
    // per-step machine state from the steps. The cycle watchdog stays
    // batch-checked, so a block (and the self-loop, whose iteration
    // budget folds the watchdog in) may overrun it by up to one
    // block's worth of instructions (documented in
    // CpuOptions::superblock).

do_superblock: {
    // Not const: a chained native run can end in a *different* block,
    // and the shared epilogue / fault / bail code below then describes
    // that one — the wrapper rebinds these on exit.
    SuperblockRecord *sbr = rec->sb;
    if (sbr == nullptr || npc_ != pc_ + isa::InstBytes ||
        stats_.instructions + sbr->count > stop_at) {
        chainSrc = nullptr;
        RISC1_DISPATCH(static_cast<uint8_t>(rec->tag));
    }
    DecodedOp *head_rec = rec;
    uint32_t head = inst_pc;
    uint32_t count = sbr->count;
    // Native dispatch needs no baked operands (physical indices are
    // burned into the per-window code), so the hot JIT path skips
    // bakeSbPhys entirely — on recursive workloads the window moves
    // on nearly every dispatch and re-baking is a per-step tax the
    // interpreted engine cannot avoid. The slow jitEntryFor path
    // bakes before compiling; the interpreted path bakes as before.
    const void *native = nullptr;
    if (jitOn_) {
        native = sbr->jitCode.empty() ? nullptr : sbr->jitCode[cwp_];
        if (native == nullptr)
            native = jitEntryFor(*sbr);
    }
    if (chainSrc != nullptr) {
        // Lazy backpatch on the first C++-observed traversal of this
        // edge: both sides are compiled now, so future traversals can
        // transfer natively without returning here.
        if (native != nullptr)
            tryChainPatch(*chainSrc, chainSrcTaken, *sbr);
        chainSrc = nullptr;
    }
    if (sbr->termWindow != 0 && native == nullptr) {
        // A window-terminated block's delay slot runs under a shifted
        // cwp only the per-window native code can bake; without it
        // (compile declined, arena full) this visit executes the head
        // through its plain handler, step-exact as ever.
        RISC1_DISPATCH(static_cast<uint8_t>(rec->tag));
    }
    if (native == nullptr && sbr->bakedCwp != cwp_)
        bakeSbPhys(*sbr); // window moved since formation: re-resolve
    const SbStep *steps = sbr->steps.data();
    bool t_taken = false;  // swallowed terminator: branch outcome
    uint32_t t_target = 0; // ... and its (pre-delay-slot) target
    uint64_t iters = 0;    // completed in-place executions
    uint64_t taken_cnt = 0;
    uint64_t max_iters = 0; // 0 = budget not computed yet
    uint32_t done = 0;
    bool chain_run = false; // this dispatch ran the chained native path
#ifdef RISC1_COMPUTED_GOTO
    // Step handlers indexed by SbStep::code (ExecTag order, then the
    // generic flag-producing ALU handler). Call/window/PSW tags can
    // never be baked into a step and land on the panic handler.
    static const void *const kSbStep[NumSbStepCodes] = {
        &&sb_s_add, &&sb_s_addc, &&sb_s_sub, &&sb_s_subc, &&sb_s_subr,
        &&sb_s_subcr, &&sb_s_and, &&sb_s_or, &&sb_s_xor, &&sb_s_sll,
        &&sb_s_srl, &&sb_s_sra,
        &&sb_s_ldl, &&sb_s_ldsu, &&sb_s_ldss, &&sb_s_ldbu, &&sb_s_ldbs,
        &&sb_s_stl, &&sb_s_sts, &&sb_s_stb,
        &&sb_s_jmp, &&sb_s_jmpr, &&sb_s_bad, &&sb_s_bad, &&sb_s_bad,
        &&sb_s_bad, &&sb_s_bad,
        &&sb_s_ldhi, &&sb_s_gtlpc, &&sb_s_getpsw, &&sb_s_bad,
        &&sb_s_bad,
        &&sb_s_alu_scc,
    };
#endif
    try {
        if (native != nullptr && jitChainOn_) {
            // Chained native path: the emitted code runs whole passes,
            // self-loops AND transfers directly into other compiled
            // blocks through patched exit slots, debiting the shared
            // instruction/cycle budgets per admitted pass — the exact
            // admission the interpreted engines' max_iters / chain
            // gates perform, so the run returns at the same
            // instruction-precise boundary. Per-exit statistics are
            // deferred into each record's scratch line and committed
            // here, once, at the true exit.
            chain_run = true;
            jit::SbJitExit &jctx = jitCtx_;
            jctx.lastPc = lastPc_;
            // The dispatch guard above ensured instructions + count
            // <= stop_at and the gate ensured cycles <= watchdog, so
            // the prologue's unconditional first-pass debit is the
            // admission the interpreter would grant.
            jctx.instBudget = stop_at - stats_.instructions;
            jctx.cycleBudget =
                watchdog != 0
                    ? static_cast<int64_t>(watchdog - stats_.cycles)
                    : INT64_MAX;
            jctx.curSb = sbr;
            jctx.chained = 0;
            jctx.dirtyCur = chainDirty_.data();
            jctx.dirtyEnd = chainDirty_.data() + chainDirty_.size();
            jctx.epiRing = chainEpis_.data();
            jctx.epiPos = 0;
            const uint32_t status = reinterpret_cast<jit::SbJitFn>(
                reinterpret_cast<uintptr_t>(native))(&jctx);
            if (jctx.chained != 0) {
                commit_chain_run();
                if (jctx.curSb != sbr) {
                    // The run ended in another block: everything the
                    // shared exit code reads now describes that one.
                    sbr = static_cast<SuperblockRecord *>(jctx.curSb);
                    head = sbr->headPc;
                    count = sbr->count;
                    steps = sbr->steps.data();
                    head_rec = dcache_.lookupMut(head);
                }
            }
            iters = jctx.iters;
            t_taken = jctx.tTaken != 0;
            t_target = jctx.tTarget;
            done = jctx.done;
            taken_cnt = status == jit::SbJitDone
                            ? (t_taken ? iters : iters - 1)
                            : iters;
            if (status == jit::SbJitFault)
                throw jitFault_; // stashed by the jit* memory helper
            if (status == jit::SbJitStoreBail)
                goto sb_text_store;
            goto sb_epilogue;
        }
        if (native != nullptr) {
            // Native path: the emitted code runs whole passes —
            // including the inlined self-loop — and returns at the
            // same instruction-precise boundaries the interpreter
            // reaches, so the shared epilogue / fault / bail code
            // below runs unchanged. The iteration budget is computed
            // as lazily as the interpreter's: the first call runs a
            // single pass, and only when that pass actually loops
            // back to its own head does the wrapper pay the two
            // divisions and re-enter with the remaining budget — the
            // common straight-through dispatch never divides. The
            // stats the budget reads are untouched until the
            // epilogue, so the values are identical. The persistent
            // context is reused rather than a fresh local: the struct
            // grew to 96 bytes for chain mode, and value-initializing
            // it per dispatch is a rep-stos the straight-through path
            // would pay on every block. Only the two input fields
            // matter — every exit path of the emitted code rewrites
            // iters/tTarget/tTaken before this wrapper reads them,
            // and `done` only on the fault/bail statuses that consume
            // it.
            jit::SbJitExit &jctx = jitCtx_;
            jctx.lastPc = lastPc_;
            jctx.maxIters = 1;
            uint64_t base_iters = 0; // passes from earlier re-entries
            uint32_t status;
            for (;;) {
                status = reinterpret_cast<jit::SbJitFn>(
                    reinterpret_cast<uintptr_t>(native))(&jctx);
                iters = base_iters + jctx.iters;
                t_taken = jctx.tTaken != 0;
                t_target = jctx.tTarget;
                done = jctx.done;
                if (status != jit::SbJitDone || !t_taken ||
                    t_target != head || !sbr->jitSelfLoop ||
                    !sbr->live)
                    break;
                if (max_iters == 0) {
                    max_iters =
                        (stop_at - stats_.instructions) / count;
                    if (watchdog != 0 && sbr->cycles != 0) {
                        const uint64_t wd_iters =
                            (watchdog - stats_.cycles) / sbr->cycles +
                            1;
                        if (wd_iters < max_iters)
                            max_iters = wd_iters;
                    }
                }
                if (iters >= max_iters)
                    break;
                base_iters = iters;
                jctx.maxIters = max_iters - iters;
                // Re-entry is the taken self-loop: the next pass's
                // Gtlpc sees the previous pass's delay slot.
                jctx.lastPc = head + (count - 1) * isa::InstBytes;
            }
            // Every completed pass but the last re-entered via the
            // taken self-loop; a fault / bail pass has no terminator
            // outcome of its own yet.
            taken_cnt = status == jit::SbJitDone
                            ? (t_taken ? iters : iters - 1)
                            : iters;
            if (status == jit::SbJitFault)
                throw jitFault_; // stashed by the jit* memory helper
            if (status == jit::SbJitStoreBail)
                goto sb_text_store;
            goto sb_epilogue;
        }
    sb_again:
#ifdef RISC1_COMPUTED_GOTO
        // Direct-threaded step execution: every handler ends with its
        // own indirect jump, so the predictor learns the block's fixed
        // step sequence per site — a shared-site switch mispredicts on
        // nearly every step of a mixed-tag block, which costs more
        // than the gate and bookkeeping the block dispatch saves.
        done = 0;
        goto *kSbStep[steps[0].code];

#define RISC1_SB_NEXT()                                                 \
  do {                                                                  \
      if (++done == count)                                              \
          goto sb_pass_done;                                            \
      goto *kSbStep[steps[done].code];                                  \
  } while (0)

// Branchless baked operand fetch (see SbStep).
#define RISC1_SB_OPERANDS()                                             \
  const SbStep &st = steps[done];                                       \
  const uint32_t a = regs_.readPhys(st.phys1) & st.mask1;               \
  const uint32_t b = (regs_.readPhys(st.phys2) & st.mask2) | st.immOr

// Flag-clearing ALU step: value only, no AluOut, no scc branch.
#define RISC1_SB_ALU_H(label, expr)                                     \
  label: {                                                              \
      RISC1_SB_OPERANDS();                                              \
      if (st.maskd != 0)                                                \
          regs_.writePhys(st.physd, (expr));                            \
      RISC1_SB_NEXT();                                                  \
  }

#define RISC1_SB_LOAD_H(label, expr)                                    \
  label: {                                                              \
      RISC1_SB_OPERANDS();                                              \
      const uint32_t v = (expr);                                        \
      if (st.maskd != 0)                                                \
          regs_.writePhys(st.physd, v);                                 \
      RISC1_SB_NEXT();                                                  \
  }

// A store into this very block's words demotes the record; the
// unexecuted tail is stale, so bail to the slow commit. A store as
// the final step has no tail — the epilogue stands (and the
// self-loop re-checks `live` before re-entering).
#define RISC1_SB_STORE_H(label, stmt)                                   \
  label: {                                                              \
      RISC1_SB_OPERANDS();                                              \
      const uint32_t v = regs_.readPhys(st.physd) & st.maskd;           \
      stmt;                                                             \
      if (done + 1 < count && !sbr->live)                               \
          goto sb_text_store;                                           \
      RISC1_SB_NEXT();                                                  \
  }

        RISC1_SB_ALU_H(sb_s_add, a + b)
        RISC1_SB_ALU_H(sb_s_addc, a + b + (flags_.c ? 1u : 0u))
        RISC1_SB_ALU_H(sb_s_sub, a - b)
        RISC1_SB_ALU_H(sb_s_subc, a + ~b + (flags_.c ? 1u : 0u))
        RISC1_SB_ALU_H(sb_s_subr, b - a)
        RISC1_SB_ALU_H(sb_s_subcr, b + ~a + (flags_.c ? 1u : 0u))
        RISC1_SB_ALU_H(sb_s_and, a & b)
        RISC1_SB_ALU_H(sb_s_or, a | b)
        RISC1_SB_ALU_H(sb_s_xor, a ^ b)
        RISC1_SB_ALU_H(sb_s_sll, a << (b & 31))
        RISC1_SB_ALU_H(sb_s_srl, a >> (b & 31))
        RISC1_SB_ALU_H(sb_s_sra,
                       static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                             (b & 31)))

    sb_s_alu_scc: {
        RISC1_SB_OPERANDS();
        const AluOut out = execAlu(st.inst, a, b);
        applyScc(st.inst, out);
        if (st.maskd != 0)
            regs_.writePhys(st.physd, out.value);
        RISC1_SB_NEXT();
    }

        RISC1_SB_LOAD_H(sb_s_ldl, memory_.read32(a + b))
        RISC1_SB_LOAD_H(sb_s_ldsu, memory_.read16(a + b))
        RISC1_SB_LOAD_H(sb_s_ldss,
                        static_cast<uint32_t>(static_cast<int32_t>(
                            static_cast<int16_t>(memory_.read16(a + b)))))
        RISC1_SB_LOAD_H(sb_s_ldbu, memory_.read8(a + b))
        RISC1_SB_LOAD_H(sb_s_ldbs,
                        static_cast<uint32_t>(static_cast<int32_t>(
                            static_cast<int8_t>(memory_.read8(a + b)))))

        RISC1_SB_STORE_H(sb_s_stl, memory_.write32(a + b, v))
        RISC1_SB_STORE_H(sb_s_sts,
                         memory_.write16(a + b,
                                         static_cast<uint16_t>(v)))
        RISC1_SB_STORE_H(sb_s_stb,
                         memory_.write8(a + b, static_cast<uint8_t>(v)))

    sb_s_ldhi: { // the baked immOr is the shifted constant
        const SbStep &st = steps[done];
        if (st.maskd != 0)
            regs_.writePhys(st.physd, st.immOr);
        RISC1_SB_NEXT();
    }

    sb_s_gtlpc: {
        // In-place iterations after the first see the previous
        // iteration's delay slot as the last retired PC.
        const SbStep &st = steps[done];
        const uint32_t v = done != 0
                               ? head + (done - 1) * isa::InstBytes
                           : iters != 0
                               ? head + (count - 1) * isa::InstBytes
                               : lastPc_;
        if (st.maskd != 0)
            regs_.writePhys(st.physd, v);
        RISC1_SB_NEXT();
    }

    sb_s_getpsw: {
        const SbStep &st = steps[done];
        uint32_t v = 0;
        v |= flags_.c ? 1u : 0;
        v |= flags_.v ? 2u : 0;
        v |= flags_.n ? 4u : 0;
        v |= flags_.z ? 8u : 0;
        v |= ie_ ? 16u : 0;
        v |= static_cast<uint32_t>(cwp_) << 8;
        if (st.maskd != 0)
            regs_.writePhys(st.physd, v);
        RISC1_SB_NEXT();
    }

    sb_s_jmp: {
        // Swallowed terminator (next step is its delay slot): latch
        // the outcome, apply it after the delay step.
        RISC1_SB_OPERANDS();
        t_target = a + b;
        t_taken = isa::condHolds(st.inst.cond(), flags_);
        RISC1_SB_NEXT();
    }

    sb_s_jmpr: {
        const SbStep &st = steps[done];
        t_target = head + done * isa::InstBytes +
                   static_cast<uint32_t>(st.immOr);
        t_taken = isa::condHolds(st.inst.cond(), flags_);
        RISC1_SB_NEXT();
    }

    sb_s_bad:
        panic("superblock: ineligible step tag %u at 0x%08x",
              static_cast<unsigned>(steps[done].tag),
              head + done * isa::InstBytes);

#undef RISC1_SB_STORE_H
#undef RISC1_SB_LOAD_H
#undef RISC1_SB_ALU_H
#undef RISC1_SB_OPERANDS
#undef RISC1_SB_NEXT

    sb_pass_done:;
#else
        for (done = 0; done < count; ++done) {
            const SbStep &st = steps[done];
            // Branchless baked operand fetch (see SbStep).
            const uint32_t a = regs_.readPhys(st.phys1) & st.mask1;
            const uint32_t b =
                (regs_.readPhys(st.phys2) & st.mask2) | st.immOr;
            uint32_t v;
            switch (st.tag) {
// Specialized ALU micro-steps: the dominant scc-clear form computes
// just the value; the scc form takes the full flag-producing path.
#define RISC1_SB_ALU(tagname, expr)                                     \
  case ExecTag::tagname: {                                              \
      if (st.inst.scc) {                                                \
          const AluOut out = execAlu(st.inst, a, b);                    \
          applyScc(st.inst, out);                                       \
          v = out.value;                                                \
      } else {                                                          \
          v = (expr);                                                   \
      }                                                                 \
      break;                                                            \
  }
              RISC1_SB_ALU(Add, a + b)
              RISC1_SB_ALU(Addc, a + b + (flags_.c ? 1u : 0u))
              RISC1_SB_ALU(Sub, a - b)
              RISC1_SB_ALU(Subc, a + ~b + (flags_.c ? 1u : 0u))
              RISC1_SB_ALU(Subr, b - a)
              RISC1_SB_ALU(Subcr, b + ~a + (flags_.c ? 1u : 0u))
              RISC1_SB_ALU(And, a & b)
              RISC1_SB_ALU(Or, a | b)
              RISC1_SB_ALU(Xor, a ^ b)
              RISC1_SB_ALU(Sll, a << (b & 31))
              RISC1_SB_ALU(Srl, a >> (b & 31))
              RISC1_SB_ALU(Sra, static_cast<uint32_t>(
                                    static_cast<int32_t>(a) >> (b & 31)))
#undef RISC1_SB_ALU
              case ExecTag::Ldl:
                v = memory_.read32(a + b);
                break;
              case ExecTag::Ldsu:
                v = memory_.read16(a + b);
                break;
              case ExecTag::Ldss:
                v = static_cast<uint32_t>(static_cast<int32_t>(
                    static_cast<int16_t>(memory_.read16(a + b))));
                break;
              case ExecTag::Ldbu:
                v = memory_.read8(a + b);
                break;
              case ExecTag::Ldbs:
                v = static_cast<uint32_t>(static_cast<int32_t>(
                    static_cast<int8_t>(memory_.read8(a + b))));
                break;
              case ExecTag::Stl:
              case ExecTag::Sts:
              case ExecTag::Stb: {
                const uint32_t val =
                    regs_.readPhys(st.physd) & st.maskd;
                if (st.tag == ExecTag::Stl)
                    memory_.write32(a + b, val);
                else if (st.tag == ExecTag::Sts)
                    memory_.write16(a + b,
                                    static_cast<uint16_t>(val));
                else
                    memory_.write8(a + b, static_cast<uint8_t>(val));
                // A store into this very block's words demotes the
                // record; the unexecuted tail is stale. A store as the
                // final step has no tail — the epilogue stands (and
                // the self-loop re-checks `live` before re-entering).
                if (done + 1 < count && !sbr->live)
                    goto sb_text_store;
                continue;
              }
              case ExecTag::Ldhi:
                v = b; // the baked immOr is the shifted constant
                break;
              case ExecTag::Gtlpc:
                // In-place iterations after the first see the previous
                // iteration's delay slot as the last retired PC.
                v = done != 0 ? head + (done - 1) * isa::InstBytes
                    : iters != 0
                        ? head + (count - 1) * isa::InstBytes
                        : lastPc_;
                break;
              case ExecTag::Getpsw:
                v = 0;
                v |= flags_.c ? 1u : 0;
                v |= flags_.v ? 2u : 0;
                v |= flags_.n ? 4u : 0;
                v |= flags_.z ? 8u : 0;
                v |= ie_ ? 16u : 0;
                v |= static_cast<uint32_t>(cwp_) << 8;
                break;
              case ExecTag::Jmp:
                // Swallowed terminator (next step is its delay slot):
                // latch the outcome, apply it after the delay step.
                t_target = a + b;
                t_taken = isa::condHolds(st.inst.cond(), flags_);
                continue;
              case ExecTag::Jmpr:
                t_target = head + done * isa::InstBytes + b;
                t_taken = isa::condHolds(st.inst.cond(), flags_);
                continue;
              default:
                panic("superblock: ineligible step tag %u at 0x%08x",
                      static_cast<unsigned>(st.tag),
                      head + done * isa::InstBytes);
            }
            if (st.maskd != 0)
                regs_.writePhys(st.physd, v);
        }
#endif
        ++iters;
        if (t_taken) {
            ++taken_cnt;
            if (t_target == head && sbr->live &&
                !(halt_on_zero && head == 0)) {
                // Hot self-loop: the terminator jumps back to this
                // very head. Re-execute in place and commit every
                // iteration at once — bounded so the batch stop and
                // the cycle watchdog keep their per-block precision.
                if (max_iters == 0) {
                    max_iters =
                        (stop_at - stats_.instructions) / count;
                    if (watchdog != 0 && sbr->cycles != 0) {
                        const uint64_t wd_iters =
                            (watchdog - stats_.cycles) / sbr->cycles +
                            1;
                        if (wd_iters < max_iters)
                            max_iters = wd_iters;
                    }
                }
                if (iters < max_iters)
                    goto sb_again;
            }
        }
    } catch (const SimFault &) {
        // Step `done` of iteration `iters` faulted before any of its
        // state was written: commit the completed iterations, then
        // the retired prefix [0, done) of the current one, rebuilding
        // the exact per-step machine state, and rethrow for runLoop /
        // trap delivery. The faulting instruction counts its fetch but
        // never retires, exactly as in the per-step engine (the gate
        // counted the head's fetch once). Only the delay slot can
        // fault after a swallowed jump (jumps themselves never fault),
        // so npc_ holds the latched outcome exactly when
        // done == count - 1 of a terminated block.
        if (iters != 0)
            commit_sb_iters(*sbr, head, iters, taken_cnt);
        commitSbPrefix(*sbr, head, done);
        if (sbr->hasTerm && sbr->termWindow == 0 &&
            done == count - 1) {
            ++stats_.branches;
            if (t_taken)
                ++stats_.branchesTaken;
        }
        memory_.countInstFetches(iters * count + done);
        if (done != 0)
            lastPc_ = head + (done - 1) * isa::InstBytes;
        else if (iters != 0)
            lastPc_ = head + (count - 1) * isa::InstBytes;
        else if (chain_run)
            // Entered via a chain stub and faulted on the very first
            // step: the last retired instruction is the source block's
            // final step, which the stub latched into the context (a
            // no-op when nothing chained — the wrapper seeded it from
            // lastPc_).
            lastPc_ = jitCtx_.lastPc;
        pc_ = head + done * isa::InstBytes;
        npc_ = sbr->hasTerm && done == count - 1 && t_taken
                   ? t_target
                   : pc_ + isa::InstBytes;
        throw;
    }
sb_epilogue:
    // Whole-block epilogue: the precomputed per-block deltas, scaled
    // by the self-loop iteration count (1 for a straight-through
    // dispatch).
    commit_sb_iters(*sbr, head, iters, taken_cnt);
    memory_.countInstFetches(iters * count - 1);
    lastPc_ = head + (count - 1) * isa::InstBytes;
    pc0 = (sbr->hasTerm && t_taken) ? t_target
                                    : head + count * isa::InstBytes;
    pc_ = pc0;
    npc_ = pc0 + isa::InstBytes;
    if (halt_on_zero && pc0 == 0) {
        halted_ = true; // jump to zero: the halt convention
        return;
    }
    // Two-way one-entry exit cache (taken / sequential direction);
    // gate re-validates the record, so a stale pointer self-heals.
    prev = nullptr;
    if (sbr->hasTerm && t_taken) {
        if (sbr->exitTaken != nullptr && sbr->exitTakenPc == pc0) {
            rec = sbr->exitTaken;
        } else {
            rec = dcache_.lookupMut(pc0);
            sbr->exitTaken = rec;
            sbr->exitTakenPc = pc0;
            if (rec != nullptr && rec->valid())
                mark_sb_candidate(*rec); // jump target: a block head
        }
    } else {
        if (sbr->exitFall != nullptr && sbr->exitFallPc == pc0) {
            rec = sbr->exitFall;
        } else {
            rec = dcache_.lookupMut(pc0);
            sbr->exitFall = rec;
            sbr->exitFallPc = pc0;
            if (sbr->hasTerm && rec != nullptr && rec->valid())
                mark_sb_candidate(*rec); // fall-through past a jump
        }
    }
    if (rec != nullptr && rec->dcode == DispSuperblock &&
        stats_.instructions < stop_at &&
        (watchdog == 0 || stats_.cycles <= watchdog)) {
        // Block chaining: dispatch the next compiled block directly.
        // The gate's rail conditions can't change mid-batch (halted
        // and interrupts were checked before this block; istream
        // corruption arms only between runs), so only the two budget
        // checks above are live; account the head fetch the gate
        // would have counted.
        memory_.countInstFetches(1);
        ++stats_.sbChained;
        sbr->chain.unchained = 0;
        if (jitChainOn_) {
            // Arm the lazy backpatch: once the successor resolves its
            // native entry, this edge is patched for direct transfer.
            chainSrc = sbr;
            chainSrcTaken = sbr->hasTerm && t_taken;
        }
        inst_pc = pc_;
        prev_pc = pc_;
        goto do_superblock;
    }
    // Adaptive retirement: a short block that keeps exiting without
    // chaining or self-looping is not earning its epilogue (recursive
    // code is full of two-step fragments between call boundaries);
    // send its head back to plain dispatch for good. Window-terminated
    // blocks are exempt: each native pass replaces two dispatches plus
    // a virtual window push/pop, a win regardless of chaining.
    if (count <= 3 && iters == 1 && sbr->termWindow == 0 &&
        ++sbr->chain.unchained > SbUnchainedLimit &&
        head_rec != nullptr) {
        head_rec->dcode = plainOrPairDcode(*head_rec);
        head_rec->sbReject = true;
        dcache_.notifyRetired(*sbr); // release its arena accounting
    }
    goto gate;

sb_text_store:
    // The store at step `done` overwrote a word of this very block
    // (demoting the record — its storage stays allocated): steps
    // [0, done] of the current iteration retired, but the
    // not-yet-executed tail is stale. Commit the completed iterations
    // and the retired prefix, then re-enter the gate for a fresh
    // lookup at the next PC. The bailing store is never the final
    // step, so the next PC is always sequential.
    ++done;
    if (iters != 0)
        commit_sb_iters(*sbr, head, iters, taken_cnt);
    commitSbPrefix(*sbr, head, done);
    memory_.countInstFetches(iters * count + done - 1);
    lastPc_ = head + (done - 1) * isa::InstBytes;
    pc_ = head + done * isa::InstBytes;
    // One exception to "the bailing store is never the final step": a
    // window push whose *spill* stores demoted this block bails at
    // the retired CALL itself, leaving the delayed transfer pending —
    // the delay slot (fetched fresh at the gate) falls through to the
    // latched callee.
    npc_ = sbr->termWindow != 0 && done == count - 1
               ? t_target
               : pc_ + isa::InstBytes;
    rec = nullptr;
    prev = nullptr;
    goto gate;
}

do_sbform: {
    // Formation-pending head: compile the block (or restore the pair /
    // plain code when it comes out too short), then dispatch this
    // visit through the resulting code.
    formSuperblock(*rec, inst_pc);
    RISC1_DISPATCH(rec->dcode);
}

do_invalid:
    panic("threadedBatch: invalid dispatch code at pc 0x%08x", inst_pc);
}

#undef RISC1_DISPATCH
#undef RISC1_BOOKKEEP
#undef RISC1_ADVANCE_SEQ
#undef RISC1_ADVANCE_JUMP
#undef RISC1_CHASE

} // namespace risc1::sim
