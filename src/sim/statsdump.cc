#include "sim/statsdump.hh"

#include "support/logging.hh"

namespace risc1::sim {

std::string
statsLine(const std::string &prefix, const char *name, double value,
          const char *comment)
{
    std::string full = prefix + "." + name;
    // Integral values print without a fraction.
    std::string val = value == static_cast<uint64_t>(value)
                          ? strprintf("%llu",
                                      static_cast<unsigned long long>(
                                          value))
                          : strprintf("%.4f", value);
    return strprintf("%-40s %16s  # %s\n", full.c_str(), val.c_str(),
                     comment);
}

namespace {
constexpr auto line = statsLine;
} // namespace

std::string
formatStats(const SimStats &s, const std::string &prefix)
{
    std::string out;
    auto u64 = [](uint64_t v) { return static_cast<double>(v); };
    out += line(prefix, "instructions", u64(s.instructions),
                "committed instructions");
    out += line(prefix, "cycles", u64(s.cycles), "machine cycles");
    out += line(prefix, "cpi", s.cpi(), "cycles per instruction");
    out += line(prefix, "alu_insts",
                u64(s.classCount(isa::OpClass::Alu)),
                "arithmetic/logical/shift");
    out += line(prefix, "loads", u64(s.classCount(isa::OpClass::Load)),
                "memory reads");
    out += line(prefix, "stores",
                u64(s.classCount(isa::OpClass::Store)),
                "memory writes");
    out += line(prefix, "branches", u64(s.branches),
                "conditional + unconditional jumps");
    out += line(prefix, "branches_taken", u64(s.branchesTaken),
                "jumps that redirected the PC");
    out += line(prefix, "nops_executed", u64(s.nopsExecuted),
                "canonical NOPs (mostly unfilled slots)");
    out += line(prefix, "calls", u64(s.calls), "window pushes");
    out += line(prefix, "returns", u64(s.returns), "window pops");
    out += line(prefix, "interrupts_taken", u64(s.interruptsTaken),
                "external interrupts serviced");
    out += line(prefix, "max_call_depth", u64(s.maxCallDepth),
                "deepest procedure nesting");
    out += line(prefix, "window_overflows", u64(s.windowOverflows),
                "spill traps");
    out += line(prefix, "window_underflows", u64(s.windowUnderflows),
                "refill traps");
    out += line(prefix, "overflow_rate", s.overflowRate(),
                "overflows / calls");
    out += line(prefix, "spill_words", u64(s.spillWords),
                "registers written to the save stack");
    out += line(prefix, "refill_words", u64(s.refillWords),
                "registers read back from the save stack");
    out += line(prefix, "mem_inst_fetches", u64(s.memory.instFetches),
                "instruction-word fetches");
    out += line(prefix, "mem_data_reads", u64(s.memory.dataReads),
                "data-memory read accesses");
    out += line(prefix, "mem_data_writes", u64(s.memory.dataWrites),
                "data-memory write accesses");
    out += line(prefix, "mem_data_read_bytes",
                u64(s.memory.dataReadBytes), "bytes read");
    out += line(prefix, "mem_data_write_bytes",
                u64(s.memory.dataWriteBytes), "bytes written");
    return out;
}

} // namespace risc1::sim
