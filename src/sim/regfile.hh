/**
 * @file
 * The overlapped-window register file (the paper's central mechanism).
 * Pure storage plus the visible-to-physical mapping; window push/pop
 * policy (overflow/underflow) lives in the Cpu.
 */

#ifndef RISC1_SIM_REGFILE_HH
#define RISC1_SIM_REGFILE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "isa/registers.hh"
#include "support/logging.hh"

namespace risc1::sim {

/** Physical register bank with windowed access. */
class RegisterFile
{
  public:
    explicit RegisterFile(isa::WindowSpec spec)
        : spec_(spec), regs_(spec.physCount(), 0)
    {}

    const isa::WindowSpec &spec() const { return spec_; }

    /** Read visible register `reg` of window `cwp`; r0 reads zero. */
    uint32_t
    read(unsigned cwp, unsigned reg) const
    {
        if (reg == isa::ZeroReg)
            return 0;
        return regs_[spec_.physIndex(cwp, reg)];
    }

    /** Write visible register `reg` of window `cwp`; r0 is immutable. */
    void
    write(unsigned cwp, unsigned reg, uint32_t value)
    {
        if (reg == isa::ZeroReg)
            return;
        regs_[spec_.physIndex(cwp, reg)] = value;
    }

    /** Physical slot of window `w`'s fresh bank (LOW+LOCAL), 0..15. */
    unsigned
    bankPhys(unsigned window, unsigned slot) const
    {
        return isa::NumGlobals +
               (window * isa::RegsPerWindow + slot) %
                   (spec_.numWindows * isa::RegsPerWindow);
    }

    /**
     * Physical slot `slot` (0..15) of the spill unit of the frame at
     * `window`: its 10 LOCAL registers plus its 6 HIGH registers. The
     * HIGH side physically lives in the next window's LOW bank; it is
     * shared only with the frame's *caller* — which is already
     * non-resident whenever this frame is spilled — so saving and
     * restoring this set never touches registers a resident frame is
     * using. (The frame's LOW registers are shared with its resident
     * callee and therefore must NOT be part of the spill unit; this is
     * the same locals+ins choice SPARC's window traps make.)
     */
    unsigned
    frameSlotPhys(unsigned window, unsigned slot) const
    {
        constexpr unsigned num_locals = isa::HighBase - isa::LocalBase;
        constexpr unsigned local_off = isa::LocalBase - isa::LowBase;
        if (slot < num_locals) // LOCAL registers, bank slots 6..15
            return bankPhys(window, local_off + slot);
        return bankPhys((window + 1) % spec_.numWindows,
                        slot - num_locals);
    }

    uint32_t readPhys(unsigned phys) const { return regs_[phys]; }
    void writePhys(unsigned phys, uint32_t value) { regs_[phys] = value; }

    /**
     * Raw physical bank, for the template JIT to burn into emitted
     * code. Stable for the file's lifetime: the vector is sized at
     * construction and never reallocated (clear/restore fill in
     * place).
     */
    uint32_t *physData() { return regs_.data(); }

    /** Zero every register (program load). */
    void
    clear()
    {
        std::fill(regs_.begin(), regs_.end(), 0);
    }

    /** Full physical contents (checkpointing). */
    const std::vector<uint32_t> &dump() const { return regs_; }

    /** Restore physical contents (sizes must match). */
    void
    restore(const std::vector<uint32_t> &regs)
    {
        if (regs.size() != regs_.size())
            panic("RegisterFile::restore: size mismatch");
        regs_ = regs;
    }

  private:
    isa::WindowSpec spec_;
    std::vector<uint32_t> regs_;
};

} // namespace risc1::sim

#endif // RISC1_SIM_REGFILE_HH
