/**
 * @file
 * The predecode fast path: program text is decoded once into dense
 * DecodedOp records and Cpu::run() dispatches on the resolved tag
 * instead of re-decoding the 32-bit word every step — the software
 * analogue of a pipelined instruction fetch. The cache registers as a
 * Memory::WriteObserver so self-modifying stores (and fault-injection
 * pokes) invalidate the slots they overlap; a min/max range filter
 * over the cached text pages makes data and stack writes cost one
 * comparison.
 *
 * On top of the records sits the threaded-code engine (Cpu::
 * runThreaded): each record carries direct successor pointers — the
 * fall-through slot and a one-entry taken-transfer cache — so
 * steady-state execution chases record pointers instead of hashing
 * the PC, plus a peephole fuser that collapses common RISC I pairs
 * (compare + delayed branch, LDHI + immediate op, load + use) into
 * single superinstruction records. Slot storage is address-stable
 * (lines live behind unique_ptr and invalidation overwrites slots in
 * place), which is what makes raw successor pointers safe: a stale
 * pointer always lands on the slot for the same address, and validity
 * is re-checked through the dispatch code. See docs/PERFORMANCE.md.
 */

#ifndef RISC1_SIM_DECODE_HH
#define RISC1_SIM_DECODE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"
#include "sim/memory.hh"
#include "sim/stats.hh"

namespace risc1::sim {

/**
 * Dense dispatch tag, one value per architected instruction in opcode
 * order. Unlike isa::Opcode (a sparse 7-bit encoding), the tag range
 * is contiguous so the execute switch compiles to a dense jump table.
 */
enum class ExecTag : uint8_t
{
    Add, Addc, Sub, Subc, Subr, Subcr, And, Or, Xor, Sll, Srl, Sra,
    Ldl, Ldsu, Ldss, Ldbu, Ldbs, Stl, Sts, Stb,
    Jmp, Jmpr, Call, Callr, Ret, Callint, Retint,
    Ldhi, Gtlpc, Getpsw, Putpsw,
    Invalid, //!< unfilled cache slot
};

/** Number of ExecTag values (Invalid included). */
constexpr unsigned NumExecTags =
    static_cast<unsigned>(ExecTag::Invalid) + 1;

/**
 * Dispatch codes of the threaded engine: the plain ExecTag range
 * followed by one code per superinstruction kind and the two
 * superblock codes. DecodedOp::dcode holds the record's current code;
 * fusing a pair (or compiling a basic block) upgrades the first
 * record's code, invalidating any covered instruction demotes it back.
 */
constexpr uint8_t DispAluBranch = NumExecTags;     //!< ALU + JMPR pair
constexpr uint8_t DispLdhiImm = NumExecTags + 1;   //!< LDHI + ALU-imm
constexpr uint8_t DispLoadUse = NumExecTags + 2;   //!< LDL + ALU pair
/** Head of a compiled superblock (DecodedOp::sb holds the record). */
constexpr uint8_t DispSuperblock = NumExecTags + 3;
/** Superblock formation pending: compile on next dispatch. */
constexpr uint8_t DispSbForm = NumExecTags + 4;
constexpr unsigned NumDispatchCodes = NumExecTags + 5;

/**
 * Superblock step dispatch codes: the ExecTag range (where the twelve
 * ALU tags select flag-clearing specializations), plus one generic
 * flag-producing handler every scc-setting ALU step is baked to. Each
 * step handler ends with its own indirect jump through this code, so
 * the branch predictor learns a block's fixed step sequence per
 * dispatch site instead of sharing (and thrashing) a single switch.
 */
constexpr uint8_t SbSccAluCode = NumExecTags;
constexpr unsigned NumSbStepCodes = NumExecTags + 1;

/**
 * True for tags that may live in the interior of a superblock:
 * straight-line, cwp-preserving, interrupt-state-preserving
 * instructions. Control transfers, CALLINT/RETINT and PUTPSW (which
 * can re-enable interrupts mid-stream) terminate a block so the
 * per-dispatch gate keeps its exact per-instruction semantics at
 * every point where they could matter.
 */
constexpr bool
sbInteriorEligible(ExecTag tag)
{
    return tag <= ExecTag::Stb || tag == ExecTag::Ldhi ||
           tag == ExecTag::Gtlpc || tag == ExecTag::Getpsw;
}

/**
 * True for transfers a superblock may swallow as its terminator (along
 * with their delay slot): plain jumps never trap and never touch the
 * window, so the whole delayed-branch sequence can retire inside one
 * dispatch. CALL/RET and the interrupt transfers spill/refill windows
 * (trap-capable) and stay outside interpreted blocks — but see
 * sbWindowTermEligible for the native engine's extension.
 */
constexpr bool
sbTermEligible(ExecTag tag)
{
    return tag == ExecTag::Jmp || tag == ExecTag::Jmpr;
}

/**
 * True for the window transfers the *JIT* engine may additionally
 * swallow as a block terminator: CALL/CALLR/RET move the register
 * window, so the block's delay slot executes under a different
 * cwp than its interior — only the per-window native code (which
 * bakes the delay step against the shifted window's register map)
 * can honour that, so formation accepts these terminators only when
 * the JIT is on, and such blocks never take the interpreted step
 * path. CALLINT/RETINT also flip the interrupt-enable bit and stay
 * out of blocks entirely.
 */
constexpr bool
sbWindowTermEligible(ExecTag tag)
{
    return tag == ExecTag::Call || tag == ExecTag::Callr ||
           tag == ExecTag::Ret;
}

/** True for tags that may head a superblock. */
constexpr bool
sbHeadEligible(ExecTag tag)
{
    return sbInteriorEligible(tag) || sbTermEligible(tag);
}

/** True for the control-transfer tags (JMP..RETINT). */
constexpr bool
isTransferTag(ExecTag tag)
{
    return tag >= ExecTag::Jmp && tag <= ExecTag::Retint;
}

/** Dispatch tag for an architected opcode. */
ExecTag execTagFor(isa::Opcode op);

/** Superinstruction kind of a fused record. */
enum class FuseKind : uint8_t
{
    None,
    AluBranch, //!< any ALU op + conditional/unconditional JMPR
    LdhiImm,   //!< LDHI + non-scc ADD/OR immediate: constant folded
    LoadUse,   //!< LDL + any ALU op (the classic load/use pair)
};

struct SuperblockRecord;

/**
 * One predecoded instruction: the fully decoded fields (opcode, scc,
 * operand indices, sign-extended immediates) plus everything the
 * execute loop would otherwise recompute per step, the threaded-code
 * successor pointers, and — for a fused pair — a copy of the second
 * component.
 *
 * Successor pointers reference other cache slots by address; they stay
 * meaningful across slot invalidation/re-insertion because a slot's
 * address never changes and always corresponds to the same PC. They
 * only dangle after invalidateAll(), which frees the lines — callers
 * must drop chased pointers across load()/restore().
 */
struct DecodedOp
{
    isa::Instruction inst;               //!< decoded fields
    ExecTag tag = ExecTag::Invalid;      //!< resolved dispatch tag
    isa::OpClass opClass = isa::OpClass::Alu; //!< cached class (stats)
    bool nop = false;                    //!< canonical NOP (stats)
    /** Threaded dispatch code: tag, or a Disp* superinstruction code. */
    uint8_t dcode = static_cast<uint8_t>(ExecTag::Invalid);
    /** Cycle cost of this instruction, stamped from the Cpu's timing
     *  model at insert time (avoids the per-step class switch). */
    uint32_t cycles = 1;

    // Fused pair: the second component, copied into this record so the
    // superinstruction handler never touches the second slot. A store
    // into the second word demotes this record back to dcode == tag.
    FuseKind fuse = FuseKind::None;
    isa::Instruction inst2;
    isa::OpClass opClass2 = isa::OpClass::Alu;
    bool nop2 = false;
    uint32_t cycles2 = 0;
    /** AluBranch: precomputed taken target; LdhiImm: folded constant. */
    uint32_t fuseVal = 0;

    // Threaded-code successors (bound lazily by the dispatch loop).
    DecodedOp *fall = nullptr; //!< slot of pc + 4
    DecodedOp *jt = nullptr;   //!< slot of the last taken-transfer pc
    uint32_t jtPc = 0;         //!< pc `jt` was bound for

    /** Compiled block headed here (dcode == DispSuperblock only). */
    SuperblockRecord *sb = nullptr;
    /** Formation at this head was tried and found not worth it; don't
     *  mark it as a candidate again (re-walking the block on every
     *  non-sequential entry costs an allocation per visit). A store
     *  clearing the slot re-decodes it with a fresh verdict. */
    bool sbReject = false;

    bool valid() const { return tag != ExecTag::Invalid; }
};

/** Build the predecoded record for a decoded instruction. */
DecodedOp makeDecodedOp(const isa::Instruction &inst);

/** Maximum number of instructions compiled into one superblock. */
constexpr unsigned MaxSuperblockLen = 64;

/**
 * A short block (three steps or fewer) only pays for its epilogue when
 * it self-loops or chains straight into another compiled block, as the
 * fragments around a hot loop's conditional exits do. One that keeps
 * exiting to plain dispatch — typically a fragment between two call
 * boundaries in recursive code — costs more than it saves, so after
 * this many consecutive unchained exits its head retires to plain
 * dispatch for good.
 */
constexpr uint32_t SbUnchainedLimit = 32;

/**
 * One pre-resolved micro-step of a superblock. The hot fields bake the
 * operand fetch down to two masked array loads and no branches:
 *
 *     a = phys[phys1] & mask1
 *     b = (phys[phys2] & mask2) | immOr
 *
 * mask1/mask2 are all-ones for a register operand and zero for the
 * hardwired zero register or a folded immediate (phys then points at
 * slot 0, read and discarded — the mask keeps the read architectural
 * even when fault injection corrupts the zero register's storage).
 * immOr folds every immediate form: sign-extended simm13, imm19 << 13
 * (LDHI), or the raw imm19 displacement (JMPR terminator). maskd
 * doubles as the write-back predicate; for stores it masks the value
 * read from rd instead.
 *
 * phys1/phys2/physd are physical indices under the window the block
 * was baked for (SuperblockRecord::bakedCwp). No block-eligible tag
 * moves the window, so they stay valid across a whole dispatch; a
 * dispatch under a different window re-bakes them first — three
 * stores per step, proportional to block length.
 */
struct SbStep
{
    uint16_t phys1 = 0; //!< physical index of rs1 (0 when masked)
    uint16_t phys2 = 0; //!< physical index of rs2 (0 when masked)
    uint16_t physd = 0; //!< physical index of rd (0 when masked)
    uint32_t mask1 = 0; //!< all-ones iff rs1 is a live register
    uint32_t mask2 = 0; //!< all-ones iff rs2 is a live register
    uint32_t maskd = 0; //!< all-ones iff rd is written (read: stores)
    uint32_t immOr = 0; //!< folded immediate, OR-ed into operand b
    ExecTag tag = ExecTag::Invalid; //!< dispatch tag of this step
    uint8_t code = 0; //!< step dispatch code (see SbSccAluCode)
    isa::OpClass cls = isa::OpClass::Alu;
    bool nop = false;
    uint32_t cycles = 1;
    isa::Instruction inst; //!< decoded fields (slow paths, re-baking)
};

/**
 * Per-record scratch cache line the native chain stubs write through
 * (src/jit). Deferred-commit state: when compiled blocks transfer to
 * each other directly, per-exit statistics are NOT committed — the
 * stub flushes the pass count into `pendingIters`/`pendingTaken` and
 * marks the record dirty; the C++ wrapper drains every dirty record
 * once at the true exit. MUST be the first member of SuperblockRecord
 * so a record pointer doubles as the scratch pointer with disp8
 * addressing in the emitted code (static_asserts in sbcompile.cc pin
 * the offsets).
 */
struct SbChainScratch
{
    /** Whole-block passes retired natively since the last commit. */
    uint64_t pendingIters = 0;
    /** Taken terminator exits among those passes (non-term blocks
     *  chain through the fall stub, which adds `iters - 1` here and
     *  the epilogue accounts the final not-taken exit). */
    uint64_t pendingTaken = 0;
    /** Consecutive exits of a short block that neither chained into
     *  another block nor self-looped (see SbUnchainedLimit). Zeroed
     *  natively by every chain stub so adaptive retirement timing is
     *  byte-identical to the C++ chain path. */
    uint32_t unchained = 0;
    /** Record is on the wrapper's dirty list awaiting commit. */
    uint8_t dirty = 0;
};

/**
 * One compiled superblock: a dense array of pre-resolved micro-steps
 * from the head through the first control transfer, executed by a
 * single dispatch with one bookkeeping epilogue. When the transfer is
 * a plain jump (sbTermEligible) the block swallows it and its delay
 * slot — the last two steps — and the epilogue applies the delayed
 * branch, so a loop back-edge costs no extra gate passes. The
 * per-block stat deltas are precomputed (sparse, inline — no pointer
 * chase in the epilogue); a guest fault or self-modifying store inside
 * the block reconstructs the exact partial state from `steps`.
 *
 * Records are owned by the DecodedCache and stay allocated until
 * invalidateAll(): demotion only marks them dead and recycles them
 * through a free list at the next formation, so a record can never
 * disappear under the dispatch that is executing it.
 */
struct SuperblockRecord
{
    /** Native chain scratch — first member by contract (see above). */
    SbChainScratch chain;
    uint32_t headPc = 0;
    uint32_t count = 0;   //!< number of steps (instructions retired)
    uint64_t cycles = 0;  //!< summed cycle cost of all steps
    uint32_t nops = 0;    //!< canonical NOPs among the steps
    /** Last two steps are a swallowed jump + its delay slot. */
    bool hasTerm = false;
    /** Swallowed *window* terminator (JIT-only blocks): 0 = none,
     *  1 = CALL/CALLR (window push), 2 = RET (window pop). The delay
     *  slot executes under the shifted window, so these blocks only
     *  ever run natively — the dispatch falls back to the plain
     *  handler when no native code is available. */
    uint8_t termWindow = 0;
    bool live = true;     //!< false once demoted (awaiting reuse)
    uint8_t bakedCwp = 0; //!< window the step phys indices are for
    uint8_t nClasses = 0;
    uint8_t nOps = 0;
    /** Sparse per-class counts: (OpClass index, count). */
    std::array<std::pair<uint8_t, uint8_t>, NumOpClasses> classDelta{};
    /** Sparse per-opcode counts, insertion order (deterministic). */
    std::array<std::pair<uint8_t, uint8_t>, 32> opCounts{};
    std::vector<SbStep> steps;
    /** One-entry exit caches: the slot last dispatched after the
     *  block for the taken / not-taken (or sequential) direction. */
    DecodedOp *exitTaken = nullptr;
    uint32_t exitTakenPc = 0;
    DecodedOp *exitFall = nullptr;
    uint32_t exitFallPc = 0;

    // --- template JIT (CpuOptions::jit, src/jit) ---------------------
    /** Native entry per register window (steps are baked per cwp),
     *  compiled lazily on dispatch; empty until the JIT engine runs. */
    std::vector<const void *> jitCode;
    /** Per-window chain metadata, parallel to jitCode (empty, or one
     *  entry per window). chainEntry is the mid-function label a
     *  chain stub jumps to (prologue and budget debit already done by
     *  the stub); the slot offsets locate this variant's patchable
     *  taken/fallthrough exit stubs inside the arena. */
    struct SbJitVariant
    {
        const void *chainEntry = nullptr;
        uint32_t takenSlot = 0;  //!< arena offset, 0 = no slot
        uint32_t fallSlot = 0;   //!< arena offset, 0 = no slot
        /** Linked taken targets (the two-way inline cache): entry
         *  count in takenPatched, the records in takenDst. The arena
         *  zeroes takenPatched when it unlinks the slot. */
        uint8_t takenPatched = 0;
        uint8_t fallPatched = 0;
        void *takenDst[2] = {nullptr, nullptr};
    };
    std::vector<SbJitVariant> jitMeta;
    /** Installed native bytes across all windows (arena accounting
     *  when the block retires). */
    uint32_t jitBytes = 0;
    /** Compilation declined for this block (unsupported step, arena
     *  exhausted): don't retry on every dispatch. */
    bool jitReject = false;
    /** The emitted code contains the inlined self-loop, so dispatch
     *  must compute the iteration budget (skipping two 64-bit
     *  divisions per dispatch for the straight-through majority). */
    bool jitSelfLoop = false;
};

/**
 * Maps instruction addresses to DecodedOp records, one page-sized line
 * of slots per touched text page. A write invalidates exactly the
 * slots it overlaps; writes outside the [minPage_, maxPage_] band of
 * cached text pages — i.e. ordinary data and stack traffic — are
 * rejected by two comparisons before any hash lookup, so the observer
 * is cheap enough to sit on the store path.
 */
class DecodedCache : public Memory::WriteObserver
{
  public:
    static constexpr unsigned OpsPerPage = Memory::PageSize /
                                           isa::InstBytes;

    /**
     * Predecoded record at `addr`, or nullptr on a miss (including
     * misaligned addresses, which must take the slow path so the
     * fetch raises its misalignment fault).
     */
    const DecodedOp *
    lookup(uint32_t addr)
    {
        DecodedOp *op = lookupMut(addr);
        return (op != nullptr && op->valid()) ? op : nullptr;
    }

    /**
     * Resident slot for `addr` whether or not it currently holds a
     * valid record, or nullptr when the address is misaligned or its
     * line does not exist. The threaded engine binds successor
     * pointers to these slots.
     */
    DecodedOp *
    lookupMut(uint32_t addr)
    {
        if (addr % isa::InstBytes != 0)
            return nullptr;
        const uint32_t page = addr >> Memory::PageBits;
        if (page != lastPage_) {
            auto it = lines_.find(page);
            if (it == lines_.end())
                return nullptr;
            lastPage_ = page;
            lastLine_ = it->second.get();
        }
        return &lastLine_->slots[(addr & (Memory::PageSize - 1)) /
                                 isa::InstBytes];
    }

    /**
     * Store the record for `addr` (which must be word-aligned) and
     * return its address-stable slot.
     */
    DecodedOp *insert(uint32_t addr, const DecodedOp &op);

    /** Drop everything (program load, snapshot restore). */
    void invalidateAll();

    void
    onMemoryWrite(uint32_t addr, unsigned bytes) override
    {
        const uint32_t first = addr >> Memory::PageBits;
        const uint32_t last = (addr + bytes - 1) >> Memory::PageBits;
        if ((first > maxPage_ || last < minPage_) &&
            (addr > blockMax_ || addr + bytes - 1 < blockMin_))
            return; // outside cached text pages and every block
        invalidateSlots(addr, bytes);
    }

    /** Number of resident predecoded lines (tests). */
    size_t residentLines() const { return lines_.size(); }

    /** Current write-filter band (tests): [bandMinPage, bandMaxPage]. */
    uint32_t bandMinPage() const { return minPage_; }
    uint32_t bandMaxPage() const { return maxPage_; }

    // --- superblock records (see SuperblockRecord) -------------------

    /**
     * Generation counter bumped by every write that reached cached
     * text (i.e. passed the band filter and invalidated slots) —
     * a diagnostic / test hook. The superblock dispatch itself checks
     * the finer-grained SuperblockRecord::live flag after each store,
     * which only a write overlapping that block clears, so data stores
     * sharing a page with text stay on the fast path.
     */
    uint64_t writeGen() const { return writeGen_; }

    /**
     * A fresh (or recycled demoted) SuperblockRecord, owned by the
     * cache. The caller fills it and installs it via registerBlock().
     */
    SuperblockRecord *newBlock();

    /** Index a filled record under its head for demotion scanning. */
    void registerBlock(SuperblockRecord *sb);

    /** Blocks compiled / demoted since the last invalidateAll(). */
    uint64_t blocksFormed() const { return sbFormed_; }
    uint64_t blocksDemoted() const { return sbDemoted_; }

    /**
     * Retirement hook: invoked with every block that leaves the live
     * set (store demotion here, adaptive retirement in the engine).
     * The JIT engine uses it to account the block's dead native code
     * back to its arena; the record itself stays allocated as usual.
     */
    using RetireHook = std::function<void(SuperblockRecord &)>;
    void setRetireHook(RetireHook hook) { retireHook_ = std::move(hook); }
    /** Run the retirement hook for `sb` (idempotent per block). */
    void
    notifyRetired(SuperblockRecord &sb)
    {
        if (retireHook_ && (sb.jitBytes != 0 || !sb.jitCode.empty()))
            retireHook_(sb);
    }

  private:
    /** One page of slots plus the count of currently valid records. */
    struct Line
    {
        Line() : slots(OpsPerPage) {}
        std::vector<DecodedOp> slots;
        unsigned validCount = 0;
    };

    /** Clear the slots overlapped by a write that passed the filter. */
    void invalidateSlots(uint32_t addr, unsigned bytes);

    /**
     * Demote the record at `addr` to its plain dispatch code if it is
     * fused — its second component (the word at addr + 4) changed.
     */
    void defuseAt(uint32_t addr);

    /** Demote every live block overlapping [first, last] (bytes). */
    void demoteBlocksOver(uint32_t first, uint32_t last);

    /**
     * Recompute [minPage_, maxPage_] over the lines that still hold
     * valid records. Called when a line's validCount drops to zero, so
     * a workload whose text is progressively overwritten stops paying
     * hash lookups for data stores. The dead line itself must stay
     * allocated: successor pointers from other slots reference its
     * slots by address.
     */
    void rebuildBand();

    std::unordered_map<uint32_t, std::unique_ptr<Line>> lines_;
    // One-entry accelerator: straight-line fetch stays on one page.
    uint32_t lastPage_ = UINT32_MAX;
    Line *lastLine_ = nullptr;
    // Range filter: every valid slot lies in [minPage_, maxPage_];
    // grown on insert, rebuilt when a line loses its last valid slot,
    // reset by invalidateAll.
    uint32_t minPage_ = UINT32_MAX;
    uint32_t maxPage_ = 0;

    // Superblock storage: records stay allocated until invalidateAll
    // (address stability for the in-flight dispatch), demoted records
    // are recycled through the free list at the next formation.
    std::vector<std::unique_ptr<SuperblockRecord>> blocks_;
    std::unordered_map<uint32_t, SuperblockRecord *> blockAt_;
    std::vector<SuperblockRecord *> freeBlocks_;
    // Byte-address range covered by live blocks: demoteBlocksOver's
    // window scan (up to MaxSuperblockLen probes) only runs for writes
    // intersecting it, so data stores that merely share a page with
    // text skip it. Grown on registerBlock, reset when no block is
    // live; never shrunk in between (stale width only costs the scan).
    uint32_t blockMin_ = UINT32_MAX;
    uint32_t blockMax_ = 0;
    uint64_t writeGen_ = 0;
    uint64_t sbFormed_ = 0;
    uint64_t sbDemoted_ = 0;
    RetireHook retireHook_;
};

} // namespace risc1::sim

#endif // RISC1_SIM_DECODE_HH
