/**
 * @file
 * The predecode fast path: program text is decoded once into dense
 * DecodedOp records and Cpu::run() dispatches on the resolved tag
 * instead of re-decoding the 32-bit word every step — the software
 * analogue of a pipelined instruction fetch. The cache registers as a
 * Memory::WriteObserver so self-modifying stores (and fault-injection
 * pokes) invalidate the slots they overlap; a min/max range filter
 * over the cached text pages makes data and stack writes cost one
 * comparison.
 *
 * On top of the records sits the threaded-code engine (Cpu::
 * runThreaded): each record carries direct successor pointers — the
 * fall-through slot and a one-entry taken-transfer cache — so
 * steady-state execution chases record pointers instead of hashing
 * the PC, plus a peephole fuser that collapses common RISC I pairs
 * (compare + delayed branch, LDHI + immediate op, load + use) into
 * single superinstruction records. Slot storage is address-stable
 * (lines live behind unique_ptr and invalidation overwrites slots in
 * place), which is what makes raw successor pointers safe: a stale
 * pointer always lands on the slot for the same address, and validity
 * is re-checked through the dispatch code. See docs/PERFORMANCE.md.
 */

#ifndef RISC1_SIM_DECODE_HH
#define RISC1_SIM_DECODE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"
#include "sim/memory.hh"

namespace risc1::sim {

/**
 * Dense dispatch tag, one value per architected instruction in opcode
 * order. Unlike isa::Opcode (a sparse 7-bit encoding), the tag range
 * is contiguous so the execute switch compiles to a dense jump table.
 */
enum class ExecTag : uint8_t
{
    Add, Addc, Sub, Subc, Subr, Subcr, And, Or, Xor, Sll, Srl, Sra,
    Ldl, Ldsu, Ldss, Ldbu, Ldbs, Stl, Sts, Stb,
    Jmp, Jmpr, Call, Callr, Ret, Callint, Retint,
    Ldhi, Gtlpc, Getpsw, Putpsw,
    Invalid, //!< unfilled cache slot
};

/** Number of ExecTag values (Invalid included). */
constexpr unsigned NumExecTags =
    static_cast<unsigned>(ExecTag::Invalid) + 1;

/**
 * Dispatch codes of the threaded engine: the plain ExecTag range
 * followed by one code per superinstruction kind. DecodedOp::dcode
 * holds the record's current code; fusing a pair upgrades the first
 * record's code, invalidating the second instruction demotes it back.
 */
constexpr uint8_t DispAluBranch = NumExecTags;     //!< ALU + JMPR pair
constexpr uint8_t DispLdhiImm = NumExecTags + 1;   //!< LDHI + ALU-imm
constexpr uint8_t DispLoadUse = NumExecTags + 2;   //!< LDL + ALU pair
constexpr unsigned NumDispatchCodes = NumExecTags + 3;

/** Dispatch tag for an architected opcode. */
ExecTag execTagFor(isa::Opcode op);

/** Superinstruction kind of a fused record. */
enum class FuseKind : uint8_t
{
    None,
    AluBranch, //!< any ALU op + conditional/unconditional JMPR
    LdhiImm,   //!< LDHI + non-scc ADD/OR immediate: constant folded
    LoadUse,   //!< LDL + any ALU op (the classic load/use pair)
};

/**
 * One predecoded instruction: the fully decoded fields (opcode, scc,
 * operand indices, sign-extended immediates) plus everything the
 * execute loop would otherwise recompute per step, the threaded-code
 * successor pointers, and — for a fused pair — a copy of the second
 * component.
 *
 * Successor pointers reference other cache slots by address; they stay
 * meaningful across slot invalidation/re-insertion because a slot's
 * address never changes and always corresponds to the same PC. They
 * only dangle after invalidateAll(), which frees the lines — callers
 * must drop chased pointers across load()/restore().
 */
struct DecodedOp
{
    isa::Instruction inst;               //!< decoded fields
    ExecTag tag = ExecTag::Invalid;      //!< resolved dispatch tag
    isa::OpClass opClass = isa::OpClass::Alu; //!< cached class (stats)
    bool nop = false;                    //!< canonical NOP (stats)
    /** Threaded dispatch code: tag, or a Disp* superinstruction code. */
    uint8_t dcode = static_cast<uint8_t>(ExecTag::Invalid);
    /** Cycle cost of this instruction, stamped from the Cpu's timing
     *  model at insert time (avoids the per-step class switch). */
    uint32_t cycles = 1;

    // Fused pair: the second component, copied into this record so the
    // superinstruction handler never touches the second slot. A store
    // into the second word demotes this record back to dcode == tag.
    FuseKind fuse = FuseKind::None;
    isa::Instruction inst2;
    isa::OpClass opClass2 = isa::OpClass::Alu;
    bool nop2 = false;
    uint32_t cycles2 = 0;
    /** AluBranch: precomputed taken target; LdhiImm: folded constant. */
    uint32_t fuseVal = 0;

    // Threaded-code successors (bound lazily by the dispatch loop).
    DecodedOp *fall = nullptr; //!< slot of pc + 4
    DecodedOp *jt = nullptr;   //!< slot of the last taken-transfer pc
    uint32_t jtPc = 0;         //!< pc `jt` was bound for

    bool valid() const { return tag != ExecTag::Invalid; }
};

/** Build the predecoded record for a decoded instruction. */
DecodedOp makeDecodedOp(const isa::Instruction &inst);

/**
 * Maps instruction addresses to DecodedOp records, one page-sized line
 * of slots per touched text page. A write invalidates exactly the
 * slots it overlaps; writes outside the [minPage_, maxPage_] band of
 * cached text pages — i.e. ordinary data and stack traffic — are
 * rejected by two comparisons before any hash lookup, so the observer
 * is cheap enough to sit on the store path.
 */
class DecodedCache : public Memory::WriteObserver
{
  public:
    static constexpr unsigned OpsPerPage = Memory::PageSize /
                                           isa::InstBytes;

    /**
     * Predecoded record at `addr`, or nullptr on a miss (including
     * misaligned addresses, which must take the slow path so the
     * fetch raises its misalignment fault).
     */
    const DecodedOp *
    lookup(uint32_t addr)
    {
        DecodedOp *op = lookupMut(addr);
        return (op != nullptr && op->valid()) ? op : nullptr;
    }

    /**
     * Resident slot for `addr` whether or not it currently holds a
     * valid record, or nullptr when the address is misaligned or its
     * line does not exist. The threaded engine binds successor
     * pointers to these slots.
     */
    DecodedOp *
    lookupMut(uint32_t addr)
    {
        if (addr % isa::InstBytes != 0)
            return nullptr;
        const uint32_t page = addr >> Memory::PageBits;
        if (page != lastPage_) {
            auto it = lines_.find(page);
            if (it == lines_.end())
                return nullptr;
            lastPage_ = page;
            lastLine_ = it->second.get();
        }
        return &(*lastLine_)[(addr & (Memory::PageSize - 1)) /
                             isa::InstBytes];
    }

    /**
     * Store the record for `addr` (which must be word-aligned) and
     * return its address-stable slot.
     */
    DecodedOp *insert(uint32_t addr, const DecodedOp &op);

    /** Drop everything (program load, snapshot restore). */
    void invalidateAll();

    void
    onMemoryWrite(uint32_t addr, unsigned bytes) override
    {
        const uint32_t first = addr >> Memory::PageBits;
        const uint32_t last = (addr + bytes - 1) >> Memory::PageBits;
        if (first > maxPage_ || last < minPage_)
            return; // outside every cached text page
        invalidateSlots(addr, bytes);
    }

    /** Number of resident predecoded lines (tests). */
    size_t residentLines() const { return lines_.size(); }

  private:
    using Line = std::vector<DecodedOp>; //!< OpsPerPage slots

    /** Clear the slots overlapped by a write that passed the filter. */
    void invalidateSlots(uint32_t addr, unsigned bytes);

    /**
     * Demote the record at `addr` to its plain dispatch code if it is
     * fused — its second component (the word at addr + 4) changed.
     */
    void defuseAt(uint32_t addr);

    std::unordered_map<uint32_t, std::unique_ptr<Line>> lines_;
    // One-entry accelerator: straight-line fetch stays on one page.
    uint32_t lastPage_ = UINT32_MAX;
    Line *lastLine_ = nullptr;
    // Range filter: every cached slot lies in [minPage_, maxPage_];
    // grown on insert, only reset by invalidateAll (conservative).
    uint32_t minPage_ = UINT32_MAX;
    uint32_t maxPage_ = 0;
};

} // namespace risc1::sim

#endif // RISC1_SIM_DECODE_HH
