/**
 * @file
 * The predecode fast path: program text is decoded once into dense
 * DecodedOp records and Cpu::run() dispatches on the resolved tag
 * instead of re-decoding the 32-bit word every step — the software
 * analogue of a pipelined instruction fetch. The cache registers as a
 * Memory::WriteObserver so self-modifying stores (and fault-injection
 * pokes) invalidate the slots they overlap; a min/max range filter
 * over the cached text pages makes data and stack writes cost one
 * comparison. See docs/PERFORMANCE.md.
 */

#ifndef RISC1_SIM_DECODE_HH
#define RISC1_SIM_DECODE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"
#include "sim/memory.hh"

namespace risc1::sim {

/**
 * Dense dispatch tag, one value per architected instruction in opcode
 * order. Unlike isa::Opcode (a sparse 7-bit encoding), the tag range
 * is contiguous so the execute switch compiles to a dense jump table.
 */
enum class ExecTag : uint8_t
{
    Add, Addc, Sub, Subc, Subr, Subcr, And, Or, Xor, Sll, Srl, Sra,
    Ldl, Ldsu, Ldss, Ldbu, Ldbs, Stl, Sts, Stb,
    Jmp, Jmpr, Call, Callr, Ret, Callint, Retint,
    Ldhi, Gtlpc, Getpsw, Putpsw,
    Invalid, //!< unfilled cache slot
};

/** Dispatch tag for an architected opcode. */
ExecTag execTagFor(isa::Opcode op);

/**
 * One predecoded instruction: the fully decoded fields (opcode, scc,
 * operand indices, sign-extended immediates) plus everything the
 * execute loop would otherwise recompute per step.
 */
struct DecodedOp
{
    isa::Instruction inst;               //!< decoded fields
    ExecTag tag = ExecTag::Invalid;      //!< resolved dispatch tag
    isa::OpClass opClass = isa::OpClass::Alu; //!< cached class (stats)
    bool nop = false;                    //!< canonical NOP (stats)

    bool valid() const { return tag != ExecTag::Invalid; }
};

/** Build the predecoded record for a decoded instruction. */
DecodedOp makeDecodedOp(const isa::Instruction &inst);

/**
 * Maps instruction addresses to DecodedOp records, one page-sized line
 * of slots per touched text page. A write invalidates exactly the
 * slots it overlaps; writes outside the [minPage_, maxPage_] band of
 * cached text pages — i.e. ordinary data and stack traffic — are
 * rejected by two comparisons before any hash lookup, so the observer
 * is cheap enough to sit on the store path.
 */
class DecodedCache : public Memory::WriteObserver
{
  public:
    static constexpr unsigned OpsPerPage = Memory::PageSize /
                                           isa::InstBytes;

    /**
     * Predecoded record at `addr`, or nullptr on a miss (including
     * misaligned addresses, which must take the slow path so the
     * fetch raises its misalignment fault).
     */
    const DecodedOp *
    lookup(uint32_t addr)
    {
        if (addr % isa::InstBytes != 0)
            return nullptr;
        const uint32_t page = addr >> Memory::PageBits;
        if (page != lastPage_) {
            auto it = lines_.find(page);
            if (it == lines_.end())
                return nullptr;
            lastPage_ = page;
            lastLine_ = it->second.get();
        }
        const DecodedOp &op =
            (*lastLine_)[(addr & (Memory::PageSize - 1)) /
                         isa::InstBytes];
        return op.valid() ? &op : nullptr;
    }

    /** Store the record for `addr` (which must be word-aligned). */
    void insert(uint32_t addr, const DecodedOp &op);

    /** Drop everything (program load, snapshot restore). */
    void invalidateAll();

    void
    onMemoryWrite(uint32_t addr, unsigned bytes) override
    {
        const uint32_t first = addr >> Memory::PageBits;
        const uint32_t last = (addr + bytes - 1) >> Memory::PageBits;
        if (first > maxPage_ || last < minPage_)
            return; // outside every cached text page
        invalidateSlots(addr, bytes);
    }

    /** Number of resident predecoded lines (tests). */
    size_t residentLines() const { return lines_.size(); }

  private:
    using Line = std::vector<DecodedOp>; //!< OpsPerPage slots

    /** Clear the slots overlapped by a write that passed the filter. */
    void invalidateSlots(uint32_t addr, unsigned bytes);

    std::unordered_map<uint32_t, std::unique_ptr<Line>> lines_;
    // One-entry accelerator: straight-line fetch stays on one page.
    uint32_t lastPage_ = UINT32_MAX;
    Line *lastLine_ = nullptr;
    // Range filter: every cached slot lies in [minPage_, maxPage_];
    // grown on insert, only reset by invalidateAll (conservative).
    uint32_t minPage_ = UINT32_MAX;
    uint32_t maxPage_ = 0;
};

} // namespace risc1::sim

#endif // RISC1_SIM_DECODE_HH
