/**
 * @file
 * Immutable shared program image: an assembled program rendered once
 * into page-aligned memory plus a predecoded seed of its text. Batch
 * campaigns build one ProgramImage per workload and attach it to every
 * run's Memory read-only (copy-on-write), so neither the byte image
 * nor the text decode is redone per run — the shared-code /
 * private-state model of minimal multiprocessor simulators.
 *
 * The image is constructed by loading the program into a scratch
 * Memory and dumping its pages, which guarantees the touched-page set
 * — and therefore everything derived from it, like the fault
 * injector's uniform page draw — is byte-identical to an eager
 * Cpu::load() of the same program.
 */

#ifndef RISC1_SIM_IMAGE_HH
#define RISC1_SIM_IMAGE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "asm/program.hh"
#include "sim/decode.hh"
#include "sim/memory.hh"

namespace risc1::sim {

/** A shared, immutable program image (see file comment). */
class ProgramImage
{
  public:
    /** Empty image (no pages, entry 0) — a container placeholder. */
    ProgramImage() = default;

    explicit ProgramImage(const assembler::Program &program);

    /** Execution entry point. */
    uint32_t entry() const { return entry_; }

    /** All initialised pages, sorted by page index. */
    const std::vector<std::pair<uint32_t, Memory::Page>> &
    pages() const
    {
        return pages_;
    }

    /**
     * Predecoded text records, one per instruction address the
     * assembler emitted (addresses whose word does not decode — data
     * interleaved with code — are simply absent and decode lazily).
     * Timing-model cycle stamps are applied by the Cpu at prime time.
     */
    const std::vector<std::pair<uint32_t, DecodedOp>> &
    decoded() const
    {
        return decoded_;
    }

  private:
    uint32_t entry_ = 0;
    std::vector<std::pair<uint32_t, Memory::Page>> pages_;
    std::vector<std::pair<uint32_t, DecodedOp>> decoded_;
};

/**
 * fnv1a-64 over the image's architectural content: entry point plus
 * every initialised page (index and raw bytes). Two images with equal
 * hashes produce identical guest runs, so this is the image component
 * of the campaign shard-cache key (core/fleet) — the predecode seed is
 * derived from the pages and deliberately not hashed.
 */
uint64_t imageHash(const ProgramImage &image);

} // namespace risc1::sim

#endif // RISC1_SIM_IMAGE_HH
