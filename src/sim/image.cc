#include "sim/image.hh"

#include <algorithm>

#include "sim/serial.hh"

namespace risc1::sim {

ProgramImage::ProgramImage(const assembler::Program &program)
    : entry_(program.entry)
{
    // Render through a scratch Memory so the touched-page set matches
    // Memory::loadProgram exactly (fault injection draws pages from
    // that set; it must not depend on how a program was loaded).
    Memory scratch;
    scratch.loadProgram(program);
    for (const Memory::PageDump &dump : scratch.dumpPages()) {
        Memory::Page page;
        std::copy(dump.second.begin(), dump.second.end(), page.begin());
        pages_.emplace_back(dump.first, page);
    }

    // Predecode the text: the assembler's source-line map names every
    // instruction address it emitted.
    decoded_.reserve(program.srcLines.size());
    for (const auto &[addr, line] : program.srcLines) {
        (void)line;
        if (addr % isa::InstBytes != 0)
            continue;
        const isa::DecodeResult dec = isa::decode(scratch.peek32(addr));
        if (dec.ok)
            decoded_.emplace_back(addr, makeDecodedOp(dec.inst));
    }
}

uint64_t
imageHash(const ProgramImage &image)
{
    uint64_t h = FnvOffset;
    fnvU64(h, image.entry());
    fnvU64(h, image.pages().size());
    for (const auto &[index, page] : image.pages()) {
        fnvU64(h, index);
        fnvBytes(h, page.data(), page.size());
    }
    return h;
}

} // namespace risc1::sim
