#include "sim/icache.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace risc1::sim {

ICacheModel::ICacheModel(ICacheConfig config) : config_(config)
{
    if (!isPow2(config_.sizeBytes) || !isPow2(config_.lineBytes))
        fatal("ICacheModel: size and line must be powers of two");
    if (config_.lineBytes > config_.sizeBytes)
        fatal("ICacheModel: line larger than cache");
    numSets_ = config_.sizeBytes / config_.lineBytes;
    tags_.assign(numSets_, 0);
}

unsigned
ICacheModel::access(uint32_t addr)
{
    ++stats_.accesses;
    const uint32_t line = addr / config_.lineBytes;
    const uint32_t set = line % numSets_;
    const uint64_t tag = static_cast<uint64_t>(line / numSets_) + 1;
    if (tags_[set] == tag)
        return 0;
    tags_[set] = tag;
    ++stats_.misses;
    return config_.missPenaltyCycles;
}

void
ICacheModel::flush()
{
    tags_.assign(numSets_, 0);
}

} // namespace risc1::sim
