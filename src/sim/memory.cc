#include "sim/memory.hh"

#include <algorithm>

#include "sim/fault.hh"
#include "support/logging.hh"

namespace risc1::sim {

Memory::Page &
Memory::pageFor(uint32_t addr)
{
    const uint32_t index = addr >> PageBits;
    auto it = pages_.find(index);
    if (it == pages_.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages_.emplace(index, std::move(page)).first;
    }
    return *it->second;
}

const Memory::Page *
Memory::pageAt(uint32_t addr) const
{
    auto it = pages_.find(addr >> PageBits);
    return it == pages_.end() ? nullptr : it->second.get();
}

void
Memory::checkAccess(uint32_t addr, unsigned bytes) const
{
    if (addr % bytes != 0) {
        throw SimFault{strprintf("misaligned %u-byte access at 0x%08x",
                                 bytes, addr),
                       addr, isa::TrapCause::MisalignedAccess};
    }
    // The straddle form (addr > limit - bytes) avoids overflow of
    // addr + bytes near the top of the address space.
    if (limit_ != 0 && (bytes > limit_ || addr > limit_ - bytes)) {
        throw SimFault{strprintf("%u-byte access at 0x%08x beyond the "
                                 "0x%08x address limit",
                                 bytes, addr, limit_),
                       addr, isa::TrapCause::OutOfRangeAddress};
    }
}

uint8_t
Memory::peek8(uint32_t addr) const
{
    const Page *page = pageAt(addr);
    return page ? (*page)[addr & (PageSize - 1)] : 0;
}

uint32_t
Memory::peek32(uint32_t addr) const
{
    uint32_t value = 0;
    for (unsigned i = 0; i < 4; ++i)
        value |= static_cast<uint32_t>(peek8(addr + i)) << (8 * i);
    return value;
}

void
Memory::pokeRaw(uint32_t addr, uint8_t value)
{
    pageFor(addr)[addr & (PageSize - 1)] = value;
}

void
Memory::poke8(uint32_t addr, uint8_t value)
{
    pokeRaw(addr, value);
    notifyWrite(addr, 1);
}

void
Memory::poke32(uint32_t addr, uint32_t value)
{
    for (unsigned i = 0; i < 4; ++i)
        pokeRaw(addr + i, static_cast<uint8_t>(value >> (8 * i)));
    notifyWrite(addr, 4);
}

uint32_t
Memory::fetch32(uint32_t addr)
{
    checkAccess(addr, 4);
    ++stats_.instFetches;
    return peek32(addr);
}

uint8_t
Memory::read8(uint32_t addr)
{
    checkAccess(addr, 1);
    ++stats_.dataReads;
    stats_.dataReadBytes += 1;
    return peek8(addr);
}

uint16_t
Memory::read16(uint32_t addr)
{
    checkAccess(addr, 2);
    ++stats_.dataReads;
    stats_.dataReadBytes += 2;
    return static_cast<uint16_t>(peek8(addr) |
                                 (static_cast<uint16_t>(peek8(addr + 1))
                                  << 8));
}

uint32_t
Memory::read32(uint32_t addr)
{
    checkAccess(addr, 4);
    ++stats_.dataReads;
    stats_.dataReadBytes += 4;
    return peek32(addr);
}

void
Memory::write8(uint32_t addr, uint8_t value)
{
    checkAccess(addr, 1);
    ++stats_.dataWrites;
    stats_.dataWriteBytes += 1;
    poke8(addr, value);
}

void
Memory::write16(uint32_t addr, uint16_t value)
{
    checkAccess(addr, 2);
    ++stats_.dataWrites;
    stats_.dataWriteBytes += 2;
    poke8(addr, static_cast<uint8_t>(value));
    poke8(addr + 1, static_cast<uint8_t>(value >> 8));
}

void
Memory::write32(uint32_t addr, uint32_t value)
{
    checkAccess(addr, 4);
    ++stats_.dataWrites;
    stats_.dataWriteBytes += 4;
    poke32(addr, value);
}

void
Memory::loadProgram(const assembler::Program &program)
{
    for (const assembler::Segment &seg : program.segments) {
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            poke8(seg.base + static_cast<uint32_t>(i), seg.bytes[i]);
    }
}

std::vector<uint32_t>
Memory::pageIndices() const
{
    std::vector<uint32_t> indices;
    indices.reserve(pages_.size());
    for (const auto &[index, page] : pages_)
        indices.push_back(index);
    std::sort(indices.begin(), indices.end());
    return indices;
}

std::vector<Memory::PageDump>
Memory::dumpPages() const
{
    std::vector<PageDump> dump;
    dump.reserve(pages_.size());
    for (const auto &[index, page] : pages_)
        dump.emplace_back(index,
                          std::vector<uint8_t>(page->begin(),
                                               page->end()));
    std::sort(dump.begin(), dump.end(),
              [](const PageDump &a, const PageDump &b) {
                  return a.first < b.first;
              });
    return dump;
}

void
Memory::restorePages(const std::vector<PageDump> &pages)
{
    pages_.clear();
    for (const auto &[index, bytes] : pages) {
        if (bytes.size() != PageSize)
            panic("restorePages: page %u has %zu bytes", index,
                  bytes.size());
        auto page = std::make_unique<Page>();
        std::copy(bytes.begin(), bytes.end(), page->begin());
        pages_.emplace(index, std::move(page));
    }
}

} // namespace risc1::sim
