#include "sim/memory.hh"

#include <algorithm>

#include "sim/fault.hh"
#include "support/logging.hh"

namespace risc1::sim {

const Memory::Page *
Memory::readPage(uint32_t addr) const
{
    const uint32_t index = addr >> PageBits;
    if (index == cachedIndex_)
        return cachedRead_; // non-null whenever the entry exists
    auto it = pages_.find(index);
    if (it == pages_.end())
        return nullptr;
    const PageEntry &entry = it->second;
    cachedIndex_ = index;
    cachedRead_ = entry.rw ? entry.rw.get() : entry.ro;
    cachedWrite_ = entry.rw.get();
    return cachedRead_;
}

Memory::Page &
Memory::writePage(uint32_t addr)
{
    const uint32_t index = addr >> PageBits;
    if (index == cachedIndex_ && cachedWrite_ != nullptr)
        return *cachedWrite_;
    PageEntry &entry = pages_[index];
    if (!entry.rw) {
        // First write: clone the borrowed read-only page, or create a
        // zero-filled private one.
        entry.rw = entry.ro ? std::make_unique<Page>(*entry.ro)
                            : std::make_unique<Page>(Page{});
        entry.ro = nullptr;
    }
    cachedIndex_ = index;
    cachedRead_ = entry.rw.get();
    cachedWrite_ = entry.rw.get();
    return *entry.rw;
}

void
Memory::attachPage(uint32_t index, const Page &page)
{
    PageEntry &entry = pages_[index];
    entry.ro = &page;
    entry.rw.reset();
    dropPageCache();
}

void
Memory::checkAccess(uint32_t addr, unsigned bytes) const
{
    if (addr % bytes != 0) {
        throw SimFault{strprintf("misaligned %u-byte access at 0x%08x",
                                 bytes, addr),
                       addr, isa::TrapCause::MisalignedAccess};
    }
    // The straddle form (addr > limit - bytes) avoids overflow of
    // addr + bytes near the top of the address space.
    if (limit_ != 0 && (bytes > limit_ || addr > limit_ - bytes)) {
        throw SimFault{strprintf("%u-byte access at 0x%08x beyond the "
                                 "0x%08x address limit",
                                 bytes, addr, limit_),
                       addr, isa::TrapCause::OutOfRangeAddress};
    }
}

uint8_t
Memory::peek8(uint32_t addr) const
{
    const Page *page = readPage(addr);
    return page ? (*page)[addr & (PageSize - 1)] : 0;
}

uint32_t
Memory::peek32(uint32_t addr) const
{
    // Aligned fast path: the word lies within one page.
    if (addr % 4 == 0) {
        const Page *page = readPage(addr);
        if (page == nullptr)
            return 0;
        const uint8_t *p = page->data() + (addr & (PageSize - 1));
        return static_cast<uint32_t>(p[0]) |
               (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16) |
               (static_cast<uint32_t>(p[3]) << 24);
    }
    uint32_t value = 0;
    for (unsigned i = 0; i < 4; ++i)
        value |= static_cast<uint32_t>(peek8(addr + i)) << (8 * i);
    return value;
}

void
Memory::poke8(uint32_t addr, uint8_t value)
{
    writePage(addr)[addr & (PageSize - 1)] = value;
    notifyWrite(addr, 1);
}

void
Memory::poke32(uint32_t addr, uint32_t value)
{
    if (addr % 4 == 0) {
        uint8_t *p = writePage(addr).data() + (addr & (PageSize - 1));
        p[0] = static_cast<uint8_t>(value);
        p[1] = static_cast<uint8_t>(value >> 8);
        p[2] = static_cast<uint8_t>(value >> 16);
        p[3] = static_cast<uint8_t>(value >> 24);
    } else {
        for (unsigned i = 0; i < 4; ++i)
            writePage(addr + i)[(addr + i) & (PageSize - 1)] =
                static_cast<uint8_t>(value >> (8 * i));
    }
    notifyWrite(addr, 4);
}

uint32_t
Memory::fetch32(uint32_t addr)
{
    checkAccess(addr, 4);
    ++stats_.instFetches;
    const Page *page = readPage(addr);
    if (page == nullptr)
        return 0;
    const uint8_t *p = page->data() + (addr & (PageSize - 1));
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

uint8_t
Memory::read8(uint32_t addr)
{
    checkAccess(addr, 1);
    ++stats_.dataReads;
    stats_.dataReadBytes += 1;
    return peek8(addr);
}

uint16_t
Memory::read16(uint32_t addr)
{
    checkAccess(addr, 2);
    ++stats_.dataReads;
    stats_.dataReadBytes += 2;
    const Page *page = readPage(addr); // aligned: one page
    if (page == nullptr)
        return 0;
    const uint8_t *p = page->data() + (addr & (PageSize - 1));
    return static_cast<uint16_t>(p[0] |
                                 (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t
Memory::read32(uint32_t addr)
{
    checkAccess(addr, 4);
    ++stats_.dataReads;
    stats_.dataReadBytes += 4;
    const Page *page = readPage(addr); // aligned: one page
    if (page == nullptr)
        return 0;
    const uint8_t *p = page->data() + (addr & (PageSize - 1));
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

void
Memory::write8(uint32_t addr, uint8_t value)
{
    checkAccess(addr, 1);
    ++stats_.dataWrites;
    stats_.dataWriteBytes += 1;
    writePage(addr)[addr & (PageSize - 1)] = value;
    notifyWrite(addr, 1);
}

void
Memory::write16(uint32_t addr, uint16_t value)
{
    checkAccess(addr, 2);
    ++stats_.dataWrites;
    stats_.dataWriteBytes += 2;
    uint8_t *p = writePage(addr).data() + (addr & (PageSize - 1));
    p[0] = static_cast<uint8_t>(value);
    p[1] = static_cast<uint8_t>(value >> 8);
    notifyWrite(addr, 2);
}

void
Memory::write32(uint32_t addr, uint32_t value)
{
    checkAccess(addr, 4);
    ++stats_.dataWrites;
    stats_.dataWriteBytes += 4;
    uint8_t *p = writePage(addr).data() + (addr & (PageSize - 1));
    p[0] = static_cast<uint8_t>(value);
    p[1] = static_cast<uint8_t>(value >> 8);
    p[2] = static_cast<uint8_t>(value >> 16);
    p[3] = static_cast<uint8_t>(value >> 24);
    notifyWrite(addr, 4);
}

void
Memory::loadProgram(const assembler::Program &program)
{
    for (const assembler::Segment &seg : program.segments) {
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            poke8(seg.base + static_cast<uint32_t>(i), seg.bytes[i]);
    }
}

std::vector<uint32_t>
Memory::pageIndices() const
{
    std::vector<uint32_t> indices;
    indices.reserve(pages_.size());
    for (const auto &[index, entry] : pages_)
        indices.push_back(index);
    std::sort(indices.begin(), indices.end());
    return indices;
}

std::vector<Memory::PageDump>
Memory::dumpPages() const
{
    std::vector<PageDump> dump;
    dump.reserve(pages_.size());
    for (const auto &[index, entry] : pages_) {
        const Page &page = entry.rw ? *entry.rw : *entry.ro;
        dump.emplace_back(index, std::vector<uint8_t>(page.begin(),
                                                      page.end()));
    }
    std::sort(dump.begin(), dump.end(),
              [](const PageDump &a, const PageDump &b) {
                  return a.first < b.first;
              });
    return dump;
}

void
Memory::restorePages(const std::vector<PageDump> &pages)
{
    pages_.clear();
    dropPageCache();
    for (const auto &[index, bytes] : pages) {
        if (bytes.size() != PageSize)
            panic("restorePages: page %u has %zu bytes", index,
                  bytes.size());
        PageEntry entry;
        entry.rw = std::make_unique<Page>();
        std::copy(bytes.begin(), bytes.end(), entry.rw->begin());
        pages_.emplace(index, std::move(entry));
    }
}

} // namespace risc1::sim
