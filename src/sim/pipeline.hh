/**
 * @file
 * Explicit pipeline timing models. The RISC I ("Gold") machine ran a
 * two-stage fetch/execute pipeline in which every data-memory access
 * steals the fetch slot (hence 2-cycle loads/stores) and transfers are
 * delayed by one instruction. Its successor direction (RISC II,
 * sketched as future work) moves to three stages, which exposes a
 * load-use interlock but supports a shorter cycle.
 *
 * The models consume the committed instruction stream (fed per step by
 * `runWithPipeline`) and account cycles stage-by-stage; the two-stage
 * model must agree exactly with the simple TimingModel cost function —
 * a cross-check the tests enforce.
 */

#ifndef RISC1_SIM_PIPELINE_HH
#define RISC1_SIM_PIPELINE_HH

#include <cstdint>

#include "isa/instruction.hh"
#include "sim/cpu.hh"

namespace risc1::sim {

/** Pipeline organisation. */
enum class PipelineVariant : uint8_t
{
    TwoStage,   //!< RISC I: fetch | execute
    ThreeStage, //!< RISC II direction: fetch | execute | write
};

/** Cycle accounting of one pipeline run. */
struct PipelineStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t fetchStallCycles = 0;  //!< fetch suspended by a data access
    uint64_t loadUseInterlocks = 0; //!< 3-stage only
    uint64_t windowTrapCycles = 0;  //!< overflow/underflow sequences
    double cycleTimeNs = 400.0;

    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    double
    timeUs() const
    {
        return static_cast<double>(cycles) * cycleTimeNs / 1000.0;
    }
};

/** Feed-forward pipeline timing model. */
class PipelineModel
{
  public:
    explicit PipelineModel(PipelineVariant variant,
                           const TimingModel &timing = {});

    /**
     * Account one committed instruction. `window_trap_cycles` is the
     * cost of any overflow/underflow the instruction triggered.
     */
    void issue(const isa::Instruction &inst,
               unsigned window_trap_cycles);

    const PipelineStats &stats() const { return stats_; }
    PipelineVariant variant() const { return variant_; }

  private:
    PipelineVariant variant_;
    TimingModel timing_;
    PipelineStats stats_;

    bool lastWasLoad_ = false;
    uint8_t lastLoadRd_ = 0;
};

/**
 * Run `cpu` (already loaded) to completion, feeding each committed
 * instruction to `model`. Returns the cpu's ExecResult.
 */
ExecResult runWithPipeline(Cpu &cpu, PipelineModel &model);

} // namespace risc1::sim

#endif // RISC1_SIM_PIPELINE_HH
