/**
 * @file
 * Sparse paged byte-addressable memory with access statistics. All
 * multi-byte accesses are little-endian and must be naturally aligned
 * (RISC I has no unaligned access); violations raise SimFault.
 *
 * Pages are copy-on-write capable: attachPage() maps a borrowed
 * read-only page (e.g. from a shared, immutable program image) that is
 * cloned into a private page on first write. Batch campaigns use this
 * to share one program image across thousands of runs without copying
 * it per run; see sim/image.hh and docs/PERFORMANCE.md.
 */

#ifndef RISC1_SIM_MEMORY_HH
#define RISC1_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "asm/program.hh"

namespace risc1::sim {

/** Counters of memory traffic (experiment E7). */
struct MemStats
{
    uint64_t instFetches = 0; //!< 32-bit instruction fetches
    uint64_t dataReads = 0;   //!< load accesses
    uint64_t dataWrites = 0;  //!< store accesses
    uint64_t dataReadBytes = 0;
    uint64_t dataWriteBytes = 0;

    uint64_t
    totalAccesses() const
    {
        return instFetches + dataReads + dataWrites;
    }
};

/** Sparse guest memory. Unmapped locations read as zero. */
class Memory
{
  public:
    static constexpr unsigned PageBits = 12;
    static constexpr uint32_t PageSize = 1u << PageBits;

    /** One page of guest memory. */
    using Page = std::array<uint8_t, PageSize>;

    /**
     * Observer of every guest-visible mutation (counted writes AND
     * raw pokes — fault injection flips memory through poke32). The
     * predecode caches register themselves here so self-modifying
     * stores invalidate stale decoded instructions.
     */
    class WriteObserver
    {
      public:
        virtual ~WriteObserver() = default;
        /** Bytes [addr, addr + bytes) were (or may have been) changed. */
        virtual void onMemoryWrite(uint32_t addr, unsigned bytes) = 0;
    };

    /** Install (or clear, with nullptr) the single write observer. */
    void setWriteObserver(WriteObserver *observer)
    {
        observer_ = observer;
    }

    /**
     * Install a second, auxiliary observer notified after the primary
     * one. The decode caches own the primary slot; this one exists for
     * passive instrumentation — the lockstep sentinel's rolling
     * memory-write digest (sim/lockstep.hh). Cleared like the primary
     * when the Memory is replaced wholesale (Cpu::load).
     */
    void setAuxWriteObserver(WriteObserver *observer)
    {
        auxObserver_ = observer;
    }

    /**
     * Install an address-space limit: counted accesses (fetch/read/
     * write) at or beyond `limit` raise an OutOfRangeAddress SimFault.
     * 0 (the default) disables the check. peek/poke are exempt.
     */
    void setLimit(uint32_t limit) { limit_ = limit; }
    uint32_t limit() const { return limit_; }

    /** Fetch one instruction word (counted separately from data). */
    uint32_t fetch32(uint32_t addr);

    /**
     * Account for instruction-stream fetches performed via peek8 (used
     * by the variable-length vax80 front end, which counts one fetch
     * per 32-bit word its instruction bytes touch).
     */
    void countInstFetches(uint64_t n) { stats_.instFetches += n; }

    uint8_t read8(uint32_t addr);
    uint16_t read16(uint32_t addr);
    uint32_t read32(uint32_t addr);

    void write8(uint32_t addr, uint8_t value);
    void write16(uint32_t addr, uint16_t value);
    void write32(uint32_t addr, uint32_t value);

    /** Raw accessors that bypass the statistics (loader / test use). */
    uint8_t peek8(uint32_t addr) const;
    uint32_t peek32(uint32_t addr) const;
    void poke8(uint32_t addr, uint8_t value);
    void poke32(uint32_t addr, uint32_t value);

    /** Copy a program image into memory (no statistics). */
    void loadProgram(const assembler::Program &program);

    /**
     * Map `page` (page number `index`) read-only into this address
     * space, sharing the caller's storage. The page is cloned into a
     * private copy on the first write to it; reads before that serve
     * from the shared storage. The caller must keep `page` alive for
     * this Memory's lifetime (a campaign's shared ProgramImage does).
     */
    void attachPage(uint32_t index, const Page &page);

    const MemStats &stats() const { return stats_; }
    void resetStats() { stats_ = MemStats{}; }

    /** Indices of all touched pages, sorted (fault injection). */
    std::vector<uint32_t> pageIndices() const;

    /** One serialized page: index and contents (checkpointing). */
    using PageDump = std::pair<uint32_t, std::vector<uint8_t>>;

    /** Serialize all touched pages (sorted by index). */
    std::vector<PageDump> dumpPages() const;

    /**
     * Replace the entire contents from a dump; stats are preserved.
     * The write observer is NOT notified — a wholesale replacement
     * caller must invalidate any decode cache itself.
     */
    void restorePages(const std::vector<PageDump> &pages);

    /** Restore the statistics (checkpointing). */
    void setStats(const MemStats &stats) { stats_ = stats; }

  private:
    /**
     * One mapped page: either a private writable page (rw) or a
     * borrowed read-only one (ro) awaiting its copy-on-write clone.
     * Exactly one of the two is non-null.
     */
    struct PageEntry
    {
        const Page *ro = nullptr;
        std::unique_ptr<Page> rw;
    };

    /** Readable storage of the page holding `addr`, or nullptr. */
    const Page *readPage(uint32_t addr) const;

    /** Writable storage of the page holding `addr` (create / clone). */
    Page &writePage(uint32_t addr);

    /** Forget the one-entry page accelerators (map mutation). */
    void
    dropPageCache() const
    {
        cachedIndex_ = UINT32_MAX;
        cachedRead_ = nullptr;
        cachedWrite_ = nullptr;
    }

    /** Alignment + address-limit check for a counted access. */
    void checkAccess(uint32_t addr, unsigned bytes) const;

    void
    notifyWrite(uint32_t addr, unsigned bytes)
    {
        if (observer_ != nullptr)
            observer_->onMemoryWrite(addr, bytes);
        if (auxObserver_ != nullptr)
            auxObserver_->onMemoryWrite(addr, bytes);
    }

    std::unordered_map<uint32_t, PageEntry> pages_;
    MemStats stats_;
    uint32_t limit_ = 0;
    WriteObserver *observer_ = nullptr;
    WriteObserver *auxObserver_ = nullptr;

    // One-entry accelerator: consecutive accesses overwhelmingly stay
    // on one page, so cache the resolved storage of the last page.
    // cachedWrite_ is only non-null once the page is privately owned
    // (a cache hit must never bypass the copy-on-write clone).
    mutable uint32_t cachedIndex_ = UINT32_MAX;
    mutable const Page *cachedRead_ = nullptr;
    mutable Page *cachedWrite_ = nullptr;
};

} // namespace risc1::sim

#endif // RISC1_SIM_MEMORY_HH
