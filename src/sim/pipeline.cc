#include "sim/pipeline.hh"

#include "sim/fault.hh"

namespace risc1::sim {

PipelineModel::PipelineModel(PipelineVariant variant,
                             const TimingModel &timing)
    : variant_(variant), timing_(timing)
{
    // The three-stage organisation is what buys the shorter cycle; the
    // paper-era estimate for the successor design.
    stats_.cycleTimeNs = variant == PipelineVariant::TwoStage
                             ? timing.cycleTimeNs
                             : timing.cycleTimeNs * 0.825;
}

void
PipelineModel::issue(const isa::Instruction &inst,
                     unsigned window_trap_cycles)
{
    const isa::OpInfo &info = inst.info();
    ++stats_.instructions;
    stats_.cycles += 1; // every instruction occupies execute once

    const bool is_mem = info.opClass == isa::OpClass::Load ||
                        info.opClass == isa::OpClass::Store;
    if (is_mem) {
        // The data access steals the fetch slot of the next
        // instruction: one stall cycle, in both organisations.
        stats_.cycles += 1;
        stats_.fetchStallCycles += 1;
    }

    if (variant_ == PipelineVariant::ThreeStage) {
        // Load-use interlock: the loaded value is written one stage
        // later, so an immediately-following consumer waits a cycle.
        if (lastWasLoad_) {
            bool uses = false;
            if (info.readsRs1 && inst.rs1 == lastLoadRd_)
                uses = true;
            if (info.usesS2 && !inst.imm && inst.rs2 == lastLoadRd_)
                uses = true;
            if (info.rdIsSource && inst.rd == lastLoadRd_)
                uses = true;
            if (uses && lastLoadRd_ != isa::ZeroReg) {
                stats_.cycles += 1;
                ++stats_.loadUseInterlocks;
            }
        }
        lastWasLoad_ = info.opClass == isa::OpClass::Load;
        lastLoadRd_ = inst.rd;
    }

    stats_.cycles += window_trap_cycles;
    stats_.windowTrapCycles += window_trap_cycles;
}

ExecResult
runWithPipeline(Cpu &cpu, PipelineModel &model)
{
    ExecResult result;
    const TimingModel &timing = cpu.options().timing;
    while (!cpu.halted() &&
           cpu.stats().instructions < cpu.options().maxInstructions) {
        const uint64_t ovf_before = cpu.stats().windowOverflows;
        const uint64_t unf_before = cpu.stats().windowUnderflows;
        const uint32_t pc = cpu.pc();
        const uint32_t word = cpu.memory().peek32(pc);

        try {
            cpu.step();
        } catch (const SimFault &fault) {
            result.reason = StopReason::Fault;
            result.message = fault.message;
            result.instructions = cpu.stats().instructions;
            result.cycles = cpu.stats().cycles;
            return result;
        }

        const isa::DecodeResult dec = isa::decode(word);
        if (dec.ok) {
            unsigned trap_cycles = 0;
            if (cpu.stats().windowOverflows > ovf_before)
                trap_cycles += timing.overflowCycles();
            if (cpu.stats().windowUnderflows > unf_before)
                trap_cycles += timing.underflowCycles();
            model.issue(dec.inst, trap_cycles);
        }
    }
    result.reason = cpu.halted() ? StopReason::Halted
                                 : StopReason::InstLimit;
    result.instructions = cpu.stats().instructions;
    result.cycles = cpu.stats().cycles;
    return result;
}

} // namespace risc1::sim
