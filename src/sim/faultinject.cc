#include "sim/faultinject.hh"

#include "support/logging.hh"

namespace risc1::sim {

Injection
drawInjection(Rng &rng, uint64_t horizon)
{
    Injection inj;
    switch (rng.below(3)) {
      case 0: inj.target = InjectTarget::Register; break;
      case 1: inj.target = InjectTarget::Memory; break;
      default: inj.target = InjectTarget::Fetch; break;
    }
    inj.atInstruction = horizon ? rng.below(horizon) : 0;
    inj.bit = static_cast<unsigned>(rng.below(32));
    return inj;
}

void
applyInjection(Cpu &cpu, Rng &rng, Injection &inj)
{
    const uint32_t mask = 1u << inj.bit;
    switch (inj.target) {
      case InjectTarget::Register: {
        inj.physReg = static_cast<unsigned>(
            rng.below(cpu.regfile().spec().physCount()));
        inj.oldValue = cpu.regfile().readPhys(inj.physReg);
        inj.newValue = inj.oldValue ^ mask;
        cpu.regfile().writePhys(inj.physReg, inj.newValue);
        break;
      }
      case InjectTarget::Memory: {
        const std::vector<uint32_t> pages = cpu.memory().pageIndices();
        if (pages.empty())
            panic("applyInjection: no touched pages to inject into");
        const uint32_t page = pages[rng.below(pages.size())];
        inj.memAddr = (page << Memory::PageBits) +
                      4 * static_cast<uint32_t>(
                              rng.below(Memory::PageSize / 4));
        inj.oldValue = cpu.memory().peek32(inj.memAddr);
        inj.newValue = inj.oldValue ^ mask;
        cpu.memory().poke32(inj.memAddr, inj.newValue);
        break;
      }
      case InjectTarget::Fetch:
        inj.oldValue = cpu.memory().peek32(cpu.pc());
        inj.newValue = inj.oldValue ^ mask;
        cpu.corruptNextFetch(mask);
        break;
    }
    inj.applied = true;
}

ExecResult
runWithInjection(Cpu &cpu, Rng &rng, Injection &inj)
{
    ExecResult pre = cpu.runUntil(inj.atInstruction);
    if (pre.reason != StopReason::Paused)
        return pre; // finished (or died) before the injection point
    applyInjection(cpu, rng, inj);
    return cpu.run();
}

std::string
describeInjection(const Injection &inj)
{
    const char *what = inj.target == InjectTarget::Register ? "reg"
                       : inj.target == InjectTarget::Memory ? "mem"
                                                            : "fetch";
    std::string where;
    if (inj.applied) {
        if (inj.target == InjectTarget::Register)
            where = strprintf(" phys r%u", inj.physReg);
        else if (inj.target == InjectTarget::Memory)
            where = strprintf(" 0x%08x", inj.memAddr);
        where += strprintf(" (%08x -> %08x)", inj.oldValue,
                           inj.newValue);
    }
    return strprintf("%s bit %u at inst %llu%s", what, inj.bit,
                     static_cast<unsigned long long>(inj.atInstruction),
                     where.c_str());
}

} // namespace risc1::sim
