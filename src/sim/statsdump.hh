/**
 * @file
 * Human-readable statistics dumps (gem5-style `name value # comment`
 * lines) for both machines — the format the examples print and other
 * tools can scrape.
 */

#ifndef RISC1_SIM_STATSDUMP_HH
#define RISC1_SIM_STATSDUMP_HH

#include <string>

#include "sim/stats.hh"

namespace risc1::sim {

/** One aligned `name value # comment` stats line. */
std::string statsLine(const std::string &prefix, const char *name,
                      double value, const char *comment);

/** Render SimStats as aligned `name value # comment` lines. */
std::string formatStats(const SimStats &stats,
                        const std::string &prefix = "risc1");

} // namespace risc1::sim

#endif // RISC1_SIM_STATSDUMP_HH
