/**
 * @file
 * Little-endian byte-stream serialization shared by every durable
 * artifact the simulator writes: snapshot reproducers (sim/snapshot)
 * and campaign shard-cache records (core/fleet). One Writer/Reader
 * pair keeps the encoding idioms — explicit little-endian fields,
 * bounds-checked reads, count-field guards — in a single place, and
 * the fnv1a-64 helpers here are the hash used for both the snapshot
 * config hash and the shard-cache key.
 *
 * ByteReader never trusts the stream: every read is bounds-checked and
 * an overrun throws ByteStreamTruncated carrying the failing byte
 * offset, which the caller converts into its own typed error
 * (SnapshotError, ShardCacheError) so messages always locate the bad
 * byte.
 */

#ifndef RISC1_SIM_SERIAL_HH
#define RISC1_SIM_SERIAL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace risc1::sim {

// ---- fnv1a-64 ----------------------------------------------------------

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t FnvPrime = 0x00000100000001b3ull;

/** Fold the 8 little-endian bytes of `v` into accumulator `h`. */
void fnvU64(uint64_t &h, uint64_t v);

/** Fold a raw byte range into accumulator `h`. */
void fnvBytes(uint64_t &h, const uint8_t *data, size_t n);

/** One-shot fnv1a-64 of a byte range. */
uint64_t fnv1a(const uint8_t *data, size_t n);

// ---- bounded little-endian streams -------------------------------------

/**
 * Thrown by ByteReader on any overrun: `offset` is the stream position
 * of the failed read, `need` the bytes it wanted. `countCheck` marks
 * an overrun detected up front by checkCount() (a corrupt count field)
 * rather than by an actual read.
 */
struct ByteStreamTruncated
{
    size_t offset = 0;
    size_t need = 0;
    bool countCheck = false;
};

/** Append-only little-endian stream builder. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }

    void
    u32(uint32_t v)
    {
        for (unsigned i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    bytes(const uint8_t *data, size_t n)
    {
        buf_.insert(buf_.end(), data, data + n);
    }

    size_t size() const { return buf_.size(); }
    const std::vector<uint8_t> &buffer() const { return buf_; }

    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked little-endian reader (see file comment). */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<uint8_t> &buf) : buf_(buf) {}

    uint8_t
    u8()
    {
        need(1);
        return buf_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
        return v;
    }

    void bytes(uint8_t *out, size_t n);

    /** Stream position of the next read — the error locator. */
    size_t offset() const { return pos_; }

    size_t remaining() const { return buf_.size() - pos_; }

    /**
     * Guard for a count field about to drive a loop of `elem_bytes`
     * per element: the stream must still hold that many bytes, so a
     * corrupt count fails fast instead of attempting a gigantic
     * allocation.
     */
    void checkCount(uint64_t count, size_t elem_bytes);

  private:
    void
    need(size_t n)
    {
        if (buf_.size() - pos_ < n)
            throw ByteStreamTruncated{pos_, n, false};
    }

    const std::vector<uint8_t> &buf_;
    size_t pos_ = 0;
};

} // namespace risc1::sim

#endif // RISC1_SIM_SERIAL_HH
