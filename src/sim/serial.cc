#include "sim/serial.hh"

#include <algorithm>

namespace risc1::sim {

void
fnvU64(uint64_t &h, uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= FnvPrime;
    }
}

void
fnvBytes(uint64_t &h, const uint8_t *data, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= FnvPrime;
    }
}

uint64_t
fnv1a(const uint8_t *data, size_t n)
{
    uint64_t h = FnvOffset;
    fnvBytes(h, data, n);
    return h;
}

void
ByteReader::bytes(uint8_t *out, size_t n)
{
    need(n);
    std::copy_n(buf_.begin() + static_cast<ptrdiff_t>(pos_), n, out);
    pos_ += n;
}

void
ByteReader::checkCount(uint64_t count, size_t elem_bytes)
{
    if (count > remaining() / elem_bytes)
        throw ByteStreamTruncated{pos_, static_cast<size_t>(count) *
                                            elem_bytes,
                                  true};
}

} // namespace risc1::sim
