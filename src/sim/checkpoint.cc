#include "sim/checkpoint.hh"

#include "support/logging.hh"

namespace risc1::sim {

CheckpointRing::CheckpointRing(CheckpointRingOptions options)
    : options_(options)
{
    if (options_.interval == 0)
        fatal("CheckpointRing: interval must be nonzero");
    if (options_.capacity == 0)
        fatal("CheckpointRing: capacity must be nonzero");
}

void
CheckpointRing::clear()
{
    ring_.clear();
}

void
CheckpointRing::capture(const Cpu &cpu)
{
    const uint64_t at = cpu.stats().instructions;
    if (!ring_.empty()) {
        if (at == ring_.back().instructions)
            return; // already held
        if (at < ring_.back().instructions)
            panic("CheckpointRing: capture at %llu behind newest %llu",
                  static_cast<unsigned long long>(at),
                  static_cast<unsigned long long>(
                      ring_.back().instructions));
    }
    if (ring_.size() >= options_.capacity)
        ring_.pop_front();
    ring_.push_back(Checkpoint{at, cpu.snapshot()});
}

bool
CheckpointRing::due(uint64_t instructions) const
{
    return ring_.empty() ||
           instructions >= ring_.back().instructions + options_.interval;
}

uint64_t
CheckpointRing::nextBoundary(uint64_t instructions) const
{
    // Boundaries are anchored at the newest checkpoint, so captures
    // stay on one grid regardless of where single-steps paused.
    const uint64_t anchor =
        ring_.empty() ? instructions : ring_.back().instructions;
    if (instructions < anchor)
        return anchor + options_.interval;
    const uint64_t steps = (instructions - anchor) / options_.interval;
    return anchor + (steps + 1) * options_.interval;
}

const CheckpointRing::Checkpoint *
CheckpointRing::latestAtOrBefore(uint64_t n) const
{
    const Checkpoint *best = nullptr;
    for (const Checkpoint &ck : ring_) {
        if (ck.instructions > n)
            break;
        best = &ck;
    }
    return best;
}

uint64_t
CheckpointRing::baseInstructions() const
{
    return ring_.empty() ? UINT64_MAX : ring_.front().instructions;
}

uint64_t
CheckpointRing::newestInstructions() const
{
    return ring_.empty() ? 0 : ring_.back().instructions;
}

} // namespace risc1::sim
