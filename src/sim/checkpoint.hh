/**
 * @file
 * Checkpoint ring: a bounded history of full machine snapshots taken
 * every `interval` retired instructions, ordered by retired-instruction
 * index. This is the storage half of reverse execution (the other half
 * is deterministic re-run via Cpu::runUntil): to travel to instruction
 * n, restore the latest checkpoint at or before n and replay forward
 * n - checkpoint instructions.
 *
 * The ring is bounded: once `capacity` checkpoints are held, recording
 * a newer one evicts the oldest, so the reachable history window is
 * roughly interval * capacity instructions (plus whatever the caller
 * pinned by priming the ring at its base state). Both knobs trade
 * memory and re-run latency against history depth; the numbers are
 * worked through in docs/DEBUGGING.md.
 *
 * Checkpoints must only be captured at clean machine states — in the
 * debugger, with software-breakpoint patches removed — because a
 * Snapshot contains the full memory image and would otherwise bake the
 * patch bytes into history.
 */

#ifndef RISC1_SIM_CHECKPOINT_HH
#define RISC1_SIM_CHECKPOINT_HH

#include <cstdint>
#include <deque>

#include "sim/cpu.hh"

namespace risc1::sim {

/** Capture policy of a CheckpointRing. */
struct CheckpointRingOptions
{
    /** Retired instructions between captures. Must be nonzero. */
    uint64_t interval = 10'000;

    /** Checkpoints retained; the oldest is evicted beyond this. */
    size_t capacity = 64;
};

/** Bounded, index-ordered snapshot history (see file comment). */
class CheckpointRing
{
  public:
    /** One checkpoint: the state after `instructions` retired. */
    struct Checkpoint
    {
        uint64_t instructions = 0;
        Snapshot state;
    };

    explicit CheckpointRing(CheckpointRingOptions options = {});

    /** Drop all checkpoints (new program loaded). */
    void clear();

    /**
     * Record the Cpu's current state. A capture at an index already
     * held is a no-op; a capture older than the newest entry is
     * rejected (the ring is append-only in instruction order).
     */
    void capture(const Cpu &cpu);

    /**
     * True when `instructions` is at least `interval` past the newest
     * checkpoint (or the ring is empty) — the caller's cue to pause at
     * the next boundary and capture().
     */
    bool due(uint64_t instructions) const;

    /** Next capture boundary at or after `instructions`. */
    uint64_t nextBoundary(uint64_t instructions) const;

    /** Latest checkpoint with instructions <= n; nullptr if none. */
    const Checkpoint *latestAtOrBefore(uint64_t n) const;

    /**
     * Oldest retained index — the beginning of reachable history —
     * or UINT64_MAX when the ring is empty.
     */
    uint64_t baseInstructions() const;

    /** Newest retained index, or 0 when the ring is empty. */
    uint64_t newestInstructions() const;

    size_t size() const { return ring_.size(); }
    bool empty() const { return ring_.empty(); }
    uint64_t interval() const { return options_.interval; }

  private:
    CheckpointRingOptions options_;
    std::deque<Checkpoint> ring_; //!< ascending by instructions
};

} // namespace risc1::sim

#endif // RISC1_SIM_CHECKPOINT_HH
