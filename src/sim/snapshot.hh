/**
 * @file
 * Snapshot serialization: a Cpu checkpoint rendered to a versioned,
 * self-describing byte stream, so checkpoints can be written to disk
 * as crash reproducers (the lockstep sentinel's DivergenceReport
 * carries one) and reloaded in a later process.
 *
 * The stream is guarded two ways. A magic/version header rejects
 * foreign or stale files, and a 64-bit configuration hash of the
 * architecturally relevant CpuOptions fields rejects a snapshot taken
 * under a different machine configuration — restoring a 4-window
 * checkpoint into an 8-window Cpu must be a typed error, never UB.
 * Engine-selection fields (predecode/threaded/fuse/superblock/trace)
 * and stop policies (maxInstructions, watchdogCycles) are deliberately
 * excluded from the hash: they change how fast the machine runs, not
 * which states it passes through, so a reproducer captured on the
 * superblock engine replays on the reference interpreter.
 *
 * Every malformed input — truncated stream, version skew, config-hash
 * mismatch, structural corruption — throws SnapshotError with a
 * machine-checkable Kind; deserialization never trusts a length field
 * without bounds-checking it first. See docs/ROBUSTNESS.md for the
 * exact layout.
 */

#ifndef RISC1_SIM_SNAPSHOT_HH
#define RISC1_SIM_SNAPSHOT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/cpu.hh"

namespace risc1::sim {

/** Current serialization format version. */
constexpr uint32_t SnapshotFormatVersion = 1;

/** Typed failure of snapshot deserialization. */
class SnapshotError : public std::runtime_error
{
  public:
    enum class Kind : uint8_t
    {
        Truncated,      //!< stream ended inside a field
        BadMagic,       //!< not a snapshot stream at all
        BadVersion,     //!< produced by a different format version
        ConfigMismatch, //!< CpuOptions hash differs from the reader's
        Corrupt,        //!< structurally invalid (bad sizes, trailing bytes)
    };

    SnapshotError(Kind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/**
 * Hash of the CpuOptions fields that determine the architectural state
 * trajectory: window geometry, cycle costs, stack/spill layout, halt
 * convention, interrupt/trap vectors and the address-space limit.
 * Two configurations with equal hashes produce interchangeable
 * snapshots (see the file comment for what is deliberately excluded).
 */
uint64_t configHash(const CpuOptions &options);

/** Render `snap`, taken under `options`, to the versioned stream. */
std::vector<uint8_t> serializeSnapshot(const Snapshot &snap,
                                       const CpuOptions &options);

/**
 * Parse a serialized snapshot for a Cpu configured with `options`.
 * Throws SnapshotError on any malformed input or configuration
 * mismatch; on success the result is safe to pass to Cpu::restore()
 * on any Cpu whose configHash matches.
 */
Snapshot deserializeSnapshot(const std::vector<uint8_t> &bytes,
                             const CpuOptions &options);

} // namespace risc1::sim

#endif // RISC1_SIM_SNAPSHOT_HH
