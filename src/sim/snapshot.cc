#include "sim/snapshot.hh"

#include "sim/serial.hh"
#include "support/logging.hh"

namespace risc1::sim {

namespace {

/** Stream magic: "R1SN", little-endian. */
constexpr uint32_t SnapshotMagic = 0x4e533152;

void
writeMemStats(ByteWriter &w, const MemStats &m)
{
    w.u64(m.instFetches);
    w.u64(m.dataReads);
    w.u64(m.dataWrites);
    w.u64(m.dataReadBytes);
    w.u64(m.dataWriteBytes);
}

MemStats
readMemStats(ByteReader &r)
{
    MemStats m;
    m.instFetches = r.u64();
    m.dataReads = r.u64();
    m.dataWrites = r.u64();
    m.dataReadBytes = r.u64();
    m.dataWriteBytes = r.u64();
    return m;
}

// The SimStats field list below must stay in sync with sim/stats.hh;
// a new statistic means a new field here and a SnapshotFormatVersion
// bump (test_snapshot.cc round-trips every field).

void
writeStats(ByteWriter &w, const SimStats &s)
{
    w.u64(s.instructions);
    w.u64(s.cycles);
    w.u32(static_cast<uint32_t>(s.perOpcode.size()));
    for (const auto &[op, count] : s.perOpcode) {
        w.u8(static_cast<uint8_t>(op));
        w.u64(count);
    }
    for (uint64_t c : s.perClass)
        w.u64(c);
    w.u64(s.branches);
    w.u64(s.branchesTaken);
    w.u64(s.nopsExecuted);
    w.u64(s.calls);
    w.u64(s.returns);
    w.u64(s.interruptsTaken);
    w.u64(s.trapsTaken);
    w.u64(s.windowOverflows);
    w.u64(s.windowUnderflows);
    w.u64(s.spillWords);
    w.u64(s.refillWords);
    w.u64(s.callDepth);
    w.u64(s.maxCallDepth);
    writeMemStats(w, s.memory);
    w.u64(s.sbDispatches);
    w.u64(s.sbInstructions);
    w.u64(s.sbBlocksFormed);
    w.u64(s.sbBlocksDemoted);
    w.u64(s.sbLoopIters);
    w.u64(s.sbChained);
}

SimStats
readStats(ByteReader &r)
{
    SimStats s;
    s.instructions = r.u64();
    s.cycles = r.u64();
    const uint32_t nops = r.u32();
    r.checkCount(nops, 9);
    for (uint32_t i = 0; i < nops; ++i) {
        const auto op = static_cast<isa::Opcode>(r.u8());
        s.perOpcode[op] = r.u64();
    }
    for (uint64_t &c : s.perClass)
        c = r.u64();
    s.branches = r.u64();
    s.branchesTaken = r.u64();
    s.nopsExecuted = r.u64();
    s.calls = r.u64();
    s.returns = r.u64();
    s.interruptsTaken = r.u64();
    s.trapsTaken = r.u64();
    s.windowOverflows = r.u64();
    s.windowUnderflows = r.u64();
    s.spillWords = r.u64();
    s.refillWords = r.u64();
    s.callDepth = r.u64();
    s.maxCallDepth = r.u64();
    s.memory = readMemStats(r);
    s.sbDispatches = r.u64();
    s.sbInstructions = r.u64();
    s.sbBlocksFormed = r.u64();
    s.sbBlocksDemoted = r.u64();
    s.sbLoopIters = r.u64();
    s.sbChained = r.u64();
    return s;
}

Snapshot
parseSnapshot(ByteReader &r, const CpuOptions &options)
{
    const size_t magic_at = r.offset();
    const uint32_t magic = r.u32();
    if (magic != SnapshotMagic)
        throw SnapshotError(
            SnapshotError::Kind::BadMagic,
            strprintf("snapshot: bad magic 0x%08x at byte %zu", magic,
                      magic_at));
    const size_t version_at = r.offset();
    const uint32_t version = r.u32();
    if (version != SnapshotFormatVersion)
        throw SnapshotError(
            SnapshotError::Kind::BadVersion,
            strprintf("snapshot: format version %u at byte %zu, this "
                      "build reads version %u",
                      version, version_at, SnapshotFormatVersion));
    const size_t hash_at = r.offset();
    const uint64_t hash = r.u64();
    const uint64_t want = configHash(options);
    if (hash != want)
        throw SnapshotError(
            SnapshotError::Kind::ConfigMismatch,
            strprintf("snapshot: config hash %016llx at byte %zu does "
                      "not match this Cpu's %016llx (different window "
                      "geometry, timing model, memory layout or "
                      "vectors)",
                      static_cast<unsigned long long>(hash), hash_at,
                      static_cast<unsigned long long>(want)));

    Snapshot snap;
    const size_t nregs_at = r.offset();
    const uint32_t nregs = r.u32();
    if (nregs != options.windows.physCount())
        throw SnapshotError(
            SnapshotError::Kind::Corrupt,
            strprintf("snapshot: %u registers recorded at byte %zu, "
                      "configuration has %u",
                      nregs, nregs_at, options.windows.physCount()));
    snap.regs.resize(nregs);
    for (uint32_t &reg : snap.regs)
        reg = r.u32();

    const uint32_t npages = r.u32();
    r.checkCount(npages, 4 + Memory::PageSize);
    snap.pages.reserve(npages);
    uint32_t prev_index = 0;
    for (uint32_t i = 0; i < npages; ++i) {
        const size_t index_at = r.offset();
        const uint32_t index = r.u32();
        if (i != 0 && index <= prev_index)
            throw SnapshotError(
                SnapshotError::Kind::Corrupt,
                strprintf("snapshot: page indices not strictly "
                          "ascending at page %u (byte %zu)",
                          i, index_at));
        prev_index = index;
        std::vector<uint8_t> page(Memory::PageSize);
        r.bytes(page.data(), page.size());
        snap.pages.emplace_back(index, std::move(page));
    }

    snap.memStats = readMemStats(r);
    snap.stats = readStats(r);

    const size_t fl_at = r.offset();
    const uint8_t fl = r.u8();
    if (fl > 0xf)
        throw SnapshotError(
            SnapshotError::Kind::Corrupt,
            strprintf("snapshot: bad flag byte 0x%02x at byte %zu", fl,
                      fl_at));
    snap.flags.z = (fl & 1) != 0;
    snap.flags.n = (fl & 2) != 0;
    snap.flags.v = (fl & 4) != 0;
    snap.flags.c = (fl & 8) != 0;
    snap.pc = r.u32();
    snap.npc = r.u32();
    snap.lastPc = r.u32();
    snap.spillSp = r.u32();
    const size_t cwp_at = r.offset();
    snap.cwp = r.u32();
    if (snap.cwp >= options.windows.numWindows)
        throw SnapshotError(
            SnapshotError::Kind::Corrupt,
            strprintf("snapshot: cwp %u at byte %zu out of range "
                      "(%u windows)",
                      snap.cwp, cwp_at, options.windows.numWindows));
    snap.resident = r.u32();
    snap.spilled = r.u64();
    snap.ie = r.u8() != 0;
    snap.halted = r.u8() != 0;
    snap.interruptPending = r.u8() != 0;

    const uint32_t nring = r.u32();
    r.checkCount(nring, 4);
    snap.pcRing.resize(nring);
    for (uint32_t &pc : snap.pcRing)
        pc = r.u32();
    snap.pcRingPos = r.u32();
    snap.pcRingCount = r.u64();

    if (r.remaining() != 0)
        throw SnapshotError(
            SnapshotError::Kind::Corrupt,
            strprintf("snapshot: %zu trailing bytes after the last "
                      "field at byte %zu",
                      r.remaining(), r.offset()));
    return snap;
}

} // namespace

uint64_t
configHash(const CpuOptions &o)
{
    uint64_t h = FnvOffset;
    fnvU64(h, o.windows.numWindows);
    fnvU64(h, o.timing.aluCycles);
    fnvU64(h, o.timing.loadCycles);
    fnvU64(h, o.timing.storeCycles);
    fnvU64(h, o.timing.branchCycles);
    fnvU64(h, o.timing.callCycles);
    fnvU64(h, o.timing.retCycles);
    fnvU64(h, o.timing.miscCycles);
    fnvU64(h, o.timing.windowTrapOverhead);
    fnvU64(h, o.stackTop);
    fnvU64(h, o.spillBase);
    fnvU64(h, o.haltOnZeroTarget ? 1 : 0);
    fnvU64(h, o.interruptVector);
    fnvU64(h, o.trapVector);
    fnvU64(h, o.memLimit);
    return h;
}

std::vector<uint8_t>
serializeSnapshot(const Snapshot &snap, const CpuOptions &options)
{
    ByteWriter w;
    w.u32(SnapshotMagic);
    w.u32(SnapshotFormatVersion);
    w.u64(configHash(options));

    w.u32(static_cast<uint32_t>(snap.regs.size()));
    for (uint32_t reg : snap.regs)
        w.u32(reg);

    w.u32(static_cast<uint32_t>(snap.pages.size()));
    for (const auto &[index, bytes] : snap.pages) {
        w.u32(index);
        w.bytes(bytes.data(), bytes.size()); // always Memory::PageSize
    }

    writeMemStats(w, snap.memStats);
    writeStats(w, snap.stats);

    w.u8(static_cast<uint8_t>((snap.flags.z ? 1 : 0) |
                              (snap.flags.n ? 2 : 0) |
                              (snap.flags.v ? 4 : 0) |
                              (snap.flags.c ? 8 : 0)));
    w.u32(snap.pc);
    w.u32(snap.npc);
    w.u32(snap.lastPc);
    w.u32(snap.spillSp);
    w.u32(snap.cwp);
    w.u32(snap.resident);
    w.u64(snap.spilled);
    w.u8(snap.ie ? 1 : 0);
    w.u8(snap.halted ? 1 : 0);
    w.u8(snap.interruptPending ? 1 : 0);

    w.u32(static_cast<uint32_t>(snap.pcRing.size()));
    for (uint32_t pc : snap.pcRing)
        w.u32(pc);
    w.u32(snap.pcRingPos);
    w.u64(snap.pcRingCount);
    return w.take();
}

Snapshot
deserializeSnapshot(const std::vector<uint8_t> &bytes,
                    const CpuOptions &options)
{
    ByteReader r(bytes);
    try {
        return parseSnapshot(r, options);
    } catch (const ByteStreamTruncated &t) {
        if (t.countCheck)
            throw SnapshotError(
                SnapshotError::Kind::Truncated,
                strprintf("snapshot: count at byte %zu needs %zu "
                          "bytes but only %zu remain",
                          t.offset, t.need, bytes.size() - t.offset));
        throw SnapshotError(
            SnapshotError::Kind::Truncated,
            strprintf("snapshot: stream truncated at byte %zu (need "
                      "%zu more)",
                      t.offset, t.need));
    }
}

} // namespace risc1::sim
