/**
 * @file
 * Guest-visible execution faults. Thrown by the memory system and the
 * executors; caught by Cpu::run / VaxCpu::run, which either deliver
 * them architecturally through the trap vector (RISC I) or convert
 * them into a Fault stop with a crash report.
 */

#ifndef RISC1_SIM_FAULT_HH
#define RISC1_SIM_FAULT_HH

#include <cstdint>
#include <string>

#include "isa/trapcause.hh"

namespace risc1::sim {

/** An error attributable to the guest program (not a simulator bug). */
struct SimFault
{
    std::string message;
    uint32_t addr = 0; //!< faulting memory address or PC, if relevant
    isa::TrapCause cause = isa::TrapCause::None; //!< architected cause
};

} // namespace risc1::sim

#endif // RISC1_SIM_FAULT_HH
