/**
 * @file
 * Guest-visible execution faults. Thrown by the memory system and the
 * executor, caught by Cpu::run which converts them into a Fault stop.
 */

#ifndef RISC1_SIM_FAULT_HH
#define RISC1_SIM_FAULT_HH

#include <cstdint>
#include <string>

namespace risc1::sim {

/** An error attributable to the guest program (not a simulator bug). */
struct SimFault
{
    std::string message;
    uint32_t addr = 0; //!< faulting memory address or PC, if relevant
};

} // namespace risc1::sim

#endif // RISC1_SIM_FAULT_HH
