#include "net/frame.hh"

#include "sim/serial.hh"
#include "support/logging.hh"

namespace risc1::net {

namespace {

/** magic + version + type + payload length. */
constexpr size_t HeaderBytes = 4 + 4 + 1 + 4;

uint32_t
readU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
readU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/**
 * Read exactly `n` bytes. Returns false if the peer closed cleanly
 * before the first byte and `at_boundary` allows it; a close after at
 * least one byte is always a TruncatedStream.
 */
bool
recvExact(Channel &channel, uint8_t *out, size_t n, bool at_boundary)
{
    size_t got = 0;
    while (got < n) {
        const size_t r = channel.recv(
            reinterpret_cast<char *>(out) + got, n - got);
        if (r == 0) {
            if (got == 0 && at_boundary)
                return false;
            throw FleetProtocolError(
                FleetProtocolError::Kind::TruncatedStream,
                strprintf("fleet frame: peer closed after %zu of %zu "
                          "bytes",
                          got, n));
        }
        got += r;
    }
    return true;
}

} // namespace

std::vector<uint8_t>
encodeFrame(FrameType type, const std::vector<uint8_t> &payload,
            uint32_t version)
{
    sim::ByteWriter w;
    w.u32(FleetFrameMagic);
    w.u32(version);
    w.u8(static_cast<uint8_t>(type));
    w.u32(static_cast<uint32_t>(payload.size()));
    if (!payload.empty())
        w.bytes(payload.data(), payload.size());
    w.u64(sim::fnv1a(w.buffer().data(), w.size()));
    return w.take();
}

void
sendFrame(Channel &channel, FrameType type,
          const std::vector<uint8_t> &payload)
{
    const std::vector<uint8_t> bytes = encodeFrame(type, payload);
    channel.send(reinterpret_cast<const char *>(bytes.data()),
                 bytes.size());
}

std::optional<Frame>
recvFrame(Channel &channel)
{
    uint8_t header[HeaderBytes];
    if (!recvExact(channel, header, sizeof(header), true))
        return std::nullopt;

    const uint32_t magic = readU32(header);
    if (magic != FleetFrameMagic)
        throw FleetProtocolError(
            FleetProtocolError::Kind::CorruptFrame,
            strprintf("fleet frame: bad magic 0x%08x (expected "
                      "0x%08x)",
                      magic, FleetFrameMagic));
    const uint32_t version = readU32(header + 4);
    if (version != FleetProtocolVersion)
        throw FleetProtocolError(
            FleetProtocolError::Kind::VersionSkew,
            strprintf("fleet frame: protocol version %u, this build "
                      "speaks version %u",
                      version, FleetProtocolVersion));
    const uint8_t type = header[8];
    if (type < static_cast<uint8_t>(FrameType::Hello) ||
        type > static_cast<uint8_t>(FrameType::Bye))
        throw FleetProtocolError(
            FleetProtocolError::Kind::CorruptFrame,
            strprintf("fleet frame: unknown type %u", type));
    const uint32_t len = readU32(header + 9);
    if (len > MaxFramePayload)
        throw FleetProtocolError(
            FleetProtocolError::Kind::CorruptFrame,
            strprintf("fleet frame: payload length %u exceeds the "
                      "%u-byte bound",
                      len, MaxFramePayload));

    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.resize(len);
    if (len > 0)
        recvExact(channel, frame.payload.data(), len, false);

    uint8_t trailer[8];
    recvExact(channel, trailer, sizeof(trailer), false);
    uint64_t h = sim::FnvOffset;
    sim::fnvBytes(h, header, sizeof(header));
    sim::fnvBytes(h, frame.payload.data(), frame.payload.size());
    const uint64_t want = readU64(trailer);
    if (h != want)
        throw FleetProtocolError(
            FleetProtocolError::Kind::CorruptFrame,
            strprintf("fleet frame: checksum %016llx does not match "
                      "the frame's %016llx (corrupt frame)",
                      static_cast<unsigned long long>(h),
                      static_cast<unsigned long long>(want)));
    return frame;
}

} // namespace risc1::net
