#include "net/transport.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/logging.hh"

namespace risc1::net {

namespace {

[[noreturn]] void
throwErrno(const char *what)
{
    throw TransportError(strprintf("%s: %s", what,
                                   std::strerror(errno)));
}

} // namespace

bool
Channel::waitReadable(int timeout_ms)
{
    (void)timeout_ms;
    return true;
}

FdChannel::FdChannel(int fd) : fd_(fd) {}

FdChannel::~FdChannel()
{
    if (fd_ >= 0)
        ::close(fd_);
}

size_t
FdChannel::recv(char *out, size_t n)
{
    for (;;) {
        const ssize_t got = ::read(fd_, out, n);
        if (got >= 0)
            return static_cast<size_t>(got);
        if (errno == EINTR)
            continue;
        throwErrno("recv");
    }
}

void
FdChannel::send(const char *data, size_t n)
{
    while (n > 0) {
        // MSG_NOSIGNAL: a peer that vanished mid-send must surface as
        // a TransportError (EPIPE), not kill the process with SIGPIPE
        // — the fleet coordinator treats it as one dead worker.
        const ssize_t put = ::send(fd_, data, n, MSG_NOSIGNAL);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            if (errno == ENOTSOCK) {
                // socketpair ends are sockets too, but keep plain file
                // descriptors working for any future pipe transport.
                const ssize_t wrote = ::write(fd_, data, n);
                if (wrote < 0)
                    throwErrno("send");
                data += wrote;
                n -= static_cast<size_t>(wrote);
                continue;
            }
            throwErrno("send");
        }
        data += put;
        n -= static_cast<size_t>(put);
    }
}

bool
FdChannel::waitReadable(int timeout_ms)
{
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    for (;;) {
        const int got = ::poll(&pfd, 1, timeout_ms);
        if (got > 0)
            return true; // readable, or HUP/ERR — recv() will tell
        if (got == 0)
            return false;
        if (errno == EINTR)
            continue;
        throwErrno("poll");
    }
}

TcpListener::TcpListener(uint16_t port) : fd_(-1), port_(0)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throwErrno("socket");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        ::close(fd_);
        fd_ = -1;
        throwErrno("bind");
    }
    if (::listen(fd_, 8) != 0) {
        ::close(fd_);
        fd_ = -1;
        throwErrno("listen");
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        ::close(fd_);
        fd_ = -1;
        throwErrno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener()
{
    close();
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

std::unique_ptr<Channel>
TcpListener::accept()
{
    for (;;) {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) {
            const int one = 1;
            ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return std::make_unique<FdChannel>(client);
        }
        if (errno == EINTR)
            continue;
        throwErrno("accept");
    }
}

std::unique_ptr<Channel>
connectTcp(const std::string &host, uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw TransportError(
            strprintf("connect: bad IPv4 address '%s'", host.c_str()));
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        throwErrno("connect");
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::make_unique<FdChannel>(fd);
}

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
loopbackPair()
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        throwErrno("socketpair");
    return {std::make_unique<FdChannel>(fds[0]),
            std::make_unique<FdChannel>(fds[1])};
}

} // namespace risc1::net
