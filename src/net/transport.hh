/**
 * @file
 * Shared byte transports: a blocking Channel interface, a TCP
 * listener/connector pair built on POSIX sockets, and an in-process
 * loopback pair (socketpair). Originally built for the GDB stub
 * (src/debug still re-exports these names from its old location via a
 * thin alias header), the layer now also carries the campaign fleet's
 * worker protocol (core/fleetnet over net/frame), so both protocol
 * stacks see exactly the same transport semantics.
 *
 * All transport failures throw TransportError with errno text; a clean
 * peer close is not an error — recv() returns 0 and the session layer
 * winds down the connection.
 */

#ifndef RISC1_NET_TRANSPORT_HH
#define RISC1_NET_TRANSPORT_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace risc1::net {

/** Failure of a socket operation (never a clean peer close). */
class TransportError : public std::runtime_error
{
  public:
    explicit TransportError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** A blocking, bidirectional byte stream. */
class Channel
{
  public:
    virtual ~Channel() = default;

    /**
     * Read up to `n` bytes into `out`, blocking until at least one is
     * available. Returns the count read, or 0 on clean peer close.
     */
    virtual size_t recv(char *out, size_t n) = 0;

    /** Write all `n` bytes (looping over short writes). */
    virtual void send(const char *data, size_t n) = 0;

    /**
     * Wait until a recv() would not block (data or peer close
     * pending), up to `timeout_ms` milliseconds. Returns whether it
     * would. The base implementation returns true — "just try the
     * blocking recv" — which is correct for transports that cannot
     * poll; FdChannel polls the descriptor, which is what the fleet's
     * heartbeat/stall watchdog is built on.
     */
    virtual bool waitReadable(int timeout_ms);
};

/** Channel over an owned file descriptor (TCP or socketpair end). */
class FdChannel : public Channel
{
  public:
    explicit FdChannel(int fd);
    ~FdChannel() override;

    FdChannel(const FdChannel &) = delete;
    FdChannel &operator=(const FdChannel &) = delete;

    size_t recv(char *out, size_t n) override;
    void send(const char *data, size_t n) override;
    bool waitReadable(int timeout_ms) override;

    int fd() const { return fd_; }

  private:
    int fd_;
};

/**
 * Listening TCP socket on 127.0.0.1. Port 0 asks the kernel for an
 * ephemeral port; port() reports the bound one either way (drivers
 * print it / write it to --port-file so scripted clients can attach).
 */
class TcpListener
{
  public:
    explicit TcpListener(uint16_t port);
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    uint16_t port() const { return port_; }

    /** Block until a client connects. */
    std::unique_ptr<Channel> accept();

    /**
     * Unblock a concurrent accept() and make every further accept()
     * throw: shutdown + close the listening socket. Idempotent; the
     * accept loop of a server thread checks its own stop flag when
     * accept() throws after this.
     */
    void close();

  private:
    int fd_;
    uint16_t port_;
};

/** Connect to a listening server (GDB test client, fleet worker). */
std::unique_ptr<Channel> connectTcp(const std::string &host,
                                    uint16_t port);

/**
 * In-process connected pair: bytes sent on one end arrive on the
 * other. A server serves one end while the test drives the other.
 */
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
loopbackPair();

} // namespace risc1::net

#endif // RISC1_NET_TRANSPORT_HH
