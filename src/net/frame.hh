/**
 * @file
 * The framed, versioned wire protocol of the distributed campaign
 * fleet: length-prefixed frames over a net::Channel byte stream. Every
 * frame is
 *
 *     | magic u32 "R1FL" | version u32 | type u8 | payload len u32 |
 *     | payload bytes    | fnv1a-64 checksum over every prior byte |
 *
 * little-endian throughout (the same sim/serial conventions as the
 * snapshot and shard-cache formats). The checksum makes a corrupt
 * frame a typed error instead of a misparse, and the version field in
 * every frame (not just a hello) means a coordinator/worker build skew
 * is detected on the very first exchange.
 *
 * All malformed input throws FleetProtocolError with a
 * machine-checkable Kind: VersionSkew (peer speaks another protocol
 * version), CorruptFrame (bad magic, checksum mismatch, unknown type,
 * oversized length — bytes arrived but they are wrong), or
 * TruncatedStream (the peer closed mid-frame). A clean close at a
 * frame boundary is not an error: recvFrame returns nullopt. The
 * receiver must treat every kind as "quarantine this peer", never as
 * "kill the campaign" — see core/fleetnet.
 */

#ifndef RISC1_NET_FRAME_HH
#define RISC1_NET_FRAME_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/transport.hh"

namespace risc1::net {

/** Frame magic: "R1FL", little-endian. */
constexpr uint32_t FleetFrameMagic = 0x4c463152;

/** Current fleet wire-protocol version, carried in every frame. */
constexpr uint32_t FleetProtocolVersion = 1;

/** Upper bound on a frame payload (a shard record is ~KBs). */
constexpr uint32_t MaxFramePayload = 64u << 20;

/** Typed failure of fleet-frame decoding (see file comment). */
class FleetProtocolError : public std::runtime_error
{
  public:
    enum class Kind : uint8_t
    {
        VersionSkew,     //!< peer speaks a different protocol version
        CorruptFrame,    //!< bad magic / checksum / type / length
        TruncatedStream, //!< peer closed inside a frame
    };

    FleetProtocolError(Kind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/** Fleet message types (the protocol's whole vocabulary). */
enum class FrameType : uint8_t
{
    Hello = 1,    //!< worker -> coordinator: role + capabilities
    Welcome = 2,  //!< coordinator -> worker: heartbeat cadence
    Assign = 3,   //!< coordinator -> worker: one shard of work
    ShardDone = 4, //!< worker -> coordinator: the shard record verbatim
    ShardFail = 5, //!< worker -> coordinator: typed execution failure
    Heartbeat = 6, //!< worker -> coordinator: liveness while computing
    StatusReq = 7, //!< any client -> coordinator: live status text
    StatusResp = 8, //!< coordinator -> client: rendered status
    Bye = 9,       //!< coordinator -> worker: no more work, wind down
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Bye;
    std::vector<uint8_t> payload;
};

/**
 * Render a frame to raw wire bytes (exposed so tests — and the chaos
 * hooks — can corrupt a frame deliberately before sending it).
 * `version` defaults to the build's protocol version; passing another
 * value fabricates the version-skew case.
 */
std::vector<uint8_t>
encodeFrame(FrameType type, const std::vector<uint8_t> &payload = {},
            uint32_t version = FleetProtocolVersion);

/** Encode and send one frame. Throws TransportError on I/O failure. */
void sendFrame(Channel &channel, FrameType type,
               const std::vector<uint8_t> &payload = {});

/**
 * Receive one frame. Returns nullopt on a clean peer close at a frame
 * boundary; throws FleetProtocolError on any malformed input and
 * TransportError on I/O failure.
 */
std::optional<Frame> recvFrame(Channel &channel);

} // namespace risc1::net

#endif // RISC1_NET_FRAME_HH
