/**
 * @file
 * GDB Remote Serial Protocol framing: the `$<payload>#<checksum>` wire
 * format, its escape convention, and the hex helpers every packet
 * handler shares. This layer is pure — no sockets, no machine — so the
 * corruption/truncation behaviour is unit-testable byte by byte
 * (tests/test_gdbstub.cc).
 *
 * Wire format (GDB remote protocol, "Overview" section):
 *
 *     $<payload>#<two lowercase hex digits>
 *
 * The checksum is the modulo-256 sum of the raw payload bytes as
 * transmitted (i.e. before unescaping). Within a payload, the bytes
 * `$`, `#`, `}` and `*` are escaped as `}` followed by the byte XOR
 * 0x20. A receiver answers `+` (good) or `-` (bad, please retransmit)
 * unless no-acknowledgment mode was negotiated.
 *
 * Every malformed input throws RspError with a machine-checkable Kind;
 * the session layer turns a BadChecksum into a `-` retransmit request
 * and keeps the connection alive — a corrupt packet must never kill
 * the debugger.
 */

#ifndef RISC1_DEBUG_RSP_HH
#define RISC1_DEBUG_RSP_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace risc1::debug {

/** Typed failure of RSP framing or field parsing. */
class RspError : public std::runtime_error
{
  public:
    enum class Kind : uint8_t
    {
        Truncated,   //!< frame ended before `#` + 2 checksum digits
        BadChecksum, //!< checksum digits disagree with the payload
        BadHex,      //!< non-hex digit where hex was required
        Malformed,   //!< structurally invalid packet field
        Oversized,   //!< inbound frame exceeds MaxPacketBytes
    };

    RspError(Kind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/** Ceiling on one inbound frame; advertised via qSupported. */
constexpr size_t MaxPacketBytes = 16384;

// ---- hex helpers --------------------------------------------------------

/** Value of one hex digit; throws RspError{BadHex} otherwise. */
unsigned hexNibble(char c);

/** Encode a byte range as lowercase hex pairs. */
std::string hexEncode(const uint8_t *data, size_t n);
std::string hexEncode(std::string_view text);

/** Decode hex pairs; throws RspError{BadHex} on odd length/non-hex. */
std::string hexDecode(std::string_view hex);

/**
 * Parse a hex number (no 0x prefix, as RSP fields are written).
 * Throws RspError{Malformed} when empty or longer than 16 digits and
 * RspError{BadHex} on a non-hex digit.
 */
uint64_t parseHex(std::string_view field);

/** One 32-bit value as 8 hex digits of little-endian bytes (`g`/`p`). */
std::string hexWordLe(uint32_t value);

/** Inverse of hexWordLe; throws like hexDecode. */
uint32_t parseHexWordLe(std::string_view hex8);

// ---- framing ------------------------------------------------------------

/** Render `payload` as one escaped, checksummed `$...#xx` frame. */
std::string frame(std::string_view payload);

/**
 * Incremental frame decoder. Feed raw transport bytes with push();
 * next() yields one decoded event at a time until it returns NeedMore.
 * A throw from next() (RspError) consumes the offending frame, so the
 * caller can answer `-` and keep decoding the same stream.
 */
class FrameDecoder
{
  public:
    enum class Event : uint8_t
    {
        NeedMore,  //!< buffer holds no complete event
        Packet,    //!< a well-formed packet; payload() is valid
        Ack,       //!< `+`
        Nak,       //!< `-` (receiver requests retransmission)
        Interrupt, //!< raw 0x03 (gdb's Ctrl-C)
    };

    /** Append raw bytes from the transport. */
    void push(const char *data, size_t n);

    /**
     * Decode the next event from the buffered bytes. Returns NeedMore
     * when incomplete; throws RspError{BadChecksum|Oversized} after
     * consuming the bad frame. Bytes outside any frame that are not
     * `+`/`-`/0x03 are line noise and skipped (the protocol's stated
     * resynchronization rule: scan for `$`).
     */
    Event next();

    /** Unescaped payload of the last Packet event. */
    const std::string &payload() const { return payload_; }

  private:
    std::string buf_;
    std::string payload_;
};

} // namespace risc1::debug

#endif // RISC1_DEBUG_RSP_HH
