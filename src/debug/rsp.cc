#include "debug/rsp.hh"

#include "support/logging.hh"

namespace risc1::debug {

namespace {

constexpr char HexDigits[] = "0123456789abcdef";

bool
needsEscape(char c)
{
    return c == '$' || c == '#' || c == '}' || c == '*';
}

} // namespace

unsigned
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f')
        return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F')
        return static_cast<unsigned>(c - 'A' + 10);
    throw RspError(RspError::Kind::BadHex,
                   strprintf("rsp: '%c' (0x%02x) is not a hex digit", c,
                             static_cast<unsigned char>(c)));
}

std::string
hexEncode(const uint8_t *data, size_t n)
{
    std::string out;
    out.reserve(n * 2);
    for (size_t i = 0; i < n; ++i) {
        out.push_back(HexDigits[data[i] >> 4]);
        out.push_back(HexDigits[data[i] & 0xf]);
    }
    return out;
}

std::string
hexEncode(std::string_view text)
{
    return hexEncode(reinterpret_cast<const uint8_t *>(text.data()),
                     text.size());
}

std::string
hexDecode(std::string_view hex)
{
    if (hex.size() % 2 != 0)
        throw RspError(RspError::Kind::BadHex,
                       strprintf("rsp: odd hex string length %zu",
                                 hex.size()));
    std::string out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2)
        out.push_back(static_cast<char>((hexNibble(hex[i]) << 4) |
                                        hexNibble(hex[i + 1])));
    return out;
}

uint64_t
parseHex(std::string_view field)
{
    if (field.empty())
        throw RspError(RspError::Kind::Malformed,
                       "rsp: empty hex field");
    if (field.size() > 16)
        throw RspError(RspError::Kind::Malformed,
                       strprintf("rsp: hex field of %zu digits "
                                 "overflows 64 bits",
                                 field.size()));
    uint64_t value = 0;
    for (char c : field)
        value = (value << 4) | hexNibble(c);
    return value;
}

std::string
hexWordLe(uint32_t value)
{
    uint8_t bytes[4];
    for (unsigned i = 0; i < 4; ++i)
        bytes[i] = static_cast<uint8_t>(value >> (8 * i));
    return hexEncode(bytes, sizeof(bytes));
}

uint32_t
parseHexWordLe(std::string_view hex8)
{
    if (hex8.size() != 8)
        throw RspError(RspError::Kind::Malformed,
                       strprintf("rsp: register value is %zu hex "
                                 "digits, expected 8",
                                 hex8.size()));
    const std::string bytes = hexDecode(hex8);
    uint32_t value = 0;
    for (unsigned i = 0; i < 4; ++i)
        value |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i]))
                 << (8 * i);
    return value;
}

std::string
frame(std::string_view payload)
{
    std::string out;
    out.reserve(payload.size() + 4);
    out.push_back('$');
    unsigned sum = 0;
    for (char c : payload) {
        if (needsEscape(c)) {
            out.push_back('}');
            out.push_back(static_cast<char>(c ^ 0x20));
            sum += static_cast<unsigned char>('}');
            sum += static_cast<unsigned char>(c ^ 0x20);
        } else {
            out.push_back(c);
            sum += static_cast<unsigned char>(c);
        }
    }
    out.push_back('#');
    out.push_back(HexDigits[(sum & 0xff) >> 4]);
    out.push_back(HexDigits[sum & 0xf]);
    return out;
}

void
FrameDecoder::push(const char *data, size_t n)
{
    buf_.append(data, n);
}

FrameDecoder::Event
FrameDecoder::next()
{
    // Skip line noise up to the first byte that can start an event.
    size_t start = 0;
    while (start < buf_.size() && buf_[start] != '$' &&
           buf_[start] != '+' && buf_[start] != '-' &&
           buf_[start] != '\x03')
        ++start;
    buf_.erase(0, start);
    if (buf_.empty())
        return Event::NeedMore;

    switch (buf_[0]) {
      case '+':
        buf_.erase(0, 1);
        return Event::Ack;
      case '-':
        buf_.erase(0, 1);
        return Event::Nak;
      case '\x03':
        buf_.erase(0, 1);
        return Event::Interrupt;
      default:
        break; // '$': fall through to frame decoding
    }

    const size_t hash = buf_.find('#', 1);
    if (hash == std::string::npos) {
        if (buf_.size() > MaxPacketBytes) {
            buf_.clear();
            throw RspError(
                RspError::Kind::Oversized,
                strprintf("rsp: frame exceeds %zu bytes with no '#'",
                          MaxPacketBytes));
        }
        return Event::NeedMore;
    }
    if (buf_.size() < hash + 3)
        return Event::NeedMore; // checksum digits still in flight

    const std::string_view raw(buf_.data() + 1, hash - 1);
    unsigned sum = 0;
    for (char c : raw)
        sum += static_cast<unsigned char>(c);
    sum &= 0xff;

    unsigned sent;
    try {
        sent = (hexNibble(buf_[hash + 1]) << 4) |
               hexNibble(buf_[hash + 2]);
    } catch (const RspError &) {
        buf_.erase(0, hash + 3);
        throw RspError(RspError::Kind::BadChecksum,
                       "rsp: non-hex checksum digits");
    }

    if (sent != sum) {
        buf_.erase(0, hash + 3);
        throw RspError(RspError::Kind::BadChecksum,
                       strprintf("rsp: checksum %02x, computed %02x",
                                 sent, sum));
    }

    // Verified: unescape into payload_ and consume the frame.
    payload_.clear();
    payload_.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '}') {
            if (i + 1 >= raw.size()) {
                buf_.erase(0, hash + 3);
                throw RspError(RspError::Kind::Malformed,
                               "rsp: escape byte at end of payload");
            }
            payload_.push_back(static_cast<char>(raw[++i] ^ 0x20));
        } else {
            payload_.push_back(raw[i]);
        }
    }
    buf_.erase(0, hash + 3);
    return Event::Packet;
}

} // namespace risc1::debug
