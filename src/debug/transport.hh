/**
 * @file
 * Compatibility alias: the byte transports the GDB stub was built on
 * (Channel, FdChannel, TcpListener, TransportError, connectTcp,
 * loopbackPair) now live in the shared net layer (net/transport.hh),
 * where the distributed campaign fleet uses them too. This header
 * keeps every existing `debug/transport.hh` include and
 * `risc1::debug::` spelling compiling unchanged; new code should
 * include net/transport.hh directly.
 */

#ifndef RISC1_DEBUG_TRANSPORT_HH
#define RISC1_DEBUG_TRANSPORT_HH

#include "net/transport.hh"

namespace risc1::debug {

using net::Channel;
using net::connectTcp;
using net::FdChannel;
using net::loopbackPair;
using net::TcpListener;
using net::TransportError;

} // namespace risc1::debug

#endif // RISC1_DEBUG_TRANSPORT_HH
