#include "debug/replay.hh"

#include <cstdio>
#include <fstream>

#include "sim/serial.hh"
#include "sim/snapshot.hh"
#include "support/logging.hh"

namespace risc1::debug {

namespace {

/** "r1rp" little-endian. */
constexpr uint32_t ReplayMagic = 0x70723172;

} // namespace

ReplayFile
replayFromDivergence(const sim::DivergenceReport &report,
                     const sim::CpuOptions &options)
{
    ReplayFile replay;
    replay.options = options;
    replay.snapshot = report.reproducer;
    replay.snapshotInstructions = report.reproducerInstructions;
    replay.targetInstructions = report.instructionIndex;
    replay.targetPc = report.pc;
    replay.note = report.str();
    return replay;
}

std::vector<uint8_t>
serializeReplay(const ReplayFile &replay)
{
    const sim::CpuOptions &o = replay.options;
    sim::ByteWriter w;
    w.u32(ReplayMagic);
    w.u32(ReplayFormatVersion);

    // The architectural configuration, field by field: enough to
    // rebuild a Cpu whose configHash accepts the embedded snapshot.
    w.u32(o.windows.numWindows);
    w.u32(o.timing.aluCycles);
    w.u32(o.timing.loadCycles);
    w.u32(o.timing.storeCycles);
    w.u32(o.timing.branchCycles);
    w.u32(o.timing.callCycles);
    w.u32(o.timing.retCycles);
    w.u32(o.timing.miscCycles);
    w.u32(o.timing.windowTrapOverhead);
    w.u32(o.stackTop);
    w.u32(o.spillBase);
    w.u8(o.haltOnZeroTarget ? 1 : 0);
    w.u32(o.interruptVector);
    w.u32(o.trapVector);
    w.u32(o.memLimit);
    w.u64(o.watchdogCycles);

    w.u64(replay.snapshotInstructions);
    w.u64(replay.targetInstructions);
    w.u32(replay.targetPc);

    w.u32(static_cast<uint32_t>(replay.note.size()));
    w.bytes(reinterpret_cast<const uint8_t *>(replay.note.data()),
            replay.note.size());

    w.u64(replay.snapshot.size());
    w.bytes(replay.snapshot.data(), replay.snapshot.size());
    return w.take();
}

ReplayFile
deserializeReplay(const std::vector<uint8_t> &bytes)
{
    try {
        sim::ByteReader r(bytes);
        const uint32_t magic = r.u32();
        if (magic != ReplayMagic)
            throw ReplayError(
                ReplayError::Kind::BadMagic,
                strprintf("replay: magic 0x%08x, expected 0x%08x — "
                          "not a replay file",
                          magic, ReplayMagic));
        const uint32_t version = r.u32();
        if (version != ReplayFormatVersion)
            throw ReplayError(
                ReplayError::Kind::BadVersion,
                strprintf("replay: format version %u, this build "
                          "reads %u",
                          version, ReplayFormatVersion));

        ReplayFile replay;
        sim::CpuOptions &o = replay.options;
        o.windows.numWindows = r.u32();
        if (o.windows.numWindows == 0 || o.windows.numWindows > 1024)
            throw ReplayError(
                ReplayError::Kind::Corrupt,
                strprintf("replay: absurd window count %u",
                          o.windows.numWindows));
        o.timing.aluCycles = r.u32();
        o.timing.loadCycles = r.u32();
        o.timing.storeCycles = r.u32();
        o.timing.branchCycles = r.u32();
        o.timing.callCycles = r.u32();
        o.timing.retCycles = r.u32();
        o.timing.miscCycles = r.u32();
        o.timing.windowTrapOverhead = r.u32();
        o.stackTop = r.u32();
        o.spillBase = r.u32();
        o.haltOnZeroTarget = r.u8() != 0;
        o.interruptVector = r.u32();
        o.trapVector = r.u32();
        o.memLimit = r.u32();
        o.watchdogCycles = r.u64();

        replay.snapshotInstructions = r.u64();
        replay.targetInstructions = r.u64();
        replay.targetPc = r.u32();
        if (replay.targetInstructions < replay.snapshotInstructions)
            throw ReplayError(
                ReplayError::Kind::Corrupt,
                strprintf("replay: target instruction %llu precedes "
                          "the snapshot's %llu",
                          static_cast<unsigned long long>(
                              replay.targetInstructions),
                          static_cast<unsigned long long>(
                              replay.snapshotInstructions)));

        const uint32_t note_len = r.u32();
        r.checkCount(note_len, 1);
        replay.note.resize(note_len);
        r.bytes(reinterpret_cast<uint8_t *>(replay.note.data()),
                note_len);

        const uint64_t snap_len = r.u64();
        r.checkCount(snap_len, 1);
        replay.snapshot.resize(snap_len);
        r.bytes(replay.snapshot.data(), snap_len);
        if (r.remaining() != 0)
            throw ReplayError(
                ReplayError::Kind::Corrupt,
                strprintf("replay: %zu trailing bytes after the "
                          "snapshot",
                          r.remaining()));

        // Validate the embedded snapshot against the configuration we
        // just rebuilt, so a corrupt file fails here with a typed
        // error instead of deep inside the driver.
        try {
            sim::deserializeSnapshot(replay.snapshot, o);
        } catch (const sim::SnapshotError &err) {
            throw ReplayError(
                ReplayError::Kind::Corrupt,
                strprintf("replay: embedded snapshot rejected: %s",
                          err.what()));
        }
        return replay;
    } catch (const sim::ByteStreamTruncated &t) {
        throw ReplayError(
            ReplayError::Kind::Truncated,
            strprintf("replay: stream ends at byte %zu needing %zu "
                      "more%s",
                      t.offset, t.need,
                      t.countCheck ? " (corrupt count field)" : ""));
    }
}

void
writeReplayFile(const std::string &path, const ReplayFile &replay)
{
    const std::vector<uint8_t> bytes = serializeReplay(replay);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw ReplayError(
                ReplayError::Kind::Io,
                strprintf("replay: cannot open '%s' for writing",
                          tmp.c_str()));
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out.flush())
            throw ReplayError(
                ReplayError::Kind::Io,
                strprintf("replay: short write to '%s'", tmp.c_str()));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw ReplayError(
            ReplayError::Kind::Io,
            strprintf("replay: cannot rename '%s' to '%s'",
                      tmp.c_str(), path.c_str()));
}

ReplayFile
readReplayFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ReplayError(
            ReplayError::Kind::Io,
            strprintf("replay: cannot open '%s'", path.c_str()));
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return deserializeReplay(bytes);
}

} // namespace risc1::debug
