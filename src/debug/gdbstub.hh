/**
 * @file
 * The GDB Remote Serial Protocol server: one session of stock `gdb`
 * (or any RSP client) driving a TimeTravel machine. The stub speaks
 * the classic run-control vocabulary — `g`/`G`/`p`/`P` registers,
 * `m`/`M` memory, `Z0`/`z0` software breakpoints, `s`/`c`/`vCont`
 * motion — plus the reverse-execution pair `bs`/`bc`, which the
 * checkpoint-and-re-run layer makes exact. See docs/DEBUGGING.md for
 * the supported-packet table and a worked session transcript.
 *
 * The packet dispatcher (handle()) is transport-free: it maps one
 * payload string to one reply string, so tests exercise every command
 * without a socket. serve() wraps it with framing, acknowledgments
 * and retransmission over a Channel.
 *
 * Register presentation: the target description served via
 * qXfer:features:read declares 33 32-bit registers — the current
 * window's r0..r31 followed by pc — under `riscv:rv32`, whose x0
 * conveniently shares RISC I's hardwired-zero r0. Register 33 (npc,
 * the delayed-transfer slot) is readable via `p` for delay-slot
 * forensics but deliberately kept out of `g`.
 */

#ifndef RISC1_DEBUG_GDBSTUB_HH
#define RISC1_DEBUG_GDBSTUB_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "debug/timetravel.hh"
#include "debug/transport.hh"

namespace risc1::debug {

/** Session knobs of a GdbStub. */
struct GdbStubOptions
{
    /** Log every packet exchange (wire debugging) to `log`. */
    bool verbose = false;
    std::ostream *log = nullptr; //!< defaults to std::cerr
};

/** One RSP session over a TimeTravel machine (see file comment). */
class GdbStub
{
  public:
    /** How serve() ended. */
    enum class SessionEnd : uint8_t
    {
        Detached, //!< client sent `D` — machine stays debuggable
        Killed,   //!< client sent `k` — driver should exit
        Eof,      //!< transport closed (client gone)
    };

    GdbStub(TimeTravel &machine, GdbStubOptions options = {});

    /**
     * Serve one session on `channel` until detach, kill or EOF.
     * Corrupt inbound frames are answered with `-` (retransmit
     * request) and never terminate the session.
     */
    SessionEnd serve(Channel &channel);

    /**
     * Dispatch one decoded payload to its handler and return the
     * reply payload (unframed). Exposed so tests can drive the full
     * command surface without a transport. Unknown commands return
     * the empty reply, per protocol; malformed arguments return
     * `Exx` errors — neither ends the session.
     */
    std::string handle(std::string_view payload);

    bool killRequested() const { return killed_; }

  private:
    std::string handleQuery(std::string_view payload);
    std::string handleRegistersRead() const;
    std::string handleRegistersWrite(std::string_view hex);
    std::string handleRegRead(std::string_view field) const;
    std::string handleRegWrite(std::string_view args);
    std::string handleMemRead(std::string_view args) const;
    std::string handleMemWrite(std::string_view args);
    std::string handleBreakpoint(std::string_view payload, bool set);
    std::string handleVPacket(std::string_view payload);
    std::string handleMonitor(std::string_view hex_cmd);

    /** Map a Stop to its RSP stop reply. */
    std::string stopReply(const Stop &stop);

    /** One-line state summary (monitor info / driver banner). */
    std::string statusLine() const;

    TimeTravel &tt_;
    GdbStubOptions options_;

    bool noAck_ = false;          //!< QStartNoAckMode negotiated
    bool clientSwbreak_ = false;  //!< client accepts swbreak stop reason
    bool detached_ = false;
    bool killed_ = false;

    /**
     * A halt is reported as a SIGTRAP stop the first time (the user
     * can inspect and travel backwards); motion attempted while still
     * halted reports the W00 exit instead. Reverse motion re-arms it.
     */
    bool haltReported_ = false;

    Stop lastStop_;
};

} // namespace risc1::debug

#endif // RISC1_DEBUG_GDBSTUB_HH
