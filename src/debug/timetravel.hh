/**
 * @file
 * Time travel over a Cpu: forward execution with software breakpoints,
 * and reverse execution as checkpoint-restore plus deterministic
 * re-run. The machinery is exactly PR 5's rewind/replay made
 * interactive: a sim::CheckpointRing captures the state every K
 * retired instructions, and travelling to instruction n restores the
 * latest checkpoint at or before n and replays forward with
 * Cpu::runUntil — which every engine honours exactly, so the state at
 * n is byte-identical no matter which engine (reference, threaded,
 * superblock) did the running.
 *
 * Software breakpoints use the classic patched-opcode scheme when the
 * machine has no guest trap vector (the word at the breakpoint address
 * is replaced by 0x00000000, an undecodable encoding, so the engines
 * run at full speed and the resulting IllegalOpcode fault — detected
 * before any architectural side effect — parks the machine exactly at
 * the breakpoint PC). With a trap vector configured the fault would be
 * delivered to the guest instead, so the stub falls back to a
 * step-and-compare loop. Patches live in memory only while the
 * machine is running: every stop, and in particular every checkpoint
 * capture, sees clean memory, so history never contains patch bytes.
 */

#ifndef RISC1_DEBUG_TIMETRAVEL_HH
#define RISC1_DEBUG_TIMETRAVEL_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "isa/trapcause.hh"
#include "sim/checkpoint.hh"
#include "sim/cpu.hh"

namespace risc1::debug {

/** Why a forward or backward motion stopped. */
enum class StopKind : uint8_t
{
    Step,         //!< the requested step(s) retired
    Breakpoint,   //!< parked at a software breakpoint
    Halted,       //!< guest halted (transfer to address 0)
    Fault,        //!< unhandled guest fault — the end of this history
    Watchdog,     //!< cycle watchdog expired
    InstLimit,    //!< CpuOptions::maxInstructions reached
    HistoryBegin, //!< reverse motion reached the oldest checkpoint
};

/** One stop event, with enough context for a GDB stop reply. */
struct Stop
{
    StopKind kind = StopKind::Step;
    uint32_t pc = 0;
    isa::TrapCause cause = isa::TrapCause::None; //!< Fault stops
    std::string message;                         //!< Fault/Watchdog text
};

/** Tuning of the checkpoint ring (see docs/DEBUGGING.md). */
struct TimeTravelOptions
{
    /** Retired instructions between checkpoints. */
    uint64_t checkpointInterval = 10'000;

    /** Checkpoints retained (oldest evicted beyond this). */
    size_t checkpointCapacity = 64;
};

/** Interactive forward/backward execution over one Cpu. */
class TimeTravel
{
  public:
    /**
     * Wrap `cpu`, which must stay alive and loaded for this object's
     * lifetime. Call prime() once the machine is at the state that
     * should anchor history (freshly loaded, or a restored snapshot).
     */
    TimeTravel(sim::Cpu &cpu, TimeTravelOptions options = {});

    /** Capture the current state as the base of reachable history. */
    void prime();

    sim::Cpu &cpu() { return cpu_; }
    const sim::Cpu &cpu() const { return cpu_; }

    /** Current position: retired-instruction count. */
    uint64_t index() const { return cpu_.stats().instructions; }

    /** Oldest reachable instruction index. */
    uint64_t historyBase() const { return ring_.baseInstructions(); }

    /** Checkpoints currently held. */
    size_t checkpointCount() const { return ring_.size(); }

    uint64_t checkpointInterval() const { return ring_.interval(); }

    // ---- breakpoints ----------------------------------------------------

    /** Set a breakpoint; false if `addr` is not word-aligned. */
    bool addBreakpoint(uint32_t addr);

    /** Clear a breakpoint; false if none was set at `addr`. */
    bool removeBreakpoint(uint32_t addr);

    const std::set<uint32_t> &breakpoints() const { return bps_; }

    // ---- motion ---------------------------------------------------------

    /** Execute one instruction (on the configured engine). */
    Stop stepForward();

    /** Run until a breakpoint, halt, fault or limit. */
    Stop continueForward();

    /**
     * Run forward to absolute instruction index `target` (or an
     * earlier halt/fault), dropping checkpoints along the way —
     * the replay-driver entry point: it makes every instruction in
     * [history base, target] cheaply reachable backwards.
     */
    Stop runTo(uint64_t target);

    /** Travel `n` instructions backwards. */
    Stop stepBack(uint64_t n = 1);

    /**
     * Travel backwards to the most recent breakpoint hit strictly
     * before the current position (HistoryBegin if there is none).
     */
    Stop continueBack();

    /**
     * Reposition to absolute instruction index `target`, which must
     * lie in [historyBase(), current forward horizon]. Forward replay
     * runs on the configured engine.
     */
    void seek(uint64_t target);

  private:
    /**
     * Classify a runUntil result into a Stop; with `patched` set, an
     * IllegalOpcode fault at a patched site is a Breakpoint stop.
     */
    Stop classify(const sim::ExecResult &result, bool patched);

    /** Poke the breakpoint patches into memory. */
    void insertPatches();

    /** Restore the original words (memory clean again). */
    void removePatches();

    /** Capture a checkpoint if the ring says one is due. */
    void maybeCheckpoint();

    sim::Cpu &cpu_;
    sim::CheckpointRing ring_;
    std::set<uint32_t> bps_;

    /** Original words under the active patches (empty when clean). */
    std::map<uint32_t, uint32_t> patched_;

    /**
     * Latched unhandled guest fault: the machine cannot execute past
     * it, so forward motion re-reports it; reverse motion clears it.
     */
    bool faulted_ = false;
    Stop faultStop_;
};

/** The undecodable word patched over breakpoint sites (opcode 0). */
constexpr uint32_t BreakpointWord = 0x00000000;

} // namespace risc1::debug

#endif // RISC1_DEBUG_TIMETRAVEL_HH
