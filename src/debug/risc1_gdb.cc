/**
 * @file
 * risc1_gdb: serve a RISC I guest to stock gdb over TCP, with time
 * travel. Two ways to get a machine:
 *
 *     risc1_gdb [options] WORKLOAD        # freshly loaded suite program
 *     risc1_gdb [options] --replay FILE   # parked at a replay target
 *
 * In workload mode the machine sits at its entry point; attach gdb
 * (`target remote :PORT`) and drive it. In replay mode the file — a
 * lockstep DivergenceReport converted by the sentinel, or a campaign
 * reproducer from `bench_fault_campaign --repro` — is restored and run
 * forward to its target instruction, dropping checkpoints along the
 * way, so the session starts parked at the first bad instruction with
 * reverse execution (`reverse-stepi`, `reverse-continue`) available
 * back to the snapshot. See docs/DEBUGGING.md for a worked transcript.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/cli.hh"
#include "debug/gdbstub.hh"
#include "debug/replay.hh"
#include "debug/timetravel.hh"
#include "debug/transport.hh"
#include "jit/arena.hh"
#include "sim/snapshot.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

using namespace risc1;

namespace {

[[noreturn]] void
printUsage(const char *prog)
{
    const char *base = std::strrchr(prog, '/');
    base = base ? base + 1 : prog;
    std::printf(
        "usage: %s [options] WORKLOAD\n"
        "       %s [options] --replay FILE\n"
        "       %s --list\n"
        "\n"
        "Serve a RISC I guest to gdb (`target remote :PORT`) with\n"
        "reverse execution. See docs/DEBUGGING.md.\n"
        "\n"
        "  --replay FILE           restore a replay file (lockstep\n"
        "                          divergence or bench_fault_campaign\n"
        "                          --repro artifact) and park at its\n"
        "                          target instruction\n"
        "  --port N                TCP port to listen on (127.0.0.1);\n"
        "                          default 0 picks an ephemeral port,\n"
        "                          printed on stdout\n"
        "  --port-file FILE        also write the bound port to FILE\n"
        "                          (atomically), for scripted clients\n"
        "  --engine NAME           ref | threaded | superblock | jit\n"
        "                          (default superblock); every engine\n"
        "                          produces byte-identical state (jit\n"
        "                          needs an x86-64 host)\n"
        "  --jit-no-chain          disable native block-to-block\n"
        "                          chaining under --engine jit (inert\n"
        "                          otherwise); state and statistics\n"
        "                          are identical either way\n"
        "  --scale N               workload problem size (default: the\n"
        "                          workload's standard scale)\n"
        "  --checkpoint-interval N instructions between checkpoints\n"
        "                          (default 10000)\n"
        "  --checkpoint-capacity N checkpoints retained (default 64);\n"
        "                          reachable history is roughly\n"
        "                          interval x capacity instructions\n"
        "  --once                  exit after the first session ends\n"
        "                          instead of accepting the next client\n"
        "  --list                  list the suite workloads and exit\n"
        "  --verbose               log every packet exchange to stderr\n"
        "  --help, -h              show this message and exit\n",
        base, base, base);
    std::exit(0);
}

/** Configure the execution engine; false on an unknown name. */
bool
applyEngine(sim::CpuOptions &opts, const std::string &name)
{
    if (name == "ref") {
        opts.predecode = false;
        opts.threaded = false;
        opts.superblock = false;
    } else if (name == "threaded") {
        opts.predecode = true;
        opts.threaded = true;
        opts.superblock = false;
    } else if (name == "superblock") {
        opts.predecode = true;
        opts.threaded = true;
        opts.superblock = true;
    } else if (name == "jit") {
        if (!jit::hostSupported())
            fatal("risc1_gdb: --engine jit has no templates for "
                  "host arch %s (x86-64 only); use ref, threaded or "
                  "superblock",
                  jit::hostArchName());
        opts.predecode = true;
        opts.threaded = true;
        opts.superblock = true;
        opts.jit = true;
    } else {
        return false;
    }
    return true;
}

void
writePortFile(const std::string &path, uint16_t port)
{
    // Atomic (tmp + rename): a polling client never reads a partial
    // number.
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        fatal("risc1_gdb: cannot write port file '%s'", tmp.c_str());
    std::fprintf(f, "%u\n", port);
    std::fclose(f);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("risc1_gdb: cannot rename '%s' to '%s'", tmp.c_str(),
              path.c_str());
}

uint64_t
parseCount(const std::string &text, const char *what)
{
    char *end = nullptr;
    const uint64_t v = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0' || v == 0)
        fatal("risc1_gdb: %s needs a positive number, got '%s'", what,
              text.c_str());
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        for (int i = 1; i < argc; ++i)
            if (std::strcmp(argv[i], "--help") == 0 ||
                std::strcmp(argv[i], "-h") == 0)
                printUsage(argv[0]);

        if (core::consumeFlag(argc, argv, "--list")) {
            for (const auto &wl : workloads::allWorkloads())
                std::printf("%-12s %s\n", wl.name.c_str(),
                            wl.description.c_str());
            return 0;
        }

        const bool once = core::consumeFlag(argc, argv, "--once");
        const bool verbose = core::consumeFlag(argc, argv, "--verbose");
        const auto replay_path =
            core::consumeValueFlag(argc, argv, "--replay");
        const auto port_opt = core::consumeValueFlag(argc, argv, "--port");
        const auto port_file =
            core::consumeValueFlag(argc, argv, "--port-file");
        const auto engine = core::consumeValueFlag(argc, argv, "--engine");
        const bool jit_no_chain =
            core::consumeFlag(argc, argv, "--jit-no-chain");
        const auto scale_opt =
            core::consumeValueFlag(argc, argv, "--scale");
        const auto ival_opt =
            core::consumeValueFlag(argc, argv, "--checkpoint-interval");
        const auto cap_opt =
            core::consumeValueFlag(argc, argv, "--checkpoint-capacity");

        debug::TimeTravelOptions tt_opts;
        if (ival_opt)
            tt_opts.checkpointInterval =
                parseCount(*ival_opt, "--checkpoint-interval");
        if (cap_opt)
            tt_opts.checkpointCapacity = static_cast<size_t>(
                parseCount(*cap_opt, "--checkpoint-capacity"));

        uint16_t port = 0;
        if (port_opt) {
            char *end = nullptr;
            const unsigned long v = std::strtoul(port_opt->c_str(),
                                                 &end, 0);
            if (end == port_opt->c_str() || *end != '\0' || v > 65535)
                fatal("risc1_gdb: bad --port '%s'", port_opt->c_str());
            port = static_cast<uint16_t>(v);
        }

        // ---- build the machine -----------------------------------------
        sim::CpuOptions cpu_opts;
        std::unique_ptr<sim::Cpu> cpu;
        std::unique_ptr<debug::TimeTravel> tt;

        if (replay_path) {
            if (replay_path->empty())
                fatal("risc1_gdb: --replay needs a file");
            if (argc > 1)
                fatal("risc1_gdb: --replay takes no workload argument "
                      "(got '%s')", argv[1]);
            const debug::ReplayFile replay =
                debug::readReplayFile(*replay_path);
            cpu_opts = replay.options;
            if (engine && !applyEngine(cpu_opts, *engine))
                fatal("risc1_gdb: unknown --engine '%s' (ref, "
                      "threaded, superblock, jit)", engine->c_str());
            if (jit_no_chain)
                cpu_opts.jitChain = false;
            cpu = std::make_unique<sim::Cpu>(cpu_opts);
            cpu->restore(
                sim::deserializeSnapshot(replay.snapshot, cpu_opts));
            tt = std::make_unique<debug::TimeTravel>(*cpu, tt_opts);
            tt->prime();
            if (!replay.note.empty())
                std::printf("replay note: %s\n", replay.note.c_str());
            std::printf("replay: snapshot at instruction %llu, "
                        "running to target %llu...\n",
                        static_cast<unsigned long long>(
                            replay.snapshotInstructions),
                        static_cast<unsigned long long>(
                            replay.targetInstructions));
            tt->runTo(replay.targetInstructions);
            std::printf("parked at instruction %llu, pc 0x%08x",
                        static_cast<unsigned long long>(tt->index()),
                        cpu->pc());
            if (replay.targetPc != 0 && cpu->pc() != replay.targetPc)
                std::printf(" (warning: expected pc 0x%08x)",
                            replay.targetPc);
            std::printf("; history back to instruction %llu\n",
                        static_cast<unsigned long long>(
                            tt->historyBase()));
        } else {
            if (argc < 2)
                fatal("risc1_gdb: need a workload (see --list) or "
                      "--replay FILE; --help for usage");
            if (argc > 2)
                fatal("risc1_gdb: unexpected argument '%s'", argv[2]);
            const workloads::Workload *wl =
                workloads::findWorkload(argv[1]);
            if (!wl)
                fatal("risc1_gdb: unknown workload '%s' (see --list)",
                      argv[1]);
            const uint64_t scale =
                scale_opt ? parseCount(*scale_opt, "--scale")
                          : wl->defaultScale;
            if (engine && !applyEngine(cpu_opts, *engine))
                fatal("risc1_gdb: unknown --engine '%s' (ref, "
                      "threaded, superblock, jit)", engine->c_str());
            if (jit_no_chain)
                cpu_opts.jitChain = false;
            cpu = std::make_unique<sim::Cpu>(cpu_opts);
            cpu->load(workloads::buildRisc(*wl, scale));
            tt = std::make_unique<debug::TimeTravel>(*cpu, tt_opts);
            tt->prime();
            std::printf("loaded %s (scale %llu), entry pc 0x%08x\n",
                        wl->name.c_str(),
                        static_cast<unsigned long long>(scale),
                        cpu->pc());
        }

        // ---- serve ------------------------------------------------------
        debug::TcpListener listener(port);
        std::printf("risc1_gdb: listening on 127.0.0.1:%u — attach "
                    "with gdb's `target remote :%u`\n",
                    listener.port(), listener.port());
        std::fflush(stdout);
        if (port_file && !port_file->empty())
            writePortFile(*port_file, listener.port());

        debug::GdbStubOptions stub_opts;
        stub_opts.verbose = verbose;
        debug::GdbStub stub(*tt, stub_opts);
        for (;;) {
            std::unique_ptr<debug::Channel> channel = listener.accept();
            std::printf("risc1_gdb: client attached\n");
            std::fflush(stdout);
            const debug::GdbStub::SessionEnd end = stub.serve(*channel);
            switch (end) {
              case debug::GdbStub::SessionEnd::Detached:
                std::printf("risc1_gdb: client detached\n");
                break;
              case debug::GdbStub::SessionEnd::Killed:
                std::printf("risc1_gdb: killed by client\n");
                return 0;
              case debug::GdbStub::SessionEnd::Eof:
                std::printf("risc1_gdb: client disconnected\n");
                break;
            }
            std::fflush(stdout);
            if (once)
                return 0;
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 1;
    } catch (const debug::ReplayError &err) {
        std::fprintf(stderr, "risc1_gdb: %s\n", err.what());
        return 1;
    } catch (const debug::TransportError &err) {
        std::fprintf(stderr, "risc1_gdb: %s\n", err.what());
        return 1;
    } catch (const sim::SnapshotError &err) {
        std::fprintf(stderr, "risc1_gdb: %s\n", err.what());
        return 1;
    }
}
