#include "debug/timetravel.hh"

#include "support/logging.hh"

namespace risc1::debug {

TimeTravel::TimeTravel(sim::Cpu &cpu, TimeTravelOptions options)
    : cpu_(cpu), ring_(sim::CheckpointRingOptions{
                     options.checkpointInterval,
                     options.checkpointCapacity})
{}

void
TimeTravel::prime()
{
    ring_.clear();
    faulted_ = false;
    ring_.capture(cpu_);
}

bool
TimeTravel::addBreakpoint(uint32_t addr)
{
    if (addr % isa::InstBytes != 0)
        return false;
    bps_.insert(addr);
    return true;
}

bool
TimeTravel::removeBreakpoint(uint32_t addr)
{
    return bps_.erase(addr) != 0;
}

Stop
TimeTravel::classify(const sim::ExecResult &result, bool patched)
{
    Stop stop;
    switch (result.reason) {
      case sim::StopReason::Paused:
        stop.kind = StopKind::Step;
        stop.pc = cpu_.pc();
        return stop;
      case sim::StopReason::Halted:
        stop.kind = StopKind::Halted;
        stop.pc = cpu_.pc();
        return stop;
      case sim::StopReason::InstLimit:
        stop.kind = StopKind::InstLimit;
        stop.pc = cpu_.pc();
        return stop;
      case sim::StopReason::Watchdog:
        stop.kind = StopKind::Watchdog;
        stop.pc = result.faultPc;
        stop.cause = result.faultCause;
        stop.message = result.message;
        return stop;
      case sim::StopReason::Fault:
        if (patched &&
            result.faultCause == isa::TrapCause::IllegalOpcode &&
            patched_.count(result.faultPc) != 0) {
            stop.kind = StopKind::Breakpoint;
            stop.pc = result.faultPc;
            return stop;
        }
        stop.kind = StopKind::Fault;
        stop.pc = result.faultPc;
        stop.cause = result.faultCause;
        stop.message = result.message;
        faulted_ = true;
        faultStop_ = stop;
        return stop;
    }
    panic("TimeTravel: unexpected stop reason %u",
          static_cast<unsigned>(result.reason));
}

void
TimeTravel::insertPatches()
{
    for (uint32_t addr : bps_) {
        patched_.emplace(addr, cpu_.memory().peek32(addr));
        cpu_.memory().poke32(addr, BreakpointWord);
    }
}

void
TimeTravel::removePatches()
{
    for (const auto &[addr, word] : patched_)
        cpu_.memory().poke32(addr, word);
    patched_.clear();
}

void
TimeTravel::maybeCheckpoint()
{
    if (ring_.due(index()))
        ring_.capture(cpu_);
}

Stop
TimeTravel::stepForward()
{
    if (faulted_)
        return faultStop_;
    if (cpu_.halted())
        return Stop{StopKind::Halted, cpu_.pc(), isa::TrapCause::None,
                    {}};
    const Stop stop = classify(cpu_.runUntil(index() + 1), false);
    if (stop.kind == StopKind::Step || stop.kind == StopKind::Halted)
        maybeCheckpoint();
    return stop;
}

Stop
TimeTravel::continueForward()
{
    if (faulted_)
        return faultStop_;
    if (cpu_.halted())
        return Stop{StopKind::Halted, cpu_.pc(), isa::TrapCause::None,
                    {}};

    // Parked on a breakpoint: step over it first (the patch would
    // otherwise fault immediately with zero progress).
    if (bps_.count(cpu_.pc()) != 0) {
        const Stop stop = stepForward();
        if (stop.kind != StopKind::Step)
            return stop;
    }

    // With a guest trap vector, a patched opcode would be delivered to
    // the guest's own handler instead of parking the machine; fall
    // back to a step-and-compare scan.
    if (cpu_.options().trapVector != 0) {
        for (;;) {
            if (bps_.count(cpu_.pc()) != 0)
                return Stop{StopKind::Breakpoint, cpu_.pc(),
                            isa::TrapCause::None, {}};
            const Stop stop = stepForward();
            if (stop.kind != StopKind::Step)
                return stop;
        }
    }

    // Patched-opcode scheme: run the configured engine at full speed,
    // pausing at checkpoint boundaries so every capture (and every
    // stop) sees clean memory.
    insertPatches();
    for (;;) {
        const uint64_t bound = ring_.nextBoundary(index());
        const sim::ExecResult result = cpu_.runUntil(bound);
        if (result.reason == sim::StopReason::Paused) {
            removePatches();
            maybeCheckpoint();
            insertPatches();
            continue;
        }
        const Stop stop = classify(result, true);
        removePatches();
        if (stop.kind == StopKind::Halted)
            maybeCheckpoint();
        return stop;
    }
}

Stop
TimeTravel::runTo(uint64_t target)
{
    if (target <= index()) {
        seek(target);
        return Stop{StopKind::Step, cpu_.pc(), isa::TrapCause::None,
                    {}};
    }
    if (faulted_)
        return faultStop_;
    while (index() < target) {
        if (cpu_.halted())
            return Stop{StopKind::Halted, cpu_.pc(),
                        isa::TrapCause::None, {}};
        const uint64_t bound =
            std::min(target, ring_.nextBoundary(index()));
        const Stop stop = classify(cpu_.runUntil(bound), false);
        if (stop.kind == StopKind::Step ||
            stop.kind == StopKind::Halted)
            maybeCheckpoint();
        if (stop.kind != StopKind::Step)
            return stop;
    }
    return Stop{StopKind::Step, cpu_.pc(), isa::TrapCause::None, {}};
}

void
TimeTravel::seek(uint64_t target)
{
    const sim::CheckpointRing::Checkpoint *ck =
        ring_.latestAtOrBefore(target);
    if (ck == nullptr)
        fatal("TimeTravel::seek: instruction %llu is before the "
              "oldest retained checkpoint (%llu)",
              static_cast<unsigned long long>(target),
              static_cast<unsigned long long>(historyBase()));
    faulted_ = false;
    cpu_.restore(ck->state);
    if (ck->instructions < target) {
        const sim::ExecResult result = cpu_.runUntil(target);
        if (index() != target)
            panic("TimeTravel::seek: replay to %llu stopped at %llu "
                  "(%s) — nondeterministic re-run",
                  static_cast<unsigned long long>(target),
                  static_cast<unsigned long long>(index()),
                  result.message.empty() ? "no message"
                                         : result.message.c_str());
    }
}

Stop
TimeTravel::stepBack(uint64_t n)
{
    const uint64_t base = historyBase();
    if (base == UINT64_MAX || index() <= base)
        return Stop{StopKind::HistoryBegin, cpu_.pc(),
                    isa::TrapCause::None, {}};
    const uint64_t cur = index();
    if (n >= cur - base) {
        seek(base);
        return Stop{n == cur - base ? StopKind::Step
                                    : StopKind::HistoryBegin,
                    cpu_.pc(), isa::TrapCause::None, {}};
    }
    seek(cur - n);
    return Stop{StopKind::Step, cpu_.pc(), isa::TrapCause::None, {}};
}

Stop
TimeTravel::continueBack()
{
    const uint64_t base = historyBase();
    const uint64_t cur = index();
    if (base == UINT64_MAX || cur <= base)
        return Stop{StopKind::HistoryBegin, cpu_.pc(),
                    isa::TrapCause::None, {}};
    if (bps_.empty()) {
        seek(base);
        return Stop{StopKind::HistoryBegin, cpu_.pc(),
                    isa::TrapCause::None, {}};
    }

    // Scan checkpoint windows newest-first; within each, replay
    // step-by-step recording the last breakpoint hit before `upper`.
    uint64_t upper = cur;
    for (;;) {
        const sim::CheckpointRing::Checkpoint *ck =
            ring_.latestAtOrBefore(upper - 1);
        if (ck == nullptr)
            break; // no retained history below upper
        cpu_.restore(ck->state);
        faulted_ = false;
        uint64_t last_hit = UINT64_MAX;
        while (index() < upper && !cpu_.halted()) {
            if (bps_.count(cpu_.pc()) != 0)
                last_hit = index();
            const sim::ExecResult result = cpu_.runUntil(index() + 1);
            if (result.reason != sim::StopReason::Paused &&
                result.reason != sim::StopReason::Halted)
                break; // end of this history window
        }
        if (last_hit != UINT64_MAX) {
            seek(last_hit);
            return Stop{StopKind::Breakpoint, cpu_.pc(),
                        isa::TrapCause::None, {}};
        }
        if (ck->instructions <= base || ck->instructions >= upper)
            break;
        upper = ck->instructions;
    }
    seek(base);
    return Stop{StopKind::HistoryBegin, cpu_.pc(),
                isa::TrapCause::None, {}};
}

} // namespace risc1::debug
