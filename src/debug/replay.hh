/**
 * @file
 * Replay files: a durable, self-contained time-travel session. One
 * file carries (a) the architectural CpuOptions needed to rebuild a
 * compatible machine, (b) a serialized sim::Snapshot of a known-good
 * state, and (c) the target — the retired-instruction index and PC of
 * the first *bad* instruction the session should park at. Both
 * existing forensic artifacts convert into one:
 *
 *  - a lockstep DivergenceReport (sim/lockstep.hh): the snapshot is
 *    the last agreed state, the target is the first divergent
 *    instruction — `risc1_gdb --replay` drops you there with reverse
 *    execution available back to the snapshot;
 *  - a fault-campaign run (bench_fault_campaign --repro): the
 *    snapshot is the machine just after the bit flip landed, the
 *    target is where the run was first *detected* going wrong (the
 *    trap / hang site), so you can reverse-step from the detection
 *    point toward the injection.
 *
 * The format reuses sim/serial's little-endian streams; every
 * malformed input throws ReplayError with a machine-checkable Kind
 * (wrapping SnapshotError kinds for the embedded snapshot). See
 * docs/DEBUGGING.md for the workflow.
 */

#ifndef RISC1_DEBUG_REPLAY_HH
#define RISC1_DEBUG_REPLAY_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/cpu.hh"
#include "sim/lockstep.hh"

namespace risc1::debug {

/** Current replay-file format version. */
constexpr uint32_t ReplayFormatVersion = 1;

/** Typed failure of replay-file parsing. */
class ReplayError : public std::runtime_error
{
  public:
    enum class Kind : uint8_t
    {
        Io,         //!< file unreadable / unwritable
        Truncated,  //!< stream ended inside a field
        BadMagic,   //!< not a replay file
        BadVersion, //!< produced by a different format version
        Corrupt,    //!< structurally invalid (incl. bad embedded snapshot)
    };

    ReplayError(Kind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/** One parsed (or to-be-written) replay session. */
struct ReplayFile
{
    /**
     * Architectural machine configuration the snapshot was taken
     * under. Engine-selection fields keep their defaults: the replay
     * driver picks the engine, exactly as snapshots allow.
     */
    sim::CpuOptions options;

    /** Serialized sim::Snapshot of the known-good state. */
    std::vector<uint8_t> snapshot;

    /** Retired-instruction index the snapshot resumes at. */
    uint64_t snapshotInstructions = 0;

    /** Index of the first bad instruction — where the session parks. */
    uint64_t targetInstructions = 0;

    /** PC expected at the target (0 when unknown). */
    uint32_t targetPc = 0;

    /** Free-form provenance: divergence diff, injection description. */
    std::string note;
};

/** Build a replay session from a lockstep divergence report. */
ReplayFile replayFromDivergence(const sim::DivergenceReport &report,
                                const sim::CpuOptions &options);

/** Render to the versioned byte stream. */
std::vector<uint8_t> serializeReplay(const ReplayFile &replay);

/** Parse; throws ReplayError on any malformed input. */
ReplayFile deserializeReplay(const std::vector<uint8_t> &bytes);

/** Write to `path` (atomically: temp file + rename). */
void writeReplayFile(const std::string &path, const ReplayFile &replay);

/** Read `path`; throws ReplayError{Io} when unreadable. */
ReplayFile readReplayFile(const std::string &path);

} // namespace risc1::debug

#endif // RISC1_DEBUG_REPLAY_HH
