#include "debug/gdbstub.hh"

#include <iostream>

#include "debug/rsp.hh"
#include "support/logging.hh"

namespace risc1::debug {

namespace {

/** Registers in the `g` packet: r0..r31 then pc. */
constexpr unsigned GPacketRegs = 33;
/** `p`/`P` register numbers beyond the window registers. */
constexpr unsigned PcRegno = 32;
constexpr unsigned NpcRegno = 33;

/** Largest `m` read honoured in one packet. */
constexpr uint64_t MaxMemChunk = 0x2000;

/**
 * Target description served via qXfer:features:read. `riscv:rv32`
 * gives stock gdb a 32-bit little-endian machine whose x0 is
 * hardwired zero — exactly RISC I's r0 — so register windows aside,
 * the generic machinery (breakpoints, stepping, memory, reverse
 * execution) works unmodified.
 */
constexpr char TargetXml[] =
    "<?xml version=\"1.0\"?>\n"
    "<!DOCTYPE target SYSTEM \"gdb-target.dtd\">\n"
    "<target version=\"1.0\">\n"
    "  <architecture>riscv:rv32</architecture>\n"
    "  <feature name=\"org.gnu.gdb.riscv.cpu\">\n"
    "    <reg name=\"x0\" bitsize=\"32\" type=\"int\" regnum=\"0\"/>\n"
    "    <reg name=\"x1\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x2\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x3\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x4\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x5\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x6\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x7\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x8\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x9\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x10\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x11\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x12\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x13\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x14\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x15\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x16\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x17\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x18\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x19\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x20\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x21\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x22\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x23\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x24\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x25\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x26\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x27\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x28\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x29\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x30\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"x31\" bitsize=\"32\" type=\"int\"/>\n"
    "    <reg name=\"pc\" bitsize=\"32\" type=\"code_ptr\"/>\n"
    "  </feature>\n"
    "</target>\n";

/** Engine selection of `options`, as a short human label. */
const char *
engineName(const sim::CpuOptions &options)
{
    if (!options.predecode)
        return "reference";
    if (!options.threaded)
        return "predecode";
    if (options.superblock)
        return options.jit ? "jit" : "superblock";
    return options.fuse ? "threaded+fuse" : "threaded";
}

/** Split "a,b" / "a,b:c" style fields. */
std::string_view
fieldUpTo(std::string_view &rest, char sep)
{
    const size_t pos = rest.find(sep);
    if (pos == std::string_view::npos) {
        const std::string_view all = rest;
        rest = {};
        return all;
    }
    const std::string_view head = rest.substr(0, pos);
    rest.remove_prefix(pos + 1);
    return head;
}

} // namespace

GdbStub::GdbStub(TimeTravel &machine, GdbStubOptions options)
    : tt_(machine), options_(options)
{
    lastStop_ = Stop{StopKind::Step, tt_.cpu().pc(),
                     isa::TrapCause::None, {}};
}

std::string
GdbStub::stopReply(const Stop &stop)
{
    lastStop_ = stop;
    if (stop.kind != StopKind::Halted)
        haltReported_ = false;
    switch (stop.kind) {
      case StopKind::Step:
      case StopKind::InstLimit:
        return "S05";
      case StopKind::Breakpoint:
        return clientSwbreak_ ? "T05swbreak:;" : "S05";
      case StopKind::Halted:
        // First report: a SIGTRAP stop, so the user can inspect the
        // final state and travel backwards. Further motion while
        // still halted reports the exit.
        if (haltReported_)
            return "W00";
        haltReported_ = true;
        return "S05";
      case StopKind::Fault:
        switch (stop.cause) {
          case isa::TrapCause::IllegalOpcode:
            return "S04"; // SIGILL
          case isa::TrapCause::MisalignedAccess:
            return "S0a"; // SIGBUS
          case isa::TrapCause::OutOfRangeAddress:
          case isa::TrapCause::WindowExhausted:
            return "S0b"; // SIGSEGV
          default:
            return "S06"; // SIGABRT
        }
      case StopKind::Watchdog:
        return "S0e"; // SIGALRM
      case StopKind::HistoryBegin:
        return "T05replaylog:begin;";
    }
    panic("GdbStub: unhandled stop kind %u",
          static_cast<unsigned>(stop.kind));
}

std::string
GdbStub::statusLine() const
{
    const sim::Cpu &cpu = tt_.cpu();
    const uint64_t base = tt_.historyBase();
    return strprintf(
        "instruction %llu, pc 0x%08x, cwp %u | history base %llu, "
        "%zu checkpoints every %llu | engine %s | %zu breakpoints",
        static_cast<unsigned long long>(tt_.index()), cpu.pc(),
        cpu.cwp(),
        static_cast<unsigned long long>(base == UINT64_MAX ? 0 : base),
        tt_.checkpointCount(),
        static_cast<unsigned long long>(tt_.checkpointInterval()),
        engineName(cpu.options()), tt_.breakpoints().size());
}

std::string
GdbStub::handleRegistersRead() const
{
    std::string out;
    out.reserve(GPacketRegs * 8);
    for (unsigned reg = 0; reg < 32; ++reg)
        out += hexWordLe(tt_.cpu().reg(reg));
    out += hexWordLe(tt_.cpu().pc());
    return out;
}

std::string
GdbStub::handleRegistersWrite(std::string_view hex)
{
    if (hex.size() != GPacketRegs * 8)
        throw RspError(RspError::Kind::Malformed,
                       strprintf("G: %zu hex digits, expected %u",
                                 hex.size(), GPacketRegs * 8));
    for (unsigned reg = 1; reg < 32; ++reg) // r0 stays zero
        tt_.cpu().setReg(reg, parseHexWordLe(hex.substr(reg * 8, 8)));
    tt_.cpu().setPc(parseHexWordLe(hex.substr(32 * 8, 8)));
    return "OK";
}

std::string
GdbStub::handleRegRead(std::string_view field) const
{
    const uint64_t regno = parseHex(field);
    if (regno < 32)
        return hexWordLe(tt_.cpu().reg(static_cast<unsigned>(regno)));
    if (regno == PcRegno)
        return hexWordLe(tt_.cpu().pc());
    if (regno == NpcRegno)
        return hexWordLe(tt_.cpu().npc());
    return "E01";
}

std::string
GdbStub::handleRegWrite(std::string_view args)
{
    std::string_view rest = args;
    const std::string_view regno_field = fieldUpTo(rest, '=');
    if (rest.empty())
        throw RspError(RspError::Kind::Malformed,
                       "P: missing '=value'");
    const uint64_t regno = parseHex(regno_field);
    const uint32_t value = parseHexWordLe(rest);
    if (regno == 0)
        return "OK"; // r0 is hardwired zero
    if (regno < 32) {
        tt_.cpu().setReg(static_cast<unsigned>(regno), value);
        return "OK";
    }
    if (regno == PcRegno) {
        // Forcing the PC abandons any delayed transfer in flight —
        // the same discipline Cpu::setPc applies for tests.
        tt_.cpu().setPc(value);
        return "OK";
    }
    return "E01";
}

std::string
GdbStub::handleMemRead(std::string_view args) const
{
    std::string_view rest = args;
    const std::string_view addr_field = fieldUpTo(rest, ',');
    const uint32_t addr =
        static_cast<uint32_t>(parseHex(addr_field));
    const uint64_t len = parseHex(rest);
    if (len > MaxMemChunk)
        return "E03";
    std::string out;
    out.reserve(len * 2);
    for (uint64_t i = 0; i < len; ++i) {
        const uint8_t byte =
            tt_.cpu().memory().peek8(addr + static_cast<uint32_t>(i));
        out += hexEncode(&byte, 1);
    }
    return out;
}

std::string
GdbStub::handleMemWrite(std::string_view args)
{
    std::string_view rest = args;
    const std::string_view addr_field = fieldUpTo(rest, ',');
    const std::string_view len_field = fieldUpTo(rest, ':');
    const uint32_t addr =
        static_cast<uint32_t>(parseHex(addr_field));
    const uint64_t len = parseHex(len_field);
    const std::string bytes = hexDecode(rest);
    if (bytes.size() != len)
        throw RspError(RspError::Kind::Malformed,
                       strprintf("M: length field %llu but %zu data "
                                 "bytes",
                                 static_cast<unsigned long long>(len),
                                 bytes.size()));
    for (size_t i = 0; i < bytes.size(); ++i)
        tt_.cpu().memory().poke8(addr + static_cast<uint32_t>(i),
                                 static_cast<uint8_t>(bytes[i]));
    return "OK";
}

std::string
GdbStub::handleBreakpoint(std::string_view payload, bool set)
{
    // Z0,addr,kind / z0,addr,kind; only type 0 (software breakpoint)
    // is implemented — others get the empty "unsupported" reply.
    std::string_view rest = payload.substr(1);
    const std::string_view type_field = fieldUpTo(rest, ',');
    if (type_field != "0")
        return "";
    const std::string_view addr_field = fieldUpTo(rest, ',');
    const uint32_t addr =
        static_cast<uint32_t>(parseHex(addr_field));
    if (set)
        return tt_.addBreakpoint(addr) ? "OK" : "E02";
    return tt_.removeBreakpoint(addr) ? "OK" : "E02";
}

std::string
GdbStub::handleVPacket(std::string_view payload)
{
    if (payload == "vCont?")
        return "vCont;c;C;s;S";
    if (payload.rfind("vCont;", 0) == 0) {
        // Single-machine target: honour the first action, ignore the
        // per-thread suffixes.
        const std::string_view action = payload.substr(6);
        if (action.empty())
            throw RspError(RspError::Kind::Malformed,
                           "vCont: no action");
        switch (action[0]) {
          case 'c':
          case 'C':
            return stopReply(tt_.continueForward());
          case 's':
          case 'S':
            return stopReply(tt_.stepForward());
          default:
            return "E01";
        }
    }
    return ""; // other v-packets: unsupported
}

std::string
GdbStub::handleMonitor(std::string_view hex_cmd)
{
    const std::string cmd = hexDecode(hex_cmd);
    std::string text;
    if (cmd == "info") {
        text = statusLine() + "\n";
    } else if (cmd == "help") {
        text = "monitor commands: info (time-travel position, "
               "history window, engine)\n";
    } else {
        text = strprintf("unknown monitor command '%s' — try "
                         "'monitor help'\n",
                         cmd.c_str());
    }
    return hexEncode(text);
}

std::string
GdbStub::handleQuery(std::string_view payload)
{
    if (payload.rfind("qSupported", 0) == 0) {
        clientSwbreak_ =
            payload.find("swbreak+") != std::string_view::npos;
        return strprintf("PacketSize=%zx;QStartNoAckMode+;"
                         "qXfer:features:read+;ReverseStep+;"
                         "ReverseContinue+;swbreak+",
                         MaxPacketBytes);
    }
    if (payload == "qAttached")
        return "1";
    if (payload == "qC")
        return "QC1";
    if (payload == "qfThreadInfo")
        return "m1";
    if (payload == "qsThreadInfo")
        return "l";
    if (payload.rfind("qSymbol", 0) == 0)
        return "OK";
    if (payload == "qOffsets")
        return "Text=0;Data=0;Bss=0";
    if (payload.rfind("qRcmd,", 0) == 0)
        return handleMonitor(payload.substr(6));
    if (payload.rfind("qXfer:features:read:target.xml:", 0) == 0) {
        std::string_view rest = payload.substr(31);
        const std::string_view off_field = fieldUpTo(rest, ',');
        const uint64_t off = parseHex(off_field);
        const uint64_t len = parseHex(rest);
        const std::string_view xml(TargetXml);
        if (off >= xml.size())
            return "l";
        const std::string_view chunk =
            xml.substr(off, std::min<uint64_t>(len, xml.size() - off));
        return (off + chunk.size() == xml.size() ? "l" : "m") +
               std::string(chunk);
    }
    return "";
}

std::string
GdbStub::handle(std::string_view payload)
{
    if (payload.empty())
        return "";
    try {
        switch (payload[0]) {
          case '?':
            return stopReply(lastStop_);
          case 'g':
            return handleRegistersRead();
          case 'G':
            return handleRegistersWrite(payload.substr(1));
          case 'p':
            return handleRegRead(payload.substr(1));
          case 'P':
            return handleRegWrite(payload.substr(1));
          case 'm':
            return handleMemRead(payload.substr(1));
          case 'M':
            return handleMemWrite(payload.substr(1));
          case 'Z':
            return handleBreakpoint(payload, true);
          case 'z':
            return handleBreakpoint(payload, false);
          case 'c':
            if (payload.size() > 1)
                tt_.cpu().setPc(static_cast<uint32_t>(
                    parseHex(payload.substr(1))));
            return stopReply(tt_.continueForward());
          case 's':
            if (payload.size() > 1)
                tt_.cpu().setPc(static_cast<uint32_t>(
                    parseHex(payload.substr(1))));
            return stopReply(tt_.stepForward());
          case 'b':
            if (payload == "bs")
                return stopReply(tt_.stepBack());
            if (payload == "bc")
                return stopReply(tt_.continueBack());
            return "";
          case 'v':
            return handleVPacket(payload);
          case 'q':
            return handleQuery(payload);
          case 'Q':
            if (payload == "QStartNoAckMode") {
                noAck_ = true;
                return "OK";
            }
            return "";
          case 'H':
          case 'T':
            return "OK"; // single thread: every selector is right
          case 'D':
            detached_ = true;
            return "OK";
          case 'k':
            killed_ = true;
            return ""; // `k` has no reply
          default:
            return ""; // unknown command, per protocol
        }
    } catch (const RspError &err) {
        // Malformed arguments answer an error packet; the session —
        // and the machine — survive.
        if (options_.verbose)
            (options_.log != nullptr ? *options_.log : std::cerr)
                << "gdbstub: " << err.what() << "\n";
        return err.kind() == RspError::Kind::BadHex ? "E02" : "E01";
    } catch (const FatalError &err) {
        if (options_.verbose)
            (options_.log != nullptr ? *options_.log : std::cerr)
                << "gdbstub: " << err.what() << "\n";
        return "E04";
    }
}

GdbStub::SessionEnd
GdbStub::serve(Channel &channel)
{
    std::ostream &log =
        options_.log != nullptr ? *options_.log : std::cerr;
    FrameDecoder decoder;
    std::string last_frame;
    char buf[4096];
    detached_ = false;
    killed_ = false;

    try {
        for (;;) {
            const size_t got = channel.recv(buf, sizeof(buf));
            if (got == 0)
                return SessionEnd::Eof;
            decoder.push(buf, got);
            for (;;) {
                FrameDecoder::Event event;
                try {
                    event = decoder.next();
                } catch (const RspError &err) {
                    // Corrupt frame: request retransmission and keep
                    // the session alive.
                    if (options_.verbose)
                        log << "gdbstub: " << err.what() << "\n";
                    channel.send("-", 1);
                    continue;
                }
                if (event == FrameDecoder::Event::NeedMore)
                    break;
                switch (event) {
                  case FrameDecoder::Event::Ack:
                    break; // nothing pending: ignore
                  case FrameDecoder::Event::Nak:
                    if (!last_frame.empty())
                        channel.send(last_frame.data(),
                                     last_frame.size());
                    break;
                  case FrameDecoder::Event::Interrupt:
                    // The machine only runs inside a handler, so an
                    // interrupt between packets just reports the
                    // current stop.
                    last_frame = frame(stopReply(lastStop_));
                    channel.send(last_frame.data(),
                                 last_frame.size());
                    break;
                  case FrameDecoder::Event::Packet: {
                    if (options_.verbose)
                        log << "gdbstub: <- " << decoder.payload()
                            << "\n";
                    if (!noAck_)
                        channel.send("+", 1);
                    const std::string reply =
                        handle(decoder.payload());
                    if (killed_)
                        return SessionEnd::Killed;
                    if (options_.verbose)
                        log << "gdbstub: -> " << reply << "\n";
                    last_frame = frame(reply);
                    channel.send(last_frame.data(),
                                 last_frame.size());
                    if (detached_)
                        return SessionEnd::Detached;
                    break;
                  }
                  case FrameDecoder::Event::NeedMore:
                    break; // unreachable
                }
            }
        }
    } catch (const TransportError &err) {
        if (options_.verbose)
            log << "gdbstub: transport: " << err.what() << "\n";
        return SessionEnd::Eof;
    }
}

} // namespace risc1::debug
