/**
 * @file
 * Benchmark E — string search: count (possibly overlapping) occurrences
 * of a pattern in a synthetic text. Byte loads and short inner loops.
 */

#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

constexpr const char *Pattern = "risc";

/** Synthetic text: pseudo-random lowercase letters with the pattern
 *  planted every ~40 characters. Scale = text length. */
std::string
makeText(uint64_t length)
{
    Rng rng(0xbeefcafe);
    std::string text;
    text.reserve(length);
    while (text.size() < length) {
        if (text.size() % 40 == 17)
            text += Pattern;
        else
            text += static_cast<char>('a' + rng.below(26));
    }
    text.resize(length);
    return text;
}

uint32_t
countMatches(const std::string &text)
{
    const std::string pat = Pattern;
    uint32_t count = 0;
    if (text.size() < pat.size())
        return 0;
    for (size_t i = 0; i + pat.size() <= text.size(); ++i) {
        if (text.compare(i, pat.size(), pat) == 0)
            ++count;
    }
    return count;
}

std::string
riscSource(uint64_t scale)
{
    const std::string text = makeText(scale);
    const size_t patlen = std::string(Pattern).size();
    return strprintf(R"(
; Count occurrences of `pat` in `text` (naive search).
        .equ RESULT, %u
        .equ PATLEN, %zu
_start: mov   text, r2
        mov   pat, r3
        clr   r4             ; match count
        clr   r5             ; i
        mov   %lld, r6       ; last valid start
loop_i: cmp   r5, r6
        bgt   done
        clr   r7             ; j
loop_j: cmp   r7, PATLEN
        bge   match
        add   r5, r7, r8
        ldbu  (r2)r8, r9
        ldbu  (r3)r7, r16
        cmp   r9, r16
        bne   miss
        add   r7, 1, r7
        b     loop_j
match:  add   r4, 1, r4
miss:   add   r5, 1, r5
        b     loop_i
done:   stl   r4, (r0)RESULT
        halt

pat:    .ascii "%s"
text:   .ascii "%s"
)",
                     ResultAddr, patlen,
                     static_cast<long long>(text.size()) -
                         static_cast<long long>(patlen),
                     Pattern, text.c_str());
}

vax::VaxProgram
buildVax(uint64_t scale)
{
    using namespace risc1::vax;
    const std::string text = makeText(scale);
    const auto patlen =
        static_cast<uint32_t>(std::string(Pattern).size());
    const auto last = static_cast<uint32_t>(text.size() - patlen);

    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("text"), vreg(2)});
    a.inst(VaxOp::Movl, {vsym("pat"), vreg(3)});
    a.inst(VaxOp::Clrl, {vreg(4)}); // count
    a.inst(VaxOp::Clrl, {vreg(5)}); // i
    a.inst(VaxOp::Movl, {vimm(last), vreg(6)});
    a.label("loop_i");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(6)});
    a.br(VaxOp::Bgtr, "done");
    a.inst(VaxOp::Clrl, {vreg(7)}); // j
    a.label("loop_j");
    a.inst(VaxOp::Cmpl, {vreg(7), vimm(patlen)});
    a.br(VaxOp::Bgeq, "match");
    a.inst(VaxOp::Addl3, {vreg(5), vreg(7), vreg(8)});
    a.inst(VaxOp::Movb, {vidx(8, vdef(2)), vreg(9)});
    a.inst(VaxOp::Cmpb, {vreg(9), vidx(7, vdef(3))});
    a.br(VaxOp::Bneq, "miss");
    a.inst(VaxOp::Incl, {vreg(7)});
    a.br(VaxOp::Brb, "loop_j");
    a.label("match");
    a.inst(VaxOp::Incl, {vreg(4)});
    a.label("miss");
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "loop_i");
    a.label("done");
    a.inst(VaxOp::Movl, {vreg(4), vabs(ResultAddr)});
    a.halt();
    a.label("pat");
    a.ascii(Pattern);
    a.label("text");
    a.ascii(text);
    return a.finish();
}

uint32_t
expected(uint64_t scale)
{
    return countMatches(makeText(scale));
}

} // namespace

Workload
makeStrsearch()
{
    Workload wl;
    wl.name = "e_strsearch";
    wl.paperTag = "E: string search";
    wl.description = "naive pattern search over synthetic text";
    wl.defaultScale = 2000;
    wl.recursive = false;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
