/**
 * @file
 * Ackermann(3, n) — the paper era's canonical deep-recursion benchmark.
 * Call depth grows to 2^(n+3) - 3, guaranteeing register-window
 * overflow at realistic window counts.
 */

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; ack(3, n), recursive.
        .equ RESULT, %u
_start: mov   3, r10
        mov   %llu, r11
        call  ack
        stl   r10, (r0)RESULT
        halt

; ack: m in in0(r26), n in in1(r27); result in in0.
ack:    cmp   r26, 0
        bne   m_pos
        add   r27, 1, r26     ; ack(0, n) = n + 1
        ret
m_pos:  cmp   r27, 0
        bne   n_pos
        sub   r26, 1, r10     ; ack(m, 0) = ack(m-1, 1)
        mov   1, r11
        call  ack
        mov   r10, r26
        ret
n_pos:  mov   r26, r10        ; ack(m, n-1)
        sub   r27, 1, r11
        call  ack
        mov   r10, r11        ; ack(m-1, ack(m, n-1))
        sub   r26, 1, r10
        call  ack
        mov   r10, r26
        ret
)",
                     ResultAddr, static_cast<unsigned long long>(n));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Pushl, {vlit(static_cast<uint32_t>(n))});
    a.inst(VaxOp::Pushl, {vlit(3)});
    a.calls(2, "ack");
    a.inst(VaxOp::Movl, {vreg(0), vabs(ResultAddr)});
    a.halt();

    // ack(m, n): args at (AP)0, (AP)4; r2 = m, r3 = n.
    a.entry("ack", 0x000c);
    a.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(2)});
    a.inst(VaxOp::Movl, {vdisp(AP, 4), vreg(3)});
    a.inst(VaxOp::Tstl, {vreg(2)});
    a.br(VaxOp::Bneq, "m_pos");
    a.inst(VaxOp::Addl3, {vreg(3), vlit(1), vreg(0)});
    a.ret();
    a.label("m_pos");
    a.inst(VaxOp::Tstl, {vreg(3)});
    a.br(VaxOp::Bneq, "n_pos");
    a.inst(VaxOp::Pushl, {vlit(1)});
    a.inst(VaxOp::Subl3, {vlit(1), vreg(2), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.calls(2, "ack");
    a.ret();
    a.label("n_pos");
    a.inst(VaxOp::Subl3, {vlit(1), vreg(3), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(2)});
    a.calls(2, "ack"); // r0 = ack(m, n-1)
    a.inst(VaxOp::Pushl, {vreg(0)});
    a.inst(VaxOp::Subl3, {vlit(1), vreg(2), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.calls(2, "ack");
    a.ret();
    return a.finish();
}

uint32_t
ackHost(uint32_t m, uint32_t n)
{
    // Iterative-enough for the small suite scales.
    if (m == 0)
        return n + 1;
    if (n == 0)
        return ackHost(m - 1, 1);
    return ackHost(m - 1, ackHost(m, n - 1));
}

uint32_t
expected(uint64_t n)
{
    return ackHost(3, static_cast<uint32_t>(n));
}

} // namespace

Workload
makeAckermann()
{
    Workload wl;
    wl.name = "ackermann";
    wl.paperTag = "Ackermann(3, n)";
    wl.description = "extreme recursion depth; window-overflow stress";
    wl.defaultScale = 3;
    wl.recursive = true;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
