/**
 * @file
 * Towers of Hanoi — 2^n - 1 moves through doubly-recursive calls; the
 * paper's procedure-call motivation in miniature.
 */

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; hanoi(n): count moves in global r2.
        .equ RESULT, %u
_start: clr   r2
        mov   %llu, r10
        call  hanoi
        stl   r2, (r0)RESULT
        halt

; hanoi: n in in0(r26); bumps global move counter r2.
hanoi:  cmp   r26, 0
        beq   done
        sub   r26, 1, r10
        call  hanoi
        add   r2, 1, r2       ; perform the move
        sub   r26, 1, r10
        call  hanoi
done:   ret
)",
                     ResultAddr, static_cast<unsigned long long>(n));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Clrl, {vreg(6)}); // move counter (caller-owned)
    a.inst(VaxOp::Pushl, {vlit(static_cast<uint32_t>(n))});
    a.calls(1, "hanoi");
    a.inst(VaxOp::Movl, {vreg(6), vabs(ResultAddr)});
    a.halt();

    // hanoi(n): r2 = n; bumps the shared counter r6 (not in the mask).
    a.entry("hanoi", 0x0004);
    a.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(2)});
    a.inst(VaxOp::Tstl, {vreg(2)});
    a.br(VaxOp::Beql, "done");
    a.inst(VaxOp::Subl3, {vlit(1), vreg(2), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.calls(1, "hanoi");
    a.inst(VaxOp::Incl, {vreg(6)});
    a.inst(VaxOp::Subl3, {vlit(1), vreg(2), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.calls(1, "hanoi");
    a.label("done");
    a.ret();
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    return static_cast<uint32_t>((uint64_t{1} << n) - 1);
}

} // namespace

Workload
makeHanoi()
{
    Workload wl;
    wl.name = "hanoi";
    wl.paperTag = "Towers of Hanoi(n)";
    wl.description = "doubly-recursive move counting";
    wl.defaultScale = 12;
    wl.recursive = true;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
