/**
 * @file
 * Recursive Euclid GCD over xorshift pairs. On RISC I every modulo is
 * a software udivmod32 call (three window levels per Euclid step);
 * vax80 gets it from microcoded DIVL/MULL. The workload that shows the
 * software-division tax — and how the windows absorb the extra calls.
 */

#include "support/logging.hh"
#include "workloads/rtlib.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t pairs)
{
    return strprintf(R"(
; sum of gcd(a, b) over N xorshift pairs (b forced nonzero).
        .equ RESULT, %u
_start: mov   %llu, r3       ; N
        mov   %u, r4         ; xorshift state
        clr   r5             ; sum
        clr   r6             ; i
pair:   cmp   r6, r3
        bge   done
        sll   r4, 13, r8
        xor   r4, r8, r4
        srl   r4, 17, r8
        xor   r4, r8, r4
        sll   r4, 5, r8
        xor   r4, r8, r4
        mov   r4, r16        ; a
        sll   r4, 13, r8
        xor   r4, r8, r4
        srl   r4, 17, r8
        xor   r4, r8, r4
        sll   r4, 5, r8
        xor   r4, r8, r4
        mov   r4, r17        ; b
        cmp   r17, 0
        bne   have_b
        mov   1, r17
have_b: mov   r16, r10
        mov   r17, r11
        call  gcd
        add   r5, r10, r5
        add   r6, 1, r6
        b     pair
done:   stl   r5, (r0)RESULT
        halt

; gcd(a, b): Euclid, recursive; modulo via the runtime library.
gcd:    cmp   r27, 0
        beq   gcd_base
        mov   r27, r16       ; save b
        mov   r26, r10
        mov   r27, r11
        call  umod32         ; r10 = a mod b
        mov   r10, r11       ; gcd(b, a mod b)
        mov   r16, r10
        call  gcd
        mov   r10, r26
        ret
gcd_base:
        ret                  ; gcd(a, 0) = a, already in place
%s)",
                     ResultAddr, static_cast<unsigned long long>(pairs),
                     XsSeed, rtlib::sources({"umod32"}).c_str());
}

vax::VaxProgram
buildVax(uint64_t pairs)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vimm(static_cast<uint32_t>(pairs)), vreg(6)});
    a.inst(VaxOp::Movl, {vimm(XsSeed), vreg(7)});
    a.inst(VaxOp::Clrl, {vreg(8)}); // sum
    a.inst(VaxOp::Clrl, {vreg(9)}); // i
    a.label("pair");
    a.inst(VaxOp::Cmpl, {vreg(9), vreg(6)});
    a.br(VaxOp::Blss, "body");
    a.brw("done");
    a.label("body");
    for (int k = 0; k < 2; ++k) {
        a.inst(VaxOp::Ashl, {vlit(13), vreg(7), vreg(1)});
        a.inst(VaxOp::Xorl2, {vreg(1), vreg(7)});
        a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-17)), vreg(7),
                             vreg(1)});
        a.inst(VaxOp::Bicl2, {vimm(0xffff8000u), vreg(1)});
        a.inst(VaxOp::Xorl2, {vreg(1), vreg(7)});
        a.inst(VaxOp::Ashl, {vlit(5), vreg(7), vreg(1)});
        a.inst(VaxOp::Xorl2, {vreg(1), vreg(7)});
        a.inst(VaxOp::Movl, {vreg(7), vreg(k == 0 ? 10 : 11)});
    }
    a.inst(VaxOp::Tstl, {vreg(11)});
    a.br(VaxOp::Bneq, "have_b");
    a.inst(VaxOp::Movl, {vlit(1), vreg(11)});
    a.label("have_b");
    a.inst(VaxOp::Pushl, {vreg(11)});
    a.inst(VaxOp::Pushl, {vreg(10)});
    a.calls(2, "gcd");
    a.inst(VaxOp::Addl2, {vreg(0), vreg(8)});
    a.inst(VaxOp::Incl, {vreg(9)});
    a.brw("pair");
    a.label("done");
    a.inst(VaxOp::Movl, {vreg(8), vabs(ResultAddr)});
    a.halt();

    // gcd(a, b): r2 = a, r3 = b, r4 = a mod b, r5 scratch. vax80's
    // DIVL is signed, so unsigned modulo of full 32-bit values is
    // computed case by case:
    //   - both < 2^31: straight DIVL/MULL/SUB;
    //   - a >= 2^31: rem = adjust(2*((a>>1) mod b) + (a & 1));
    //   - b >= 2^31: rem = a (if a < b) or a - b (one step suffices).
    a.entry("gcd", 0x003c); // saves r2..r5
    a.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(2)});
    a.inst(VaxOp::Movl, {vdisp(AP, 4), vreg(3)});
    a.inst(VaxOp::Tstl, {vreg(3)});
    a.br(VaxOp::Bneq, "recur");
    a.inst(VaxOp::Movl, {vreg(2), vreg(0)});
    a.ret();
    a.label("recur");
    a.inst(VaxOp::Tstl, {vreg(3)});
    a.br(VaxOp::Blss, "b_big");
    a.inst(VaxOp::Tstl, {vreg(2)});
    a.br(VaxOp::Blss, "a_big");
    a.inst(VaxOp::Divl3, {vreg(3), vreg(2), vreg(4)});
    a.inst(VaxOp::Mull2, {vreg(3), vreg(4)});
    a.inst(VaxOp::Subl3, {vreg(4), vreg(2), vreg(4)});
    a.br(VaxOp::Brb, "push_args");
    a.label("a_big");
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-1)), vreg(2),
                         vreg(4)});
    a.inst(VaxOp::Bicl2, {vimm(0x80000000u), vreg(4)}); // half = a>>1
    a.inst(VaxOp::Divl3, {vreg(3), vreg(4), vreg(5)});  // q1
    a.inst(VaxOp::Mull2, {vreg(3), vreg(5)});
    a.inst(VaxOp::Subl3, {vreg(5), vreg(4), vreg(4)});  // half mod b
    a.inst(VaxOp::Addl2, {vreg(4), vreg(4)});           // *2
    a.inst(VaxOp::Bicl3, {vimm(0xfffffffeu), vreg(2), vreg(5)});
    a.inst(VaxOp::Addl2, {vreg(5), vreg(4)});           // + (a & 1)
    a.label("m_adj"); // at most two corrective subtractions
    a.inst(VaxOp::Cmpl, {vreg(4), vreg(3)});
    a.br(VaxOp::Blssu, "push_args");
    a.inst(VaxOp::Subl2, {vreg(3), vreg(4)});
    a.br(VaxOp::Brb, "m_adj");
    a.label("b_big");
    a.inst(VaxOp::Cmpl, {vreg(2), vreg(3)});
    a.br(VaxOp::Blssu, "rem_is_a");
    a.inst(VaxOp::Subl3, {vreg(3), vreg(2), vreg(4)}); // a - b (< b)
    a.br(VaxOp::Brb, "push_args");
    a.label("rem_is_a");
    a.inst(VaxOp::Movl, {vreg(2), vreg(4)});
    a.label("push_args");
    a.inst(VaxOp::Pushl, {vreg(4)}); // a mod b
    a.inst(VaxOp::Pushl, {vreg(3)}); // b
    a.calls(2, "gcd");
    a.ret();
    return a.finish();
}

uint32_t
gcdHost(uint32_t a, uint32_t b)
{
    while (b != 0) {
        const uint32_t r = a % b;
        a = b;
        b = r;
    }
    return a;
}

uint32_t
expected(uint64_t pairs)
{
    uint32_t x = XsSeed;
    uint32_t sum = 0;
    for (uint64_t i = 0; i < pairs; ++i) {
        x = xorshift32(x);
        const uint32_t a = x;
        x = xorshift32(x);
        uint32_t b = x;
        if (b == 0)
            b = 1;
        sum += gcdHost(a, b);
    }
    return sum;
}

} // namespace

Workload
makeGcd()
{
    Workload wl;
    wl.name = "gcd";
    wl.paperTag = "Euclid GCD (software modulo)";
    wl.description = "recursive Euclid; RISC I pays software division, "
                     "vax80 uses microcoded DIVL";
    wl.defaultScale = 40;
    wl.recursive = true;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
