/**
 * @file
 * Benchmark I — recursive quicksort (Lomuto partition, pointer-based)
 * over xorshift-generated words, checksummed after sorting. Mixes deep
 * recursion with heavy data-memory traffic.
 */

#include <algorithm>
#include <vector>

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; Quicksort N words, then checksum sum(arr[k] ^ k).
        .equ RESULT, %u
_start: mov   arr, r2
        mov   %llu, r3       ; N
        mov   %u, r4         ; xorshift state
        clr   r5
fill:   cmp   r5, r3
        bge   filled
        sll   r4, 13, r6
        xor   r4, r6, r4
        srl   r4, 17, r6
        xor   r4, r6, r4
        sll   r4, 5, r6
        xor   r4, r6, r4
        sll   r5, 2, r6
        stl   r4, (r2)r6
        add   r5, 1, r5
        b     fill
filled: mov   r2, r10        ; lo = &arr[0]
        sub   r3, 1, r6
        sll   r6, 2, r6
        add   r2, r6, r11    ; hi = &arr[N-1]
        call  qsort
        clr   r7             ; checksum
        clr   r5
chk:    cmp   r5, r3
        bge   done
        sll   r5, 2, r6
        ldl   (r2)r6, r8
        xor   r8, r5, r8
        add   r7, r8, r7
        add   r5, 1, r5
        b     chk
done:   stl   r7, (r0)RESULT
        halt

; qsort(lo, hi): word addresses, inclusive range, unsigned elements.
; in0=lo(r26) in1=hi(r27); locals r16=i r17=j r18=pivot r19/r20 temps.
qsort:  cmp   r26, r27
        bhis  qdone          ; lo >= hi (unsigned)
        ldl   (r27)0, r18    ; pivot = *hi
        sub   r26, 4, r16    ; i = lo - 4
        mov   r26, r17       ; j = lo
qloop:  cmp   r17, r27
        bhis  qbreak
        ldl   (r17)0, r19
        cmp   r19, r18
        bhi   qskip          ; *j > pivot (unsigned)
        add   r16, 4, r16
        ldl   (r16)0, r20    ; swap *i, *j
        stl   r19, (r16)0
        stl   r20, (r17)0
qskip:  add   r17, 4, r17
        b     qloop
qbreak: add   r16, 4, r16
        ldl   (r16)0, r20    ; swap *i, *hi
        stl   r18, (r16)0
        stl   r20, (r27)0
        mov   r26, r10       ; qsort(lo, i-4)
        sub   r16, 4, r11
        call  qsort
        add   r16, 4, r10    ; qsort(i+4, hi)
        mov   r27, r11
        call  qsort
qdone:  ret

        .align 4
arr:    .space %llu
)",
                     ResultAddr, static_cast<unsigned long long>(n),
                     XsSeed, static_cast<unsigned long long>(n * 4));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("arr"), vreg(2)});
    a.inst(VaxOp::Movl, {vimm(static_cast<uint32_t>(n)), vreg(3)});
    a.inst(VaxOp::Movl, {vimm(XsSeed), vreg(4)});
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("fill");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(3)});
    a.br(VaxOp::Bgeq, "filled");
    a.inst(VaxOp::Ashl, {vlit(13), vreg(4), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-17)), vreg(4),
                         vreg(6)});
    a.inst(VaxOp::Bicl2, {vimm(0xffff8000u), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Ashl, {vlit(5), vreg(4), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Movl, {vreg(4), vidx(5, vdef(2))});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "fill");
    a.label("filled");
    a.inst(VaxOp::Subl3, {vlit(1), vreg(3), vreg(1)});
    a.inst(VaxOp::Ashl, {vlit(2), vreg(1), vreg(1)});
    a.inst(VaxOp::Addl2, {vreg(2), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)}); // hi
    a.inst(VaxOp::Pushl, {vreg(2)}); // lo
    a.calls(2, "qsort");
    a.inst(VaxOp::Clrl, {vreg(7)});
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("chk");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(3)});
    a.br(VaxOp::Bgeq, "done");
    a.inst(VaxOp::Movl, {vidx(5, vdef(2)), vreg(8)});
    a.inst(VaxOp::Xorl2, {vreg(5), vreg(8)});
    a.inst(VaxOp::Addl2, {vreg(8), vreg(7)});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "chk");
    a.label("done");
    a.inst(VaxOp::Movl, {vreg(7), vabs(ResultAddr)});
    a.halt();

    // qsort(lo, hi): r2=lo r3=hi r4=i r5=j r6=pivot r7=t.
    a.entry("qsort", 0x00fc);
    a.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(2)});
    a.inst(VaxOp::Movl, {vdisp(AP, 4), vreg(3)});
    a.inst(VaxOp::Cmpl, {vreg(2), vreg(3)});
    a.br(VaxOp::Bgequ, "qdone");
    a.inst(VaxOp::Movl, {vdef(3), vreg(6)});
    a.inst(VaxOp::Subl3, {vlit(4), vreg(2), vreg(4)});
    a.inst(VaxOp::Movl, {vreg(2), vreg(5)});
    a.label("qloop");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(3)});
    a.br(VaxOp::Bgequ, "qbreak");
    a.inst(VaxOp::Movl, {vdef(5), vreg(7)});
    a.inst(VaxOp::Cmpl, {vreg(7), vreg(6)});
    a.br(VaxOp::Bgtru, "qskip");
    a.inst(VaxOp::Addl2, {vlit(4), vreg(4)});
    a.inst(VaxOp::Movl, {vdef(4), vreg(1)});
    a.inst(VaxOp::Movl, {vreg(7), vdef(4)});
    a.inst(VaxOp::Movl, {vreg(1), vdef(5)});
    a.label("qskip");
    a.inst(VaxOp::Addl2, {vlit(4), vreg(5)});
    a.br(VaxOp::Brb, "qloop");
    a.label("qbreak");
    a.inst(VaxOp::Addl2, {vlit(4), vreg(4)});
    a.inst(VaxOp::Movl, {vdef(4), vreg(1)});
    a.inst(VaxOp::Movl, {vreg(6), vdef(4)});
    a.inst(VaxOp::Movl, {vreg(1), vdef(3)});
    a.inst(VaxOp::Subl3, {vlit(4), vreg(4), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)}); // hi = i-4
    a.inst(VaxOp::Pushl, {vreg(2)}); // lo
    a.calls(2, "qsort");
    a.inst(VaxOp::Pushl, {vreg(3)}); // hi
    a.inst(VaxOp::Addl3, {vlit(4), vreg(4), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)}); // lo = i+4
    a.calls(2, "qsort");
    a.label("qdone");
    a.ret();

    a.align(4);
    a.label("arr");
    a.space(static_cast<uint32_t>(n * 4));
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    std::vector<uint32_t> arr(n);
    uint32_t x = XsSeed;
    for (auto &v : arr) {
        x = xorshift32(x);
        v = x;
    }
    std::sort(arr.begin(), arr.end());
    uint32_t checksum = 0;
    for (size_t k = 0; k < arr.size(); ++k)
        checksum += arr[k] ^ static_cast<uint32_t>(k);
    return checksum;
}

} // namespace

Workload
makeQuicksort()
{
    Workload wl;
    wl.name = "i_quicksort";
    wl.paperTag = "I: quicksort (recursive)";
    wl.description = "Lomuto quicksort over xorshift data + checksum";
    wl.defaultScale = 512;
    wl.recursive = true;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
