/**
 * @file
 * Treesort (Stanford suite's "tree") — build a binary search tree from
 * xorshift data with iterative insertion, then a recursive in-order
 * traversal producing the same checksum the sorting benchmarks use.
 * Pointer chasing plus data-dependent recursion depth.
 */

#include <algorithm>
#include <vector>

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; BST insert of N xorshift words, recursive in-order checksum.
; Node layout: +0 value, +4 left, +8 right.
        .equ RESULT, %u
_start: mov   heap, r5       ; bump allocator
        mov   %llu, r3       ; N
        mov   %u, r4         ; xorshift state
        clr   r6             ; root
        clr   r9             ; i
bloop:  cmp   r9, r3
        bge   built
        sll   r4, 13, r8
        xor   r4, r8, r4
        srl   r4, 17, r8
        xor   r4, r8, r4
        sll   r4, 5, r8
        xor   r4, r8, r4
        ; make the node
        stl   r4, (r5)0
        stl   r0, (r5)4
        stl   r0, (r5)8
        cmp   r6, 0
        bne   walk
        mov   r5, r6         ; first node becomes the root
        b     inserted
walk:   mov   r6, r16        ; cur
wloop:  ldl   (r16)0, r17
        cmp   r4, r17
        blo   goleft         ; v < cur.value (unsigned)
        ldl   (r16)8, r18
        cmp   r18, 0
        beq   setr
        mov   r18, r16
        b     wloop
setr:   stl   r5, (r16)8
        b     inserted
goleft: ldl   (r16)4, r18
        cmp   r18, 0
        beq   setl
        mov   r18, r16
        b     wloop
setl:   stl   r5, (r16)4
inserted:
        add   r5, 12, r5
        add   r9, 1, r9
        b     bloop
built:  clr   r7             ; index counter
        clr   r8             ; checksum
        mov   r6, r10
        call  visit
        stl   r8, (r0)RESULT
        halt

; visit(node): recursive in-order; node in in0 (may be null).
visit:  cmp   r26, 0
        beq   vdone
        ldl   (r26)4, r10    ; left subtree
        call  visit
        ldl   (r26)0, r16
        xor   r16, r7, r16
        add   r8, r16, r8    ; checksum += value ^ index
        add   r7, 1, r7
        ldl   (r26)8, r10    ; right subtree
        call  visit
vdone:  ret

        .align 4
heap:   .space %llu
)",
                     ResultAddr, static_cast<unsigned long long>(n),
                     XsSeed, static_cast<unsigned long long>(n * 12));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("heap"), vreg(5)});
    a.inst(VaxOp::Movl, {vimm(static_cast<uint32_t>(n)), vreg(3)});
    a.inst(VaxOp::Movl, {vimm(XsSeed), vreg(4)});
    a.inst(VaxOp::Clrl, {vreg(6)}); // root
    a.inst(VaxOp::Clrl, {vreg(9)}); // i
    a.label("bloop");
    a.inst(VaxOp::Cmpl, {vreg(9), vreg(3)});
    a.br(VaxOp::Blss, "bbody");
    a.brw("built");
    a.label("bbody");
    a.inst(VaxOp::Ashl, {vlit(13), vreg(4), vreg(8)});
    a.inst(VaxOp::Xorl2, {vreg(8), vreg(4)});
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-17)), vreg(4),
                         vreg(8)});
    a.inst(VaxOp::Bicl2, {vimm(0xffff8000u), vreg(8)});
    a.inst(VaxOp::Xorl2, {vreg(8), vreg(4)});
    a.inst(VaxOp::Ashl, {vlit(5), vreg(4), vreg(8)});
    a.inst(VaxOp::Xorl2, {vreg(8), vreg(4)});
    a.inst(VaxOp::Movl, {vreg(4), vdef(5)});
    a.inst(VaxOp::Clrl, {vdisp(5, 4)});
    a.inst(VaxOp::Clrl, {vdisp(5, 8)});
    a.inst(VaxOp::Tstl, {vreg(6)});
    a.br(VaxOp::Bneq, "walk");
    a.inst(VaxOp::Movl, {vreg(5), vreg(6)});
    a.br(VaxOp::Brb, "inserted");
    a.label("walk");
    a.inst(VaxOp::Movl, {vreg(6), vreg(0)}); // cur
    a.label("wloop");
    a.inst(VaxOp::Cmpl, {vreg(4), vdef(0)});
    a.br(VaxOp::Blssu, "goleft");
    a.inst(VaxOp::Movl, {vdisp(0, 8), vreg(1)});
    a.br(VaxOp::Beql, "setr");
    a.inst(VaxOp::Movl, {vreg(1), vreg(0)});
    a.br(VaxOp::Brb, "wloop");
    a.label("setr");
    a.inst(VaxOp::Movl, {vreg(5), vdisp(0, 8)});
    a.br(VaxOp::Brb, "inserted");
    a.label("goleft");
    a.inst(VaxOp::Movl, {vdisp(0, 4), vreg(1)});
    a.br(VaxOp::Beql, "setl");
    a.inst(VaxOp::Movl, {vreg(1), vreg(0)});
    a.br(VaxOp::Brb, "wloop");
    a.label("setl");
    a.inst(VaxOp::Movl, {vreg(5), vdisp(0, 4)});
    a.label("inserted");
    a.inst(VaxOp::Addl2, {vlit(12), vreg(5)});
    a.inst(VaxOp::Incl, {vreg(9)});
    a.brw("bloop");
    a.label("built");
    a.inst(VaxOp::Clrl, {vreg(8)}); // index
    a.inst(VaxOp::Clrl, {vreg(9)}); // checksum
    a.inst(VaxOp::Pushl, {vreg(6)});
    a.calls(1, "visit");
    a.inst(VaxOp::Movl, {vreg(9), vabs(ResultAddr)});
    a.halt();

    // visit(node): r2 = node; shared r8 = index, r9 = checksum.
    a.entry("visit", 0x0004);
    a.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(2)});
    a.inst(VaxOp::Tstl, {vreg(2)});
    a.br(VaxOp::Beql, "vdone");
    a.inst(VaxOp::Pushl, {vdisp(2, 4)});
    a.calls(1, "visit");
    a.inst(VaxOp::Xorl3, {vreg(8), vdef(2), vreg(1)});
    a.inst(VaxOp::Addl2, {vreg(1), vreg(9)});
    a.inst(VaxOp::Incl, {vreg(8)});
    a.inst(VaxOp::Pushl, {vdisp(2, 8)});
    a.calls(1, "visit");
    a.label("vdone");
    a.ret();

    a.align(4);
    a.label("heap");
    a.space(static_cast<uint32_t>(n * 12));
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    std::vector<uint32_t> arr(n);
    uint32_t x = XsSeed;
    for (auto &v : arr) {
        x = xorshift32(x);
        v = x;
    }
    std::sort(arr.begin(), arr.end());
    uint32_t checksum = 0;
    for (size_t k = 0; k < arr.size(); ++k)
        checksum += arr[k] ^ static_cast<uint32_t>(k);
    return checksum;
}

} // namespace

Workload
makeTreesort()
{
    Workload wl;
    wl.name = "treesort";
    wl.paperTag = "tree (Stanford)";
    wl.description = "BST insertion + recursive in-order traversal";
    wl.defaultScale = 300;
    wl.recursive = true;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
