/**
 * @file
 * N-queens solution counting via bitmask backtracking — the suite's
 * Puzzle-class program (documented substitution for Baskett's Puzzle):
 * recursive search with heavy logical/shift work per node.
 */

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; Count N-queens solutions. Globals: r2 = full mask, r3 = count.
        .equ RESULT, %u
_start: mov   1, r2
        sll   r2, %llu, r2
        sub   r2, 1, r2      ; full = (1 << n) - 1
        clr   r3
        clr   r10            ; cols
        clr   r11            ; diag1
        clr   r12            ; diag2
        call  solve
        stl   r3, (r0)RESULT
        halt

; solve(cols, d1, d2): in0..in2 (r26..r28); bumps global r3.
solve:  cmp   r26, r2
        bne   srch
        add   r3, 1, r3      ; all columns filled: a solution
        ret
srch:   or    r26, r27, r16
        or    r16, r28, r16
        not   r16, r16
        and   r16, r2, r16   ; avail
sloop:  cmp   r16, 0
        beq   sdone
        neg   r16, r17
        and   r16, r17, r17  ; bit = avail & -avail
        xor   r16, r17, r16  ; avail &= ~bit
        or    r26, r17, r10  ; cols | bit
        or    r27, r17, r18
        sll   r18, 1, r11    ; (d1 | bit) << 1
        or    r28, r17, r18
        srl   r18, 1, r12    ; (d2 | bit) >> 1
        call  solve
        b     sloop
sdone:  ret
)",
                     ResultAddr, static_cast<unsigned long long>(n));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vlit(1), vreg(6)});
    a.inst(VaxOp::Ashl,
           {vlit(static_cast<uint32_t>(n)), vreg(6), vreg(6)});
    a.inst(VaxOp::Decl, {vreg(6)}); // r6 = full mask (shared)
    a.inst(VaxOp::Clrl, {vreg(7)}); // r7 = solution count (shared)
    a.inst(VaxOp::Pushl, {vlit(0)}); // d2
    a.inst(VaxOp::Pushl, {vlit(0)}); // d1
    a.inst(VaxOp::Pushl, {vlit(0)}); // cols
    a.calls(3, "solve");
    a.inst(VaxOp::Movl, {vreg(7), vabs(ResultAddr)});
    a.halt();

    // solve(cols, d1, d2): r2=cols r3=d1 r4=d2 r5=avail r8=bit;
    // r1 is a scratch register (caller-clobbered).
    a.entry("solve", 0x013c); // saves r2..r5, r8
    a.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(2)});
    a.inst(VaxOp::Movl, {vdisp(AP, 4), vreg(3)});
    a.inst(VaxOp::Movl, {vdisp(AP, 8), vreg(4)});
    a.inst(VaxOp::Cmpl, {vreg(2), vreg(6)});
    a.br(VaxOp::Bneq, "srch");
    a.inst(VaxOp::Incl, {vreg(7)});
    a.ret();
    a.label("srch");
    a.inst(VaxOp::Bisl3, {vreg(2), vreg(3), vreg(5)});
    a.inst(VaxOp::Bisl2, {vreg(4), vreg(5)});
    a.inst(VaxOp::Mcoml, {vreg(5), vreg(5)});
    a.inst(VaxOp::Mcoml, {vreg(6), vreg(1)});
    a.inst(VaxOp::Bicl2, {vreg(1), vreg(5)}); // avail = ~(c|d1|d2) & full
    a.label("sloop");
    a.inst(VaxOp::Tstl, {vreg(5)});
    a.br(VaxOp::Beql, "sdone");
    a.inst(VaxOp::Mnegl, {vreg(5), vreg(8)});
    a.inst(VaxOp::Mcoml, {vreg(8), vreg(1)});
    a.inst(VaxOp::Movl, {vreg(5), vreg(8)});
    a.inst(VaxOp::Bicl2, {vreg(1), vreg(8)}); // bit = avail & -avail
    a.inst(VaxOp::Xorl2, {vreg(8), vreg(5)}); // avail ^= bit
    a.inst(VaxOp::Bisl3, {vreg(4), vreg(8), vreg(1)});
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-1)), vreg(1),
                         vreg(1)}); // (d2|bit) >> 1 (values < 2^31)
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.inst(VaxOp::Bisl3, {vreg(3), vreg(8), vreg(1)});
    a.inst(VaxOp::Ashl, {vlit(1), vreg(1), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.inst(VaxOp::Bisl3, {vreg(2), vreg(8), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.calls(3, "solve");
    a.br(VaxOp::Brb, "sloop");
    a.label("sdone");
    a.ret();
    return a.finish();
}

/** Host oracle. */
uint32_t
solveHost(uint32_t cols, uint32_t d1, uint32_t d2, uint32_t full)
{
    if (cols == full)
        return 1;
    uint32_t count = 0;
    uint32_t avail = ~(cols | d1 | d2) & full;
    while (avail) {
        const uint32_t bit = avail & (0u - avail);
        avail ^= bit;
        count += solveHost(cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1,
                           full);
    }
    return count;
}

uint32_t
expected(uint64_t n)
{
    const uint32_t full = (1u << n) - 1;
    return solveHost(0, 0, 0, full);
}

} // namespace

Workload
makeQueens()
{
    Workload wl;
    wl.name = "queens";
    wl.paperTag = "Puzzle-class backtracking (N-queens)";
    wl.description = "bitmask N-queens; recursive search, ALU heavy";
    wl.defaultScale = 7;
    wl.recursive = true;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
