/**
 * @file
 * The RISC I software runtime: assembly subroutines for everything the
 * 31-instruction hardware leaves to software — multiply, divide,
 * modulo, memcpy, memset, strlen. The Berkeley position was precisely
 * that these belong in (rarely-called) software rather than microcode;
 * this module is that library, linkable into any program by appending
 * the snippet text.
 *
 * Calling convention (matches the suite): arguments in out0..out5
 * (r10..), result returned through in0 (r26) so the caller reads it in
 * r10; `call <name>` / `ret`. All routines use only their own window's
 * registers — no globals are touched.
 */

#ifndef RISC1_WORKLOADS_RTLIB_HH
#define RISC1_WORKLOADS_RTLIB_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace risc1::workloads::rtlib {

/** One runtime routine: label name, source text, host oracle info. */
struct Routine
{
    std::string_view name;   //!< the callable label
    std::string_view source; //!< assembly text (self-contained)
    std::string_view brief;  //!< one-line description
};

/** All routines in the library. */
const std::vector<Routine> &allRoutines();

/** Find one routine by label; nullptr if unknown. */
const Routine *findRoutine(std::string_view name);

/** The concatenated source of the requested routines (with
 *  dependencies: div32/mod32 pull in udivmod). */
std::string sources(const std::vector<std::string_view> &names);

// Host-side oracles for the tests.
uint32_t hostMul32(uint32_t a, uint32_t b);
uint32_t hostUdiv32(uint32_t a, uint32_t b); //!< b != 0
uint32_t hostUmod32(uint32_t a, uint32_t b); //!< b != 0

} // namespace risc1::workloads::rtlib

#endif // RISC1_WORKLOADS_RTLIB_HH
