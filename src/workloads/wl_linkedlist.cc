/**
 * @file
 * Benchmark H — linked list: bump-allocate N nodes, insert each at the
 * head, then traverse summing the values. Pointer chasing.
 */

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; Build an N-node list (head insertion), then sum values.
; Node layout: +0 next, +4 value.
        .equ RESULT, %u
_start: mov   heap, r2       ; bump pointer
        clr   r3             ; head = null
        mov   %llu, r4       ; N
        mov   1, r5          ; i
build:  cmp   r5, r4
        bgt   built
        stl   r3, (r2)0      ; node.next = head
        stl   r5, (r2)4      ; node.value = i
        mov   r2, r3         ; head = node
        add   r2, 8, r2
        add   r5, 1, r5
        b     build
built:  clr   r6             ; sum
        mov   r3, r7         ; cursor
sum_l:  cmp   r7, 0
        beq   done
        ldl   (r7)4, r8
        add   r6, r8, r6
        ldl   (r7)0, r7
        b     sum_l
done:   stl   r6, (r0)RESULT
        halt

        .align 4
heap:   .space %llu
)",
                     ResultAddr, static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(n * 8));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("heap"), vreg(2)});
    a.inst(VaxOp::Clrl, {vreg(3)});
    a.inst(VaxOp::Movl, {vimm(static_cast<uint32_t>(n)), vreg(4)});
    a.inst(VaxOp::Movl, {vlit(1), vreg(5)});
    a.label("build");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(4)});
    a.br(VaxOp::Bgtr, "built");
    a.inst(VaxOp::Movl, {vreg(3), vdef(2)});
    a.inst(VaxOp::Movl, {vreg(5), vdisp(2, 4)});
    a.inst(VaxOp::Movl, {vreg(2), vreg(3)});
    a.inst(VaxOp::Addl2, {vlit(8), vreg(2)});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "build");
    a.label("built");
    a.inst(VaxOp::Clrl, {vreg(6)});
    a.inst(VaxOp::Movl, {vreg(3), vreg(7)});
    a.label("sum_l");
    a.inst(VaxOp::Tstl, {vreg(7)});
    a.br(VaxOp::Beql, "done");
    a.inst(VaxOp::Addl2, {vdisp(7, 4), vreg(6)});
    a.inst(VaxOp::Movl, {vdef(7), vreg(7)});
    a.br(VaxOp::Brb, "sum_l");
    a.label("done");
    a.inst(VaxOp::Movl, {vreg(6), vabs(ResultAddr)});
    a.halt();
    a.align(4);
    a.label("heap");
    a.space(static_cast<uint32_t>(n * 8));
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    return static_cast<uint32_t>(n * (n + 1) / 2);
}

} // namespace

Workload
makeLinkedlist()
{
    Workload wl;
    wl.name = "h_linkedlist";
    wl.paperTag = "H: linked list";
    wl.description = "head insertion then pointer-chasing sum";
    wl.defaultScale = 1000;
    wl.recursive = false;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
