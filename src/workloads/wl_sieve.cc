/**
 * @file
 * Sieve of Eratosthenes — the era's standard loop/memory benchmark
 * (byte flag array); no procedure calls, isolating straight-line and
 * branch behaviour.
 */

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; Count primes < N with a byte-flag sieve.
        .equ RESULT, %u
_start: mov   flags, r2      ; flag base
        mov   %llu, r3       ; N
        clr   r4
clr_l:  cmp   r4, r3         ; clear flags
        bge   cleared
        stb   r0, (r2)r4
        add   r4, 1, r4
        b     clr_l
cleared:
        mov   2, r5          ; i
        clr   r6             ; prime count
outer:  cmp   r5, r3
        bge   done
        ldbu  (r2)r5, r7
        cmp   r7, 0
        bne   next
        add   r6, 1, r6      ; i is prime
        add   r5, r5, r8     ; j = 2*i
        mov   1, r9
inner:  cmp   r8, r3
        bge   next
        stb   r9, (r2)r8
        add   r8, r5, r8
        b     inner
next:   add   r5, 1, r5
        b     outer
done:   stl   r6, (r0)RESULT
        halt

flags:  .space %llu
)",
                     ResultAddr, static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(n));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    const auto limit = static_cast<uint32_t>(n);
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("flags"), vreg(2)}); // base
    a.inst(VaxOp::Movl, {vimm(limit), vreg(3)});   // N
    a.inst(VaxOp::Clrl, {vreg(4)});                // index
    a.label("clr_l");
    a.inst(VaxOp::Cmpl, {vreg(4), vreg(3)});
    a.br(VaxOp::Bgeq, "cleared");
    a.inst(VaxOp::Movb, {vlit(0), vidx(4, vdef(2))});
    a.inst(VaxOp::Incl, {vreg(4)});
    a.br(VaxOp::Brb, "clr_l");
    a.label("cleared");
    a.inst(VaxOp::Movl, {vlit(2), vreg(5)}); // i
    a.inst(VaxOp::Clrl, {vreg(6)});          // count
    a.label("outer");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(3)});
    a.br(VaxOp::Bgeq, "done");
    a.inst(VaxOp::Movb, {vidx(5, vdef(2)), vreg(7)});
    a.inst(VaxOp::Tstl, {vreg(7)});
    a.br(VaxOp::Bneq, "next");
    a.inst(VaxOp::Incl, {vreg(6)});
    a.inst(VaxOp::Addl3, {vreg(5), vreg(5), vreg(8)}); // j = 2i
    a.label("inner");
    a.inst(VaxOp::Cmpl, {vreg(8), vreg(3)});
    a.br(VaxOp::Bgeq, "next");
    a.inst(VaxOp::Movb, {vlit(1), vidx(8, vdef(2))});
    a.inst(VaxOp::Addl2, {vreg(5), vreg(8)});
    a.br(VaxOp::Brb, "inner");
    a.label("next");
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "outer");
    a.label("done");
    a.inst(VaxOp::Movl, {vreg(6), vabs(ResultAddr)});
    a.halt();
    a.align(4);
    a.label("flags");
    a.space(limit);
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    std::vector<uint8_t> flags(n, 0);
    uint32_t count = 0;
    for (uint64_t i = 2; i < n; ++i) {
        if (flags[i])
            continue;
        ++count;
        for (uint64_t j = 2 * i; j < n; j += i)
            flags[j] = 1;
    }
    return count;
}

} // namespace

Workload
makeSieve()
{
    Workload wl;
    wl.name = "sieve";
    wl.paperTag = "Eratosthenes sieve";
    wl.description = "byte-flag sieve; loop and memory bound, no calls";
    wl.defaultScale = 4096;
    wl.recursive = false;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
