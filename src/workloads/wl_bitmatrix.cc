/**
 * @file
 * Benchmark K — bit matrix: transpose a 32x32 bit matrix (one word per
 * row) `scale` times, folding an XOR checksum. Shift/mask heavy.
 */

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t rounds)
{
    return strprintf(R"(
; Transpose a 32x32 bit matrix (A -> B), XOR-checksumming B; repeat.
        .equ RESULT, %u
_start: mov   amat, r2
        mov   bmat, r3
        ; fill A with xorshift values
        mov   %u, r4         ; x = seed
        clr   r5             ; i
fill:   cmp   r5, 32
        bge   filled
        sll   r4, 13, r6
        xor   r4, r6, r4
        srl   r4, 17, r6
        xor   r4, r6, r4
        sll   r4, 5, r6
        xor   r4, r6, r4
        sll   r5, 2, r6
        stl   r4, (r2)r6
        add   r5, 1, r5
        b     fill
filled: clr   r7             ; checksum
        mov   %llu, r8       ; rounds
round:  cmp   r8, 0
        beq   done
        ; clear B
        clr   r5
clr_b:  cmp   r5, 32
        bge   clrd
        sll   r5, 2, r6
        stl   r0, (r3)r6
        add   r5, 1, r5
        b     clr_b
clrd:   clr   r5             ; i (row of A)
rows:   cmp   r5, 32
        bge   xsum
        sll   r5, 2, r6
        ldl   (r2)r6, r9     ; a = A[i]
        clr   r16            ; j
cols:   cmp   r16, 32
        bge   rnext
        srl   r9, r16, r17   ; bit j of a
        and   r17, 1, r17
        cmp   r17, 0
        beq   cnext
        sll   r16, 2, r18    ; B[j] |= 1 << i
        ldl   (r3)r18, r19
        mov   1, r20
        sll   r20, r5, r20
        or    r19, r20, r19
        stl   r19, (r3)r18
cnext:  add   r16, 1, r16
        b     cols
rnext:  add   r5, 1, r5
        b     rows
xsum:   clr   r5             ; fold checksum of B
fold:   cmp   r5, 32
        bge   folded
        sll   r5, 2, r6
        ldl   (r3)r6, r9
        xor   r7, r9, r7
        add   r7, r5, r7
        add   r5, 1, r5
        b     fold
folded: sub   r8, 1, r8
        b     round
done:   stl   r7, (r0)RESULT
        halt

        .align 4
amat:   .space 128
bmat:   .space 128
)",
                     ResultAddr, XsSeed,
                     static_cast<unsigned long long>(rounds));
}

vax::VaxProgram
buildVax(uint64_t rounds)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("amat"), vreg(2)});
    a.inst(VaxOp::Movl, {vsym("bmat"), vreg(3)});
    a.inst(VaxOp::Movl, {vimm(XsSeed), vreg(4)});
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("fill");
    a.inst(VaxOp::Cmpl, {vreg(5), vlit(32)});
    a.br(VaxOp::Bgeq, "filled");
    a.inst(VaxOp::Ashl, {vlit(13), vreg(4), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-17)), vreg(4),
                         vreg(6)});
    a.inst(VaxOp::Bicl2, {vimm(0xffff8000u), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Ashl, {vlit(5), vreg(4), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Movl, {vreg(4), vidx(5, vdef(2))});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "fill");
    a.label("filled");
    a.inst(VaxOp::Clrl, {vreg(7)}); // checksum
    a.inst(VaxOp::Movl,
           {vimm(static_cast<uint32_t>(rounds)), vreg(8)});
    a.label("round");
    a.inst(VaxOp::Tstl, {vreg(8)});
    a.br(VaxOp::Bneq, "body"); // far exit needs a word branch
    a.brw("store");
    a.label("body");
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("clr_b");
    a.inst(VaxOp::Cmpl, {vreg(5), vlit(32)});
    a.br(VaxOp::Bgeq, "clrd");
    a.inst(VaxOp::Clrl, {vidx(5, vdef(3))});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "clr_b");
    a.label("clrd");
    a.inst(VaxOp::Clrl, {vreg(5)}); // i
    a.label("rows");
    a.inst(VaxOp::Cmpl, {vreg(5), vlit(32)});
    a.br(VaxOp::Bgeq, "xsum");
    a.inst(VaxOp::Movl, {vidx(5, vdef(2)), vreg(9)}); // a = A[i]
    a.inst(VaxOp::Clrl, {vreg(10)});                  // j
    a.label("cols");
    a.inst(VaxOp::Cmpl, {vreg(10), vlit(32)});
    a.br(VaxOp::Bgeq, "rnext");
    a.inst(VaxOp::Mnegl, {vreg(10), vreg(11)});
    a.inst(VaxOp::Ashl, {vreg(11), vreg(9), vreg(11)});
    a.inst(VaxOp::Bicl2, {vimm(0xfffffffeu), vreg(11)});
    a.br(VaxOp::Beql, "cnext"); // flags from bicl2 result
    a.inst(VaxOp::Movl, {vlit(1), vreg(1)});
    a.inst(VaxOp::Ashl, {vreg(5), vreg(1), vreg(1)});
    a.inst(VaxOp::Bisl2, {vreg(1), vidx(10, vdef(3))});
    a.label("cnext");
    a.inst(VaxOp::Incl, {vreg(10)});
    a.br(VaxOp::Brb, "cols");
    a.label("rnext");
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "rows");
    a.label("xsum");
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("fold");
    a.inst(VaxOp::Cmpl, {vreg(5), vlit(32)});
    a.br(VaxOp::Bgeq, "folded");
    a.inst(VaxOp::Xorl2, {vidx(5, vdef(3)), vreg(7)});
    a.inst(VaxOp::Addl2, {vreg(5), vreg(7)});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "fold");
    a.label("folded");
    a.inst(VaxOp::Decl, {vreg(8)});
    a.brw("round");
    a.label("store");
    a.inst(VaxOp::Movl, {vreg(7), vabs(ResultAddr)});
    a.halt();
    a.align(4);
    a.label("amat");
    a.space(128);
    a.label("bmat");
    a.space(128);
    return a.finish();
}

uint32_t
expected(uint64_t rounds)
{
    uint32_t amat[32];
    uint32_t x = XsSeed;
    for (auto &row : amat) {
        x = xorshift32(x);
        row = x;
    }
    uint32_t checksum = 0;
    for (uint64_t r = 0; r < rounds; ++r) {
        uint32_t bmat[32] = {};
        for (unsigned i = 0; i < 32; ++i) {
            for (unsigned j = 0; j < 32; ++j) {
                if ((amat[i] >> j) & 1)
                    bmat[j] |= 1u << i;
            }
        }
        for (unsigned i = 0; i < 32; ++i) {
            checksum ^= bmat[i];
            checksum += i;
        }
    }
    return checksum;
}

} // namespace

Workload
makeBitmatrix()
{
    Workload wl;
    wl.name = "k_bitmatrix";
    wl.paperTag = "K: bit matrix";
    wl.description = "32x32 bit-matrix transpose with checksum";
    wl.defaultScale = 8;
    wl.recursive = false;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
