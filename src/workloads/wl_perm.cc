/**
 * @file
 * Perm (Stanford suite) — exhaustive permutation generation by
 * recursive swapping; ~e*n! calls at depth n, a classic procedure-call
 * stressor with real array traffic at every level.
 */

#include <vector>

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; Count permutation calls over an n-element array.
        .equ RESULT, %u
_start: mov   arr, r2        ; array base (global)
        mov   %llu, r3       ; n
        clr   r4             ; call counter
        clr   r5
init:   cmp   r5, r3
        bge   inited
        sll   r5, 2, r6
        stl   r5, (r2)r6     ; arr[i] = i
        add   r5, 1, r5
        b     init
inited: mov   r3, r10
        call  perm
        clr   r7             ; checksum
        clr   r5
chk:    cmp   r5, r3
        bge   fin
        sll   r5, 2, r6
        ldl   (r2)r6, r8
        xor   r8, r5, r8
        add   r7, r8, r7
        add   r5, 1, r5
        b     chk
fin:    add   r7, r4, r7     ; + call count
        stl   r7, (r0)RESULT
        halt

; perm(k): k in in0. for i in 0..k-1 { perm(k-1); swap a[i], a[k-1] }
perm:   add   r4, 1, r4
        cmp   r26, 1
        ble   pdone
        clr   r16            ; i
        sub   r26, 1, r17    ; k-1
ploop:  cmp   r16, r26
        bge   pdone
        mov   r17, r10
        call  perm
        sll   r16, 2, r18    ; swap arr[i], arr[k-1]
        sll   r17, 2, r19
        ldl   (r2)r18, r20
        ldl   (r2)r19, r21
        stl   r21, (r2)r18
        stl   r20, (r2)r19
        add   r16, 1, r16
        b     ploop
pdone:  ret

        .align 4
arr:    .space %llu
)",
                     ResultAddr, static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(n * 4));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("arr"), vreg(6)});
    a.inst(VaxOp::Movl, {vimm(static_cast<uint32_t>(n)), vreg(7)});
    a.inst(VaxOp::Clrl, {vreg(8)}); // call counter
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("init");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(7)});
    a.br(VaxOp::Bgeq, "inited");
    a.inst(VaxOp::Movl, {vreg(5), vidx(5, vdef(6))});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "init");
    a.label("inited");
    a.inst(VaxOp::Pushl, {vreg(7)});
    a.calls(1, "perm");
    a.inst(VaxOp::Clrl, {vreg(9)}); // checksum
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("chk");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(7)});
    a.br(VaxOp::Bgeq, "fin");
    a.inst(VaxOp::Xorl3, {vreg(5), vidx(5, vdef(6)), vreg(1)});
    a.inst(VaxOp::Addl2, {vreg(1), vreg(9)});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "chk");
    a.label("fin");
    a.inst(VaxOp::Addl2, {vreg(8), vreg(9)});
    a.inst(VaxOp::Movl, {vreg(9), vabs(ResultAddr)});
    a.halt();

    // perm(k): r2 = k, r3 = i, r4 = k-1; r1 scratch.
    a.entry("perm", 0x001c);
    a.inst(VaxOp::Incl, {vreg(8)});
    a.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(2)});
    a.inst(VaxOp::Cmpl, {vreg(2), vlit(1)});
    a.br(VaxOp::Bleq, "pdone");
    a.inst(VaxOp::Clrl, {vreg(3)});
    a.inst(VaxOp::Subl3, {vlit(1), vreg(2), vreg(4)});
    a.label("ploop");
    a.inst(VaxOp::Cmpl, {vreg(3), vreg(2)});
    a.br(VaxOp::Bgeq, "pdone");
    a.inst(VaxOp::Pushl, {vreg(4)});
    a.calls(1, "perm");
    // swap arr[i], arr[k-1]
    a.inst(VaxOp::Movl, {vidx(3, vdef(6)), vreg(1)});
    a.inst(VaxOp::Movl, {vidx(4, vdef(6)), vidx(3, vdef(6))});
    a.inst(VaxOp::Movl, {vreg(1), vidx(4, vdef(6))});
    a.inst(VaxOp::Incl, {vreg(3)});
    a.br(VaxOp::Brb, "ploop");
    a.label("pdone");
    a.ret();

    a.align(4);
    a.label("arr");
    a.space(static_cast<uint32_t>(n * 4));
    return a.finish();
}

void
permHost(std::vector<uint32_t> &arr, uint32_t k, uint32_t &count)
{
    ++count;
    if (k <= 1)
        return;
    for (uint32_t i = 0; i < k; ++i) {
        permHost(arr, k - 1, count);
        std::swap(arr[i], arr[k - 1]);
    }
}

uint32_t
expected(uint64_t n)
{
    std::vector<uint32_t> arr(n);
    for (size_t i = 0; i < arr.size(); ++i)
        arr[i] = static_cast<uint32_t>(i);
    uint32_t count = 0;
    permHost(arr, static_cast<uint32_t>(n), count);
    uint32_t checksum = count;
    for (size_t i = 0; i < arr.size(); ++i)
        checksum += arr[i] ^ static_cast<uint32_t>(i);
    return checksum;
}

} // namespace

Workload
makePerm()
{
    Workload wl;
    wl.name = "perm";
    wl.paperTag = "perm (Stanford)";
    wl.description = "recursive permutation generation; ~e*n! calls";
    wl.defaultScale = 6;
    wl.recursive = true;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
