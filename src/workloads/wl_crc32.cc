/**
 * @file
 * Bitwise CRC-32 over a synthetic buffer — shift/xor/branch per bit,
 * the register-register ALU pattern the RISC thesis says dominates
 * real code. No table lookups (paper-era memory was precious), no
 * calls.
 */

#include <vector>

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

constexpr uint32_t Poly = 0xedb88320u;

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; CRC-32 (bitwise, reflected polynomial) over N pseudo-random bytes.
        .equ RESULT, %u
_start: mov   buf, r2
        mov   %llu, r3       ; N
        mov   %u, r4         ; xorshift state
        ; fill the buffer
        clr   r5
fill:   cmp   r5, r3
        bge   filled
        sll   r4, 13, r6
        xor   r4, r6, r4
        srl   r4, 17, r6
        xor   r4, r6, r4
        sll   r4, 5, r6
        xor   r4, r6, r4
        stb   r4, (r2)r5
        add   r5, 1, r5
        b     fill
filled: mov   -1, r7         ; crc = 0xffffffff
        mov   0x%x, r8       ; the polynomial (ldhi/add pair)
        clr   r5
bytes:  cmp   r5, r3
        bge   done
        ldbu  (r2)r5, r6
        xor   r7, r6, r7
        mov   8, r9          ; bit counter
bits:   and   r7, 1, r16
        srl   r7, 1, r7
        cmp   r16, 0
        beq   nopoly
        xor   r7, r8, r7
nopoly: subs  r9, 1, r9
        bne   bits
        add   r5, 1, r5
        b     bytes
done:   not   r7, r7
        stl   r7, (r0)RESULT
        halt

        .align 4
buf:    .space %llu
)",
                     ResultAddr, static_cast<unsigned long long>(n),
                     XsSeed, Poly,
                     static_cast<unsigned long long>(n));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("buf"), vreg(2)});
    a.inst(VaxOp::Movl, {vimm(static_cast<uint32_t>(n)), vreg(3)});
    a.inst(VaxOp::Movl, {vimm(XsSeed), vreg(4)});
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("fill");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(3)});
    a.br(VaxOp::Bgeq, "filled");
    a.inst(VaxOp::Ashl, {vlit(13), vreg(4), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-17)), vreg(4),
                         vreg(6)});
    a.inst(VaxOp::Bicl2, {vimm(0xffff8000u), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Ashl, {vlit(5), vreg(4), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Movb, {vreg(4), vidx(5, vdef(2))});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "fill");
    a.label("filled");
    a.inst(VaxOp::Movl, {vimm(0xffffffffu), vreg(7)});
    a.inst(VaxOp::Movl, {vimm(Poly), vreg(8)});
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("bytes");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(3)});
    a.br(VaxOp::Blss, "bbody");
    a.brw("done");
    a.label("bbody");
    a.inst(VaxOp::Movb, {vidx(5, vdef(2)), vreg(6)});
    a.inst(VaxOp::Bicl3, {vimm(0xffffff00u), vreg(6), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(7)});
    a.inst(VaxOp::Movl, {vlit(8), vreg(9)});
    a.label("bits");
    a.inst(VaxOp::Bicl3, {vimm(0xfffffffeu), vreg(7), vreg(10)});
    // crc >>= 1 (logical): arithmetic shift then clear the top bit.
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-1)), vreg(7),
                         vreg(7)});
    a.inst(VaxOp::Bicl2, {vimm(0x80000000u), vreg(7)});
    a.inst(VaxOp::Tstl, {vreg(10)});
    a.br(VaxOp::Beql, "nopoly");
    a.inst(VaxOp::Xorl2, {vreg(8), vreg(7)});
    a.label("nopoly");
    a.inst(VaxOp::Decl, {vreg(9)});
    a.br(VaxOp::Bneq, "bits");
    a.inst(VaxOp::Incl, {vreg(5)});
    a.brw("bytes");
    a.label("done");
    a.inst(VaxOp::Mcoml, {vreg(7), vreg(7)});
    a.inst(VaxOp::Movl, {vreg(7), vabs(ResultAddr)});
    a.halt();
    a.align(4);
    a.label("buf");
    a.space(static_cast<uint32_t>(n));
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    std::vector<uint8_t> buf(n);
    uint32_t x = XsSeed;
    for (auto &b : buf) {
        x = xorshift32(x);
        b = static_cast<uint8_t>(x);
    }
    uint32_t crc = 0xffffffffu;
    for (uint8_t byte : buf) {
        crc ^= byte;
        for (int bit = 0; bit < 8; ++bit) {
            const bool lsb = crc & 1;
            crc >>= 1;
            if (lsb)
                crc ^= Poly;
        }
    }
    return ~crc;
}

} // namespace

Workload
makeCrc32()
{
    Workload wl;
    wl.name = "crc32";
    wl.paperTag = "CRC-32 (bitwise)";
    wl.description = "shift/xor bit loop over a byte buffer";
    wl.defaultScale = 1024;
    wl.recursive = false;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
