/**
 * @file
 * Benchmark F — bit test: population count over a range of values with
 * Kernighan's clear-lowest-set-bit loop; pure register ALU work.
 */

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; total = sum over v in 1..N of popcount(v * 2654435761 mod 2^32)
; (the multiply is replaced by a xorshift scramble: no mul on RISC I).
        .equ RESULT, %u
_start: clr   r2             ; total
        mov   1, r3          ; v
        mov   %llu, r4       ; N
outer:  cmp   r3, r4
        bgt   done
        ; scramble v -> x (xorshift32)
        mov   r3, r5
        sll   r5, 13, r6
        xor   r5, r6, r5
        srl   r5, 17, r6
        xor   r5, r6, r5
        sll   r5, 5, r6
        xor   r5, r6, r5
inner:  cmp   r5, 0
        beq   next
        sub   r5, 1, r6      ; x &= x - 1
        and   r5, r6, r5
        add   r2, 1, r2
        b     inner
next:   add   r3, 1, r3
        b     outer
done:   stl   r2, (r0)RESULT
        halt
)",
                     ResultAddr, static_cast<unsigned long long>(n));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Clrl, {vreg(2)});                            // total
    a.inst(VaxOp::Movl, {vlit(1), vreg(3)});                   // v
    a.inst(VaxOp::Movl, {vimm(static_cast<uint32_t>(n)), vreg(4)});
    a.label("outer");
    a.inst(VaxOp::Cmpl, {vreg(3), vreg(4)});
    a.br(VaxOp::Bgtr, "done");
    a.inst(VaxOp::Movl, {vreg(3), vreg(5)});
    a.inst(VaxOp::Ashl, {vlit(13), vreg(5), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(5)});
    // Logical right shift 17: mask the sign-extended bits afterwards.
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-17)), vreg(5),
                         vreg(6)});
    a.inst(VaxOp::Bicl2, {vimm(0xffff8000u), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(5)});
    a.inst(VaxOp::Ashl, {vlit(5), vreg(5), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(5)});
    a.label("inner");
    a.inst(VaxOp::Tstl, {vreg(5)});
    a.br(VaxOp::Beql, "next");
    a.inst(VaxOp::Subl3, {vlit(1), vreg(5), vreg(6)});
    a.inst(VaxOp::Mcoml, {vreg(6), vreg(7)});
    a.inst(VaxOp::Bicl2, {vreg(7), vreg(5)}); // x &= x-1
    a.inst(VaxOp::Incl, {vreg(2)});
    a.br(VaxOp::Brb, "inner");
    a.label("next");
    a.inst(VaxOp::Incl, {vreg(3)});
    a.br(VaxOp::Brb, "outer");
    a.label("done");
    a.inst(VaxOp::Movl, {vreg(2), vabs(ResultAddr)});
    a.halt();
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    uint32_t total = 0;
    for (uint64_t v = 1; v <= n; ++v) {
        uint32_t x = xorshift32(static_cast<uint32_t>(v));
        while (x) {
            x &= x - 1;
            ++total;
        }
    }
    return total;
}

} // namespace

Workload
makeBittest()
{
    Workload wl;
    wl.name = "f_bittest";
    wl.paperTag = "F: bit test";
    wl.description = "popcount loop over scrambled values; ALU bound";
    wl.defaultScale = 600;
    wl.recursive = false;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
