#include "workloads/workload.hh"

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads {

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> suite = {
        detail::makeStrsearch(),  detail::makeBittest(),
        detail::makeLinkedlist(), detail::makeBitmatrix(),
        detail::makeQuicksort(),  detail::makeAckermann(),
        detail::makeFibonacci(),  detail::makeHanoi(),
        detail::makeSieve(),      detail::makeQueens(),
        detail::makeMatmul(),    detail::makeBubblesort(),
        detail::makePerm(),      detail::makeTreesort(),
        detail::makeStrops(),    detail::makeCrc32(),
        detail::makeGcd(),
    };
    return suite;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &wl : allWorkloads()) {
        if (wl.name == name)
            return &wl;
    }
    return nullptr;
}

assembler::Program
buildRisc(const Workload &wl, uint64_t scale,
          const assembler::AsmOptions &opts)
{
    assembler::AsmResult result = assembler::assemble(
        wl.riscSource(scale), opts);
    if (!result.ok())
        fatal("workload %s failed to assemble:\n%s", wl.name.c_str(),
              result.errorText().c_str());
    return std::move(result.program);
}

} // namespace risc1::workloads
