/**
 * @file
 * The benchmark suite of the paper's evaluation, each program
 * implemented twice — RISC I assembly and vax80 — computing the same
 * function, plus a host-side reference for cross-validation. Programs
 * deposit a 32-bit result at ResultAddr and halt.
 *
 * Suite (paper tags in parentheses; see DESIGN.md §2 for substitutions):
 *   e_strsearch (E: string search)      f_bittest   (F: bit test)
 *   h_linkedlist (H: linked list)       k_bitmatrix (K: bit matrix)
 *   quicksort (I: quicksort, recursive) ackermann   (Ackermann(3,n))
 *   fibonacci (recursive fib)           hanoi       (Towers of Hanoi)
 *   sieve (Eratosthenes)                queens      (Puzzle-class
 *   matmul (integer matmul via           backtracking; substitution
 *           software multiply)           for Baskett's Puzzle)
 */

#ifndef RISC1_WORKLOADS_WORKLOAD_HH
#define RISC1_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "vax/builder.hh"

namespace risc1::workloads {

/** Where every program stores its 32-bit result (fits a simm13). */
constexpr uint32_t ResultAddr = 3840;

/** One benchmark: builders for both machines plus the oracle. */
struct Workload
{
    std::string name;
    std::string paperTag;     //!< label used in the paper's tables
    std::string description;
    uint64_t defaultScale;    //!< problem size for tests/benches
    bool recursive;           //!< exercises deep call chains

    /** RISC I assembly source for the given scale. */
    std::function<std::string(uint64_t scale)> riscSource;
    /** vax80 image for the given scale. */
    std::function<vax::VaxProgram(uint64_t scale)> buildVax;
    /** Host-computed expected result. */
    std::function<uint32_t(uint64_t scale)> expected;
};

/** All workloads in suite order. */
const std::vector<Workload> &allWorkloads();

/** Look up one workload by name; nullptr if unknown. */
const Workload *findWorkload(const std::string &name);

/** Assemble the RISC I version (throws FatalError on assembly bugs). */
assembler::Program buildRisc(const Workload &wl, uint64_t scale,
                             const assembler::AsmOptions &opts = {});

/** xorshift32 step shared by guests and the host oracles. */
constexpr uint32_t
xorshift32(uint32_t x)
{
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    return x;
}

/** Seed used by the data-driven workloads. */
constexpr uint32_t XsSeed = 0x12345678;

} // namespace risc1::workloads

#endif // RISC1_WORKLOADS_WORKLOAD_HH
