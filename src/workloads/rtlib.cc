#include "workloads/rtlib.hh"

#include <algorithm>

#include "support/logging.hh"

namespace risc1::workloads::rtlib {

namespace {

constexpr std::string_view Mul32Src = R"(
; mul32(a, b) -> a*b mod 2^32 (shift-add; no multiply hardware)
mul32:  clr   r16            ; accumulator
        mov   r26, r17       ; multiplicand
        mov   r27, r18       ; multiplier
mul32_loop:
        cmp   r18, 0
        beq   mul32_done
        and   r18, 1, r19
        cmp   r19, 0
        beq   mul32_skip
        add   r16, r17, r16
mul32_skip:
        sll   r17, 1, r17
        srl   r18, 1, r18
        b     mul32_loop
mul32_done:
        mov   r16, r26
        ret
)";

constexpr std::string_view UdivmodSrc = R"(
; udivmod32(a, b) -> quotient in in0, remainder in in1 (b != 0).
; Classic 32-step restoring long division.
udivmod32:
        clr   r16            ; remainder
        clr   r17            ; quotient
        mov   32, r18        ; bit counter
udivmod32_loop:
        sll   r17, 1, r17
        sll   r16, 1, r16
        srl   r26, 31, r19   ; next dividend bit
        or    r16, r19, r16
        sll   r26, 1, r26
        cmp   r16, r27
        blo   udivmod32_skip
        sub   r16, r27, r16
        add   r17, 1, r17
udivmod32_skip:
        subs  r18, 1, r18
        bne   udivmod32_loop
        mov   r17, r26
        mov   r16, r27
        ret
)";

constexpr std::string_view Udiv32Src = R"(
; udiv32(a, b) -> a / b (unsigned; b != 0)
udiv32: mov   r26, r10
        mov   r27, r11
        call  udivmod32
        mov   r10, r26
        ret
)";

constexpr std::string_view Umod32Src = R"(
; umod32(a, b) -> a mod b (unsigned; b != 0)
umod32: mov   r26, r10
        mov   r27, r11
        call  udivmod32
        mov   r11, r26
        ret
)";

constexpr std::string_view MemcpySrc = R"(
; memcpy(dst, src, n): byte copy; returns dst.
memcpy: clr   r16
memcpy_loop:
        cmp   r16, r28
        bge   memcpy_done
        ldbu  (r27)r16, r17
        stb   r17, (r26)r16
        add   r16, 1, r16
        b     memcpy_loop
memcpy_done:
        ret
)";

constexpr std::string_view MemsetSrc = R"(
; memset(dst, c, n): byte fill; returns dst.
memset: clr   r16
memset_loop:
        cmp   r16, r28
        bge   memset_done
        stb   r27, (r26)r16
        add   r16, 1, r16
        b     memset_loop
memset_done:
        ret
)";

constexpr std::string_view StrlenSrc = R"(
; strlen(s): bytes before the NUL.
strlen: clr   r16
strlen_loop:
        ldbu  (r26)r16, r17
        cmp   r17, 0
        beq   strlen_done
        add   r16, 1, r16
        b     strlen_loop
strlen_done:
        mov   r16, r26
        ret
)";

const std::vector<Routine> routines = {
    {"mul32", Mul32Src, "32x32 multiply by shift-add"},
    {"udivmod32", UdivmodSrc, "unsigned divide with remainder"},
    {"udiv32", Udiv32Src, "unsigned divide (wrapper)"},
    {"umod32", Umod32Src, "unsigned modulo (wrapper)"},
    {"memcpy", MemcpySrc, "byte-wise block copy"},
    {"memset", MemsetSrc, "byte-wise block fill"},
    {"strlen", StrlenSrc, "C-string length"},
};

} // namespace

const std::vector<Routine> &
allRoutines()
{
    return routines;
}

const Routine *
findRoutine(std::string_view name)
{
    for (const Routine &routine : routines) {
        if (routine.name == name)
            return &routine;
    }
    return nullptr;
}

std::string
sources(const std::vector<std::string_view> &names)
{
    std::vector<std::string_view> wanted(names);
    // Dependency: the divide wrappers call udivmod32.
    const bool needs_core =
        std::any_of(wanted.begin(), wanted.end(), [](std::string_view n) {
            return n == "udiv32" || n == "umod32";
        });
    if (needs_core &&
        std::find(wanted.begin(), wanted.end(), "udivmod32") ==
            wanted.end())
        wanted.push_back("udivmod32");

    std::string out;
    for (std::string_view name : wanted) {
        const Routine *routine = findRoutine(name);
        if (!routine)
            fatal("rtlib: unknown routine '%s'",
                  std::string(name).c_str());
        out += routine->source;
    }
    return out;
}

uint32_t
hostMul32(uint32_t a, uint32_t b)
{
    return a * b;
}

uint32_t
hostUdiv32(uint32_t a, uint32_t b)
{
    return a / b;
}

uint32_t
hostUmod32(uint32_t a, uint32_t b)
{
    return a % b;
}

} // namespace risc1::workloads::rtlib
