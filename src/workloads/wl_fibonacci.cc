/**
 * @file
 * Recursive Fibonacci — the classic procedure-call stress test; every
 * fib(n) costs ~1.6^n calls, exercising the register windows (RISC I)
 * against the CALLS frame machinery (vax80).
 */

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; fib(n), recursive. Result to RESULT.
        .equ RESULT, %u
_start: mov   %llu, r10
        call  fib
        stl   r10, (r0)RESULT
        halt

; fib: n in in0(r26); result returned in in0.
fib:    cmp   r26, 2
        blt   base
        sub   r26, 1, r10
        call  fib
        mov   r10, r16        ; fib(n-1)
        sub   r26, 2, r10
        call  fib
        add   r16, r10, r26   ; return fib(n-1)+fib(n-2)
        ret
base:   ret                   ; fib(0)=0, fib(1)=1: n already in place
)",
                     ResultAddr, static_cast<unsigned long long>(n));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Pushl, {vlit(static_cast<uint32_t>(n))});
    a.calls(1, "fib");
    a.inst(VaxOp::Movl, {vreg(0), vabs(ResultAddr)});
    a.halt();

    // fib(n): r2 = n, r3 = fib(n-1); both saved by the entry mask.
    a.entry("fib", 0x000c);
    a.inst(VaxOp::Movl, {vdisp(AP, 0), vreg(2)});
    a.inst(VaxOp::Cmpl, {vreg(2), vlit(2)});
    a.br(VaxOp::Blss, "base");
    a.inst(VaxOp::Subl3, {vlit(1), vreg(2), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.calls(1, "fib");
    a.inst(VaxOp::Movl, {vreg(0), vreg(3)});
    a.inst(VaxOp::Subl3, {vlit(2), vreg(2), vreg(1)});
    a.inst(VaxOp::Pushl, {vreg(1)});
    a.calls(1, "fib");
    a.inst(VaxOp::Addl2, {vreg(3), vreg(0)});
    a.ret();
    a.label("base");
    a.inst(VaxOp::Movl, {vreg(2), vreg(0)});
    a.ret();
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    uint32_t a = 0, b = 1;
    for (uint64_t i = 0; i < n; ++i) {
        const uint32_t next = a + b;
        a = b;
        b = next;
    }
    return a;
}

} // namespace

Workload
makeFibonacci()
{
    Workload wl;
    wl.name = "fibonacci";
    wl.paperTag = "fib(n), recursive";
    wl.description = "doubly-recursive Fibonacci; call-dominated";
    wl.defaultScale = 15;
    wl.recursive = true;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
