/**
 * @file
 * Bubble sort (Stanford suite's "bubble") — quadratic compare/swap
 * loops over xorshift data; branch- and memory-intensive, call-free.
 */

#include <algorithm>
#include <vector>

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    return strprintf(R"(
; Bubble-sort N words, then checksum sum(arr[k] ^ k).
        .equ RESULT, %u
_start: mov   arr, r2
        mov   %llu, r3       ; N
        mov   %u, r4         ; xorshift state
        clr   r5
fill:   cmp   r5, r3
        bge   filled
        sll   r4, 13, r6
        xor   r4, r6, r4
        srl   r4, 17, r6
        xor   r4, r6, r4
        sll   r4, 5, r6
        xor   r4, r6, r4
        sll   r5, 2, r6
        stl   r4, (r2)r6
        add   r5, 1, r5
        b     fill
filled: sub   r3, 1, r5      ; i = N-1
outer:  cmp   r5, 0
        ble   done
        clr   r6             ; j
        mov   r2, r7         ; p = &arr[0]
inner:  cmp   r6, r5
        bge   onext
        ldl   (r7)0, r8
        ldl   (r7)4, r9
        cmp   r8, r9
        blos  noswap         ; arr[j] <= arr[j+1] (unsigned)
        stl   r9, (r7)0
        stl   r8, (r7)4
noswap: add   r7, 4, r7
        add   r6, 1, r6
        b     inner
onext:  sub   r5, 1, r5
        b     outer
done:   clr   r7             ; checksum
        clr   r5
chk:    cmp   r5, r3
        bge   fin
        sll   r5, 2, r6
        ldl   (r2)r6, r8
        xor   r8, r5, r8
        add   r7, r8, r7
        add   r5, 1, r5
        b     chk
fin:    stl   r7, (r0)RESULT
        halt

        .align 4
arr:    .space %llu
)",
                     ResultAddr, static_cast<unsigned long long>(n),
                     XsSeed, static_cast<unsigned long long>(n * 4));
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("arr"), vreg(2)});
    a.inst(VaxOp::Movl, {vimm(static_cast<uint32_t>(n)), vreg(3)});
    a.inst(VaxOp::Movl, {vimm(XsSeed), vreg(4)});
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("fill");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(3)});
    a.br(VaxOp::Bgeq, "filled");
    a.inst(VaxOp::Ashl, {vlit(13), vreg(4), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-17)), vreg(4),
                         vreg(6)});
    a.inst(VaxOp::Bicl2, {vimm(0xffff8000u), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Ashl, {vlit(5), vreg(4), vreg(6)});
    a.inst(VaxOp::Xorl2, {vreg(6), vreg(4)});
    a.inst(VaxOp::Movl, {vreg(4), vidx(5, vdef(2))});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "fill");
    a.label("filled");
    a.inst(VaxOp::Subl3, {vlit(1), vreg(3), vreg(5)}); // i
    a.label("outer");
    a.inst(VaxOp::Tstl, {vreg(5)});
    a.br(VaxOp::Bgtr, "obody");
    a.brw("done");
    a.label("obody");
    a.inst(VaxOp::Clrl, {vreg(6)});            // j
    a.inst(VaxOp::Movl, {vreg(2), vreg(7)});   // p
    a.label("inner");
    a.inst(VaxOp::Cmpl, {vreg(6), vreg(5)});
    a.br(VaxOp::Bgeq, "onext");
    a.inst(VaxOp::Movl, {vdef(7), vreg(8)});
    a.inst(VaxOp::Movl, {vdisp(7, 4), vreg(9)});
    a.inst(VaxOp::Cmpl, {vreg(8), vreg(9)});
    a.br(VaxOp::Blequ, "noswap");
    a.inst(VaxOp::Movl, {vreg(9), vdef(7)});
    a.inst(VaxOp::Movl, {vreg(8), vdisp(7, 4)});
    a.label("noswap");
    a.inst(VaxOp::Addl2, {vlit(4), vreg(7)});
    a.inst(VaxOp::Incl, {vreg(6)});
    a.br(VaxOp::Brb, "inner");
    a.label("onext");
    a.inst(VaxOp::Decl, {vreg(5)});
    a.brw("outer");
    a.label("done");
    a.inst(VaxOp::Clrl, {vreg(7)});
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("chk");
    a.inst(VaxOp::Cmpl, {vreg(5), vreg(3)});
    a.br(VaxOp::Bgeq, "fin");
    a.inst(VaxOp::Xorl3, {vreg(5), vidx(5, vdef(2)), vreg(8)});
    a.inst(VaxOp::Addl2, {vreg(8), vreg(7)});
    a.inst(VaxOp::Incl, {vreg(5)});
    a.br(VaxOp::Brb, "chk");
    a.label("fin");
    a.inst(VaxOp::Movl, {vreg(7), vabs(ResultAddr)});
    a.halt();
    a.align(4);
    a.label("arr");
    a.space(static_cast<uint32_t>(n * 4));
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    std::vector<uint32_t> arr(n);
    uint32_t x = XsSeed;
    for (auto &v : arr) {
        x = xorshift32(x);
        v = x;
    }
    std::sort(arr.begin(), arr.end());
    uint32_t checksum = 0;
    for (size_t k = 0; k < arr.size(); ++k)
        checksum += arr[k] ^ static_cast<uint32_t>(k);
    return checksum;
}

} // namespace

Workload
makeBubblesort()
{
    Workload wl;
    wl.name = "bubblesort";
    wl.paperTag = "bubble (Stanford)";
    wl.description = "quadratic compare/swap sort; no calls";
    wl.defaultScale = 160;
    wl.recursive = false;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
