/**
 * @file
 * String-operations kernel: repeated strcpy / strcmp / strrev over a
 * synthetic string table — the byte-at-a-time workload class the CFA
 * study's E-series covered (and early CISCs targeted with string
 * microcode, which the comparison deliberately leaves out: vax80 does
 * it with plain byte moves, as compilers of the era mostly did).
 */

#include <string>
#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

/** The string table: `count` NUL-terminated strings of varied length. */
std::vector<std::string>
makeStrings(uint64_t count)
{
    Rng rng(0x57f06);
    std::vector<std::string> strings;
    for (uint64_t i = 0; i < count; ++i) {
        std::string s;
        const uint64_t len = 3 + rng.below(28);
        for (uint64_t c = 0; c < len; ++c)
            s += static_cast<char>('a' + rng.below(26));
        strings.push_back(std::move(s));
    }
    return strings;
}

uint32_t
hostChecksum(const std::vector<std::string> &strings)
{
    // Mirrors the guest: for each string, copy it, reverse the copy,
    // compare copy with the original (equal iff palindrome), and fold
    // bytes + comparison outcome into the checksum.
    uint32_t checksum = 0;
    for (const std::string &s : strings) {
        std::string copy = s;
        for (size_t i = 0, j = copy.size(); i + 1 < j--; ++i)
            std::swap(copy[i], copy[j]);
        uint32_t equal = copy == s ? 1 : 0;
        for (char c : copy)
            checksum = checksum * 31 + static_cast<unsigned char>(c);
        checksum += equal;
    }
    return checksum;
}

std::string
riscSource(uint64_t count)
{
    const auto strings = makeStrings(count);
    std::string table;
    for (const auto &s : strings)
        table += strprintf("        .asciz \"%s\"\n", s.c_str());

    return strprintf(R"(
; For each string: strcpy to buf, strrev buf, strcmp buf vs original,
; fold bytes*31 and equality into the checksum.
        .equ RESULT, %u
_start: mov   table, r2      ; cursor over the table
        mov   tend, r3       ; end of table
        mov   buf, r4
        clr   r5             ; checksum
next:   cmp   r2, r3
        bhis  done
        ; strcpy(buf, r2); also find length in r6
        clr   r6
cpy:    ldbu  (r2)r6, r7
        stb   r7, (r4)r6
        cmp   r7, 0
        beq   copied
        add   r6, 1, r6
        b     cpy
copied: ; strrev(buf) over r6 bytes: i=0, j=len-1
        clr   r7
        sub   r6, 1, r8
rev:    cmp   r7, r8
        bge   reved
        ldbu  (r4)r7, r9
        ldbu  (r4)r8, r16
        stb   r16, (r4)r7
        stb   r9, (r4)r8
        add   r7, 1, r7
        sub   r8, 1, r8
        b     rev
reved:  ; strcmp(buf, original): equal -> r7 = 1
        clr   r7
        clr   r8
cmp_l:  ldbu  (r4)r8, r9
        ldbu  (r2)r8, r16
        cmp   r9, r16
        bne   folded0
        cmp   r9, 0
        beq   equal
        add   r8, 1, r8
        b     cmp_l
equal:  mov   1, r7
folded0:
        ; fold: checksum = checksum*31 + byte, over reversed copy
        clr   r8
fold:   ldbu  (r4)r8, r9
        cmp   r9, 0
        beq   foldend
        sll   r5, 5, r16     ; checksum*31 = (x<<5) - x
        sub   r16, r5, r5
        add   r5, r9, r5
        add   r8, 1, r8
        b     fold
foldend:
        add   r5, r7, r5     ; + equality flag
        add   r2, r6, r2     ; advance past string + NUL
        add   r2, 1, r2
        b     next
done:   stl   r5, (r0)RESULT
        halt

table:
%s
tend:   .byte 0
        .align 4
buf:    .space 64
)",
                     ResultAddr, table.c_str());
}

vax::VaxProgram
buildVax(uint64_t count)
{
    using namespace risc1::vax;
    const auto strings = makeStrings(count);

    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("table"), vreg(2)});
    a.inst(VaxOp::Movl, {vsym("tend"), vreg(3)});
    a.inst(VaxOp::Movl, {vsym("buf"), vreg(4)});
    a.inst(VaxOp::Clrl, {vreg(5)});
    a.label("next");
    a.inst(VaxOp::Cmpl, {vreg(2), vreg(3)});
    a.br(VaxOp::Blssu, "body");
    a.brw("done");
    a.label("body");
    // strcpy + strlen
    a.inst(VaxOp::Clrl, {vreg(6)});
    a.label("cpy");
    a.inst(VaxOp::Movb, {vidx(6, vdef(2)), vreg(7)});
    a.inst(VaxOp::Movb, {vreg(7), vidx(6, vdef(4))});
    a.inst(VaxOp::Tstl, {vreg(7)});
    a.br(VaxOp::Beql, "copied");
    a.inst(VaxOp::Incl, {vreg(6)});
    a.br(VaxOp::Brb, "cpy");
    a.label("copied");
    // strrev
    a.inst(VaxOp::Clrl, {vreg(7)});
    a.inst(VaxOp::Subl3, {vlit(1), vreg(6), vreg(8)});
    a.label("rev");
    a.inst(VaxOp::Cmpl, {vreg(7), vreg(8)});
    a.br(VaxOp::Bgeq, "reved");
    a.inst(VaxOp::Movb, {vidx(7, vdef(4)), vreg(9)});
    a.inst(VaxOp::Movb, {vidx(8, vdef(4)), vreg(10)});
    a.inst(VaxOp::Movb, {vreg(10), vidx(7, vdef(4))});
    a.inst(VaxOp::Movb, {vreg(9), vidx(8, vdef(4))});
    a.inst(VaxOp::Incl, {vreg(7)});
    a.inst(VaxOp::Decl, {vreg(8)});
    a.br(VaxOp::Brb, "rev");
    a.label("reved");
    // strcmp
    a.inst(VaxOp::Clrl, {vreg(7)});
    a.inst(VaxOp::Clrl, {vreg(8)});
    a.label("cmp_l");
    a.inst(VaxOp::Movb, {vidx(8, vdef(4)), vreg(9)});
    a.inst(VaxOp::Cmpb, {vreg(9), vidx(8, vdef(2))});
    a.br(VaxOp::Bneq, "folded0");
    a.inst(VaxOp::Tstl, {vreg(9)});
    a.br(VaxOp::Beql, "equal");
    a.inst(VaxOp::Incl, {vreg(8)});
    a.br(VaxOp::Brb, "cmp_l");
    a.label("equal");
    a.inst(VaxOp::Movl, {vlit(1), vreg(7)});
    a.label("folded0");
    // fold bytes of the reversed copy
    a.inst(VaxOp::Clrl, {vreg(8)});
    a.label("fold");
    a.inst(VaxOp::Movb, {vidx(8, vdef(4)), vreg(9)});
    a.inst(VaxOp::Tstl, {vreg(9)});
    a.br(VaxOp::Beql, "foldend");
    a.inst(VaxOp::Mull2, {vlit(31), vreg(5)});
    a.inst(VaxOp::Addl2, {vreg(9), vreg(5)});
    a.inst(VaxOp::Incl, {vreg(8)});
    a.br(VaxOp::Brb, "fold");
    a.label("foldend");
    a.inst(VaxOp::Addl2, {vreg(7), vreg(5)});
    a.inst(VaxOp::Addl2, {vreg(6), vreg(2)});
    a.inst(VaxOp::Incl, {vreg(2)});
    a.brw("next");
    a.label("done");
    a.inst(VaxOp::Movl, {vreg(5), vabs(ResultAddr)});
    a.halt();

    a.label("table");
    for (const auto &s : strings) {
        a.ascii(s);
        a.ascii(std::string(1, '\0'));
    }
    a.label("tend");
    a.space(1);
    a.align(4);
    a.label("buf");
    a.space(64);
    return a.finish();
}

uint32_t
expected(uint64_t count)
{
    return hostChecksum(makeStrings(count));
}

} // namespace

Workload
makeStrops()
{
    Workload wl;
    wl.name = "strops";
    wl.paperTag = "string kernels (strcpy/strcmp/strrev)";
    wl.description = "byte-at-a-time string copying/reversing/compares";
    wl.defaultScale = 60;
    wl.recursive = false;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
