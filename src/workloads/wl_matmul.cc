/**
 * @file
 * Integer matrix multiply. RISC I has no multiply instruction, so the
 * inner product calls a shift-add mul32 subroutine (as the Berkeley
 * toolchain did); vax80 uses its hardware MULL3. This is the suite's
 * honest look at an operation where microcode genuinely helps.
 */

#include <vector>

#include "support/logging.hh"
#include "workloads/suite.hh"

namespace risc1::workloads::detail {

namespace {

std::string
riscSource(uint64_t n)
{
    const auto nn = static_cast<unsigned long long>(n);
    return strprintf(R"(
; C = A * B for n x n byte-valued matrices; checksum sum(C[idx]^idx).
        .equ RESULT, %u
_start: mov   amat, r2
        mov   bmat, r3
        mov   cmat, r4
        mov   %llu, r5       ; n
        sll   r5, 2, r6      ; row stride in bytes
        ; fill A and B (2*n*n words) with xorshift & 255 by walking a
        ; pointer from A's base to C's base (no multiply needed)
        mov   %u, r7
        clr   r8
        mov   r2, r16        ; fill cursor
        mov   cmat, r17      ; fill end (A then B, contiguous)
fill:   cmp   r16, r17
        bhis  filled
        sll   r7, 13, r8
        xor   r7, r8, r7
        srl   r7, 17, r8
        xor   r7, r8, r7
        sll   r7, 5, r8
        xor   r7, r8, r7
        and   r7, 255, r8
        stl   r8, (r16)0
        add   r16, 4, r16
        b     fill
filled:
        clr   r16            ; i
        mov   r2, r19        ; rowA = A
        mov   r4, r23        ; pC = C
i_loop: cmp   r16, r5
        bge   chksum
        clr   r17            ; j
j_loop: cmp   r17, r5
        bge   i_next
        clr   r21            ; acc
        clr   r18            ; k
        mov   r19, r22       ; pA = rowA
        sll   r17, 2, r20
        add   r3, r20, r20   ; pB = B + 4*j
k_loop: cmp   r18, r5
        bge   k_done
        ldl   (r22)0, r10    ; *pA
        ldl   (r20)0, r11    ; *pB
        call  mul32
        add   r21, r10, r21
        add   r22, 4, r22
        add   r20, r6, r20   ; pB += stride
        add   r18, 1, r18
        b     k_loop
k_done: stl   r21, (r23)0
        add   r23, 4, r23
        add   r17, 1, r17
        b     j_loop
i_next: add   r19, r6, r19   ; next row of A
        add   r16, 1, r16
        b     i_loop
chksum: clr   r7
        clr   r8             ; idx
        mov   r4, r9         ; cursor = C base (r23 = one past C end)
csl:    cmp   r9, r23
        bhis  cs_done
        ldl   (r9)0, r10
        xor   r10, r8, r10
        add   r7, r10, r7
        add   r9, 4, r9
        add   r8, 1, r8
        b     csl
cs_done:
        stl   r7, (r0)RESULT
        halt

; mul32(a, b) -> a*b (shift-add; in0,in1 -> result in in0)
mul32:  clr   r16
        mov   r26, r17
        mov   r27, r18
mloop:  cmp   r18, 0
        beq   mdone
        and   r18, 1, r19
        cmp   r19, 0
        beq   noadd
        add   r16, r17, r16
noadd:  sll   r17, 1, r17
        srl   r18, 1, r18
        b     mloop
mdone:  mov   r16, r26
        ret

        .align 4
amat:   .space %llu
bmat:   .space %llu
cmat:   .space %llu
)",
                     ResultAddr, nn, XsSeed, nn * nn * 4, nn * nn * 4,
                     nn * nn * 4);
}

vax::VaxProgram
buildVax(uint64_t n)
{
    using namespace risc1::vax;
    const auto dim = static_cast<uint32_t>(n);
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vsym("amat"), vreg(2)});
    a.inst(VaxOp::Movl, {vsym("bmat"), vreg(3)});
    a.inst(VaxOp::Movl, {vsym("cmat"), vreg(4)});
    a.inst(VaxOp::Movl, {vimm(dim), vreg(5)});
    a.inst(VaxOp::Ashl, {vlit(2), vreg(5), vreg(6)}); // stride
    // Fill A and B with xorshift & 255.
    a.inst(VaxOp::Movl, {vimm(XsSeed), vreg(7)});
    a.inst(VaxOp::Movl, {vreg(2), vreg(8)});
    a.label("fill");
    a.inst(VaxOp::Cmpl, {vreg(8), vreg(4)});
    a.br(VaxOp::Bgequ, "filled");
    a.inst(VaxOp::Ashl, {vlit(13), vreg(7), vreg(9)});
    a.inst(VaxOp::Xorl2, {vreg(9), vreg(7)});
    a.inst(VaxOp::Ashl, {vimm(static_cast<uint32_t>(-17)), vreg(7),
                         vreg(9)});
    a.inst(VaxOp::Bicl2, {vimm(0xffff8000u), vreg(9)});
    a.inst(VaxOp::Xorl2, {vreg(9), vreg(7)});
    a.inst(VaxOp::Ashl, {vlit(5), vreg(7), vreg(9)});
    a.inst(VaxOp::Xorl2, {vreg(9), vreg(7)});
    a.inst(VaxOp::Bicl3, {vimm(0xffffff00u), vreg(7), vreg(9)});
    a.inst(VaxOp::Movl, {vreg(9), vdef(8)});
    a.inst(VaxOp::Addl2, {vlit(4), vreg(8)});
    a.br(VaxOp::Brb, "fill");
    a.label("filled");
    // Triple loop: r0=i r1=j r8=k r9=rowA r10=pB r11=acc.
    a.inst(VaxOp::Clrl, {vreg(0)});
    a.inst(VaxOp::Movl, {vreg(2), vreg(9)});
    a.label("i_loop");
    a.inst(VaxOp::Cmpl, {vreg(0), vreg(5)});
    a.br(VaxOp::Blss, "i_body");
    a.brw("chksum");
    a.label("i_body");
    a.inst(VaxOp::Clrl, {vreg(1)});
    a.label("j_loop");
    a.inst(VaxOp::Cmpl, {vreg(1), vreg(5)});
    a.br(VaxOp::Bgeq, "i_next");
    a.inst(VaxOp::Clrl, {vreg(11)});
    a.inst(VaxOp::Clrl, {vreg(8)});
    a.inst(VaxOp::Movl, {vreg(9), vreg(10)}); // pA walks in r10
    a.label("k_loop");
    a.inst(VaxOp::Cmpl, {vreg(8), vreg(5)});
    a.br(VaxOp::Bgeq, "k_done");
    // acc += *pA * B[k*n + j]: B walk via indexed mode with computed
    // word index k*n+j kept in r12? AP is linkage; reuse memory walk:
    // maintain pB in a stack temp is costly; instead compute index via
    // MULL: idx = k*n+j.
    a.inst(VaxOp::Mull3, {vreg(8), vreg(5), vreg(12)});
    a.inst(VaxOp::Addl2, {vreg(1), vreg(12)});
    a.inst(VaxOp::Mull3, {vdef(10), vidx(12, vdef(3)), vreg(12)});
    a.inst(VaxOp::Addl2, {vreg(12), vreg(11)});
    a.inst(VaxOp::Addl2, {vlit(4), vreg(10)});
    a.inst(VaxOp::Incl, {vreg(8)});
    a.br(VaxOp::Brb, "k_loop");
    a.label("k_done");
    a.inst(VaxOp::Movl, {vreg(11), vdef(4)});
    a.inst(VaxOp::Addl2, {vlit(4), vreg(4)}); // pC++
    a.inst(VaxOp::Incl, {vreg(1)});
    a.br(VaxOp::Brb, "j_loop");
    a.label("i_next");
    a.inst(VaxOp::Addl2, {vreg(6), vreg(9)});
    a.inst(VaxOp::Incl, {vreg(0)});
    a.brw("i_loop");
    a.label("chksum");
    // r4 walked to C end; recompute base and fold.
    a.inst(VaxOp::Movl, {vsym("cmat"), vreg(4)});
    a.inst(VaxOp::Mull3, {vreg(5), vreg(5), vreg(8)}); // n*n
    a.inst(VaxOp::Clrl, {vreg(7)});
    a.inst(VaxOp::Clrl, {vreg(9)}); // idx
    a.label("csl");
    a.inst(VaxOp::Cmpl, {vreg(9), vreg(8)});
    a.br(VaxOp::Bgeq, "done");
    a.inst(VaxOp::Xorl3, {vreg(9), vidx(9, vdef(4)), vreg(10)});
    a.inst(VaxOp::Addl2, {vreg(10), vreg(7)});
    a.inst(VaxOp::Incl, {vreg(9)});
    a.br(VaxOp::Brb, "csl");
    a.label("done");
    a.inst(VaxOp::Movl, {vreg(7), vabs(ResultAddr)});
    a.halt();
    a.align(4);
    a.label("amat");
    a.space(dim * dim * 4);
    a.label("bmat");
    a.space(dim * dim * 4);
    a.label("cmat");
    a.space(dim * dim * 4);
    return a.finish();
}

uint32_t
expected(uint64_t n)
{
    const size_t dim = n;
    std::vector<uint32_t> amat(dim * dim), bmat(dim * dim),
        cmat(dim * dim, 0);
    uint32_t x = XsSeed;
    for (auto &v : amat) {
        x = xorshift32(x);
        v = x & 255;
    }
    for (auto &v : bmat) {
        x = xorshift32(x);
        v = x & 255;
    }
    for (size_t i = 0; i < dim; ++i) {
        for (size_t j = 0; j < dim; ++j) {
            uint32_t acc = 0;
            for (size_t k = 0; k < dim; ++k)
                acc += amat[i * dim + k] * bmat[k * dim + j];
            cmat[i * dim + j] = acc;
        }
    }
    uint32_t checksum = 0;
    for (size_t idx = 0; idx < cmat.size(); ++idx)
        checksum += cmat[idx] ^ static_cast<uint32_t>(idx);
    return checksum;
}

} // namespace

Workload
makeMatmul()
{
    Workload wl;
    wl.name = "matmul";
    wl.paperTag = "integer matmul (software multiply)";
    wl.description = "n x n matrix product; RISC I multiplies in "
                     "software, vax80 in microcode";
    wl.defaultScale = 10;
    wl.recursive = false;
    wl.riscSource = riscSource;
    wl.buildVax = buildVax;
    wl.expected = expected;
    return wl;
}

} // namespace risc1::workloads::detail
