/**
 * @file
 * Internal factory declarations for the benchmark suite; aggregated by
 * workloads.cc. Not part of the public API.
 */

#ifndef RISC1_WORKLOADS_SUITE_HH
#define RISC1_WORKLOADS_SUITE_HH

#include "workloads/workload.hh"

namespace risc1::workloads::detail {

Workload makeStrsearch();
Workload makeBittest();
Workload makeLinkedlist();
Workload makeBitmatrix();
Workload makeQuicksort();
Workload makeAckermann();
Workload makeFibonacci();
Workload makeHanoi();
Workload makeSieve();
Workload makeQueens();
Workload makeMatmul();
Workload makeBubblesort();
Workload makePerm();
Workload makeTreesort();
Workload makeStrops();
Workload makeCrc32();
Workload makeGcd();

} // namespace risc1::workloads::detail

#endif // RISC1_WORKLOADS_SUITE_HH
