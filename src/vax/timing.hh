/**
 * @file
 * Microcode cycle-cost model of the vax80 baseline, calibrated to the
 * published character of the VAX-11/780: ~5-10 cycles per ordinary
 * instruction (microcoded decode plus per-specifier work), tens of
 * cycles for CALLS/RET, 200 ns cycle time (5 MHz).
 */

#ifndef RISC1_VAX_TIMING_HH
#define RISC1_VAX_TIMING_HH

namespace risc1::vax {

/** Cycle costs of the vax80 microengine. */
struct VaxTiming
{
    unsigned baseCycles = 2;       //!< opcode decode/dispatch
    unsigned perSpecifier = 1;     //!< operand specifier decode
    unsigned memReadCycles = 2;    //!< each data-memory read
    unsigned memWriteCycles = 2;   //!< each data-memory write
    unsigned branchTakenExtra = 3; //!< refill after a taken branch
    unsigned mulExtra = 18;
    unsigned divExtra = 38;
    unsigned shiftExtra = 4;
    unsigned callsBase = 15;    //!< CALLS fixed microcode sequence
    unsigned callsPerReg = 2;   //!< per register pushed (plus the store)
    unsigned retBase = 12;
    unsigned retPerReg = 2;
    double cycleTimeNs = 200.0; //!< VAX-11/780: 5 MHz
};

} // namespace risc1::vax

#endif // RISC1_VAX_TIMING_HH
