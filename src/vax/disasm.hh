/**
 * @file
 * vax80 disassembler: decodes the variable-length instruction stream
 * back into builder-level syntax, for listings and debugging. Because
 * instruction boundaries are data-dependent, disassembly is linear from
 * a given start address.
 */

#ifndef RISC1_VAX_DISASM_HH
#define RISC1_VAX_DISASM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vax/builder.hh"

namespace risc1::vax {

/** One decoded instruction's rendering. */
struct VaxDisasmLine
{
    uint32_t addr = 0;
    unsigned length = 0; //!< bytes
    std::string text;
    bool valid = false;
};

/**
 * Decode one instruction from raw bytes. `fetch(offset)` supplies the
 * byte at `addr + offset`.
 */
VaxDisasmLine disassembleVaxAt(const std::vector<uint8_t> &bytes,
                               size_t offset, uint32_t addr);

/**
 * Linear disassembly of a program's first `max_insts` instructions
 * (stops at HALT fall-off or an invalid opcode).
 */
std::string disassembleVaxProgram(const VaxProgram &program,
                                  unsigned max_insts = 1u << 20);

} // namespace risc1::vax

#endif // RISC1_VAX_DISASM_HH
