#include "vax/cpu.hh"

#include <algorithm>
#include <iostream>

#include "sim/fault.hh"
#include "support/bits.hh"
#include "support/logging.hh"
#include "vax/disasm.hh"

namespace risc1::vax {

using sim::SimFault;

VaxCpu::VaxCpu(VaxCpuOptions options) : options_(options)
{
    if (options_.predecode)
        memory_.setWriteObserver(&dcache_);
}

void
VaxCpu::load(const VaxProgram &program)
{
    memory_ = sim::Memory{}; // move-assign drops the observer
    memory_.setLimit(options_.memLimit);
    for (size_t i = 0; i < program.bytes.size(); ++i)
        memory_.poke8(program.base + static_cast<uint32_t>(i),
                      program.bytes[i]);
    dcache_.invalidateAll();
    if (options_.predecode)
        memory_.setWriteObserver(&dcache_);
    fastActive_ = false;
    regs_.fill(0);
    stats_ = VaxStats{};
    flags_ = isa::Flags{};
    pc_ = program.entry;
    halted_ = false;
    pcRing_.fill(0);
    pcRingPos_ = 0;
    pcRingCount_ = 0;
    regs_[SP] = options_.stackTop;
    regs_[FP] = options_.stackTop;
    regs_[AP] = options_.stackTop;
}

sim::ExecResult
VaxCpu::run()
{
    auto finish = [&](sim::ExecResult &result) -> sim::ExecResult & {
        stats_.memory = memory_.stats();
        result.instructions = stats_.instructions;
        result.cycles = stats_.cycles;
        return result;
    };

    sim::ExecResult result;
    while (!halted_ && stats_.instructions < options_.maxInstructions) {
        if (options_.watchdogCycles != 0 &&
            stats_.cycles > options_.watchdogCycles) {
            result.reason = sim::StopReason::Watchdog;
            result.faultCause = isa::TrapCause::Watchdog;
            result.faultPc = pc_;
            result.message = strprintf(
                "watchdog: no halt within %llu cycles (pc 0x%08x)",
                static_cast<unsigned long long>(
                    options_.watchdogCycles),
                pc_);
            result.crashReport = crashReport(SimFault{
                result.message, pc_, isa::TrapCause::Watchdog});
            return finish(result);
        }
        try {
            step();
        } catch (const SimFault &fault) {
            result.reason = sim::StopReason::Fault;
            result.message = fault.message;
            result.faultCause = fault.cause;
            result.faultAddr = fault.addr;
            result.faultPc = instStart_;
            result.crashReport = crashReport(fault);
            return finish(result);
        }
    }
    result.reason = halted_ ? sim::StopReason::Halted
                            : sim::StopReason::InstLimit;
    return finish(result);
}

std::string
VaxCpu::crashReport(const SimFault &fault) const
{
    std::string report;
    report += "=== vax80 crash report ===\n";
    report += strprintf("cause:       %s\n",
                        std::string(isa::trapCauseName(fault.cause))
                            .c_str());
    report += strprintf("message:     %s\n", fault.message.c_str());
    report += strprintf("fault pc:    0x%08x\n", instStart_);
    report += strprintf("fault addr:  0x%08x\n", fault.addr);
    std::vector<uint8_t> bytes(16);
    for (unsigned i = 0; i < bytes.size(); ++i)
        bytes[i] = memory_.peek8(instStart_ + i);
    const VaxDisasmLine line = disassembleVaxAt(bytes, 0, instStart_);
    report += strprintf("instruction: %s\n",
                        line.valid ? line.text.c_str()
                                   : "<undecodable>");
    for (unsigned r = 0; r < NumRegs; ++r)
        report += strprintf("%sr%-2u %08x%s", r % 4 == 0 ? "  " : " ",
                            r, regs_[r],
                            r % 4 == 3 ? "\n" : "");
    report += "recent pcs: "; // oldest to newest
    const uint64_t depth = std::min<uint64_t>(pcRingCount_, PcRingSize);
    for (uint64_t i = 0; i < depth; ++i) {
        const unsigned slot =
            (pcRingPos_ + PcRingSize - depth + i) % PcRingSize;
        report += strprintf(" 0x%08x", pcRing_[slot]);
    }
    report += "\n";
    return report;
}

uint8_t
VaxCpu::istreamByte()
{
    ++istreamCount_;
    return memory_.peek8(pc_++);
}

uint32_t
VaxCpu::istreamBytes(unsigned count)
{
    uint32_t value = 0;
    for (unsigned i = 0; i < count; ++i)
        value |= static_cast<uint32_t>(istreamByte()) << (8 * i);
    return value;
}

VaxCpu::OpRef
VaxCpu::decodeOperand(unsigned width)
{
    if (fastActive_)
        return resolveSpec(width);
    ++specifiers_;
    const uint8_t spec = istreamByte();
    const unsigned mode = spec >> 4;
    const unsigned reg = spec & 0xf;

    // Short literal: modes 0..3 encode a 6-bit constant.
    if (mode <= 3) {
        OpRef ref;
        ref.kind = OpRef::Kind::Val;
        ref.value = spec & 0x3f;
        return ref;
    }

    if (mode == static_cast<unsigned>(Mode::Index)) {
        const uint32_t index = regs_[reg];
        OpRef base = decodeOperand(width);
        if (base.kind != OpRef::Kind::Mem)
            throw SimFault{"index prefix on non-memory operand",
                           instStart_, isa::TrapCause::IllegalOperand};
        base.addr += index * width;
        return base;
    }

    OpRef ref;
    switch (static_cast<Mode>(mode)) {
      case Mode::Register:
        if (reg >= NumRegs)
            throw SimFault{"register specifier out of range", instStart_,
                           isa::TrapCause::IllegalOperand};
        ref.kind = OpRef::Kind::Reg;
        ref.reg = reg;
        return ref;
      case Mode::Deferred:
        ref.kind = OpRef::Kind::Mem;
        ref.addr = regs_[reg];
        return ref;
      case Mode::AutoDec:
        regs_[reg] -= width;
        ref.kind = OpRef::Kind::Mem;
        ref.addr = regs_[reg];
        return ref;
      case Mode::AutoInc:
        if (reg == 15) {
            // Immediate from the instruction stream.
            ref.kind = OpRef::Kind::Val;
            ref.value = istreamBytes(4);
            return ref;
        }
        ref.kind = OpRef::Kind::Mem;
        ref.addr = regs_[reg];
        regs_[reg] += width;
        return ref;
      case Mode::DispByte: {
        const auto disp = static_cast<int8_t>(istreamByte());
        ref.kind = OpRef::Kind::Mem;
        ref.addr = regs_[reg] + static_cast<uint32_t>(
                                    static_cast<int32_t>(disp));
        return ref;
      }
      case Mode::DispWord: {
        const auto disp = static_cast<int16_t>(istreamBytes(2));
        ref.kind = OpRef::Kind::Mem;
        ref.addr = regs_[reg] + static_cast<uint32_t>(
                                    static_cast<int32_t>(disp));
        return ref;
      }
      case Mode::DispLong: {
        const uint32_t disp = istreamBytes(4);
        ref.kind = OpRef::Kind::Mem;
        ref.addr = (reg == 15 ? 0 : regs_[reg]) + disp;
        return ref;
      }
      default:
        throw SimFault{strprintf("bad operand specifier 0x%02x", spec),
                       instStart_, isa::TrapCause::IllegalOperand};
    }
}

/**
 * Resolve the next cached specifier of fastRec_. Mirrors decodeOperand
 * exactly — same side-effect order (an index register is read before
 * the base's autoincrement/autodecrement applies), same faults — but
 * reads the predecoded fields instead of walking the istream. Modes
 * the parser refuses (parseVaxInst) never reach this function.
 */
VaxCpu::OpRef
VaxCpu::resolveSpec(unsigned width)
{
    const VaxSpec &s = fastRec_->specs[fastSpec_++];
    const bool indexed = s.indexReg != VaxSpec::NoIndex;
    // The lazy decoder counts an index prefix as its own specifier.
    specifiers_ += indexed ? 2 : 1;
    uint32_t index = 0;
    if (indexed)
        index = regs_[s.indexReg];

    OpRef ref;
    // Dispatch on the resolved kind computed at parse time: literal /
    // immediate datum, register, or one of four effective-address
    // shapes with the displacement folded into s.extra.
    switch (s.rkind) {
      case VaxSpec::RKind::Val:
        ref.kind = OpRef::Kind::Val;
        ref.value = s.extra;
        break;
      case VaxSpec::RKind::Reg:
        if (s.reg >= NumRegs)
            throw SimFault{"register specifier out of range",
                           instStart_,
                           isa::TrapCause::IllegalOperand};
        ref.kind = OpRef::Kind::Reg;
        ref.reg = s.reg;
        break;
      case VaxSpec::RKind::MemDisp:
        ref.kind = OpRef::Kind::Mem;
        ref.addr = regs_[s.reg] + s.extra;
        break;
      case VaxSpec::RKind::MemAbs:
        ref.kind = OpRef::Kind::Mem;
        ref.addr = s.extra;
        break;
      case VaxSpec::RKind::AutoDec:
        regs_[s.reg] -= width;
        ref.kind = OpRef::Kind::Mem;
        ref.addr = regs_[s.reg];
        break;
      case VaxSpec::RKind::AutoInc:
        ref.kind = OpRef::Kind::Mem;
        ref.addr = regs_[s.reg];
        regs_[s.reg] += width;
        break;
    }
    if (indexed) {
        if (ref.kind != OpRef::Kind::Mem)
            throw SimFault{"index prefix on non-memory operand",
                           instStart_, isa::TrapCause::IllegalOperand};
        ref.addr += index * width;
    }
    return ref;
}

uint32_t
VaxCpu::readOp(const OpRef &ref, unsigned width)
{
    switch (ref.kind) {
      case OpRef::Kind::Val:
        return ref.value;
      case OpRef::Kind::Reg:
        return regs_[ref.reg] & static_cast<uint32_t>(mask(width * 8));
      case OpRef::Kind::Mem:
        stats_.cycles += options_.timing.memReadCycles;
        switch (width) {
          case 1: return memory_.read8(ref.addr);
          case 2: return memory_.read16(ref.addr);
          default: return memory_.read32(ref.addr);
        }
    }
    panic("readOp: bad OpRef kind");
}

void
VaxCpu::writeOp(const OpRef &ref, uint32_t value, unsigned width)
{
    switch (ref.kind) {
      case OpRef::Kind::Val:
        throw SimFault{"write to a literal operand", instStart_,
                       isa::TrapCause::IllegalOperand};
      case OpRef::Kind::Reg:
        if (width == 4) {
            regs_[ref.reg] = value;
        } else {
            const auto m = static_cast<uint32_t>(mask(width * 8));
            regs_[ref.reg] = (regs_[ref.reg] & ~m) | (value & m);
        }
        return;
      case OpRef::Kind::Mem:
        stats_.cycles += options_.timing.memWriteCycles;
        switch (width) {
          case 1: memory_.write8(ref.addr,
                                 static_cast<uint8_t>(value)); break;
          case 2: memory_.write16(ref.addr,
                                  static_cast<uint16_t>(value)); break;
          default: memory_.write32(ref.addr, value); break;
        }
        return;
    }
}

void
VaxCpu::setNZ(uint32_t value)
{
    flags_.z = value == 0;
    flags_.n = (value >> 31) != 0;
    flags_.v = false;
    flags_.c = false;
}

void
VaxCpu::push(uint32_t value)
{
    regs_[SP] -= 4;
    stats_.cycles += options_.timing.memWriteCycles;
    memory_.write32(regs_[SP], value);
}

uint32_t
VaxCpu::pop()
{
    stats_.cycles += options_.timing.memReadCycles;
    const uint32_t value = memory_.read32(regs_[SP]);
    regs_[SP] += 4;
    return value;
}

void
VaxCpu::branch(VaxOp op)
{
    using isa::Cond;
    const int32_t disp =
        fastActive_ ? fastRec_->branchDisp
                    : static_cast<int8_t>(istreamByte());
    Cond cond;
    switch (op) {
      case VaxOp::Brb:   cond = Cond::Alw; break;
      case VaxOp::Beql:  cond = Cond::Eq; break;
      case VaxOp::Bneq:  cond = Cond::Ne; break;
      case VaxOp::Blss:  cond = Cond::Lt; break;
      case VaxOp::Bleq:  cond = Cond::Le; break;
      case VaxOp::Bgtr:  cond = Cond::Gt; break;
      case VaxOp::Bgeq:  cond = Cond::Ge; break;
      case VaxOp::Blssu: cond = Cond::Lo; break;
      case VaxOp::Blequ: cond = Cond::Los; break;
      case VaxOp::Bgtru: cond = Cond::Hi; break;
      case VaxOp::Bgequ: cond = Cond::His; break;
      default:
        panic("branch: bad opcode");
    }
    ++stats_.branches;
    if (isa::condHolds(cond, flags_)) {
        ++stats_.branchesTaken;
        stats_.cycles += options_.timing.branchTakenExtra;
        pc_ += static_cast<uint32_t>(disp);
    }
}

void
VaxCpu::doCalls()
{
    const OpRef nargs_ref = decodeOperand(4);
    const uint32_t nargs = readOp(nargs_ref, 4);
    const OpRef dst = decodeOperand(4);
    if (dst.kind != OpRef::Kind::Mem)
        throw SimFault{"CALLS destination must be an address", instStart_,
                       isa::TrapCause::IllegalOperand};

    const uint32_t proc = dst.addr;
    // The entry mask sits at an arbitrary (usually unaligned) code
    // address; fetch it bytewise.
    stats_.cycles += options_.timing.memReadCycles;
    const uint16_t mask16 = static_cast<uint16_t>(
        memory_.read8(proc) |
        (static_cast<uint16_t>(memory_.read8(proc + 1)) << 8));

    const uint32_t arg_base = regs_[SP]; // first argument (pushed last)

    unsigned saved = 0;
    for (int r = 11; r >= 0; --r) {
        if (mask16 & (1u << r)) {
            push(regs_[static_cast<unsigned>(r)]);
            ++saved;
        }
    }
    push(static_cast<uint32_t>(mask16) | (nargs << 16));
    push(regs_[AP]);
    push(regs_[FP]);
    push(pc_); // return address (instruction after CALLS)

    regs_[FP] = regs_[SP];
    regs_[AP] = arg_base;
    pc_ = proc + 2; // skip the entry mask

    ++stats_.calls;
    stats_.savedRegs += saved;
    stats_.cycles += options_.timing.callsBase +
                     options_.timing.callsPerReg * saved;
}

void
VaxCpu::doRet()
{
    regs_[SP] = regs_[FP];
    const uint32_t ret_pc = pop();
    regs_[FP] = pop();
    regs_[AP] = pop();
    const uint32_t info = pop();
    const uint16_t mask16 = static_cast<uint16_t>(info);
    const uint32_t nargs = info >> 16;

    unsigned restored = 0;
    for (unsigned r = 0; r < 12; ++r) {
        if (mask16 & (1u << r)) {
            regs_[r] = pop();
            ++restored;
        }
    }
    regs_[SP] += 4 * nargs; // discard the arguments
    pc_ = ret_pc;

    ++stats_.returns;
    stats_.restoredRegs += restored;
    stats_.cycles += options_.timing.retBase +
                     options_.timing.retPerReg * restored;
}

void
VaxCpu::traceInst()
{
    // Pull a window of bytes (uncounted) and disassemble in place.
    std::vector<uint8_t> bytes(16);
    for (unsigned i = 0; i < bytes.size(); ++i)
        bytes[i] = memory_.peek8(pc_ + i);
    const VaxDisasmLine line = disassembleVaxAt(bytes, 0, pc_);
    std::ostream &out = options_.traceOut ? *options_.traceOut
                                          : std::cerr;
    out << strprintf("[%10llu] %08x  %s\n",
                     static_cast<unsigned long long>(
                         stats_.instructions),
                     pc_,
                     line.valid ? line.text.c_str() : "<undecodable>");
}

void
VaxCpu::step()
{
    if (options_.trace)
        traceInst();

    instStart_ = pc_;
    specifiers_ = 0;
    istreamCount_ = 0;
    fastActive_ = false;
    fastSpec_ = 0;
    VaxOp op{};
    if (options_.predecode) {
        if (const VaxDecoded *rec = dcache_.lookup(pc_)) {
            // Executed through the pointer, no copy; see the fastRec_
            // declaration for why a self-modifying store cannot be
            // observed through it.
            fastRec_ = rec;
            fastActive_ = true;
            op = rec->op;
            // All istream byte positions are known up front, so pc_
            // and the istream accounting advance in one step. Every
            // later use of pc_ (branch targets, the CALLS return
            // address) reads it after the whole instruction would
            // have been consumed, so the early advance is invisible.
            pc_ += rec->length;
            istreamCount_ = rec->length;
        }
    }
    if (!fastActive_) {
        const uint8_t raw = istreamByte();
        if (!isValidVaxOp(raw))
            throw SimFault{
                strprintf("illegal vax80 opcode 0x%02x at 0x%08x",
                          raw, instStart_),
                instStart_, isa::TrapCause::IllegalOpcode};
        op = static_cast<VaxOp>(raw);
        if (options_.predecode) {
            // Parse for the next visit; this step stays on the lazy
            // path (the record is not consulted mid-instruction).
            VaxDecoded rec;
            if (parseVaxInst(memory_, instStart_, rec))
                dcache_.insert(instStart_, rec);
        }
    }

    auto alu2 = [&](unsigned width, auto fn, bool arith) {
        const OpRef src = decodeOperand(width);
        const uint32_t a = readOp(src, width);
        const OpRef dst = decodeOperand(width);
        const uint32_t b = readOp(dst, width);
        uint32_t r;
        if (arith) {
            auto [value, c, v] = fn(b, a);
            r = value;
            flags_.c = c;
            flags_.v = v;
            flags_.z = r == 0;
            flags_.n = (r >> 31) != 0;
        } else {
            r = fn(b, a).value;
            setNZ(r);
        }
        writeOp(dst, r, width);
    };
    auto alu3 = [&](unsigned width, auto fn, bool arith) {
        const OpRef src1 = decodeOperand(width);
        const uint32_t a = readOp(src1, width);
        const OpRef src2 = decodeOperand(width);
        const uint32_t b = readOp(src2, width);
        const OpRef dst = decodeOperand(width);
        uint32_t r;
        if (arith) {
            auto [value, c, v] = fn(b, a);
            r = value;
            flags_.c = c;
            flags_.v = v;
            flags_.z = r == 0;
            flags_.n = (r >> 31) != 0;
        } else {
            r = fn(b, a).value;
            setNZ(r);
        }
        writeOp(dst, r, width);
    };

    struct AluR { uint32_t value; bool c; bool v; };
    auto add_fn = [](uint32_t x, uint32_t y) {
        const uint64_t wide = static_cast<uint64_t>(x) + y;
        const auto r = static_cast<uint32_t>(wide);
        return AluR{r, (wide >> 32) != 0,
                    (((x ^ r) & (y ^ r)) >> 31) != 0};
    };
    auto sub_fn = [](uint32_t x, uint32_t y) {
        // x - y, carry = no borrow.
        const uint64_t wide = static_cast<uint64_t>(x) +
                              static_cast<uint32_t>(~y) + 1;
        const auto r = static_cast<uint32_t>(wide);
        return AluR{r, (wide >> 32) != 0,
                    (((x ^ y) & (x ^ r)) >> 31) != 0};
    };
    auto mul_fn = [](uint32_t x, uint32_t y) {
        const int64_t wide = static_cast<int64_t>(
                                 static_cast<int32_t>(x)) *
                             static_cast<int32_t>(y);
        const auto r = static_cast<uint32_t>(wide);
        return AluR{r, false,
                    wide != static_cast<int64_t>(
                                static_cast<int32_t>(r))};
    };
    auto or_fn = [](uint32_t x, uint32_t y) {
        return AluR{x | y, false, false};
    };
    auto andnot_fn = [](uint32_t x, uint32_t y) {
        return AluR{x & ~y, false, false};
    };
    auto xor_fn = [](uint32_t x, uint32_t y) {
        return AluR{x ^ y, false, false};
    };

    switch (op) {
      case VaxOp::Halt:
        halted_ = true;
        break;
      case VaxOp::Nop:
        break;

      case VaxOp::Movb:
      case VaxOp::Movw:
      case VaxOp::Movl: {
        const unsigned width = op == VaxOp::Movb   ? 1
                               : op == VaxOp::Movw ? 2
                                                   : 4;
        const OpRef src = decodeOperand(width);
        const uint32_t value = readOp(src, width);
        const OpRef dst = decodeOperand(width);
        writeOp(dst, value, width);
        setNZ(width == 4 ? value
                         : static_cast<uint32_t>(
                               sext(value, width * 8)));
        break;
      }
      case VaxOp::Moval: {
        const OpRef src = decodeOperand(4);
        if (src.kind != OpRef::Kind::Mem)
            throw SimFault{"MOVAL needs an addressable operand",
                           instStart_,
                           isa::TrapCause::IllegalOperand};
        const OpRef dst = decodeOperand(4);
        writeOp(dst, src.addr, 4);
        setNZ(src.addr);
        break;
      }
      case VaxOp::Clrl: {
        const OpRef dst = decodeOperand(4);
        writeOp(dst, 0, 4);
        setNZ(0);
        break;
      }
      case VaxOp::Pushl: {
        const OpRef src = decodeOperand(4);
        const uint32_t value = readOp(src, 4);
        push(value);
        setNZ(value);
        break;
      }

      case VaxOp::Addl2: alu2(4, add_fn, true); break;
      case VaxOp::Addl3: alu3(4, add_fn, true); break;
      case VaxOp::Subl2: alu2(4, sub_fn, true); break;
      case VaxOp::Subl3: alu3(4, sub_fn, true); break;
      case VaxOp::Mull2:
        alu2(4, mul_fn, true);
        stats_.cycles += options_.timing.mulExtra;
        break;
      case VaxOp::Mull3:
        alu3(4, mul_fn, true);
        stats_.cycles += options_.timing.mulExtra;
        break;
      case VaxOp::Divl2:
      case VaxOp::Divl3: {
        const OpRef src1 = decodeOperand(4);
        const uint32_t divisor = readOp(src1, 4);
        const OpRef src2 = decodeOperand(4);
        const uint32_t dividend = readOp(src2, 4);
        const OpRef dst = op == VaxOp::Divl3 ? decodeOperand(4) : src2;
        if (divisor == 0)
            throw SimFault{"divide by zero", instStart_,
                       isa::TrapCause::DivideByZero};
        const auto q = static_cast<uint32_t>(
            static_cast<int32_t>(dividend) /
            static_cast<int32_t>(divisor));
        writeOp(dst, q, 4);
        setNZ(q);
        stats_.cycles += options_.timing.divExtra;
        break;
      }
      case VaxOp::Bisl2: alu2(4, or_fn, false); break;
      case VaxOp::Bisl3: alu3(4, or_fn, false); break;
      case VaxOp::Bicl2: alu2(4, andnot_fn, false); break;
      case VaxOp::Bicl3: alu3(4, andnot_fn, false); break;
      case VaxOp::Xorl2: alu2(4, xor_fn, false); break;
      case VaxOp::Xorl3: alu3(4, xor_fn, false); break;
      case VaxOp::Ashl: {
        // count, src, dst; positive count shifts left.
        const OpRef cnt_ref = decodeOperand(1);
        const auto count = static_cast<int32_t>(
            sext(readOp(cnt_ref, 1), 8));
        const OpRef src = decodeOperand(4);
        const uint32_t value = readOp(src, 4);
        const OpRef dst = decodeOperand(4);
        uint32_t r;
        if (count >= 0) {
            r = count >= 32 ? 0 : value << count;
        } else {
            const int amount = -count;
            r = amount >= 32
                    ? static_cast<uint32_t>(
                          static_cast<int32_t>(value) >> 31)
                    : static_cast<uint32_t>(
                          static_cast<int32_t>(value) >> amount);
        }
        writeOp(dst, r, 4);
        setNZ(r);
        stats_.cycles += options_.timing.shiftExtra;
        break;
      }
      case VaxOp::Incl: {
        const OpRef dst = decodeOperand(4);
        const auto [r, c, v] = add_fn(readOp(dst, 4), 1);
        flags_.c = c;
        flags_.v = v;
        flags_.z = r == 0;
        flags_.n = (r >> 31) != 0;
        writeOp(dst, r, 4);
        break;
      }
      case VaxOp::Decl: {
        const OpRef dst = decodeOperand(4);
        const auto [r, c, v] = sub_fn(readOp(dst, 4), 1);
        flags_.c = c;
        flags_.v = v;
        flags_.z = r == 0;
        flags_.n = (r >> 31) != 0;
        writeOp(dst, r, 4);
        break;
      }
      case VaxOp::Mcoml: {
        const OpRef src = decodeOperand(4);
        const uint32_t r = ~readOp(src, 4);
        const OpRef dst = decodeOperand(4);
        writeOp(dst, r, 4);
        setNZ(r);
        break;
      }
      case VaxOp::Mnegl: {
        const OpRef src = decodeOperand(4);
        const auto [r, c, v] = sub_fn(0, readOp(src, 4));
        const OpRef dst = decodeOperand(4);
        flags_.c = c;
        flags_.v = v;
        flags_.z = r == 0;
        flags_.n = (r >> 31) != 0;
        writeOp(dst, r, 4);
        break;
      }

      case VaxOp::Cmpl:
      case VaxOp::Cmpw:
      case VaxOp::Cmpb: {
        const unsigned width = op == VaxOp::Cmpb   ? 1
                               : op == VaxOp::Cmpw ? 2
                                                   : 4;
        const OpRef a_ref = decodeOperand(width);
        uint32_t a = readOp(a_ref, width);
        const OpRef b_ref = decodeOperand(width);
        uint32_t b = readOp(b_ref, width);
        if (width < 4) {
            a = static_cast<uint32_t>(sext(a, width * 8));
            b = static_cast<uint32_t>(sext(b, width * 8));
        }
        const auto [r, c, v] = sub_fn(a, b);
        flags_.c = c;
        flags_.v = v;
        flags_.z = r == 0;
        flags_.n = (r >> 31) != 0;
        break;
      }
      case VaxOp::Tstl: {
        const OpRef src = decodeOperand(4);
        setNZ(readOp(src, 4));
        break;
      }

      case VaxOp::Brb:
      case VaxOp::Beql:
      case VaxOp::Bneq:
      case VaxOp::Blss:
      case VaxOp::Bleq:
      case VaxOp::Bgtr:
      case VaxOp::Bgeq:
      case VaxOp::Blssu:
      case VaxOp::Blequ:
      case VaxOp::Bgtru:
      case VaxOp::Bgequ:
        branch(op);
        break;
      case VaxOp::Brw: {
        const int32_t disp =
            fastActive_ ? fastRec_->branchDisp
                        : static_cast<int16_t>(istreamBytes(2));
        ++stats_.branches;
        ++stats_.branchesTaken;
        stats_.cycles += options_.timing.branchTakenExtra;
        pc_ += static_cast<uint32_t>(disp);
        break;
      }
      case VaxOp::Jmp: {
        const OpRef dst = decodeOperand(4);
        if (dst.kind != OpRef::Kind::Mem)
            throw SimFault{"JMP needs an addressable operand",
                           instStart_,
                           isa::TrapCause::IllegalOperand};
        ++stats_.branches;
        ++stats_.branchesTaken;
        stats_.cycles += options_.timing.branchTakenExtra;
        pc_ = dst.addr;
        break;
      }

      case VaxOp::Calls:
        doCalls();
        break;
      case VaxOp::Ret:
        doRet();
        break;
    }

    // Charge the base microcode cost and account istream traffic
    // (istreamCount_ counts the bytes this instruction consumed).
    stats_.cycles += options_.timing.baseCycles +
                     options_.timing.perSpecifier * specifiers_;
    stats_.istreamBytes += istreamCount_;
    memory_.countInstFetches((istreamCount_ + 3) / 4);
    pcRing_[pcRingPos_] = instStart_;
    pcRingPos_ = (pcRingPos_ + 1) % PcRingSize;
    ++pcRingCount_;
    ++stats_.instructions;
    ++stats_.perOpcode[op];
}

} // namespace risc1::vax
