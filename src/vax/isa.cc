#include "vax/isa.hh"

#include <array>
#include <utility>

namespace risc1::vax {

namespace {

constexpr std::array<std::pair<VaxOp, std::string_view>, 45> names = {{
    {VaxOp::Halt, "halt"},   {VaxOp::Nop, "nop"},
    {VaxOp::Movb, "movb"},   {VaxOp::Movw, "movw"},
    {VaxOp::Movl, "movl"},   {VaxOp::Clrl, "clrl"},
    {VaxOp::Pushl, "pushl"}, {VaxOp::Moval, "moval"},
    {VaxOp::Addl2, "addl2"}, {VaxOp::Addl3, "addl3"},
    {VaxOp::Subl2, "subl2"}, {VaxOp::Subl3, "subl3"},
    {VaxOp::Mull2, "mull2"}, {VaxOp::Mull3, "mull3"},
    {VaxOp::Divl2, "divl2"}, {VaxOp::Divl3, "divl3"},
    {VaxOp::Bisl2, "bisl2"}, {VaxOp::Bisl3, "bisl3"},
    {VaxOp::Bicl2, "bicl2"}, {VaxOp::Bicl3, "bicl3"},
    {VaxOp::Xorl2, "xorl2"}, {VaxOp::Xorl3, "xorl3"},
    {VaxOp::Ashl, "ashl"},   {VaxOp::Incl, "incl"},
    {VaxOp::Decl, "decl"},   {VaxOp::Mcoml, "mcoml"},
    {VaxOp::Mnegl, "mnegl"}, {VaxOp::Cmpl, "cmpl"},
    {VaxOp::Cmpb, "cmpb"},   {VaxOp::Cmpw, "cmpw"},
    {VaxOp::Tstl, "tstl"},   {VaxOp::Brb, "brb"},
    {VaxOp::Brw, "brw"},     {VaxOp::Beql, "beql"},
    {VaxOp::Bneq, "bneq"},   {VaxOp::Blss, "blss"},
    {VaxOp::Bleq, "bleq"},   {VaxOp::Bgtr, "bgtr"},
    {VaxOp::Bgeq, "bgeq"},   {VaxOp::Blssu, "blssu"},
    {VaxOp::Blequ, "blequ"}, {VaxOp::Bgtru, "bgtru"},
    {VaxOp::Bgequ, "bgequ"}, {VaxOp::Jmp, "jmp"},
    {VaxOp::Calls, "calls"},
}};

} // namespace

std::string_view
vaxOpName(VaxOp op)
{
    if (op == VaxOp::Ret)
        return "ret";
    for (const auto &[code, name] : names) {
        if (code == op)
            return name;
    }
    return "<bad>";
}

bool
isValidVaxOp(uint8_t raw)
{
    if (raw == static_cast<uint8_t>(VaxOp::Ret))
        return true;
    for (const auto &[code, name] : names) {
        if (static_cast<uint8_t>(code) == raw)
            return true;
    }
    return false;
}

} // namespace risc1::vax
