#include "vax/statsdump.hh"

#include "sim/statsdump.hh"

namespace risc1::vax {

namespace {
constexpr auto line = sim::statsLine;
} // namespace



std::string
formatStats(const VaxStats &s, const std::string &prefix)
{
    std::string out;
    auto u64 = [](uint64_t v) { return static_cast<double>(v); };
    out += line(prefix, "instructions", u64(s.instructions),
                "committed instructions");
    out += line(prefix, "cycles", u64(s.cycles), "microcycles");
    out += line(prefix, "cpi", s.cpi(), "cycles per instruction");
    out += line(prefix, "istream_bytes", u64(s.istreamBytes),
                "instruction-stream bytes consumed");
    out += line(prefix, "avg_inst_bytes", s.avgInstBytes(),
                "average instruction length");
    out += line(prefix, "branches", u64(s.branches), "branches");
    out += line(prefix, "branches_taken", u64(s.branchesTaken),
                "taken branches");
    out += line(prefix, "calls", u64(s.calls), "CALLS executed");
    out += line(prefix, "returns", u64(s.returns), "RET executed");
    out += line(prefix, "saved_regs", u64(s.savedRegs),
                "registers pushed by CALLS");
    out += line(prefix, "restored_regs", u64(s.restoredRegs),
                "registers popped by RET");
    out += line(prefix, "mem_inst_fetches", u64(s.memory.instFetches),
                "32-bit words of istream fetched");
    out += line(prefix, "mem_data_reads", u64(s.memory.dataReads),
                "data-memory read accesses");
    out += line(prefix, "mem_data_writes", u64(s.memory.dataWrites),
                "data-memory write accesses");
    return out;
}

} // namespace risc1::vax
