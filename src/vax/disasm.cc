#include "vax/disasm.hh"

#include "support/logging.hh"
#include "vax/predecode.hh" // vaxOpShape: shared with the predecoder

namespace risc1::vax {

namespace {

const char *
regNameV(unsigned reg)
{
    static const char *names[] = {"r0", "r1", "r2",  "r3", "r4",  "r5",
                                  "r6", "r7", "r8",  "r9", "r10", "r11",
                                  "ap", "fp", "sp",  "pc"};
    return names[reg & 0xf];
}

/** Decode one operand specifier; returns text, advances `pos`. */
bool
decodeSpec(const std::vector<uint8_t> &bytes, size_t &pos,
           std::string &out)
{
    auto need = [&](size_t n) { return pos + n <= bytes.size(); };
    if (!need(1))
        return false;
    const uint8_t spec = bytes[pos++];
    const unsigned mode = spec >> 4;
    const unsigned reg = spec & 0xf;

    if (mode <= 3) {
        out += strprintf("#%u", spec & 0x3f);
        return true;
    }
    auto le = [&](unsigned n) {
        uint32_t v = 0;
        for (unsigned i = 0; i < n; ++i)
            v |= static_cast<uint32_t>(bytes[pos + i]) << (8 * i);
        pos += n;
        return v;
    };
    switch (static_cast<Mode>(mode)) {
      case Mode::Index: {
        std::string base;
        if (!decodeSpec(bytes, pos, base))
            return false;
        out += base + strprintf("[%s]", regNameV(reg));
        return true;
      }
      case Mode::Register:
        out += regNameV(reg);
        return true;
      case Mode::Deferred:
        out += strprintf("(%s)", regNameV(reg));
        return true;
      case Mode::AutoDec:
        out += strprintf("-(%s)", regNameV(reg));
        return true;
      case Mode::AutoInc:
        if (reg == 15) {
            if (!need(4))
                return false;
            out += strprintf("#0x%x", le(4));
            return true;
        }
        out += strprintf("(%s)+", regNameV(reg));
        return true;
      case Mode::DispByte:
        if (!need(1))
            return false;
        out += strprintf("%d(%s)",
                         static_cast<int8_t>(bytes[pos]),
                         regNameV(reg));
        ++pos;
        return true;
      case Mode::DispWord: {
        if (!need(2))
            return false;
        const auto disp = static_cast<int16_t>(le(2));
        out += strprintf("%d(%s)", disp, regNameV(reg));
        return true;
      }
      case Mode::DispLong: {
        if (!need(4))
            return false;
        const uint32_t disp = le(4);
        if (reg == 15)
            out += strprintf("@0x%x", disp);
        else
            out += strprintf("%d(%s)", static_cast<int32_t>(disp),
                             regNameV(reg));
        return true;
      }
      default:
        return false;
    }
}

} // namespace

VaxDisasmLine
disassembleVaxAt(const std::vector<uint8_t> &bytes, size_t offset,
                 uint32_t addr)
{
    VaxDisasmLine line;
    line.addr = addr;
    if (offset >= bytes.size())
        return line;

    const uint8_t raw = bytes[offset];
    if (!isValidVaxOp(raw)) {
        line.length = 1;
        line.text = strprintf(".byte 0x%02x", raw);
        return line;
    }
    const auto op = static_cast<VaxOp>(raw);
    const VaxOpShape &shape = vaxOpShape(op);
    size_t pos = offset + 1;

    std::string text = std::string(vaxOpName(op));
    if (shape.isBranch8 || shape.isBranch16) {
        const unsigned n = shape.isBranch8 ? 1 : 2;
        if (pos + n > bytes.size())
            return line;
        int32_t disp;
        if (shape.isBranch8) {
            disp = static_cast<int8_t>(bytes[pos]);
        } else {
            disp = static_cast<int16_t>(
                bytes[pos] |
                (static_cast<uint16_t>(bytes[pos + 1]) << 8));
        }
        pos += n;
        const uint32_t target =
            addr + static_cast<uint32_t>(pos - offset) +
            static_cast<uint32_t>(disp);
        text += strprintf(" 0x%x", target);
    } else {
        for (unsigned i = 0; i < shape.operands; ++i) {
            text += i == 0 ? " " : ", ";
            if (!decodeSpec(bytes, pos, text))
                return line;
        }
    }

    line.valid = true;
    line.length = static_cast<unsigned>(pos - offset);
    line.text = std::move(text);
    return line;
}

std::string
disassembleVaxProgram(const VaxProgram &program, unsigned max_insts)
{
    std::string out;
    size_t offset = program.entry - program.base;
    for (unsigned i = 0; i < max_insts && offset < program.bytes.size();
         ++i) {
        VaxDisasmLine line = disassembleVaxAt(
            program.bytes, offset,
            program.base + static_cast<uint32_t>(offset));
        if (!line.valid) {
            out += strprintf("%08x  <undecodable>\n", line.addr);
            break;
        }
        out += strprintf("%08x  %s\n", line.addr, line.text.c_str());
        if (program.bytes[offset] ==
            static_cast<uint8_t>(VaxOp::Halt))
            break;
        offset += line.length;
    }
    return out;
}

} // namespace risc1::vax
