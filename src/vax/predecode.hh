/**
 * @file
 * Operand-specifier predecode for the vax80 model — the CISC analogue
 * of sim::DecodedCache. A variable-length instruction is parsed once
 * into a VaxDecoded record (opcode, per-operand specifier fields,
 * branch displacement, total length); VaxCpu::step() then resolves the
 * cached specifiers instead of re-walking the instruction stream byte
 * by byte. Parsing is purely structural (specifier lengths do not
 * depend on datum width here: immediates are always 4 bytes), so all
 * dynamic side effects — autoincrement/autodecrement, index register
 * reads, operand faults — still happen at resolve time, in the same
 * order as the lazy decoder. Instructions the record format cannot
 * represent are simply never cached and keep executing lazily.
 */

#ifndef RISC1_VAX_PREDECODE_HH
#define RISC1_VAX_PREDECODE_HH

#include <array>
#include <bitset>
#include <cstdint>
#include <unordered_map>

#include "sim/memory.hh"
#include "vax/isa.hh"

namespace risc1::vax {

/** Operand count, datum width and branch kind of one opcode. */
struct VaxOpShape
{
    unsigned operands;
    unsigned width; //!< datum bytes for specifier scaling
    bool isBranch8;
    bool isBranch16;
};

/** Static shape of an opcode (shared with the disassembler). */
const VaxOpShape &vaxOpShape(VaxOp op);

/** One predecoded operand specifier, with any index prefix folded in. */
struct VaxSpec
{
    static constexpr uint8_t NoIndex = 0xff;

    /**
     * Resolved operand kind: the specifier's mode nibble, datum
     * position and displacement are collapsed at parse time into one
     * of six effective-address shapes, so the per-step resolver
     * dispatches on a dense enum and adds a precomputed offset instead
     * of re-interpreting mode/reg combinations. Literals and istream
     * immediates both become Val; deferred, byte/word/long
     * displacement all become MemDisp (deferred is displacement 0);
     * absolute (long displacement off PC) becomes MemAbs.
     */
    enum class RKind : uint8_t
    {
        Val,     //!< datum is `extra` (literal / istream immediate)
        Reg,     //!< register `reg` (faults at resolve if reg 15)
        MemDisp, //!< memory at regs[reg] + extra
        MemAbs,  //!< memory at `extra`
        AutoDec, //!< memory at --regs[reg]
        AutoInc, //!< memory at regs[reg]++
    };

    uint8_t mode = 0; //!< specifier high nibble (0..3 = short literal)
    uint8_t reg = 0;  //!< specifier low nibble
    uint8_t indexReg = NoIndex; //!< index prefix register, or NoIndex
    RKind rkind = RKind::Val;   //!< resolved kind (see above)
    uint32_t extra = 0; //!< literal / immediate / sign-extended disp
};

/** Upper bound on instruction length: opcode + 3 × (index + disp32). */
constexpr unsigned MaxVaxInstBytes = 1 + 3 * 6;

/** A fully predecoded vax80 instruction. */
struct VaxDecoded
{
    VaxOp op = VaxOp::Halt;
    uint8_t length = 0; //!< total istream bytes, opcode included
    uint8_t nspecs = 0;
    int32_t branchDisp = 0; //!< sign-extended (branch opcodes only)
    std::array<VaxSpec, 3> specs{};
};

/**
 * Parse the instruction starting at `addr` into `out`. Returns false
 * when the instruction is not representable — illegal opcode, a
 * specifier mode the simulator rejects, a nested index prefix, or a
 * PC-relative register (r15) in a mode that has no defined meaning
 * here. Such instructions stay on the lazy path, which preserves
 * their exact fault behaviour.
 */
bool parseVaxInst(const sim::Memory &mem, uint32_t addr,
                  VaxDecoded &out);

/**
 * Maps instruction start addresses to VaxDecoded records, grouped by
 * the page they start in. Invalidation is record-exact: a write drops
 * only the records whose [start, start + length) bytes it overlaps,
 * located via a per-page bitset of record starts — so data interleaved
 * with code (e.g. an array emitted right after the text) never evicts
 * live instructions. Writes outside the [minPage_, maxPage_ + 1] band
 * of cached text pages — ordinary data and stack traffic, including
 * the CALLS frame pushes — are rejected by two comparisons before any
 * hash lookup.
 */
class VaxDecodeCache : public sim::Memory::WriteObserver
{
  public:
    const VaxDecoded *
    lookup(uint32_t addr) const
    {
        auto page = pages_.find(addr >> sim::Memory::PageBits);
        if (page == pages_.end())
            return nullptr;
        auto it = page->second.records.find(addr);
        return it == page->second.records.end() ? nullptr
                                                : &it->second;
    }

    void insert(uint32_t addr, const VaxDecoded &rec);
    void invalidateAll();

    void
    onMemoryWrite(uint32_t addr, unsigned bytes) override
    {
        const uint32_t first = addr >> sim::Memory::PageBits;
        const uint32_t last =
            (addr + bytes - 1) >> sim::Memory::PageBits;
        // A record starting in maxPage_ can extend into the next page,
        // so writes one page past the band are still relevant.
        if (first > maxPage_ + 1 || last < minPage_)
            return;
        invalidateRange(addr, bytes);
    }

    /** Number of resident records (tests). */
    size_t residentRecords() const;

  private:
    struct PageData
    {
        std::unordered_map<uint32_t, VaxDecoded> records;
        // One bit per byte offset: a record starts there. Lets the
        // write path scan a MaxVaxInstBytes window without hashing
        // every candidate address.
        std::bitset<sim::Memory::PageSize> starts;
    };

    /** Drop the records overlapping [addr, addr + bytes). */
    void invalidateRange(uint32_t addr, unsigned bytes);

    std::unordered_map<uint32_t, PageData> pages_;
    // Range filter: every record starts in [minPage_, maxPage_];
    // grown on insert, only reset by invalidateAll (conservative).
    uint32_t minPage_ = UINT32_MAX;
    uint32_t maxPage_ = 0;
};

} // namespace risc1::vax

#endif // RISC1_VAX_PREDECODE_HH
