#include "vax/builder.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace risc1::vax {

VOperand
vreg(unsigned reg)
{
    if (reg >= NumRegs)
        panic("vreg: register %u out of range", reg);
    VOperand op;
    op.mode = Mode::Register;
    op.reg = reg;
    return op;
}

VOperand
vlit(uint32_t value)
{
    if (value <= 63) {
        VOperand op;
        op.mode = Mode::Literal;
        op.imm = value;
        return op;
    }
    return vimm(value);
}

VOperand
vimm(uint32_t value)
{
    VOperand op;
    op.mode = Mode::AutoInc; // (PC)+ immediate idiom
    op.reg = 15;
    op.imm = value;
    return op;
}

VOperand
vsym(std::string label)
{
    VOperand op = vimm(0);
    op.label = std::move(label);
    return op;
}

VOperand
vdef(unsigned reg)
{
    VOperand op;
    op.mode = Mode::Deferred;
    op.reg = reg;
    return op;
}

VOperand
vdec(unsigned reg)
{
    VOperand op;
    op.mode = Mode::AutoDec;
    op.reg = reg;
    return op;
}

VOperand
vinc(unsigned reg)
{
    VOperand op;
    op.mode = Mode::AutoInc;
    op.reg = reg;
    return op;
}

VOperand
vdisp(unsigned reg, int32_t disp)
{
    VOperand op;
    op.reg = reg;
    op.disp = disp;
    if (fitsSigned(disp, 8))
        op.mode = Mode::DispByte;
    else if (fitsSigned(disp, 16))
        op.mode = Mode::DispWord;
    else
        op.mode = Mode::DispLong;
    return op;
}

VOperand
vabs(uint32_t addr)
{
    VOperand op;
    op.mode = Mode::DispLong;
    op.reg = 15; // absolute idiom
    op.imm = addr;
    return op;
}

VOperand
vabsSym(std::string label)
{
    VOperand op = vabs(0);
    op.label = std::move(label);
    return op;
}

VOperand
vidx(unsigned index_reg, VOperand base)
{
    if (base.mode == Mode::Register || base.mode == Mode::Literal ||
        (base.mode == Mode::AutoInc && base.reg == 15))
        panic("vidx: base must be a memory-mode operand");
    base.indexed = true;
    base.indexReg = index_reg;
    return base;
}

void
VaxAsm::label(const std::string &name)
{
    auto [it, inserted] = symbols_.emplace(name, here());
    (void)it;
    if (!inserted)
        fatal("vax80 builder: duplicate label '%s'", name.c_str());
}

void
VaxAsm::entry(const std::string &name, uint16_t save_mask)
{
    label(name);
    byte(static_cast<uint8_t>(save_mask));
    byte(static_cast<uint8_t>(save_mask >> 8));
    codeBytes_ += 2;
}

void
VaxAsm::emitOperand(const VOperand &op)
{
    auto spec = [](Mode mode, unsigned reg) {
        return static_cast<uint8_t>((static_cast<unsigned>(mode) << 4) |
                                    (reg & 0xf));
    };

    if (op.indexed)
        byte(spec(Mode::Index, op.indexReg));

    switch (op.mode) {
      case Mode::Literal:
        if (op.imm > 63)
            panic("emitOperand: short literal %u > 63", op.imm);
        byte(static_cast<uint8_t>(op.imm)); // modes 0x0..0x3
        return;
      case Mode::Register:
      case Mode::Deferred:
      case Mode::AutoDec:
        byte(spec(op.mode, op.reg));
        return;
      case Mode::AutoInc:
        byte(spec(op.mode, op.reg));
        if (op.reg == 15) {
            // 32-bit immediate follows.
            if (!op.label.empty())
                fixups_.push_back(Fixup{Fixup::Kind::Abs32, bytes_.size(),
                                        0, op.label});
            for (unsigned i = 0; i < 4; ++i)
                byte(static_cast<uint8_t>(op.imm >> (8 * i)));
        }
        return;
      case Mode::DispByte:
        byte(spec(op.mode, op.reg));
        byte(static_cast<uint8_t>(op.disp));
        return;
      case Mode::DispWord:
        byte(spec(op.mode, op.reg));
        byte(static_cast<uint8_t>(op.disp));
        byte(static_cast<uint8_t>(op.disp >> 8));
        return;
      case Mode::DispLong: {
        byte(spec(op.mode, op.reg));
        uint32_t value = op.reg == 15 ? op.imm
                                      : static_cast<uint32_t>(op.disp);
        if (!op.label.empty())
            fixups_.push_back(Fixup{Fixup::Kind::Abs32, bytes_.size(), 0,
                                    op.label});
        for (unsigned i = 0; i < 4; ++i)
            byte(static_cast<uint8_t>(value >> (8 * i)));
        return;
      }
      case Mode::Index:
        panic("emitOperand: bare index mode");
    }
}

void
VaxAsm::inst(VaxOp op, std::initializer_list<VOperand> ops)
{
    inst(op, std::vector<VOperand>(ops));
}

void
VaxAsm::inst(VaxOp op, const std::vector<VOperand> &ops)
{
    const size_t start = bytes_.size();
    byte(static_cast<uint8_t>(op));
    for (const VOperand &o : ops)
        emitOperand(o);
    codeBytes_ += static_cast<uint32_t>(bytes_.size() - start);
    ++instCount_;
}

void
VaxAsm::br(VaxOp op, const std::string &target)
{
    const size_t start = bytes_.size();
    byte(static_cast<uint8_t>(op));
    fixups_.push_back(Fixup{Fixup::Kind::Rel8, bytes_.size(), here() + 1,
                            target});
    byte(0);
    codeBytes_ += static_cast<uint32_t>(bytes_.size() - start);
    ++instCount_;
}

void
VaxAsm::brw(const std::string &target)
{
    const size_t start = bytes_.size();
    byte(static_cast<uint8_t>(VaxOp::Brw));
    fixups_.push_back(Fixup{Fixup::Kind::Rel16, bytes_.size(), here() + 2,
                            target});
    byte(0);
    byte(0);
    codeBytes_ += static_cast<uint32_t>(bytes_.size() - start);
    ++instCount_;
}

void
VaxAsm::jmp(const std::string &target)
{
    inst(VaxOp::Jmp, {vabsSym(target)});
}

void
VaxAsm::calls(unsigned nargs, const std::string &target)
{
    inst(VaxOp::Calls, {vlit(nargs), vabsSym(target)});
}

void
VaxAsm::ret()
{
    inst(VaxOp::Ret, {});
}

void
VaxAsm::halt()
{
    inst(VaxOp::Halt, {});
}

void
VaxAsm::nop()
{
    inst(VaxOp::Nop, {});
}

void
VaxAsm::word(uint32_t value)
{
    for (unsigned i = 0; i < 4; ++i)
        byte(static_cast<uint8_t>(value >> (8 * i)));
}

void
VaxAsm::space(uint32_t count)
{
    for (uint32_t i = 0; i < count; ++i)
        byte(0);
}

void
VaxAsm::align(uint32_t boundary)
{
    if (!isPow2(boundary))
        fatal("vax80 builder: align boundary must be a power of two");
    while (here() % boundary != 0)
        byte(0);
}

void
VaxAsm::ascii(const std::string &text)
{
    for (char c : text)
        byte(static_cast<uint8_t>(c));
}

void
VaxAsm::setEntry(const std::string &label_name)
{
    entryLabel_ = label_name;
}

VaxProgram
VaxAsm::finish()
{
    for (const Fixup &fixup : fixups_) {
        auto it = symbols_.find(fixup.label);
        if (it == symbols_.end())
            fatal("vax80 builder: undefined label '%s'",
                  fixup.label.c_str());
        const uint32_t target = it->second;
        switch (fixup.kind) {
          case Fixup::Kind::Abs32:
            for (unsigned i = 0; i < 4; ++i)
                bytes_[fixup.offset + i] =
                    static_cast<uint8_t>(target >> (8 * i));
            break;
          case Fixup::Kind::Rel8: {
            const int64_t disp = static_cast<int64_t>(target) -
                                 fixup.relBase;
            if (!fitsSigned(disp, 8))
                fatal("vax80 builder: branch to '%s' out of byte range "
                      "(%lld); use brw/jmp",
                      fixup.label.c_str(), static_cast<long long>(disp));
            bytes_[fixup.offset] = static_cast<uint8_t>(disp);
            break;
          }
          case Fixup::Kind::Rel16: {
            const int64_t disp = static_cast<int64_t>(target) -
                                 fixup.relBase;
            if (!fitsSigned(disp, 16))
                fatal("vax80 builder: brw to '%s' out of range",
                      fixup.label.c_str());
            bytes_[fixup.offset] = static_cast<uint8_t>(disp);
            bytes_[fixup.offset + 1] = static_cast<uint8_t>(disp >> 8);
            break;
          }
        }
    }

    VaxProgram prog;
    prog.base = base_;
    prog.bytes = bytes_;
    prog.symbols = symbols_;
    prog.codeBytes = codeBytes_;
    prog.instructionCount = instCount_;

    if (!entryLabel_.empty()) {
        auto it = symbols_.find(entryLabel_);
        if (it == symbols_.end())
            fatal("vax80 builder: undefined entry label '%s'",
                  entryLabel_.c_str());
        prog.entry = it->second;
    } else if (auto it = symbols_.find("main"); it != symbols_.end()) {
        prog.entry = it->second;
    } else {
        prog.entry = base_;
    }
    return prog;
}

} // namespace risc1::vax
