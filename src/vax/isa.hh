/**
 * @file
 * The `vax80` baseline ISA — a synthetic microcoded CISC machine of the
 * class RISC I was evaluated against (VAX-11/780 flavoured). It has the
 * three structural properties the paper's comparisons rest on:
 * variable-length instructions (dense code), microcoded execution (high
 * CPI), and an expensive CALLS/RET procedure linkage that saves
 * registers to the stack.
 *
 * Instruction = 1 opcode byte + operand specifiers. Specifier byte =
 * mode<7:4> | reg<3:0>:
 *
 *   0x0-0x3  short literal 0..63 (value = low 6 bits)          1 byte
 *   0x5      register Rn                                        1 byte
 *   0x6      register deferred (Rn)                             1 byte
 *   0x7      autodecrement -(Rn)                                1 byte
 *   0x8      autoincrement (Rn)+; reg=15: 32-bit immediate      1/5 bytes
 *   0xA      byte displacement d8(Rn)                           2 bytes
 *   0xC      word displacement d16(Rn)                          3 bytes
 *   0xE      long displacement d32(Rn); reg=15: absolute        5 bytes
 *   0x4      index prefix [Rx] (scaled by datum size), then a
 *            base specifier                                     1+ bytes
 */

#ifndef RISC1_VAX_ISA_HH
#define RISC1_VAX_ISA_HH

#include <cstdint>
#include <string_view>

namespace risc1::vax {

/** General registers. r12..r14 have dedicated linkage roles. */
constexpr unsigned NumRegs = 15; //!< r0..r14 (PC is not an operand)
constexpr unsigned AP = 12;      //!< argument pointer
constexpr unsigned FP = 13;      //!< frame pointer
constexpr unsigned SP = 14;      //!< stack pointer

/** Operand specifier modes (high nibble). */
enum class Mode : uint8_t
{
    Literal = 0x0, //!< 0x0..0x3 all decode as short literal
    Index = 0x4,
    Register = 0x5,
    Deferred = 0x6,
    AutoDec = 0x7,
    AutoInc = 0x8, //!< reg 15 = immediate
    DispByte = 0xa,
    DispWord = 0xc,
    DispLong = 0xe, //!< reg 15 = absolute
};

/** Opcodes. Values chosen for a compact dispatch table. */
enum class VaxOp : uint8_t
{
    Halt = 0x00,
    Nop = 0x01,

    Movb = 0x10,
    Movw = 0x11,
    Movl = 0x12,
    Clrl = 0x13,
    Pushl = 0x14,
    Moval = 0x15, //!< move effective address

    Addl2 = 0x20,
    Addl3 = 0x21,
    Subl2 = 0x22,
    Subl3 = 0x23,
    Mull2 = 0x24,
    Mull3 = 0x25,
    Divl2 = 0x26,
    Divl3 = 0x27,
    Bisl2 = 0x28, //!< OR
    Bisl3 = 0x29,
    Bicl2 = 0x2a, //!< AND NOT
    Bicl3 = 0x2b,
    Xorl2 = 0x2c,
    Xorl3 = 0x2d,
    Ashl = 0x2e, //!< arithmetic shift: count, src, dst
    Incl = 0x2f,
    Decl = 0x30,
    Mcoml = 0x31, //!< complement
    Mnegl = 0x32, //!< negate

    Cmpl = 0x40,
    Cmpb = 0x41,
    Cmpw = 0x42,
    Tstl = 0x43,

    Brb = 0x50,  //!< unconditional, byte displacement
    Brw = 0x51,  //!< unconditional, word displacement
    Beql = 0x52,
    Bneq = 0x53,
    Blss = 0x54,
    Bleq = 0x55,
    Bgtr = 0x56,
    Bgeq = 0x57,
    Blssu = 0x58,
    Blequ = 0x59,
    Bgtru = 0x5a,
    Bgequ = 0x5b,
    Jmp = 0x5c, //!< absolute via operand specifier

    Calls = 0x60, //!< n, dst
    Ret = 0x61,
};

/** Mnemonic for diagnostics. */
std::string_view vaxOpName(VaxOp op);

/** True iff the byte is a defined opcode. */
bool isValidVaxOp(uint8_t raw);

} // namespace risc1::vax

#endif // RISC1_VAX_ISA_HH
