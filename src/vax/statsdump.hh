/**
 * @file
 * gem5-style statistics dump for the vax80 machine (companion to
 * sim/statsdump.hh).
 */

#ifndef RISC1_VAX_STATSDUMP_HH
#define RISC1_VAX_STATSDUMP_HH

#include <string>

#include "vax/cpu.hh"

namespace risc1::vax {

/** Render VaxStats as aligned `name value # comment` lines. */
std::string formatStats(const VaxStats &stats,
                        const std::string &prefix = "vax80");

} // namespace risc1::vax

#endif // RISC1_VAX_STATSDUMP_HH
