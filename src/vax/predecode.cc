#include "vax/predecode.hh"

namespace risc1::vax {

const VaxOpShape &
vaxOpShape(VaxOp op)
{
    static const VaxOpShape none{0, 4, false, false};
    static const VaxOpShape byte2{2, 1, false, false};
    static const VaxOpShape word2{2, 2, false, false};
    static const VaxOpShape long1{1, 4, false, false};
    static const VaxOpShape long2{2, 4, false, false};
    static const VaxOpShape long3{3, 4, false, false};
    static const VaxOpShape br8{0, 4, true, false};
    static const VaxOpShape br16{0, 4, false, true};

    switch (op) {
      case VaxOp::Halt:
      case VaxOp::Nop:
      case VaxOp::Ret:
        return none;
      case VaxOp::Movb:
      case VaxOp::Cmpb:
        return byte2;
      case VaxOp::Movw:
      case VaxOp::Cmpw:
        return word2;
      case VaxOp::Movl:
      case VaxOp::Moval:
      case VaxOp::Addl2:
      case VaxOp::Subl2:
      case VaxOp::Mull2:
      case VaxOp::Divl2:
      case VaxOp::Bisl2:
      case VaxOp::Bicl2:
      case VaxOp::Xorl2:
      case VaxOp::Cmpl:
      case VaxOp::Mcoml:
      case VaxOp::Mnegl:
      case VaxOp::Calls:
        return long2;
      case VaxOp::Addl3:
      case VaxOp::Subl3:
      case VaxOp::Mull3:
      case VaxOp::Divl3:
      case VaxOp::Bisl3:
      case VaxOp::Bicl3:
      case VaxOp::Xorl3:
      case VaxOp::Ashl:
        return long3;
      case VaxOp::Clrl:
      case VaxOp::Pushl:
      case VaxOp::Incl:
      case VaxOp::Decl:
      case VaxOp::Tstl:
      case VaxOp::Jmp:
        return long1;
      case VaxOp::Brw:
        return br16;
      default:
        // All remaining ops are the byte-displacement branches.
        return br8;
    }
}

namespace {

/**
 * Parse one specifier at `addr`; advances `addr` past it. Returns
 * false for anything the record format cannot represent.
 */
bool
parseSpec(const sim::Memory &mem, uint32_t &addr, VaxSpec &spec)
{
    auto le = [&](unsigned n) {
        uint32_t v = 0;
        for (unsigned i = 0; i < n; ++i)
            v |= static_cast<uint32_t>(mem.peek8(addr + i)) << (8 * i);
        addr += n;
        return v;
    };

    const uint8_t raw = mem.peek8(addr++);
    const unsigned mode = raw >> 4;
    const unsigned reg = raw & 0xf;

    if (mode == static_cast<unsigned>(Mode::Index)) {
        // regs_[15] does not exist (PC is not a general register), and
        // a nested index prefix is representable only once: leave both
        // to the lazy decoder.
        if (reg == 15)
            return false;
        if ((mem.peek8(addr) >> 4) ==
            static_cast<unsigned>(Mode::Index))
            return false;
        if (!parseSpec(mem, addr, spec))
            return false;
        spec.indexReg = static_cast<uint8_t>(reg);
        return true;
    }

    spec.mode = static_cast<uint8_t>(mode);
    spec.reg = static_cast<uint8_t>(reg);
    spec.indexReg = VaxSpec::NoIndex;

    if (mode <= 3) { // short literal
        spec.extra = raw & 0x3f;
        spec.rkind = VaxSpec::RKind::Val;
        return true;
    }
    switch (static_cast<Mode>(mode)) {
      case Mode::Register:
        // reg 15 is rejected at resolve time with a proper operand
        // fault (mirrored by the fast path), so it is representable.
        spec.rkind = VaxSpec::RKind::Reg;
        return true;
      case Mode::Deferred:
        spec.rkind = VaxSpec::RKind::MemDisp; // displacement 0
        spec.extra = 0;
        return reg != 15; // regs_[15] does not exist
      case Mode::AutoDec:
        spec.rkind = VaxSpec::RKind::AutoDec;
        return reg != 15;
      case Mode::AutoInc:
        if (reg == 15) { // immediate: always 4 istream bytes
            spec.extra = le(4);
            spec.rkind = VaxSpec::RKind::Val;
            return true;
        }
        spec.rkind = VaxSpec::RKind::AutoInc;
        return true;
      case Mode::DispByte:
        if (reg == 15)
            return false;
        spec.extra = static_cast<uint32_t>(static_cast<int32_t>(
            static_cast<int8_t>(mem.peek8(addr))));
        addr += 1;
        spec.rkind = VaxSpec::RKind::MemDisp;
        return true;
      case Mode::DispWord:
        if (reg == 15)
            return false;
        spec.extra = static_cast<uint32_t>(static_cast<int32_t>(
            static_cast<int16_t>(le(2))));
        spec.rkind = VaxSpec::RKind::MemDisp;
        return true;
      case Mode::DispLong:
        spec.extra = le(4);
        spec.rkind = reg == 15 ? VaxSpec::RKind::MemAbs
                               : VaxSpec::RKind::MemDisp;
        return true;
      default:
        return false; // mode the simulator rejects: keep it lazy
    }
}

} // namespace

bool
parseVaxInst(const sim::Memory &mem, uint32_t addr, VaxDecoded &out)
{
    const uint32_t start = addr;
    const uint8_t raw = mem.peek8(addr++);
    if (!isValidVaxOp(raw))
        return false;
    out.op = static_cast<VaxOp>(raw);

    const VaxOpShape &shape = vaxOpShape(out.op);
    if (shape.isBranch8) {
        out.branchDisp = static_cast<int8_t>(mem.peek8(addr));
        addr += 1;
    } else if (shape.isBranch16) {
        out.branchDisp = static_cast<int16_t>(
            mem.peek8(addr) |
            (static_cast<uint16_t>(mem.peek8(addr + 1)) << 8));
        addr += 2;
    }
    out.nspecs = static_cast<uint8_t>(shape.operands);
    for (unsigned i = 0; i < shape.operands; ++i) {
        if (!parseSpec(mem, addr, out.specs[i]))
            return false;
    }
    out.length = static_cast<uint8_t>(addr - start);
    return true;
}

void
VaxDecodeCache::insert(uint32_t addr, const VaxDecoded &rec)
{
    const uint32_t page = addr >> sim::Memory::PageBits;
    PageData &pd = pages_[page];
    pd.records.insert_or_assign(addr, rec);
    pd.starts.set(addr & (sim::Memory::PageSize - 1));
    if (page < minPage_)
        minPage_ = page;
    if (page > maxPage_)
        maxPage_ = page;
}

void
VaxDecodeCache::invalidateAll()
{
    pages_.clear();
    minPage_ = UINT32_MAX;
    maxPage_ = 0;
}

void
VaxDecodeCache::invalidateRange(uint32_t addr, unsigned bytes)
{
    // Only records starting within MaxVaxInstBytes-1 bytes before the
    // write can reach it; scan that window via the start bitsets and
    // drop exactly the records whose bytes the write overlaps.
    const uint32_t lo =
        addr >= MaxVaxInstBytes - 1 ? addr - (MaxVaxInstBytes - 1) : 0;
    const uint32_t hi = addr + bytes - 1;
    uint32_t a = lo;
    while (a <= hi) {
        const uint32_t page = a >> sim::Memory::PageBits;
        const uint32_t page_last =
            (page << sim::Memory::PageBits) + sim::Memory::PageSize - 1;
        const uint32_t stop = hi < page_last ? hi : page_last;
        auto it = pages_.find(page);
        if (it != pages_.end()) {
            PageData &pd = it->second;
            for (uint32_t b = a; b <= stop; ++b) {
                const uint32_t off = b & (sim::Memory::PageSize - 1);
                if (!pd.starts.test(off))
                    continue;
                auto rec = pd.records.find(b);
                if (rec != pd.records.end() &&
                    b + rec->second.length > addr) {
                    pd.records.erase(rec);
                    pd.starts.reset(off);
                }
            }
        }
        if (stop == UINT32_MAX)
            break;
        a = stop + 1;
    }
}

size_t
VaxDecodeCache::residentRecords() const
{
    size_t n = 0;
    for (const auto &[page, pd] : pages_)
        n += pd.records.size();
    return n;
}

} // namespace risc1::vax
