/**
 * @file
 * Builder API for vax80 programs (the baseline has no text assembler;
 * workloads construct it the way a compiler back end would). The builder
 * emits bytes into a contiguous image, resolving label fixups at
 * finish().
 */

#ifndef RISC1_VAX_BUILDER_HH
#define RISC1_VAX_BUILDER_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "vax/isa.hh"

namespace risc1::vax {

/** Operand descriptor consumed by the builder. */
struct VOperand
{
    Mode mode = Mode::Register;
    unsigned reg = 0;
    int32_t disp = 0;       //!< displacement modes
    uint32_t imm = 0;       //!< immediate / absolute value
    std::string label;      //!< symbolic immediate / absolute target
    bool indexed = false;   //!< [Rx] prefix
    unsigned indexReg = 0;
};

/** Register operand Rn. */
VOperand vreg(unsigned reg);
/** Smallest encoding of a constant: short literal if 0..63, else imm. */
VOperand vlit(uint32_t value);
/** 32-bit immediate. */
VOperand vimm(uint32_t value);
/** Immediate whose value is a label's address (fixed up at finish). */
VOperand vsym(std::string label);
/** Register deferred (Rn). */
VOperand vdef(unsigned reg);
/** Autodecrement -(Rn) (push-style). */
VOperand vdec(unsigned reg);
/** Autoincrement (Rn)+ (pop-style). */
VOperand vinc(unsigned reg);
/** Displacement d(Rn); width picked from the displacement value. */
VOperand vdisp(unsigned reg, int32_t disp);
/** Absolute memory address. */
VOperand vabs(uint32_t addr);
/** Absolute memory address of a label. */
VOperand vabsSym(std::string label);
/** Add an index register to any memory-mode operand: base[Rx]. */
VOperand vidx(unsigned index_reg, VOperand base);

/** Finished image. */
struct VaxProgram
{
    uint32_t base = 0;
    std::vector<uint8_t> bytes;
    uint32_t entry = 0;
    std::map<std::string, uint32_t> symbols;
    uint32_t codeBytes = 0;   //!< instruction bytes (entry masks included)
    unsigned instructionCount = 0;

    uint32_t totalBytes() const
    {
        return static_cast<uint32_t>(bytes.size());
    }
};

/** Incremental program builder with label fixups. */
class VaxAsm
{
  public:
    explicit VaxAsm(uint32_t org = 0x1000) : base_(org) {}

    /** Define a label at the current position. */
    void label(const std::string &name);

    /**
     * Define a procedure entry: label plus the 2-byte register save
     * mask CALLS reads (bit r set = save Rr across the call).
     */
    void entry(const std::string &name, uint16_t save_mask);

    /** Emit a generic instruction. */
    void inst(VaxOp op, std::initializer_list<VOperand> ops);
    void inst(VaxOp op, const std::vector<VOperand> &ops);

    /** Conditional/unconditional branch to a label (byte displacement). */
    void br(VaxOp op, const std::string &target);
    /** Unconditional word-displacement branch. */
    void brw(const std::string &target);
    /** Absolute jump to a label. */
    void jmp(const std::string &target);
    /** CALLS #nargs, label. */
    void calls(unsigned nargs, const std::string &target);
    void ret();
    void halt();
    void nop();

    // Data emission (counted separately from code).
    void word(uint32_t value);
    void space(uint32_t count);
    void align(uint32_t boundary);
    void ascii(const std::string &text);

    /** Set the entry point (defaults to label "main", else image base). */
    void setEntry(const std::string &label_name);

    /** Resolve fixups and produce the image. Throws FatalError on
     *  undefined labels or out-of-range branch displacements. */
    VaxProgram finish();

    uint32_t here() const { return base_ + static_cast<uint32_t>(bytes_.size()); }

  private:
    struct Fixup
    {
        enum class Kind : uint8_t { Abs32, Rel8, Rel16 };
        Kind kind;
        size_t offset;    //!< where the bytes go
        uint32_t relBase; //!< address the displacement is relative to
        std::string label;
    };

    void byte(uint8_t b) { bytes_.push_back(b); }
    void emitOperand(const VOperand &op);

    uint32_t base_;
    std::vector<uint8_t> bytes_;
    std::map<std::string, uint32_t> symbols_;
    std::vector<Fixup> fixups_;
    std::string entryLabel_;
    uint32_t codeBytes_ = 0;
    unsigned instCount_ = 0;
};

} // namespace risc1::vax

#endif // RISC1_VAX_BUILDER_HH
