/**
 * @file
 * The vax80 baseline processor model. Shares the memory system, flag
 * definitions and stop/result types with the RISC I simulator so the
 * comparison harness can treat both machines uniformly.
 */

#ifndef RISC1_VAX_CPU_HH
#define RISC1_VAX_CPU_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>

#include "isa/condition.hh"
#include "sim/cpu.hh"
#include "sim/memory.hh"
#include "vax/builder.hh"
#include "vax/isa.hh"
#include "vax/predecode.hh"
#include "vax/timing.hh"

namespace risc1::vax {

/** Dynamic statistics of one vax80 run. */
struct VaxStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    std::map<VaxOp, uint64_t> perOpcode;
    uint64_t istreamBytes = 0;
    uint64_t branches = 0;
    uint64_t branchesTaken = 0;
    uint64_t calls = 0;
    uint64_t returns = 0;
    uint64_t savedRegs = 0;    //!< registers pushed by CALLS
    uint64_t restoredRegs = 0; //!< registers popped by RET
    sim::MemStats memory;

    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    double
    timeUs(double cycle_ns) const
    {
        return static_cast<double>(cycles) * cycle_ns / 1000.0;
    }

    /** Average instruction length in bytes. */
    double
    avgInstBytes() const
    {
        return instructions ? static_cast<double>(istreamBytes) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/** Configuration of one VaxCpu. */
struct VaxCpuOptions
{
    VaxTiming timing{};
    uint64_t maxInstructions = 200'000'000;
    uint32_t stackTop = 0x00e00000;
    /**
     * Cycle budget; a run() that exceeds it stops with
     * StopReason::Watchdog. 0 disables. (vax80 has no guest-visible
     * trap machinery, so faults always stop the machine; the watchdog
     * and crash diagnostics mirror the RISC I side.)
     */
    uint64_t watchdogCycles = 0;
    /** Guest address-space limit (Memory::setLimit); 0 = unlimited. */
    uint32_t memLimit = 0;
    /**
     * Parse each instruction's operand specifiers once into a
     * VaxDecodeCache and resolve the cached fields thereafter (see
     * docs/PERFORMANCE.md). Dynamic side effects (autoincrement,
     * index scaling, operand faults) still happen at resolve time in
     * the original order, and self-modifying stores invalidate the
     * affected pages, so results are identical either way; `false`
     * forces the historical byte-by-byte decode loop.
     */
    bool predecode = true;
    bool trace = false;               //!< per-instruction disassembly
    std::ostream *traceOut = nullptr; //!< defaults to std::cerr
};

/** The vax80 processor. */
class VaxCpu
{
  public:
    explicit VaxCpu(VaxCpuOptions options = {});

    // memory_ holds a pointer to dcache_ (the write observer), so the
    // object must stay put.
    VaxCpu(const VaxCpu &) = delete;
    VaxCpu &operator=(const VaxCpu &) = delete;

    /** Load an image; resets registers, PC and statistics. */
    void load(const VaxProgram &program);

    /** Run until HALT, fault or the instruction limit. */
    sim::ExecResult run();

    /** Execute one instruction (throws sim::SimFault on guest error). */
    void step();

    sim::Memory &memory() { return memory_; }
    const sim::Memory &memory() const { return memory_; }
    const VaxStats &stats() const { return stats_; }
    const isa::Flags &flags() const { return flags_; }

    uint32_t pc() const { return pc_; }
    bool halted() const { return halted_; }

    uint32_t reg(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, uint32_t v) { regs_[r] = v; }

    /**
     * The crash report run() would produce right now for `fault`:
     * cause, address, disassembly, registers and the recent-PC ring.
     */
    std::string crashReport(const sim::SimFault &fault) const;

  private:
    /** A resolved operand: where the datum lives. */
    struct OpRef
    {
        enum class Kind : uint8_t { Reg, Mem, Val };
        Kind kind = Kind::Val;
        unsigned reg = 0;
        uint32_t addr = 0;
        uint32_t value = 0;
    };

    uint8_t istreamByte();
    uint32_t istreamBytes(unsigned count); //!< little-endian

    /** Decode the next operand specifier; width = datum bytes. */
    OpRef decodeOperand(unsigned width);

    /**
     * Fast-path counterpart of decodeOperand: resolve the next cached
     * specifier of fastRec_, performing the same side effects (and
     * raising the same operand faults) in the same order.
     */
    OpRef resolveSpec(unsigned width);

    uint32_t readOp(const OpRef &ref, unsigned width);
    void writeOp(const OpRef &ref, uint32_t value, unsigned width);

    void setNZ(uint32_t value);
    void branch(VaxOp op);
    void doCalls();
    void doRet();
    void traceInst();

    void push(uint32_t value);
    uint32_t pop();

    VaxCpuOptions options_;
    sim::Memory memory_;
    // Registered as memory_'s write observer (see VaxCpu ctor/load).
    VaxDecodeCache dcache_;
    std::array<uint32_t, NumRegs> regs_{};
    VaxStats stats_;
    isa::Flags flags_;

    // In-flight predecoded instruction (fast path), executed through
    // the pointer without copying. Safe against self-modifying stores
    // because in every opcode path all record reads (opcode, length,
    // specifiers, branch displacement) precede the instruction's first
    // guest-visible write — the only event that can invalidate the
    // record. (Operand resolution always completes before execution
    // writes anything; branches never write.)
    const VaxDecoded *fastRec_ = nullptr;
    bool fastActive_ = false;
    unsigned fastSpec_ = 0; //!< next specifier of fastRec_ to resolve

    uint32_t pc_ = 0;       //!< address of next istream byte
    uint32_t instStart_ = 0;
    unsigned specifiers_ = 0;   //!< specifiers decoded this instruction
    unsigned istreamCount_ = 0; //!< istream bytes consumed this instruction
    bool halted_ = false;

    /** Ring of the last PcRingSize instruction-start PCs. */
    static constexpr unsigned PcRingSize = 16;
    std::array<uint32_t, PcRingSize> pcRing_{};
    unsigned pcRingPos_ = 0;
    uint64_t pcRingCount_ = 0;
};

} // namespace risc1::vax

#endif // RISC1_VAX_CPU_HH
