#include "core/fleet.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/image.hh"
#include "sim/serial.hh"
#include "sim/snapshot.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "workloads/workload.hh"

namespace risc1::core {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

/** Record magic: "R1SH", little-endian. */
constexpr uint32_t ShardMagic = 0x48533152;

std::string
errnoText()
{
    return std::strerror(errno);
}

[[noreturn]] void
throwIo(const char *what, const std::string &path)
{
    throw ShardCacheError(
        ShardCacheError::Kind::Io,
        strprintf("shard cache: %s %s: %s", what, path.c_str(),
                  errnoText().c_str()));
}

void
writeParams(sim::ByteWriter &w, const ShardParams &p)
{
    w.u64(p.configHash);
    w.u64(p.imageHash);
    w.u8(p.targetMask);
    w.u32(p.injections);
    w.u64(p.seed);
    w.u64(p.first);
    w.u64(p.last);
    w.u8(p.recover ? 1 : 0);
    w.u64(p.checkpointInterval);
}

ShardParams
readParams(sim::ByteReader &r)
{
    ShardParams p;
    p.configHash = r.u64();
    p.imageHash = r.u64();
    p.targetMask = r.u8();
    p.injections = r.u32();
    p.seed = r.u64();
    p.first = r.u64();
    p.last = r.u64();
    p.recover = r.u8() != 0;
    p.checkpointInterval = r.u64();
    return p;
}

bool
sameParams(const ShardParams &a, const ShardParams &b)
{
    return a.configHash == b.configHash && a.imageHash == b.imageHash &&
           a.targetMask == b.targetMask &&
           a.injections == b.injections && a.seed == b.seed &&
           a.first == b.first && a.last == b.last &&
           a.recover == b.recover &&
           a.checkpointInterval == b.checkpointInterval;
}

std::vector<FaultCampaignRow>
parseShardRecord(sim::ByteReader &r, const ShardParams &expect)
{
    const size_t magic_at = r.offset();
    const uint32_t magic = r.u32();
    if (magic != ShardMagic)
        throw ShardCacheError(
            ShardCacheError::Kind::BadMagic,
            strprintf("shard cache: bad magic 0x%08x at byte %zu",
                      magic, magic_at));
    const size_t version_at = r.offset();
    const uint32_t version = r.u32();
    if (version != ShardCacheFormatVersion)
        throw ShardCacheError(
            ShardCacheError::Kind::BadVersion,
            strprintf("shard cache: format version %u at byte %zu, "
                      "this build reads version %u",
                      version, version_at, ShardCacheFormatVersion));

    const size_t key_at = r.offset();
    const uint64_t key = r.u64();
    const uint64_t want = shardKey(expect);
    if (key != want)
        throw ShardCacheError(
            ShardCacheError::Kind::KeyMismatch,
            strprintf("shard cache: key %016llx at byte %zu, expected "
                      "%016llx (different campaign, image set, or "
                      "seed range)",
                      static_cast<unsigned long long>(key), key_at,
                      static_cast<unsigned long long>(want)));
    const size_t params_at = r.offset();
    const ShardParams got = readParams(r);
    if (!sameParams(got, expect))
        throw ShardCacheError(
            ShardCacheError::Kind::KeyMismatch,
            strprintf("shard cache: echoed params at byte %zu do not "
                      "match the expected shard (key collision or "
                      "stale record)",
                      params_at));

    const size_t nrows_at = r.offset();
    const uint32_t nrows = r.u32();
    // Per-row floor: 4-byte name length + the fixed counters.
    r.checkCount(nrows, 4 + 4 + 8 +
                            4 * (2 * NumFaultOutcomes +
                                 2 * NumFaultTargets *
                                     NumFaultOutcomes) +
                            16);
    if (nrows == 0)
        throw ShardCacheError(
            ShardCacheError::Kind::Corrupt,
            strprintf("shard cache: zero rows at byte %zu", nrows_at));
    std::vector<FaultCampaignRow> rows(nrows);
    for (FaultCampaignRow &row : rows) {
        const uint32_t namelen = r.u32();
        r.checkCount(namelen, 1);
        row.name.resize(namelen);
        r.bytes(reinterpret_cast<uint8_t *>(row.name.data()), namelen);
        row.injections = r.u32();
        row.baselineInsts = r.u64();
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            row.byOutcome[c] = r.u32();
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            row.recovered[c] = r.u32();
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c)
                row.byTarget[t][c] = r.u32();
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c)
                row.recoveredByTarget[t][c] = r.u32();
        row.checkpoints = r.u64();
        row.replayedInsts = r.u64();
    }

    if (r.remaining() > 8)
        throw ShardCacheError(
            ShardCacheError::Kind::Corrupt,
            strprintf("shard cache: %zu bytes between the last row and "
                      "the checksum at byte %zu (expected 8)",
                      r.remaining(), r.offset()));
    // The checksum itself; a short read here is a truncated record
    // (ByteStreamTruncated, rethrown as Truncated by the caller). Its
    // value is verified by the caller over the raw bytes.
    r.u64();
    return rows;
}

} // namespace

uint64_t
shardKey(const ShardParams &p)
{
    uint64_t h = sim::FnvOffset;
    sim::fnvU64(h, p.configHash);
    sim::fnvU64(h, p.imageHash);
    sim::fnvU64(h, p.targetMask);
    sim::fnvU64(h, p.injections);
    sim::fnvU64(h, p.seed);
    sim::fnvU64(h, p.first);
    sim::fnvU64(h, p.last);
    sim::fnvU64(h, p.recover ? 1 : 0);
    sim::fnvU64(h, p.checkpointInterval);
    return h;
}

uint64_t
suiteImageHash()
{
    uint64_t h = sim::FnvOffset;
    const auto &suite = workloads::allWorkloads();
    sim::fnvU64(h, suite.size());
    for (const workloads::Workload &wl : suite) {
        const sim::ProgramImage image(
            workloads::buildRisc(wl, wl.defaultScale));
        sim::fnvU64(h, sim::imageHash(image));
    }
    return h;
}

ShardParams
shardParams(unsigned injections, uint64_t seed, uint64_t first,
            uint64_t last, const RecoveryOptions &recovery)
{
    ShardParams p;
    p.configHash = sim::configHash(campaignCpuOptions());
    p.imageHash = suiteImageHash();
    p.targetMask = FaultTargetMaskAll;
    p.injections = injections;
    p.seed = seed;
    p.first = first;
    p.last = last;
    p.recover = recovery.enabled;
    p.checkpointInterval =
        recovery.enabled ? recovery.checkpointInterval : 0;
    return p;
}

std::vector<uint8_t>
serializeShardRecord(const ShardParams &params,
                     const std::vector<FaultCampaignRow> &rows)
{
    sim::ByteWriter w;
    w.u32(ShardMagic);
    w.u32(ShardCacheFormatVersion);
    w.u64(shardKey(params));
    writeParams(w, params);
    w.u32(static_cast<uint32_t>(rows.size()));
    for (const FaultCampaignRow &row : rows) {
        w.u32(static_cast<uint32_t>(row.name.size()));
        w.bytes(reinterpret_cast<const uint8_t *>(row.name.data()),
                row.name.size());
        w.u32(row.injections);
        w.u64(row.baselineInsts);
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            w.u32(row.byOutcome[c]);
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            w.u32(row.recovered[c]);
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c)
                w.u32(row.byTarget[t][c]);
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c)
                w.u32(row.recoveredByTarget[t][c]);
        w.u64(row.checkpoints);
        w.u64(row.replayedInsts);
    }
    w.u64(sim::fnv1a(w.buffer().data(), w.size()));
    return w.take();
}

std::vector<FaultCampaignRow>
deserializeShardRecord(const std::vector<uint8_t> &bytes,
                       const ShardParams &expect)
{
    sim::ByteReader r(bytes);
    std::vector<FaultCampaignRow> rows;
    try {
        rows = parseShardRecord(r, expect);
    } catch (const sim::ByteStreamTruncated &t) {
        throw ShardCacheError(
            ShardCacheError::Kind::Truncated,
            strprintf("shard cache: record truncated at byte %zu "
                      "(need %zu more)",
                      t.offset, t.need));
    }
    // The trailing checksum covers every byte before it, so one
    // flipped bit anywhere — header, params, any tally — is caught
    // even when the record still parses structurally.
    const size_t body = bytes.size() - 8;
    uint64_t trailer = 0;
    for (unsigned i = 0; i < 8; ++i)
        trailer |= static_cast<uint64_t>(bytes[body + i]) << (8 * i);
    const uint64_t computed = sim::fnv1a(bytes.data(), body);
    if (trailer != computed)
        throw ShardCacheError(
            ShardCacheError::Kind::Corrupt,
            strprintf("shard cache: checksum %016llx at byte %zu does "
                      "not match the record's %016llx (bit corruption)",
                      static_cast<unsigned long long>(trailer), body,
                      static_cast<unsigned long long>(computed)));
    return rows;
}

std::string
shardFileName(uint64_t key)
{
    return strprintf("shard-%016llx.shard",
                     static_cast<unsigned long long>(key));
}

void
writeShardFile(const std::string &path,
               const std::vector<uint8_t> &bytes)
{
    const std::string tmp =
        strprintf("%s.tmp.%ld", path.c_str(),
                  static_cast<long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throwIo("cannot create", tmp);
    const size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
    if (wrote != bytes.size() || std::fclose(f) != 0) {
        std::remove(tmp.c_str());
        throwIo("cannot write", tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throwIo("cannot rename into place", path);
    }
}

std::vector<FaultCampaignRow>
loadShardFile(const std::string &path, const ShardParams &expect)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throwIo("cannot open", path);
    std::vector<uint8_t> bytes;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool bad = std::ferror(f);
    std::fclose(f);
    if (bad)
        throwIo("cannot read", path);
    return deserializeShardRecord(bytes, expect);
}

namespace {

/** Sum shard rows into the campaign accumulator (order-independent). */
void
mergeRows(std::vector<FaultCampaignRow> &dst,
          const std::vector<FaultCampaignRow> &src)
{
    if (dst.empty()) {
        dst = src;
        return;
    }
    if (dst.size() != src.size())
        fatal("fleet: shard has %zu rows, campaign has %zu",
              src.size(), dst.size());
    for (size_t w = 0; w < dst.size(); ++w) {
        if (dst[w].name != src[w].name)
            fatal("fleet: shard row %zu is '%s', campaign has '%s'",
                  w, src[w].name.c_str(), dst[w].name.c_str());
        dst[w].injections += src[w].injections;
        // The baseline length is a per-workload constant; any shard
        // that covered the workload reports the same value.
        dst[w].baselineInsts =
            std::max(dst[w].baselineInsts, src[w].baselineInsts);
        for (unsigned c = 0; c < NumFaultOutcomes; ++c) {
            dst[w].byOutcome[c] += src[w].byOutcome[c];
            dst[w].recovered[c] += src[w].recovered[c];
        }
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c) {
                dst[w].byTarget[t][c] += src[w].byTarget[t][c];
                dst[w].recoveredByTarget[t][c] +=
                    src[w].recoveredByTarget[t][c];
            }
        dst[w].checkpoints += src[w].checkpoints;
        dst[w].replayedInsts += src[w].replayedInsts;
    }
}

/** One seed-range shard in flight or queued. */
struct Shard
{
    size_t index = 0; //!< ordinal in the shard list (chaos addressing)
    uint64_t first = 0;
    uint64_t last = 0;
    ShardParams params;
    std::string cachePath; //!< empty when no cache dir
    unsigned attempt = 0;
    Clock::time_point notBefore{}; //!< retry backoff gate
};

/** A worker subprocess bound to a shard. */
struct Worker
{
    pid_t pid = -1;
    Shard shard;
    Clock::time_point deadline{};
    bool timedOut = false;
};

/**
 * Chaos hook for the fleet ctests: RISC1_FLEET_CHAOS="crash:1,hang:0"
 * makes the first attempt of shard ordinal 1 crash and of shard 0
 * hang (the action is delivered to the worker via RISC1_SHARD_CHAOS;
 * see bench_fault_campaign). Retries run clean, which is exactly what
 * the re-queue path must recover from.
 */
std::string
chaosActionFor(size_t shard_index, unsigned attempt)
{
    if (attempt != 0)
        return "";
    const char *spec = std::getenv("RISC1_FLEET_CHAOS");
    if (!spec)
        return "";
    for (const std::string &entry : split(spec, ',')) {
        const size_t colon = entry.find(':');
        if (colon == std::string::npos)
            continue;
        if (std::strtoull(entry.c_str() + colon + 1, nullptr, 0) ==
            shard_index)
            return entry.substr(0, colon);
    }
    return "";
}

class FleetCoordinator
{
  public:
    explicit FleetCoordinator(const FleetOptions &opts) : opts_(opts) {}

    FleetResult
    run()
    {
        const size_t nwl = workloads::allWorkloads().size();
        const uint64_t total = uint64_t{nwl} * opts_.injections;
        uint64_t slots = opts_.shardSlots;
        if (slots == 0) {
            const uint64_t want_shards =
                std::max<uint64_t>(uint64_t{opts_.workers} * 4, 1);
            slots = std::max<uint64_t>((total + want_shards - 1) /
                                           want_shards, 1);
        }

        const bool subprocess = !opts_.workerExe.empty();
        if (subprocess && opts_.cacheDir.empty())
            fatal("fleet: subprocess workers need a cache directory "
                  "(workers hand completed shards back through it)");
        if (!opts_.cacheDir.empty()) {
            std::error_code ec;
            fs::create_directories(opts_.cacheDir, ec);
            if (ec)
                fatal("fleet: cannot create cache dir %s: %s",
                      opts_.cacheDir.c_str(), ec.message().c_str());
        }

        // Shard the grid and resolve each shard against the cache.
        // Params share the expensive suite image hash.
        ShardParams proto =
            shardParams(opts_.injections, opts_.seed, 0, total,
                        opts_.recovery);
        for (uint64_t first = 0; first < total; first += slots) {
            Shard shard;
            shard.index = static_cast<size_t>(first / slots);
            shard.first = first;
            shard.last = std::min(first + slots, total);
            shard.params = proto;
            shard.params.first = shard.first;
            shard.params.last = shard.last;
            if (!opts_.cacheDir.empty())
                shard.cachePath =
                    (fs::path(opts_.cacheDir) /
                     shardFileName(shardKey(shard.params)))
                        .string();
            ++stats_.shards;
            if (tryCache(shard))
                continue;
            if (halted())
                return finish();
            pending_.push_back(shard);
        }
        if (total == 0 || halted())
            return finish();

        if (!subprocess) {
            for (const Shard &shard : pending_) {
                runInProcess(shard);
                if (halted())
                    break;
            }
            pending_.clear();
            return finish();
        }

        // Subprocess fan-out: keep up to `workers` children busy,
        // reap completions, watchdog the stragglers.
        while (!pending_.empty() || !active_.empty()) {
            spawnEligible();
            if (!reapOne())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            enforceDeadlines();
            if (halted())
                break;
        }
        killAll();
        return finish();
    }

  private:
    bool
    halted() const
    {
        return opts_.haltAfterShards != 0 &&
               done_ >= opts_.haltAfterShards;
    }

    FleetResult
    finish()
    {
        stats_.halted = halted();
        FleetResult result;
        result.rows = std::move(merged_);
        result.stats = stats_;
        return result;
    }

    /** Merge a warm cache entry; reject-and-recompute on any typed
     *  failure. Returns true when the shard is done. */
    bool
    tryCache(const Shard &shard)
    {
        if (shard.cachePath.empty() || !fs::exists(shard.cachePath))
            return false;
        try {
            mergeRows(merged_,
                      loadShardFile(shard.cachePath, shard.params));
            ++stats_.cachedShards;
            ++done_;
            return true;
        } catch (const ShardCacheError &err) {
            warn("fleet: discarding cache entry %s: %s",
                 shard.cachePath.c_str(), err.what());
            std::remove(shard.cachePath.c_str());
            ++stats_.rejectedCache;
            return false;
        }
    }

    void
    runInProcess(const Shard &shard)
    {
        const std::vector<FaultCampaignRow> rows = faultCampaignRange(
            opts_.injections, opts_.seed, shard.first, shard.last,
            opts_.jobsPerWorker, opts_.streaming, opts_.recovery);
        if (!shard.cachePath.empty())
            writeShardFile(shard.cachePath,
                           serializeShardRecord(shard.params, rows));
        mergeRows(merged_, rows);
        ++stats_.inProcessShards;
        ++done_;
    }

    void
    spawnEligible()
    {
        const Clock::time_point now = Clock::now();
        for (auto it = pending_.begin();
             it != pending_.end() && active_.size() < opts_.workers;) {
            if (it->notBefore > now) {
                ++it;
                continue;
            }
            Shard shard = *it;
            it = pending_.erase(it);
            if (!spawn(shard)) {
                // Spawning is unavailable (fork failure, missing
                // binary): degrade gracefully to in-process execution.
                warn("fleet: subprocess spawn failed for shard "
                     "%llu:%llu, running in-process",
                     static_cast<unsigned long long>(shard.first),
                     static_cast<unsigned long long>(shard.last));
                runInProcess(shard);
                if (halted())
                    return;
            }
        }
    }

    bool
    spawn(const Shard &shard)
    {
        std::vector<std::string> args = {
            opts_.workerExe,
            std::to_string(opts_.injections),
            std::to_string(opts_.seed),
            "--seed-range",
            strprintf("%llu:%llu",
                      static_cast<unsigned long long>(shard.first),
                      static_cast<unsigned long long>(shard.last)),
            "--shard-out", shard.cachePath,
            "--jobs", std::to_string(opts_.jobsPerWorker)};
        if (opts_.streaming)
            args.push_back("--tally");
        if (opts_.recovery.enabled) {
            args.push_back("--recover");
            args.push_back("--checkpoint-interval");
            args.push_back(
                std::to_string(opts_.recovery.checkpointInterval));
        }
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &arg : args)
            argv.push_back(arg.data());
        argv.push_back(nullptr);
        const std::string chaos =
            chaosActionFor(shard.index, shard.attempt);

        const pid_t pid = ::fork();
        if (pid < 0)
            return false;
        if (pid == 0) {
            // Child: deliver the chaos action (tests only), then
            // become the worker. _exit on exec failure so a missing
            // binary reads as a worker crash, which retries and then
            // falls back in-process.
            if (!chaos.empty())
                ::setenv("RISC1_SHARD_CHAOS", chaos.c_str(), 1);
            ::execv(argv[0], argv.data());
            ::_exit(127);
        }
        Worker worker;
        worker.pid = pid;
        worker.shard = shard;
        worker.deadline =
            Clock::now() +
            std::chrono::milliseconds(static_cast<int64_t>(
                opts_.workerTimeoutSec * 1000));
        active_.push_back(worker);
        return true;
    }

    /** Reap at most one finished worker; false if none were ready. */
    bool
    reapOne()
    {
        for (auto it = active_.begin(); it != active_.end(); ++it) {
            int status = 0;
            const pid_t got = ::waitpid(it->pid, &status, WNOHANG);
            if (got != it->pid)
                continue;
            Worker worker = *it;
            active_.erase(it);
            const bool clean =
                WIFEXITED(status) && WEXITSTATUS(status) == 0;
            if (clean && tryCache(worker.shard)) {
                // tryCache merged the record the worker just wrote:
                // account it as computed, not warm-from-cache.
                --stats_.cachedShards;
                ++stats_.computedShards;
            } else {
                workerFailed(worker, status);
            }
            return true;
        }
        return false;
    }

    void
    workerFailed(Worker &worker, int status)
    {
        if (worker.timedOut)
            ++stats_.workerTimeouts;
        else
            ++stats_.workerCrashes;
        if (!worker.timedOut)
            warn("fleet: worker for shard %llu:%llu failed "
                 "(status 0x%x)",
                 static_cast<unsigned long long>(worker.shard.first),
                 static_cast<unsigned long long>(worker.shard.last),
                 static_cast<unsigned>(status));
        Shard shard = worker.shard;
        ++shard.attempt;
        if (shard.attempt > opts_.maxRetries) {
            warn("fleet: shard %llu:%llu exhausted %u retries, "
                 "running in-process",
                 static_cast<unsigned long long>(shard.first),
                 static_cast<unsigned long long>(shard.last),
                 opts_.maxRetries);
            runInProcess(shard);
            return;
        }
        ++stats_.retries;
        const double backoff =
            opts_.backoffSec * double(1u << (shard.attempt - 1));
        shard.notBefore =
            Clock::now() + std::chrono::milliseconds(
                               static_cast<int64_t>(backoff * 1000));
        pending_.push_back(shard);
    }

    void
    enforceDeadlines()
    {
        const Clock::time_point now = Clock::now();
        for (Worker &worker : active_) {
            if (worker.timedOut || worker.deadline > now)
                continue;
            warn("fleet: worker for shard %llu:%llu exceeded the "
                 "%.1fs watchdog, killing it",
                 static_cast<unsigned long long>(worker.shard.first),
                 static_cast<unsigned long long>(worker.shard.last),
                 opts_.workerTimeoutSec);
            worker.timedOut = true;
            ::kill(worker.pid, SIGKILL);
        }
    }

    void
    killAll()
    {
        for (Worker &worker : active_) {
            ::kill(worker.pid, SIGKILL);
            int status = 0;
            ::waitpid(worker.pid, &status, 0);
        }
        active_.clear();
    }

    const FleetOptions &opts_;
    std::vector<Shard> pending_;
    std::vector<Worker> active_;
    std::vector<FaultCampaignRow> merged_;
    FleetStats stats_;
    unsigned done_ = 0;
};

} // namespace

FleetResult
runFleet(const FleetOptions &options)
{
    if (options.injections == 0)
        fatal("fleet: campaign needs at least one injection per "
              "workload");
    FleetCoordinator coordinator(options);
    return coordinator.run();
}

} // namespace risc1::core
