#include "core/fleet.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/fleetnet.hh"
#include "sim/image.hh"
#include "sim/serial.hh"
#include "sim/snapshot.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "workloads/workload.hh"

namespace risc1::core {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

/** Record magic: "R1SH", little-endian. */
constexpr uint32_t ShardMagic = 0x48533152;

std::string
errnoText()
{
    return std::strerror(errno);
}

[[noreturn]] void
throwIo(const char *what, const std::string &path)
{
    throw ShardCacheError(
        ShardCacheError::Kind::Io,
        strprintf("shard cache: %s %s: %s", what, path.c_str(),
                  errnoText().c_str()));
}

void
writeParams(sim::ByteWriter &w, const ShardParams &p)
{
    w.u64(p.configHash);
    w.u64(p.imageHash);
    w.u8(p.targetMask);
    w.u32(p.injections);
    w.u64(p.seed);
    w.u64(p.first);
    w.u64(p.last);
    w.u8(p.recover ? 1 : 0);
    w.u64(p.checkpointInterval);
}

ShardParams
readParams(sim::ByteReader &r)
{
    ShardParams p;
    p.configHash = r.u64();
    p.imageHash = r.u64();
    p.targetMask = r.u8();
    p.injections = r.u32();
    p.seed = r.u64();
    p.first = r.u64();
    p.last = r.u64();
    p.recover = r.u8() != 0;
    p.checkpointInterval = r.u64();
    return p;
}

bool
sameParams(const ShardParams &a, const ShardParams &b)
{
    return a.configHash == b.configHash && a.imageHash == b.imageHash &&
           a.targetMask == b.targetMask &&
           a.injections == b.injections && a.seed == b.seed &&
           a.first == b.first && a.last == b.last &&
           a.recover == b.recover &&
           a.checkpointInterval == b.checkpointInterval;
}

std::vector<FaultCampaignRow>
parseShardRecord(sim::ByteReader &r, const ShardParams &expect)
{
    const size_t magic_at = r.offset();
    const uint32_t magic = r.u32();
    if (magic != ShardMagic)
        throw ShardCacheError(
            ShardCacheError::Kind::BadMagic,
            strprintf("shard cache: bad magic 0x%08x at byte %zu",
                      magic, magic_at));
    const size_t version_at = r.offset();
    const uint32_t version = r.u32();
    if (version != ShardCacheFormatVersion)
        throw ShardCacheError(
            ShardCacheError::Kind::BadVersion,
            strprintf("shard cache: format version %u at byte %zu, "
                      "this build reads version %u",
                      version, version_at, ShardCacheFormatVersion));

    const size_t key_at = r.offset();
    const uint64_t key = r.u64();
    const uint64_t want = shardKey(expect);
    if (key != want)
        throw ShardCacheError(
            ShardCacheError::Kind::KeyMismatch,
            strprintf("shard cache: key %016llx at byte %zu, expected "
                      "%016llx (different campaign, image set, or "
                      "seed range)",
                      static_cast<unsigned long long>(key), key_at,
                      static_cast<unsigned long long>(want)));
    const size_t params_at = r.offset();
    const ShardParams got = readParams(r);
    if (!sameParams(got, expect))
        throw ShardCacheError(
            ShardCacheError::Kind::KeyMismatch,
            strprintf("shard cache: echoed params at byte %zu do not "
                      "match the expected shard (key collision or "
                      "stale record)",
                      params_at));

    const size_t nrows_at = r.offset();
    const uint32_t nrows = r.u32();
    // Per-row floor: 4-byte name length + the fixed counters.
    r.checkCount(nrows, 4 + 4 + 8 +
                            4 * (2 * NumFaultOutcomes +
                                 2 * NumFaultTargets *
                                     NumFaultOutcomes) +
                            16);
    if (nrows == 0)
        throw ShardCacheError(
            ShardCacheError::Kind::Corrupt,
            strprintf("shard cache: zero rows at byte %zu", nrows_at));
    std::vector<FaultCampaignRow> rows(nrows);
    for (FaultCampaignRow &row : rows) {
        const uint32_t namelen = r.u32();
        r.checkCount(namelen, 1);
        row.name.resize(namelen);
        r.bytes(reinterpret_cast<uint8_t *>(row.name.data()), namelen);
        row.injections = r.u32();
        row.baselineInsts = r.u64();
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            row.byOutcome[c] = r.u32();
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            row.recovered[c] = r.u32();
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c)
                row.byTarget[t][c] = r.u32();
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c)
                row.recoveredByTarget[t][c] = r.u32();
        row.checkpoints = r.u64();
        row.replayedInsts = r.u64();
    }

    if (r.remaining() > 8)
        throw ShardCacheError(
            ShardCacheError::Kind::Corrupt,
            strprintf("shard cache: %zu bytes between the last row and "
                      "the checksum at byte %zu (expected 8)",
                      r.remaining(), r.offset()));
    // The checksum itself; a short read here is a truncated record
    // (ByteStreamTruncated, rethrown as Truncated by the caller). Its
    // value is verified by the caller over the raw bytes.
    r.u64();
    return rows;
}

} // namespace

uint64_t
shardKey(const ShardParams &p)
{
    uint64_t h = sim::FnvOffset;
    sim::fnvU64(h, p.configHash);
    sim::fnvU64(h, p.imageHash);
    sim::fnvU64(h, p.targetMask);
    sim::fnvU64(h, p.injections);
    sim::fnvU64(h, p.seed);
    sim::fnvU64(h, p.first);
    sim::fnvU64(h, p.last);
    sim::fnvU64(h, p.recover ? 1 : 0);
    sim::fnvU64(h, p.checkpointInterval);
    return h;
}

uint64_t
suiteImageHash()
{
    uint64_t h = sim::FnvOffset;
    const auto &suite = workloads::allWorkloads();
    sim::fnvU64(h, suite.size());
    for (const workloads::Workload &wl : suite) {
        const sim::ProgramImage image(
            workloads::buildRisc(wl, wl.defaultScale));
        sim::fnvU64(h, sim::imageHash(image));
    }
    return h;
}

ShardParams
shardParams(unsigned injections, uint64_t seed, uint64_t first,
            uint64_t last, const RecoveryOptions &recovery)
{
    ShardParams p;
    p.configHash = sim::configHash(campaignCpuOptions());
    p.imageHash = suiteImageHash();
    p.targetMask = FaultTargetMaskAll;
    p.injections = injections;
    p.seed = seed;
    p.first = first;
    p.last = last;
    p.recover = recovery.enabled;
    p.checkpointInterval =
        recovery.enabled ? recovery.checkpointInterval : 0;
    return p;
}

std::vector<uint8_t>
serializeShardRecord(const ShardParams &params,
                     const std::vector<FaultCampaignRow> &rows)
{
    sim::ByteWriter w;
    w.u32(ShardMagic);
    w.u32(ShardCacheFormatVersion);
    w.u64(shardKey(params));
    writeParams(w, params);
    w.u32(static_cast<uint32_t>(rows.size()));
    for (const FaultCampaignRow &row : rows) {
        w.u32(static_cast<uint32_t>(row.name.size()));
        w.bytes(reinterpret_cast<const uint8_t *>(row.name.data()),
                row.name.size());
        w.u32(row.injections);
        w.u64(row.baselineInsts);
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            w.u32(row.byOutcome[c]);
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            w.u32(row.recovered[c]);
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c)
                w.u32(row.byTarget[t][c]);
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c)
                w.u32(row.recoveredByTarget[t][c]);
        w.u64(row.checkpoints);
        w.u64(row.replayedInsts);
    }
    w.u64(sim::fnv1a(w.buffer().data(), w.size()));
    return w.take();
}

std::vector<FaultCampaignRow>
deserializeShardRecord(const std::vector<uint8_t> &bytes,
                       const ShardParams &expect)
{
    sim::ByteReader r(bytes);
    std::vector<FaultCampaignRow> rows;
    try {
        rows = parseShardRecord(r, expect);
    } catch (const sim::ByteStreamTruncated &t) {
        throw ShardCacheError(
            ShardCacheError::Kind::Truncated,
            strprintf("shard cache: record truncated at byte %zu "
                      "(need %zu more)",
                      t.offset, t.need));
    }
    // The trailing checksum covers every byte before it, so one
    // flipped bit anywhere — header, params, any tally — is caught
    // even when the record still parses structurally.
    const size_t body = bytes.size() - 8;
    uint64_t trailer = 0;
    for (unsigned i = 0; i < 8; ++i)
        trailer |= static_cast<uint64_t>(bytes[body + i]) << (8 * i);
    const uint64_t computed = sim::fnv1a(bytes.data(), body);
    if (trailer != computed)
        throw ShardCacheError(
            ShardCacheError::Kind::Corrupt,
            strprintf("shard cache: checksum %016llx at byte %zu does "
                      "not match the record's %016llx (bit corruption)",
                      static_cast<unsigned long long>(trailer), body,
                      static_cast<unsigned long long>(computed)));
    return rows;
}

std::string
shardFileName(uint64_t key)
{
    return strprintf("shard-%016llx.shard",
                     static_cast<unsigned long long>(key));
}

void
writeShardFile(const std::string &path,
               const std::vector<uint8_t> &bytes)
{
    const std::string tmp =
        strprintf("%s.tmp.%ld", path.c_str(),
                  static_cast<long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throwIo("cannot create", tmp);
    // Flush and fsync before the rename: rename is atomic in the
    // namespace, but only data already on disk survives a power cut —
    // without the fsync a crash can leave `path` naming an empty or
    // partial inode, exactly the torn record the temp file exists to
    // prevent.
    const size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
    if (wrote != bytes.size() || std::fflush(f) != 0 ||
        ::fsync(::fileno(f)) != 0 || std::fclose(f) != 0) {
        std::remove(tmp.c_str());
        throwIo("cannot write", tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throwIo("cannot rename into place", path);
    }
}

std::vector<FaultCampaignRow>
loadShardFile(const std::string &path, const ShardParams &expect)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throwIo("cannot open", path);
    std::vector<uint8_t> bytes;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool bad = std::ferror(f);
    std::fclose(f);
    if (bad)
        throwIo("cannot read", path);
    return deserializeShardRecord(bytes, expect);
}

namespace {

/** Sum shard rows into the campaign accumulator (order-independent). */
void
mergeRows(std::vector<FaultCampaignRow> &dst,
          const std::vector<FaultCampaignRow> &src)
{
    if (dst.empty()) {
        dst = src;
        return;
    }
    if (dst.size() != src.size())
        fatal("fleet: shard has %zu rows, campaign has %zu",
              src.size(), dst.size());
    for (size_t w = 0; w < dst.size(); ++w) {
        if (dst[w].name != src[w].name)
            fatal("fleet: shard row %zu is '%s', campaign has '%s'",
                  w, src[w].name.c_str(), dst[w].name.c_str());
        dst[w].injections += src[w].injections;
        // The baseline length is a per-workload constant; any shard
        // that covered the workload reports the same value.
        dst[w].baselineInsts =
            std::max(dst[w].baselineInsts, src[w].baselineInsts);
        for (unsigned c = 0; c < NumFaultOutcomes; ++c) {
            dst[w].byOutcome[c] += src[w].byOutcome[c];
            dst[w].recovered[c] += src[w].recovered[c];
        }
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            for (unsigned c = 0; c < NumFaultOutcomes; ++c) {
                dst[w].byTarget[t][c] += src[w].byTarget[t][c];
                dst[w].recoveredByTarget[t][c] +=
                    src[w].recoveredByTarget[t][c];
            }
        dst[w].checkpoints += src[w].checkpoints;
        dst[w].replayedInsts += src[w].replayedInsts;
    }
}

/** One seed-range shard in flight or queued. */
struct Shard
{
    size_t tenant = 0; //!< owning campaign, indexing runFleets' tenants
    size_t index = 0;  //!< ordinal in the shard list (chaos addressing)
    uint64_t first = 0;
    uint64_t last = 0;
    ShardParams params;
    std::string cachePath; //!< empty when no cache dir
    unsigned attempt = 0;
    Clock::time_point notBefore{}; //!< retry backoff gate
};

/** A worker subprocess bound to a shard. */
struct Worker
{
    pid_t pid = -1;
    Shard shard;
    Clock::time_point deadline{};
    bool timedOut = false;
};

/**
 * Chaos hook for the fleet ctests: RISC1_FLEET_CHAOS="crash:1,hang:0"
 * makes the first attempt of shard ordinal 1 crash and of shard 0
 * hang (the action is delivered to the worker via RISC1_SHARD_CHAOS;
 * see bench_fault_campaign). Retries run clean, which is exactly what
 * the re-queue path must recover from.
 */
std::string
chaosActionFor(size_t shard_index, unsigned attempt)
{
    if (attempt != 0)
        return "";
    const char *spec = std::getenv("RISC1_FLEET_CHAOS");
    if (!spec)
        return "";
    for (const std::string &entry : split(spec, ',')) {
        const size_t colon = entry.find(':');
        if (colon == std::string::npos)
            continue;
        if (std::strtoull(entry.c_str() + colon + 1, nullptr, 0) ==
            shard_index)
            return entry.substr(0, colon);
    }
    return "";
}

/**
 * The coordinator behind runFleet/runFleets. One instance schedules
 * every tenant campaign over one shared worker infrastructure (read
 * from tenants[0]): remote TCP workers when a RemotePool is attached,
 * degrading to subprocess workers and finally in-process execution.
 * Shards of all tenants live in one round-robin interleaved queue, so
 * the pool is shared fairly.
 */
class FleetCoordinator
{
  public:
    explicit FleetCoordinator(const std::vector<FleetOptions> &tenants)
        : tenants_(tenants), tstate_(tenants.size())
    {}

    std::vector<FleetResult>
    run()
    {
        const bool subprocess = !infra().workerExe.empty();
        if (subprocess && infra().cacheDir.empty())
            fatal("fleet: subprocess workers need a cache directory "
                  "(workers hand completed shards back through it)");
        if (!infra().cacheDir.empty()) {
            std::error_code ec;
            fs::create_directories(infra().cacheDir, ec);
            if (ec)
                fatal("fleet: cannot create cache dir %s: %s",
                      infra().cacheDir.c_str(), ec.message().c_str());
        }

        shardTenants();
        if (pending_.empty())
            return finish();

        remoteMode_ = infra().pool != nullptr;
        graceMs_ = std::chrono::milliseconds(
            static_cast<int64_t>(infra().remoteGraceSec * 1000));
        remoteDeadline_ = Clock::now() + graceMs_;

        while (!pending_.empty() || !active_.empty() ||
               !inflight_.empty()) {
            if (allHalted())
                break;
            purgeHalted();
            bool progressed = false;
            if (remoteMode_) {
                scheduleRemote();
                progressed = drainRemote();
                maybeDegrade();
            } else if (subprocess) {
                spawnEligible();
                progressed = reapOne();
                enforceDeadlines();
            } else {
                // In-process leg: synchronous, one pass.
                while (!pending_.empty()) {
                    const Shard shard = pending_.front();
                    pending_.pop_front();
                    if (!halted(shard.tenant))
                        runInProcess(shard);
                }
                progressed = true;
            }
            publishStatus(false);
            if (!progressed)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
        }
        killAll();
        return finish();
    }

  private:
    /** Per-tenant accumulator (results are per campaign). */
    struct TenantState
    {
        std::vector<FaultCampaignRow> merged;
        FleetStats stats;
        unsigned done = 0;
    };

    /** The infrastructure half of the options (see runFleets). */
    const FleetOptions &
    infra() const
    {
        return tenants_.front();
    }

    bool
    halted(size_t tenant) const
    {
        return tenants_[tenant].haltAfterShards != 0 &&
               tstate_[tenant].done >= tenants_[tenant].haltAfterShards;
    }

    bool
    allHalted() const
    {
        for (size_t t = 0; t < tenants_.size(); ++t)
            if (!halted(t))
                return false;
        return true;
    }

    /** Drop queued shards of tenants that halted since last tick. */
    void
    purgeHalted()
    {
        pending_.erase(
            std::remove_if(pending_.begin(), pending_.end(),
                           [this](const Shard &shard) {
                               return halted(shard.tenant);
                           }),
            pending_.end());
    }

    /** Shard every tenant's grid, warm-merge its cache, and
     *  round-robin interleave the remainders into pending_. */
    void
    shardTenants()
    {
        const size_t nwl = workloads::allWorkloads().size();
        std::vector<std::deque<Shard>> queues(tenants_.size());
        for (size_t t = 0; t < tenants_.size(); ++t) {
            const FleetOptions &opts = tenants_[t];
            const uint64_t total = uint64_t{nwl} * opts.injections;
            uint64_t slots = opts.shardSlots;
            if (slots == 0) {
                const uint64_t want_shards = std::max<uint64_t>(
                    uint64_t{infra().workers} * 4, 1);
                slots = std::max<uint64_t>(
                    (total + want_shards - 1) / want_shards, 1);
            }
            // Params share the expensive suite image hash.
            ShardParams proto = shardParams(opts.injections, opts.seed,
                                            0, total, opts.recovery);
            for (uint64_t first = 0; first < total; first += slots) {
                Shard shard;
                shard.tenant = t;
                shard.index = static_cast<size_t>(first / slots);
                shard.first = first;
                shard.last = std::min(first + slots, total);
                shard.params = proto;
                shard.params.first = shard.first;
                shard.params.last = shard.last;
                if (!infra().cacheDir.empty())
                    shard.cachePath =
                        (fs::path(infra().cacheDir) /
                         shardFileName(shardKey(shard.params)))
                            .string();
                ++tstate_[t].stats.shards;
                if (tryCache(shard))
                    continue;
                if (halted(t))
                    break;
                queues[t].push_back(shard);
            }
            if (halted(t))
                queues[t].clear();
        }
        for (bool any = true; any;) {
            any = false;
            for (std::deque<Shard> &queue : queues) {
                if (queue.empty())
                    continue;
                pending_.push_back(queue.front());
                queue.pop_front();
                any = true;
            }
        }
    }

    std::vector<FleetResult>
    finish()
    {
        publishStatus(true);
        std::vector<FleetResult> results(tenants_.size());
        for (size_t t = 0; t < tenants_.size(); ++t) {
            tstate_[t].stats.halted = halted(t);
            results[t].rows = std::move(tstate_[t].merged);
            results[t].stats = tstate_[t].stats;
        }
        return results;
    }

    /** Merge a warm cache entry; reject-and-recompute on any typed
     *  failure. Returns true when the shard is done. */
    bool
    tryCache(const Shard &shard)
    {
        if (shard.cachePath.empty() || !fs::exists(shard.cachePath))
            return false;
        TenantState &ts = tstate_[shard.tenant];
        try {
            mergeRows(ts.merged,
                      loadShardFile(shard.cachePath, shard.params));
            ++ts.stats.cachedShards;
            ++ts.done;
            return true;
        } catch (const ShardCacheError &err) {
            warn("fleet: discarding cache entry %s: %s",
                 shard.cachePath.c_str(), err.what());
            std::remove(shard.cachePath.c_str());
            ++ts.stats.rejectedCache;
            return false;
        }
    }

    void
    runInProcess(const Shard &shard)
    {
        const FleetOptions &opts = tenants_[shard.tenant];
        TenantState &ts = tstate_[shard.tenant];
        const std::vector<FaultCampaignRow> rows = faultCampaignRange(
            opts.injections, opts.seed, shard.first, shard.last,
            infra().jobsPerWorker, opts.streaming, opts.recovery);
        if (!shard.cachePath.empty())
            writeShardFile(shard.cachePath,
                           serializeShardRecord(shard.params, rows));
        mergeRows(ts.merged, rows);
        ++ts.stats.inProcessShards;
        ++ts.done;
    }

    // ---- remote leg ----------------------------------------------------

    /** Hand ripe pending shards to idle remote workers. */
    void
    scheduleRemote()
    {
        const Clock::time_point now = Clock::now();
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->notBefore > now) {
                ++it;
                continue;
            }
            const FleetOptions &opts = tenants_[it->tenant];
            AssignSpec spec;
            spec.token = nextToken_++;
            spec.injections = opts.injections;
            spec.seed = opts.seed;
            spec.first = it->first;
            spec.last = it->last;
            spec.streaming = opts.streaming;
            spec.recovery = opts.recovery;
            spec.jobs = infra().jobsPerWorker;
            spec.chaos = chaosActionFor(it->index, it->attempt);
            if (!infra().pool->assign(spec, infra().workerTimeoutSec))
                break; // every worker busy: keep the shard queued
            inflight_.emplace(spec.token, *it);
            it = pending_.erase(it);
        }
    }

    /** Process completed/failed remote shards. True if any arrived. */
    bool
    drainRemote()
    {
        bool progressed = false;
        for (RemoteEvent &event : infra().pool->drainEvents()) {
            progressed = true;
            const auto it = inflight_.find(event.token);
            if (it == inflight_.end())
                continue; // already resolved (e.g. after a halt)
            const Shard shard = it->second;
            inflight_.erase(it);
            TenantState &ts = tstate_[shard.tenant];
            if (event.quarantined)
                ++ts.stats.quarantinedWorkers;
            if (event.stalled)
                ++ts.stats.remoteStalls;
            if (halted(shard.tenant))
                continue;
            if (event.done) {
                try {
                    // The record arrives verbatim in the durable cache
                    // format, so it gets exactly the validation a warm
                    // cache entry gets: a worker built from skewed
                    // sources keys differently (KeyMismatch) and a
                    // corrupted tally fails the checksum.
                    std::vector<FaultCampaignRow> rows =
                        deserializeShardRecord(event.record,
                                               shard.params);
                    if (!shard.cachePath.empty())
                        writeShardFile(shard.cachePath, event.record);
                    mergeRows(ts.merged, rows);
                    ++ts.stats.remoteShards;
                    ++ts.done;
                    continue;
                } catch (const ShardCacheError &err) {
                    warn("fleet: rejecting remote record for shard "
                         "%llu:%llu and quarantining worker %llu: %s",
                         static_cast<unsigned long long>(shard.first),
                         static_cast<unsigned long long>(shard.last),
                         static_cast<unsigned long long>(event.worker),
                         err.what());
                    infra().pool->quarantine(event.worker);
                    ++ts.stats.quarantinedWorkers;
                }
            } else if (!event.error.empty()) {
                warn("fleet: remote shard %llu:%llu on worker %llu "
                     "failed: %s",
                     static_cast<unsigned long long>(shard.first),
                     static_cast<unsigned long long>(shard.last),
                     static_cast<unsigned long long>(event.worker),
                     event.error.c_str());
            }
            shardFailed(shard);
        }
        return progressed;
    }

    /**
     * Degrade out of remote mode when no worker is reachable: at
     * start-up, after remoteGraceSec with no first connection; mid-run,
     * after every worker was quarantined and none reconnected within
     * the same grace window. Pending shards fall to the subprocess leg
     * (workerExe set) or in-process execution.
     */
    void
    maybeDegrade()
    {
        if (infra().pool->connectedWorkers() > 0 ||
            !inflight_.empty()) {
            remoteDeadline_ = Clock::now() + graceMs_;
            return;
        }
        if (pending_.empty() || Clock::now() < remoteDeadline_)
            return;
        remoteMode_ = false;
        warn("fleet: no remote worker reachable after %.1fs, "
             "degrading to %s workers",
             infra().remoteGraceSec,
             infra().workerExe.empty() ? "in-process" : "subprocess");
    }

    /** Re-queue a failed shard with jittered exponential backoff;
     *  exhausted retries fall back to in-process execution. */
    void
    shardFailed(Shard shard)
    {
        ++shard.attempt;
        if (shard.attempt > infra().maxRetries) {
            warn("fleet: shard %llu:%llu exhausted %u retries, "
                 "running in-process",
                 static_cast<unsigned long long>(shard.first),
                 static_cast<unsigned long long>(shard.last),
                 infra().maxRetries);
            runInProcess(shard);
            return;
        }
        ++tstate_[shard.tenant].stats.retries;
        const double backoff = fleetBackoffSec(
            infra().backoffSec, tenants_[shard.tenant].seed,
            shard.index, shard.attempt);
        shard.notBefore =
            Clock::now() + std::chrono::milliseconds(
                               static_cast<int64_t>(backoff * 1000));
        pending_.push_back(shard);
    }

    /** Render the live status text served to StatusReq clients. */
    void
    publishStatus(bool final)
    {
        if (!infra().pool)
            return;
        const Clock::time_point now = Clock::now();
        if (!final && now < nextStatus_)
            return;
        nextStatus_ = now + std::chrono::milliseconds(200);
        std::string text;
        for (size_t t = 0; t < tenants_.size(); ++t) {
            const FleetOptions &opts = tenants_[t];
            const TenantState &ts = tstate_[t];
            text += strprintf(
                "campaign %zu: injections=%u seed=%llu  shards %u/%u "
                "merged (%u remote, %u cached, %u retries)%s%s\n",
                t, opts.injections,
                static_cast<unsigned long long>(opts.seed), ts.done,
                ts.stats.shards, ts.stats.remoteShards,
                ts.stats.cachedShards, ts.stats.retries,
                halted(t) ? " [halted]" : "",
                final ? " [final]" : "");
            if (!ts.merged.empty())
                text += faultCampaignTable(ts.merged,
                                           opts.recovery.enabled);
        }
        infra().pool->setStatusText(text);
    }

    // ---- subprocess leg ------------------------------------------------

    void
    spawnEligible()
    {
        const Clock::time_point now = Clock::now();
        for (auto it = pending_.begin();
             it != pending_.end() &&
             active_.size() < infra().workers;) {
            if (it->notBefore > now) {
                ++it;
                continue;
            }
            Shard shard = *it;
            it = pending_.erase(it);
            if (!spawn(shard)) {
                // Spawning is unavailable (fork failure, missing
                // binary): degrade gracefully to in-process execution.
                warn("fleet: subprocess spawn failed for shard "
                     "%llu:%llu, running in-process",
                     static_cast<unsigned long long>(shard.first),
                     static_cast<unsigned long long>(shard.last));
                runInProcess(shard);
                if (halted(shard.tenant))
                    return;
            }
        }
    }

    bool
    spawn(const Shard &shard)
    {
        const FleetOptions &opts = tenants_[shard.tenant];
        std::vector<std::string> args = {
            infra().workerExe,
            std::to_string(opts.injections),
            std::to_string(opts.seed),
            "--seed-range",
            strprintf("%llu:%llu",
                      static_cast<unsigned long long>(shard.first),
                      static_cast<unsigned long long>(shard.last)),
            "--shard-out", shard.cachePath,
            "--jobs", std::to_string(infra().jobsPerWorker)};
        if (opts.streaming)
            args.push_back("--tally");
        if (opts.recovery.enabled) {
            args.push_back("--recover");
            args.push_back("--checkpoint-interval");
            args.push_back(
                std::to_string(opts.recovery.checkpointInterval));
        }
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &arg : args)
            argv.push_back(arg.data());
        argv.push_back(nullptr);
        const std::string chaos =
            chaosActionFor(shard.index, shard.attempt);

        const pid_t pid = ::fork();
        if (pid < 0)
            return false;
        if (pid == 0) {
            // Child: deliver the chaos action (tests only), then
            // become the worker. _exit on exec failure so a missing
            // binary reads as a worker crash, which retries and then
            // falls back in-process.
            if (!chaos.empty())
                ::setenv("RISC1_SHARD_CHAOS", chaos.c_str(), 1);
            ::execv(argv[0], argv.data());
            ::_exit(127);
        }
        Worker worker;
        worker.pid = pid;
        worker.shard = shard;
        worker.deadline =
            Clock::now() +
            std::chrono::milliseconds(static_cast<int64_t>(
                infra().workerTimeoutSec * 1000));
        active_.push_back(worker);
        return true;
    }

    /** Reap at most one finished worker; false if none were ready. */
    bool
    reapOne()
    {
        for (auto it = active_.begin(); it != active_.end(); ++it) {
            int status = 0;
            const pid_t got = ::waitpid(it->pid, &status, WNOHANG);
            if (got != it->pid)
                continue;
            Worker worker = *it;
            active_.erase(it);
            if (halted(worker.shard.tenant))
                return true; // result discarded: the tenant halted
            const bool clean =
                WIFEXITED(status) && WEXITSTATUS(status) == 0;
            TenantState &ts = tstate_[worker.shard.tenant];
            if (clean && tryCache(worker.shard)) {
                // tryCache merged the record the worker just wrote:
                // account it as computed, not warm-from-cache.
                --ts.stats.cachedShards;
                ++ts.stats.computedShards;
            } else {
                workerFailed(worker, status);
            }
            return true;
        }
        return false;
    }

    void
    workerFailed(Worker &worker, int status)
    {
        TenantState &ts = tstate_[worker.shard.tenant];
        if (worker.timedOut) {
            ++ts.stats.workerTimeouts;
        } else {
            ++ts.stats.workerCrashes;
            warn("fleet: worker for shard %llu:%llu failed "
                 "(status 0x%x)",
                 static_cast<unsigned long long>(worker.shard.first),
                 static_cast<unsigned long long>(worker.shard.last),
                 static_cast<unsigned>(status));
        }
        shardFailed(worker.shard);
    }

    void
    enforceDeadlines()
    {
        const Clock::time_point now = Clock::now();
        for (Worker &worker : active_) {
            if (worker.timedOut || worker.deadline > now)
                continue;
            warn("fleet: worker for shard %llu:%llu exceeded the "
                 "%.1fs watchdog, killing it",
                 static_cast<unsigned long long>(worker.shard.first),
                 static_cast<unsigned long long>(worker.shard.last),
                 infra().workerTimeoutSec);
            worker.timedOut = true;
            ::kill(worker.pid, SIGKILL);
        }
    }

    void
    killAll()
    {
        for (Worker &worker : active_) {
            ::kill(worker.pid, SIGKILL);
            int status = 0;
            ::waitpid(worker.pid, &status, 0);
        }
        active_.clear();
    }

    std::vector<FleetOptions> tenants_;
    std::vector<TenantState> tstate_;
    std::deque<Shard> pending_;
    std::vector<Worker> active_;           //!< subprocess workers
    std::map<uint64_t, Shard> inflight_;   //!< remote shards, by token
    uint64_t nextToken_ = 1;
    bool remoteMode_ = false;
    std::chrono::milliseconds graceMs_{0};
    Clock::time_point remoteDeadline_{};
    Clock::time_point nextStatus_{};
};

} // namespace

double
fleetBackoffSec(double backoff_sec, uint64_t seed, size_t shard_index,
                unsigned attempt)
{
    uint64_t h = sim::FnvOffset;
    sim::fnvU64(h, seed);
    sim::fnvU64(h, shard_index);
    sim::fnvU64(h, attempt);
    // Top 53 bits -> [0, 1): the full-precision mantissa of a double.
    const double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
    const int doublings =
        attempt > 0 ? static_cast<int>(attempt) - 1 : 0;
    return std::ldexp(backoff_sec * (0.5 + 0.5 * frac), doublings);
}

FleetResult
runFleet(const FleetOptions &options)
{
    return runFleets({options}).front();
}

std::vector<FleetResult>
runFleets(const std::vector<FleetOptions> &tenants)
{
    if (tenants.empty())
        return {};
    for (const FleetOptions &opts : tenants)
        if (opts.injections == 0)
            fatal("fleet: campaign needs at least one injection per "
                  "workload");
    FleetCoordinator coordinator(tenants);
    return coordinator.run();
}

} // namespace risc1::core
