/**
 * @file
 * Shared command-line handling for the bench binaries: the
 * `--jobs N` / `$RISC1_JOBS` parallelism knob and a uniform `--help`.
 * parseBenchCli() strips the flags it consumes from argv, so binaries
 * that forward the remainder (e.g. to benchmark::Initialize) or parse
 * positional arguments keep working unchanged.
 */

#ifndef RISC1_CORE_CLI_HH
#define RISC1_CORE_CLI_HH

namespace risc1::core {

/** Result of parseBenchCli(). */
struct BenchCli
{
    /**
     * Worker count from --jobs, or 0 when absent (pass to
     * resolveJobs(), which then honours $RISC1_JOBS and falls back to
     * the hardware concurrency). 1 reproduces serial output exactly.
     */
    unsigned jobs = 0;
};

/**
 * Parse and remove `--jobs N` (also `--jobs=N` / `-j N`), and handle
 * `--help` / `-h` by printing a usage message — program name,
 * `usage_tail` for positional arguments, `description`, and the
 * standard --jobs/RISC1_JOBS paragraph — and exiting 0. argc/argv are
 * rewritten in place with the consumed flags removed.
 */
BenchCli parseBenchCli(int &argc, char **argv, const char *description,
                       const char *usage_tail = "");

} // namespace risc1::core

#endif // RISC1_CORE_CLI_HH
