/**
 * @file
 * Shared command-line handling for the bench binaries: the
 * `--jobs N` / `$RISC1_JOBS` parallelism knob and a uniform `--help`.
 * parseBenchCli() strips the flags it consumes from argv, so binaries
 * that forward the remainder (e.g. to benchmark::Initialize) or parse
 * positional arguments keep working unchanged.
 */

#ifndef RISC1_CORE_CLI_HH
#define RISC1_CORE_CLI_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace risc1::core {

/** Result of parseBenchCli(). */
struct BenchCli
{
    /**
     * Worker count from --jobs, or 0 when absent. Drivers should use
     * resolvedJobs below; this raw value exists only for callers that
     * need to distinguish "absent" from an explicit request.
     */
    unsigned jobs = 0;
    /**
     * jobs passed through resolveJobs(): an explicit --jobs wins, else
     * $RISC1_JOBS, else the hardware concurrency. 1 reproduces serial
     * output exactly. This is the value every driver hands to
     * ParallelRunner, so the resolution policy lives in one place.
     */
    unsigned resolvedJobs = 1;
    /**
     * --json: also write the binary's headline metrics as
     * BENCH_<name>.json next to the console output (currently honoured
     * by the google-benchmark harnesses, e.g. bench_sim_throughput).
     */
    bool json = false;
};

/**
 * Parse and remove `--jobs N` (also `--jobs=N` / `-j N`) and `--json`,
 * and handle `--help` / `-h` by printing a usage message — program
 * name, `usage_tail` for positional arguments, `description`, and the
 * standard --jobs/RISC1_JOBS paragraph — and exiting 0. argc/argv are
 * rewritten in place with the consumed flags removed.
 */
BenchCli parseBenchCli(int &argc, char **argv, const char *description,
                       const char *usage_tail = "");

/**
 * Parse a half-open campaign slot range "A:B" (decimal or 0x hex,
 * A <= B) as used by `bench_fault_campaign --seed-range` and the
 * fleet's worker command lines. Returns nullopt on malformed input.
 */
std::optional<std::pair<uint64_t, uint64_t>>
parseSeedRange(const char *text);

/**
 * Remove a boolean `flag` (e.g. "--once") from argv if present;
 * returns whether it was. argc/argv are rewritten in place, matching
 * parseBenchCli's convention, so drivers can mix these helpers with
 * positional-argument parsing.
 */
bool consumeFlag(int &argc, char **argv, const char *flag);

/**
 * Remove `--flag VALUE` (or `--flag=VALUE`) from argv, returning
 * VALUE. nullopt when the flag is absent; an empty string when it is
 * present but the value is missing (callers treat that as a usage
 * error).
 */
std::optional<std::string> consumeValueFlag(int &argc, char **argv,
                                            const char *flag);

} // namespace risc1::core

#endif // RISC1_CORE_CLI_HH
