/**
 * @file
 * Deterministic parallel execution of experiment jobs. A ParallelRunner
 * fans index-addressed jobs out over a ThreadPool; every job writes
 * only its own result slot, so the assembled output is identical for
 * any thread count — `--jobs 1` reproduces the historical serial loops
 * bit for bit, and `--jobs N` merely reorders wall-clock execution
 * (see docs/PERFORMANCE.md for the determinism argument).
 */

#ifndef RISC1_CORE_PARALLEL_HH
#define RISC1_CORE_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace risc1::core {

/**
 * Resolve a jobs request to a worker count: a nonzero `requested`
 * wins, else a positive integer in $RISC1_JOBS, else the hardware
 * concurrency (at least 1).
 */
unsigned resolveJobs(unsigned requested = 0);

class ParallelRunner
{
  public:
    /** `jobs` as for resolveJobs(); 1 means strictly serial. */
    explicit ParallelRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Run fn(0) … fn(count-1), concurrently when jobs() > 1. Jobs must
     * not share mutable state except through their own index. The
     * first exception thrown by any job is rethrown here (the
     * remaining jobs still run to completion). With jobs() == 1 this
     * is exactly the plain `for` loop, on the calling thread.
     */
    void run(size_t count, const std::function<void(size_t)> &fn) const;

    /** run() collecting fn(i) into slot i of the returned vector. */
    template <typename R, typename Fn>
    std::vector<R>
    map(size_t count, Fn fn) const
    {
        std::vector<R> out(count);
        run(count, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    unsigned jobs_;
};

} // namespace risc1::core

#endif // RISC1_CORE_PARALLEL_HH
