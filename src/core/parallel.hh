/**
 * @file
 * Deterministic parallel execution of experiment jobs. A ParallelRunner
 * fans index-addressed jobs out over a ThreadPool; every job writes
 * only its own result slot, so the assembled output is identical for
 * any thread count — `--jobs 1` reproduces the historical serial loops
 * bit for bit, and `--jobs N` merely reorders wall-clock execution
 * (see docs/PERFORMANCE.md for the determinism argument).
 */

#ifndef RISC1_CORE_PARALLEL_HH
#define RISC1_CORE_PARALLEL_HH

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

namespace risc1::core {

/**
 * Resolve a jobs request to a worker count: a nonzero `requested`
 * wins, else a positive integer in $RISC1_JOBS, else the hardware
 * concurrency (at least 1).
 */
unsigned resolveJobs(unsigned requested = 0);

class ParallelRunner
{
  public:
    /** `jobs` as for resolveJobs(); 1 means strictly serial. */
    explicit ParallelRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Run fn(0) … fn(count-1), concurrently when jobs() > 1. Jobs must
     * not share mutable state except through their own index. The
     * first exception thrown by any job is rethrown here (the
     * remaining jobs still run to completion). With jobs() == 1 this
     * is exactly the plain `for` loop, on the calling thread.
     */
    void run(size_t count, const std::function<void(size_t)> &fn) const;

    /** run() collecting fn(i) into slot i of the returned vector. */
    template <typename R, typename Fn>
    std::vector<R>
    map(size_t count, Fn fn) const
    {
        std::vector<R> out(count);
        run(count, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Streaming reduction: produce(i) for i in 0..count-1, consumed as
     * consume(i, value) strictly in index order. Work proceeds chunk by
     * chunk — each chunk's produce() calls run in parallel into a
     * buffer, then the buffer is drained serially on the calling thread
     * — so peak memory is one chunk of R, independent of `count`, and
     * the consume order (hence any accumulator) is byte-identical to
     * the serial loop for any job count, provided produce(i) depends
     * only on i. This is what lets campaign drivers tally millions of
     * runs without ever materializing a flat outcome vector.
     * `chunk` == 0 picks a size that keeps every worker busy while
     * bounding the buffer (jobs x 64, at least 1024).
     */
    template <typename R, typename Produce, typename Consume>
    void
    reduceChunked(size_t count, Produce produce, Consume consume,
                  size_t chunk = 0) const
    {
        if (chunk == 0)
            chunk = std::max<size_t>(size_t{jobs_} * 64, 1024);
        std::vector<R> buf;
        for (size_t base = 0; base < count; base += chunk) {
            const size_t n = std::min(chunk, count - base);
            buf.resize(n);
            run(n, [&](size_t i) { buf[i] = produce(base + i); });
            for (size_t i = 0; i < n; ++i)
                consume(base + i, buf[i]);
        }
    }

  private:
    unsigned jobs_;
};

} // namespace risc1::core

#endif // RISC1_CORE_PARALLEL_HH
