#include "core/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/parallel.hh"

namespace risc1::core {

namespace {

[[noreturn]] void
printUsage(const char *prog, const char *description,
           const char *usage_tail)
{
    const char *base = std::strrchr(prog, '/');
    base = base ? base + 1 : prog;
    std::printf("usage: %s [--jobs N]%s%s\n\n%s\n\n",
                base, usage_tail[0] ? " " : "", usage_tail,
                description);
    std::printf(
        "  --jobs N, -j N  run independent workload/machine/injection\n"
        "                  jobs on N worker threads. Default: the\n"
        "                  RISC1_JOBS environment variable, else the\n"
        "                  hardware concurrency. N=1 runs strictly\n"
        "                  serially; every N produces byte-identical\n"
        "                  output (see docs/PERFORMANCE.md).\n"
        "  --json          also write the headline metrics as\n"
        "                  BENCH_<name>.json (google-benchmark\n"
        "                  harnesses).\n"
        "  --help, -h      show this message and exit.\n");
    std::exit(0);
}

} // namespace

BenchCli
parseBenchCli(int &argc, char **argv, const char *description,
              const char *usage_tail)
{
    BenchCli cli;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            printUsage(argv[0], description, usage_tail);
        } else if (std::strcmp(arg, "--jobs") == 0 ||
                   std::strcmp(arg, "-j") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             arg);
                std::exit(2);
            }
            cli.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            cli.jobs = static_cast<unsigned>(
                std::strtoul(arg + 7, nullptr, 0));
        } else if (std::strcmp(arg, "--json") == 0) {
            cli.json = true;
        } else {
            argv[out++] = argv[i]; // not ours: keep for the caller
        }
    }
    argc = out;
    argv[argc] = nullptr;
    cli.resolvedJobs = resolveJobs(cli.jobs);
    return cli;
}

bool
consumeFlag(int &argc, char **argv, const char *flag)
{
    bool found = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            found = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    return found;
}

std::optional<std::string>
consumeValueFlag(int &argc, char **argv, const char *flag)
{
    std::optional<std::string> value;
    const size_t flag_len = std::strlen(flag);
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            if (i + 1 < argc)
                value = argv[++i];
            else
                value = std::string(); // present, value missing
        } else if (std::strncmp(argv[i], flag, flag_len) == 0 &&
                   argv[i][flag_len] == '=') {
            value = argv[i] + flag_len + 1;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return value;
}

std::optional<std::pair<uint64_t, uint64_t>>
parseSeedRange(const char *text)
{
    char *end = nullptr;
    const uint64_t first = std::strtoull(text, &end, 0);
    if (end == text || *end != ':')
        return std::nullopt;
    const char *second = end + 1;
    const uint64_t last = std::strtoull(second, &end, 0);
    if (end == second || *end != '\0' || first > last)
        return std::nullopt;
    return std::make_pair(first, last);
}

} // namespace risc1::core
