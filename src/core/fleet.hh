/**
 * @file
 * Campaign fleet coordinator: a fault-injection campaign as a sharded,
 * crash-resumable, fault-tolerant workload. The flat workload x
 * injection grid (see faultCampaignRange) is split into fixed-size
 * seed-range shards; each shard is executed by a worker subprocess
 * (`bench_fault_campaign --seed-range A:B --shard-out FILE`, itself
 * using ParallelRunner + streaming reduceChunked tallies) or, when
 * subprocess spawning is unavailable or disabled, in-process. Per-shard
 * tally rows are merged by summation, which is order-independent, so
 * the final tables are byte-identical to a single-process campaign at
 * any worker count.
 *
 * Robustness model:
 *  - Every completed shard is persisted to a durable on-disk cache as
 *    a versioned little-endian record keyed by fnv1a-64 over the
 *    campaign's determinants (snapshot config hash, suite image hash,
 *    fault-target mask, injections, seed, seed range, recovery
 *    options). Workers write the record atomically (temp file +
 *    rename), so an interrupted or crashed campaign resumes warm: on
 *    the next run, cached shards are validated and merged without
 *    re-execution, and the final output is byte-identical to an
 *    uninterrupted run.
 *  - Malformed cache entries — truncated, foreign magic, stale
 *    version, key mismatch, bit flips (caught by a trailing fnv1a
 *    checksum), unreadable files — raise ShardCacheError with a
 *    machine-checkable Kind, a byte-offset locator and, for file I/O,
 *    the errno text; the coordinator discards and transparently
 *    recomputes them, never merges them.
 *  - Hung workers are detected by a wall-clock watchdog and killed;
 *    crashed or killed workers have their shard re-queued with bounded
 *    retries and exponential backoff, and a shard that exhausts its
 *    retries falls back to in-process execution.
 */

#ifndef RISC1_CORE_FLEET_HH
#define RISC1_CORE_FLEET_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiments.hh"

namespace risc1::core {

class RemotePool; // core/fleetnet.hh

/** Current shard-cache record format version. */
constexpr uint32_t ShardCacheFormatVersion = 1;

/**
 * The fault-target space a campaign draws from, as a bit set indexed
 * like faultTargetName(). The injector currently always draws from all
 * three targets; the mask is part of the shard key so a future
 * restricted-target campaign can never alias a full one.
 */
constexpr uint8_t FaultTargetMaskAll = 0b111;

/** Typed failure of shard-cache record deserialization or file I/O. */
class ShardCacheError : public std::runtime_error
{
  public:
    enum class Kind : uint8_t
    {
        Truncated,   //!< record ended inside a field
        BadMagic,    //!< not a shard-cache record at all
        BadVersion,  //!< produced by a different format version
        KeyMismatch, //!< keyed for a different campaign or shard
        Corrupt,     //!< checksum or structural failure (bit flips)
        Io,          //!< file unreadable/unwritable (message has errno)
    };

    ShardCacheError(Kind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/**
 * Everything that determines a shard's tallies. configHash is
 * sim::configHash(campaignCpuOptions()); imageHash is
 * suiteImageHash(). Two shards with equal keys hold interchangeable
 * rows.
 */
struct ShardParams
{
    uint64_t configHash = 0;
    uint64_t imageHash = 0;
    uint8_t targetMask = FaultTargetMaskAll;
    uint32_t injections = 0;
    uint64_t seed = 0;
    uint64_t first = 0; //!< flat grid slot range [first, last)
    uint64_t last = 0;
    bool recover = false;
    uint64_t checkpointInterval = 0; //!< 0 when recover is false
};

/** fnv1a-64 over every ShardParams field, in declaration order. */
uint64_t shardKey(const ShardParams &params);

/**
 * fnv1a-64 over every suite workload's sim::imageHash, in suite order
 * — the image component of the shard key. Assembles each workload
 * once; no baselines are run.
 */
uint64_t suiteImageHash();

/** Assemble the ShardParams for one seed-range shard of a campaign. */
ShardParams shardParams(unsigned injections, uint64_t seed,
                        uint64_t first, uint64_t last,
                        const RecoveryOptions &recovery);

/**
 * Render a shard's campaign rows as a versioned little-endian record:
 * magic/version header, the shard key and echoed params, the rows,
 * and a trailing fnv1a-64 checksum over every preceding byte (so a
 * single flipped bit anywhere is a typed Corrupt error, not a wrong
 * tally).
 */
std::vector<uint8_t>
serializeShardRecord(const ShardParams &params,
                     const std::vector<FaultCampaignRow> &rows);

/**
 * Parse a shard-cache record that must match `expect`. Throws
 * ShardCacheError on any malformed input, checksum failure, or
 * key/params mismatch; messages carry the failing byte offset.
 */
std::vector<FaultCampaignRow>
deserializeShardRecord(const std::vector<uint8_t> &bytes,
                       const ShardParams &expect);

/**
 * Write a serialized record to `path` atomically (a unique temp file
 * in the same directory, then rename), so a reader never observes a
 * partial record. Throws ShardCacheError::Kind::Io with the errno text
 * on failure.
 */
void writeShardFile(const std::string &path,
                    const std::vector<uint8_t> &bytes);

/**
 * Load and validate the shard record at `path` against `expect`.
 * Throws ShardCacheError: Io (with errno text) if unreadable, else as
 * deserializeShardRecord.
 */
std::vector<FaultCampaignRow>
loadShardFile(const std::string &path, const ShardParams &expect);

/** The cache file name for a shard key: "shard-<key hex>.shard". */
std::string shardFileName(uint64_t key);

/** Configuration of one fleet campaign. */
struct FleetOptions
{
    unsigned injections = 100;
    uint64_t seed = 1981;

    unsigned workers = 1;       //!< concurrent worker subprocesses
    unsigned jobsPerWorker = 1; //!< --jobs inside each worker
    /** Grid slots per shard; 0 picks ~4 shards per worker. */
    uint64_t shardSlots = 0;

    /** Durable shard cache directory; empty disables persistence
     *  (subprocess mode requires it — workers hand results back
     *  through the cache). Created if missing. */
    std::string cacheDir;

    /** Worker executable (bench_fault_campaign); empty runs every
     *  shard in-process instead of fanning out subprocesses. */
    std::string workerExe;

    bool streaming = true; //!< per-shard --tally aggregation mode
    RecoveryOptions recovery;

    unsigned maxRetries = 2;        //!< re-queues per shard after a failure
    double workerTimeoutSec = 300;  //!< wall-clock watchdog per shard
    /** Base retry delay: doubles per retry, scaled by deterministic
     *  per-(seed, shard, attempt) jitter — see fleetBackoffSec. */
    double backoffSec = 0.05;

    /**
     * Remote TCP worker pool (core/fleetnet.hh); non-owning, nullptr
     * disables remote scheduling. With a pool, shards are assigned to
     * connected workers instead of subprocesses; several campaigns can
     * share one pool (runFleets). When no worker is reachable the
     * coordinator degrades gracefully: subprocess workers if workerExe
     * is set, else in-process.
     */
    RemotePool *pool = nullptr;

    /** With a pool but no connected worker, wait this long for a
     *  first connection before degrading. Also the drought window: if
     *  every worker is quarantined mid-campaign and none reconnects
     *  within it, the remaining shards degrade the same way. */
    double remoteGraceSec = 2.0;

    /**
     * Test/ops hook simulating a coordinator crash: stop after this
     * many shards have been merged (cached shards count), leaving the
     * cache partially populated; runFleet returns with stats.halted
     * set and must NOT be treated as a completed campaign. 0 disables.
     */
    unsigned haltAfterShards = 0;
};

/** What the coordinator did, for operators (not part of the tables). */
struct FleetStats
{
    unsigned shards = 0;          //!< total shards in the campaign
    unsigned cachedShards = 0;    //!< merged warm from the cache
    unsigned computedShards = 0;  //!< computed by worker subprocesses
    unsigned inProcessShards = 0; //!< computed in-process (fallback/mode)
    unsigned rejectedCache = 0;   //!< malformed cache entries recomputed
    unsigned workerCrashes = 0;   //!< nonzero-exit / signaled workers
    unsigned workerTimeouts = 0;  //!< workers killed by the watchdog
    unsigned retries = 0;         //!< shard re-queues
    unsigned remoteShards = 0;    //!< computed by remote TCP workers
    unsigned remoteStalls = 0;    //!< remote heartbeat stalls / timeouts
    /** Remote workers removed for cause while serving this campaign
     *  (protocol error, stall, or a record that failed validation). */
    unsigned quarantinedWorkers = 0;
    bool halted = false;          //!< stopped early by haltAfterShards
};

/** A merged campaign plus the coordinator's account of itself. */
struct FleetResult
{
    std::vector<FaultCampaignRow> rows;
    FleetStats stats;
};

/**
 * Run a sharded campaign (see file comment). The merged rows are
 * byte-identical to faultCampaign(injections, seed, ...) for any
 * worker count, shard size, cache state, and any interleaving of
 * worker failures — unless stats.halted is set, in which case rows
 * are partial and only the cache is meaningful.
 */
FleetResult runFleet(const FleetOptions &options);

/**
 * Run several campaigns ("tenants") over one shared worker
 * infrastructure. tenants[0] supplies the infrastructure half of the
 * options (pool, workers, jobsPerWorker, workerExe, cacheDir,
 * maxRetries, workerTimeoutSec, backoffSec, remoteGraceSec); each
 * tenant keeps its own campaign half (injections, seed, shardSlots,
 * streaming, recovery, haltAfterShards). Shards are interleaved
 * round-robin across tenants so a small campaign is never starved
 * behind a large one. Results index-match `tenants`, and each
 * tenant's merged rows are byte-identical to running it alone.
 */
std::vector<FleetResult>
runFleets(const std::vector<FleetOptions> &tenants);

/**
 * The retry delay before attempt `attempt` (1-based) of shard
 * `shard_index`: backoff_sec doubled per attempt, scaled by a jitter
 * factor in [0.5, 1.0) derived deterministically from fnv1a(seed,
 * shard_index, attempt) — reproducible for a fixed campaign seed, yet
 * decorrelating the retry times of shards that failed together (a
 * whole fleet retrying in lockstep is its own thundering herd).
 * Consecutive attempts of one shard never reorder: attempt N's
 * jittered range is [2^(N-2), 2^(N-1)) x backoff_sec, strictly below
 * attempt N+1's.
 */
double fleetBackoffSec(double backoff_sec, uint64_t seed,
                       size_t shard_index, unsigned attempt);

} // namespace risc1::core

#endif // RISC1_CORE_FLEET_HH
