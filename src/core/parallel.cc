#include "core/parallel.hh"

#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "support/threadpool.hh"

namespace risc1::core {

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    if (const char *env = std::getenv("RISC1_JOBS")) {
        const long value = std::strtol(env, nullptr, 10);
        if (value > 0)
            return static_cast<unsigned>(value);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(resolveJobs(jobs))
{
}

void
ParallelRunner::run(size_t count,
                    const std::function<void(size_t)> &fn) const
{
    if (jobs_ <= 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::mutex mutex;
    std::exception_ptr first_error;
    {
        ThreadPool pool(jobs_ < count ? jobs_
                                      : static_cast<unsigned>(count));
        for (size_t i = 0; i < count; ++i) {
            pool.submit([&, i] {
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace risc1::core
