/**
 * @file
 * Minimal column-aligned ASCII table printer used by the experiment
 * drivers to render the paper's tables.
 */

#ifndef RISC1_CORE_TABLE_HH
#define RISC1_CORE_TABLE_HH

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace risc1::core {

/** Column-aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a data row; must match the header count. */
    void row(std::vector<std::string> cells);

    /** Render with padding, a header rule, and right-aligned numbers. */
    std::string str() const;

    /** Convenience: render to a stream. */
    void print(std::ostream &os) const;

    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** strprintf-style cell helpers. */
std::string cell(double value, int precision = 2);
std::string cell(uint64_t value);

} // namespace risc1::core

#endif // RISC1_CORE_TABLE_HH
