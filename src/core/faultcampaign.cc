/**
 * @file
 * Experiment R1: the seeded fault-injection campaign. Every suite
 * workload runs N times, each run perturbed by exactly one random
 * single-bit flip, and every outcome is classified against the host
 * oracle — the soft-error / AVF methodology applied to the RISC I
 * model. Deterministic: the per-run RNG is derived from (seed,
 * workload, run index) only.
 */

#include "core/experiments.hh"

#include "core/parallel.hh"
#include "core/table.hh"
#include "sim/faultinject.hh"
#include "sim/image.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace risc1::core {

using workloads::allWorkloads;
using workloads::Workload;

std::string_view
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::Masked:       return "masked";
      case FaultOutcome::Sdc:          return "sdc";
      case FaultOutcome::DetectedTrap: return "detected-trap";
      case FaultOutcome::WatchdogHang: return "watchdog-hang";
    }
    panic("faultOutcomeName: bad outcome %u",
          static_cast<unsigned>(outcome));
}

namespace {

/** Guest address-space limit for campaign runs (16 MB). */
constexpr uint32_t CampaignMemLimit = 0x01000000;

/** Per-run RNG seed: a pure function of campaign seed, workload, run. */
uint64_t
runSeed(uint64_t seed, uint64_t workload, uint64_t run)
{
    uint64_t s = seed;
    s = s * 0x9e3779b97f4a7c15ull + workload + 1;
    s = s * 0x9e3779b97f4a7c15ull + run + 1;
    return s;
}

/** Every run lands in exactly one class — no unclassified outcomes. */
FaultOutcome
classify(const sim::ExecResult &result, uint32_t got, uint32_t expected)
{
    switch (result.reason) {
      case sim::StopReason::Halted:
        return got == expected ? FaultOutcome::Masked : FaultOutcome::Sdc;
      case sim::StopReason::Fault:
        return FaultOutcome::DetectedTrap;
      case sim::StopReason::Watchdog:
      case sim::StopReason::InstLimit:
        return FaultOutcome::WatchdogHang;
      case sim::StopReason::Paused:
        break; // run() never returns Paused
    }
    panic("classify: unexpected stop reason %u",
          static_cast<unsigned>(result.reason));
}

} // namespace

std::vector<FaultCampaignRow>
faultCampaign(unsigned injections, uint64_t seed, unsigned jobs,
              bool streaming)
{
    const auto &suite = allWorkloads();
    const ParallelRunner runner(jobs);

    // Phase 1 — per-workload setup. Each workload is assembled ONCE
    // into an immutable shared ProgramImage (pages + predecoded text);
    // the baseline and every injected run attach it copy-on-write, so
    // only the mutated pages are ever private. The uninjected baseline
    // is the horizon for injection times and the yardstick for the
    // watchdog budget; every injected run of workload w reuses its
    // Prepared.
    struct Prepared
    {
        sim::ProgramImage image;
        uint32_t expected = 0;
        sim::ExecResult base;
        sim::CpuOptions opts;
    };
    const std::vector<Prepared> prepared =
        runner.map<Prepared>(suite.size(), [&](size_t w) {
            const Workload &wl = suite[w];
            Prepared p;
            p.image = sim::ProgramImage(
                workloads::buildRisc(wl, wl.defaultScale));
            p.expected = wl.expected(wl.defaultScale);
            sim::CpuOptions base_opts;
            base_opts.memLimit = CampaignMemLimit;
            sim::Cpu baseline(base_opts);
            baseline.load(p.image);
            p.base = baseline.run();
            if (!p.base.halted() ||
                baseline.memory().peek32(workloads::ResultAddr) !=
                    p.expected)
                fatal("faultCampaign: baseline run of %s is broken",
                      wl.name.c_str());
            p.opts.memLimit = CampaignMemLimit;
            // Generous livelock budget: a run this far past its healthy
            // cycle count is never coming back.
            p.opts.watchdogCycles = p.base.cycles * 8 + 100'000;
            return p;
        });

    // Phase 2 — the flat workload x injection grid. Each cell's RNG is
    // a pure function of (seed, workload, run), so the outcomes — and
    // therefore the tallies — are identical for any job count and
    // either aggregation mode.
    const size_t total = suite.size() * injections;
    std::vector<FaultCampaignRow> rows(suite.size());
    for (size_t w = 0; w < suite.size(); ++w) {
        rows[w].name = suite[w].name;
        rows[w].injections = injections;
        rows[w].baselineInsts = prepared[w].base.instructions;
    }
    const auto produce = [&](size_t slot) {
        const size_t w = slot / injections;
        const uint64_t i = slot % injections;
        const Prepared &p = prepared[w];
        Rng rng(runSeed(seed, w, i));
        sim::Injection inj =
            sim::drawInjection(rng, p.base.instructions);
        sim::Cpu cpu(p.opts);
        cpu.load(p.image);
        const sim::ExecResult result =
            sim::runWithInjection(cpu, rng, inj);
        const uint32_t got = cpu.memory().peek32(workloads::ResultAddr);
        return classify(result, got, p.expected);
    };

    if (streaming) {
        // Stream outcomes straight into the fixed-size tallies: peak
        // memory is one reduceChunked buffer, independent of
        // `injections`, so a campaign can scale to millions of runs.
        runner.reduceChunked<FaultOutcome>(
            total, produce, [&](size_t slot, FaultOutcome outcome) {
                ++rows[slot / injections]
                      .byOutcome[static_cast<unsigned>(outcome)];
            });
        return rows;
    }

    // Flat mode: materialize the whole outcome vector, then tally. Kept
    // as the differential oracle for the streaming path (the tests
    // assert both modes agree for a fixed seed).
    const std::vector<FaultOutcome> outcomes =
        runner.map<FaultOutcome>(total, produce);
    for (size_t slot = 0; slot < total; ++slot)
        ++rows[slot / injections]
              .byOutcome[static_cast<unsigned>(outcomes[slot])];
    return rows;
}

std::string
faultCampaignTable(const std::vector<FaultCampaignRow> &rows)
{
    Table table({"program", "runs", "base insts", "masked", "sdc",
                 "trap", "hang", "masked%", "detect%"});
    FaultCampaignRow total;
    total.name = "TOTAL";
    auto pct = [](unsigned part, unsigned whole) {
        return whole ? 100.0 * part / whole : 0.0;
    };
    for (const FaultCampaignRow &row : rows) {
        total.injections += row.injections;
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            total.byOutcome[c] += row.byOutcome[c];
        table.row({row.name, cell(uint64_t{row.injections}),
                   cell(row.baselineInsts),
                   cell(uint64_t{row.count(FaultOutcome::Masked)}),
                   cell(uint64_t{row.count(FaultOutcome::Sdc)}),
                   cell(uint64_t{row.count(FaultOutcome::DetectedTrap)}),
                   cell(uint64_t{row.count(FaultOutcome::WatchdogHang)}),
                   cell(pct(row.count(FaultOutcome::Masked),
                            row.injections), 1),
                   cell(pct(row.count(FaultOutcome::DetectedTrap),
                            row.injections), 1)});
    }
    table.row({total.name, cell(uint64_t{total.injections}), "",
               cell(uint64_t{total.count(FaultOutcome::Masked)}),
               cell(uint64_t{total.count(FaultOutcome::Sdc)}),
               cell(uint64_t{total.count(FaultOutcome::DetectedTrap)}),
               cell(uint64_t{total.count(FaultOutcome::WatchdogHang)}),
               cell(pct(total.count(FaultOutcome::Masked),
                        total.injections), 1),
               cell(pct(total.count(FaultOutcome::DetectedTrap),
                        total.injections), 1)});
    return "R1: fault-injection campaign (one seeded single-bit flip "
           "per run;\nregister file / memory word / fetched "
           "instruction; outcome vs host oracle)\n" +
           table.str();
}

} // namespace risc1::core