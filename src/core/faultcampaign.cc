/**
 * @file
 * Experiment R1: the seeded fault-injection campaign. Every suite
 * workload runs N times, each run perturbed by exactly one random
 * single-bit flip, and every outcome is classified against the host
 * oracle — the soft-error / AVF methodology applied to the RISC I
 * model. Deterministic: the per-run RNG is derived from (seed,
 * workload, run index) only, which is also what makes the campaign
 * shardable — faultCampaignRange() runs any sub-range of the flat
 * workload x injection grid and a partition of the grid sums back to
 * the full campaign exactly (the fleet coordinator in core/fleet is
 * built on this). Experiment R3 (avfReport) folds the per-target
 * tallies into recovery-aware AVF columns.
 */

#include "core/experiments.hh"

#include "core/parallel.hh"
#include "core/table.hh"
#include "sim/fault.hh"
#include "sim/faultinject.hh"
#include "sim/image.hh"
#include "sim/snapshot.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace risc1::core {

using workloads::allWorkloads;
using workloads::Workload;

std::string_view
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::Masked:       return "masked";
      case FaultOutcome::Sdc:          return "sdc";
      case FaultOutcome::DetectedTrap: return "detected-trap";
      case FaultOutcome::WatchdogHang: return "watchdog-hang";
    }
    panic("faultOutcomeName: bad outcome %u",
          static_cast<unsigned>(outcome));
}

std::string_view
faultTargetName(unsigned target)
{
    switch (target) {
      case 0: return "register";
      case 1: return "memory";
      case 2: return "istream";
    }
    panic("faultTargetName: bad target %u", target);
}

namespace {

/** Guest address-space limit for campaign runs (16 MB). */
constexpr uint32_t CampaignMemLimit = 0x01000000;

/** Per-run RNG seed: a pure function of campaign seed, workload, run. */
uint64_t
runSeed(uint64_t seed, uint64_t workload, uint64_t run)
{
    uint64_t s = seed;
    s = s * 0x9e3779b97f4a7c15ull + workload + 1;
    s = s * 0x9e3779b97f4a7c15ull + run + 1;
    return s;
}

/** Every run lands in exactly one class — no unclassified outcomes. */
FaultOutcome
classify(const sim::ExecResult &result, uint32_t got, uint32_t expected)
{
    switch (result.reason) {
      case sim::StopReason::Halted:
        return got == expected ? FaultOutcome::Masked : FaultOutcome::Sdc;
      case sim::StopReason::Fault:
        return FaultOutcome::DetectedTrap;
      case sim::StopReason::Watchdog:
      case sim::StopReason::InstLimit:
        return FaultOutcome::WatchdogHang;
      case sim::StopReason::Paused:
        break; // run() never returns Paused
    }
    panic("classify: unexpected stop reason %u",
          static_cast<unsigned>(result.reason));
}

/** Everything one injected run reports back for tallying. */
struct RunOut
{
    FaultOutcome outcome = FaultOutcome::Masked;
    uint8_t target = 0; //!< drawn sim::InjectTarget, as an index
    bool recovered = false;
    uint32_t checkpoints = 0;
    uint64_t replayed = 0;
};

} // namespace

namespace {

/** Engine overrides applied by setCampaignEngine (process-wide). */
struct CampaignEngine
{
    bool selected = false;
    bool predecode = true;
    bool threaded = true;
    bool superblock = true;
    bool jit = false;
    bool jitChain = true;
};

CampaignEngine campaignEngine;

} // namespace

sim::CpuOptions
campaignCpuOptions()
{
    sim::CpuOptions opts;
    opts.memLimit = CampaignMemLimit;
    if (campaignEngine.selected) {
        opts.predecode = campaignEngine.predecode;
        opts.threaded = campaignEngine.threaded;
        opts.superblock = campaignEngine.superblock;
        opts.jit = campaignEngine.jit;
        opts.jitChain = campaignEngine.jitChain;
    }
    return opts;
}

bool
setCampaignEngine(const std::string &name)
{
    CampaignEngine e;
    e.selected = true;
    if (name == "ref") {
        e.predecode = e.threaded = e.superblock = false;
    } else if (name == "threaded") {
        e.superblock = false;
    } else if (name == "superblock") {
        // the defaults
    } else if (name == "jit") {
        e.jit = true;
    } else {
        return false;
    }
    e.jitChain = campaignEngine.jitChain; // set independently
    campaignEngine = e;
    return true;
}

void
setCampaignJitChain(bool enabled)
{
    campaignEngine.jitChain = enabled;
}

std::vector<FaultCampaignRow>
faultCampaignRange(unsigned injections, uint64_t seed, uint64_t first,
                   uint64_t last, unsigned jobs, bool streaming,
                   const RecoveryOptions &recovery)
{
    if (recovery.enabled && recovery.checkpointInterval == 0)
        fatal("faultCampaign: checkpoint interval must be nonzero");
    const auto &suite = allWorkloads();
    const uint64_t total = uint64_t{suite.size()} * injections;
    if (first > last || last > total)
        fatal("faultCampaign: seed range %llu:%llu outside the "
              "%llu-slot grid",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(last),
              static_cast<unsigned long long>(total));
    const ParallelRunner runner(jobs);

    std::vector<FaultCampaignRow> rows(suite.size());
    for (size_t w = 0; w < suite.size(); ++w)
        rows[w].name = suite[w].name;
    if (first == last)
        return rows;

    // Phase 1 — per-workload setup, restricted to the workloads the
    // range actually touches. Each covered workload is assembled ONCE
    // into an immutable shared ProgramImage (pages + predecoded text);
    // the baseline and every injected run attach it copy-on-write, so
    // only the mutated pages are ever private. The uninjected baseline
    // is the horizon for injection times and the yardstick for the
    // watchdog budget; every injected run of workload w reuses its
    // Prepared.
    struct Prepared
    {
        sim::ProgramImage image;
        uint32_t expected = 0;
        sim::ExecResult base;
        sim::CpuOptions opts;
    };
    const size_t w_first = first / injections;
    const size_t w_count = (last - 1) / injections - w_first + 1;
    const std::vector<Prepared> prepared =
        runner.map<Prepared>(w_count, [&](size_t idx) {
            const size_t w = w_first + idx;
            const Workload &wl = suite[w];
            Prepared p;
            p.image = sim::ProgramImage(
                workloads::buildRisc(wl, wl.defaultScale));
            p.expected = wl.expected(wl.defaultScale);
            sim::CpuOptions base_opts = campaignCpuOptions();
            sim::Cpu baseline(base_opts);
            baseline.load(p.image);
            p.base = baseline.run();
            if (!p.base.halted() ||
                baseline.memory().peek32(workloads::ResultAddr) !=
                    p.expected)
                fatal("faultCampaign: baseline run of %s is broken",
                      wl.name.c_str());
            p.opts = campaignCpuOptions();
            // Generous livelock budget: a run this far past its healthy
            // cycle count is never coming back.
            p.opts.watchdogCycles = p.base.cycles * 8 + 100'000;
            return p;
        });

    for (size_t idx = 0; idx < w_count; ++idx) {
        FaultCampaignRow &row = rows[w_first + idx];
        const uint64_t w_lo = uint64_t{w_first + idx} * injections;
        const uint64_t w_hi = w_lo + injections;
        row.injections = static_cast<unsigned>(
            std::min(last, w_hi) - std::max(first, w_lo));
        row.baselineInsts = prepared[idx].base.instructions;
    }

    // Phase 2 — the flat workload x injection grid, slots [first,
    // last). Each cell's RNG is a pure function of (seed, workload,
    // run), so the outcomes — and therefore the tallies — are
    // identical for any job count, either aggregation mode, and any
    // partition of the grid into ranges.
    const auto produce = [&](size_t i) {
        const uint64_t slot = first + i;
        const size_t w = slot / injections;
        const uint64_t r = slot % injections;
        const Prepared &p = prepared[w - w_first];
        Rng rng(runSeed(seed, w, r));
        sim::Injection inj =
            sim::drawInjection(rng, p.base.instructions);
        sim::Cpu cpu(p.opts);
        cpu.load(p.image);
        RunOut out;
        out.target = static_cast<uint8_t>(inj.target);

        if (!recovery.enabled) {
            const sim::ExecResult result =
                sim::runWithInjection(cpu, rng, inj);
            out.outcome = classify(
                result, cpu.memory().peek32(workloads::ResultAddr),
                p.expected);
            return out;
        }

        // Recovery mode: the same faulted run, but paused at every
        // multiple of K retired instructions to snapshot. Pausing does
        // not perturb the machine (every engine honours runUntil
        // exactly) and recovery draws no randomness, so `out.outcome`
        // is identical to the non-recovery classification above.
        const uint64_t K = recovery.checkpointInterval;
        sim::Snapshot ckpt = cpu.snapshot();
        uint64_t ckptAt = 0;
        const uint64_t T = inj.atInstruction;
        const auto runFaulted = [&]() -> sim::ExecResult {
            // To the injection point, snapshotting at boundaries (a
            // boundary coinciding with T is captured pre-injection).
            while (cpu.stats().instructions < T) {
                const uint64_t next =
                    (cpu.stats().instructions / K + 1) * K;
                const sim::ExecResult r2 =
                    cpu.runUntil(std::min(next, T));
                if (r2.reason != sim::StopReason::Paused)
                    return r2; // finished before the injection landed
                if (cpu.stats().instructions % K == 0) {
                    ckpt = cpu.snapshot();
                    ckptAt = cpu.stats().instructions;
                    ++out.checkpoints;
                }
            }
            sim::applyInjection(cpu, rng, inj);
            while (true) {
                const uint64_t next =
                    (cpu.stats().instructions / K + 1) * K;
                const sim::ExecResult r2 = cpu.runUntil(next);
                if (r2.reason != sim::StopReason::Paused)
                    return r2;
                // Post-injection checkpoints may hold corrupted state;
                // that is the methodology's point — recovery succeeds
                // only when detection outruns the checkpoint cadence.
                ckpt = cpu.snapshot();
                ckptAt = cpu.stats().instructions;
                ++out.checkpoints;
            }
        };

        const sim::ExecResult result = runFaulted();
        out.outcome = classify(
            result, cpu.memory().peek32(workloads::ResultAddr),
            p.expected);
        if (out.outcome == FaultOutcome::DetectedTrap ||
            out.outcome == FaultOutcome::WatchdogHang) {
            // Roll back to the most recent checkpoint and re-execute.
            // restore() clears the armed fetch corruption, so a
            // transient istream flip is not re-injected; a register or
            // memory flip captured by a post-injection checkpoint
            // persists and typically fails again (unrecovered).
            cpu.restore(ckpt);
            const sim::ExecResult rerun = cpu.run();
            out.replayed = cpu.stats().instructions - ckptAt;
            out.recovered =
                rerun.halted() &&
                cpu.memory().peek32(workloads::ResultAddr) == p.expected;
        }
        return out;
    };

    const auto tally = [&](size_t i, const RunOut &out) {
        FaultCampaignRow &row = rows[(first + i) / injections];
        const unsigned c = static_cast<unsigned>(out.outcome);
        ++row.byOutcome[c];
        ++row.byTarget[out.target][c];
        if (out.recovered) {
            ++row.recovered[c];
            ++row.recoveredByTarget[out.target][c];
        }
        row.checkpoints += out.checkpoints;
        row.replayedInsts += out.replayed;
    };

    const size_t count = static_cast<size_t>(last - first);
    if (streaming) {
        // Stream outcomes straight into the fixed-size tallies: peak
        // memory is one reduceChunked buffer, independent of
        // `injections`, so a campaign can scale to millions of runs.
        runner.reduceChunked<RunOut>(count, produce, tally);
        return rows;
    }

    // Flat mode: materialize the whole outcome vector, then tally. Kept
    // as the differential oracle for the streaming path (the tests
    // assert both modes agree for a fixed seed).
    const std::vector<RunOut> outcomes =
        runner.map<RunOut>(count, produce);
    for (size_t i = 0; i < count; ++i)
        tally(i, outcomes[i]);
    return rows;
}

FaultRepro
faultCampaignRepro(uint64_t slot, unsigned injections, uint64_t seed)
{
    const auto &suite = allWorkloads();
    const uint64_t total = uint64_t{suite.size()} * injections;
    if (injections == 0 || slot >= total)
        fatal("faultCampaignRepro: slot %llu outside the %llu-slot "
              "grid (%zu workloads x %u injections)",
              static_cast<unsigned long long>(slot),
              static_cast<unsigned long long>(total), suite.size(),
              injections);
    const size_t w = slot / injections;
    const uint64_t r = slot % injections;
    const Workload &wl = suite[w];

    // The same preparation faultCampaignRange performs for workload w.
    const sim::ProgramImage image(
        workloads::buildRisc(wl, wl.defaultScale));
    const uint32_t expected = wl.expected(wl.defaultScale);
    sim::Cpu baseline(campaignCpuOptions());
    baseline.load(image);
    const sim::ExecResult base = baseline.run();
    if (!base.halted() ||
        baseline.memory().peek32(workloads::ResultAddr) != expected)
        fatal("faultCampaignRepro: baseline run of %s is broken",
              wl.name.c_str());

    FaultRepro repro;
    repro.workload = wl.name;
    repro.options = campaignCpuOptions();
    repro.options.watchdogCycles = base.cycles * 8 + 100'000;

    // The slot's RNG stream, bit for bit as the campaign drew it.
    Rng rng(runSeed(seed, w, r));
    sim::Injection inj = sim::drawInjection(rng, base.instructions);

    sim::Cpu cpu(repro.options);
    cpu.load(image);
    const sim::ExecResult to_inj = cpu.runUntil(inj.atInstruction);
    if (to_inj.reason != sim::StopReason::Paused)
        fatal("faultCampaignRepro: %s ended before the injection "
              "point %llu (baseline says %llu instructions)",
              wl.name.c_str(),
              static_cast<unsigned long long>(inj.atInstruction),
              static_cast<unsigned long long>(base.instructions));
    sim::applyInjection(cpu, rng, inj);

    // A fetch flip arms transient corruption of the next fetch, which
    // is not snapshot state: execute the corrupted word first so its
    // architectural effect is captured. If that word itself faults,
    // the detection point IS the injection point.
    if (inj.target == sim::InjectTarget::Fetch) {
        try {
            cpu.step();
        } catch (const sim::SimFault &f) {
            repro.snapshot = sim::serializeSnapshot(cpu.snapshot(), repro.options);
            repro.snapshotInstructions = cpu.stats().instructions;
            repro.targetInstructions = repro.snapshotInstructions;
            repro.targetPc = cpu.pc();
            repro.outcome = FaultOutcome::DetectedTrap;
            repro.note = strprintf(
                "campaign slot %llu (%s run %llu, seed %llu): %s; "
                "faults immediately: %s",
                static_cast<unsigned long long>(slot), wl.name.c_str(),
                static_cast<unsigned long long>(r),
                static_cast<unsigned long long>(seed),
                sim::describeInjection(inj).c_str(),
                f.message.c_str());
            return repro;
        }
    }

    repro.snapshot = sim::serializeSnapshot(cpu.snapshot(), repro.options);
    repro.snapshotInstructions = cpu.stats().instructions;

    const sim::ExecResult result = cpu.run();
    repro.outcome = classify(
        result, cpu.memory().peek32(workloads::ResultAddr), expected);
    repro.targetInstructions = cpu.stats().instructions;
    repro.targetPc = result.reason == sim::StopReason::Fault
                         ? result.faultPc
                         : cpu.pc();
    repro.note = strprintf(
        "campaign slot %llu (%s run %llu, seed %llu): %s; outcome %s "
        "at instruction %llu%s%s",
        static_cast<unsigned long long>(slot), wl.name.c_str(),
        static_cast<unsigned long long>(r),
        static_cast<unsigned long long>(seed),
        sim::describeInjection(inj).c_str(),
        std::string(faultOutcomeName(repro.outcome)).c_str(),
        static_cast<unsigned long long>(repro.targetInstructions),
        result.message.empty() ? "" : ": ",
        result.message.c_str());
    return repro;
}

std::vector<FaultCampaignRow>
faultCampaign(unsigned injections, uint64_t seed, unsigned jobs,
              bool streaming, const RecoveryOptions &recovery)
{
    const uint64_t total =
        uint64_t{allWorkloads().size()} * injections;
    return faultCampaignRange(injections, seed, 0, total, jobs,
                              streaming, recovery);
}

std::string
faultCampaignTable(const std::vector<FaultCampaignRow> &rows,
                   bool recovery)
{
    std::vector<std::string> headers = {"program", "runs", "base insts",
                                        "masked", "sdc", "trap", "hang",
                                        "masked%", "detect%"};
    if (recovery) {
        headers.insert(headers.end(),
                       {"recov", "unrec", "recov%", "ckpts", "replayed"});
    }
    Table table(headers);
    FaultCampaignRow total;
    total.name = "TOTAL";
    auto pct = [](unsigned part, unsigned whole) {
        return whole ? 100.0 * part / whole : 0.0;
    };
    auto emit = [&](const FaultCampaignRow &row, bool is_total) {
        std::vector<std::string> cells = {
            row.name, cell(uint64_t{row.injections}),
            is_total ? "" : cell(row.baselineInsts),
            cell(uint64_t{row.count(FaultOutcome::Masked)}),
            cell(uint64_t{row.count(FaultOutcome::Sdc)}),
            cell(uint64_t{row.count(FaultOutcome::DetectedTrap)}),
            cell(uint64_t{row.count(FaultOutcome::WatchdogHang)}),
            cell(pct(row.count(FaultOutcome::Masked), row.injections),
                 1),
            cell(pct(row.count(FaultOutcome::DetectedTrap),
                     row.injections), 1)};
        if (recovery) {
            cells.push_back(cell(uint64_t{row.recoveredTotal()}));
            cells.push_back(cell(uint64_t{row.detectedCount() -
                                          row.recoveredTotal()}));
            cells.push_back(cell(pct(row.recoveredTotal(),
                                     row.detectedCount()), 1));
            cells.push_back(cell(row.checkpoints));
            cells.push_back(cell(row.replayedInsts));
        }
        table.row(cells);
    };
    for (const FaultCampaignRow &row : rows) {
        total.injections += row.injections;
        for (unsigned c = 0; c < NumFaultOutcomes; ++c) {
            total.byOutcome[c] += row.byOutcome[c];
            total.recovered[c] += row.recovered[c];
        }
        total.checkpoints += row.checkpoints;
        total.replayedInsts += row.replayedInsts;
        emit(row, false);
    }
    emit(total, true);
    std::string title =
        "R1: fault-injection campaign (one seeded single-bit flip "
        "per run;\nregister file / memory word / fetched "
        "instruction; outcome vs host oracle)\n";
    if (recovery)
        title += "recovery: rollback to the last checkpoint on "
                 "trap/hang, re-run vs oracle\n";
    return title + table.str();
}

std::vector<AvfRow>
avfReport(const std::vector<FaultCampaignRow> &rows)
{
    std::vector<AvfRow> out;
    out.reserve(rows.size() + 1);
    AvfRow total;
    total.name = "TOTAL";
    for (const FaultCampaignRow &row : rows) {
        AvfRow a;
        a.name = row.name;
        for (unsigned t = 0; t < NumFaultTargets; ++t) {
            a.injections[t] = row.targetInjections(t);
            a.vulnerable[t] = row.targetVulnerable(t);
            a.recovered[t] = row.targetRecovered(t);
            total.injections[t] += a.injections[t];
            total.vulnerable[t] += a.vulnerable[t];
            total.recovered[t] += a.recovered[t];
        }
        out.push_back(std::move(a));
    }
    out.push_back(std::move(total));
    return out;
}

std::string
avfTable(const std::vector<AvfRow> &rows, bool recovery)
{
    std::vector<std::string> headers = {"program"};
    for (unsigned t = 0; t < NumFaultTargets; ++t) {
        headers.push_back(std::string(faultTargetName(t)) + " runs");
        headers.push_back(std::string(faultTargetName(t)) + " avf");
    }
    if (recovery)
        for (unsigned t = 0; t < NumFaultTargets; ++t)
            headers.push_back(std::string(faultTargetName(t)) +
                              " avf-r");
    Table table(headers);
    for (const AvfRow &row : rows) {
        std::vector<std::string> cells = {row.name};
        for (unsigned t = 0; t < NumFaultTargets; ++t) {
            cells.push_back(cell(uint64_t{row.injections[t]}));
            cells.push_back(cell(row.avf(t), 3));
        }
        if (recovery)
            for (unsigned t = 0; t < NumFaultTargets; ++t)
                cells.push_back(cell(row.avfRecovered(t), 3));
        table.row(cells);
    }
    std::string title =
        "R3: architectural vulnerability factor by fault target\n"
        "(avf = non-masked fraction of that target's injections)\n";
    if (recovery)
        title += "avf-r: recovered detections weighted out of the "
                 "numerator (checkpoint/rollback)\n";
    return title + table.str();
}

std::vector<RecoverySweepRow>
recoverySweep(const std::vector<uint64_t> &intervals, unsigned injections,
              uint64_t seed, unsigned jobs)
{
    std::vector<RecoverySweepRow> out;
    out.reserve(intervals.size());
    for (const uint64_t interval : intervals) {
        RecoveryOptions recovery;
        recovery.enabled = true;
        recovery.checkpointInterval = interval;
        const std::vector<FaultCampaignRow> rows = faultCampaign(
            injections, seed, jobs, /*streaming=*/true, recovery);
        RecoverySweepRow row;
        row.interval = interval;
        for (const FaultCampaignRow &r : rows) {
            row.injections += r.injections;
            row.detected += r.detectedCount();
            row.recovered += r.recoveredTotal();
            row.checkpoints += r.checkpoints;
            row.replayedInsts += r.replayedInsts;
        }
        row.recoveryPct =
            row.detected ? 100.0 * row.recovered / row.detected : 0.0;
        row.checkpointsPerRun = row.injections
                                    ? double(row.checkpoints) /
                                          row.injections
                                    : 0.0;
        row.replayPerDetected = row.detected
                                    ? double(row.replayedInsts) /
                                          row.detected
                                    : 0.0;
        out.push_back(row);
    }
    return out;
}

std::string
recoverySweepTable(const std::vector<RecoverySweepRow> &rows)
{
    Table table({"interval", "runs", "detected", "recovered", "recov%",
                 "ckpts", "ckpts/run", "replayed", "replay/det"});
    for (const RecoverySweepRow &row : rows) {
        table.row({cell(row.interval), cell(uint64_t{row.injections}),
                   cell(uint64_t{row.detected}),
                   cell(uint64_t{row.recovered}),
                   cell(row.recoveryPct, 1), cell(row.checkpoints),
                   cell(row.checkpointsPerRun, 2),
                   cell(row.replayedInsts),
                   cell(row.replayPerDetected, 1)});
    }
    return "R2: checkpoint-interval sweep (recovery rate vs checkpoint "
           "overhead;\nrollback to the most recent checkpoint on "
           "trap/hang detection)\n" +
           table.str();
}

} // namespace risc1::core
