/**
 * @file
 * Drivers for every experiment in DESIGN.md's per-experiment index
 * (E1..E9, A1/A2). Each driver returns structured rows — asserted by
 * the integration tests — and has a Table renderer used by the bench
 * binaries to print the paper-style artifact.
 */

#ifndef RISC1_CORE_EXPERIMENTS_HH
#define RISC1_CORE_EXPERIMENTS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/run.hh"

namespace risc1::core {

// ---- E1: the instruction-set table -------------------------------------

/** Render Table I: the 31 RISC I instructions. */
std::string isaTable();

// ---- E2: register-window geometry --------------------------------------

/** Render the overlapped-window diagram and mapping for `nwindows`. */
std::string windowGeometryReport(unsigned nwindows = 8);

// ---- E3: procedure call/return cost -------------------------------------

/** One row of the call-overhead comparison. */
struct CallOverheadRow
{
    unsigned nargs = 0;
    double riscCyclesPerCall = 0;
    double vaxCyclesPerCall = 0;
    double riscMemPerCall = 0; //!< data-memory accesses per call+return
    double vaxMemPerCall = 0;
};

/**
 * Measure call+return cost for 0..max_args arguments. Here and in every
 * driver below, `jobs` is the worker-thread count for the independent
 * per-row simulations (see core/parallel.hh): 1 is the historical
 * serial loop and any N produces byte-identical rows.
 */
std::vector<CallOverheadRow> callOverhead(unsigned max_args = 6,
                                          unsigned iters = 2000,
                                          unsigned jobs = 1);
std::string callOverheadTable(const std::vector<CallOverheadRow> &rows);

// ---- E4: static code size ------------------------------------------------

struct CodeSizeRow
{
    std::string name;
    uint32_t riscBytes = 0;
    uint32_t vaxBytes = 0;
    double riscOverVax = 0; //!< paper: RISC I <= ~1.5x the VAX size
};

std::vector<CodeSizeRow> codeSize(unsigned jobs = 1);
std::string codeSizeTable(const std::vector<CodeSizeRow> &rows);

// ---- E5: execution time ----------------------------------------------------

struct ExecTimeRow
{
    std::string name;
    bool resultsMatch = false;
    uint64_t riscInsts = 0;
    uint64_t riscCycles = 0;
    uint64_t vaxInsts = 0;
    uint64_t vaxCycles = 0;
    double riscUs = 0; //!< at the paper's 400 ns cycle
    double vaxUs = 0;  //!< at the VAX-11/780's 200 ns cycle
    double speedup = 0; //!< vaxUs / riscUs
};

std::vector<ExecTimeRow> execTime(unsigned jobs = 1);
std::string execTimeTable(const std::vector<ExecTimeRow> &rows);

// ---- E6: window overflow vs window count ----------------------------------

struct WindowSweepRow
{
    unsigned windows = 0;
    uint64_t calls = 0;
    uint64_t overflows = 0;
    double overflowPct = 0;   //!< overflows / calls
    uint64_t cycles = 0;
    double trapCyclePct = 0;  //!< share of cycles spent in window traps
};

/** Aggregate over the recursive workloads for each window count. */
std::vector<WindowSweepRow>
windowSweep(const std::vector<unsigned> &window_counts = {2, 4, 6, 8, 12,
                                                          16},
            unsigned jobs = 1);
std::string windowSweepTable(const std::vector<WindowSweepRow> &rows);

// ---- E7: memory traffic ------------------------------------------------------

struct MemTrafficRow
{
    std::string name;
    uint64_t riscDataAccesses = 0;
    uint64_t riscTotalAccesses = 0; //!< incl. instruction fetches
    uint64_t vaxDataAccesses = 0;
    uint64_t vaxTotalAccesses = 0;
    double dataRatio = 0;  //!< vax / risc data accesses
    double totalRatio = 0;
};

std::vector<MemTrafficRow> memTraffic(unsigned jobs = 1);
std::string memTrafficTable(const std::vector<MemTrafficRow> &rows);

// ---- E8: dynamic instruction mix ----------------------------------------------

struct InstrMixRow
{
    std::string name;
    double aluPct = 0;
    double loadPct = 0;
    double storePct = 0;
    double branchPct = 0;
    double callRetPct = 0;
    double miscPct = 0;
    double nopPct = 0; //!< executed canonical NOPs (unfilled slots)
};

std::vector<InstrMixRow> instrMix(unsigned jobs = 1);
std::string instrMixTable(const std::vector<InstrMixRow> &rows);

/** One row of the aggregate per-opcode frequency table. */
struct OpcodeFreqRow
{
    std::string mnemonic;
    uint64_t count = 0;
    double pct = 0;
};

/** Aggregate dynamic opcode frequencies over the whole suite,
 *  descending (the paper's detailed-mix table). */
std::vector<OpcodeFreqRow> opcodeFrequencies(unsigned jobs = 1);
std::string opcodeFrequencyTable(const std::vector<OpcodeFreqRow> &rows);

// ---- E9: delayed-branch slot filling ------------------------------------------

struct DelaySlotRow
{
    std::string name;
    unsigned slots = 0;
    unsigned filled = 0;
    double fillPct = 0;
    uint64_t cyclesFilled = 0;   //!< optimizer on
    uint64_t cyclesUnfilled = 0; //!< optimizer off
    double savingPct = 0;
};

std::vector<DelaySlotRow> delaySlots(unsigned jobs = 1);
std::string delaySlotTable(const std::vector<DelaySlotRow> &rows);

// ---- A1: register-window ablation ----------------------------------------------

struct WindowAblationRow
{
    std::string name;
    uint64_t cyclesWith = 0;    //!< 8 windows
    uint64_t cyclesWithout = 0; //!< 2 windows: spill on every call
    double slowdown = 0;
    uint64_t extraMemAccesses = 0;
};

std::vector<WindowAblationRow> windowAblation(unsigned jobs = 1);
std::string windowAblationTable(const std::vector<WindowAblationRow> &rows);

// ---- A2: immediate-field usage ----------------------------------------------------

struct ImmediateRow
{
    std::string name;
    uint64_t shortImmInsts = 0; //!< static insts with imm s2
    uint64_t ldhiInsts = 0;     //!< static LDHI count
    double ldhiPct = 0;         //!< LDHI share of immediate-bearing insts
};

std::vector<ImmediateRow> immediateUsage(unsigned jobs = 1);
std::string immediateUsageTable(const std::vector<ImmediateRow> &rows);

// ---- R1: seeded fault-injection campaign -----------------------------------

/**
 * Outcome class of one injected run, judged against the host oracle
 * (the standard soft-error taxonomy).
 */
enum class FaultOutcome : uint8_t
{
    Masked,       //!< halted with the oracle's result
    Sdc,          //!< halted with a wrong result (silent corruption)
    DetectedTrap, //!< stopped on a precise guest fault
    WatchdogHang, //!< watchdog (or instruction limit) cut a livelock
};

/** Number of FaultOutcome classes. */
constexpr unsigned NumFaultOutcomes = 4;

/** Short name of an outcome class ("masked", "sdc", ...). */
std::string_view faultOutcomeName(FaultOutcome outcome);

/**
 * Number of fault-target classes the injector draws from, indexed by
 * sim::InjectTarget: 0 register file, 1 memory word, 2 fetched
 * instruction (istream).
 */
constexpr unsigned NumFaultTargets = 3;

/** Short name of a fault target ("register", "memory", "istream"). */
std::string_view faultTargetName(unsigned target);

/**
 * Checkpoint/rollback recovery configuration for faultCampaign().
 * When enabled, every injected run snapshots the machine at each
 * multiple of `checkpointInterval` retired instructions; a run that
 * ends in DetectedTrap or WatchdogHang is rolled back to its most
 * recent checkpoint and re-executed (the transient fetch corruption is
 * not re-armed), splitting those classes into recovered (the re-run
 * halts with the oracle result) and unrecovered. Recovery draws no
 * extra randomness and pausing at checkpoints does not perturb the
 * machine, so the base four-class tallies are identical to a
 * non-recovery campaign with the same seed.
 */
struct RecoveryOptions
{
    bool enabled = false;
    uint64_t checkpointInterval = 5000; //!< instructions between snapshots
};

/** Per-workload tallies of one campaign. */
struct FaultCampaignRow
{
    std::string name;
    unsigned injections = 0;
    unsigned byOutcome[NumFaultOutcomes] = {};
    uint64_t baselineInsts = 0; //!< uninjected dynamic length

    // Recovery-mode extras (all zero when recovery is off). Only the
    // detected classes (DetectedTrap, WatchdogHang) can recover; a
    // recovered run still counts in byOutcome under its first
    // classification.
    unsigned recovered[NumFaultOutcomes] = {};
    uint64_t checkpoints = 0;   //!< snapshots taken across all runs
    uint64_t replayedInsts = 0; //!< instructions re-executed after rollback

    // Per-fault-target split of the same tallies, indexed
    // [target][outcome] with target as for faultTargetName(). Summing
    // over targets reproduces byOutcome/recovered exactly; the split
    // feeds the per-target AVF columns (avfReport).
    unsigned byTarget[NumFaultTargets][NumFaultOutcomes] = {};
    unsigned recoveredByTarget[NumFaultTargets][NumFaultOutcomes] = {};

    unsigned
    count(FaultOutcome outcome) const
    {
        return byOutcome[static_cast<unsigned>(outcome)];
    }

    unsigned
    recoveredCount(FaultOutcome outcome) const
    {
        return recovered[static_cast<unsigned>(outcome)];
    }

    /** Runs in a detected (recovery-eligible) class. */
    unsigned
    detectedCount() const
    {
        return count(FaultOutcome::DetectedTrap) +
               count(FaultOutcome::WatchdogHang);
    }

    /** Detected runs whose rollback re-run matched the oracle. */
    unsigned
    recoveredTotal() const
    {
        return recoveredCount(FaultOutcome::DetectedTrap) +
               recoveredCount(FaultOutcome::WatchdogHang);
    }

    /** Injected runs whose flip was drawn for `target`. */
    unsigned
    targetInjections(unsigned target) const
    {
        unsigned sum = 0;
        for (unsigned c = 0; c < NumFaultOutcomes; ++c)
            sum += byTarget[target][c];
        return sum;
    }

    /** Non-masked runs for `target`: the plain AVF numerator. */
    unsigned
    targetVulnerable(unsigned target) const
    {
        return targetInjections(target) -
               byTarget[target][static_cast<unsigned>(
                   FaultOutcome::Masked)];
    }

    /** Recovered detections for `target` (both detected classes). */
    unsigned
    targetRecovered(unsigned target) const
    {
        return recoveredByTarget[target][static_cast<unsigned>(
                   FaultOutcome::DetectedTrap)] +
               recoveredByTarget[target][static_cast<unsigned>(
                   FaultOutcome::WatchdogHang)];
    }
};

/**
 * Run every suite workload `injections` times, each under one seeded
 * single-bit flip (register file / memory word / fetched instruction,
 * uniformly over the run), classify each run, and tally. Every run
 * lands in exactly one class; the whole campaign is a pure function
 * of `seed`. Guests run with a watchdog (a multiple of the baseline
 * cycle count), a 16 MB address limit and no trap vector, so precise
 * faults stop the machine and count as detections. `jobs` parallelizes
 * the workload x injection grid; the tallies are identical for any
 * value because each run's RNG depends only on (seed, workload, run).
 * `streaming` selects the aggregation mode: true streams outcomes into
 * the fixed-size per-workload tallies chunk by chunk (peak memory
 * independent of `injections` — see ParallelRunner::reduceChunked),
 * false materializes the flat outcome vector first. Both modes produce
 * byte-identical rows for a fixed (injections, seed). `recovery`
 * enables checkpoint/rollback re-execution of detected runs (see
 * RecoveryOptions); it changes neither the RNG stream nor the base
 * four-class tallies.
 */
std::vector<FaultCampaignRow> faultCampaign(unsigned injections = 100,
                                            uint64_t seed = 1981,
                                            unsigned jobs = 1,
                                            bool streaming = false,
                                            const RecoveryOptions &recovery =
                                                {});
std::string faultCampaignTable(const std::vector<FaultCampaignRow> &rows,
                               bool recovery = false);

/**
 * One seed-range shard of the campaign: run only the flat grid slots
 * in [first, last) of the `suite.size() * injections` total (slot =
 * workload * injections + run). Every slot's RNG is the same pure
 * function of (seed, workload, run) as in faultCampaign, so summing
 * the rows of any partition of [0, total) — in any order — reproduces
 * the full campaign's tallies exactly; this is the worker entry point
 * of the campaign fleet (core/fleet) and of `bench_fault_campaign
 * --seed-range A:B`. Rows cover the whole suite; workloads with no
 * slot in the range keep zero tallies and a zero baselineInsts (only
 * covered workloads are prepared and baselined).
 */
std::vector<FaultCampaignRow>
faultCampaignRange(unsigned injections, uint64_t seed, uint64_t first,
                   uint64_t last, unsigned jobs = 1,
                   bool streaming = false,
                   const RecoveryOptions &recovery = {});

/** The CpuOptions every campaign guest runs under (16 MB limit, no
 *  trap vector). Its sim::configHash is the configuration component of
 *  the fleet's shard-cache key; the per-workload watchdog budget is
 *  excluded from the hash by construction. */
sim::CpuOptions campaignCpuOptions();

/**
 * Select the execution engine campaignCpuOptions() configures for
 * every subsequent guest (process-wide; default keeps the CpuOptions
 * defaults). Accepts "ref", "threaded", "superblock" or "jit"; false
 * on any other name. The campaign tables are engine-invariant — the
 * flag exists to drive the whole fault/recovery machinery over a
 * specific engine (the JIT's sanitizer smoke test, ablations).
 * Callers offering "jit" should reject unsupported hosts up front
 * (jit::hostSupported()) for a clear error; on such hosts the option
 * is otherwise inert.
 */
bool setCampaignEngine(const std::string &name);

/**
 * Disable (or re-enable) native block-to-block chaining for campaign
 * guests running under `--engine jit` (process-wide; default on, and
 * inert for every other engine). The chained/unchained A/B half of
 * `bench_fault_campaign --jit-no-chain`.
 */
void setCampaignJitChain(bool enabled);

/**
 * Self-contained reproduction of one campaign grid slot — everything
 * an interactive time-travel session (risc1_gdb --replay, via
 * debug/replay.hh) needs: the machine configuration the run used, a
 * serialized snapshot of the state just after the bit flip landed, and
 * the detection point the session should park at.
 */
struct FaultRepro
{
    std::string workload;          //!< suite workload of the slot
    sim::CpuOptions options;       //!< campaign options + watchdog budget
    std::vector<uint8_t> snapshot; //!< serialized post-injection state
    uint64_t snapshotInstructions = 0;
    uint64_t targetInstructions = 0; //!< where the run was detected/ended
    uint32_t targetPc = 0;
    FaultOutcome outcome = FaultOutcome::Masked;
    std::string note; //!< injection + outcome description
};

/**
 * Re-execute one grid slot (slot = workload * injections + run, as in
 * faultCampaignRange) and capture it as a FaultRepro. The injection is
 * re-derived from (seed, workload, run), so the reproduction is exact:
 * the run advances to the injection point, applies the flip, snapshots
 * (for a transient fetch flip, after the corrupted word executes — the
 * armed corruption itself is not snapshot state), then runs on to its
 * classification. `bench_fault_campaign --repro SLOT --repro-out FILE`
 * wraps this into a replay file.
 */
FaultRepro faultCampaignRepro(uint64_t slot, unsigned injections = 100,
                              uint64_t seed = 1981);

// ---- R3: recovery-aware AVF reporting --------------------------------------

/**
 * Per-workload architectural-vulnerability factors split by fault
 * target, derived purely from merged campaign tallies. The plain AVF
 * of a target is the fraction of its injections that changed the
 * program outcome (everything but masked); the recovery-aware AVF
 * additionally weights recovered detections out of the numerator —
 * the figure a checkpoint/rollback deployment actually observes.
 */
struct AvfRow
{
    std::string name;
    unsigned injections[NumFaultTargets] = {};
    unsigned vulnerable[NumFaultTargets] = {}; //!< sdc + trap + hang
    unsigned recovered[NumFaultTargets] = {};  //!< recovered detections

    double
    avf(unsigned target) const
    {
        return injections[target]
                   ? double(vulnerable[target]) / injections[target]
                   : 0.0;
    }

    double
    avfRecovered(unsigned target) const
    {
        return injections[target]
                   ? double(vulnerable[target] - recovered[target]) /
                         injections[target]
                   : 0.0;
    }
};

/** Fold campaign rows into per-workload AVF rows (plus totals row). */
std::vector<AvfRow> avfReport(const std::vector<FaultCampaignRow> &rows);

/**
 * Render the R3 table: one row per workload plus TOTAL, AVF columns
 * per fault target; with `recovery` the recovery-weighted columns are
 * appended.
 */
std::string avfTable(const std::vector<AvfRow> &rows,
                     bool recovery = false);

// ---- R2: checkpoint-interval sweep (recovery rate vs overhead) -----------

/** Aggregate recovery metrics of one campaign at one interval. */
struct RecoverySweepRow
{
    uint64_t interval = 0;    //!< instructions between checkpoints
    unsigned injections = 0;  //!< total injected runs (whole suite)
    unsigned detected = 0;    //!< recovery-eligible (trap + hang)
    unsigned recovered = 0;   //!< rollback re-run matched the oracle
    double recoveryPct = 0;   //!< recovered / detected
    uint64_t checkpoints = 0; //!< snapshots taken (checkpoint overhead)
    uint64_t replayedInsts = 0; //!< re-executed instructions (replay cost)
    double checkpointsPerRun = 0;
    double replayPerDetected = 0;
};

/**
 * Run the recovery campaign once per checkpoint interval and aggregate
 * across the suite: the recovery-rate vs checkpoint-overhead tradeoff.
 * Deterministic in (injections, seed) like the campaign itself; `jobs`
 * parallelizes within each campaign.
 */
std::vector<RecoverySweepRow>
recoverySweep(const std::vector<uint64_t> &intervals = {250, 1000, 4000,
                                                        16000},
              unsigned injections = 40, uint64_t seed = 1981,
              unsigned jobs = 1);
std::string recoverySweepTable(const std::vector<RecoverySweepRow> &rows);

} // namespace risc1::core

#endif // RISC1_CORE_EXPERIMENTS_HH
