#include "core/fleetnet.hh"

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "core/fleet.hh"
#include "net/frame.hh"
#include "net/transport.hh"
#include "sim/serial.hh"
#include "support/logging.hh"

namespace risc1::core {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}

/** Hello payload: role (0 = worker) + the worker's --jobs width. */
std::vector<uint8_t>
encodeHello(uint8_t role, uint32_t jobs)
{
    sim::ByteWriter w;
    w.u8(role);
    w.u32(jobs);
    return w.take();
}

/** Welcome payload: the heartbeat cadence the pool expects, in ms. */
std::vector<uint8_t>
encodeWelcome(uint32_t heartbeat_ms)
{
    sim::ByteWriter w;
    w.u32(heartbeat_ms);
    return w.take();
}

[[noreturn]] void
throwCorruptPayload(const char *what, const sim::ByteStreamTruncated &t)
{
    throw net::FleetProtocolError(
        net::FleetProtocolError::Kind::CorruptFrame,
        strprintf("fleet frame: %s payload truncated at byte %zu",
                  what, t.offset));
}

std::string
payloadString(sim::ByteReader &r)
{
    const uint32_t len = r.u32();
    r.checkCount(len, 1);
    std::string s(len, '\0');
    if (len > 0)
        r.bytes(reinterpret_cast<uint8_t *>(s.data()), len);
    return s;
}

/** SIGPIPE must surface as EPIPE -> TransportError, not kill the
 *  process: one dead peer is one quarantined worker. */
void
ignoreSigpipe()
{
    std::signal(SIGPIPE, SIG_IGN);
}

} // namespace

std::vector<uint8_t>
encodeAssign(const AssignSpec &spec)
{
    sim::ByteWriter w;
    w.u64(spec.token);
    w.u32(spec.injections);
    w.u64(spec.seed);
    w.u64(spec.first);
    w.u64(spec.last);
    w.u8(spec.streaming ? 1 : 0);
    w.u8(spec.recovery.enabled ? 1 : 0);
    w.u64(spec.recovery.checkpointInterval);
    w.u32(spec.jobs);
    w.u32(static_cast<uint32_t>(spec.chaos.size()));
    w.bytes(reinterpret_cast<const uint8_t *>(spec.chaos.data()),
            spec.chaos.size());
    return w.take();
}

AssignSpec
decodeAssign(const std::vector<uint8_t> &payload)
{
    sim::ByteReader r(payload);
    AssignSpec spec;
    try {
        spec.token = r.u64();
        spec.injections = r.u32();
        spec.seed = r.u64();
        spec.first = r.u64();
        spec.last = r.u64();
        spec.streaming = r.u8() != 0;
        spec.recovery.enabled = r.u8() != 0;
        spec.recovery.checkpointInterval = r.u64();
        spec.jobs = r.u32();
        spec.chaos = payloadString(r);
    } catch (const sim::ByteStreamTruncated &t) {
        throwCorruptPayload("Assign", t);
    }
    return spec;
}

// ---- RemotePool ---------------------------------------------------------

struct RemotePool::Impl
{
    struct Session
    {
        uint64_t id = 0;
        std::unique_ptr<net::Channel> channel;
        std::thread thread;

        std::mutex m;
        std::condition_variable cv;
        bool registered = false; //!< passed the worker handshake
        bool busy = false;       //!< shard in flight
        /** Shutdown or quarantine requested. Atomic: the session
         *  thread polls it between waitReadable ticks without the
         *  session mutex. */
        std::atomic<bool> stop{false};
        bool dead = false; //!< session thread has wound down
        AssignSpec job;
        double timeoutSec = 0;
    };

    explicit Impl(const PoolOptions &options)
        : opts(options), listener(options.port)
    {
        ignoreSigpipe();
        acceptThread = std::thread([this] { acceptLoop(); });
    }

    void
    pushEvent(RemoteEvent event)
    {
        std::lock_guard<std::mutex> lock(eventsMutex);
        events.push_back(std::move(event));
    }

    /** Unblock a session blocked in recv/waitReadable. */
    static void
    wake(Session &s)
    {
        if (auto *fd = dynamic_cast<net::FdChannel *>(s.channel.get()))
            ::shutdown(fd->fd(), SHUT_RDWR);
    }

    void
    acceptLoop()
    {
        for (;;) {
            std::unique_ptr<net::Channel> channel;
            try {
                channel = listener.accept();
            } catch (const net::TransportError &err) {
                if (!stopping.load())
                    warn("fleet pool: accept failed: %s", err.what());
                return;
            }
            auto session = std::make_shared<Session>();
            session->id = nextSession++;
            session->channel = std::move(channel);
            {
                std::lock_guard<std::mutex> lock(sessionsMutex);
                if (stopping.load())
                    return;
                sessions.push_back(session);
            }
            session->thread =
                std::thread([this, session] { serve(*session); });
        }
    }

    /**
     * Fail the in-flight job (if any) and wind the session down.
     * Every exit path of serve() funnels through here.
     */
    void
    failSession(Session &s, const std::string &why, bool stalled,
                bool quarantine_worker)
    {
        bool had_job = false;
        AssignSpec job;
        {
            std::lock_guard<std::mutex> lock(s.m);
            had_job = s.busy;
            job = s.job;
            s.busy = false;
            s.stop = true;
        }
        if (quarantine_worker)
            ++quarantinedCount;
        if (stalled)
            ++stallCount;
        if (had_job) {
            RemoteEvent event;
            event.done = false;
            event.token = job.token;
            event.worker = s.id;
            event.error = why;
            event.stalled = stalled;
            event.quarantined = quarantine_worker;
            pushEvent(std::move(event));
        } else if (!why.empty() && !stopping.load()) {
            warn("fleet pool: worker %llu dropped: %s",
                 static_cast<unsigned long long>(s.id), why.c_str());
        }
    }

    void
    serve(Session &s)
    {
        try {
            const auto hello = net::recvFrame(*s.channel);
            if (!hello)
                return markDead(s);
            if (hello->type == net::FrameType::StatusReq) {
                std::vector<uint8_t> text;
                {
                    std::lock_guard<std::mutex> lock(statusMutex);
                    text.assign(statusText.begin(), statusText.end());
                }
                net::sendFrame(*s.channel, net::FrameType::StatusResp,
                               text);
                return markDead(s);
            }
            if (hello->type != net::FrameType::Hello) {
                failSession(s, "first frame was not Hello/StatusReq",
                            false, true);
                return markDead(s);
            }
            net::sendFrame(
                *s.channel, net::FrameType::Welcome,
                encodeWelcome(static_cast<uint32_t>(
                    opts.heartbeatSec * 1000)));
            {
                std::lock_guard<std::mutex> lock(s.m);
                s.registered = true;
            }
            serveJobs(s);
        } catch (const net::FleetProtocolError &err) {
            failSession(s, err.what(), false, true);
        } catch (const net::TransportError &err) {
            failSession(s, err.what(), false, true);
        }
        markDead(s);
    }

    void
    serveJobs(Session &s)
    {
        const double stall_sec =
            std::max(opts.stallFactor * opts.heartbeatSec, 0.25);
        for (;;) {
            AssignSpec job;
            double timeout_sec;
            {
                std::unique_lock<std::mutex> lock(s.m);
                s.cv.wait(lock, [&] { return s.busy || s.stop; });
                if (s.stop) {
                    // Polite shutdown of an idle worker.
                    lock.unlock();
                    try {
                        net::sendFrame(*s.channel, net::FrameType::Bye);
                    } catch (...) {
                    }
                    return;
                }
                job = s.job;
                timeout_sec = s.timeoutSec;
            }
            net::sendFrame(*s.channel, net::FrameType::Assign,
                           encodeAssign(job));

            const Clock::time_point started = Clock::now();
            Clock::time_point last_frame = started;
            for (bool in_flight = true; in_flight;) {
                if (!s.channel->waitReadable(100)) {
                    if (s.stop)
                        return failSession(s, "pool shutting down",
                                           false, false);
                    if (secondsSince(last_frame) > stall_sec)
                        return failSession(
                            s,
                            strprintf("no heartbeat for %.1fs "
                                      "(cadence %.1fs)",
                                      secondsSince(last_frame),
                                      opts.heartbeatSec),
                            true, true);
                    if (secondsSince(started) > timeout_sec)
                        return failSession(
                            s,
                            strprintf("shard exceeded the %.1fs "
                                      "wall-clock budget",
                                      timeout_sec),
                            true, true);
                    continue;
                }
                const auto frame = net::recvFrame(*s.channel);
                if (!frame)
                    return failSession(s,
                                       "worker disconnected mid-shard",
                                       false, true);
                last_frame = Clock::now();
                switch (frame->type) {
                  case net::FrameType::Heartbeat:
                    break;
                  case net::FrameType::ShardDone: {
                      sim::ByteReader r(frame->payload);
                      RemoteEvent event;
                      event.done = true;
                      event.worker = s.id;
                      try {
                          event.token = r.u64();
                      } catch (const sim::ByteStreamTruncated &t) {
                          throwCorruptPayload("ShardDone", t);
                      }
                      event.record.assign(
                          frame->payload.begin() + 8,
                          frame->payload.end());
                      if (event.token != job.token)
                          throw net::FleetProtocolError(
                              net::FleetProtocolError::Kind::
                                  CorruptFrame,
                              strprintf("ShardDone token %llu for "
                                        "assigned token %llu",
                                        static_cast<unsigned long long>(
                                            event.token),
                                        static_cast<unsigned long long>(
                                            job.token)));
                      pushEvent(std::move(event));
                      in_flight = false;
                      break;
                  }
                  case net::FrameType::ShardFail: {
                      sim::ByteReader r(frame->payload);
                      RemoteEvent event;
                      event.done = false;
                      event.worker = s.id;
                      try {
                          event.token = r.u64();
                          event.error = payloadString(r);
                      } catch (const sim::ByteStreamTruncated &t) {
                          throwCorruptPayload("ShardFail", t);
                      }
                      // An honest failure report: the worker stays in
                      // the pool, only the shard is re-queued.
                      pushEvent(std::move(event));
                      in_flight = false;
                      break;
                  }
                  default:
                    throw net::FleetProtocolError(
                        net::FleetProtocolError::Kind::CorruptFrame,
                        strprintf("unexpected frame type %u mid-shard",
                                  static_cast<unsigned>(frame->type)));
                }
            }
            std::lock_guard<std::mutex> lock(s.m);
            s.busy = false;
        }
    }

    void
    markDead(Session &s)
    {
        std::lock_guard<std::mutex> lock(s.m);
        s.dead = true;
    }

    PoolOptions opts;
    net::TcpListener listener;
    std::thread acceptThread;
    std::atomic<bool> stopping{false};
    std::atomic<uint64_t> nextSession{1};
    std::atomic<unsigned> quarantinedCount{0};
    std::atomic<unsigned> stallCount{0};

    mutable std::mutex sessionsMutex;
    std::vector<std::shared_ptr<Session>> sessions;

    std::mutex eventsMutex;
    std::deque<RemoteEvent> events;

    std::mutex statusMutex;
    std::string statusText;
};

RemotePool::RemotePool(const PoolOptions &options)
    : impl_(std::make_unique<Impl>(options))
{}

RemotePool::~RemotePool()
{
    shutdown();
}

uint16_t
RemotePool::port() const
{
    return impl_->listener.port();
}

size_t
RemotePool::connectedWorkers() const
{
    std::lock_guard<std::mutex> lock(impl_->sessionsMutex);
    size_t n = 0;
    for (const auto &session : impl_->sessions) {
        std::lock_guard<std::mutex> slock(session->m);
        n += session->registered && !session->dead && !session->stop;
    }
    return n;
}

bool
RemotePool::assign(const AssignSpec &spec, double timeout_sec)
{
    std::lock_guard<std::mutex> lock(impl_->sessionsMutex);
    for (const auto &session : impl_->sessions) {
        std::lock_guard<std::mutex> slock(session->m);
        if (!session->registered || session->dead || session->stop ||
            session->busy)
            continue;
        session->busy = true;
        session->job = spec;
        session->timeoutSec = timeout_sec;
        session->cv.notify_one();
        return true;
    }
    return false;
}

std::vector<RemoteEvent>
RemotePool::drainEvents()
{
    std::lock_guard<std::mutex> lock(impl_->eventsMutex);
    std::vector<RemoteEvent> drained(impl_->events.begin(),
                                     impl_->events.end());
    impl_->events.clear();
    return drained;
}

void
RemotePool::quarantine(uint64_t worker)
{
    std::lock_guard<std::mutex> lock(impl_->sessionsMutex);
    for (const auto &session : impl_->sessions) {
        std::lock_guard<std::mutex> slock(session->m);
        if (session->id != worker || session->dead || session->stop)
            continue;
        session->stop = true;
        session->cv.notify_one();
        Impl::wake(*session);
        ++impl_->quarantinedCount;
        return;
    }
}

void
RemotePool::setStatusText(const std::string &text)
{
    std::lock_guard<std::mutex> lock(impl_->statusMutex);
    impl_->statusText = text;
}

unsigned
RemotePool::quarantined() const
{
    return impl_->quarantinedCount.load();
}

unsigned
RemotePool::stalls() const
{
    return impl_->stallCount.load();
}

void
RemotePool::shutdown()
{
    if (impl_->stopping.exchange(true))
        return;
    impl_->listener.close();
    if (impl_->acceptThread.joinable())
        impl_->acceptThread.join();

    std::vector<std::shared_ptr<Impl::Session>> sessions;
    {
        std::lock_guard<std::mutex> lock(impl_->sessionsMutex);
        sessions = impl_->sessions;
    }
    for (const auto &session : sessions) {
        {
            std::lock_guard<std::mutex> slock(session->m);
            session->stop = true;
            session->cv.notify_one();
        }
    }
    for (const auto &session : sessions) {
        // Give the session a moment to send its polite Bye before
        // yanking the socket out from under a blocked recv.
        for (int i = 0; i < 20; ++i) {
            {
                std::lock_guard<std::mutex> slock(session->m);
                if (session->dead)
                    break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        {
            std::lock_guard<std::mutex> slock(session->m);
            if (!session->dead)
                Impl::wake(*session);
        }
        if (session->thread.joinable())
            session->thread.join();
    }
    {
        std::lock_guard<std::mutex> lock(impl_->sessionsMutex);
        impl_->sessions.clear();
    }
}

// ---- worker loop --------------------------------------------------------

unsigned
runFleetWorker(const std::string &host, uint16_t port, unsigned jobs)
{
    ignoreSigpipe();
    std::unique_ptr<net::Channel> channel;
    for (int attempt = 0;; ++attempt) {
        try {
            channel = net::connectTcp(host, port);
            break;
        } catch (const net::TransportError &) {
            // The coordinator may still be binding; retry briefly.
            if (attempt >= 50)
                throw;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    }
    net::sendFrame(*channel, net::FrameType::Hello,
                   encodeHello(0, jobs));
    const auto welcome = net::recvFrame(*channel);
    if (!welcome || welcome->type != net::FrameType::Welcome)
        return 0;
    uint32_t heartbeat_ms = 1000;
    {
        sim::ByteReader r(welcome->payload);
        try {
            heartbeat_ms = std::max(r.u32(), 10u);
        } catch (const sim::ByteStreamTruncated &t) {
            throwCorruptPayload("Welcome", t);
        }
    }

    unsigned completed = 0;
    std::mutex send_mutex;
    for (;;) {
        std::optional<net::Frame> frame;
        try {
            frame = net::recvFrame(*channel);
        } catch (const net::FleetProtocolError &err) {
            warn("fleet worker: %s", err.what());
            return completed;
        } catch (const net::TransportError &) {
            // Coordinator yanked the connection (quarantine, crash):
            // the worker just winds down.
            return completed;
        }
        if (!frame || frame->type == net::FrameType::Bye)
            return completed;
        if (frame->type != net::FrameType::Assign)
            continue;
        const AssignSpec spec = decodeAssign(frame->payload);

        // Chaos actions (ctests only; the coordinator only populates
        // them from RISC1_FLEET_CHAOS). "crash" models a worker dying
        // mid-shard; "hang" a livelocked worker that stops
        // heartbeating — the coordinator's stall watchdog must catch
        // it, and the process exits if it ever wakes.
        if (spec.chaos == "crash")
            std::_Exit(42);
        if (spec.chaos == "hang") {
            std::this_thread::sleep_for(std::chrono::seconds(600));
            std::_Exit(42);
        }

        std::atomic<bool> computing{true};
        std::thread heart([&] {
            Clock::time_point last = Clock::now();
            while (computing.load()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                if (!computing.load() ||
                    secondsSince(last) * 1000 < heartbeat_ms)
                    continue;
                last = Clock::now();
                std::lock_guard<std::mutex> lock(send_mutex);
                try {
                    net::sendFrame(*channel,
                                   net::FrameType::Heartbeat);
                } catch (...) {
                    return;
                }
            }
        });

        std::vector<uint8_t> record;
        std::string failure;
        try {
            const std::vector<FaultCampaignRow> rows =
                faultCampaignRange(spec.injections, spec.seed,
                                   spec.first, spec.last,
                                   spec.jobs ? spec.jobs : jobs,
                                   spec.streaming, spec.recovery);
            record = serializeShardRecord(
                shardParams(spec.injections, spec.seed, spec.first,
                            spec.last, spec.recovery),
                rows);
        } catch (const std::exception &err) {
            failure = err.what();
        }
        computing.store(false);
        heart.join();

        std::lock_guard<std::mutex> lock(send_mutex);
        if (!failure.empty()) {
            sim::ByteWriter w;
            w.u64(spec.token);
            w.u32(static_cast<uint32_t>(failure.size()));
            w.bytes(reinterpret_cast<const uint8_t *>(failure.data()),
                    failure.size());
            net::sendFrame(*channel, net::FrameType::ShardFail,
                           w.take());
            continue;
        }
        if (spec.chaos == "corrupt-record") {
            // A structurally intact frame carrying a bit-flipped
            // record: the coordinator's shard-cache validation must
            // reject it and quarantine this worker.
            record[record.size() / 2] ^= 0x01;
        }
        sim::ByteWriter w;
        w.u64(spec.token);
        w.bytes(record.data(), record.size());
        const std::vector<uint8_t> payload = w.take();
        if (spec.chaos == "corrupt-frame") {
            // Corrupt the frame itself after the checksum was
            // computed: the coordinator sees CorruptFrame, not a
            // wrong tally.
            std::vector<uint8_t> raw = net::encodeFrame(
                net::FrameType::ShardDone, payload);
            raw[raw.size() - 9] ^= 0x01;
            channel->send(reinterpret_cast<const char *>(raw.data()),
                          raw.size());
        } else {
            net::sendFrame(*channel, net::FrameType::ShardDone,
                           payload);
            ++completed;
        }
    }
}

// ---- status client ------------------------------------------------------

std::string
fetchFleetStatus(const std::string &host, uint16_t port)
{
    ignoreSigpipe();
    const std::unique_ptr<net::Channel> channel =
        net::connectTcp(host, port);
    net::sendFrame(*channel, net::FrameType::StatusReq);
    const auto resp = net::recvFrame(*channel);
    if (!resp || resp->type != net::FrameType::StatusResp)
        throw net::FleetProtocolError(
            net::FleetProtocolError::Kind::CorruptFrame,
            "fleet status: coordinator closed without a StatusResp");
    return std::string(resp->payload.begin(), resp->payload.end());
}

std::optional<std::pair<std::string, uint16_t>>
parseHostPort(const std::string &text)
{
    std::string host = "127.0.0.1";
    std::string port_text = text;
    const size_t colon = text.rfind(':');
    if (colon != std::string::npos) {
        if (colon > 0)
            host = text.substr(0, colon);
        port_text = text.substr(colon + 1);
    }
    if (port_text.empty())
        return std::nullopt;
    char *end = nullptr;
    const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
    if (*end != '\0' || port == 0 || port > 65535)
        return std::nullopt;
    return std::make_pair(host, static_cast<uint16_t>(port));
}

} // namespace risc1::core
