#include "core/experiments.hh"
#include <algorithm>

#include "core/parallel.hh"
#include "core/table.hh"
#include "isa/registers.hh"
#include "sim/image.hh"
#include "support/logging.hh"

namespace risc1::core {

using workloads::allWorkloads;
using workloads::Workload;

// ---------------------------------------------------------------- E1 ----

std::string
isaTable()
{
    Table table({"#", "Mnemonic", "Format", "Class", "Operation",
                 "Comment"});
    unsigned count = 0;
    const isa::OpInfo *ops = isa::opTable(count);
    for (unsigned i = 0; i < count; ++i) {
        const isa::OpInfo &info = ops[i];
        const char *fmt =
            info.format == isa::Format::LongImm ? "long" : "short";
        const char *cls = "";
        switch (info.opClass) {
          case isa::OpClass::Alu:    cls = "alu"; break;
          case isa::OpClass::Load:   cls = "load"; break;
          case isa::OpClass::Store:  cls = "store"; break;
          case isa::OpClass::Branch: cls = "branch"; break;
          case isa::OpClass::Call:   cls = "call"; break;
          case isa::OpClass::Ret:    cls = "return"; break;
          case isa::OpClass::Misc:   cls = "misc"; break;
        }
        table.row({cell(static_cast<uint64_t>(i + 1)),
                   std::string(info.mnemonic), fmt, cls,
                   std::string(info.operation),
                   std::string(info.comment)});
    }
    std::string out = "Table I: the RISC I instruction set (" +
                      cell(static_cast<uint64_t>(count)) +
                      " instructions)\n" + table.str();
    out += R"(
Instruction formats (every instruction is 32 bits):

  short-immediate:
    31      25 24 23    19 18    14 13 12            0
   +----------+---+--------+--------+--+--------------+
   |  opcode  |scc|  dest  |  rs1   |im|     s2       |
   +----------+---+--------+--------+--+--------------+
   im=0: s2<4:0> names rs2;  im=1: s2 is a signed 13-bit immediate.
   dest carries the condition for JMP; the store datum for ST*.

  long-immediate (JMPR, CALLR, LDHI):
    31      25 24 23    19 18                         0
   +----------+---+--------+---------------------------+
   |  opcode  |scc|  dest  |            Y              |
   +----------+---+--------+---------------------------+
   Y: signed 19-bit PC-relative byte offset (LDHI: rd<31:13> value).
)";
    return out;
}

// ---------------------------------------------------------------- E2 ----

std::string
windowGeometryReport(unsigned nwindows)
{
    isa::WindowSpec spec;
    spec.numWindows = nwindows;

    std::string out = strprintf(
        "Overlapped register windows: %u windows, %u globals, %u "
        "registers per window, %u physical registers\n\n",
        nwindows, isa::NumGlobals, isa::RegsPerWindow, spec.physCount());
    out += "Visible mapping per window (phys indices):\n";
    Table table({"window", "HIGH r26-r31", "LOCAL r16-r25",
                 "LOW r10-r15"});
    for (unsigned w = 0; w < nwindows; ++w) {
        auto range = [&](unsigned lo, unsigned hi) {
            return strprintf("%u..%u", spec.physIndex(w, lo),
                             spec.physIndex(w, hi));
        };
        table.row({cell(static_cast<uint64_t>(w)),
                   range(isa::HighBase, 31),
                   range(isa::LocalBase, isa::HighBase - 1),
                   range(isa::LowBase, isa::LocalBase - 1)});
    }
    out += table.str();
    out += "\nInvariant: LOW of window w+1 (the caller) is HIGH of "
           "window w — parameters pass with no copying.\n";
    return out;
}

// ---------------------------------------------------------------- E3 ----

namespace {

/** RISC call microbenchmark: `iters` calls of a k-arg summing leaf. */
std::string
riscCallMicroSource(unsigned nargs, unsigned iters, bool with_call)
{
    std::string body;
    for (unsigned a = 0; a < nargs; ++a)
        body += strprintf("        mov   %u, r%u\n", a + 1, 10 + a);
    if (with_call)
        body += "        call  leaf\n";

    std::string leaf = "leaf:   clr   r26\n";
    // Re-sum the incoming arguments so they are genuinely used.
    std::string sum;
    for (unsigned a = 0; a < nargs; ++a)
        sum += strprintf("        add   r26, r%u, r26\n", 26 + a);
    // The first add above reads r26 both as acc and arg; start acc in a
    // local instead to keep the sum exact.
    leaf = "leaf:   clr   r16\n";
    for (unsigned a = 0; a < nargs; ++a)
        leaf += strprintf("        add   r16, r%u, r16\n", 26 + a);
    leaf += "        mov   r16, r26\n";
    leaf += "        ret\n";

    return strprintf(R"(
        .equ RESULT, %u
_start: mov   %u, r17
        clr   r18
loop:   cmp   r18, r17
        bge   done
%s        add   r18, 1, r18
        b     loop
done:   stl   r10, (r0)RESULT
        halt
%s)",
                     workloads::ResultAddr, iters, body.c_str(),
                     with_call ? leaf.c_str() : "");
}

/** vax80 call microbenchmark matching the RISC one. */
vax::VaxProgram
vaxCallMicro(unsigned nargs, unsigned iters, bool with_call)
{
    using namespace risc1::vax;
    VaxAsm a;
    a.label("main");
    a.inst(VaxOp::Movl, {vimm(iters), vreg(6)});
    a.inst(VaxOp::Clrl, {vreg(7)});
    a.label("loop");
    a.inst(VaxOp::Cmpl, {vreg(7), vreg(6)});
    a.br(VaxOp::Bgeq, "done");
    if (with_call) {
        for (unsigned arg = nargs; arg-- > 0;)
            a.inst(VaxOp::Pushl, {vlit(arg + 1)});
        a.calls(nargs, "leaf");
    }
    a.inst(VaxOp::Incl, {vreg(7)});
    a.br(VaxOp::Brb, "loop");
    a.label("done");
    a.inst(VaxOp::Movl, {vreg(0), vabs(workloads::ResultAddr)});
    a.halt();
    if (with_call) {
        // A compiler would allocate the accumulator + a scratch: save
        // two registers, the era's typical leaf cost.
        a.entry("leaf", 0x000c);
        a.inst(VaxOp::Clrl, {vreg(2)});
        for (unsigned arg = 0; arg < nargs; ++arg)
            a.inst(VaxOp::Addl2,
                   {vdisp(AP, static_cast<int32_t>(4 * arg)), vreg(2)});
        a.inst(VaxOp::Movl, {vreg(2), vreg(0)});
        a.ret();
    }
    return a.finish();
}

} // namespace

std::vector<CallOverheadRow>
callOverhead(unsigned max_args, unsigned iters, unsigned jobs)
{
    return ParallelRunner(jobs).map<CallOverheadRow>(
        max_args + 1, [&](size_t slot) {
        const unsigned nargs = static_cast<unsigned>(slot);
        CallOverheadRow row;
        row.nargs = nargs;

        // RISC I: with-call minus without-call, per iteration.
        auto risc_run = [&](bool with_call) {
            assembler::AsmResult res = assembler::assemble(
                riscCallMicroSource(nargs, iters, with_call));
            if (!res.ok())
                fatal("call micro failed to assemble:\n%s",
                      res.errorText().c_str());
            sim::Cpu cpu;
            cpu.load(res.program);
            sim::ExecResult exec = cpu.run();
            if (!exec.halted())
                fatal("call micro did not halt: %s",
                      exec.message.c_str());
            return cpu.stats();
        };
        const sim::SimStats risc_with = risc_run(true);
        const sim::SimStats risc_without = risc_run(false);
        row.riscCyclesPerCall =
            static_cast<double>(risc_with.cycles - risc_without.cycles) /
            iters;
        const uint64_t risc_mem_with = risc_with.memory.dataReads +
                                       risc_with.memory.dataWrites;
        const uint64_t risc_mem_without =
            risc_without.memory.dataReads + risc_without.memory.dataWrites;
        row.riscMemPerCall =
            static_cast<double>(risc_mem_with - risc_mem_without) / iters;

        auto vax_run = [&](bool with_call) {
            vax::VaxCpu cpu;
            cpu.load(vaxCallMicro(nargs, iters, with_call));
            sim::ExecResult exec = cpu.run();
            if (!exec.halted())
                fatal("vax call micro did not halt: %s",
                      exec.message.c_str());
            return cpu.stats();
        };
        const vax::VaxStats vax_with = vax_run(true);
        const vax::VaxStats vax_without = vax_run(false);
        row.vaxCyclesPerCall =
            static_cast<double>(vax_with.cycles - vax_without.cycles) /
            iters;
        const uint64_t vax_mem_with = vax_with.memory.dataReads +
                                      vax_with.memory.dataWrites;
        const uint64_t vax_mem_without =
            vax_without.memory.dataReads + vax_without.memory.dataWrites;
        row.vaxMemPerCall =
            static_cast<double>(vax_mem_with - vax_mem_without) / iters;

        return row;
    });
}

std::string
callOverheadTable(const std::vector<CallOverheadRow> &rows)
{
    Table table({"args", "RISC cyc/call", "vax80 cyc/call",
                 "RISC mem/call", "vax80 mem/call", "cyc ratio"});
    for (const CallOverheadRow &row : rows) {
        table.row({cell(static_cast<uint64_t>(row.nargs)),
                   cell(row.riscCyclesPerCall),
                   cell(row.vaxCyclesPerCall), cell(row.riscMemPerCall),
                   cell(row.vaxMemPerCall),
                   cell(row.riscCyclesPerCall > 0
                            ? row.vaxCyclesPerCall / row.riscCyclesPerCall
                            : 0)});
    }
    return "E3: procedure call + return cost (argument setup, call, "
           "body, return; loop overhead subtracted)\n" +
           table.str();
}

// ---------------------------------------------------------------- E4 ----

std::vector<CodeSizeRow>
codeSize(unsigned jobs)
{
    const std::vector<Workload> &suite = allWorkloads();
    return ParallelRunner(jobs).map<CodeSizeRow>(
        suite.size(), [&](size_t slot) {
        const Workload &wl = suite[slot];
        CodeSizeRow row;
        row.name = wl.name;
        assembler::AsmResult res = assembler::assemble(
            wl.riscSource(wl.defaultScale));
        if (!res.ok())
            fatal("%s failed to assemble:\n%s", wl.name.c_str(),
                  res.errorText().c_str());
        row.riscBytes = res.program.codeBytes();
        row.vaxBytes = wl.buildVax(wl.defaultScale).codeBytes;
        row.riscOverVax = static_cast<double>(row.riscBytes) /
                          static_cast<double>(row.vaxBytes);
        return row;
    });
}

std::string
codeSizeTable(const std::vector<CodeSizeRow> &rows)
{
    Table table({"program", "RISC I bytes", "vax80 bytes",
                 "RISC/vax80"});
    double sum_ratio = 0;
    for (const CodeSizeRow &row : rows) {
        table.row({row.name, cell(static_cast<uint64_t>(row.riscBytes)),
                   cell(static_cast<uint64_t>(row.vaxBytes)),
                   cell(row.riscOverVax)});
        sum_ratio += row.riscOverVax;
    }
    table.row({"geo/avg", "", "",
               cell(rows.empty() ? 0 : sum_ratio / rows.size())});
    return "E4: static code size (instruction bytes; data excluded)\n" +
           table.str();
}

// ---------------------------------------------------------------- E5 ----

std::vector<ExecTimeRow>
execTime(unsigned jobs)
{
    const std::vector<Workload> &suite = allWorkloads();
    return ParallelRunner(jobs).map<ExecTimeRow>(
        suite.size(), [&](size_t slot) {
        const Workload &wl = suite[slot];
        ExecTimeRow row;
        row.name = wl.name;
        RiscRun risc = runRisc(wl, wl.defaultScale);
        VaxRun vaxr = runVax(wl, wl.defaultScale);
        row.resultsMatch = risc.ok && vaxr.ok;
        row.riscInsts = risc.stats.instructions;
        row.riscCycles = risc.stats.cycles;
        row.vaxInsts = vaxr.stats.instructions;
        row.vaxCycles = vaxr.stats.cycles;
        row.riscUs = risc.stats.timeUs(sim::TimingModel{}.cycleTimeNs);
        row.vaxUs = vaxr.stats.timeUs(vax::VaxTiming{}.cycleTimeNs);
        row.speedup = row.riscUs > 0 ? row.vaxUs / row.riscUs : 0;
        return row;
    });
}

std::string
execTimeTable(const std::vector<ExecTimeRow> &rows)
{
    Table table({"program", "ok", "RISC insts", "RISC cyc", "vax insts",
                 "vax cyc", "RISC us", "vax us", "speedup"});
    for (const ExecTimeRow &row : rows) {
        table.row({row.name, row.resultsMatch ? "y" : "N",
                   cell(row.riscInsts), cell(row.riscCycles),
                   cell(row.vaxInsts), cell(row.vaxCycles),
                   cell(row.riscUs, 1), cell(row.vaxUs, 1),
                   cell(row.speedup)});
    }
    return "E5: execution time (RISC I at 400 ns/cycle vs vax80 at "
           "200 ns/cycle, per the paper's machine assumptions)\n" +
           table.str();
}

// ---------------------------------------------------------------- E6 ----

std::vector<WindowSweepRow>
windowSweep(const std::vector<unsigned> &window_counts, unsigned jobs)
{
    // Each recursive workload is assembled once into a shared image;
    // every window count then attaches it copy-on-write instead of
    // re-assembling and re-loading the same program per sweep point.
    std::vector<const Workload *> recursive;
    for (const Workload &wl : allWorkloads())
        if (wl.recursive)
            recursive.push_back(&wl);
    std::vector<sim::ProgramImage> images;
    images.reserve(recursive.size());
    for (const Workload *wl : recursive)
        images.emplace_back(workloads::buildRisc(*wl, wl->defaultScale));

    return ParallelRunner(jobs).map<WindowSweepRow>(
        window_counts.size(), [&](size_t slot) {
        const unsigned nwin = window_counts[slot];
        WindowSweepRow row;
        row.windows = nwin;
        uint64_t trap_cycles = 0;
        for (size_t w = 0; w < recursive.size(); ++w) {
            const Workload &wl = *recursive[w];
            sim::CpuOptions opts;
            opts.windows.numWindows = nwin;
            sim::Cpu cpu(opts);
            cpu.load(images[w]);
            const sim::ExecResult exec = cpu.run();
            if (!exec.halted() ||
                cpu.memory().peek32(workloads::ResultAddr) !=
                    wl.expected(wl.defaultScale))
                fatal("window sweep: %s failed at %u windows",
                      wl.name.c_str(), nwin);
            const sim::SimStats &stats = cpu.stats();
            row.calls += stats.calls;
            row.overflows += stats.windowOverflows;
            row.cycles += stats.cycles;
            const sim::TimingModel &timing = opts.timing;
            trap_cycles += stats.windowOverflows *
                               timing.overflowCycles() +
                           stats.windowUnderflows *
                               timing.underflowCycles();
        }
        row.overflowPct = row.calls
                              ? 100.0 * static_cast<double>(row.overflows) /
                                    static_cast<double>(row.calls)
                              : 0;
        row.trapCyclePct = row.cycles
                               ? 100.0 * static_cast<double>(trap_cycles) /
                                     static_cast<double>(row.cycles)
                               : 0;
        return row;
    });
}

std::string
windowSweepTable(const std::vector<WindowSweepRow> &rows)
{
    Table table({"windows", "calls", "overflows", "overflow %",
                 "cycles", "trap cycle %"});
    for (const WindowSweepRow &row : rows) {
        table.row({cell(static_cast<uint64_t>(row.windows)),
                   cell(row.calls), cell(row.overflows),
                   cell(row.overflowPct), cell(row.cycles),
                   cell(row.trapCyclePct)});
    }
    return "E6: window overflow vs window count (recursive suite "
           "aggregate)\n" +
           table.str();
}

// ---------------------------------------------------------------- E7 ----

std::vector<MemTrafficRow>
memTraffic(unsigned jobs)
{
    const std::vector<Workload> &suite = allWorkloads();
    return ParallelRunner(jobs).map<MemTrafficRow>(
        suite.size(), [&](size_t slot) {
        const Workload &wl = suite[slot];
        MemTrafficRow row;
        row.name = wl.name;
        RiscRun risc = runRisc(wl, wl.defaultScale);
        VaxRun vaxr = runVax(wl, wl.defaultScale);
        row.riscDataAccesses = risc.stats.memory.dataReads +
                               risc.stats.memory.dataWrites;
        row.riscTotalAccesses = risc.stats.memory.totalAccesses();
        row.vaxDataAccesses = vaxr.stats.memory.dataReads +
                              vaxr.stats.memory.dataWrites;
        row.vaxTotalAccesses = vaxr.stats.memory.totalAccesses();
        row.dataRatio =
            row.riscDataAccesses
                ? static_cast<double>(row.vaxDataAccesses) /
                      static_cast<double>(row.riscDataAccesses)
                : 0;
        row.totalRatio =
            row.riscTotalAccesses
                ? static_cast<double>(row.vaxTotalAccesses) /
                      static_cast<double>(row.riscTotalAccesses)
                : 0;
        return row;
    });
}

std::string
memTrafficTable(const std::vector<MemTrafficRow> &rows)
{
    Table table({"program", "RISC data", "RISC total", "vax data",
                 "vax total", "data ratio", "total ratio"});
    for (const MemTrafficRow &row : rows) {
        table.row({row.name, cell(row.riscDataAccesses),
                   cell(row.riscTotalAccesses),
                   cell(row.vaxDataAccesses), cell(row.vaxTotalAccesses),
                   cell(row.dataRatio), cell(row.totalRatio)});
    }
    return "E7: memory traffic (accesses; total includes instruction "
           "fetches)\n" +
           table.str();
}

// ---------------------------------------------------------------- E8 ----

std::vector<InstrMixRow>
instrMix(unsigned jobs)
{
    const std::vector<Workload> &suite = allWorkloads();
    return ParallelRunner(jobs).map<InstrMixRow>(
        suite.size(), [&](size_t slot) {
        const Workload &wl = suite[slot];
        InstrMixRow row;
        row.name = wl.name;
        RiscRun run = runRisc(wl, wl.defaultScale);
        const double total =
            static_cast<double>(run.stats.instructions);
        auto pct = [&](isa::OpClass cls) {
            return 100.0 *
                   static_cast<double>(run.stats.classCount(cls)) / total;
        };
        row.aluPct = pct(isa::OpClass::Alu);
        row.loadPct = pct(isa::OpClass::Load);
        row.storePct = pct(isa::OpClass::Store);
        row.branchPct = pct(isa::OpClass::Branch);
        row.callRetPct = pct(isa::OpClass::Call) +
                         pct(isa::OpClass::Ret);
        row.miscPct = pct(isa::OpClass::Misc);
        row.nopPct = 100.0 *
                     static_cast<double>(run.stats.nopsExecuted) / total;
        return row;
    });
}

std::string
instrMixTable(const std::vector<InstrMixRow> &rows)
{
    Table table({"program", "alu %", "load %", "store %", "branch %",
                 "call+ret %", "misc %", "(nop %)"});
    for (const InstrMixRow &row : rows) {
        table.row({row.name, cell(row.aluPct, 1), cell(row.loadPct, 1),
                   cell(row.storePct, 1), cell(row.branchPct, 1),
                   cell(row.callRetPct, 1), cell(row.miscPct, 1),
                   cell(row.nopPct, 1)});
    }
    return "E8: dynamic instruction mix on RISC I\n" + table.str();
}

std::vector<OpcodeFreqRow>
opcodeFrequencies(unsigned jobs)
{
    const std::vector<Workload> &suite = allWorkloads();
    // Run the suite in parallel, streaming each workload's counts into
    // the shared totals in workload order (reduceChunked consumes in
    // index order), so the totals — and any sort ties — never depend
    // on scheduling and only one chunk of per-workload maps is ever
    // live at once.
    std::map<isa::Opcode, uint64_t> totals;
    uint64_t grand = 0;
    ParallelRunner(jobs).reduceChunked<std::map<isa::Opcode, uint64_t>>(
        suite.size(),
        [&](size_t slot) {
            RiscRun run = runRisc(suite[slot],
                                  suite[slot].defaultScale);
            return run.stats.perOpcode;
        },
        [&](size_t, const std::map<isa::Opcode, uint64_t> &per_workload) {
            for (const auto &[op, count] : per_workload) {
                totals[op] += count;
                grand += count;
            }
        });
    std::vector<OpcodeFreqRow> rows;
    for (const auto &[op, count] : totals) {
        OpcodeFreqRow row;
        row.mnemonic = std::string(isa::opInfo(op).mnemonic);
        row.count = count;
        row.pct = 100.0 * static_cast<double>(count) /
                  static_cast<double>(grand);
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const OpcodeFreqRow &a, const OpcodeFreqRow &b) {
                  return a.count > b.count;
              });
    return rows;
}

std::string
opcodeFrequencyTable(const std::vector<OpcodeFreqRow> &rows)
{
    Table table({"mnemonic", "executions", "%"});
    for (const OpcodeFreqRow &row : rows)
        table.row({row.mnemonic, cell(row.count), cell(row.pct, 2)});
    return "E8 (detail): dynamic opcode frequencies, whole suite\n" +
           table.str();
}

// ---------------------------------------------------------------- E9 ----

std::vector<DelaySlotRow>
delaySlots(unsigned jobs)
{
    const std::vector<Workload> &suite = allWorkloads();
    return ParallelRunner(jobs).map<DelaySlotRow>(
        suite.size(), [&](size_t slot) {
        const Workload &wl = suite[slot];
        DelaySlotRow row;
        row.name = wl.name;

        RiscRun filled = runRisc(wl, wl.defaultScale);
        assembler::AsmOptions no_fill;
        no_fill.fillDelaySlots = false;
        RiscRun unfilled = runRisc(wl, wl.defaultScale, {}, no_fill);
        if (!filled.ok || !unfilled.ok)
            fatal("delay-slot experiment: %s failed", wl.name.c_str());

        row.slots = filled.slots.totalSlots;
        row.filled = filled.slots.filledSlots;
        row.fillPct = 100.0 * filled.slots.fillRate();
        row.cyclesFilled = filled.stats.cycles;
        row.cyclesUnfilled = unfilled.stats.cycles;
        row.savingPct =
            row.cyclesUnfilled
                ? 100.0 *
                      static_cast<double>(row.cyclesUnfilled -
                                          row.cyclesFilled) /
                      static_cast<double>(row.cyclesUnfilled)
                : 0;
        return row;
    });
}

std::string
delaySlotTable(const std::vector<DelaySlotRow> &rows)
{
    Table table({"program", "slots", "filled", "fill %", "cyc filled",
                 "cyc unfilled", "saving %"});
    for (const DelaySlotRow &row : rows) {
        table.row({row.name, cell(static_cast<uint64_t>(row.slots)),
                   cell(static_cast<uint64_t>(row.filled)),
                   cell(row.fillPct, 1), cell(row.cyclesFilled),
                   cell(row.cyclesUnfilled), cell(row.savingPct, 1)});
    }
    return "E9: delayed-branch slot filling (optimizer on vs off)\n" +
           table.str();
}

// ---------------------------------------------------------------- A1 ----

std::vector<WindowAblationRow>
windowAblation(unsigned jobs)
{
    std::vector<const Workload *> recursive;
    for (const Workload &wl : allWorkloads())
        if (wl.recursive)
            recursive.push_back(&wl);
    return ParallelRunner(jobs).map<WindowAblationRow>(
        recursive.size(), [&](size_t slot) {
        const Workload &wl = *recursive[slot];
        WindowAblationRow row;
        row.name = wl.name;
        // One shared image feeds both configurations.
        const sim::ProgramImage image(
            workloads::buildRisc(wl, wl.defaultScale));
        auto run_image = [&](const sim::CpuOptions &opts) {
            sim::Cpu cpu(opts);
            cpu.load(image);
            const sim::ExecResult exec = cpu.run();
            if (!exec.halted() ||
                cpu.memory().peek32(workloads::ResultAddr) !=
                    wl.expected(wl.defaultScale))
                fatal("window ablation: %s failed", wl.name.c_str());
            return cpu.stats();
        };
        const sim::SimStats with = run_image({});
        sim::CpuOptions degenerate;
        degenerate.windows.numWindows = 2; // spill on every call
        const sim::SimStats without = run_image(degenerate);
        row.cyclesWith = with.cycles;
        row.cyclesWithout = without.cycles;
        row.slowdown = static_cast<double>(row.cyclesWithout) /
                       static_cast<double>(row.cyclesWith);
        const uint64_t mem_with = with.memory.dataReads +
                                  with.memory.dataWrites;
        const uint64_t mem_without = without.memory.dataReads +
                                     without.memory.dataWrites;
        row.extraMemAccesses = mem_without - mem_with;
        return row;
    });
}

std::string
windowAblationTable(const std::vector<WindowAblationRow> &rows)
{
    Table table({"program", "cyc (8 win)", "cyc (no win)", "slowdown",
                 "extra mem accesses"});
    for (const WindowAblationRow &row : rows) {
        table.row({row.name, cell(row.cyclesWith),
                   cell(row.cyclesWithout), cell(row.slowdown),
                   cell(row.extraMemAccesses)});
    }
    return "A1: register-window ablation (2-window file spills on "
           "every call, approximating a windowless machine)\n" +
           table.str();
}

// ---------------------------------------------------------------- A2 ----

std::vector<ImmediateRow>
immediateUsage(unsigned jobs)
{
    const std::vector<Workload> &suite = allWorkloads();
    return ParallelRunner(jobs).map<ImmediateRow>(
        suite.size(), [&](size_t slot) {
        const Workload &wl = suite[slot];
        ImmediateRow row;
        row.name = wl.name;
        assembler::AsmResult res = assembler::assemble(
            wl.riscSource(wl.defaultScale));
        if (!res.ok())
            fatal("%s failed to assemble", wl.name.c_str());
        // Walk the image decoding instructions (srcLines marks them).
        for (const auto &[addr, line] : res.program.srcLines) {
            (void)line;
            const uint32_t word = *res.program.wordAt(addr);
            const isa::DecodeResult dec = isa::decode(word);
            if (!dec.ok)
                continue;
            if (dec.inst.op == isa::Opcode::Ldhi) {
                ++row.ldhiInsts;
            } else if (dec.inst.info().format == isa::Format::ShortImm &&
                       dec.inst.imm && dec.inst.info().usesS2) {
                ++row.shortImmInsts;
            }
        }
        const uint64_t imm_total = row.shortImmInsts + row.ldhiInsts;
        row.ldhiPct = imm_total ? 100.0 *
                                      static_cast<double>(row.ldhiInsts) /
                                      static_cast<double>(imm_total)
                                : 0;
        return row;
    });
}

std::string
immediateUsageTable(const std::vector<ImmediateRow> &rows)
{
    Table table({"program", "simm13 insts", "ldhi insts", "ldhi %"});
    for (const ImmediateRow &row : rows) {
        table.row({row.name, cell(row.shortImmInsts),
                   cell(row.ldhiInsts), cell(row.ldhiPct, 1)});
    }
    return "A2: constant synthesis — 13-bit immediates cover almost "
           "all constants; LDHI pairs are rare\n" +
           table.str();
}

} // namespace risc1::core
