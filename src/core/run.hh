/**
 * @file
 * Uniform "load, run, collect" helpers over both machines, used by the
 * experiment drivers, benches and examples.
 */

#ifndef RISC1_CORE_RUN_HH
#define RISC1_CORE_RUN_HH

#include <cstdint>

#include "sim/cpu.hh"
#include "vax/cpu.hh"
#include "workloads/workload.hh"

namespace risc1::core {

/** Outcome of one RISC I workload run. */
struct RiscRun
{
    sim::ExecResult exec;
    sim::SimStats stats;
    assembler::SlotStats slots;
    uint32_t result = 0;     //!< word at ResultAddr
    uint32_t codeBytes = 0;  //!< static instruction bytes
    uint32_t totalBytes = 0; //!< code + data image size
    bool ok = false;         //!< halted cleanly with the oracle's result
};

/** Outcome of one vax80 workload run. */
struct VaxRun
{
    sim::ExecResult exec;
    vax::VaxStats stats;
    uint32_t result = 0;
    uint32_t codeBytes = 0;
    uint32_t totalBytes = 0;
    bool ok = false;
};

/** Assemble and run a workload on RISC I. */
RiscRun runRisc(const workloads::Workload &wl, uint64_t scale,
                const sim::CpuOptions &cpu_opts = {},
                const assembler::AsmOptions &asm_opts = {});

/** Build and run a workload on vax80. */
VaxRun runVax(const workloads::Workload &wl, uint64_t scale,
              const vax::VaxCpuOptions &cpu_opts = {});

} // namespace risc1::core

#endif // RISC1_CORE_RUN_HH
