#include "core/table.hh"

#include <algorithm>
#include <cctype>
#include <ostream>

#include "support/logging.hh"

namespace risc1::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
Table::row(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table::row: %zu cells for %zu headers", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

namespace {

/** Numeric-looking cells get right-aligned. */
bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != 'x' && c != 'e')
            return false;
    }
    return true;
}

} // namespace

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t c = 0; c < cells.size(); ++c) {
            const size_t pad = widths[c] - cells[c].size();
            if (looksNumeric(cells[c]))
                line += std::string(pad, ' ') + cells[c];
            else
                line += cells[c] + std::string(pad, ' ');
            if (c + 1 < cells.size())
                line += "  ";
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-') + "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

void
Table::print(std::ostream &os) const
{
    os << str();
}

std::string
cell(double value, int precision)
{
    return strprintf("%.*f", precision, value);
}

std::string
cell(uint64_t value)
{
    return strprintf("%llu", static_cast<unsigned long long>(value));
}

} // namespace risc1::core
