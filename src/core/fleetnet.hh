/**
 * @file
 * The distributed side of the campaign fleet: a coordinator-side pool
 * of remote TCP workers (RemotePool), the worker loop that serves it
 * (runFleetWorker), and the live status endpoint, all speaking the
 * framed, versioned fleet protocol (net/frame.hh) over the shared
 * net/transport layer.
 *
 * Division of labour with core/fleet: the coordinator loop in
 * runFleet()/runFleets() owns shard scheduling, retry/backoff and
 * merging; RemotePool owns connections. Each connected worker gets a
 * dedicated session thread that sends Assign frames, counts
 * Heartbeat frames while the worker computes, and enforces two
 * watchdogs — a heartbeat-stall window (no frame for a multiple of the
 * advertised cadence) and a wall-clock shard timeout. Results and
 * failures surface to the coordinator as RemoteEvents; the shard
 * record inside a ShardDone frame is the durable cache record
 * *verbatim* (keyed + checksummed), so the coordinator validates it
 * with exactly the machinery it uses for warm cache entries, and a
 * worker built from skewed sources is caught by a key mismatch.
 *
 * Failure policy: every typed protocol failure (FleetProtocolError —
 * version skew, corrupt frame, truncated stream), transport error,
 * disconnect, heartbeat stall, or shard timeout quarantines *that
 * worker* (its session dies, its shard is re-queued by the
 * coordinator); nothing a single worker does can kill the campaign. A
 * worker that reports ShardFail honestly stays in the pool — its
 * build is healthy, only the shard failed.
 */

#ifndef RISC1_CORE_FLEETNET_HH
#define RISC1_CORE_FLEETNET_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiments.hh"

namespace risc1::core {

/** Everything a remote worker needs to compute one shard. */
struct AssignSpec
{
    uint64_t token = 0; //!< coordinator-side shard identity, echoed back
    unsigned injections = 0;
    uint64_t seed = 0;
    uint64_t first = 0; //!< flat grid slot range [first, last)
    uint64_t last = 0;
    bool streaming = false;
    RecoveryOptions recovery;
    unsigned jobs = 1; //!< ParallelRunner width inside the worker
    /** Chaos action for the fleet ctests ("crash", "hang",
     *  "corrupt-frame", "corrupt-record"); empty in real campaigns. */
    std::string chaos;
};

/** AssignSpec <-> Assign-frame payload (exposed for tests). */
std::vector<uint8_t> encodeAssign(const AssignSpec &spec);
AssignSpec decodeAssign(const std::vector<uint8_t> &payload);

/** What one remote worker did with one assigned shard. */
struct RemoteEvent
{
    bool done = false;   //!< true: record valid to parse; false: failed
    uint64_t token = 0;  //!< the AssignSpec token
    uint64_t worker = 0; //!< session id, for RemotePool::quarantine()
    std::vector<uint8_t> record; //!< ShardDone: the cache record verbatim
    std::string error;           //!< failure description
    bool stalled = false;        //!< heartbeat stall or shard timeout
    bool quarantined = false;    //!< the worker was removed from the pool
};

/** Configuration of a RemotePool. */
struct PoolOptions
{
    uint16_t port = 0;        //!< 0 picks an ephemeral port
    double heartbeatSec = 1.0; //!< cadence advertised to workers
    /**
     * A worker is declared stalled when no frame (heartbeat or
     * otherwise) arrives for stallFactor x heartbeatSec while a shard
     * is in flight. 4 tolerates scheduler jitter without letting a
     * hung worker hold a shard hostage for long.
     */
    double stallFactor = 4.0;
};

/**
 * A listening pool of remote campaign workers plus the status
 * endpoint, shared by every campaign the coordinator runs (see
 * runFleets for multi-tenant scheduling). Thread-safe; all methods may
 * be called from the coordinator loop while session threads run.
 */
class RemotePool
{
  public:
    explicit RemotePool(const PoolOptions &options = {});
    ~RemotePool();

    RemotePool(const RemotePool &) = delete;
    RemotePool &operator=(const RemotePool &) = delete;

    /** The bound TCP port (workers connect to 127.0.0.1:port()). */
    uint16_t port() const;

    /** Live, handshaken, non-quarantined workers. */
    size_t connectedWorkers() const;

    /**
     * Hand a shard to an idle worker. Returns false when every worker
     * is busy, dead, or not yet handshaken — the coordinator keeps the
     * shard pending and retries on the next loop tick. timeout_sec is
     * the wall-clock budget for this shard on this worker.
     */
    bool assign(const AssignSpec &spec, double timeout_sec);

    /** Collect completed/failed shard events since the last drain. */
    std::vector<RemoteEvent> drainEvents();

    /**
     * Remove a worker whose *results* proved untrustworthy (e.g. a
     * record that fails shard-cache validation: a build-skewed or
     * corrupting worker). Protocol/transport failures quarantine
     * automatically; this is the coordinator's hook for content-level
     * rejection.
     */
    void quarantine(uint64_t worker);

    /** Publish the text served to StatusReq clients (endpoint is live
     *  from construction; empty text reads "no status yet"). */
    void setStatusText(const std::string &text);

    /** Workers removed for cause (protocol, stall, quarantine()). */
    unsigned quarantined() const;
    /** Heartbeat-stall / shard-timeout detections. */
    unsigned stalls() const;

    /** Bye idle workers, drop connections, join every thread.
     *  Idempotent; the destructor calls it. */
    void shutdown();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * The worker loop: connect to a coordinator (with a short connect
 * retry window, so workers may start before it binds), handshake, then
 * serve Assign frames — compute the shard with faultCampaignRange,
 * heartbeat from a side thread while computing, and return the
 * serialized shard record verbatim in a ShardDone frame — until Bye or
 * disconnect. Returns the number of shards completed. `jobs` is the
 * default ParallelRunner width when an Assign does not set one.
 */
unsigned runFleetWorker(const std::string &host, uint16_t port,
                        unsigned jobs = 1);

/**
 * Status client: fetch the coordinator's live status text (per
 * campaign: shards merged/total and the current merged tally table).
 * Throws TransportError / FleetProtocolError on failure.
 */
std::string fetchFleetStatus(const std::string &host, uint16_t port);

/**
 * Parse "HOST:PORT", ":PORT" or "PORT" (host defaults to 127.0.0.1).
 * nullopt on malformed input or a port outside [1, 65535].
 */
std::optional<std::pair<std::string, uint16_t>>
parseHostPort(const std::string &text);

} // namespace risc1::core

#endif // RISC1_CORE_FLEETNET_HH
