#include "core/calltrace.hh"
#include <algorithm>

#include "core/table.hh"
#include "support/rng.hh"

namespace risc1::core {

namespace {

/** One call/return event; true = call. */
std::vector<bool>
makeTrace(const CallTraceParams &params)
{
    Rng rng(params.seed);
    std::vector<bool> trace;
    trace.reserve(params.events);
    uint64_t depth = 0;
    for (uint64_t i = 0; i < params.events; ++i) {
        const uint64_t decay = params.slopePct * depth;
        const unsigned call_pct = static_cast<unsigned>(
            decay >= params.basePct
                ? params.floorPct
                : std::max<uint64_t>(params.floorPct,
                                     params.basePct - decay));
        const bool is_call = depth == 0 || rng.chance(call_pct, 100);
        trace.push_back(is_call);
        depth += is_call ? 1 : -1;
    }
    return trace;
}

} // namespace

std::vector<TraceSweepRow>
syntheticWindowSweep(const std::vector<unsigned> &window_counts,
                     const CallTraceParams &params)
{
    const std::vector<bool> trace = makeTrace(params);

    std::vector<TraceSweepRow> rows;
    for (unsigned nwin : window_counts) {
        TraceSweepRow row;
        row.windows = nwin;

        // Counter model of the window file: `resident` frames held in
        // registers, `spilled` frames on the save stack; one window is
        // reserved (see Cpu::windowPush).
        unsigned resident = 1;
        uint64_t spilled = 0;
        uint64_t depth = 0;
        for (bool is_call : trace) {
            if (is_call) {
                ++row.calls;
                ++depth;
                if (depth > row.maxDepth)
                    row.maxDepth = depth;
                if (resident == nwin - 1) {
                    ++row.overflows;
                    ++spilled;
                    --resident;
                }
                ++resident;
            } else {
                --depth;
                if (resident == 1) {
                    // Underflow refill (spilled is always >0 here by
                    // construction of the trace).
                    --spilled;
                } else {
                    --resident;
                }
            }
        }
        row.overflowPct = row.calls ? 100.0 *
                                          static_cast<double>(
                                              row.overflows) /
                                          static_cast<double>(row.calls)
                                    : 0;
        rows.push_back(row);
    }
    return rows;
}

std::string
syntheticWindowSweepTable(const std::vector<TraceSweepRow> &rows)
{
    Table table({"windows", "calls", "overflows", "overflow %",
                 "max depth"});
    for (const TraceSweepRow &row : rows) {
        table.row({cell(static_cast<uint64_t>(row.windows)),
                   cell(row.calls), cell(row.overflows),
                   cell(row.overflowPct), cell(row.maxDepth)});
    }
    return "E6 (synthetic): overflow rate on a C-like call/return "
           "trace (Halbert & Kessler methodology)\n" +
           table.str();
}

} // namespace risc1::core
