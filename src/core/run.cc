#include "core/run.hh"

#include "support/logging.hh"

namespace risc1::core {

RiscRun
runRisc(const workloads::Workload &wl, uint64_t scale,
        const sim::CpuOptions &cpu_opts,
        const assembler::AsmOptions &asm_opts)
{
    RiscRun run;
    assembler::AsmResult assembled = assembler::assemble(
        wl.riscSource(scale), asm_opts);
    if (!assembled.ok())
        fatal("workload %s failed to assemble:\n%s", wl.name.c_str(),
              assembled.errorText().c_str());
    run.slots = assembled.slotStats;
    run.codeBytes = assembled.program.codeBytes();
    run.totalBytes = assembled.program.totalBytes();

    sim::Cpu cpu(cpu_opts);
    cpu.load(assembled.program);
    run.exec = cpu.run();
    run.stats = cpu.stats();
    run.result = cpu.memory().peek32(workloads::ResultAddr);
    run.ok = run.exec.halted() && run.result == wl.expected(scale);
    return run;
}

VaxRun
runVax(const workloads::Workload &wl, uint64_t scale,
       const vax::VaxCpuOptions &cpu_opts)
{
    VaxRun run;
    vax::VaxProgram prog = wl.buildVax(scale);
    run.codeBytes = prog.codeBytes;
    run.totalBytes = prog.totalBytes();

    vax::VaxCpu cpu(cpu_opts);
    cpu.load(prog);
    run.exec = cpu.run();
    run.stats = cpu.stats();
    run.result = cpu.memory().peek32(workloads::ResultAddr);
    run.ok = run.exec.halted() && run.result == wl.expected(scale);
    return run;
}

} // namespace risc1::core
