/**
 * @file
 * Trace-driven register-window simulation (experiment E6, synthetic
 * side). The paper's window-count argument rests on call/return traces
 * of C programs (Halbert & Kessler's methodology): programs make long
 * runs of calls and returns but their *net* depth excursion stays
 * inside a narrow band, so a handful of windows absorbs almost all
 * calls. This module reproduces that study: a stochastic call/return
 * trace with tunable run-length behaviour is replayed against the
 * window push/pop rules (one window reserved, spill/refill one frame
 * per trap) for each window count.
 */

#ifndef RISC1_CORE_CALLTRACE_HH
#define RISC1_CORE_CALLTRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace risc1::core {

/** Parameters of the synthetic call/return trace. */
struct CallTraceParams
{
    uint64_t events = 200000; //!< call/return events to generate
    /**
     * Call probability is depth-dependent — programs are mean-reverting
     * in call depth (they return toward a home nesting level):
     * p(call at depth d) = max(floorPct, basePct - slopePct * d).
     * The defaults give an equilibrium depth of ~3 with a thin tail of
     * deep excursions, matching the measured-C-program behaviour the
     * paper's window-count argument rests on.
     */
    unsigned basePct = 85;
    unsigned slopePct = 12;
    unsigned floorPct = 4;
    uint64_t seed = 0xc0ffee;
};

/** Result of replaying one trace against one window count. */
struct TraceSweepRow
{
    unsigned windows = 0;
    uint64_t calls = 0;
    uint64_t overflows = 0;
    double overflowPct = 0;
    uint64_t maxDepth = 0;
};

/**
 * Generate a trace and replay it for each window count. The same seed
 * yields the same trace across all counts, so rows are comparable.
 */
std::vector<TraceSweepRow>
syntheticWindowSweep(const std::vector<unsigned> &window_counts,
                     const CallTraceParams &params = {});

/** Render the paper-style series. */
std::string syntheticWindowSweepTable(
    const std::vector<TraceSweepRow> &rows);

} // namespace risc1::core

#endif // RISC1_CORE_CALLTRACE_HH
