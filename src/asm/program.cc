#include "asm/program.hh"

#include "support/logging.hh"

namespace risc1::assembler {

uint32_t
Program::totalBytes() const
{
    uint32_t total = 0;
    for (const Segment &seg : segments)
        total += static_cast<uint32_t>(seg.bytes.size());
    return total;
}

std::optional<uint32_t>
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        return std::nullopt;
    return it->second;
}

void
Program::addByte(uint32_t addr, uint8_t byte)
{
    // Common case: extend the last segment.
    if (!segments.empty()) {
        Segment &last = segments.back();
        const uint32_t end = last.base +
                             static_cast<uint32_t>(last.bytes.size());
        if (addr == end) {
            last.bytes.push_back(byte);
            return;
        }
        if (addr >= last.base && addr < end) {
            // Overwrite within the last segment (e.g. .org backtracking).
            last.bytes[addr - last.base] = byte;
            return;
        }
    }
    // Check against all existing segments for overlap.
    for (Segment &seg : segments) {
        const uint32_t end = seg.base +
                             static_cast<uint32_t>(seg.bytes.size());
        if (addr >= seg.base && addr < end) {
            seg.bytes[addr - seg.base] = byte;
            return;
        }
        if (addr == end) {
            seg.bytes.push_back(byte);
            return;
        }
    }
    segments.push_back(Segment{addr, {byte}});
}

std::optional<uint8_t>
Program::byteAt(uint32_t addr) const
{
    for (const Segment &seg : segments) {
        const uint32_t end = seg.base +
                             static_cast<uint32_t>(seg.bytes.size());
        if (addr >= seg.base && addr < end)
            return seg.bytes[addr - seg.base];
    }
    return std::nullopt;
}

std::optional<uint32_t>
Program::wordAt(uint32_t addr) const
{
    uint32_t word = 0;
    for (unsigned i = 0; i < 4; ++i) {
        auto b = byteAt(addr + i);
        if (!b)
            return std::nullopt;
        word |= static_cast<uint32_t>(*b) << (8 * i);
    }
    return word;
}

} // namespace risc1::assembler
