#include "asm/parser.hh"

#include "asm/lexer.hh"
#include "isa/registers.hh"
#include "support/strings.hh"

namespace risc1::assembler {

namespace {

/** Cursor over one line's tokens. */
class TokenCursor
{
  public:
    explicit TokenCursor(const std::vector<Token> &toks) : toks_(toks) {}

    bool atEnd() const { return pos_ >= toks_.size(); }
    const Token &peek() const { return toks_[pos_]; }
    const Token &advance() { return toks_[pos_++]; }

    bool
    match(TokKind kind)
    {
        if (!atEnd() && peek().kind == kind) {
            ++pos_;
            return true;
        }
        return false;
    }

    size_t save() const { return pos_; }
    void restore(size_t pos) { pos_ = pos; }

  private:
    const std::vector<Token> &toks_;
    size_t pos_ = 0;
};

/** Per-line parser building one Stmt. */
class LineParser
{
  public:
    LineParser(const std::vector<Token> &toks, unsigned line,
               std::vector<AsmError> &errors)
        : cur_(toks), line_(line), errors_(errors)
    {}

    /** Parse the line; returns a Stmt (possibly Kind::Empty). */
    Stmt
    parse()
    {
        Stmt stmt;
        stmt.line = line_;

        // Leading labels: IDENT ':' (repeatable).
        while (!cur_.atEnd() && cur_.peek().kind == TokKind::Ident) {
            // Look ahead for ':'.
            const size_t save = cur_.save();
            const std::string name = cur_.advance().text;
            if (cur_.match(TokKind::Colon)) {
                stmt.labels.push_back(name);
                continue;
            }
            cur_.restore(save);
            break;
        }

        if (cur_.atEnd())
            return stmt;

        if (cur_.peek().kind == TokKind::Error) {
            error(cur_.peek().text);
            return stmt;
        }

        if (cur_.match(TokKind::Dot)) {
            // Directive.
            if (cur_.atEnd() || cur_.peek().kind != TokKind::Ident) {
                error("expected directive name after '.'");
                return stmt;
            }
            stmt.kind = Stmt::Kind::Directive;
            stmt.mnemonic = "." + toLower(cur_.advance().text);
            parseOperands(stmt);
            return stmt;
        }

        if (cur_.peek().kind != TokKind::Ident) {
            error("expected mnemonic, label or directive");
            return stmt;
        }

        stmt.kind = Stmt::Kind::Instruction;
        stmt.mnemonic = toLower(cur_.advance().text);
        parseOperands(stmt);
        return stmt;
    }

  private:
    void
    error(std::string msg)
    {
        errors_.push_back(AsmError{line_, std::move(msg)});
    }

    /** Parse comma-separated operands until end of line. */
    void
    parseOperands(Stmt &stmt)
    {
        if (cur_.atEnd())
            return;
        while (true) {
            auto operand = parseOperand();
            if (!operand)
                return; // error already reported
            stmt.operands.push_back(std::move(*operand));
            if (cur_.atEnd())
                return;
            if (!cur_.match(TokKind::Comma)) {
                error("expected ',' between operands");
                return;
            }
        }
    }

    /** Parse one operand. */
    std::optional<Operand>
    parseOperand()
    {
        if (cur_.atEnd()) {
            error("expected operand");
            return std::nullopt;
        }
        const Token &tok = cur_.peek();

        if (tok.kind == TokKind::Error) {
            error(tok.text);
            return std::nullopt;
        }

        if (tok.kind == TokKind::String) {
            Operand op;
            op.kind = Operand::Kind::String;
            op.str = cur_.advance().text;
            return op;
        }

        if (tok.kind == TokKind::LParen)
            return parseMemory();

        if (tok.kind == TokKind::Ident) {
            // Register, immediate-splitting function, or symbol.
            if (auto reg = isa::regFromName(tok.text)) {
                cur_.advance();
                Operand op;
                op.kind = Operand::Kind::Register;
                op.reg = *reg;
                return op;
            }
            const std::string lower = toLower(tok.text);
            if (lower == "hi13" || lower == "lo13")
                return parseFuncExpr(lower);
        }

        auto expr = parseExpr();
        if (!expr)
            return std::nullopt;
        Operand op;
        op.kind = Operand::Kind::Value;
        op.expr = std::move(*expr);
        return op;
    }

    /** Parse `hi13(expr)` / `lo13(expr)`. */
    std::optional<Operand>
    parseFuncExpr(const std::string &func)
    {
        cur_.advance(); // the function name
        if (!cur_.match(TokKind::LParen)) {
            error("expected '(' after " + func);
            return std::nullopt;
        }
        auto inner = parseExpr();
        if (!inner)
            return std::nullopt;
        if (!cur_.match(TokKind::RParen)) {
            error("expected ')' closing " + func);
            return std::nullopt;
        }
        inner->func = func == "hi13" ? Expr::Func::Hi13 : Expr::Func::Lo13;
        Operand op;
        op.kind = Operand::Kind::Value;
        op.expr = std::move(*inner);
        return op;
    }

    /** Parse a linear expression: symbol [+|- number] | number. */
    std::optional<Expr>
    parseExpr()
    {
        if (cur_.atEnd()) {
            error("expected expression");
            return std::nullopt;
        }
        const Token &tok = cur_.peek();
        if (tok.kind == TokKind::Number) {
            cur_.advance();
            return Expr::constant(tok.value);
        }
        if (tok.kind == TokKind::Dot || tok.kind == TokKind::Ident) {
            // "." is the current location counter; it resolves to the
            // instruction's own address (what the disassembler prints
            // for PC-relative transfers).
            Expr e = tok.kind == TokKind::Dot
                         ? (cur_.advance(), Expr::sym("."))
                         : Expr::sym(cur_.advance().text);
            if (cur_.match(TokKind::Plus)) {
                if (cur_.atEnd() || cur_.peek().kind != TokKind::Number) {
                    error("expected number after '+'");
                    return std::nullopt;
                }
                e.addend = cur_.advance().value;
            } else if (cur_.match(TokKind::Minus)) {
                if (cur_.atEnd() || cur_.peek().kind != TokKind::Number) {
                    error("expected number after '-'");
                    return std::nullopt;
                }
                e.addend = -cur_.advance().value;
            } else if (!cur_.atEnd() &&
                       cur_.peek().kind == TokKind::Number &&
                       !cur_.peek().text.empty() &&
                       cur_.peek().text[0] == '-') {
                // The lexer folds "sym-4" into sym and Number(-4).
                e.addend = cur_.advance().value;
            }
            return e;
        }
        if (tok.kind == TokKind::Error) {
            error(tok.text);
            return std::nullopt;
        }
        error("expected expression, got '" + tok.text + "'");
        return std::nullopt;
    }

    /** Parse `(rX)` with optional displacement or register index. */
    std::optional<Operand>
    parseMemory()
    {
        cur_.advance(); // '('
        if (cur_.atEnd() || cur_.peek().kind != TokKind::Ident) {
            error("expected base register after '('");
            return std::nullopt;
        }
        auto base = isa::regFromName(cur_.peek().text);
        if (!base) {
            error("unknown register '" + cur_.peek().text + "'");
            return std::nullopt;
        }
        cur_.advance();
        if (!cur_.match(TokKind::RParen)) {
            error("expected ')' after base register");
            return std::nullopt;
        }

        Operand op;
        op.kind = Operand::Kind::Memory;
        op.base = *base;
        op.expr = Expr::constant(0);

        // Optional displacement or register index immediately after ')'.
        if (cur_.atEnd() || cur_.peek().kind == TokKind::Comma)
            return op;

        if (cur_.peek().kind == TokKind::Ident) {
            if (auto idx = isa::regFromName(cur_.peek().text)) {
                cur_.advance();
                op.indexIsReg = true;
                op.indexReg = *idx;
                return op;
            }
        }
        auto disp = parseExpr();
        if (!disp)
            return std::nullopt;
        op.expr = std::move(*disp);
        return op;
    }

    TokenCursor cur_;
    unsigned line_;
    std::vector<AsmError> &errors_;
};

} // namespace

ParseResult
parseSource(std::string_view source)
{
    ParseResult result;
    unsigned line_no = 0;
    for (const std::string &line : split(source, '\n')) {
        ++line_no;
        std::vector<Token> toks = tokenizeLine(line);
        LineParser parser(toks, line_no, result.errors);
        Stmt stmt = parser.parse();
        if (stmt.kind != Stmt::Kind::Empty || !stmt.labels.empty())
            result.stmts.push_back(std::move(stmt));
    }
    return result;
}

} // namespace risc1::assembler
