#include "asm/lexer.hh"

#include <cctype>

#include "support/strings.hh"

namespace risc1::assembler {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Token
errorTok(unsigned col, std::string msg)
{
    return Token{TokKind::Error, std::move(msg), 0, col};
}

} // namespace

std::vector<Token>
tokenizeLine(std::string_view line)
{
    std::vector<Token> toks;
    size_t i = 0;
    const size_t n = line.size();

    auto push = [&](TokKind kind, std::string text, int64_t value,
                    size_t col) {
        toks.push_back(Token{kind, std::move(text), value,
                             static_cast<unsigned>(col)});
    };

    while (i < n) {
        const char c = line[i];

        // Whitespace.
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments.
        if (c == ';' || c == '#')
            break;
        if (c == '/' && i + 1 < n && line[i + 1] == '/')
            break;

        const size_t start = i;
        switch (c) {
          case ',': push(TokKind::Comma, ",", 0, start); ++i; continue;
          case ':': push(TokKind::Colon, ":", 0, start); ++i; continue;
          case '(': push(TokKind::LParen, "(", 0, start); ++i; continue;
          case ')': push(TokKind::RParen, ")", 0, start); ++i; continue;
          case '+': push(TokKind::Plus, "+", 0, start); ++i; continue;
          case '.': push(TokKind::Dot, ".", 0, start); ++i; continue;
          default: break;
        }

        if (c == '-') {
            // Negative number literal or standalone minus.
            if (i + 1 < n &&
                (std::isdigit(static_cast<unsigned char>(line[i + 1])) ||
                 line[i + 1] == '\'')) {
                size_t j = i + 1;
                if (line[j] == '\'') {
                    // Negative character literal: scan to closing quote.
                    ++j;
                    while (j < n && line[j] != '\'') {
                        if (line[j] == '\\')
                            ++j;
                        ++j;
                    }
                    if (j < n)
                        ++j;
                } else {
                    while (j < n && isIdentChar(line[j]))
                        ++j;
                }
                auto parsed = parseInt(line.substr(i, j - i));
                if (!parsed) {
                    toks.push_back(errorTok(
                        static_cast<unsigned>(start),
                        "malformed number '" +
                            std::string(line.substr(i, j - i)) + "'"));
                    return toks;
                }
                push(TokKind::Number, std::string(line.substr(i, j - i)),
                     *parsed, start);
                i = j;
                continue;
            }
            push(TokKind::Minus, "-", 0, start);
            ++i;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            while (j < n && isIdentChar(line[j]))
                ++j;
            auto parsed = parseInt(line.substr(i, j - i));
            if (!parsed) {
                toks.push_back(errorTok(
                    static_cast<unsigned>(start),
                    "malformed number '" +
                        std::string(line.substr(i, j - i)) + "'"));
                return toks;
            }
            push(TokKind::Number, std::string(line.substr(i, j - i)),
                 *parsed, start);
            i = j;
            continue;
        }

        if (c == '\'') {
            size_t j = i + 1;
            while (j < n && line[j] != '\'') {
                if (line[j] == '\\')
                    ++j;
                ++j;
            }
            if (j >= n) {
                toks.push_back(errorTok(static_cast<unsigned>(start),
                                        "unterminated character literal"));
                return toks;
            }
            ++j;
            auto parsed = parseInt(line.substr(i, j - i));
            if (!parsed) {
                toks.push_back(errorTok(static_cast<unsigned>(start),
                                        "malformed character literal"));
                return toks;
            }
            push(TokKind::Number, std::string(line.substr(i, j - i)),
                 *parsed, start);
            i = j;
            continue;
        }

        if (c == '"') {
            std::string text;
            size_t j = i + 1;
            bool closed = false;
            while (j < n) {
                if (line[j] == '"') {
                    closed = true;
                    ++j;
                    break;
                }
                if (line[j] == '\\' && j + 1 < n) {
                    switch (line[j + 1]) {
                      case 'n': text += '\n'; break;
                      case 't': text += '\t'; break;
                      case 'r': text += '\r'; break;
                      case '0': text += '\0'; break;
                      case '\\': text += '\\'; break;
                      case '"': text += '"'; break;
                      default:
                        toks.push_back(errorTok(
                            static_cast<unsigned>(j),
                            "unknown escape in string literal"));
                        return toks;
                    }
                    j += 2;
                    continue;
                }
                text += line[j];
                ++j;
            }
            if (!closed) {
                toks.push_back(errorTok(static_cast<unsigned>(start),
                                        "unterminated string literal"));
                return toks;
            }
            push(TokKind::String, std::move(text), 0, start);
            i = j;
            continue;
        }

        if (isIdentStart(c)) {
            size_t j = i;
            while (j < n && isIdentChar(line[j]))
                ++j;
            push(TokKind::Ident, std::string(line.substr(i, j - i)), 0,
                 start);
            i = j;
            continue;
        }

        toks.push_back(errorTok(static_cast<unsigned>(start),
                                std::string("unexpected character '") + c +
                                    "'"));
        return toks;
    }
    return toks;
}

} // namespace risc1::assembler
