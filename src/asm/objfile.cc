#include "asm/objfile.hh"

#include <cstdio>

#include "support/logging.hh"

namespace risc1::assembler {

namespace {

constexpr uint32_t Magic = 0x424f3152; // "R1OB" little-endian
constexpr uint32_t Version = 1;

void
putU32(std::vector<uint8_t> &out, uint32_t value)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
putU16(std::vector<uint8_t> &out, uint16_t value)
{
    out.push_back(static_cast<uint8_t>(value));
    out.push_back(static_cast<uint8_t>(value >> 8));
}

/** Bounded little-endian reader. */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &bytes) : bytes_(bytes) {}

    bool
    u32(uint32_t &value)
    {
        if (pos_ + 4 > bytes_.size())
            return false;
        value = 0;
        for (unsigned i = 0; i < 4; ++i)
            value |= static_cast<uint32_t>(bytes_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return true;
    }

    bool
    u16(uint16_t &value)
    {
        if (pos_ + 2 > bytes_.size())
            return false;
        value = static_cast<uint16_t>(
            bytes_[pos_] | (static_cast<uint16_t>(bytes_[pos_ + 1]) << 8));
        pos_ += 2;
        return true;
    }

    bool
    blob(size_t count, std::vector<uint8_t> &out)
    {
        if (pos_ + count > bytes_.size())
            return false;
        out.assign(bytes_.begin() + static_cast<long>(pos_),
                   bytes_.begin() + static_cast<long>(pos_ + count));
        pos_ += count;
        return true;
    }

    bool
    text(size_t count, std::string &out)
    {
        if (pos_ + count > bytes_.size())
            return false;
        out.assign(bytes_.begin() + static_cast<long>(pos_),
                   bytes_.begin() + static_cast<long>(pos_ + count));
        pos_ += count;
        return true;
    }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

} // namespace

std::vector<uint8_t>
saveObject(const Program &program)
{
    std::vector<uint8_t> out;
    putU32(out, Magic);
    putU32(out, Version);
    putU32(out, program.entry);
    putU32(out, program.instructionCount);

    putU32(out, static_cast<uint32_t>(program.segments.size()));
    for (const Segment &seg : program.segments) {
        putU32(out, seg.base);
        putU32(out, static_cast<uint32_t>(seg.bytes.size()));
        out.insert(out.end(), seg.bytes.begin(), seg.bytes.end());
    }

    putU32(out, static_cast<uint32_t>(program.symbols.size()));
    for (const auto &[name, value] : program.symbols) {
        putU16(out, static_cast<uint16_t>(name.size()));
        out.insert(out.end(), name.begin(), name.end());
        putU32(out, value);
    }
    return out;
}

LoadResult
loadObject(const std::vector<uint8_t> &bytes)
{
    LoadResult result;
    Reader reader(bytes);

    uint32_t magic = 0, version = 0;
    if (!reader.u32(magic) || magic != Magic) {
        result.error = "bad magic (not an R1OB object)";
        return result;
    }
    if (!reader.u32(version) || version != Version) {
        result.error = strprintf("unsupported object version %u",
                                 version);
        return result;
    }
    uint32_t inst_count = 0;
    if (!reader.u32(result.program.entry) || !reader.u32(inst_count)) {
        result.error = "truncated header";
        return result;
    }
    result.program.instructionCount = inst_count;

    uint32_t nsegs = 0;
    if (!reader.u32(nsegs) || nsegs > 4096) {
        result.error = "bad segment count";
        return result;
    }
    for (uint32_t i = 0; i < nsegs; ++i) {
        Segment seg;
        uint32_t size = 0;
        if (!reader.u32(seg.base) || !reader.u32(size) ||
            !reader.blob(size, seg.bytes)) {
            result.error = strprintf("truncated segment %u", i);
            return result;
        }
        result.program.segments.push_back(std::move(seg));
    }

    uint32_t nsyms = 0;
    if (!reader.u32(nsyms) || nsyms > 1u << 20) {
        result.error = "bad symbol count";
        return result;
    }
    for (uint32_t i = 0; i < nsyms; ++i) {
        uint16_t len = 0;
        std::string name;
        uint32_t value = 0;
        if (!reader.u16(len) || !reader.text(len, name) ||
            !reader.u32(value)) {
            result.error = strprintf("truncated symbol %u", i);
            return result;
        }
        result.program.symbols.emplace(std::move(name), value);
    }

    result.ok = true;
    return result;
}

void
writeObjectFile(const Program &program, const std::string &path)
{
    const std::vector<uint8_t> bytes = saveObject(program);
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open '%s' for writing", path.c_str());
    const size_t written = std::fwrite(bytes.data(), 1, bytes.size(),
                                       file);
    std::fclose(file);
    if (written != bytes.size())
        fatal("short write to '%s'", path.c_str());
}

Program
readObjectFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open '%s'", path.c_str());
    std::vector<uint8_t> bytes;
    uint8_t buffer[4096];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
        bytes.insert(bytes.end(), buffer, buffer + got);
    std::fclose(file);

    LoadResult result = loadObject(bytes);
    if (!result.ok)
        fatal("'%s': %s", path.c_str(), result.error.c_str());
    return std::move(result.program);
}

} // namespace risc1::assembler
