#include "asm/expander.hh"

#include "isa/registers.hh"
#include "support/bits.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace risc1::assembler {

namespace {

using isa::Cond;
using isa::Opcode;

/** Builds the Unit list while tracking errors and label attachment. */
class Expander
{
  public:
    explicit Expander(const ExpandOptions &opts) : opts_(opts) {}

    ExpandResult
    run(const std::vector<Stmt> &stmts)
    {
        for (const Stmt &stmt : stmts)
            expandStmt(stmt);
        ExpandResult out;
        out.units = std::move(units_);
        out.errors = std::move(errors_);
        return out;
    }

  private:
    // ---- Infrastructure -------------------------------------------------

    void
    error(unsigned line, std::string msg)
    {
        errors_.push_back(AsmError{line, std::move(msg)});
    }

    /** Append a unit, attaching any pending labels to it. */
    Unit &
    emit(Unit unit)
    {
        unit.labels.insert(unit.labels.end(), pendingLabels_.begin(),
                           pendingLabels_.end());
        pendingLabels_.clear();
        units_.push_back(std::move(unit));
        return units_.back();
    }

    Unit
    instUnit(const Stmt &stmt, Opcode op)
    {
        Unit u;
        u.kind = Unit::Kind::Inst;
        u.line = stmt.line;
        u.op = op;
        return u;
    }

    /** Emit the auto delay-slot NOP after a transfer, if in auto mode. */
    void
    emitSlot(const Stmt &stmt)
    {
        if (!opts_.autoDelaySlots)
            return;
        Unit nop;
        nop.kind = Unit::Kind::Inst;
        nop.line = stmt.line;
        nop.op = Opcode::Add;
        nop.rd = isa::ZeroReg;
        nop.rs1 = isa::ZeroReg;
        nop.imm = false;
        nop.rs2 = isa::ZeroReg;
        nop.isAutoSlot = true;
        emit(std::move(nop));
    }

    // ---- Operand helpers -------------------------------------------------

    bool
    wantCount(const Stmt &stmt, size_t count)
    {
        if (stmt.operands.size() != count) {
            error(stmt.line,
                  strprintf("%s expects %zu operand(s), got %zu",
                            stmt.mnemonic.c_str(), count,
                            stmt.operands.size()));
            return false;
        }
        return true;
    }

    std::optional<unsigned>
    wantReg(const Stmt &stmt, size_t idx)
    {
        const Operand &op = stmt.operands[idx];
        if (op.kind != Operand::Kind::Register) {
            error(stmt.line,
                  strprintf("%s: operand %zu must be a register",
                            stmt.mnemonic.c_str(), idx + 1));
            return std::nullopt;
        }
        return op.reg;
    }

    std::optional<Expr>
    wantValue(const Stmt &stmt, size_t idx)
    {
        const Operand &op = stmt.operands[idx];
        if (op.kind != Operand::Kind::Value) {
            error(stmt.line,
                  strprintf("%s: operand %zu must be a value",
                            stmt.mnemonic.c_str(), idx + 1));
            return std::nullopt;
        }
        return op.expr;
    }

    std::optional<Cond>
    wantCond(const Stmt &stmt, size_t idx)
    {
        const Operand &op = stmt.operands[idx];
        if (op.kind == Operand::Kind::Value && !op.expr.symbol.empty() &&
            op.expr.addend == 0 && op.expr.func == Expr::Func::None) {
            if (auto cond = isa::condFromName(op.expr.symbol))
                return cond;
        }
        error(stmt.line,
              strprintf("%s: operand %zu must be a condition code",
                        stmt.mnemonic.c_str(), idx + 1));
        return std::nullopt;
    }

    /** Fill rs1/imm/rs2/s2Expr of `unit` from a Memory operand. */
    bool
    applyMem(Unit &unit, const Stmt &stmt, size_t idx)
    {
        const Operand &op = stmt.operands[idx];
        if (op.kind != Operand::Kind::Memory) {
            error(stmt.line,
                  strprintf("%s: operand %zu must be a memory operand "
                            "(rX)disp",
                            stmt.mnemonic.c_str(), idx + 1));
            return false;
        }
        unit.rs1 = static_cast<uint8_t>(op.base);
        if (op.indexIsReg) {
            unit.imm = false;
            unit.rs2 = static_cast<uint8_t>(op.indexReg);
        } else {
            unit.imm = true;
            unit.s2Expr = op.expr;
        }
        return true;
    }

    /** Fill imm/rs2/s2Expr of `unit` from a reg-or-value operand. */
    bool
    applyS2(Unit &unit, const Stmt &stmt, size_t idx)
    {
        const Operand &op = stmt.operands[idx];
        if (op.kind == Operand::Kind::Register) {
            unit.imm = false;
            unit.rs2 = static_cast<uint8_t>(op.reg);
            return true;
        }
        if (op.kind == Operand::Kind::Value) {
            unit.imm = true;
            unit.s2Expr = op.expr;
            return true;
        }
        error(stmt.line,
              strprintf("%s: operand %zu must be a register or value",
                        stmt.mnemonic.c_str(), idx + 1));
        return false;
    }

    // ---- Statement dispatch ----------------------------------------------

    void
    expandStmt(const Stmt &stmt)
    {
        pendingLabels_.insert(pendingLabels_.end(), stmt.labels.begin(),
                              stmt.labels.end());
        switch (stmt.kind) {
          case Stmt::Kind::Empty:
            // Pending labels attach to the next emitted unit.
            return;
          case Stmt::Kind::Directive:
            expandDirective(stmt);
            return;
          case Stmt::Kind::Instruction:
            expandInstruction(stmt);
            return;
        }
    }

    void
    expandDirective(const Stmt &stmt)
    {
        const std::string &d = stmt.mnemonic;
        if (d == ".org" || d == ".align" || d == ".space") {
            if (!wantCount(stmt, 1))
                return;
            auto value = wantValue(stmt, 0);
            if (!value)
                return;
            Unit u;
            u.kind = d == ".org"     ? Unit::Kind::Org
                     : d == ".align" ? Unit::Kind::Align
                                     : Unit::Kind::Space;
            u.line = stmt.line;
            u.values.push_back(*value);
            emit(std::move(u));
            return;
        }
        if (d == ".word" || d == ".half" || d == ".byte") {
            if (stmt.operands.empty()) {
                error(stmt.line, d + " expects at least one value");
                return;
            }
            Unit u;
            u.kind = Unit::Kind::Data;
            u.line = stmt.line;
            u.dataWidth = d == ".word" ? 4 : d == ".half" ? 2 : 1;
            for (size_t i = 0; i < stmt.operands.size(); ++i) {
                auto value = wantValue(stmt, i);
                if (!value)
                    return;
                u.values.push_back(*value);
            }
            emit(std::move(u));
            return;
        }
        if (d == ".ascii" || d == ".asciz") {
            if (!wantCount(stmt, 1))
                return;
            if (stmt.operands[0].kind != Operand::Kind::String) {
                error(stmt.line, d + " expects a string literal");
                return;
            }
            Unit u;
            u.kind = Unit::Kind::Ascii;
            u.line = stmt.line;
            u.text = stmt.operands[0].str;
            if (d == ".asciz")
                u.text.push_back('\0');
            emit(std::move(u));
            return;
        }
        if (d == ".equ") {
            if (!wantCount(stmt, 2))
                return;
            auto name = wantValue(stmt, 0);
            auto value = wantValue(stmt, 1);
            if (!name || !value)
                return;
            if (name->symbol.empty() || name->addend != 0) {
                error(stmt.line, ".equ: first operand must be a name");
                return;
            }
            Unit u;
            u.kind = Unit::Kind::Equ;
            u.line = stmt.line;
            u.text = name->symbol;
            u.values.push_back(*value);
            emit(std::move(u));
            return;
        }
        if (d == ".entry") {
            if (!wantCount(stmt, 1))
                return;
            auto name = wantValue(stmt, 0);
            if (!name || name->symbol.empty()) {
                error(stmt.line, ".entry expects a symbol");
                return;
            }
            Unit u;
            u.kind = Unit::Kind::Entry;
            u.line = stmt.line;
            u.text = name->symbol;
            emit(std::move(u));
            return;
        }
        if (d == ".global" || d == ".text" || d == ".data") {
            // Accepted for compatibility; no effect in a flat image.
            return;
        }
        error(stmt.line, "unknown directive '" + d + "'");
    }

    void
    expandInstruction(const Stmt &stmt)
    {
        const std::string &mn = stmt.mnemonic;

        // `call label` (one operand) is the pseudo form; the architected
        // CALL takes an explicit link register and memory operand.
        if (mn == "call" && stmt.operands.size() == 1) {
            expandPseudo(stmt);
            return;
        }

        // Exact architected mnemonic?
        if (const isa::OpInfo *info = isa::opInfoByMnemonic(mn)) {
            expandReal(stmt, *info, false);
            return;
        }
        // scc variant: trailing 's' on an ALU mnemonic.
        if (mn.size() > 1 && mn.back() == 's') {
            const std::string base = mn.substr(0, mn.size() - 1);
            if (const isa::OpInfo *info = isa::opInfoByMnemonic(base)) {
                if (info->mayScc) {
                    expandReal(stmt, *info, true);
                    return;
                }
            }
        }
        expandPseudo(stmt);
    }

    /** Expand an architected instruction with paper operand order. */
    void
    expandReal(const Stmt &stmt, const isa::OpInfo &info, bool scc)
    {
        Unit u = instUnit(stmt, info.op);
        u.scc = scc;

        switch (info.opClass) {
          case isa::OpClass::Alu: {
            if (!wantCount(stmt, 3))
                return;
            auto rs1 = wantReg(stmt, 0);
            if (!rs1 || !applyS2(u, stmt, 1))
                return;
            auto rd = wantReg(stmt, 2);
            if (!rd)
                return;
            u.rs1 = static_cast<uint8_t>(*rs1);
            u.rd = static_cast<uint8_t>(*rd);
            emit(std::move(u));
            return;
          }
          case isa::OpClass::Load: {
            if (!wantCount(stmt, 2))
                return;
            if (!applyMem(u, stmt, 0))
                return;
            auto rd = wantReg(stmt, 1);
            if (!rd)
                return;
            u.rd = static_cast<uint8_t>(*rd);
            emit(std::move(u));
            return;
          }
          case isa::OpClass::Store: {
            if (!wantCount(stmt, 2))
                return;
            auto rm = wantReg(stmt, 0);
            if (!rm || !applyMem(u, stmt, 1))
                return;
            u.rd = static_cast<uint8_t>(*rm);
            emit(std::move(u));
            return;
          }
          case isa::OpClass::Branch: {
            if (!wantCount(stmt, 2))
                return;
            auto cond = wantCond(stmt, 0);
            if (!cond)
                return;
            u.rd = static_cast<uint8_t>(*cond);
            if (info.op == Opcode::Jmpr) {
                auto target = wantValue(stmt, 1);
                if (!target)
                    return;
                u.target = *target;
                u.targetIsPcRel = true;
            } else {
                if (!applyMem(u, stmt, 1))
                    return;
            }
            emit(std::move(u));
            emitSlot(stmt);
            return;
          }
          case isa::OpClass::Call: {
            if (info.op == Opcode::Callint) {
                if (!wantCount(stmt, 1))
                    return;
                auto rd = wantReg(stmt, 0);
                if (!rd)
                    return;
                u.rd = static_cast<uint8_t>(*rd);
                emit(std::move(u));
                emitSlot(stmt);
                return;
            }
            if (!wantCount(stmt, 2))
                return;
            auto rd = wantReg(stmt, 0);
            if (!rd)
                return;
            u.rd = static_cast<uint8_t>(*rd);
            if (info.op == Opcode::Callr) {
                auto target = wantValue(stmt, 1);
                if (!target)
                    return;
                u.target = *target;
                u.targetIsPcRel = true;
            } else {
                if (!applyMem(u, stmt, 1))
                    return;
            }
            emit(std::move(u));
            emitSlot(stmt);
            return;
          }
          case isa::OpClass::Ret: {
            // `ret` / `retint` with optional memory operand.
            if (stmt.operands.empty()) {
                u.rs1 = isa::RaReg;
                u.imm = true;
                u.s2Expr = Expr::constant(8);
            } else {
                if (!wantCount(stmt, 1) || !applyMem(u, stmt, 0))
                    return;
            }
            emit(std::move(u));
            emitSlot(stmt);
            return;
          }
          case isa::OpClass::Misc: {
            switch (info.op) {
              case Opcode::Ldhi: {
                if (!wantCount(stmt, 2))
                    return;
                auto rd = wantReg(stmt, 0);
                auto value = wantValue(stmt, 1);
                if (!rd || !value)
                    return;
                u.rd = static_cast<uint8_t>(*rd);
                u.target = *value;
                emit(std::move(u));
                return;
              }
              case Opcode::Gtlpc:
              case Opcode::Getpsw: {
                if (!wantCount(stmt, 1))
                    return;
                auto rd = wantReg(stmt, 0);
                if (!rd)
                    return;
                u.rd = static_cast<uint8_t>(*rd);
                emit(std::move(u));
                return;
              }
              case Opcode::Putpsw: {
                if (!wantCount(stmt, 2))
                    return;
                auto rs1 = wantReg(stmt, 0);
                if (!rs1 || !applyS2(u, stmt, 1))
                    return;
                u.rs1 = static_cast<uint8_t>(*rs1);
                emit(std::move(u));
                return;
              }
              default:
                break;
            }
            panic("expandReal: unhandled misc opcode");
          }
        }
    }

    // ---- Pseudo instructions ----------------------------------------------

    /** Branch pseudo mnemonic -> condition, or nullopt. */
    static std::optional<Cond>
    branchPseudoCond(const std::string &mn)
    {
        if (mn == "b")
            return Cond::Alw;
        if (mn.size() < 2 || mn[0] != 'b')
            return std::nullopt;
        return isa::condFromName(mn.substr(1));
    }

    void
    expandPseudo(const Stmt &stmt)
    {
        const std::string &mn = stmt.mnemonic;

        if (mn == "nop") {
            if (!wantCount(stmt, 0))
                return;
            Unit u = instUnit(stmt, Opcode::Add);
            emit(std::move(u));
            return;
        }
        if (mn == "halt") {
            // Transfer to address zero halts the simulator.
            if (!wantCount(stmt, 0))
                return;
            Unit u = instUnit(stmt, Opcode::Jmp);
            u.rd = static_cast<uint8_t>(Cond::Alw);
            u.rs1 = isa::ZeroReg;
            u.imm = true;
            u.s2Expr = Expr::constant(0);
            emit(std::move(u));
            emitSlot(stmt);
            return;
        }
        if (mn == "mov" || mn == "li") {
            expandMov(stmt);
            return;
        }
        if (mn == "cmp") {
            if (!wantCount(stmt, 2))
                return;
            auto rs1 = wantReg(stmt, 0);
            if (!rs1)
                return;
            Unit u = instUnit(stmt, Opcode::Sub);
            u.scc = true;
            u.rd = isa::ZeroReg;
            u.rs1 = static_cast<uint8_t>(*rs1);
            if (!applyS2(u, stmt, 1))
                return;
            emit(std::move(u));
            return;
        }
        if (mn == "not") {
            if (!wantCount(stmt, 2))
                return;
            auto rs = wantReg(stmt, 0);
            auto rd = wantReg(stmt, 1);
            if (!rs || !rd)
                return;
            Unit u = instUnit(stmt, Opcode::Xor);
            u.rs1 = static_cast<uint8_t>(*rs);
            u.imm = true;
            u.s2Expr = Expr::constant(-1);
            u.rd = static_cast<uint8_t>(*rd);
            emit(std::move(u));
            return;
        }
        if (mn == "neg") {
            if (!wantCount(stmt, 2))
                return;
            auto rs = wantReg(stmt, 0);
            auto rd = wantReg(stmt, 1);
            if (!rs || !rd)
                return;
            Unit u = instUnit(stmt, Opcode::Subr);
            u.rs1 = static_cast<uint8_t>(*rs);
            u.imm = true;
            u.s2Expr = Expr::constant(0);
            u.rd = static_cast<uint8_t>(*rd);
            emit(std::move(u));
            return;
        }
        if (mn == "inc" || mn == "dec") {
            if (stmt.operands.size() != 1 && stmt.operands.size() != 2) {
                error(stmt.line, mn + " expects 1 or 2 operands");
                return;
            }
            auto rd = wantReg(stmt, 0);
            if (!rd)
                return;
            Expr amount = Expr::constant(1);
            if (stmt.operands.size() == 2) {
                auto value = wantValue(stmt, 1);
                if (!value)
                    return;
                amount = *value;
            }
            Unit u = instUnit(stmt,
                              mn == "inc" ? Opcode::Add : Opcode::Sub);
            u.rs1 = static_cast<uint8_t>(*rd);
            u.imm = true;
            u.s2Expr = amount;
            u.rd = static_cast<uint8_t>(*rd);
            emit(std::move(u));
            return;
        }
        if (mn == "clr") {
            if (!wantCount(stmt, 1))
                return;
            auto rd = wantReg(stmt, 0);
            if (!rd)
                return;
            Unit u = instUnit(stmt, Opcode::Add);
            u.rs1 = isa::ZeroReg;
            u.imm = true;
            u.s2Expr = Expr::constant(0);
            u.rd = static_cast<uint8_t>(*rd);
            emit(std::move(u));
            return;
        }
        if (auto cond = branchPseudoCond(mn)) {
            if (!wantCount(stmt, 1))
                return;
            auto target = wantValue(stmt, 0);
            if (!target)
                return;
            Unit u = instUnit(stmt, Opcode::Jmpr);
            u.rd = static_cast<uint8_t>(*cond);
            u.target = *target;
            u.targetIsPcRel = true;
            emit(std::move(u));
            emitSlot(stmt);
            return;
        }
        if (mn == "call" && stmt.operands.size() == 1) {
            auto target = wantValue(stmt, 0);
            if (!target)
                return;
            Unit u = instUnit(stmt, Opcode::Callr);
            u.rd = isa::RaReg;
            u.target = *target;
            u.targetIsPcRel = true;
            emit(std::move(u));
            emitSlot(stmt);
            return;
        }
        if (mn == "push") {
            if (!wantCount(stmt, 1))
                return;
            auto rm = wantReg(stmt, 0);
            if (!rm)
                return;
            Unit dec = instUnit(stmt, Opcode::Sub);
            dec.rs1 = isa::SpReg;
            dec.imm = true;
            dec.s2Expr = Expr::constant(4);
            dec.rd = isa::SpReg;
            emit(std::move(dec));
            Unit st = instUnit(stmt, Opcode::Stl);
            st.rd = static_cast<uint8_t>(*rm);
            st.rs1 = isa::SpReg;
            st.imm = true;
            st.s2Expr = Expr::constant(0);
            emit(std::move(st));
            return;
        }
        if (mn == "pop") {
            if (!wantCount(stmt, 1))
                return;
            auto rd = wantReg(stmt, 0);
            if (!rd)
                return;
            Unit ld = instUnit(stmt, Opcode::Ldl);
            ld.rd = static_cast<uint8_t>(*rd);
            ld.rs1 = isa::SpReg;
            ld.imm = true;
            ld.s2Expr = Expr::constant(0);
            emit(std::move(ld));
            Unit inc = instUnit(stmt, Opcode::Add);
            inc.rs1 = isa::SpReg;
            inc.imm = true;
            inc.s2Expr = Expr::constant(4);
            inc.rd = isa::SpReg;
            emit(std::move(inc));
            return;
        }

        error(stmt.line, "unknown mnemonic '" + mn + "'");
    }

    /** `mov src, rd` / `li imm, rd` with 32-bit constant synthesis. */
    void
    expandMov(const Stmt &stmt)
    {
        if (!wantCount(stmt, 2))
            return;
        auto rd = wantReg(stmt, 1);
        if (!rd)
            return;
        const Operand &src = stmt.operands[0];

        if (src.kind == Operand::Kind::Register) {
            Unit u = instUnit(stmt, Opcode::Or);
            u.rs1 = static_cast<uint8_t>(src.reg);
            u.imm = true;
            u.s2Expr = Expr::constant(0);
            u.rd = static_cast<uint8_t>(*rd);
            emit(std::move(u));
            return;
        }
        if (src.kind != Operand::Kind::Value) {
            error(stmt.line, stmt.mnemonic +
                                 ": source must be a register or value");
            return;
        }

        // Small constants fit a single ADD; labels and wide constants
        // always take the deterministic two-instruction LDHI/ADD form.
        if (src.expr.isConst() && fitsSigned(src.expr.addend, 13)) {
            Unit u = instUnit(stmt, Opcode::Add);
            u.rs1 = isa::ZeroReg;
            u.imm = true;
            u.s2Expr = src.expr;
            u.rd = static_cast<uint8_t>(*rd);
            emit(std::move(u));
            return;
        }
        if (src.expr.func != Expr::Func::None) {
            error(stmt.line,
                  stmt.mnemonic + ": hi13/lo13 not allowed here");
            return;
        }
        Unit hi = instUnit(stmt, Opcode::Ldhi);
        hi.rd = static_cast<uint8_t>(*rd);
        hi.target = src.expr;
        hi.target.func = Expr::Func::Hi13;
        emit(std::move(hi));

        Unit lo = instUnit(stmt, Opcode::Add);
        lo.rs1 = static_cast<uint8_t>(*rd);
        lo.imm = true;
        lo.s2Expr = src.expr;
        lo.s2Expr.func = Expr::Func::Lo13;
        lo.rd = static_cast<uint8_t>(*rd);
        emit(std::move(lo));
    }

    ExpandOptions opts_;
    std::vector<Unit> units_;
    std::vector<AsmError> errors_;
    std::vector<std::string> pendingLabels_;
};

} // namespace

ExpandResult
expand(const std::vector<Stmt> &stmts, const ExpandOptions &opts)
{
    Expander expander(opts);
    return expander.run(stmts);
}

} // namespace risc1::assembler
