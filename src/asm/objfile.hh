/**
 * @file
 * Object-file serialization for assembled programs. A minimal
 * paper-era-style format ("R1OB"): magic, version, entry point,
 * instruction count, then length-prefixed segment and symbol tables.
 * Lets `riscas` emit binaries the examples and tests can reload
 * without reassembling.
 *
 * Layout (all little-endian u32 unless noted):
 *   magic "R1OB" | version | entry | instructionCount
 *   nsegments | { base, size, bytes[size] } ...
 *   nsymbols  | { namelen(u16), name bytes, value } ...
 */

#ifndef RISC1_ASM_OBJFILE_HH
#define RISC1_ASM_OBJFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace risc1::assembler {

/** Serialize a program image to bytes. */
std::vector<uint8_t> saveObject(const Program &program);

/** Outcome of parsing an object image. */
struct LoadResult
{
    bool ok = false;
    Program program;
    std::string error;
};

/** Parse an object image; malformed input yields ok=false. */
LoadResult loadObject(const std::vector<uint8_t> &bytes);

/** Write an object file to disk (throws FatalError on I/O failure). */
void writeObjectFile(const Program &program, const std::string &path);

/** Read an object file from disk (throws FatalError on failure). */
Program readObjectFile(const std::string &path);

} // namespace risc1::assembler

#endif // RISC1_ASM_OBJFILE_HH
