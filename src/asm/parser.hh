/**
 * @file
 * Source parser: turns assembly text into a list of Stmt. Syntax follows
 * the paper's operand order (`op rs1, s2, rd`; memory operands `(rx)disp`);
 * see README.md for the full grammar.
 */

#ifndef RISC1_ASM_PARSER_HH
#define RISC1_ASM_PARSER_HH

#include <string_view>
#include <vector>

#include "asm/ast.hh"

namespace risc1::assembler {

/** Result of parsing a whole source text. */
struct ParseResult
{
    std::vector<Stmt> stmts;
    std::vector<AsmError> errors;

    bool ok() const { return errors.empty(); }
};

/** Parse assembly source (multi-line). Never throws; collects errors. */
ParseResult parseSource(std::string_view source);

} // namespace risc1::assembler

#endif // RISC1_ASM_PARSER_HH
