/**
 * @file
 * Delay-slot optimizer (experiment E9). RISC I exposes its one-deep
 * branch delay to software; the paper's toolchain filled most slots by
 * code motion. This pass reproduces the mechanism: it hoists the
 * instruction textually preceding a transfer into the transfer's
 * assembler-inserted NOP slot when doing so provably preserves
 * semantics.
 *
 * Two strategies run in order:
 *
 * 1. *Hoist the predecessor* into the slot. Safety rules (detailed next
 *    to `canHoist`):
 *    - only plain computation (ALU/load/store/LDHI) is hoisted;
 *    - neither the hoisted instruction nor the transfer may carry a
 *      label;
 *    - a conditional transfer must not consume flags the candidate sets;
 *    - the transfer must not read a register the candidate writes;
 *    - CALL/RET slots execute in the *other* register window, so a
 *      candidate may move across them only if every register it touches
 *      is global (shared across windows).
 *
 * 2. *Copy the target* instruction into remaining slots of statically-
 *    targeted always-taken transfers (unconditional JMPR and CALLR),
 *    retargeting the transfer past it. Because the transfer is always
 *    taken, the copy executes exactly when the original would have —
 *    and a CALLR slot already runs in the callee's window, so the
 *    callee's first instruction is correct there with no register
 *    restrictions. Only position-independent computation is copied
 *    (never another transfer).
 */

#ifndef RISC1_ASM_OPTIMIZER_HH
#define RISC1_ASM_OPTIMIZER_HH

#include <vector>

#include "asm/ast.hh"

namespace risc1::assembler {

/** Fill statistics, reported per assembly. */
struct SlotStats
{
    unsigned totalSlots = 0;       //!< auto-inserted delay slots seen
    unsigned filledSlots = 0;      //!< slots filled (both strategies)
    unsigned filledFromPred = 0;   //!< by hoisting the predecessor
    unsigned filledFromTarget = 0; //!< by copying the branch target

    double
    fillRate() const
    {
        return totalSlots ? static_cast<double>(filledSlots) / totalSlots
                          : 0.0;
    }
};

/** Fill delay slots in place; returns fill statistics. */
SlotStats fillDelaySlots(std::vector<Unit> &units);

} // namespace risc1::assembler

#endif // RISC1_ASM_OPTIMIZER_HH
