#include "asm/optimizer.hh"

#include <algorithm>
#include <map>

#include "isa/registers.hh"

namespace risc1::assembler {

namespace {

using isa::Cond;
using isa::OpClass;
using isa::Opcode;

/** Registers read by an instruction unit (visible indices). */
std::vector<unsigned>
regsRead(const Unit &u)
{
    const isa::OpInfo &info = isa::opInfo(u.op);
    std::vector<unsigned> regs;
    if (info.readsRs1)
        regs.push_back(u.rs1);
    if (info.usesS2 && !u.imm)
        regs.push_back(u.rs2);
    if (info.rdIsSource)
        regs.push_back(u.rd);
    return regs;
}

/** Registers written by an instruction unit. */
std::vector<unsigned>
regsWritten(const Unit &u)
{
    const isa::OpInfo &info = isa::opInfo(u.op);
    std::vector<unsigned> regs;
    if (info.writesRd && u.rd != isa::ZeroReg)
        regs.push_back(u.rd);
    return regs;
}

/** True iff the unit is one of the window-crossing transfer classes. */
bool
crossesWindow(const Unit &u)
{
    const OpClass cls = isa::opInfo(u.op).opClass;
    return cls == OpClass::Call || cls == OpClass::Ret;
}

/** True iff the candidate instruction may be placed in a delay slot. */
bool
isHoistable(const Unit &u)
{
    if (u.kind != Unit::Kind::Inst || u.isAutoSlot || !u.labels.empty())
        return false;
    switch (isa::opInfo(u.op).opClass) {
      case OpClass::Alu:
      case OpClass::Load:
      case OpClass::Store:
        return true;
      case OpClass::Misc:
        // LDHI is pure data movement. GTLPC/GETPSW/PUTPSW read or write
        // machine state whose value changes across a transfer.
        return u.op == Opcode::Ldhi;
      default:
        return false;
    }
}

/**
 * Decide whether `cand` (immediately before `xfer`) may be moved into the
 * delay slot after `xfer`.
 *
 * Always-required conditions:
 *  1. `cand` is plain computation with no label of its own — a label
 *     would move with it and change what code a jump to it executes.
 *  2. `xfer` carries no label: otherwise paths jumping straight to the
 *     transfer would start executing `cand`, which they never did.
 *  3. `xfer` does not read any register `cand` writes (the transfer's
 *     target/condition is evaluated before the slot runs).
 *  4. If `xfer` is conditional, `cand` must not set the flags (scc).
 *
 * Window rule: the slot of a CALL executes in the callee's window and
 * the slot of a RET in the restored caller's window, so moving `cand`
 * across one is only safe when every register it reads or writes is a
 * global (physically shared by all windows).
 */
bool
canHoist(const Unit &cand, const Unit &xfer)
{
    if (!isHoistable(cand))
        return false;
    if (!xfer.labels.empty())
        return false;

    const isa::OpInfo &xinfo = isa::opInfo(xfer.op);

    // Rule 4: conditional transfers consume the flags.
    const bool conditional = xinfo.rdIsCond &&
                             static_cast<Cond>(xfer.rd & 0xf) != Cond::Alw;
    if (conditional && cand.scc)
        return false;

    // Rule 3: registers the transfer reads.
    const std::vector<unsigned> written = regsWritten(cand);
    for (unsigned reg : regsRead(xfer)) {
        if (std::find(written.begin(), written.end(), reg) !=
            written.end())
            return false;
    }

    // Window rule.
    if (crossesWindow(xfer)) {
        auto all_global = [](const std::vector<unsigned> &regs) {
            return std::all_of(regs.begin(), regs.end(), [](unsigned r) {
                return r < isa::NumGlobals;
            });
        };
        if (!all_global(regsRead(cand)) || !all_global(regsWritten(cand)))
            return false;
        // A store's base/displacement are read in the other window too;
        // already covered since its operands are all registers above.
    }
    return true;
}

} // namespace

namespace {

/**
 * Strategy 2: copy-from-target. For each remaining auto-slot whose
 * transfer is an always-taken, statically-targeted JMPR/CALLR, copy
 * the instruction at the target into the slot and retarget the
 * transfer 4 bytes past it.
 */
void
fillFromTargets(std::vector<Unit> &units, SlotStats &stats)
{
    // Label -> unit index (first unit carrying that label).
    std::map<std::string, size_t> label_to_unit;
    for (size_t i = 0; i < units.size(); ++i) {
        for (const std::string &label : units[i].labels)
            label_to_unit.emplace(label, i);
    }

    for (size_t i = 1; i + 0 < units.size(); ++i) {
        Unit &slot = units[i];
        if (slot.kind != Unit::Kind::Inst || !slot.isAutoSlot ||
            !slot.labels.empty())
            continue;
        Unit &xfer = units[i - 1];
        if (xfer.kind != Unit::Kind::Inst || !xfer.targetIsPcRel)
            continue;
        const bool always_taken =
            xfer.op == Opcode::Callr ||
            (xfer.op == Opcode::Jmpr &&
             static_cast<Cond>(xfer.rd & 0xf) == Cond::Alw);
        if (!always_taken)
            continue;
        // Static target: a bare defined label.
        if (xfer.target.symbol.empty() || xfer.target.addend != 0 ||
            xfer.target.func != Expr::Func::None)
            continue;
        auto it = label_to_unit.find(xfer.target.symbol);
        if (it == label_to_unit.end())
            continue;
        const Unit &target = units[it->second];
        if (target.kind != Unit::Kind::Inst)
            continue;
        // Copying a NOP gains nothing.
        if (target.op == Opcode::Add && target.rd == isa::ZeroReg &&
            target.rs1 == isa::ZeroReg && !target.imm &&
            target.rs2 == isa::ZeroReg)
            continue;
        // Only position-independent plain computation may be copied
        // (JMPR-relative offsets, transfers, machine-state readers are
        // location- or history-dependent).
        switch (isa::opInfo(target.op).opClass) {
          case OpClass::Alu:
          case OpClass::Load:
          case OpClass::Store:
            break;
          case OpClass::Misc:
            if (target.op == Opcode::Ldhi)
                break;
            continue;
          default:
            continue;
        }

        // Copy it into the slot and skip it at the target.
        Unit copy = target;
        copy.labels.clear();
        copy.isAutoSlot = false;
        copy.line = slot.line;
        slot = std::move(copy);
        xfer.target.addend += static_cast<int64_t>(isa::InstBytes);
        ++stats.filledSlots;
        ++stats.filledFromTarget;
    }
}

} // namespace

SlotStats
fillDelaySlots(std::vector<Unit> &units)
{
    SlotStats stats;
    for (size_t i = 0; i < units.size(); ++i) {
        Unit &slot = units[i];
        if (slot.kind != Unit::Kind::Inst || !slot.isAutoSlot)
            continue;
        ++stats.totalSlots;

        // Pattern: [cand][xfer][slot] with slot == units[i].
        if (i < 2)
            continue;
        Unit &xfer = units[i - 1];
        Unit &cand = units[i - 2];
        if (xfer.kind != Unit::Kind::Inst || cand.kind != Unit::Kind::Inst)
            continue;
        if (!slot.labels.empty())
            continue;
        // `cand` must not itself sit in the delay slot of an earlier
        // transfer: moving it would vacate that slot.
        if (i >= 3 && units[i - 3].kind == Unit::Kind::Inst) {
            const OpClass prev_cls = isa::opInfo(units[i - 3].op).opClass;
            if (prev_cls == OpClass::Branch || prev_cls == OpClass::Call ||
                prev_cls == OpClass::Ret)
                continue;
        }
        if (!canHoist(cand, xfer))
            continue;

        // Move cand into the slot: [xfer][cand]; drop the NOP.
        Unit moved = cand;
        moved.isAutoSlot = false;
        units.erase(units.begin() + static_cast<long>(i)); // the NOP
        units[i - 2] = xfer;
        units[i - 1] = moved;
        ++stats.filledSlots;
        ++stats.filledFromPred;
        // `i` now indexes the instruction after the moved one; the loop
        // increment skips it, which is fine: it cannot itself be an auto
        // slot (slots directly follow transfers).
        --i;
    }

    fillFromTargets(units, stats);
    return stats;
}

} // namespace risc1::assembler
