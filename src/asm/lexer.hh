/**
 * @file
 * Line tokenizer for the RISC I assembly language. Comments start with
 * ';', '#', or '//' and run to end of line. String literals use double
 * quotes with C escapes.
 */

#ifndef RISC1_ASM_LEXER_HH
#define RISC1_ASM_LEXER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace risc1::assembler {

/** Token categories. */
enum class TokKind : uint8_t
{
    Ident,   //!< identifier / mnemonic / register / condition
    Number,  //!< integer literal (value in `value`)
    String,  //!< double-quoted string (decoded text in `text`)
    Comma,
    Colon,
    LParen,
    RParen,
    Plus,
    Minus,
    Dot,     //!< '.' starting a directive or the location counter
    Error,   //!< lexing error (message in `text`)
};

/** One token. */
struct Token
{
    TokKind kind;
    std::string text;  //!< raw text (Ident/String) or error message
    int64_t value = 0; //!< numeric value for Number
    unsigned column = 0;
};

/**
 * Tokenize one source line (without its newline). Comments are stripped.
 * A lexing problem produces a single Error token describing it.
 */
std::vector<Token> tokenizeLine(std::string_view line);

} // namespace risc1::assembler

#endif // RISC1_ASM_LEXER_HH
